/**
 * @file
 * Ablation: per-edge intermediate reporting states (the paper's scheme,
 * Section IV-C) vs deduplicating them per cut target. Dedup strictly
 * shrinks the BaseAP configuration and the simultaneous-report storms,
 * at no semantic cost (the translation table already folds duplicates).
 */

#include <iostream>

#include "core/sparseap.h"

using namespace sparseap;

int
main()
{
    ExperimentRunner runner;
    printSection("Ablation: intermediate-state dedup (1% profiling, "
                 "24K capacity)");

    Table table({"App", "IM(per-edge)", "IM(dedup)", "Stalls(per-edge)",
                 "Stalls(dedup)", "Speedup(per-edge)", "Speedup(dedup)"});

    std::vector<double> s_edge, s_dedup;
    for (const std::string &abbr : runner.selectApps("HM")) {
        const LoadedApp &app = runner.load(abbr);

        PartitionOptions per_edge;
        per_edge.dedupeIntermediates = false;
        SpapRunStats a =
            runAppConfig(app, 0.01, ApConfig::kHalfCore, per_edge);

        PartitionOptions dedup;
        dedup.dedupeIntermediates = true;
        SpapRunStats b =
            runAppConfig(app, 0.01, ApConfig::kHalfCore, dedup);

        table.addRow({abbr, std::to_string(a.intermediateStates),
                      std::to_string(b.intermediateStates),
                      std::to_string(a.enableStalls),
                      std::to_string(b.enableStalls),
                      Table::fmt(a.speedup, 2), Table::fmt(b.speedup, 2)});
        s_edge.push_back(a.speedup);
        s_dedup.push_back(b.speedup);
        runner.unload(abbr);
    }
    table.addRow({"GEOMEAN", "-", "-", "-", "-",
                  Table::fmt(geomean(s_edge), 2),
                  Table::fmt(geomean(s_dedup), 2)});
    runner.printTable(table);
    return 0;
}
