/**
 * @file
 * Ablation: per-edge intermediate reporting states (the paper's scheme,
 * Section IV-C) vs deduplicating them per cut target. Dedup strictly
 * shrinks the BaseAP configuration and the simultaneous-report storms,
 * at no semantic cost (the translation table already folds duplicates).
 */

#include <iostream>

#include "core/sparseap.h"

using namespace sparseap;

int
main()
{
    ExperimentRunner runner;
    printSection("Ablation: intermediate-state dedup (1% profiling, "
                 "24K capacity)");

    struct Row
    {
        std::string abbr;
        SpapRunStats edge;
        SpapRunStats dedup;
    };
    std::vector<Row> rows(runner.selectApps("HM").size());

    runner.forEachApp("HM", [&](const LoadedApp &app, size_t i) {
        // Both variants share one cached profile; only the partition
        // (and thus the prep) differs.
        PartitionOptions per_edge;
        per_edge.dedupeIntermediates = false;
        PartitionOptions dedup;
        dedup.dedupeIntermediates = true;
        rows[i] = {app.entry.abbr,
                   runAppConfig(app, 0.01, ApConfig::kHalfCore, per_edge),
                   runAppConfig(app, 0.01, ApConfig::kHalfCore, dedup)};
    });

    Table table({"App", "IM(per-edge)", "IM(dedup)", "Stalls(per-edge)",
                 "Stalls(dedup)", "Speedup(per-edge)", "Speedup(dedup)"});
    std::vector<double> s_edge, s_dedup;
    for (const Row &row : rows) {
        const SpapRunStats &a = row.edge;
        const SpapRunStats &b = row.dedup;
        table.addRow({row.abbr, std::to_string(a.intermediateStates),
                      std::to_string(b.intermediateStates),
                      std::to_string(a.enableStalls),
                      std::to_string(b.enableStalls),
                      Table::fmt(a.speedup, 2), Table::fmt(b.speedup, 2)});
        s_edge.push_back(a.speedup);
        s_dedup.push_back(b.speedup);
    }
    table.addRow({"GEOMEAN", "-", "-", "-", "-",
                  Table::fmt(geomean(s_edge), 2),
                  Table::fmt(geomean(s_dedup), 2)});
    runner.printTable(table);
    return 0;
}
