/**
 * @file
 * Ablation: the Section IV-B batch-fill optimization on vs off. Filling
 * spare STEs with the next cold layers converts mis-predictions into
 * free hot coverage — fewer intermediate reports at unchanged batch
 * counts (the paper credits it for Snort's equal savings across profile
 * sizes).
 */

#include <iostream>

#include "core/sparseap.h"

using namespace sparseap;

int
main()
{
    ExperimentRunner runner;
    printSection("Ablation: batch-fill optimization (1% profiling, 24K "
                 "capacity)");

    struct Row
    {
        std::string abbr;
        SpapRunStats off;
        SpapRunStats on;
    };
    std::vector<Row> rows(runner.selectApps("HM").size());

    runner.forEachApp("HM", [&](const LoadedApp &app, size_t i) {
        rows[i] = {app.entry.abbr,
                   runAppConfig(app, 0.01, ApConfig::kHalfCore, {},
                                /*fill=*/false),
                   runAppConfig(app, 0.01, ApConfig::kHalfCore, {},
                                /*fill=*/true)};
    });

    Table table({"App", "Events(off)", "Events(on)", "Savings(off)",
                 "Savings(on)", "Speedup(off)", "Speedup(on)"});
    std::vector<double> s_off, s_on;
    for (const Row &row : rows) {
        const SpapRunStats &off = row.off;
        const SpapRunStats &on = row.on;
        table.addRow({row.abbr, std::to_string(off.intermediateReports),
                      std::to_string(on.intermediateReports),
                      Table::pct(off.resourceSavings),
                      Table::pct(on.resourceSavings),
                      Table::fmt(off.speedup, 2),
                      Table::fmt(on.speedup, 2)});
        s_off.push_back(off.speedup);
        s_on.push_back(on.speedup);
    }
    table.addRow({"GEOMEAN", "-", "-", "-", "-",
                  Table::fmt(geomean(s_off), 2),
                  Table::fmt(geomean(s_on), 2)});
    runner.printTable(table);
    return 0;
}
