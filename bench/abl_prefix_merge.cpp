/**
 * @file
 * Ablation: cross-rule common-prefix merging (a VASim-style automata
 * optimization orthogonal to SparseAP). Reports the STE reduction each
 * application would get from sharing identical rule prefixes, and the
 * knock-on reduction in baseline batch count — context for how much of
 * the re-execution problem clever compilation alone can solve before
 * hot/cold partitioning is needed.
 */

#include <iostream>

#include "core/sparseap.h"

using namespace sparseap;

int
main()
{
    ExperimentRunner runner;
    printSection("Ablation: cross-rule prefix merging (states and "
                 "baseline batches)");

    struct Row
    {
        std::string abbr;
        OptimizeStats stats;
    };
    std::vector<Row> rows(runner.selectApps("HML").size());

    runner.forEachApp("HML", [&](const LoadedApp &app, size_t i) {
        rows[i] = {app.entry.abbr, measurePrefixMerging(app.workload.app)};
    });

    Table table({"App", "States", "Merged", "Reduction", "Batches",
                 "MergedBatches"});
    for (const Row &row : rows) {
        const OptimizeStats &stats = row.stats;
        const size_t before = analyticBatchCount(stats.statesBefore,
                                                 ApConfig::kHalfCore);
        const size_t after = analyticBatchCount(stats.statesAfter,
                                                ApConfig::kHalfCore);
        table.addRow({row.abbr, std::to_string(stats.statesBefore),
                      std::to_string(stats.statesAfter),
                      Table::pct(stats.reduction()),
                      std::to_string(before), std::to_string(after)});
    }
    runner.printTable(table);
    std::cout << "\nPrefix merging alone cannot remove input-dependent "
                 "cold states; it composes with SparseAP.\n";
    return 0;
}
