/**
 * @file
 * Figure 1: percentage of hot (ever-enabled) vs cold (never-enabled)
 * states per application under the full input, sorted by hot fraction —
 * the paper's motivating observation (59% cold on average).
 */

#include <algorithm>
#include <iostream>

#include "core/sparseap.h"

using namespace sparseap;

int
main()
{
    ExperimentRunner runner;
    printSection("Figure 1: hot vs cold NFA states per application");

    struct Row
    {
        std::string abbr;
        double hot;
    };
    std::vector<Row> rows(runner.selectApps("HML").size());

    runner.forEachApp("HML", [&](const LoadedApp &app, size_t i) {
        rows[i] = {app.entry.abbr, oracleProfile(app).hotFraction()};
    });
    std::sort(rows.begin(), rows.end(),
              [](const Row &a, const Row &b) { return a.hot < b.hot; });

    Table table({"App", "Hot", "Cold"});
    double cold_sum = 0.0;
    for (const Row &r : rows) {
        table.addRow({r.abbr, Table::pct(r.hot), Table::pct(1.0 - r.hot)});
        cold_sum += 1.0 - r.hot;
    }
    table.addRow({"AVG", Table::pct(1.0 - cold_sum / rows.size()),
                  Table::pct(cold_sum / rows.size())});
    runner.printTable(table);

    std::cout << "\npaper: average 59% cold, up to 99% (CAV4k)\n";
    return 0;
}
