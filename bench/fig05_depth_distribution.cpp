/**
 * @file
 * Figure 5: distribution of normalized topological depth for hot states
 * (a) and cold states (b), bucketed shallow [0,0.3) / medium [0.3,0.6) /
 * deep [0.6,1], plus the depth-hotness correlation coefficient the paper
 * reports as -0.82 on average (ER excluded).
 */

#include <iostream>

#include "core/sparseap.h"

using namespace sparseap;

int
main()
{
    ExperimentRunner runner;
    printSection("Figure 5: normalized-depth distribution of hot and "
                 "cold states");

    struct Row
    {
        std::string abbr;
        DepthDistribution d;
    };
    std::vector<Row> rows(runner.selectApps("HML").size());

    runner.forEachApp("HML", [&](const LoadedApp &app, size_t i) {
        rows[i] = {app.entry.abbr,
                   depthDistribution(app.topology(), oracleProfile(app))};
    });

    Table table({"App", "hot:shallow", "hot:med", "hot:deep",
                 "cold:shallow", "cold:med", "cold:deep", "corr(depth,hot)"});
    std::vector<double> correlations;
    for (const Row &r : rows) {
        const DepthDistribution &d = r.d;
        table.addRow({r.abbr, Table::pct(d.hot[0]), Table::pct(d.hot[1]),
                      Table::pct(d.hot[2]), Table::pct(d.cold[0]),
                      Table::pct(d.cold[1]), Table::pct(d.cold[2]),
                      Table::fmt(d.depthHotCorrelation, 2)});
        if (r.abbr != "ER") // the paper excludes ER from the average
            correlations.push_back(d.depthHotCorrelation);
    }
    runner.printTable(table);

    std::cout << "\naverage correlation (excl. ER): "
              << Table::fmt(mean(correlations), 2)
              << "   (paper: -0.82)\n";
    return 0;
}
