/**
 * @file
 * Figure 8: constrained states — cold states that a topological-order
 * perfect partition must still configure (because of SCC atomicity and
 * whole-layer cuts), relative to an arbitrary-edge perfect partition.
 * The paper reports +4% on average with LV and ER as outliers.
 */

#include <iostream>

#include "core/sparseap.h"

using namespace sparseap;

int
main()
{
    ExperimentRunner runner;
    printSection("Figure 8: constrained states of topological-order "
                 "perfect partitioning");

    struct Row
    {
        std::string abbr;
        ConstrainedStats s;
    };
    std::vector<Row> rows(runner.selectApps("HML").size());

    runner.forEachApp("HML", [&](const LoadedApp &app, size_t i) {
        rows[i] = {app.entry.abbr,
                   constrainedStates(app.topology(), oracleProfile(app))};
    });

    Table table({"App", "OracleHot", "TopoConfigured", "Constrained"});
    std::vector<double> constrained;
    for (const Row &r : rows) {
        const ConstrainedStats &s = r.s;
        table.addRow({r.abbr,
                      Table::pct(static_cast<double>(s.oracleHot) /
                                 static_cast<double>(s.total)),
                      Table::pct(static_cast<double>(s.topoConfigured) /
                                 static_cast<double>(s.total)),
                      Table::pct(s.constrainedFraction())});
        constrained.push_back(s.constrainedFraction());
    }
    runner.printTable(table);
    std::cout << "\naverage constrained: "
              << Table::pct(mean(constrained))
              << "   (paper: ~4% average; LV and ER outliers)\n";
    return 0;
}
