/**
 * @file
 * Figure 10: (a) speedup of AP-CPU and BaseAP/SpAP execution over the
 * baseline AP at 24K-STE capacity with 0.1% and 1% profiling inputs,
 * and (b) resource savings — for the high and medium groups.
 *
 * Paper headlines: BaseAP/SpAP 1.8x / 2.1x geomean (up to 47x, CAV4k);
 * AP-CPU 9.8x / 2.9x geomean *slowdown* overall, but 4.2x speedup on
 * the five apps where the CPU never fires.
 */

#include <iostream>

#include "core/sparseap.h"

using namespace sparseap;

int
main()
{
    ExperimentRunner runner;
    printSection("Figure 10(a): speedup at 24K capacity; "
                 "(b) resource savings");

    const size_t capacity = ApConfig::kHalfCore;
    const double kFracs[] = {0.001, 0.01};

    struct Row
    {
        std::string abbr;
        double cpuSpeedup[2];
        double spapSpeedup[2];
        double savings[2];
    };
    std::vector<Row> rows(runner.selectApps("HM").size());

    runner.forEachApp("HM", [&](const LoadedApp &app, size_t i) {
        Row &row = rows[i];
        row.abbr = app.entry.abbr;
        // Both fractions' profiles come from one checkpointed engine
        // pass, and each prep is built once and shared by the AP-CPU and
        // BaseAP/SpAP back ends.
        app.prewarmProfiles(kFracs);
        for (int f = 0; f < 2; ++f) {
            const ExecutionOptions opts =
                app.execOptions(kFracs[f], capacity);
            const PreparedPartition prep = preparePartition(app, opts);
            row.cpuSpeedup[f] =
                runApCpu(app.topology(), opts, prep).speedup;
            const SpapRunStats stats =
                runBaseApSpap(app.topology(), opts, prep);
            row.spapSpeedup[f] = stats.speedup;
            row.savings[f] = stats.resourceSavings;
        }
    });

    Table table({"App", "APCPU@0.1%", "APCPU@1%", "SpAP@0.1%", "SpAP@1%",
                 "Savings@0.1%", "Savings@1%"});
    std::vector<double> cpu01, cpu1, spap01, spap1;
    for (const Row &row : rows) {
        table.addRow({row.abbr, Table::fmt(row.cpuSpeedup[0], 2),
                      Table::fmt(row.cpuSpeedup[1], 2),
                      Table::fmt(row.spapSpeedup[0], 2),
                      Table::fmt(row.spapSpeedup[1], 2),
                      Table::pct(row.savings[0]),
                      Table::pct(row.savings[1])});
        cpu01.push_back(row.cpuSpeedup[0]);
        cpu1.push_back(row.cpuSpeedup[1]);
        spap01.push_back(row.spapSpeedup[0]);
        spap1.push_back(row.spapSpeedup[1]);
    }

    table.addRow({"GEOMEAN", Table::fmt(geomean(cpu01), 2),
                  Table::fmt(geomean(cpu1), 2),
                  Table::fmt(geomean(spap01), 2),
                  Table::fmt(geomean(spap1), 2), "-", "-"});
    runner.printTable(table);

    std::cout << "\npaper: BaseAP/SpAP geomean 1.8x (0.1%) and 2.1x "
                 "(1%), max 47x; AP-CPU geomean slowdown 9.8x / 2.9x\n";
    return 0;
}
