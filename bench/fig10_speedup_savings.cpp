/**
 * @file
 * Figure 10: (a) speedup of AP-CPU and BaseAP/SpAP execution over the
 * baseline AP at 24K-STE capacity with 0.1% and 1% profiling inputs,
 * and (b) resource savings — for the high and medium groups.
 *
 * Paper headlines: BaseAP/SpAP 1.8x / 2.1x geomean (up to 47x, CAV4k);
 * AP-CPU 9.8x / 2.9x geomean *slowdown* overall, but 4.2x speedup on
 * the five apps where the CPU never fires.
 */

#include <iostream>

#include "core/sparseap.h"

using namespace sparseap;

int
main()
{
    ExperimentRunner runner;
    printSection("Figure 10(a): speedup at 24K capacity; "
                 "(b) resource savings");

    const size_t capacity = ApConfig::kHalfCore;
    Table table({"App", "APCPU@0.1%", "APCPU@1%", "SpAP@0.1%", "SpAP@1%",
                 "Savings@0.1%", "Savings@1%"});

    std::vector<double> cpu01, cpu1, spap01, spap1;

    for (const std::string &abbr : runner.selectApps("HM")) {
        const LoadedApp &app = runner.load(abbr);
        std::vector<std::string> cells = {abbr};
        std::vector<std::string> savings_cells;

        for (double frac : {0.001, 0.01}) {
            ExecutionOptions opts = app.execOptions(frac, capacity);
            PreparedPartition prep =
                preparePartition(app.topology(), opts, app.input);
            ApCpuStats cpu = runApCpu(app.topology(), opts, prep);
            cells.push_back(Table::fmt(cpu.speedup, 2));
            (frac == 0.001 ? cpu01 : cpu1).push_back(cpu.speedup);
        }
        for (double frac : {0.001, 0.01}) {
            ExecutionOptions opts = app.execOptions(frac, capacity);
            PreparedPartition prep =
                preparePartition(app.topology(), opts, app.input);
            SpapRunStats stats =
                runBaseApSpap(app.topology(), opts, prep);
            cells.push_back(Table::fmt(stats.speedup, 2));
            savings_cells.push_back(Table::pct(stats.resourceSavings));
            (frac == 0.001 ? spap01 : spap1).push_back(stats.speedup);
        }
        cells.insert(cells.end(), savings_cells.begin(),
                     savings_cells.end());
        table.addRow(cells);
        runner.unload(abbr);
    }

    table.addRow({"GEOMEAN", Table::fmt(geomean(cpu01), 2),
                  Table::fmt(geomean(cpu1), 2),
                  Table::fmt(geomean(spap01), 2),
                  Table::fmt(geomean(spap1), 2), "-", "-"});
    runner.printTable(table);

    std::cout << "\npaper: BaseAP/SpAP geomean 1.8x (0.1%) and 2.1x "
                 "(1%), max 47x; AP-CPU geomean slowdown 9.8x / 2.9x\n";
    return 0;
}
