/**
 * @file
 * Figure 11: performance per STE (throughput normalized by fabric
 * capacity — a performance/area proxy) for baseline AP vs BaseAP/SpAP
 * with 1% profiling, across AP sizes 12K / 24K / 49K.
 *
 * Paper headline: +32.1% performance/STE at the 24K half-core, with
 * consistent gains at every size; larger APs have lower absolute
 * performance/STE when applications underfill them.
 */

#include <iostream>

#include "core/sparseap.h"

using namespace sparseap;

int
main()
{
    ExperimentRunner runner;
    printSection("Figure 11: performance per STE across AP sizes "
                 "(1% profiling)");

    const size_t kSizes[] = {ApConfig::kQuarterCore, ApConfig::kHalfCore,
                             ApConfig::kFullChip};
    const char *const kNames[] = {"12K", "24K", "49K"};

    struct Row
    {
        std::string abbr;
        double base[3];
        double ours[3];
    };
    std::vector<Row> rows(runner.selectApps("HML").size());

    runner.forEachApp("HML", [&](const LoadedApp &app, size_t i) {
        Row &row = rows[i];
        row.abbr = app.entry.abbr;
        // One profiling run serves all three capacities: the profile
        // depends only on the prefix, and the per-app cache keeps it.
        for (int s = 0; s < 3; ++s) {
            const size_t capacity = kSizes[s];
            const ExecutionOptions opts = app.execOptions(0.01, capacity);
            const PreparedPartition prep = preparePartition(app, opts);
            const SpapRunStats stats =
                runBaseApSpap(app.topology(), opts, prep);
            row.base[s] = performancePerSte(
                stats.testLength, stats.baselineCycles, capacity);
            row.ours[s] = performancePerSte(
                stats.testLength, stats.baseApCycles + stats.spApCycles,
                capacity);
        }
    });

    Table table({"App", "base@12K", "ours@12K", "base@24K", "ours@24K",
                 "base@49K", "ours@49K"});
    std::vector<double> gain[3];
    for (const Row &row : rows) {
        std::vector<std::string> cells = {row.abbr};
        for (int s = 0; s < 3; ++s) {
            // Scaled by 1e6 for readability (symbols/cycle/MSTE).
            cells.push_back(Table::fmt(row.base[s] * 1e6, 2));
            cells.push_back(Table::fmt(row.ours[s] * 1e6, 2));
            if (row.base[s] > 0)
                gain[s].push_back(row.ours[s] / row.base[s]);
        }
        table.addRow(cells);
    }
    runner.printTable(table);

    std::cout << "\ngeomean perf/STE gain: ";
    for (int s = 0; s < 3; ++s) {
        std::cout << kNames[s] << ": "
                  << Table::pct(geomean(gain[s]) - 1.0) << "  ";
    }
    std::cout << "\npaper: +32.1% average at the 24K half-core "
                 "(arithmetic, dominated by mid-size apps; our geomean "
                 "is the robust analogue — CAV4k alone gains 46x)\n";
    return 0;
}
