/**
 * @file
 * Figure 11: performance per STE (throughput normalized by fabric
 * capacity — a performance/area proxy) for baseline AP vs BaseAP/SpAP
 * with 1% profiling, across AP sizes 12K / 24K / 49K.
 *
 * Paper headline: +32.1% performance/STE at the 24K half-core, with
 * consistent gains at every size; larger APs have lower absolute
 * performance/STE when applications underfill them.
 */

#include <iostream>

#include "core/sparseap.h"

using namespace sparseap;

int
main()
{
    ExperimentRunner runner;
    printSection("Figure 11: performance per STE across AP sizes "
                 "(1% profiling)");

    const size_t kSizes[] = {ApConfig::kQuarterCore, ApConfig::kHalfCore,
                             ApConfig::kFullChip};
    const char *const kNames[] = {"12K", "24K", "49K"};

    Table table({"App", "base@12K", "ours@12K", "base@24K", "ours@24K",
                 "base@49K", "ours@49K"});

    std::vector<double> gain[3];

    for (const std::string &abbr : runner.selectApps("HML")) {
        const LoadedApp &app = runner.load(abbr);
        std::vector<std::string> cells = {abbr};
        for (int s = 0; s < 3; ++s) {
            const size_t capacity = kSizes[s];
            ExecutionOptions opts = app.execOptions(0.01, capacity);
            PreparedPartition prep =
                preparePartition(app.topology(), opts, app.input);
            SpapRunStats stats =
                runBaseApSpap(app.topology(), opts, prep);

            const double base = performancePerSte(
                stats.testLength, stats.baselineCycles, capacity);
            const double ours = performancePerSte(
                stats.testLength, stats.baseApCycles + stats.spApCycles,
                capacity);
            // Scaled by 1e6 for readability (symbols/cycle/MSTE).
            cells.push_back(Table::fmt(base * 1e6, 2));
            cells.push_back(Table::fmt(ours * 1e6, 2));
            if (base > 0)
                gain[s].push_back(ours / base);
        }
        table.addRow(cells);
        runner.unload(abbr);
    }
    runner.printTable(table);

    std::cout << "\ngeomean perf/STE gain: ";
    for (int s = 0; s < 3; ++s) {
        std::cout << kNames[s] << ": "
                  << Table::pct(geomean(gain[s]) - 1.0) << "  ";
    }
    std::cout << "\npaper: +32.1% average at the 24K half-core "
                 "(arithmetic, dominated by mid-size apps; our geomean "
                 "is the robust analogue — CAV4k alone gains 46x)\n";
    return 0;
}
