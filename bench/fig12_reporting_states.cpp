/**
 * @file
 * Figure 12: reporting states configured in BaseAP mode — original
 * ("True") plus intermediate ("IM") — normalized to the baseline AP's
 * reporting-state count, for 0.1% and 1% profiling.
 *
 * Paper observations: ER grows 3.6x (many crossing edges); Snort and
 * Snort_L drop below 1x (fewer crossing edges than original reporters).
 */

#include <iostream>

#include "core/sparseap.h"

using namespace sparseap;

int
main()
{
    ExperimentRunner runner;
    printSection("Figure 12: reporting states in BaseAP mode, "
                 "normalized to baseline");

    Table table({"App", "True@P0.1%", "IM@P0.1%", "Total@P0.1%",
                 "True@P1%", "IM@P1%", "Total@P1%"});

    for (const std::string &abbr : runner.selectApps("HM")) {
        const LoadedApp &app = runner.load(abbr);
        const double baseline =
            static_cast<double>(app.workload.app.reportingStates());
        std::vector<std::string> cells = {abbr};

        for (double frac : {0.001, 0.01}) {
            ExecutionOptions opts =
                app.execOptions(frac, ApConfig::kHalfCore);
            PreparedPartition prep =
                preparePartition(app.topology(), opts, app.input);
            const double true_r = static_cast<double>(
                prep.part.hotOriginalReporting);
            const double im =
                static_cast<double>(prep.part.intermediateCount);
            cells.push_back(Table::fmt(true_r / baseline, 2));
            cells.push_back(Table::fmt(im / baseline, 2));
            cells.push_back(Table::fmt((true_r + im) / baseline, 2));
        }
        table.addRow(cells);
        runner.unload(abbr);
    }
    runner.printTable(table);
    std::cout << "\npaper: ER 3.6x; Snort/Snort_L below 1x\n";
    return 0;
}
