/**
 * @file
 * Figure 12: reporting states configured in BaseAP mode — original
 * ("True") plus intermediate ("IM") — normalized to the baseline AP's
 * reporting-state count, for 0.1% and 1% profiling.
 *
 * Paper observations: ER grows 3.6x (many crossing edges); Snort and
 * Snort_L drop below 1x (fewer crossing edges than original reporters).
 */

#include <iostream>

#include "core/sparseap.h"

using namespace sparseap;

int
main()
{
    ExperimentRunner runner;
    printSection("Figure 12: reporting states in BaseAP mode, "
                 "normalized to baseline");

    const double kFracs[] = {0.001, 0.01};

    struct Row
    {
        std::string abbr;
        double trueR[2];
        double im[2];
    };
    std::vector<Row> rows(runner.selectApps("HM").size());

    runner.forEachApp("HM", [&](const LoadedApp &app, size_t i) {
        Row &row = rows[i];
        row.abbr = app.entry.abbr;
        const double baseline =
            static_cast<double>(app.workload.app.reportingStates());
        app.prewarmProfiles(kFracs);
        for (int f = 0; f < 2; ++f) {
            const ExecutionOptions opts =
                app.execOptions(kFracs[f], ApConfig::kHalfCore);
            const PreparedPartition prep = preparePartition(app, opts);
            row.trueR[f] =
                static_cast<double>(prep.part.hotOriginalReporting) /
                baseline;
            row.im[f] =
                static_cast<double>(prep.part.intermediateCount) / baseline;
        }
    });

    Table table({"App", "True@P0.1%", "IM@P0.1%", "Total@P0.1%",
                 "True@P1%", "IM@P1%", "Total@P1%"});
    for (const Row &row : rows) {
        std::vector<std::string> cells = {row.abbr};
        for (int f = 0; f < 2; ++f) {
            cells.push_back(Table::fmt(row.trueR[f], 2));
            cells.push_back(Table::fmt(row.im[f], 2));
            cells.push_back(Table::fmt(row.trueR[f] + row.im[f], 2));
        }
        table.addRow(cells);
    }
    runner.printTable(table);
    std::cout << "\npaper: ER 3.6x; Snort/Snort_L below 1x\n";
    return 0;
}
