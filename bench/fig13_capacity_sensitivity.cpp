/**
 * @file
 * Figure 13: capacity sensitivity.
 *  (a) 12K-STE AP for the low-resource group (paper: 1.9x / 2.2x
 *      geomean at 0.1% / 1% profiling);
 *  (b) 49K-STE AP for the high-resource group (paper: 1.9x / 2.1x).
 */

#include <iostream>

#include "core/sparseap.h"

using namespace sparseap;

namespace {

void
runPanel(ExperimentRunner &runner, const char *title,
         const std::string &groups, size_t capacity)
{
    printSection(title);
    Table table({"App", "SpAP@0.1%", "SpAP@1%", "Savings@1%"});
    std::vector<double> s01, s1;

    for (const std::string &abbr : runner.selectApps(groups)) {
        const LoadedApp &app = runner.load(abbr);
        std::vector<std::string> cells = {abbr};
        double savings1 = 0.0;
        for (double frac : {0.001, 0.01}) {
            SpapRunStats stats = runAppConfig(app, frac, capacity);
            cells.push_back(Table::fmt(stats.speedup, 2));
            (frac == 0.001 ? s01 : s1).push_back(stats.speedup);
            if (frac == 0.01)
                savings1 = stats.resourceSavings;
        }
        cells.push_back(Table::pct(savings1));
        table.addRow(cells);
        runner.unload(abbr);
    }
    table.addRow({"GEOMEAN", Table::fmt(geomean(s01), 2),
                  Table::fmt(geomean(s1), 2), "-"});
    runner.printTable(table);
}

} // namespace

int
main()
{
    ExperimentRunner runner;
    runPanel(runner,
             "Figure 13(a): low group at 12K capacity "
             "(paper: 1.9x / 2.2x geomean)",
             "L", ApConfig::kQuarterCore);
    runPanel(runner,
             "Figure 13(b): high group at 49K capacity "
             "(paper: 1.9x / 2.1x geomean)",
             "H", ApConfig::kFullChip);
    return 0;
}
