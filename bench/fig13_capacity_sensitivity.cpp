/**
 * @file
 * Figure 13: capacity sensitivity.
 *  (a) 12K-STE AP for the low-resource group (paper: 1.9x / 2.2x
 *      geomean at 0.1% / 1% profiling);
 *  (b) 49K-STE AP for the high-resource group (paper: 1.9x / 2.1x).
 */

#include <iostream>

#include "core/sparseap.h"

using namespace sparseap;

namespace {

void
runPanel(ExperimentRunner &runner, const char *title,
         const std::string &groups, size_t capacity)
{
    printSection(title);

    const double kFracs[] = {0.001, 0.01};

    struct Row
    {
        std::string abbr;
        double speedup[2];
        double savings1;
    };
    std::vector<Row> rows(runner.selectApps(groups).size());

    runner.forEachApp(groups, [&](const LoadedApp &app, size_t i) {
        Row &row = rows[i];
        row.abbr = app.entry.abbr;
        app.prewarmProfiles(kFracs);
        for (int f = 0; f < 2; ++f) {
            const SpapRunStats stats =
                runAppConfig(app, kFracs[f], capacity);
            row.speedup[f] = stats.speedup;
            if (f == 1)
                row.savings1 = stats.resourceSavings;
        }
    });

    Table table({"App", "SpAP@0.1%", "SpAP@1%", "Savings@1%"});
    std::vector<double> s01, s1;
    for (const Row &row : rows) {
        table.addRow({row.abbr, Table::fmt(row.speedup[0], 2),
                      Table::fmt(row.speedup[1], 2),
                      Table::pct(row.savings1)});
        s01.push_back(row.speedup[0]);
        s1.push_back(row.speedup[1]);
    }
    table.addRow({"GEOMEAN", Table::fmt(geomean(s01), 2),
                  Table::fmt(geomean(s1), 2), "-"});
    runner.printTable(table);
}

} // namespace

int
main()
{
    ExperimentRunner runner;
    runPanel(runner,
             "Figure 13(a): low group at 12K capacity "
             "(paper: 1.9x / 2.2x geomean)",
             "L", ApConfig::kQuarterCore);
    runPanel(runner,
             "Figure 13(b): high group at 49K capacity "
             "(paper: 1.9x / 2.1x geomean)",
             "H", ApConfig::kFullChip);
    return 0;
}
