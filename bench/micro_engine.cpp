/**
 * @file
 * Micro-benchmarks (google-benchmark) for the substrate hot paths: the
 * functional engine's symbols/second on representative workloads, the
 * regex compiler, topology analysis, and partition construction.
 */

#include <benchmark/benchmark.h>

#include "core/sparseap.h"

using namespace sparseap;

namespace {

/** Shared small-scale workload so every benchmark reuses generation. */
const LoadedApp &
sharedApp(const char *abbr)
{
    static ExperimentRunner runner;
    return runner.load(abbr);
}

void
BM_EngineThroughput(benchmark::State &state, const char *abbr)
{
    const LoadedApp &app = sharedApp(abbr);
    FlatAutomaton fa(app.workload.app);
    Engine engine(fa);
    const std::span<const uint8_t> input(app.input.data(),
                                         std::min<size_t>(
                                             app.input.size(), 65536));
    for (auto _ : state) {
        benchmark::DoNotOptimize(engine.run(input).reports.size());
    }
    state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                            static_cast<int64_t>(input.size()));
}

/**
 * Same workload through a pinned stepping core — the dense-vs-sparse
 * comparison. On dense live sets (the HM Hamming grid, LV Levenshtein)
 * the bit-parallel core should win by multiples; on sparse live sets
 * (Snort) the sparse core should hold its lead.
 */
void
BM_EngineCore(benchmark::State &state, const char *abbr, EngineMode mode)
{
    const LoadedApp &app = sharedApp(abbr);
    FlatAutomaton fa(app.workload.app);
    Engine engine(fa, mode);
    const std::span<const uint8_t> input(app.input.data(),
                                         std::min<size_t>(
                                             app.input.size(), 65536));
    for (auto _ : state) {
        benchmark::DoNotOptimize(engine.run(input).reports.size());
    }
    state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                            static_cast<int64_t>(input.size()));
}

void
BM_RegexCompile(benchmark::State &state)
{
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            compileRegex("a(bc|de)*f.{0,8}[g-k]+end", "bench").size());
    }
}

void
BM_Topology(benchmark::State &state, const char *abbr)
{
    const LoadedApp &app = sharedApp(abbr);
    for (auto _ : state) {
        AppTopology topo(app.workload.app);
        benchmark::DoNotOptimize(topo.maxOrder());
    }
}

void
BM_Partition(benchmark::State &state, const char *abbr)
{
    const LoadedApp &app = sharedApp(abbr);
    const AppTopology &topo = app.topology();
    const FlatAutomaton fa(app.workload.app);
    const HotColdProfile prof = profileApplication(
        fa, std::span<const uint8_t>(app.input.data(),
                                     app.input.size() / 100));
    const PartitionLayers layers = chooseLayers(topo, prof);
    for (auto _ : state) {
        PartitionedApp part = partitionApplication(topo, layers);
        benchmark::DoNotOptimize(part.hot.totalStates());
    }
}

} // namespace

BENCHMARK_CAPTURE(BM_EngineThroughput, bro217, "Bro217");
BENCHMARK_CAPTURE(BM_EngineThroughput, em, "EM");
BENCHMARK_CAPTURE(BM_EngineThroughput, lv, "LV");
BENCHMARK_CAPTURE(BM_EngineThroughput, tcp, "TCP");
BENCHMARK_CAPTURE(BM_EngineCore, hm_sparse, "HM", EngineMode::Sparse);
BENCHMARK_CAPTURE(BM_EngineCore, hm_dense, "HM", EngineMode::Dense);
BENCHMARK_CAPTURE(BM_EngineCore, hm_auto, "HM", EngineMode::Auto);
BENCHMARK_CAPTURE(BM_EngineCore, lv_sparse, "LV", EngineMode::Sparse);
BENCHMARK_CAPTURE(BM_EngineCore, lv_dense, "LV", EngineMode::Dense);
BENCHMARK_CAPTURE(BM_EngineCore, snort_sparse, "Snort",
                  EngineMode::Sparse);
BENCHMARK_CAPTURE(BM_EngineCore, snort_dense, "Snort",
                  EngineMode::Dense);
BENCHMARK_CAPTURE(BM_EngineCore, snort_auto, "Snort", EngineMode::Auto);
BENCHMARK(BM_RegexCompile);
BENCHMARK_CAPTURE(BM_Topology, tcp, "TCP");
BENCHMARK_CAPTURE(BM_Partition, tcp, "TCP");

BENCHMARK_MAIN();
