/**
 * @file
 * Micro-benchmarks (google-benchmark) for the substrate hot paths: the
 * functional engine's symbols/second on representative workloads, the
 * regex compiler, topology analysis, partition construction, the dense
 * kernel at each SIMD tier the host supports, and the NFA/DFA hybrid on
 * small-scale workloads whose hot set actually determinizes.
 */

#include <cmath>
#include <cstdio>
#include <map>
#include <memory>
#include <string>

#include <benchmark/benchmark.h>

#include "common/vec.h"
#include "core/sparseap.h"
#include "sim/hot_dfa.h"
#include "store/cache.h"
#include "store/format.h"

using namespace sparseap;

namespace {

/** Shared small-scale workload so every benchmark reuses generation. */
const LoadedApp &
sharedApp(const char *abbr)
{
    static ExperimentRunner runner;
    return runner.load(abbr);
}

void
BM_EngineThroughput(benchmark::State &state, const char *abbr)
{
    const LoadedApp &app = sharedApp(abbr);
    FlatAutomaton fa(app.workload.app);
    Engine engine(fa);
    const std::span<const uint8_t> input(app.input.data(),
                                         std::min<size_t>(
                                             app.input.size(), 65536));
    for (auto _ : state) {
        benchmark::DoNotOptimize(engine.run(input).reports.size());
    }
    state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                            static_cast<int64_t>(input.size()));
}

/**
 * Same workload through a pinned stepping core — the dense-vs-sparse
 * comparison. On dense live sets (the HM Hamming grid, LV Levenshtein)
 * the bit-parallel core should win by multiples; on sparse live sets
 * (Snort) the sparse core should hold its lead.
 */
void
BM_EngineCore(benchmark::State &state, const char *abbr, EngineMode mode)
{
    const LoadedApp &app = sharedApp(abbr);
    FlatAutomaton fa(app.workload.app);
    Engine engine(fa, mode);
    const std::span<const uint8_t> input(app.input.data(),
                                         std::min<size_t>(
                                             app.input.size(), 65536));
    for (auto _ : state) {
        benchmark::DoNotOptimize(engine.run(input).reports.size());
    }
    state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                            static_cast<int64_t>(input.size()));
}

/**
 * Dense kernel with the class-compressed accept table against the raw
 * 256-row layout — what the byte→equivalence-class map buys on each
 * workload family. Counters record the class count and accept-table
 * footprint of the chosen layout.
 */
void
BM_DenseKernel(benchmark::State &state, const char *abbr,
               FlatAutomaton::DenseCompression compression)
{
    const LoadedApp &app = sharedApp(abbr);
    FlatAutomaton fa(app.workload.app, compression);
    Engine engine(fa, EngineMode::Dense);
    const std::span<const uint8_t> input(app.input.data(),
                                         std::min<size_t>(
                                             app.input.size(), 65536));
    for (auto _ : state) {
        benchmark::DoNotOptimize(engine.run(input).reports.size());
    }
    state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                            static_cast<int64_t>(input.size()));
    state.counters["classes"] = static_cast<double>(
        fa.denseView().classes);
    state.counters["accept_KiB"] = static_cast<double>(
        fa.denseView().acceptBytes()) / 1024.0;
}

/**
 * Dense kernel with the word sweeps pinned to one SIMD tier. The scalar
 * row is the pre-vectorization baseline; the ratio of the widest row to
 * it is the headline kernel speedup (docs/PERFORMANCE.md). Registered
 * dynamically in main() for the tiers this host supports.
 */
void
BM_DenseKernelIsa(benchmark::State &state, const char *abbr,
                  simd::Isa isa)
{
    if (!simd::setIsa(isa)) {
        state.SkipWithError("ISA not supported on this host");
        return;
    }
    const LoadedApp &app = sharedApp(abbr);
    FlatAutomaton fa(app.workload.app);
    Engine engine(fa, EngineMode::Dense); // caches the forced op table
    const std::span<const uint8_t> input(app.input.data(),
                                         std::min<size_t>(
                                             app.input.size(), 65536));
    for (auto _ : state) {
        benchmark::DoNotOptimize(engine.run(input).reports.size());
    }
    state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                            static_cast<int64_t>(input.size()));
    simd::setIsa(simd::bestIsa());
}

/**
 * Small-scale workload pinned in memory for the hybrid benchmarks: the
 * full-scale rule sets all blow the determinization budget (see the
 * census table), so the DFA-vs-NFA comparison runs at the registry's
 * test scale, where Bro217/EM/LV/Brill-class automata determinize.
 */
struct SmallBench
{
    Workload w;
    FlatAutomaton fa;
    std::vector<uint8_t> input;

    explicit SmallBench(const char *abbr)
        : w(generateWorkload(abbr, 7, 5)), fa(w.app)
    {
        size_t bytes = 65536;
        if (w.inputBytesCap > 0)
            bytes = std::min(bytes, w.inputBytesCap);
        Rng rng(20180621);
        input = synthesizeInput(w.input, bytes, rng);
    }
};

const SmallBench &
smallBench(const char *abbr)
{
    static std::map<std::string, std::unique_ptr<SmallBench>> cache;
    std::unique_ptr<SmallBench> &slot = cache[abbr];
    if (!slot)
        slot = std::make_unique<SmallBench>(abbr);
    return *slot;
}

/**
 * Sparse / dense / DFA on one small-scale workload. The dfa counter
 * records whether the run actually executed on the DFA table (1) or
 * fell back to the dense core after a budget bailout (0), so a bailing
 * workload can't masquerade as a DFA win.
 */
void
BM_HybridCore(benchmark::State &state, const char *abbr, EngineMode mode)
{
    const SmallBench &b = smallBench(abbr);
    Engine engine(b.fa, mode);
    bool used_dfa = false;
    for (auto _ : state) {
        SimResult r = engine.run(b.input);
        used_dfa = r.usedDfa;
        benchmark::DoNotOptimize(r.reports.size());
    }
    state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                            static_cast<int64_t>(b.input.size()));
    state.counters["dfa"] = used_dfa ? 1 : 0;
    if (mode == EngineMode::Dfa) {
        auto dfa = b.fa.hotDfaIfBuilt();
        state.counters["dfa_states"] =
            dfa ? static_cast<double>(dfa->states()) : 0;
    }
}

/**
 * Dense kernel with the quiescence input skip pinned on or off
 * (docs/PERFORMANCE.md). The on/off ratio per workload is the headline
 * input-skip speedup; the skip_ratio counter records the fraction of
 * input the on-row consumed without stepping.
 */
void
BM_DenseSkip(benchmark::State &state, const char *abbr, bool skip)
{
    const LoadedApp &app = sharedApp(abbr);
    FlatAutomaton fa(app.workload.app);
    Engine engine(fa, EngineMode::Dense);
    engine.setInputSkip(skip);
    const std::span<const uint8_t> input(app.input.data(),
                                         std::min<size_t>(
                                             app.input.size(), 65536));
    uint64_t skipped = 0;
    for (auto _ : state) {
        SimResult r = engine.run(input);
        skipped = r.skippedSymbols;
        benchmark::DoNotOptimize(r.reports.size());
    }
    state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                            static_cast<int64_t>(input.size()));
    state.counters["skip_ratio"] =
        input.empty() ? 0.0
                      : static_cast<double>(skipped) /
                            static_cast<double>(input.size());
}

/** DFA-table core with the input skip pinned on or off (small scale). */
void
BM_DfaSkip(benchmark::State &state, const char *abbr, bool skip)
{
    const SmallBench &b = smallBench(abbr);
    Engine engine(b.fa, EngineMode::Dfa);
    engine.setInputSkip(skip);
    uint64_t skipped = 0;
    uint64_t jumps = 0;
    for (auto _ : state) {
        SimResult r = engine.run(b.input);
        skipped = r.skippedSymbols;
        jumps = r.skipJumps;
        benchmark::DoNotOptimize(r.reports.size());
    }
    state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                            static_cast<int64_t>(b.input.size()));
    state.counters["jumps"] = static_cast<double>(jumps);
    state.counters["skip_ratio"] =
        b.input.empty() ? 0.0
                        : static_cast<double>(skipped) /
                              static_cast<double>(b.input.size());
}

void
BM_RegexCompile(benchmark::State &state)
{
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            compileRegex("a(bc|de)*f.{0,8}[g-k]+end", "bench").size());
    }
}

void
BM_Topology(benchmark::State &state, const char *abbr)
{
    const LoadedApp &app = sharedApp(abbr);
    for (auto _ : state) {
        AppTopology topo(app.workload.app);
        benchmark::DoNotOptimize(topo.maxOrder());
    }
}

void
BM_Partition(benchmark::State &state, const char *abbr)
{
    const LoadedApp &app = sharedApp(abbr);
    const AppTopology &topo = app.topology();
    const FlatAutomaton fa(app.workload.app);
    const HotColdProfile prof = profileApplication(
        fa, std::span<const uint8_t>(app.input.data(),
                                     app.input.size() / 100));
    const PartitionLayers layers = chooseLayers(topo, prof);
    for (auto _ : state) {
        PartitionedApp part = partitionApplication(topo, layers);
        benchmark::DoNotOptimize(part.hot.totalStates());
    }
}

/**
 * Per-workload symbol-class census: class count, compressed vs raw
 * accept-table bytes and the compression ratio, plus the geometric mean
 * over all selected apps. Printed through ExperimentRunner::printTable so
 * the numbers also land in the SPARSEAP_JSON JSON Lines stream.
 */
void
printSymbolClassTable()
{
    printSection("Symbol classes / dense accept-table compression");
    static ExperimentRunner runner;
    Table table({"App", "States", "Classes", "Accept KiB", "Raw KiB",
                 "Ratio"});
    const size_t apps = runner.selectApps("HML").size();
    std::vector<std::vector<std::string>> rows(apps);
    std::vector<double> ratios(apps, 0.0);
    runner.forEachApp("HML", [&](const LoadedApp &app, size_t i) {
        const FlatAutomaton &fa = app.flat();
        const FlatAutomaton::DenseView &dv = fa.denseView();
        const double ratio = static_cast<double>(dv.rawAcceptBytes()) /
                             static_cast<double>(dv.acceptBytes());
        rows[i] = {app.entry.abbr,
                   std::to_string(fa.size()),
                   std::to_string(dv.classes),
                   Table::fmt(dv.acceptBytes() / 1024.0, 1),
                   Table::fmt(dv.rawAcceptBytes() / 1024.0, 1),
                   Table::fmt(ratio, 2)};
        ratios[i] = ratio;
    });
    double log_ratio_sum = 0;
    for (double r : ratios)
        log_ratio_sum += std::log(r);
    for (auto &row : rows)
        table.addRow(std::move(row));
    if (apps > 0)
        table.addRow({"geo-mean", "", "", "", "",
                      Table::fmt(std::exp(log_ratio_sum / apps), 2)});
    runner.printTable(table);
}

/**
 * Per-workload determinization census at the hybrid benchmarks' scale:
 * NFA states, symbol classes, and either the resulting DFA shape or the
 * budget bailout. Full-scale rule sets bail across the board — subset
 * construction over thousands of concurrent patterns is exponential —
 * which is exactly why the engine treats the DFA as an opportunistic
 * upgrade with the dense core as the always-correct fallback.
 */
void
printDfaCensusTable()
{
    printSection("Hot-set determinization census (test scale, default "
                 "budget)");
    static ExperimentRunner runner;
    Table table({"App", "NfaStates", "Classes", "DfaStates",
                 "Table KiB", "Result"});
    size_t built = 0;
    const HotDfa::Limits limits = HotDfa::Limits::fromOptions();
    for (const auto &entry : appCatalog()) {
        Workload w = generateWorkload(entry.abbr, 7, 5);
        FlatAutomaton fa(w.app);
        auto dfa = HotDfa::build(fa, limits);
        built += dfa ? 1 : 0;
        table.addRow({entry.abbr, std::to_string(fa.size()),
                      std::to_string(fa.symbolClassCount()),
                      dfa ? std::to_string(dfa->states()) : "-",
                      dfa ? Table::fmt(dfa->tableBytes() / 1024.0, 1)
                          : "-",
                      dfa ? "dfa" : "bail"});
    }
    table.addRow({"built", std::to_string(built), "", "", "", ""});
    runner.printTable(table);
}

/** Order-sensitive digest of a report stream (store/format.h hash). */
uint64_t
reportDigest(const ReportList &reports)
{
    store::DigestBuilder d;
    for (const Report &r : reports) {
        d.add(r.position); // full 64-bit stream offset
        d.add(r.state);
    }
    return d.digest();
}

/**
 * Per-workload input-skip census: the fraction of input the quiescence
 * skip consumed without stepping, the jump count, and the skip-on vs
 * skip-off report digests on the dense core. The digests must match —
 * the skip is an optimization, not an approximation — so main() exits
 * nonzero on a mismatch and the CI perf-smoke job inherits the failure.
 */
bool
printInputSkipTable()
{
    printSection("Quiescence input skip (SPARSEAP_INPUT_SKIP census)");
    static ExperimentRunner runner;
    Table table({"App", "Input", "Skipped", "Ratio", "Jumps", "Digest",
                 "Match"});
    bool all_match = true;
    runner.forEachApp("HML", [&](const LoadedApp &app, size_t) {
        const FlatAutomaton &fa = app.flat();
        const std::span<const uint8_t> input(app.input.data(),
                                             std::min<size_t>(
                                                 app.input.size(),
                                                 65536));
        Engine on(fa, EngineMode::Dense);
        on.setInputSkip(true);
        const SimResult r_on = on.run(input);
        Engine off(fa, EngineMode::Dense);
        off.setInputSkip(false);
        const SimResult r_off = off.run(input);
        const uint64_t d_on = reportDigest(r_on.reports);
        const uint64_t d_off = reportDigest(r_off.reports);
        const bool match = d_on == d_off;
        all_match = all_match && match;
        const double ratio =
            input.empty() ? 0.0
                          : static_cast<double>(r_on.skippedSymbols) /
                                static_cast<double>(input.size());
        table.addRow({app.entry.abbr, std::to_string(input.size()),
                      std::to_string(r_on.skippedSymbols),
                      Table::fmt(ratio, 3),
                      std::to_string(r_on.skipJumps),
                      store::digestHex(d_on), match ? "ok" : "MISMATCH"});
    });
    runner.printTable(table);
    return all_match;
}

} // namespace

BENCHMARK_CAPTURE(BM_EngineThroughput, bro217, "Bro217");
BENCHMARK_CAPTURE(BM_EngineThroughput, em, "EM");
BENCHMARK_CAPTURE(BM_EngineThroughput, lv, "LV");
BENCHMARK_CAPTURE(BM_EngineThroughput, tcp, "TCP");
BENCHMARK_CAPTURE(BM_EngineCore, hm_sparse, "HM", EngineMode::Sparse);
BENCHMARK_CAPTURE(BM_EngineCore, hm_dense, "HM", EngineMode::Dense);
BENCHMARK_CAPTURE(BM_EngineCore, hm_auto, "HM", EngineMode::Auto);
BENCHMARK_CAPTURE(BM_EngineCore, lv_sparse, "LV", EngineMode::Sparse);
BENCHMARK_CAPTURE(BM_EngineCore, lv_dense, "LV", EngineMode::Dense);
BENCHMARK_CAPTURE(BM_EngineCore, snort_sparse, "Snort",
                  EngineMode::Sparse);
BENCHMARK_CAPTURE(BM_EngineCore, snort_dense, "Snort",
                  EngineMode::Dense);
BENCHMARK_CAPTURE(BM_EngineCore, snort_auto, "Snort", EngineMode::Auto);
BENCHMARK_CAPTURE(BM_DenseKernel, snort_classes, "Snort",
                  FlatAutomaton::DenseCompression::Classes);
BENCHMARK_CAPTURE(BM_DenseKernel, snort_raw, "Snort",
                  FlatAutomaton::DenseCompression::Raw);
BENCHMARK_CAPTURE(BM_DenseKernel, cav_classes, "CAV",
                  FlatAutomaton::DenseCompression::Classes);
BENCHMARK_CAPTURE(BM_DenseKernel, cav_raw, "CAV",
                  FlatAutomaton::DenseCompression::Raw);
BENCHMARK_CAPTURE(BM_DenseKernel, pen_classes, "PEN",
                  FlatAutomaton::DenseCompression::Classes);
BENCHMARK_CAPTURE(BM_DenseKernel, pen_raw, "PEN",
                  FlatAutomaton::DenseCompression::Raw);
BENCHMARK_CAPTURE(BM_DenseKernel, brill_classes, "Brill",
                  FlatAutomaton::DenseCompression::Classes);
BENCHMARK_CAPTURE(BM_DenseKernel, brill_raw, "Brill",
                  FlatAutomaton::DenseCompression::Raw);
BENCHMARK_CAPTURE(BM_DenseKernel, hm_classes, "HM",
                  FlatAutomaton::DenseCompression::Classes);
BENCHMARK_CAPTURE(BM_DenseKernel, hm_raw, "HM",
                  FlatAutomaton::DenseCompression::Raw);
BENCHMARK_CAPTURE(BM_HybridCore, bro217_sparse, "Bro217",
                  EngineMode::Sparse);
BENCHMARK_CAPTURE(BM_HybridCore, bro217_dense, "Bro217",
                  EngineMode::Dense);
BENCHMARK_CAPTURE(BM_HybridCore, bro217_dfa, "Bro217", EngineMode::Dfa);
BENCHMARK_CAPTURE(BM_HybridCore, em_sparse, "EM", EngineMode::Sparse);
BENCHMARK_CAPTURE(BM_HybridCore, em_dense, "EM", EngineMode::Dense);
BENCHMARK_CAPTURE(BM_HybridCore, em_dfa, "EM", EngineMode::Dfa);
BENCHMARK_CAPTURE(BM_HybridCore, lv_sparse, "LV", EngineMode::Sparse);
BENCHMARK_CAPTURE(BM_HybridCore, lv_dense, "LV", EngineMode::Dense);
BENCHMARK_CAPTURE(BM_HybridCore, lv_dfa, "LV", EngineMode::Dfa);
BENCHMARK_CAPTURE(BM_HybridCore, brill_sparse, "Brill",
                  EngineMode::Sparse);
BENCHMARK_CAPTURE(BM_HybridCore, brill_dense, "Brill",
                  EngineMode::Dense);
BENCHMARK_CAPTURE(BM_HybridCore, brill_dfa, "Brill", EngineMode::Dfa);
BENCHMARK_CAPTURE(BM_DenseSkip, snort_on, "Snort", true);
BENCHMARK_CAPTURE(BM_DenseSkip, snort_off, "Snort", false);
BENCHMARK_CAPTURE(BM_DenseSkip, cav_on, "CAV", true);
BENCHMARK_CAPTURE(BM_DenseSkip, cav_off, "CAV", false);
BENCHMARK_CAPTURE(BM_DenseSkip, pen_on, "PEN", true);
BENCHMARK_CAPTURE(BM_DenseSkip, pen_off, "PEN", false);
BENCHMARK_CAPTURE(BM_DenseSkip, hm_on, "HM", true);
BENCHMARK_CAPTURE(BM_DenseSkip, hm_off, "HM", false);
BENCHMARK_CAPTURE(BM_DenseSkip, lv_on, "LV", true);
BENCHMARK_CAPTURE(BM_DenseSkip, lv_off, "LV", false);
BENCHMARK_CAPTURE(BM_DenseSkip, brill_on, "Brill", true);
BENCHMARK_CAPTURE(BM_DenseSkip, brill_off, "Brill", false);
BENCHMARK_CAPTURE(BM_DfaSkip, bro217_on, "Bro217", true);
BENCHMARK_CAPTURE(BM_DfaSkip, bro217_off, "Bro217", false);
BENCHMARK_CAPTURE(BM_DfaSkip, brill_on, "Brill", true);
BENCHMARK_CAPTURE(BM_DfaSkip, brill_off, "Brill", false);
BENCHMARK(BM_RegexCompile);
BENCHMARK_CAPTURE(BM_Topology, tcp, "TCP");
BENCHMARK_CAPTURE(BM_Partition, tcp, "TCP");

namespace {

/** One BM_DenseKernelIsa row per supported tier per kernel workload. */
void
registerIsaBenchmarks()
{
    static const char *const kApps[] = {"Snort", "CAV", "PEN", "Brill"};
    for (simd::Isa isa :
         {simd::Isa::Scalar, simd::Isa::Sse2, simd::Isa::Avx2,
          simd::Isa::Avx512}) {
        if (!simd::isaSupported(isa))
            continue;
        for (const char *abbr : kApps) {
            std::string name = "BM_DenseKernelIsa/";
            name += abbr;
            name += '_';
            name += simd::isaName(isa);
            benchmark::RegisterBenchmark(
                name.c_str(), [abbr, isa](benchmark::State &state) {
                    BM_DenseKernelIsa(state, abbr, isa);
                });
        }
    }
}

} // namespace

int
main(int argc, char **argv)
{
    printSymbolClassTable();
    printDfaCensusTable();
    const bool skip_digests_match = printInputSkipTable();
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    registerIsaBenchmarks();
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    if (!skip_digests_match) {
        std::fprintf(stderr,
                     "FAIL: input-skip on/off report digests diverged "
                     "(see the census table above)\n");
        return 1;
    }
    return 0;
}
