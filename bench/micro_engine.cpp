/**
 * @file
 * Micro-benchmarks (google-benchmark) for the substrate hot paths: the
 * functional engine's symbols/second on representative workloads, the
 * regex compiler, topology analysis, and partition construction.
 */

#include <cmath>

#include <benchmark/benchmark.h>

#include "core/sparseap.h"

using namespace sparseap;

namespace {

/** Shared small-scale workload so every benchmark reuses generation. */
const LoadedApp &
sharedApp(const char *abbr)
{
    static ExperimentRunner runner;
    return runner.load(abbr);
}

void
BM_EngineThroughput(benchmark::State &state, const char *abbr)
{
    const LoadedApp &app = sharedApp(abbr);
    FlatAutomaton fa(app.workload.app);
    Engine engine(fa);
    const std::span<const uint8_t> input(app.input.data(),
                                         std::min<size_t>(
                                             app.input.size(), 65536));
    for (auto _ : state) {
        benchmark::DoNotOptimize(engine.run(input).reports.size());
    }
    state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                            static_cast<int64_t>(input.size()));
}

/**
 * Same workload through a pinned stepping core — the dense-vs-sparse
 * comparison. On dense live sets (the HM Hamming grid, LV Levenshtein)
 * the bit-parallel core should win by multiples; on sparse live sets
 * (Snort) the sparse core should hold its lead.
 */
void
BM_EngineCore(benchmark::State &state, const char *abbr, EngineMode mode)
{
    const LoadedApp &app = sharedApp(abbr);
    FlatAutomaton fa(app.workload.app);
    Engine engine(fa, mode);
    const std::span<const uint8_t> input(app.input.data(),
                                         std::min<size_t>(
                                             app.input.size(), 65536));
    for (auto _ : state) {
        benchmark::DoNotOptimize(engine.run(input).reports.size());
    }
    state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                            static_cast<int64_t>(input.size()));
}

/**
 * Dense kernel with the class-compressed accept table against the raw
 * 256-row layout — what the byte→equivalence-class map buys on each
 * workload family. Counters record the class count and accept-table
 * footprint of the chosen layout.
 */
void
BM_DenseKernel(benchmark::State &state, const char *abbr,
               FlatAutomaton::DenseCompression compression)
{
    const LoadedApp &app = sharedApp(abbr);
    FlatAutomaton fa(app.workload.app, compression);
    Engine engine(fa, EngineMode::Dense);
    const std::span<const uint8_t> input(app.input.data(),
                                         std::min<size_t>(
                                             app.input.size(), 65536));
    for (auto _ : state) {
        benchmark::DoNotOptimize(engine.run(input).reports.size());
    }
    state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                            static_cast<int64_t>(input.size()));
    state.counters["classes"] = static_cast<double>(
        fa.denseView().classes);
    state.counters["accept_KiB"] = static_cast<double>(
        fa.denseView().acceptBytes()) / 1024.0;
}

void
BM_RegexCompile(benchmark::State &state)
{
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            compileRegex("a(bc|de)*f.{0,8}[g-k]+end", "bench").size());
    }
}

void
BM_Topology(benchmark::State &state, const char *abbr)
{
    const LoadedApp &app = sharedApp(abbr);
    for (auto _ : state) {
        AppTopology topo(app.workload.app);
        benchmark::DoNotOptimize(topo.maxOrder());
    }
}

void
BM_Partition(benchmark::State &state, const char *abbr)
{
    const LoadedApp &app = sharedApp(abbr);
    const AppTopology &topo = app.topology();
    const FlatAutomaton fa(app.workload.app);
    const HotColdProfile prof = profileApplication(
        fa, std::span<const uint8_t>(app.input.data(),
                                     app.input.size() / 100));
    const PartitionLayers layers = chooseLayers(topo, prof);
    for (auto _ : state) {
        PartitionedApp part = partitionApplication(topo, layers);
        benchmark::DoNotOptimize(part.hot.totalStates());
    }
}

/**
 * Per-workload symbol-class census: class count, compressed vs raw
 * accept-table bytes and the compression ratio, plus the geometric mean
 * over all selected apps. Printed through ExperimentRunner::printTable so
 * the numbers also land in the SPARSEAP_JSON JSON Lines stream.
 */
void
printSymbolClassTable()
{
    printSection("Symbol classes / dense accept-table compression");
    static ExperimentRunner runner;
    Table table({"App", "States", "Classes", "Accept KiB", "Raw KiB",
                 "Ratio"});
    const size_t apps = runner.selectApps("HML").size();
    std::vector<std::vector<std::string>> rows(apps);
    std::vector<double> ratios(apps, 0.0);
    runner.forEachApp("HML", [&](const LoadedApp &app, size_t i) {
        const FlatAutomaton &fa = app.flat();
        const FlatAutomaton::DenseView &dv = fa.denseView();
        const double ratio = static_cast<double>(dv.rawAcceptBytes()) /
                             static_cast<double>(dv.acceptBytes());
        rows[i] = {app.entry.abbr,
                   std::to_string(fa.size()),
                   std::to_string(dv.classes),
                   Table::fmt(dv.acceptBytes() / 1024.0, 1),
                   Table::fmt(dv.rawAcceptBytes() / 1024.0, 1),
                   Table::fmt(ratio, 2)};
        ratios[i] = ratio;
    });
    double log_ratio_sum = 0;
    for (double r : ratios)
        log_ratio_sum += std::log(r);
    for (auto &row : rows)
        table.addRow(std::move(row));
    if (apps > 0)
        table.addRow({"geo-mean", "", "", "", "",
                      Table::fmt(std::exp(log_ratio_sum / apps), 2)});
    runner.printTable(table);
}

} // namespace

BENCHMARK_CAPTURE(BM_EngineThroughput, bro217, "Bro217");
BENCHMARK_CAPTURE(BM_EngineThroughput, em, "EM");
BENCHMARK_CAPTURE(BM_EngineThroughput, lv, "LV");
BENCHMARK_CAPTURE(BM_EngineThroughput, tcp, "TCP");
BENCHMARK_CAPTURE(BM_EngineCore, hm_sparse, "HM", EngineMode::Sparse);
BENCHMARK_CAPTURE(BM_EngineCore, hm_dense, "HM", EngineMode::Dense);
BENCHMARK_CAPTURE(BM_EngineCore, hm_auto, "HM", EngineMode::Auto);
BENCHMARK_CAPTURE(BM_EngineCore, lv_sparse, "LV", EngineMode::Sparse);
BENCHMARK_CAPTURE(BM_EngineCore, lv_dense, "LV", EngineMode::Dense);
BENCHMARK_CAPTURE(BM_EngineCore, snort_sparse, "Snort",
                  EngineMode::Sparse);
BENCHMARK_CAPTURE(BM_EngineCore, snort_dense, "Snort",
                  EngineMode::Dense);
BENCHMARK_CAPTURE(BM_EngineCore, snort_auto, "Snort", EngineMode::Auto);
BENCHMARK_CAPTURE(BM_DenseKernel, snort_classes, "Snort",
                  FlatAutomaton::DenseCompression::Classes);
BENCHMARK_CAPTURE(BM_DenseKernel, snort_raw, "Snort",
                  FlatAutomaton::DenseCompression::Raw);
BENCHMARK_CAPTURE(BM_DenseKernel, cav_classes, "CAV",
                  FlatAutomaton::DenseCompression::Classes);
BENCHMARK_CAPTURE(BM_DenseKernel, cav_raw, "CAV",
                  FlatAutomaton::DenseCompression::Raw);
BENCHMARK_CAPTURE(BM_DenseKernel, pen_classes, "PEN",
                  FlatAutomaton::DenseCompression::Classes);
BENCHMARK_CAPTURE(BM_DenseKernel, pen_raw, "PEN",
                  FlatAutomaton::DenseCompression::Raw);
BENCHMARK_CAPTURE(BM_DenseKernel, brill_classes, "Brill",
                  FlatAutomaton::DenseCompression::Classes);
BENCHMARK_CAPTURE(BM_DenseKernel, brill_raw, "Brill",
                  FlatAutomaton::DenseCompression::Raw);
BENCHMARK_CAPTURE(BM_DenseKernel, hm_classes, "HM",
                  FlatAutomaton::DenseCompression::Classes);
BENCHMARK_CAPTURE(BM_DenseKernel, hm_raw, "HM",
                  FlatAutomaton::DenseCompression::Raw);
BENCHMARK(BM_RegexCompile);
BENCHMARK_CAPTURE(BM_Topology, tcp, "TCP");
BENCHMARK_CAPTURE(BM_Partition, tcp, "TCP");

int
main(int argc, char **argv)
{
    printSymbolClassTable();
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
