/**
 * @file
 * Multi-stream batch throughput: aggregate bytes/sec of B independent
 * streams over one shared automaton, batched through StreamBatchRunner
 * (cache-blocked rotation + the fused DFA interleave), against the same
 * B streams run one after another through dedicated sessions.
 *
 * Two row groups:
 *  - determinizable rule sets at test scale (Bro217, Brill, EM, LV) in
 *    DFA mode — the fused interleave keeps B independent table-lookup
 *    dependency chains in flight where a lone stream is latency-bound
 *    on its own dependent loads, so these rows carry the headline
 *    single-core batch speedup;
 *  - full-scale workloads in auto mode, where batching must at least
 *    break even (the NFA cores are throughput- not latency-bound).
 *
 * Correctness gate: every batch stream's report digest must equal the
 * whole-input Engine::run digest for the same bytes — the batch is a
 * scheduling change, never an approximation — and main() exits nonzero
 * on any mismatch (CI perf-smoke inherits the failure). Digests are
 * order-canonicalized (sorted) because the batch runs the safe
 * all-bytes stream alphabet while Engine::run resolves the input's
 * exact distinct-byte set, which may reorder reports *within* one
 * position on the sparse core; the report multiset is identical.
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "common/rng.h"
#include "core/sparseap.h"
#include "sim/exec_core.h"
#include "sim/stream_batch.h"
#include "store/format.h"

using namespace sparseap;

namespace {

constexpr size_t kStreamCounts[] = {1, 4, 16, 64};

/** Best-of-@p reps wall seconds of @p fn. */
template <typename Fn>
double
bestSeconds(int reps, Fn &&fn)
{
    double best = 1e300;
    for (int r = 0; r < reps; ++r) {
        const auto t0 = std::chrono::steady_clock::now();
        fn();
        const auto t1 = std::chrono::steady_clock::now();
        best = std::min(best,
                        std::chrono::duration<double>(t1 - t0).count());
    }
    return best;
}

/** Order-canonicalized digest of a report stream. */
uint64_t
sortedDigest(ReportList reports)
{
    std::sort(reports.begin(), reports.end());
    store::DigestBuilder d;
    for (const Report &r : reports) {
        d.add(r.position); // full 64-bit stream offset
        d.add(r.state);
    }
    return d.digest();
}

struct BenchCase
{
    std::string label;
    EngineMode mode = EngineMode::Auto;
    const FlatAutomaton *fa = nullptr;
    std::vector<std::vector<uint8_t>> streams; // kStreamCounts.back()
};

/**
 * One table row per stream count B: sequential service (B dedicated
 * sessions run back to back) vs the batch runner, aggregate MB/s each,
 * plus the per-stream digest gate against whole-input Engine::run.
 * @return false when any stream's digest diverges.
 */
bool
runCase(const BenchCase &bc, Table *table, bool *any_speedup_ok)
{
    SessionConfig config;
    config.mode = bc.mode;
    config.inputSkip = globalOptions().inputSkip;

    bool all_match = true;
    for (size_t b : kStreamCounts) {
        std::vector<std::span<const uint8_t>> spans;
        size_t total_bytes = 0;
        for (size_t i = 0; i < b; ++i) {
            spans.emplace_back(bc.streams[i]);
            total_bytes += bc.streams[i].size();
        }

        // Sequential service: the same B streams, one at a time, each
        // through a dedicated session over the shared automaton.
        const double seq_s = bestSeconds(3, [&] {
            for (size_t i = 0; i < b; ++i) {
                EngineSession session(*bc.fa, config);
                session.restart();
                session.feed(spans[i]);
                if (session.reports().size() == SIZE_MAX)
                    std::abort(); // defeat dead-code elimination
            }
        });

        StreamBatchRunner runner(*bc.fa, config);
        std::vector<StreamResult> results;
        const double batch_s = bestSeconds(3, [&] {
            results = runner.run(spans);
        });

        // Chunked-vs-whole gate on the timed results.
        bool match = true;
        for (size_t i = 0; i < b; ++i) {
            Engine engine(*bc.fa, bc.mode);
            const uint64_t want = sortedDigest(
                engine.run(spans[i]).reports);
            if (sortedDigest(results[i].reports) != want)
                match = false;
        }
        all_match = all_match && match;

        const double seq_mbs = total_bytes / seq_s / 1e6;
        const double batch_mbs = total_bytes / batch_s / 1e6;
        const double speedup = seq_s / batch_s;
        if (b == 16 && speedup >= 1.3)
            *any_speedup_ok = true;
        table->addRow({bc.label, engineModeName(bc.mode),
                       std::to_string(b),
                       std::to_string(bc.streams[0].size() / 1024),
                       Table::fmt(seq_mbs, 1), Table::fmt(batch_mbs, 1),
                       Table::fmt(speedup, 2),
                       match ? "ok" : "MISMATCH"});
    }
    return all_match;
}

/** B streams drawn from one workload's input generator. */
std::vector<std::vector<uint8_t>>
makeStreams(const Workload &w, size_t bytes, Rng &rng)
{
    size_t len = bytes;
    if (w.inputBytesCap > 0)
        len = std::min(len, w.inputBytesCap);
    std::vector<std::vector<uint8_t>> streams;
    const size_t b = *std::max_element(std::begin(kStreamCounts),
                                       std::end(kStreamCounts));
    streams.reserve(b);
    for (size_t i = 0; i < b; ++i)
        streams.push_back(synthesizeInput(w.input, len, rng));
    return streams;
}

} // namespace

int
main()
{
    printSection("Multi-stream batch throughput (aggregate bytes/sec)");
    static ExperimentRunner runner;
    Table table({"App", "Mode", "Streams", "KiB/stream", "Seq MB/s",
                 "Batch MB/s", "Speedup", "Match"});

    bool all_match = true;
    bool any_speedup_ok = false;
    Rng rng(20180621);

    // Rule sets whose automata determinize at test scale: the DFA rows
    // where the fused interleave carries the batch win.
    std::vector<BenchCase> cases;
    std::vector<std::unique_ptr<FlatAutomaton>> owned;
    for (const char *abbr : {"Bro217", "Brill", "EM", "LV"}) {
        Workload w = generateWorkload(abbr, 7, 5);
        owned.push_back(std::make_unique<FlatAutomaton>(w.app));
        if (owned.back()->ensureHotDfa() == nullptr) {
            std::fprintf(stderr, "%s: no DFA at test scale, skipped\n",
                         abbr);
            owned.pop_back();
            continue;
        }
        BenchCase bc;
        bc.label = std::string(abbr) + "@5%";
        bc.mode = EngineMode::Dfa;
        bc.fa = owned.back().get();
        bc.streams = makeStreams(w, 64 * 1024, rng);
        cases.push_back(std::move(bc));
    }

    // Full-scale workloads on the auto-resolved NFA cores: batching
    // must break even here (the rotation is a scheduling change).
    for (const char *abbr : {"Snort", "HM"}) {
        const LoadedApp &app = runner.load(abbr);
        BenchCase bc;
        bc.label = abbr;
        bc.mode = EngineMode::Auto;
        bc.fa = &app.flat();
        const size_t len = std::min<size_t>(app.input.size(), 32768);
        const size_t b = *std::max_element(std::begin(kStreamCounts),
                                           std::end(kStreamCounts));
        for (size_t i = 0; i < b; ++i) {
            // Rotate the shared input so streams are distinct.
            std::vector<uint8_t> s(len);
            for (size_t j = 0; j < len; ++j)
                s[j] = app.input[(j + i * 97) % app.input.size()];
            bc.streams.push_back(std::move(s));
        }
        cases.push_back(std::move(bc));
    }

    for (const BenchCase &bc : cases)
        all_match = runCase(bc, &table, &any_speedup_ok) && all_match;

    runner.printTable(table);

    if (!all_match) {
        std::fprintf(stderr, "FAIL: batch reports diverged from "
                             "whole-input Engine::run\n");
        return 1;
    }
    if (!any_speedup_ok)
        std::fprintf(stderr, "note: no case reached 1.3x at B=16 on "
                             "this host\n");
    return 0;
}
