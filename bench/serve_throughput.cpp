/**
 * @file
 * Serving-path throughput: end-to-end bytes/sec and request latency of
 * the apserved stack — framing protocol over a Unix-domain socket,
 * admission queue, MatchService session table — against the same
 * automata, measured at B ∈ {1, 8, 32} concurrent client streams.
 *
 * The server runs in-process on a temp socket; every stream is its own
 * connection (matching real clients) feeding 16 KiB chunks. Each
 * configuration runs twice — serving-plane observability off and on
 * (rolling-window sampler, per-tenant attribution, request tracing;
 * docs/OBSERVABILITY.md) — so the cost of the always-on telemetry is a
 * printed column pair, not a guess. Latency percentiles come from the
 * observability-on run, the shape operators actually deploy.
 *
 * Correctness gate: per stream and per run, the sorted digest of every
 * report the socket returned (feeds + close) must equal the digest of
 * a local whole-input Engine::run over the same bytes — the daemon is
 * a transport, never an approximation — and main() exits nonzero on
 * any mismatch or any shed at this (unsaturated) load.
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "common/rng.h"
#include "core/sparseap.h"
#include "serve/client.h"
#include "serve/server.h"
#include "sim/engine.h"
#include "store/format.h"

using namespace sparseap;
using serve::ServeClient;

namespace {

constexpr size_t kStreamCounts[] = {1, 8, 32};
constexpr size_t kChunkBytes = 16 * 1024;

/** Order-canonicalized digest of a report stream. */
uint64_t
sortedDigest(ReportList reports)
{
    std::sort(reports.begin(), reports.end());
    store::DigestBuilder d;
    for (const Report &r : reports) {
        d.add(r.position);
        d.add(r.state);
    }
    return d.digest();
}

struct StreamOutcome
{
    Histogram latency;
    uint64_t digest = 0;
    bool ok = false;
};

void
runStream(const std::string &socket_path, const std::string &tenant,
          uint64_t stream_id, const std::vector<uint8_t> &input,
          StreamOutcome *out)
{
    ServeClient client;
    std::string error;
    if (!client.connect(socket_path, &error) ||
        client.open(tenant, stream_id).status != ServeClient::Status::Ok)
        return;
    ReportList all;
    for (size_t off = 0; off < input.size(); off += kChunkBytes) {
        const size_t n = std::min(kChunkBytes, input.size() - off);
        serve::ReportGroup group;
        const auto t0 = std::chrono::steady_clock::now();
        const auto r =
            client.feed(tenant, stream_id, {input.data() + off, n},
                        &group);
        const auto t1 = std::chrono::steady_clock::now();
        if (r.status != ServeClient::Status::Ok)
            return; // sheds fail the gate via the shed counter below
        out->latency.add(static_cast<uint64_t>(
            std::chrono::duration_cast<std::chrono::microseconds>(t1 -
                                                                  t0)
                .count()));
        all.insert(all.end(), group.reports.begin(), group.reports.end());
    }
    serve::ReportGroup tail;
    if (client.closeStream(tenant, stream_id, &tail).status !=
        ServeClient::Status::Ok)
        return;
    all.insert(all.end(), tail.reports.begin(), tail.reports.end());
    out->digest = sortedDigest(std::move(all));
    out->ok = true;
}

struct RunResult
{
    double mbps = 0.0;
    Histogram latency;
    bool match = false;
};

/** One full server lifecycle at @p b streams, obs on or off. */
RunResult
runOnce(const std::shared_ptr<FlatAutomaton> &fa,
        const std::string &label, const std::string &socket_path,
        const std::vector<std::vector<uint8_t>> &inputs,
        const std::vector<uint64_t> &want, size_t b, bool obs)
{
    serve::MatchServiceConfig mcfg;
    mcfg.tenantMetrics = obs;
    serve::MatchService service(mcfg);
    service.addTenant(label, fa);
    serve::ServerConfig scfg;
    scfg.socketPath = socket_path;
    scfg.workers = 4;
    scfg.observability.enabled = obs;
    // Sample fast enough that the observer thread actually runs inside
    // the measurement window — the cost being measured includes it.
    scfg.observability.samplePeriodMillis = 200;
    serve::Server server(&service, scfg);
    std::string error;
    if (!server.start(&error))
        fatal("server start: ", error);

    std::vector<StreamOutcome> outcomes(b);
    std::vector<std::thread> threads;
    threads.reserve(b);
    const auto t0 = std::chrono::steady_clock::now();
    for (size_t i = 0; i < b; ++i)
        threads.emplace_back(runStream, socket_path, label,
                             static_cast<uint64_t>(i + 1),
                             std::cref(inputs[i]), &outcomes[i]);
    for (std::thread &t : threads)
        t.join();
    const double wall =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      t0)
            .count();

    const auto adm = server.admission().stats();
    server.stop();

    RunResult result;
    uint64_t bytes = 0;
    result.match = adm.shed == 0;
    for (size_t i = 0; i < b; ++i) {
        result.latency.merge(outcomes[i].latency);
        bytes += inputs[i].size();
        if (!outcomes[i].ok || outcomes[i].digest != want[i])
            result.match = false;
    }
    result.mbps = bytes / wall / 1e6;
    return result;
}

} // namespace

int
main()
{
    printSection("Serving-path throughput (socket end to end)");
    static ExperimentRunner runner;
    Table table({"App", "Streams", "KiB/stream", "MB/s off", "MB/s on",
                 "Obs %", "p50 us", "p95 us", "p99 us", "Match"});

    const std::string socket_path =
        "/tmp/sparseap-serve-bench." + std::to_string(::getpid()) +
        ".sock";
    Rng rng(20180808);
    bool all_ok = true;

    for (const char *abbr : {"Bro217", "Brill", "EM", "LV"}) {
        Workload w = generateWorkload(abbr, 7, 5);
        auto fa = std::make_shared<FlatAutomaton>(w.app);
        if (fa->ensureHotDfa() == nullptr) {
            std::fprintf(stderr, "%s: no DFA at test scale, skipped\n",
                         abbr);
            continue;
        }
        const std::string label = std::string(abbr) + "@5%";

        const size_t max_b = *std::max_element(
            std::begin(kStreamCounts), std::end(kStreamCounts));
        std::vector<std::vector<uint8_t>> inputs;
        std::vector<uint64_t> want(max_b);
        inputs.reserve(max_b);
        for (size_t i = 0; i < max_b; ++i) {
            inputs.push_back(synthesizeInput(w.input, 64 * 1024, rng));
            Engine engine(*fa, EngineMode::Auto);
            want[i] = sortedDigest(engine.run(inputs[i]).reports);
        }

        for (size_t b : kStreamCounts) {
            const RunResult off = runOnce(fa, label, socket_path,
                                          inputs, want, b, false);
            const RunResult on = runOnce(fa, label, socket_path,
                                         inputs, want, b, true);
            const bool match = off.match && on.match;
            all_ok = all_ok && match;
            const double obs_pct =
                off.mbps > 0.0
                    ? 100.0 * (off.mbps - on.mbps) / off.mbps
                    : 0.0;
            table.addRow({label, std::to_string(b),
                          std::to_string(inputs[0].size() / 1024),
                          Table::fmt(off.mbps, 1),
                          Table::fmt(on.mbps, 1),
                          Table::fmt(obs_pct, 1),
                          Table::fmt(on.latency.p50(), 0),
                          Table::fmt(on.latency.p95(), 0),
                          Table::fmt(on.latency.p99(), 0),
                          match ? "ok" : "MISMATCH"});
        }
    }

    runner.printTable(table);
    if (!all_ok) {
        std::fprintf(stderr, "FAIL: socket reports diverged from "
                             "Engine::run (or sheds at low load)\n");
        return 1;
    }
    return 0;
}
