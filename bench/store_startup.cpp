/**
 * @file
 * Startup cost of the compile pipeline (flatten + profile + partition)
 * per app, with the artifact store off, cold (computing and filling the
 * cache) and warm (served from the cache): the warm pass must load
 * mmap-able blobs instead of re-running generation-time analyses, which
 * is where the suite-level >=5x startup win comes from. Cache hit/miss/
 * store counters are printed per pass.
 *
 * The bench always runs against its own temporary cache directory (an
 * ambient SPARSEAP_CACHE_DIR would make the "cold" pass warm), removed
 * on exit.
 */

#include <chrono>
#include <filesystem>
#include <iostream>

#include "core/sparseap.h"
#include "telemetry/metrics.h"

using namespace sparseap;
using store::ArtifactCache;
using store::CacheStats;
using store::ScopedCacheOverride;

namespace {

constexpr double kFractions[] = {0.001, 0.01};

/** Run one app's full compile pipeline; @return wall milliseconds. */
double
pipelineMs(const LoadedApp &app)
{
    const auto t0 = std::chrono::steady_clock::now();
    app.flat();
    app.prewarmProfiles(kFractions);
    for (const double f : kFractions)
        preparePartition(app, app.execOptions(f, ApConfig::kHalfCore));
    const auto t1 = std::chrono::steady_clock::now();
    return std::chrono::duration<double, std::milli>(t1 - t0).count();
}

struct Pass
{
    std::vector<double> ms; ///< per app, catalog order
    /** Hot-DFA artifacts served from the store per app (warm hits). */
    std::vector<uint64_t> dfaWarm;
    double total = 0.0;
    uint64_t dfaWarmTotal = 0;
    CacheStats stats;
};

/** Current value of the store.dfa_warm counter (0 when never hit). */
uint64_t
dfaWarmCount()
{
    const telemetry::Snapshot s = telemetry::snapshot();
    const auto it = s.counters.find("store.dfa_warm");
    return it == s.counters.end() ? 0 : it->second;
}

/**
 * One pass over @p apps with a fresh runner (so nothing is served from
 * in-memory caches — only the artifact store distinguishes the passes).
 * Workload generation/input synthesis happens in load(), outside the
 * timed window: the bench isolates the flatten/profile/partition cost
 * the store actually caches.
 */
Pass
runPass(const std::vector<std::string> &apps)
{
    ArtifactCache::global().resetStats();
    ExperimentRunner runner;
    Pass pass;
    for (const std::string &abbr : apps) {
        const LoadedApp &app = runner.load(abbr);
        const uint64_t dfa0 = dfaWarmCount();
        const double ms = pipelineMs(app);
        pass.ms.push_back(ms);
        pass.total += ms;
        const uint64_t dfa = dfaWarmCount() - dfa0;
        pass.dfaWarm.push_back(dfa);
        pass.dfaWarmTotal += dfa;
        runner.unload(abbr);
    }
    pass.stats = ArtifactCache::global().stats();
    return pass;
}

void
printStats(const char *label, const CacheStats &s)
{
    std::cout << label << ": " << s.hits << " hits, " << s.misses
              << " misses (" << s.invalid << " invalid), " << s.stores
              << " stores, " << s.storeErrors << " store errors\n";
}

} // namespace

int
main()
{
    ExperimentRunner runner;
    const std::vector<std::string> apps = runner.selectApps("HML");
    printSection("Store startup: compile-pipeline time per app "
                 "(0.1%/1% profiling, 24K capacity)");

    Pass off;
    {
        ScopedCacheOverride disabled("");
        off = runPass(apps);
    }

    namespace fs = std::filesystem;
    const fs::path dir =
        fs::temp_directory_path() / "sparseap_store_startup";
    fs::remove_all(dir);
    const ScopedCacheOverride scope(dir.string());
    const Pass cold = runPass(apps);
    const Pass warm = runPass(apps);

    // DfaWarm counts the hot-DFA artifacts the warm pass attached from
    // blobs instead of re-determinizing (the store.dfa_warm counter).
    Table table({"App", "NoCache(ms)", "Cold(ms)", "Warm(ms)", "Speedup",
                 "DfaWarm"});
    for (size_t i = 0; i < apps.size(); ++i) {
        table.addRow({apps[i], Table::fmt(off.ms[i], 2),
                      Table::fmt(cold.ms[i], 2),
                      Table::fmt(warm.ms[i], 2),
                      Table::fmt(warm.ms[i] > 0.0
                                     ? cold.ms[i] / warm.ms[i]
                                     : 0.0,
                                 1),
                      std::to_string(warm.dfaWarm[i])});
    }
    table.addRow({"total", Table::fmt(off.total, 2),
                  Table::fmt(cold.total, 2), Table::fmt(warm.total, 2),
                  Table::fmt(warm.total > 0.0 ? cold.total / warm.total
                                              : 0.0,
                             1),
                  std::to_string(warm.dfaWarmTotal)});
    runner.printTable(table);

    std::cout << "\n";
    printStats("no-cache", off.stats);
    printStats("cold    ", cold.stats);
    printStats("warm    ", warm.stats);
    std::cout << "suite startup speedup (cold/warm): "
              << Table::fmt(warm.total > 0.0 ? cold.total / warm.total
                                             : 0.0,
                            1)
              << "x over " << apps.size() << " app(s)\n";

    fs::remove_all(dir);
    return 0;
}
