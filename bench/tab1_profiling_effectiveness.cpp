/**
 * @file
 * Table I: effectiveness of profile-based hot/cold prediction.
 *
 * The input is split in half; profiling prefixes of 0.2%, 2%, 20% and
 * 100% of the first half (= 0.1%, 1%, 10%, 50% of the whole input)
 * predict the hot set, evaluated against the hot set of the second half
 * (the testing input). Hot = positive. Fermi and SPM are excluded, as in
 * the paper (their start-of-data anchoring makes prefix profiles
 * meaningless).
 *
 * All four prefix profiles come from ONE checkpointed engine pass over
 * the first half (hot sets are monotone in the prefix), so each app is
 * simulated twice in total instead of five times.
 */

#include <algorithm>
#include <iostream>

#include "core/sparseap.h"

using namespace sparseap;

int
main()
{
    ExperimentRunner runner;
    printSection("Table I: effectiveness of profile-based prediction");

    const double kPrefixes[] = {0.002, 0.02, 0.2, 1.0}; // of first half

    struct Row
    {
        bool valid = false;
        PredictionMetrics m[4];
    };
    std::vector<Row> rows(runner.selectApps("HML").size());

    runner.forEachApp("HML", [&](const LoadedApp &app, size_t i) {
        if (app.entry.abbr == "Fermi" || app.entry.abbr == "SPM")
            return;
        const FlatAutomaton &fa = app.flat();
        const size_t half = app.input.size() / 2;

        const HotColdProfile reference = profileApplication(
            fa, std::span<const uint8_t>(app.input.data() + half, half));

        size_t checkpoints[4];
        for (int p = 0; p < 4; ++p)
            checkpoints[p] = std::max<size_t>(
                1, static_cast<size_t>(static_cast<double>(half) *
                                       kPrefixes[p]));
        const std::vector<HotColdProfile> profs = profileApplication(
            fa, std::span<const uint8_t>(app.input.data(), half),
            checkpoints);

        rows[i].valid = true;
        for (int p = 0; p < 4; ++p)
            rows[i].m[p] = comparePrediction(profs[p].hot, reference.hot);
    });

    std::vector<double> accuracy[4], recall[4], precision[4];
    for (const Row &row : rows) {
        if (!row.valid)
            continue;
        for (int p = 0; p < 4; ++p) {
            accuracy[p].push_back(row.m[p].accuracy());
            recall[p].push_back(row.m[p].recall());
            precision[p].push_back(row.m[p].precision());
        }
    }

    Table table({"% of entire input", "0.1%", "1%", "10%", "50%"});
    auto addRow = [&](const char *name, std::vector<double> *vals) {
        std::vector<std::string> cells = {name};
        for (int p = 0; p < 4; ++p)
            cells.push_back(Table::pct(mean(vals[p]), 0));
        table.addRow(cells);
    };
    addRow("Accuracy", accuracy);
    addRow("Recall", recall);
    addRow("Precision", precision);
    runner.printTable(table);

    std::cout << "\npaper: accuracy 87/90/93/97%, recall 64/76/87/97%, "
                 "precision 94/92/90/92%\n";
    return 0;
}
