/**
 * @file
 * Table I: effectiveness of profile-based hot/cold prediction.
 *
 * The input is split in half; profiling prefixes of 0.2%, 2%, 20% and
 * 100% of the first half (= 0.1%, 1%, 10%, 50% of the whole input)
 * predict the hot set, evaluated against the hot set of the second half
 * (the testing input). Hot = positive. Fermi and SPM are excluded, as in
 * the paper (their start-of-data anchoring makes prefix profiles
 * meaningless).
 */

#include <iostream>

#include "core/sparseap.h"

using namespace sparseap;

int
main()
{
    ExperimentRunner runner;
    printSection("Table I: effectiveness of profile-based prediction");

    const double kPrefixes[] = {0.002, 0.02, 0.2, 1.0}; // of first half
    const char *const kLabels[] = {"0.1%", "1%", "10%", "50%"};

    std::vector<double> accuracy[4], recall[4], precision[4];

    for (const std::string &abbr : runner.selectApps("HML")) {
        if (abbr == "Fermi" || abbr == "SPM")
            continue;
        const LoadedApp &app = runner.load(abbr);
        const FlatAutomaton fa(app.workload.app);
        const size_t half = app.input.size() / 2;

        const HotColdProfile reference = profileApplication(
            fa, std::span<const uint8_t>(app.input.data() + half, half));

        for (int p = 0; p < 4; ++p) {
            const size_t n = std::max<size_t>(
                1, static_cast<size_t>(static_cast<double>(half) *
                                       kPrefixes[p]));
            const HotColdProfile prof = profileApplication(
                fa, std::span<const uint8_t>(app.input.data(), n));
            const PredictionMetrics m =
                comparePrediction(prof.hot, reference.hot);
            accuracy[p].push_back(m.accuracy());
            recall[p].push_back(m.recall());
            precision[p].push_back(m.precision());
        }
        runner.unload(abbr);
    }

    Table table({"% of entire input", "0.1%", "1%", "10%", "50%"});
    auto row = [&](const char *name, std::vector<double> *vals) {
        std::vector<std::string> cells = {name};
        for (int p = 0; p < 4; ++p)
            cells.push_back(Table::pct(mean(vals[p]), 0));
        table.addRow(cells);
    };
    row("Accuracy", accuracy);
    row("Recall", recall);
    row("Precision", precision);
    runner.printTable(table);

    (void)kLabels;
    std::cout << "\npaper: accuracy 87/90/93/97%, recall 64/76/87/97%, "
                 "precision 94/92/90/92%\n";
    return 0;
}
