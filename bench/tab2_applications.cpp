/**
 * @file
 * Table II: the application inventory — #states, #NFAs, MaxTopo and
 * #reporting-states per application, next to the paper's published
 * numbers. This is the generation-fidelity check for the whole suite.
 */

#include <iostream>

#include "core/sparseap.h"

using namespace sparseap;

int
main()
{
    ExperimentRunner runner;
    printSection("Table II: list of evaluated applications "
                 "(ours vs paper)");

    Table table({"App", "Grp", "#States", "paper", "#NFAs", "paper",
                 "MaxTopo", "paper", "#RStates", "paper"});

    for (const std::string &abbr : runner.selectApps("HML")) {
        const LoadedApp &loaded = runner.load(abbr);
        const Application &app = loaded.workload.app;
        const CatalogEntry &e = loaded.entry;
        table.addRow({
            abbr,
            std::string(1, e.group),
            std::to_string(app.totalStates()),
            std::to_string(e.paperStates),
            std::to_string(app.nfaCount()),
            std::to_string(e.paperNfas),
            std::to_string(loaded.topology().maxOrder()),
            std::to_string(e.paperMaxTopo),
            std::to_string(app.reportingStates()),
            std::to_string(e.paperRStates),
        });
        runner.unload(abbr);
    }
    runner.printTable(table);
    return 0;
}
