/**
 * @file
 * Table II: the application inventory — #states, #NFAs, MaxTopo and
 * #reporting-states per application, next to the paper's published
 * numbers. This is the generation-fidelity check for the whole suite.
 */

#include <iostream>

#include "core/sparseap.h"

using namespace sparseap;

int
main()
{
    ExperimentRunner runner;
    printSection("Table II: list of evaluated applications "
                 "(ours vs paper)");

    struct Row
    {
        std::string abbr;
        char group;
        size_t states, nfas, maxTopo, rstates;
        size_t paperStates, paperNfas, paperMaxTopo, paperRStates;
    };
    std::vector<Row> rows(runner.selectApps("HML").size());

    runner.forEachApp("HML", [&](const LoadedApp &loaded, size_t i) {
        const Application &app = loaded.workload.app;
        const CatalogEntry &e = loaded.entry;
        rows[i] = {e.abbr,
                   e.group,
                   app.totalStates(),
                   app.nfaCount(),
                   loaded.topology().maxOrder(),
                   app.reportingStates(),
                   e.paperStates,
                   e.paperNfas,
                   e.paperMaxTopo,
                   e.paperRStates};
    });

    Table table({"App", "Grp", "#States", "paper", "#NFAs", "paper",
                 "MaxTopo", "paper", "#RStates", "paper"});
    for (const Row &r : rows) {
        table.addRow({
            r.abbr,
            std::string(1, r.group),
            std::to_string(r.states),
            std::to_string(r.paperStates),
            std::to_string(r.nfas),
            std::to_string(r.paperNfas),
            std::to_string(r.maxTopo),
            std::to_string(r.paperMaxTopo),
            std::to_string(r.rstates),
            std::to_string(r.paperRStates),
        });
    }
    runner.printTable(table);
    return 0;
}
