/**
 * @file
 * Table IV: runtime statistics of AP vs BaseAP/SpAP at the 24K half-core
 * with 1% profiling — execution (batch) counts per mode, intermediate
 * reports, enable stalls, and the jump ratio.
 */

#include <iostream>

#include "core/sparseap.h"

using namespace sparseap;

int
main()
{
    ExperimentRunner runner;
    printSection("Table IV: runtime statistics (1% profiling, 24K "
                 "capacity)");

    Table table({"App", "AP", "BaseAP", "SpAP", "#IntermReports",
                 "#EStalls", "JumpRatio"});

    for (const std::string &abbr : runner.selectApps("HM")) {
        const LoadedApp &app = runner.load(abbr);
        SpapRunStats s = runAppConfig(app, 0.01, ApConfig::kHalfCore);
        table.addRow({abbr, std::to_string(s.baselineBatches),
                      std::to_string(s.baseApBatches),
                      std::to_string(s.spApBatches),
                      std::to_string(s.intermediateReports),
                      std::to_string(s.enableStalls),
                      s.jumpRatio < 0 ? "-" : Table::pct(s.jumpRatio)});
        runner.unload(abbr);
    }
    runner.printTable(table);

    std::cout << "\npaper (excerpt): CAV4k 47->1+0; HM1500 15->4+13, "
                 "99.4% jump; PEN 2->1+1 with 5.45M reports and 4.5M "
                 "stalls, 1.96% jump\n";
    return 0;
}
