/**
 * @file
 * Table IV: runtime statistics of AP vs BaseAP/SpAP at the 24K half-core
 * with 1% profiling — execution (batch) counts per mode, intermediate
 * reports, enable stalls, and the jump ratio.
 */

#include <iostream>

#include "core/sparseap.h"

using namespace sparseap;

int
main()
{
    ExperimentRunner runner;
    printSection("Table IV: runtime statistics (1% profiling, 24K "
                 "capacity)");

    struct Row
    {
        std::string abbr;
        SpapRunStats s;
    };
    std::vector<Row> rows(runner.selectApps("HM").size());

    runner.forEachApp("HM", [&](const LoadedApp &app, size_t i) {
        rows[i] = {app.entry.abbr,
                   runAppConfig(app, 0.01, ApConfig::kHalfCore)};
    });

    Table table({"App", "AP", "BaseAP", "SpAP", "#IntermReports",
                 "#EStalls", "JumpRatio"});
    for (const Row &row : rows) {
        const SpapRunStats &s = row.s;
        table.addRow({row.abbr, std::to_string(s.baselineBatches),
                      std::to_string(s.baseApBatches),
                      std::to_string(s.spApBatches),
                      std::to_string(s.intermediateReports),
                      std::to_string(s.enableStalls),
                      s.jumpRatio < 0 ? "-" : Table::pct(s.jumpRatio)});
    }
    runner.printTable(table);

    std::cout << "\npaper (excerpt): CAV4k 47->1+0; HM1500 15->4+13, "
                 "99.4% jump; PEN 2->1+1 with 5.45M reports and 4.5M "
                 "stalls, 1.96% jump\n";
    return 0;
}
