/**
 * @file
 * Table IV: runtime statistics of AP vs BaseAP/SpAP at the 24K half-core
 * with 1% profiling — execution (batch) counts per mode, intermediate
 * reports, enable stalls, and the jump ratio.
 */

#include <iostream>

#include "core/sparseap.h"
#include "telemetry/metrics.h"

using namespace sparseap;

int
main()
{
    ExperimentRunner runner;
    printSection("Table IV: runtime statistics (1% profiling, 24K "
                 "capacity)");

    struct Row
    {
        std::string abbr;
        SpapRunStats s;
    };
    std::vector<Row> rows(runner.selectApps("HM").size());

    const telemetry::Snapshot before = telemetry::snapshot();

    runner.forEachApp("HM", [&](const LoadedApp &app, size_t i) {
        rows[i] = {app.entry.abbr,
                   runAppConfig(app, 0.01, ApConfig::kHalfCore)};
    });

    Table table({"App", "AP", "BaseAP", "SpAP", "#IntermReports",
                 "#EStalls", "JumpRatio"});
    for (const Row &row : rows) {
        const SpapRunStats &s = row.s;
        table.addRow({row.abbr, std::to_string(s.baselineBatches),
                      std::to_string(s.baseApBatches),
                      std::to_string(s.spApBatches),
                      std::to_string(s.intermediateReports),
                      std::to_string(s.enableStalls),
                      s.jumpRatio < 0 ? "-" : Table::pct(s.jumpRatio)});
    }
    runner.printTable(table);

    // Cross-check: the telemetry registry's merged spap.* counter deltas
    // over the sweep must equal the table's own sums. The counters are
    // whole-sweep sums of per-thread cells, so this holds at any
    // SPARSEAP_JOBS value; a mismatch means an execution path bypassed
    // (or double-counted) the instrumentation.
    const telemetry::Snapshot delta =
        before.deltaTo(telemetry::snapshot());
    uint64_t sum_stalls = 0, sum_interm = 0, sum_jumps = 0,
             sum_enables = 0;
    for (const Row &row : rows) {
        sum_stalls += row.s.enableStalls;
        sum_interm += row.s.intermediateReports;
        sum_jumps += row.s.jumps;
        sum_enables += row.s.enables;
    }
    auto counter = [&](const char *name) -> uint64_t {
        auto it = delta.counters.find(name);
        return it != delta.counters.end() ? it->second : 0;
    };
    const bool consistent = counter("spap.estalls") == sum_stalls &&
                            counter("spap.intermediate_reports") ==
                                sum_interm &&
                            counter("spap.jumps") == sum_jumps &&
                            counter("spap.enables") == sum_enables;
    std::cout << "\ntelemetry cross-check (jumps/enables/estalls/"
                 "intermediate reports vs table sums): "
              << (consistent ? "consistent" : "MISMATCH") << "\n";

    std::cout << "\npaper (excerpt): CAV4k 47->1+0; HM1500 15->4+13, "
                 "99.4% jump; PEN 2->1+1 with 5.45M reports and 4.5M "
                 "stalls, 1.96% jump\n";
    return consistent ? 0 : 1;
}
