/**
 * @file
 * apsim — command-line driver for the SparseAP library.
 *
 *   apsim info <app.nfa | @ABBR>
 *       Structure summary: states, NFAs, depth, SCCs, groups.
 *
 *   apsim run <app.nfa | @ABBR> <input-file | %SIZE_KB> [--capacity N]
 *       Functional execution; prints the report stream summary.
 *
 *   apsim partition <app.nfa | @ABBR> <input | %KB> [--capacity N]
 *                   [--profile F] [--no-fill] [--dedupe]
 *       Full SparseAP pipeline; prints Table-IV-style statistics.
 *
 *   apsim generate @ABBR <out.nfa> [--scale P] [--seed S]
 *       Write a generated workload in the text format.
 *
 * `@ABBR` names a catalog application (e.g., @CAV4k, @Snort). `%SIZE_KB`
 * synthesizes that much input from the workload's input model (catalog
 * apps only).
 */

#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "core/sparseap.h"

using namespace sparseap;

namespace {

[[noreturn]] void
usage()
{
    std::cerr
        << "usage:\n"
        << "  apsim info <app.nfa|@ABBR>\n"
        << "  apsim run <app.nfa|@ABBR> <input|%KB> [--capacity N]\n"
        << "  apsim partition <app.nfa|@ABBR> <input|%KB> [--capacity N]"
           " [--profile F] [--no-fill] [--dedupe]\n"
        << "  apsim generate @ABBR <out.nfa> [--scale P] [--seed S]\n";
    std::exit(2);
}

/** A loaded application plus (for catalog apps) its input model. */
struct LoadedSpec
{
    Workload workload;
    bool fromCatalog = false;
};

LoadedSpec
loadSpec(const std::string &spec, uint64_t seed, unsigned scale)
{
    LoadedSpec out;
    if (!spec.empty() && spec[0] == '@') {
        out.workload = generateWorkload(spec.substr(1), seed, scale);
        out.fromCatalog = true;
        return out;
    }
    std::ifstream in(spec);
    if (!in)
        fatal("cannot open application file '", spec, "'");
    out.workload.app = readApplication(in);
    return out;
}

std::vector<uint8_t>
loadInput(const std::string &spec, const LoadedSpec &app, uint64_t seed)
{
    if (!spec.empty() && spec[0] == '%') {
        if (!app.fromCatalog) {
            fatal("synthetic input (%KB) requires a catalog application "
                  "(@ABBR) whose input model is known");
        }
        const long kb = std::atol(spec.c_str() + 1);
        if (kb <= 0)
            fatal("bad synthetic input size '", spec, "'");
        Rng rng(seed ^ 0xabcdef);
        return synthesizeInput(app.workload.input,
                               static_cast<size_t>(kb) * 1024, rng);
    }
    std::ifstream in(spec, std::ios::binary);
    if (!in)
        fatal("cannot open input file '", spec, "'");
    std::ostringstream ss;
    ss << in.rdbuf();
    const std::string data = ss.str();
    return {data.begin(), data.end()};
}

int
cmdInfo(const LoadedSpec &spec)
{
    const Application &app = spec.workload.app;
    AppTopology topo(app);
    std::cout << "application: " << app.name() << " (" << app.abbr()
              << ")\n";
    std::cout << "  states:            " << app.totalStates() << "\n";
    std::cout << "  NFAs:              " << app.nfaCount() << "\n";
    std::cout << "  reporting states:  " << app.reportingStates() << "\n";
    std::cout << "  max topo order:    " << topo.maxOrder() << "\n";
    std::cout << "  largest SCC:       " << topo.largestScc() << "\n";
    std::cout << "  start-of-data app: "
              << (app.startOfDataOnly() ? "yes" : "no") << "\n";
    const OptimizeStats merge = measurePrefixMerging(app);
    std::cout << "  prefix-merge potential: "
              << Table::pct(merge.reduction()) << " of states\n";
    for (size_t cap :
         {ApConfig::kQuarterCore, ApConfig::kHalfCore,
          ApConfig::kFullChip}) {
        std::cout << "  batches at " << cap << " STEs: "
                  << packWholeNfas(app, cap).batchCount() << "\n";
    }
    return 0;
}

int
cmdRun(const LoadedSpec &spec, const std::vector<uint8_t> &input,
       size_t capacity)
{
    const Application &app = spec.workload.app;
    ApConfig config;
    config.capacity = capacity;
    BaselineResult r = runBaseline(app, config, input, true);
    std::cout << "input symbols:   " << input.size() << "\n";
    std::cout << "batches:         " << r.batches << "\n";
    std::cout << "cycles:          " << r.cycles << "\n";
    std::cout << "modelled time:   "
              << Table::fmt(config.cyclesToSeconds(
                                static_cast<double>(r.cycles)) *
                                1e3,
                            3)
              << " ms\n";
    std::cout << "reports:         " << r.reports.size() << "\n";
    for (size_t i = 0; i < std::min<size_t>(10, r.reports.size()); ++i) {
        const GlobalStateRef ref = app.resolve(r.reports[i].state);
        std::cout << "  @" << r.reports[i].position << "  "
                  << app.nfa(ref.nfa).name() << "\n";
    }
    if (r.reports.size() > 10)
        std::cout << "  ... " << r.reports.size() - 10 << " more\n";
    return 0;
}

int
cmdPartition(const LoadedSpec &spec, const std::vector<uint8_t> &input,
             const ExecutionOptions &opts)
{
    AppTopology topo(spec.workload.app);
    PreparedPartition prep = preparePartition(topo, opts, input);
    SpapRunStats stats = runBaseApSpap(topo, opts, prep);

    std::cout << "profile window:      " << prep.profileInput.size()
              << " symbols\n";
    std::cout << "test stream:         " << stats.testLength
              << " symbols\n";
    std::cout << "baseline batches:    " << stats.baselineBatches << "\n";
    std::cout << "BaseAP batches:      " << stats.baseApBatches << " ("
              << stats.baseApStates << " states, "
              << stats.intermediateStates << " intermediate)\n";
    std::cout << "SpAP executions:     " << stats.spApBatches << " of "
              << stats.spApConfiguredBatches << " configured\n";
    std::cout << "intermediate reports:" << stats.intermediateReports
              << "  (stalls " << stats.enableStalls << ")\n";
    if (stats.jumpRatio >= 0)
        std::cout << "jump ratio:          "
                  << Table::pct(stats.jumpRatio) << "\n";
    std::cout << "resource savings:    "
              << Table::pct(stats.resourceSavings) << "\n";
    std::cout << "speedup:             "
              << Table::fmt(stats.speedup, 2) << "x\n";
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    std::vector<std::string> args(argv + 1, argv + argc);
    if (args.empty())
        usage();
    const std::string cmd = args[0];

    // Shared flag parsing.
    size_t capacity = ApConfig::kHalfCore;
    double profile = 0.01;
    bool fill = true;
    bool dedupe = false;
    uint64_t seed = 20181020;
    unsigned scale = 100;
    std::vector<std::string> positional;
    for (size_t i = 1; i < args.size(); ++i) {
        const std::string &a = args[i];
        auto next = [&]() -> const std::string & {
            if (++i >= args.size())
                usage();
            return args[i];
        };
        if (a == "--capacity")
            capacity = std::strtoull(next().c_str(), nullptr, 10);
        else if (a == "--profile")
            profile = std::atof(next().c_str());
        else if (a == "--seed")
            seed = std::strtoull(next().c_str(), nullptr, 10);
        else if (a == "--scale")
            scale = static_cast<unsigned>(std::atol(next().c_str()));
        else if (a == "--no-fill")
            fill = false;
        else if (a == "--dedupe")
            dedupe = true;
        else if (!a.empty() && a[0] == '-')
            usage();
        else
            positional.push_back(a);
    }

    if (cmd == "info" && positional.size() == 1) {
        return cmdInfo(loadSpec(positional[0], seed, scale));
    }
    if (cmd == "run" && positional.size() == 2) {
        LoadedSpec spec = loadSpec(positional[0], seed, scale);
        return cmdRun(spec, loadInput(positional[1], spec, seed),
                      capacity);
    }
    if (cmd == "partition" && positional.size() == 2) {
        LoadedSpec spec = loadSpec(positional[0], seed, scale);
        ExecutionOptions opts;
        opts.ap.capacity = capacity;
        opts.profileFraction = profile;
        opts.fillOptimization = fill;
        opts.partition.dedupeIntermediates = dedupe;
        opts.fullInputAsTest = spec.workload.fullInputAsTest;
        return cmdPartition(spec, loadInput(positional[1], spec, seed),
                            opts);
    }
    if (cmd == "generate" && positional.size() == 2) {
        if (positional[0].empty() || positional[0][0] != '@')
            usage();
        Workload w =
            generateWorkload(positional[0].substr(1), seed, scale);
        std::ofstream out(positional[1]);
        if (!out)
            fatal("cannot write '", positional[1], "'");
        writeApplication(out, w.app);
        std::cout << "wrote " << w.app.totalStates() << " states in "
                  << w.app.nfaCount() << " NFAs to " << positional[1]
                  << "\n";
        return 0;
    }
    usage();
}
