/**
 * @file
 * Genomics example: approximate motif search with Hamming (BMIA)
 * automata, the Roy-Aluru use case behind ANMLZoo's Hamming and the
 * paper's HM500/1000/1500 workloads.
 *
 * Searches a DNA stream for motifs within a mismatch budget and shows
 * how the mismatch budget changes the automaton size and the SparseAP
 * partition.
 */

#include <iostream>
#include <string>

#include "core/sparseap.h"

using namespace sparseap;

int
main()
{
    const std::string motif = "ACGTACGGTTACGATCGAAT"; // 20-mer

    // One automaton per mismatch budget.
    Application app("motif_search", "MOTIF");
    for (unsigned d = 1; d <= 4; ++d) {
        Nfa nfa = buildHammingNfa(motif, d, "d" + std::to_string(d));
        std::cout << "distance " << d << ": " << nfa.size()
                  << " states\n";
        app.addNfa(std::move(nfa));
    }

    // A DNA stream with increasingly corrupted motif copies planted.
    std::string dna;
    Rng rng(101);
    const char *bases = "ACGT";
    auto plant = [&](unsigned mismatches) {
        std::string copy = motif;
        for (unsigned m = 0; m < mismatches; ++m)
            copy[rng.index(copy.size())] = bases[rng.index(4)];
        dna += copy;
    };
    for (int i = 0; i < 4000; ++i) {
        for (int j = 0; j < 30; ++j)
            dna += bases[rng.index(4)];
        if (i % 100 == 3)
            plant(static_cast<unsigned>(i / 100) % 5);
    }
    const std::span<const uint8_t> input(
        reinterpret_cast<const uint8_t *>(dna.data()), dna.size());

    FlatAutomaton fa(app);
    Engine engine(fa);
    SimResult run = engine.run(input);
    std::vector<size_t> hits(app.nfaCount(), 0);
    for (const Report &r : run.reports)
        ++hits[app.resolve(r.state).nfa];
    for (uint32_t i = 0; i < app.nfaCount(); ++i) {
        std::cout << "motif hits within distance " << i + 1 << ": "
                  << hits[i] << "\n";
    }

    // SparseAP pipeline over a half-sized AP.
    AppTopology topo(app);
    ExecutionOptions opts;
    opts.ap.capacity = app.totalStates() / 2 + 8;
    opts.profileFraction = 0.01;
    SpapRunStats stats = runBaseApSpap(topo, opts, input);
    std::cout << "speedup " << Table::fmt(stats.speedup, 2)
              << "x with savings " << Table::pct(stats.resourceSavings)
              << " (" << stats.intermediateReports
              << " intermediate reports)\n";
    return 0;
}
