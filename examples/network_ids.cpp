/**
 * @file
 * Network intrusion detection example: Snort-style PCRE rules compiled
 * through the regex front end and matched against synthetic traffic,
 * reporting which rules fired where — then accelerated with SparseAP.
 */

#include <iostream>
#include <vector>

#include "core/sparseap.h"

using namespace sparseap;

int
main()
{
    // A small hand-written rule set exercising the regex dialect.
    const std::vector<std::pair<std::string, std::string>> rules = {
        {"sql_injection", "UNION +SELECT"},
        {"path_traversal", "\\.\\./\\.\\./"},
        {"shellcode_nop", "\\x90{8,}"},
        {"php_eval", "eval\\((base64_decode|gzinflate)"},
        {"cmd_exe", "cmd\\.exe.{0,20}/c"},
        {"xss_script", "<script>[^<]*</script>"},
        {"ssh_scan", "SSH-[12]\\.[0-9]+-scanner"},
    };

    Application app("network_ids", "IDS");
    for (const auto &[name, pattern] : rules)
        app.addNfa(compileRegex(pattern, name));

    std::cout << "ruleset: " << app.nfaCount() << " rules, "
              << app.totalStates() << " states\n";

    // Synthetic traffic with attacks spliced in.
    std::string traffic;
    Rng rng(31);
    const std::string attacks[] = {
        "GET /a?q=1 UNION  SELECT pass FROM users",
        "GET /../../../etc/passwd",
        "\x90\x90\x90\x90\x90\x90\x90\x90\x90\x90",
        "eval(base64_decode($_POST['x']))",
        "cmd.exe  /c  del",
        "<script>alert(1)</script>",
        "SSH-2.0-scanner",
    };
    for (int i = 0; i < 3000; ++i) {
        for (int j = 0; j < 60; ++j)
            traffic += static_cast<char>(' ' + rng.uniform(1, 90));
        if (i % 400 == 7)
            traffic += attacks[static_cast<size_t>(i / 400) % 7];
    }
    const std::span<const uint8_t> input(
        reinterpret_cast<const uint8_t *>(traffic.data()), traffic.size());

    // Reference detection pass: which rules fired?
    FlatAutomaton fa(app);
    Engine engine(fa);
    SimResult run = engine.run(input);
    std::vector<size_t> hits(app.nfaCount(), 0);
    for (const Report &r : run.reports)
        ++hits[app.resolve(r.state).nfa];
    for (uint32_t i = 0; i < app.nfaCount(); ++i) {
        std::cout << "  " << app.nfa(i).name() << ": " << hits[i]
                  << " hits\n";
    }

    // SparseAP on a tiny AP (each batch holds roughly half the rules).
    AppTopology topo(app);
    ExecutionOptions opts;
    opts.ap.capacity = app.totalStates() / 2 + 8;
    opts.profileFraction = 0.01;
    SpapRunStats stats =
        runBaseApSpap(topo, opts, input, /*collect_reports=*/true);
    std::cout << "SparseAP: " << stats.baselineBatches
              << " baseline batches -> " << stats.baseApBatches
              << " hot + " << stats.spApBatches
              << " sparse; speedup " << Table::fmt(stats.speedup, 2)
              << "x, savings " << Table::pct(stats.resourceSavings)
              << "\n";
    return 0;
}
