/**
 * @file
 * A guided tour of the paper's illustrative figures, executed live:
 *
 *   Fig. 2  the a((bc)|(cd)+)f NFA and its matching trace
 *   Fig. 4  SCC condensation and topological ordering
 *   Fig. 7  partitioning at layer k with intermediate reporting states
 *   Fig. 9  BaseAP -> SpAP execution with jump operations
 *
 * Run it to see every mechanism of the paper on a five-state example.
 */

#include <iostream>

#include "core/sparseap.h"

using namespace sparseap;

namespace {

std::span<const uint8_t>
bytes(const std::string &s)
{
    return {reinterpret_cast<const uint8_t *>(s.data()), s.size()};
}

void
figure2()
{
    std::cout << "--- Figure 2: a((bc)|(cd)+)f ------------------------\n";
    Application app("fig2", "F2");
    app.addNfa(compileRegex("a((bc)|(cd)+)f", "fig2"));
    const Nfa &nfa = app.nfa(0);
    std::cout << "states: " << nfa.size() << " (S1..S" << nfa.size()
              << "), start states: " << nfa.startStates().size()
              << ", reporting: " << nfa.reportingCount() << "\n";

    FlatAutomaton fa(app);
    Engine engine(fa);
    for (const char *input : {"abcf", "acdcdf", "abdf"}) {
        SimResult r = engine.run(bytes(input));
        std::cout << "  input '" << input << "': "
                  << (r.reports.empty() ? "no match"
                                        : "match at position " +
                                              std::to_string(
                                                  r.reports[0].position))
                  << "\n";
    }
}

void
figure4()
{
    std::cout << "\n--- Figure 4: SCCs and topological order ------------\n";
    // The paper's graph: S1 -> {S2, S4}, S2 -> S3, S4 <-> S5, S5 -> S6,
    // S3 -> S6.
    Nfa nfa("fig4");
    for (int i = 0; i < 6; ++i)
        nfa.addState(SymbolSet::all(),
                     i == 0 ? StartKind::AllInput : StartKind::None,
                     i == 5);
    nfa.addEdge(0, 1);
    nfa.addEdge(0, 3);
    nfa.addEdge(1, 2);
    nfa.addEdge(3, 4);
    nfa.addEdge(4, 3); // the S4 <-> S5 cycle
    nfa.addEdge(4, 5);
    nfa.addEdge(2, 5);
    nfa.finalize();

    Topology topo = analyzeTopology(nfa);
    std::cout << "SCC count: " << topo.scc.count
              << " (S4,S5 share component "
              << topo.scc.component[3] << ")\n";
    for (StateId s = 0; s < nfa.size(); ++s) {
        std::cout << "  S" << s + 1 << ": topological order "
                  << topo.order[s] << ", normalized depth "
                  << Table::fmt(topo.normalizedDepth(s), 2) << "\n";
    }
}

void
figures7and9()
{
    std::cout << "\n--- Figures 7 & 9: partition + BaseAP/SpAP ----------\n";
    // A deep chain whose tail is cold on this input.
    Application app("walk", "W");
    app.addNfa(compileRegex("start_secret_payload", "deep_rule"));
    app.addNfa(compileRegex("noise", "shallow_rule"));
    AppTopology topo(app);

    // Input: the profile window sees only "start_", the test stream
    // later contains "start_secret" (a mis-predicted deepening).
    std::string input = "start_";
    input += std::string(800, '.');
    input += "start_secret";
    input += std::string(800, '.');
    input += "noise";
    input += std::string(400, '.');

    ExecutionOptions opts;
    opts.ap.capacity = 14; // forces two baseline batches
    opts.profileFraction = 0.02;
    opts.profileReferenceBytes = 0;
    opts.fillOptimization = false;

    PreparedPartition prep =
        preparePartition(topo, opts, bytes(input));
    std::cout << "partition layers: k(deep_rule)=" << prep.layers.k[0]
              << " of " << topo.nfa(0).maxOrder << ", k(shallow_rule)="
              << prep.layers.k[1] << " of " << topo.nfa(1).maxOrder
              << "\n";
    std::cout << "hot fragment: " << prep.part.hot.totalStates()
              << " states (" << prep.part.intermediateCount
              << " intermediate reporting states added)\n";
    std::cout << "cold fragment: " << prep.part.cold.totalStates()
              << " states\n";

    SpapRunStats stats = runBaseApSpap(topo, opts, prep, true);
    std::cout << "baseline: " << stats.baselineBatches
              << " batches x " << stats.testLength << " symbols = "
              << stats.baselineCycles << " cycles\n";
    std::cout << "BaseAP mode: " << stats.baseApBatches << " batch, "
              << stats.baseApCycles << " cycles, "
              << stats.intermediateReports
              << " intermediate reports recorded\n";
    std::cout << "SpAP mode: " << stats.spApCycles
              << " cycles (jump ratio "
              << Table::pct(stats.jumpRatio < 0 ? 0 : stats.jumpRatio)
              << " of the input skipped)\n";
    std::cout << "speedup: " << Table::fmt(stats.speedup, 2) << "x\n";
}

} // namespace

int
main()
{
    figure2();
    figure4();
    figures7and9();
    return 0;
}
