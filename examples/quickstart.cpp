/**
 * @file
 * Quickstart: compile a few regexes to homogeneous NFAs, execute them
 * functionally, then run the full SparseAP pipeline (profile -> hot/cold
 * partition -> BaseAP + SpAP modes) and check that the partitioned
 * execution reports exactly what the monolithic automaton reports.
 */

#include <algorithm>
#include <iostream>
#include <string>
#include <vector>

#include "core/sparseap.h"

using namespace sparseap;

int
main()
{
    // 1. Build an application from patterns.
    Application app("quickstart", "QS");
    app.addNfa(compileRegex("virus[0-9]+", "rule_virus"));
    app.addNfa(compileRegex("mal(ware|icious)", "rule_mal"));
    app.addNfa(compileRegex("exploit\\.(exe|dll)", "rule_exploit"));
    app.addNfa(compileRegex("backdoor.{2,8}open", "rule_backdoor"));

    std::cout << "application: " << app.totalStates() << " states in "
              << app.nfaCount() << " NFAs, " << app.reportingStates()
              << " reporting\n";

    // 2. Make an input stream with a few matches buried in noise.
    std::string text;
    Rng rng(7);
    const std::string planted[] = {"virus42", "malware",
                                   "exploit.dll", "backdoor xx open"};
    for (int i = 0; i < 2000; ++i) {
        for (int j = 0; j < 40; ++j)
            text += static_cast<char>('a' + rng.uniform(0, 25));
        if (i % 250 == 0)
            text += planted[static_cast<size_t>(i / 250) % 4];
    }
    const std::span<const uint8_t> input(
        reinterpret_cast<const uint8_t *>(text.data()), text.size());

    // 3. Functional reference run.
    FlatAutomaton fa(app);
    Engine engine(fa);
    SimResult ref = engine.run(input);
    std::cout << "reference run: " << ref.reports.size()
              << " reports over " << ref.cycles << " symbols\n";

    // 4. The SparseAP pipeline on a deliberately tiny AP (so the
    //    application does not fit and partitioning matters).
    AppTopology topo(app);
    ExecutionOptions opts;
    opts.ap.capacity = app.totalStates() / 2 + 4;
    opts.profileFraction = 0.01;

    SpapRunStats stats =
        runBaseApSpap(topo, opts, input, /*collect_reports=*/true);

    std::cout << "baseline: " << stats.baselineBatches << " batches, "
              << stats.baselineCycles << " cycles\n";
    std::cout << "BaseAP:   " << stats.baseApBatches << " batches, "
              << stats.baseApCycles << " cycles ("
              << stats.baseApStates << " states configured, "
              << stats.intermediateStates << " intermediate)\n";
    std::cout << "SpAP:     " << stats.spApBatches << " batches, "
              << stats.spApCycles << " cycles, "
              << stats.intermediateReports << " intermediate reports\n";
    std::cout << "speedup:  " << stats.speedup
              << "  resource savings: " << stats.resourceSavings << "\n";

    // 5. Equivalence check against the baseline reports on the same test
    //    stream (the pipeline profiles on a prefix and tests on the rest).
    PreparedPartition prep = preparePartition(topo, opts, input);
    Engine ref2(fa);
    ReportList expect = ref2.run(prep.testInput).reports;
    std::sort(expect.begin(), expect.end());
    if (expect == stats.reports) {
        std::cout << "OK: partitioned execution matches the monolithic "
                     "automaton ("
                  << expect.size() << " reports)\n";
        return 0;
    }
    std::cerr << "MISMATCH: " << expect.size() << " reference vs "
              << stats.reports.size() << " partitioned reports\n";
    return 1;
}
