/**
 * @file
 * Virus scanning example: a ClamAV-style signature database too large for
 * one AP configuration, scanned over a binary stream.
 *
 * Demonstrates the paper's headline use case: CAV4k-like databases are
 * ~99% cold, so SparseAP configures a fraction of the states and slashes
 * the number of input re-executions.
 */

#include <iostream>

#include "core/sparseap.h"

using namespace sparseap;

int
main()
{
    // A scaled-down ClamAV database (400 signatures) and a deliberately
    // small AP so the database spans many batches.
    Rng rng(11);
    ClamAvParams params;
    params.nfaCount = 400;
    params.meanLength = 120;
    params.maxLength = 600;
    params.plantRate = 0.0001;
    Workload w = makeClamAv(params, rng, "virus_scan_db", "VSCAN");

    Rng input_rng(12);
    std::vector<uint8_t> input =
        synthesizeInput(w.input, 512 * 1024, input_rng);

    std::cout << "database: " << w.app.totalStates() << " states across "
              << w.app.nfaCount() << " signatures\n";

    AppTopology topo(w.app);
    ExecutionOptions opts;
    opts.ap.capacity = 8192;
    opts.profileFraction = 0.01;

    // How much of the database is even reachable on this input?
    FlatAutomaton fa(w.app);
    HotColdProfile oracle = profileApplication(fa, input);
    std::cout << "oracle hot fraction: "
              << Table::pct(oracle.hotFraction()) << "\n";

    SpapRunStats stats = runBaseApSpap(topo, opts, input);
    std::cout << "baseline AP : " << stats.baselineBatches
              << " re-executions of the stream\n";
    std::cout << "BaseAP/SpAP : " << stats.baseApBatches
              << " hot batches + " << stats.spApBatches
              << " sparse batches, " << stats.intermediateReports
              << " intermediate reports\n";
    std::cout << "resource savings: "
              << Table::pct(stats.resourceSavings) << "\n";
    std::cout << "speedup: " << Table::fmt(stats.speedup, 2) << "x\n";

    // AP-CPU alternative (no hardware changes).
    ApCpuStats cpu = runApCpu(topo, opts, input);
    std::cout << "AP-CPU speedup (measured CPU handling): "
              << Table::fmt(cpu.speedup, 2) << "x\n";
    return 0;
}
