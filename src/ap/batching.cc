#include "ap/batching.h"

#include "common/logging.h"

namespace sparseap {

double
BatchPlan::utilization(size_t capacity) const
{
    if (batches.empty() || capacity == 0)
        return 0.0;
    double occupied = 0.0;
    for (const auto &b : batches)
        occupied += static_cast<double>(b.states);
    return occupied /
           (static_cast<double>(capacity) *
            static_cast<double>(batches.size()));
}

BatchPlan
packSizes(const std::vector<size_t> &sizes, size_t capacity)
{
    SPARSEAP_ASSERT(capacity > 0, "packSizes with zero capacity");
    BatchPlan plan;
    Batch current;
    auto flush = [&] {
        if (!current.items.empty()) {
            plan.batches.push_back(std::move(current));
            current = Batch{};
        }
    };
    for (uint32_t i = 0; i < sizes.size(); ++i) {
        const size_t sz = sizes[i];
        plan.totalStates += sz;
        if (sz == 0)
            continue;
        if (sz > capacity) {
            // Oversized item: state-granularity split into exclusive
            // batches (ceil(sz / capacity) of them).
            flush();
            size_t remaining = sz;
            while (remaining > 0) {
                Batch b;
                b.items.push_back(i);
                b.states = remaining > capacity ? capacity : remaining;
                remaining -= b.states;
                plan.batches.push_back(std::move(b));
            }
            continue;
        }
        if (current.states + sz > capacity)
            flush();
        current.items.push_back(i);
        current.states += sz;
    }
    flush();
    return plan;
}

BatchPlan
packWholeNfas(const Application &app, size_t capacity)
{
    std::vector<size_t> sizes;
    sizes.reserve(app.nfaCount());
    for (const auto &nfa : app.nfas())
        sizes.push_back(nfa.size());
    return packSizes(sizes, capacity);
}

size_t
analyticBatchCount(size_t total_states, size_t capacity)
{
    SPARSEAP_ASSERT(capacity > 0, "analyticBatchCount with zero capacity");
    return (total_states + capacity - 1) / capacity;
}

} // namespace sparseap
