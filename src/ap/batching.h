/**
 * @file
 * Batch packing: splitting an application across AP configurations.
 *
 * A spatial program must fit entirely to execute, so an application with
 * more states than the AP capacity is split into batches; every batch
 * re-consumes the whole input stream. The baseline AP (and our BaseAP /
 * SpAP modes) packs *whole NFAs* greedily in declaration order — the
 * "batches usually contain whole NFAs" behaviour of the real AP compiler.
 * An NFA larger than the capacity is given ceil(size/capacity) exclusive
 * batches (the paper's state-granularity splitting assumption).
 */

#ifndef SPARSEAP_AP_BATCHING_H
#define SPARSEAP_AP_BATCHING_H

#include <cstdint>
#include <vector>

#include "nfa/application.h"

namespace sparseap {

/** One AP configuration: which items it holds and how many STEs it uses. */
struct Batch
{
    /** Indices of the packed items (NFA indices for whole-NFA packing). */
    std::vector<uint32_t> items;
    /** STEs occupied. */
    size_t states = 0;
};

/** A full packing of an application (or item list) into batches. */
struct BatchPlan
{
    std::vector<Batch> batches;
    /** Sum of item sizes. */
    size_t totalStates = 0;

    size_t batchCount() const { return batches.size(); }

    /** Fraction of configured STEs actually occupied, averaged over
     *  batches of @p capacity. */
    double utilization(size_t capacity) const;
};

/**
 * Pack items of the given @p sizes greedily in order into batches of
 * @p capacity. Items larger than the capacity receive exclusive batches.
 */
BatchPlan packSizes(const std::vector<size_t> &sizes, size_t capacity);

/** Pack whole NFAs of @p app in order. Items are NFA indices. */
BatchPlan packWholeNfas(const Application &app, size_t capacity);

/**
 * The paper's analytic lower bound on configurations:
 * ceil(total_states / capacity), i.e. splitting at state granularity.
 */
size_t analyticBatchCount(size_t total_states, size_t capacity);

} // namespace sparseap

#endif // SPARSEAP_AP_BATCHING_H
