/**
 * @file
 * Automata Processor hardware configuration.
 *
 * Models the capacity and timing parameters of the Micron AP D480-style
 * device used in the paper: a half-core holds 24K STEs (the baseline),
 * a full chip 49K; the input is consumed at one symbol per 7.5 ns cycle.
 */

#ifndef SPARSEAP_AP_CONFIG_H
#define SPARSEAP_AP_CONFIG_H

#include <cstddef>

namespace sparseap {

/** Capacity and timing of one AP configuration target. */
struct ApConfig
{
    /** STEs available per configuration ("24K" in the paper = 24576). */
    size_t capacity = kHalfCore;

    /** Symbol cycle time in nanoseconds (7.5 ns, from Subramaniyan
     *  and Das, ISCA'17, as used by the paper). */
    double cycleTimeNs = 7.5;

    /** Entries in the on-chip intermediate-report queue (Section V-B). */
    size_t reportQueueEntries = 128;

    /** Bytes per intermediate report: 4 (position) + 2 (state id). */
    static constexpr size_t kReportBytes = 6;

    static constexpr size_t kQuarterCore = 12288; ///< "12K"
    static constexpr size_t kHalfCore = 24576;    ///< "24K" (baseline)
    static constexpr size_t kFullChip = 49152;    ///< "49K"

    /** Convert a cycle count to seconds under this clock. */
    double
    cyclesToSeconds(double cycles) const
    {
        return cycles * cycleTimeNs * 1e-9;
    }
};

} // namespace sparseap

#endif // SPARSEAP_AP_CONFIG_H
