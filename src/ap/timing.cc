#include "ap/timing.h"

#include "common/logging.h"

namespace sparseap {

BaselineTiming
baselineTiming(const BatchPlan &plan, const ApConfig &config,
               uint64_t input_len)
{
    BaselineTiming t;
    t.batches = plan.batchCount();
    t.cycles = static_cast<uint64_t>(t.batches) * input_len;
    t.seconds = config.cyclesToSeconds(static_cast<double>(t.cycles));
    return t;
}

BaselineTiming
baselineTiming(const Application &app, const ApConfig &config,
               uint64_t input_len)
{
    return baselineTiming(packWholeNfas(app, config.capacity), config,
                          input_len);
}

double
performancePerSte(uint64_t input_len, uint64_t cycles, size_t capacity)
{
    SPARSEAP_ASSERT(capacity > 0, "performancePerSte with zero capacity");
    if (cycles == 0)
        return 0.0;
    const double throughput =
        static_cast<double>(input_len) / static_cast<double>(cycles);
    return throughput / static_cast<double>(capacity);
}

double
idealSpeedup(size_t total_states, size_t cold_states, size_t capacity)
{
    SPARSEAP_ASSERT(cold_states <= total_states,
                    "cold_states ", cold_states, " > total ", total_states);
    const size_t base = analyticBatchCount(total_states, capacity);
    const size_t hot = total_states - cold_states;
    const size_t pruned = analyticBatchCount(hot == 0 ? 1 : hot, capacity);
    return static_cast<double>(base) / static_cast<double>(pruned);
}

} // namespace sparseap
