/**
 * @file
 * Cycle/timing model for AP executions (Sections III-C and VI).
 *
 * Baseline execution of an application with B batches over an n-symbol
 * input costs B x n cycles (each batch re-consumes the input). Speedup of
 * an alternative execution is baseline cycles / alternative cycles.
 * Performance-per-STE normalizes throughput by fabric capacity so APs of
 * different sizes can be compared (a proxy for performance/area).
 */

#ifndef SPARSEAP_AP_TIMING_H
#define SPARSEAP_AP_TIMING_H

#include <cstdint>

#include "ap/batching.h"
#include "ap/config.h"

namespace sparseap {

/** Cycle accounting for one baseline AP execution. */
struct BaselineTiming
{
    /** Number of AP configurations (batches). */
    size_t batches = 0;
    /** Total cycles = batches x input length. */
    uint64_t cycles = 0;
    /** Wall time under the AP clock. */
    double seconds = 0.0;
};

/** Compute baseline timing for @p app at @p config over @p input_len. */
BaselineTiming baselineTiming(const Application &app, const ApConfig &config,
                              uint64_t input_len);

/** Baseline timing from a pre-computed batch plan. */
BaselineTiming baselineTiming(const BatchPlan &plan, const ApConfig &config,
                              uint64_t input_len);

/**
 * throughput / capacity, where throughput = input symbols per cycle
 * (Section VI "Performance per STE").
 */
double performancePerSte(uint64_t input_len, uint64_t cycles,
                         size_t capacity);

/**
 * The paper's ideal-speedup model (Section III-C): with resource saving
 * p = S_cold / S, speedup = ceil(S/C) / ceil((1-p) S / C).
 */
double idealSpeedup(size_t total_states, size_t cold_states,
                    size_t capacity);

} // namespace sparseap

#endif // SPARSEAP_AP_TIMING_H
