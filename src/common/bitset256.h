/**
 * @file
 * A fixed 256-bit set used to represent NFA symbol-sets.
 *
 * The Automata Processor stores one DRAM column of 256 bits per state
 * transition element (STE); bit b is set iff the STE accepts input symbol b.
 * This class is the software mirror of that column.
 */

#ifndef SPARSEAP_COMMON_BITSET256_H
#define SPARSEAP_COMMON_BITSET256_H

#include <array>
#include <cstdint>
#include <cstddef>

namespace sparseap {

/**
 * Dense 256-bit set over the byte alphabet [0, 255].
 *
 * All operations are constexpr-friendly and branch-free where it matters;
 * the functional simulator calls test() once per enabled state per cycle.
 */
class Bitset256
{
  public:
    /** Construct the empty set. */
    constexpr Bitset256() : words{0, 0, 0, 0} {}

    /** @return a set containing every symbol. */
    static constexpr Bitset256
    all()
    {
        Bitset256 s;
        s.words = {~0ull, ~0ull, ~0ull, ~0ull};
        return s;
    }

    /** @return a set containing exactly @p symbol. */
    static constexpr Bitset256
    single(uint8_t symbol)
    {
        Bitset256 s;
        s.set(symbol);
        return s;
    }

    /** @return a set containing the inclusive range [lo, hi]. */
    static constexpr Bitset256
    range(uint8_t lo, uint8_t hi)
    {
        Bitset256 s;
        for (unsigned b = lo; b <= hi; ++b)
            s.set(static_cast<uint8_t>(b));
        return s;
    }

    /** Add @p symbol to the set. */
    constexpr void
    set(uint8_t symbol)
    {
        words[symbol >> 6] |= 1ull << (symbol & 63);
    }

    /** Remove @p symbol from the set. */
    constexpr void
    reset(uint8_t symbol)
    {
        words[symbol >> 6] &= ~(1ull << (symbol & 63));
    }

    /** @return true iff @p symbol is in the set. */
    constexpr bool
    test(uint8_t symbol) const
    {
        return (words[symbol >> 6] >> (symbol & 63)) & 1;
    }

    /** @return the number of symbols in the set. */
    int
    count() const
    {
        int n = 0;
        for (uint64_t w : words)
            n += __builtin_popcountll(w);
        return n;
    }

    /** @return true iff the set is empty. */
    constexpr bool
    empty() const
    {
        return (words[0] | words[1] | words[2] | words[3]) == 0;
    }

    /** Set union, in place. */
    constexpr Bitset256 &
    operator|=(const Bitset256 &o)
    {
        for (int i = 0; i < 4; ++i)
            words[i] |= o.words[i];
        return *this;
    }

    /** Set intersection, in place. */
    constexpr Bitset256 &
    operator&=(const Bitset256 &o)
    {
        for (int i = 0; i < 4; ++i)
            words[i] &= o.words[i];
        return *this;
    }

    /** @return the complement of this set. */
    constexpr Bitset256
    operator~() const
    {
        Bitset256 s;
        for (int i = 0; i < 4; ++i)
            s.words[i] = ~words[i];
        return s;
    }

    friend constexpr Bitset256
    operator|(Bitset256 a, const Bitset256 &b)
    {
        a |= b;
        return a;
    }

    friend constexpr Bitset256
    operator&(Bitset256 a, const Bitset256 &b)
    {
        a &= b;
        return a;
    }

    constexpr bool
    operator==(const Bitset256 &o) const
    {
        return words == o.words;
    }

    constexpr bool
    operator!=(const Bitset256 &o) const
    {
        return !(*this == o);
    }

    /** @return a stable 64-bit hash of the set contents. */
    uint64_t
    hash() const
    {
        uint64_t h = 0x9e3779b97f4a7c15ull;
        for (uint64_t w : words) {
            h ^= w + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
        }
        return h;
    }

    /** Raw 4x64-bit storage, LSB-first. */
    std::array<uint64_t, 4> words;
};

} // namespace sparseap

#endif // SPARSEAP_COMMON_BITSET256_H
