#include "common/logging.h"

#include <cstdlib>
#include <iostream>

namespace sparseap {

Verbosity
verbosity()
{
    static const Verbosity level = [] {
        const char *env = std::getenv("SPARSEAP_VERBOSE");
        if (!env)
            return Verbosity::Normal;
        switch (env[0]) {
          case '0':
            return Verbosity::Quiet;
          case '2':
            return Verbosity::Debug;
          default:
            return Verbosity::Normal;
        }
    }();
    return level;
}

namespace {

/** Per-thread log sink installed by ScopedLogCapture (null = stderr). */
thread_local std::string *t_log_sink = nullptr;

/** Emit one already-formatted log line to the sink or stderr. */
void
emitLine(const std::string &line)
{
    if (t_log_sink) {
        t_log_sink->append(line);
        t_log_sink->push_back('\n');
    } else {
        std::cerr << line << std::endl;
    }
}

} // namespace

ScopedLogCapture::ScopedLogCapture(std::string *sink)
{
    t_log_sink = sink;
}

ScopedLogCapture::~ScopedLogCapture()
{
    t_log_sink = nullptr;
}

namespace detail {

void
fatalImpl(const std::string &msg)
{
    std::cerr << "fatal: " << msg << std::endl;
    std::exit(1);
}

void
panicImpl(const std::string &msg, const char *file, int line)
{
    std::cerr << "panic: " << msg << " (" << file << ":" << line << ")"
              << std::endl;
    std::abort();
}

void
warnImpl(const std::string &msg)
{
    if (verbosity() != Verbosity::Quiet)
        emitLine("warn: " + msg);
}

void
informImpl(const std::string &msg, Verbosity level)
{
    if (static_cast<int>(verbosity()) >= static_cast<int>(level))
        emitLine("info: " + msg);
}

} // namespace detail
} // namespace sparseap
