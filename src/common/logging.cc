#include "common/logging.h"

#include <cstdlib>
#include <iostream>

namespace sparseap {

Verbosity
verbosity()
{
    static const Verbosity level = [] {
        const char *env = std::getenv("SPARSEAP_VERBOSE");
        if (!env)
            return Verbosity::Normal;
        switch (env[0]) {
          case '0':
            return Verbosity::Quiet;
          case '2':
            return Verbosity::Debug;
          default:
            return Verbosity::Normal;
        }
    }();
    return level;
}

namespace detail {

void
fatalImpl(const std::string &msg)
{
    std::cerr << "fatal: " << msg << std::endl;
    std::exit(1);
}

void
panicImpl(const std::string &msg, const char *file, int line)
{
    std::cerr << "panic: " << msg << " (" << file << ":" << line << ")"
              << std::endl;
    std::abort();
}

void
warnImpl(const std::string &msg)
{
    if (verbosity() != Verbosity::Quiet)
        std::cerr << "warn: " << msg << std::endl;
}

void
informImpl(const std::string &msg, Verbosity level)
{
    if (static_cast<int>(verbosity()) >= static_cast<int>(level))
        std::cerr << "info: " << msg << std::endl;
}

} // namespace detail
} // namespace sparseap
