/**
 * @file
 * Status and error reporting helpers, gem5-style.
 *
 * fatal()  -- the user asked for something impossible (bad config, bad
 *             arguments); exits with code 1.
 * panic()  -- an internal invariant broke (a library bug); aborts.
 * warn()   -- something works but not as well as it should.
 * inform() -- plain status output.
 */

#ifndef SPARSEAP_COMMON_LOGGING_H
#define SPARSEAP_COMMON_LOGGING_H

#include <sstream>
#include <string>

namespace sparseap {

/** Verbosity levels for inform(); selected via SPARSEAP_VERBOSE env var. */
enum class Verbosity { Quiet = 0, Normal = 1, Debug = 2 };

/** @return the process-wide verbosity (read once from the environment). */
Verbosity verbosity();

/**
 * While alive, redirects this thread's warn()/inform()/debugLog() lines
 * into @p sink (each line formatted exactly as it would have hit stderr,
 * trailing newline included) instead of writing them to stderr. The
 * parallel app-sweep driver gives every app a sink and replays them in
 * catalog order, so log output is byte-identical at any thread count.
 * fatal() and panic() still write to stderr directly. Not reentrant.
 */
class ScopedLogCapture
{
  public:
    explicit ScopedLogCapture(std::string *sink);
    ~ScopedLogCapture();

    ScopedLogCapture(const ScopedLogCapture &) = delete;
    ScopedLogCapture &operator=(const ScopedLogCapture &) = delete;
};

namespace detail {
[[noreturn]] void fatalImpl(const std::string &msg);
[[noreturn]] void panicImpl(const std::string &msg, const char *file,
                            int line);
void warnImpl(const std::string &msg);
void informImpl(const std::string &msg, Verbosity level);

/** Fold a variadic pack into one string with operator<<. */
template <typename... Args>
std::string
concat(Args &&...args)
{
    std::ostringstream os;
    (os << ... << args);
    return os.str();
}
} // namespace detail

/** Terminate with a user-facing error (exit code 1). */
template <typename... Args>
[[noreturn]] void
fatal(Args &&...args)
{
    detail::fatalImpl(detail::concat(std::forward<Args>(args)...));
}

/** Emit a warning to stderr. */
template <typename... Args>
void
warn(Args &&...args)
{
    detail::warnImpl(detail::concat(std::forward<Args>(args)...));
}

/** Emit a status line to stderr (suppressed when SPARSEAP_VERBOSE=0). */
template <typename... Args>
void
inform(Args &&...args)
{
    detail::informImpl(detail::concat(std::forward<Args>(args)...),
                       Verbosity::Normal);
}

/** Emit a debug line to stderr (shown only when SPARSEAP_VERBOSE=2). */
template <typename... Args>
void
debugLog(Args &&...args)
{
    detail::informImpl(detail::concat(std::forward<Args>(args)...),
                       Verbosity::Debug);
}

/** Abort on a broken internal invariant; use via the panic() macro. */
#define SPARSEAP_PANIC(...)                                                  \
    ::sparseap::detail::panicImpl(                                           \
        ::sparseap::detail::concat(__VA_ARGS__), __FILE__, __LINE__)

/** panic unless @p cond holds. */
#define SPARSEAP_ASSERT(cond, ...)                                           \
    do {                                                                     \
        if (!(cond)) {                                                       \
            SPARSEAP_PANIC("assertion '" #cond "' failed: ", __VA_ARGS__);   \
        }                                                                    \
    } while (0)

} // namespace sparseap

#endif // SPARSEAP_COMMON_LOGGING_H
