#include "common/options.h"

#include <cstdlib>

#include "common/logging.h"

namespace sparseap {

std::vector<std::string>
splitString(const std::string &s, char sep)
{
    std::vector<std::string> out;
    std::string cur;
    for (char ch : s) {
        if (ch == sep) {
            if (!cur.empty())
                out.push_back(cur);
            cur.clear();
        } else {
            cur.push_back(ch);
        }
    }
    if (!cur.empty())
        out.push_back(cur);
    return out;
}

namespace {

Options
parseEnvironment()
{
    Options opt;
    if (const char *v = std::getenv("SPARSEAP_INPUT_KB")) {
        long kb = std::atol(v);
        if (kb <= 0)
            fatal("SPARSEAP_INPUT_KB must be positive, got '", v, "'");
        opt.inputBytes = static_cast<size_t>(kb) * 1024;
    }
    if (const char *v = std::getenv("SPARSEAP_SEED"))
        opt.seed = std::strtoull(v, nullptr, 10);
    if (const char *v = std::getenv("SPARSEAP_CSV"))
        opt.csv = v[0] == '1';
    if (const char *v = std::getenv("SPARSEAP_APPS"))
        opt.apps = splitString(v, ',');
    if (const char *v = std::getenv("SPARSEAP_SCALE")) {
        long pct = std::atol(v);
        if (pct <= 0 || pct > 400)
            fatal("SPARSEAP_SCALE must be in (0, 400], got '", v, "'");
        opt.scalePercent = static_cast<unsigned>(pct);
    }
    return opt;
}

} // namespace

const Options &
globalOptions()
{
    static const Options opt = parseEnvironment();
    return opt;
}

} // namespace sparseap
