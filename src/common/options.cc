#include "common/options.h"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <thread>

#include "common/logging.h"

namespace sparseap {

const char *
engineModeName(EngineMode mode)
{
    switch (mode) {
    case EngineMode::Sparse:
        return "sparse";
    case EngineMode::Dense:
        return "dense";
    case EngineMode::Dfa:
        return "dfa";
    case EngineMode::Auto:
        return "auto";
    }
    return "auto";
}

std::vector<std::string>
splitString(const std::string &s, char sep)
{
    std::vector<std::string> out;
    std::string cur;
    for (char ch : s) {
        if (ch == sep) {
            if (!cur.empty())
                out.push_back(cur);
            cur.clear();
        } else {
            cur.push_back(ch);
        }
    }
    if (!cur.empty())
        out.push_back(cur);
    return out;
}

namespace {

Options
parseEnvironment()
{
    Options opt;
    if (const char *v = std::getenv("SPARSEAP_INPUT_KB")) {
        long kb = std::atol(v);
        if (kb <= 0)
            fatal("SPARSEAP_INPUT_KB must be positive, got '", v, "'");
        opt.inputBytes = static_cast<size_t>(kb) * 1024;
    }
    if (const char *v = std::getenv("SPARSEAP_SEED"))
        opt.seed = std::strtoull(v, nullptr, 10);
    if (const char *v = std::getenv("SPARSEAP_CSV"))
        opt.csv = v[0] == '1';
    if (const char *v = std::getenv("SPARSEAP_APPS"))
        opt.apps = splitString(v, ',');
    if (const char *v = std::getenv("SPARSEAP_SCALE")) {
        long pct = std::atol(v);
        if (pct <= 0 || pct > 400)
            fatal("SPARSEAP_SCALE must be in (0, 400], got '", v, "'");
        opt.scalePercent = static_cast<unsigned>(pct);
    }
    if (const char *v = std::getenv("SPARSEAP_ENGINE")) {
        if (std::strcmp(v, "sparse") == 0)
            opt.engineMode = EngineMode::Sparse;
        else if (std::strcmp(v, "dense") == 0)
            opt.engineMode = EngineMode::Dense;
        else if (std::strcmp(v, "dfa") == 0)
            opt.engineMode = EngineMode::Dfa;
        else if (std::strcmp(v, "auto") == 0)
            opt.engineMode = EngineMode::Auto;
        else
            fatal("SPARSEAP_ENGINE must be sparse, dense, dfa or auto, "
                  "got '",
                  v, "'");
    }
    if (const char *v = std::getenv("SPARSEAP_SIMD"))
        opt.simd = v; // validated by simd::ops() (common/vec.cc)
    if (const char *v = std::getenv("SPARSEAP_SKIP_DIVISOR")) {
        long div = std::atol(v);
        if (div <= 0)
            fatal("SPARSEAP_SKIP_DIVISOR must be positive, got '", v,
                  "'");
        opt.skipDivisor = static_cast<size_t>(div);
    }
    if (const char *v = std::getenv("SPARSEAP_INPUT_SKIP")) {
        if (std::strcmp(v, "off") == 0 || std::strcmp(v, "0") == 0)
            opt.inputSkip = false;
        else if (std::strcmp(v, "auto") != 0 &&
                 std::strcmp(v, "on") != 0 && std::strcmp(v, "1") != 0)
            fatal("SPARSEAP_INPUT_SKIP must be auto, on, 1, off or 0, "
                  "got '",
                  v, "'");
    }
    if (const char *v = std::getenv("SPARSEAP_DFA_STATES")) {
        long states = std::atol(v);
        if (states <= 0)
            fatal("SPARSEAP_DFA_STATES must be positive, got '", v, "'");
        opt.dfaStateBudget = static_cast<size_t>(states);
    }
    if (const char *v = std::getenv("SPARSEAP_DFA_TABLE_KB")) {
        long kb = std::atol(v);
        if (kb <= 0)
            fatal("SPARSEAP_DFA_TABLE_KB must be positive, got '", v,
                  "'");
        opt.dfaTableBytes = static_cast<size_t>(kb) * 1024;
    }
    if (const char *v = std::getenv("SPARSEAP_JOBS")) {
        long jobs = std::atol(v);
        if (jobs < 0)
            fatal("SPARSEAP_JOBS must be >= 0, got '", v, "'");
        const unsigned hw =
            std::max(1u, std::thread::hardware_concurrency());
        // Clamp to the core count: the batch loop is CPU-bound, so
        // oversubscribing only adds scheduling contention.
        opt.jobs = jobs == 0 ? hw
                             : std::min(static_cast<unsigned>(jobs), hw);
    }
    if (const char *v = std::getenv("SPARSEAP_JSON"))
        opt.jsonPath = v;
    if (const char *v = std::getenv("SPARSEAP_CACHE_DIR"))
        opt.cacheDir = v;
    if (const char *v = std::getenv("SPARSEAP_CACHE")) {
        if (std::strcmp(v, "off") == 0 || std::strcmp(v, "0") == 0)
            opt.cacheDir.clear();
        else if (std::strcmp(v, "on") != 0 && std::strcmp(v, "1") != 0)
            fatal("SPARSEAP_CACHE must be on/off/1/0, got '", v, "'");
    }
    if (const char *v = std::getenv("SPARSEAP_TRACE"))
        opt.tracePath = v;
    if (const char *v = std::getenv("SPARSEAP_STATS"))
        opt.statsPath = v;
    return opt;
}

} // namespace

const Options &
globalOptions()
{
    static const Options opt = parseEnvironment();
    return opt;
}

} // namespace sparseap
