/**
 * @file
 * Environment/flag options shared by the benchmark and example binaries.
 *
 * The harness is driven by environment variables so looping over the
 * bench binaries needs no per-binary arguments:
 *
 *   SPARSEAP_INPUT_KB   input size per application in KiB (default 64)
 *   SPARSEAP_SEED       master RNG seed (default 20181020, MICRO'18 dates)
 *   SPARSEAP_CSV        when set to 1, tables print CSV instead of ASCII
 *   SPARSEAP_APPS       comma-separated list of app abbreviations to run
 *   SPARSEAP_SCALE      workload scale factor in percent (default 100)
 *   SPARSEAP_ENGINE     functional-engine core: sparse|dense|dfa|auto
 *                       (default auto; see docs/PERFORMANCE.md)
 *   SPARSEAP_SIMD       dense-kernel vector width: auto|off|scalar|
 *                       sse2|avx2|avx512 (default auto = widest the CPU
 *                       supports; "off" and "scalar" are synonyms; see
 *                       src/common/vec.h)
 *   SPARSEAP_SKIP_DIVISOR  dense-core skip/sweep crossover: the skip
 *                       path runs while live*divisor < words (default 4;
 *                       see docs/PERFORMANCE.md)
 *   SPARSEAP_INPUT_SKIP quiescence input skip: auto|on|1 (default)
 *                       enables SIMD-scanning quiescent stretches of
 *                       input instead of stepping them, off|0 disables.
 *                       Reports are byte-identical in both settings
 *                       (see docs/PERFORMANCE.md)
 *   SPARSEAP_DFA_STATES    hot-DFA determinization state budget
 *                       (default 2048; subset construction bails out to
 *                       the NFA dense core beyond it)
 *   SPARSEAP_DFA_TABLE_KB  hot-DFA transition-table byte budget in KiB
 *                       (default 4096)
 *   SPARSEAP_JOBS       threads for batch-level parallelism (default 1;
 *                       0 means all hardware threads; clamped to the
 *                       hardware thread count)
 *   SPARSEAP_JSON       when set, benchmark binaries append their tables
 *                       as machine-readable JSON to this file
 *   SPARSEAP_CACHE_DIR  directory of the compiled-artifact cache
 *                       (src/store); empty disables caching
 *   SPARSEAP_CACHE      set to "off" (or "0") to disable the artifact
 *                       cache even when SPARSEAP_CACHE_DIR is set
 *   SPARSEAP_VERBOSE    stderr log level: 0 quiet, 1 status (default),
 *                       2 adds debug lines (src/common/logging.h)
 *   SPARSEAP_TRACE      when set, stream scoped spans to this file as
 *                       Chrome trace-event JSON at process exit (load in
 *                       Perfetto / chrome://tracing); unset = spans
 *                       reduce to one atomic load + branch
 *   SPARSEAP_STATS      end-of-process telemetry summary sink: "-", "1"
 *                       or "stderr" print the ASCII tables to stderr,
 *                       anything else appends them to that file path
 *
 * See docs/OBSERVABILITY.md for the telemetry metric catalog.
 */

#ifndef SPARSEAP_COMMON_OPTIONS_H
#define SPARSEAP_COMMON_OPTIONS_H

#include <cstdint>
#include <string>
#include <vector>

namespace sparseap {

/** Which stepping core the functional engine uses. */
enum class EngineMode {
    Sparse, ///< dynamic enabled-list core (latched/permanent opt)
    Dense,  ///< bit-parallel word-vector core
    Dfa,    ///< determinized hot-set table, NFA dense-core fallback
    Auto,   ///< sparse, switching to dense when the live set is dense
};

/** @return "sparse", "dense", "dfa" or "auto". */
const char *engineModeName(EngineMode mode);

/** Parsed global options; read once per process via globalOptions(). */
struct Options
{
    /** Bytes of input stream generated per application. */
    size_t inputBytes = 64 * 1024;
    /** Master seed for all workload generation. */
    uint64_t seed = 20181020;
    /** Print CSV instead of aligned ASCII tables. */
    bool csv = false;
    /** If non-empty, restricts experiments to these app abbreviations. */
    std::vector<std::string> apps;
    /** Workload scale in percent; 100 reproduces paper-sized automata. */
    unsigned scalePercent = 100;
    /** Functional-engine core selection. */
    EngineMode engineMode = EngineMode::Auto;
    /** SPARSEAP_SIMD request, consumed by simd::ops() (common/vec.h). */
    std::string simd = "auto";
    /** Dense-core skip/sweep crossover divisor (common/vec.h docs). */
    size_t skipDivisor = 4;
    /** Quiescence input skip (SPARSEAP_INPUT_SKIP; default on). */
    bool inputSkip = true;
    /** Hot-DFA determinization state budget. */
    size_t dfaStateBudget = 2048;
    /** Hot-DFA transition-table byte budget. */
    size_t dfaTableBytes = 4096 * 1024;
    /** Threads for batch-level parallelism (resolved; >= 1). */
    unsigned jobs = 1;
    /** If non-empty, benches append JSON results to this file. */
    std::string jsonPath;
    /** Artifact-cache directory; empty means caching is disabled. */
    std::string cacheDir;
    /** Chrome-trace output file; empty means tracing is disabled. */
    std::string tracePath;
    /** Exit-summary sink ("-"/"1"/"stderr" or a file path); empty = off. */
    std::string statsPath;
};

/** @return process-wide options parsed from the environment (cached). */
const Options &globalOptions();

/** Split @p s on @p sep, dropping empty pieces. */
std::vector<std::string> splitString(const std::string &s, char sep);

} // namespace sparseap

#endif // SPARSEAP_COMMON_OPTIONS_H
