/**
 * @file
 * Deterministic random number generation.
 *
 * Every workload generator and input synthesizer takes an explicit seed so
 * experiment runs are exactly reproducible; nothing in the library reads
 * the wall clock or global random state.
 */

#ifndef SPARSEAP_COMMON_RNG_H
#define SPARSEAP_COMMON_RNG_H

#include <cstdint>
#include <random>
#include <vector>

namespace sparseap {

/** Thin wrapper over std::mt19937_64 with convenience draws. */
class Rng
{
  public:
    explicit Rng(uint64_t seed) : gen(seed) {}

    /** @return a uniform integer in [lo, hi] inclusive. */
    uint64_t
    uniform(uint64_t lo, uint64_t hi)
    {
        return std::uniform_int_distribution<uint64_t>(lo, hi)(gen);
    }

    /** @return a uniform integer in [0, n). @p n must be positive. */
    size_t
    index(size_t n)
    {
        return static_cast<size_t>(uniform(0, n - 1));
    }

    /** @return a uniform byte. */
    uint8_t byte() { return static_cast<uint8_t>(uniform(0, 255)); }

    /** @return true with probability @p p. */
    bool
    chance(double p)
    {
        return std::uniform_real_distribution<double>(0.0, 1.0)(gen) < p;
    }

    /** @return a uniform double in [0, 1). */
    double
    real()
    {
        return std::uniform_real_distribution<double>(0.0, 1.0)(gen);
    }

    /** @return a geometrically distributed count with success prob @p p. */
    uint64_t
    geometric(double p)
    {
        return std::geometric_distribution<uint64_t>(p)(gen);
    }

    /** Pick a uniformly random element of @p v. */
    template <typename T>
    const T &
    pick(const std::vector<T> &v)
    {
        return v[index(v.size())];
    }

    /** Derive an independent child stream (for per-NFA seeding). */
    Rng
    fork()
    {
        return Rng(uniform(0, ~0ull));
    }

    std::mt19937_64 &engine() { return gen; }

  private:
    std::mt19937_64 gen;
};

} // namespace sparseap

#endif // SPARSEAP_COMMON_RNG_H
