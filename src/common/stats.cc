#include "common/stats.h"

#include <cmath>

#include "common/logging.h"

namespace sparseap {

double
geomean(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double log_sum = 0.0;
    for (double v : values) {
        SPARSEAP_ASSERT(v > 0.0, "geomean requires positive values, got ", v);
        log_sum += std::log(v);
    }
    return std::exp(log_sum / static_cast<double>(values.size()));
}

double
mean(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double sum = 0.0;
    for (double v : values)
        sum += v;
    return sum / static_cast<double>(values.size());
}

double
pearson(const std::vector<double> &x, const std::vector<double> &y)
{
    SPARSEAP_ASSERT(x.size() == y.size(),
                    "pearson: length mismatch ", x.size(), " vs ", y.size());
    const size_t n = x.size();
    if (n < 2)
        return 0.0;
    const double mx = mean(x);
    const double my = mean(y);
    double sxy = 0.0, sxx = 0.0, syy = 0.0;
    for (size_t i = 0; i < n; ++i) {
        const double dx = x[i] - mx;
        const double dy = y[i] - my;
        sxy += dx * dy;
        sxx += dx * dx;
        syy += dy * dy;
    }
    if (sxx == 0.0 || syy == 0.0)
        return 0.0;
    return sxy / std::sqrt(sxx * syy);
}

void
Accumulator::add(double v)
{
    if (count_ == 0) {
        min_ = max_ = v;
    } else {
        if (v < min_)
            min_ = v;
        if (v > max_)
            max_ = v;
    }
    sum_ += v;
    ++count_;
}

} // namespace sparseap
