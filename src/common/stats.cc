#include "common/stats.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace sparseap {

double
geomean(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double log_sum = 0.0;
    for (double v : values) {
        SPARSEAP_ASSERT(v > 0.0, "geomean requires positive values, got ", v);
        log_sum += std::log(v);
    }
    return std::exp(log_sum / static_cast<double>(values.size()));
}

double
mean(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double sum = 0.0;
    for (double v : values)
        sum += v;
    return sum / static_cast<double>(values.size());
}

double
pearson(const std::vector<double> &x, const std::vector<double> &y)
{
    SPARSEAP_ASSERT(x.size() == y.size(),
                    "pearson: length mismatch ", x.size(), " vs ", y.size());
    const size_t n = x.size();
    if (n < 2)
        return 0.0;
    const double mx = mean(x);
    const double my = mean(y);
    double sxy = 0.0, sxx = 0.0, syy = 0.0;
    for (size_t i = 0; i < n; ++i) {
        const double dx = x[i] - mx;
        const double dy = y[i] - my;
        sxy += dx * dy;
        sxx += dx * dx;
        syy += dy * dy;
    }
    if (sxx == 0.0 || syy == 0.0)
        return 0.0;
    return sxy / std::sqrt(sxx * syy);
}

void
Accumulator::add(double v)
{
    if (count_ == 0) {
        min_ = max_ = v;
    } else {
        if (v < min_)
            min_ = v;
        if (v > max_)
            max_ = v;
    }
    sum_ += v;
    ++count_;
    const double delta = v - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (v - mean_);
}

double
Accumulator::stddev() const
{
    return std::sqrt(variance());
}

size_t
Histogram::bucketOf(uint64_t v)
{
    return v == 0 ? 0 : static_cast<size_t>(64 - __builtin_clzll(v));
}

uint64_t
Histogram::bucketLow(size_t b)
{
    SPARSEAP_ASSERT(b < kBuckets, "bucket ", b, " out of range");
    return b == 0 ? 0 : 1ull << (b - 1);
}

uint64_t
Histogram::bucketHigh(size_t b)
{
    SPARSEAP_ASSERT(b < kBuckets, "bucket ", b, " out of range");
    if (b == 0)
        return 0;
    if (b == kBuckets - 1)
        return ~0ull;
    return (1ull << b) - 1;
}

double
Histogram::quantileFromBuckets(std::span<const uint64_t> buckets,
                               double q)
{
    SPARSEAP_ASSERT(buckets.size() == kBuckets,
                    "expected ", kBuckets, " buckets, got ",
                    buckets.size());
    uint64_t total = 0;
    for (uint64_t c : buckets)
        total += c;
    if (total == 0)
        return 0.0;
    q = std::min(std::max(q, 0.0), 1.0);
    // Rank of the requested quantile, 1-based ("nearest rank" with
    // in-bucket linear interpolation).
    const double rank = q * static_cast<double>(total);
    double seen = 0.0;
    for (size_t b = 0; b < kBuckets; ++b) {
        if (buckets[b] == 0)
            continue;
        const double in_bucket = static_cast<double>(buckets[b]);
        if (seen + in_bucket >= rank) {
            const double lo = static_cast<double>(bucketLow(b));
            const double hi = static_cast<double>(bucketHigh(b));
            const double frac =
                in_bucket == 0.0 ? 0.0 : (rank - seen) / in_bucket;
            return lo + (hi - lo) * std::min(std::max(frac, 0.0), 1.0);
        }
        seen += in_bucket;
    }
    // Numeric slack put the rank past the last sample: return the top of
    // the highest populated bucket.
    for (size_t b = kBuckets; b-- > 0;) {
        if (buckets[b] != 0)
            return static_cast<double>(bucketHigh(b));
    }
    return 0.0;
}

void
Histogram::add(uint64_t v)
{
    if (count_ == 0) {
        min_ = max_ = v;
    } else {
        if (v < min_)
            min_ = v;
        if (v > max_)
            max_ = v;
    }
    ++buckets_[bucketOf(v)];
    ++count_;
    sum_ += v;
}

void
Histogram::merge(const Histogram &other)
{
    if (other.count_ == 0)
        return;
    if (count_ == 0) {
        min_ = other.min_;
        max_ = other.max_;
    } else {
        min_ = std::min(min_, other.min_);
        max_ = std::max(max_, other.max_);
    }
    for (size_t b = 0; b < kBuckets; ++b)
        buckets_[b] += other.buckets_[b];
    count_ += other.count_;
    sum_ += other.sum_;
}

} // namespace sparseap
