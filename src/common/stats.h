/**
 * @file
 * Small numeric helpers shared by the evaluation harness: geometric mean,
 * arithmetic mean, Pearson correlation, and a streaming min/max/mean
 * accumulator.
 */

#ifndef SPARSEAP_COMMON_STATS_H
#define SPARSEAP_COMMON_STATS_H

#include <cstddef>
#include <vector>

namespace sparseap {

/** @return the geometric mean of @p values (which must all be positive). */
double geomean(const std::vector<double> &values);

/** @return the arithmetic mean of @p values (0 for an empty vector). */
double mean(const std::vector<double> &values);

/**
 * @return the Pearson correlation coefficient between @p x and @p y, or 0
 * if either series is constant. The vectors must have equal length.
 */
double pearson(const std::vector<double> &x, const std::vector<double> &y);

/** Streaming accumulator for min / max / mean / count. */
class Accumulator
{
  public:
    /** Fold one sample into the accumulator. */
    void add(double v);

    double min() const { return count_ ? min_ : 0.0; }
    double max() const { return count_ ? max_ : 0.0; }
    double mean() const { return count_ ? sum_ / count_ : 0.0; }
    double sum() const { return sum_; }
    size_t count() const { return count_; }

  private:
    double min_ = 0.0;
    double max_ = 0.0;
    double sum_ = 0.0;
    size_t count_ = 0;
};

} // namespace sparseap

#endif // SPARSEAP_COMMON_STATS_H
