/**
 * @file
 * Small numeric helpers shared by the evaluation harness: geometric mean,
 * arithmetic mean, Pearson correlation, and a streaming min/max/mean
 * accumulator.
 */

#ifndef SPARSEAP_COMMON_STATS_H
#define SPARSEAP_COMMON_STATS_H

#include <array>
#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace sparseap {

/** @return the geometric mean of @p values (which must all be positive). */
double geomean(const std::vector<double> &values);

/** @return the arithmetic mean of @p values (0 for an empty vector). */
double mean(const std::vector<double> &values);

/**
 * @return the Pearson correlation coefficient between @p x and @p y, or 0
 * if either series is constant. The vectors must have equal length.
 */
double pearson(const std::vector<double> &x, const std::vector<double> &y);

/** Streaming accumulator for min / max / mean / variance / count. */
class Accumulator
{
  public:
    /** Fold one sample into the accumulator. */
    void add(double v);

    double min() const { return count_ ? min_ : 0.0; }
    double max() const { return count_ ? max_ : 0.0; }
    double mean() const { return count_ ? sum_ / count_ : 0.0; }
    double sum() const { return sum_; }
    size_t count() const { return count_; }

    /**
     * Population variance (mean of squared deviations; 0 for fewer than
     * two samples). Computed with Welford's recurrence, so it is stable
     * for series whose mean dwarfs their spread.
     */
    double variance() const { return count_ >= 2 ? m2_ / count_ : 0.0; }

    /** Population standard deviation: sqrt(variance()). */
    double stddev() const;

  private:
    double min_ = 0.0;
    double max_ = 0.0;
    double sum_ = 0.0;
    double mean_ = 0.0; ///< running mean (Welford)
    double m2_ = 0.0;   ///< running sum of squared deviations
    size_t count_ = 0;
};

/**
 * Fixed log-bucketed histogram of nonnegative integer samples (latencies
 * in microseconds, sizes in bytes, ...). Bucket b holds values whose bit
 * width is b: bucket 0 is {0}, bucket 1 is {1}, bucket 2 is [2, 3],
 * bucket 3 is [4, 7], ... — 65 buckets cover the whole uint64_t range
 * with ~2x relative resolution. Quantiles are estimated by walking the
 * cumulative bucket counts and interpolating linearly inside the bucket
 * that crosses the requested rank.
 */
class Histogram
{
  public:
    /** Bucket count: one per possible bit width of a uint64_t, plus {0}. */
    static constexpr size_t kBuckets = 65;

    /** Bucket index of @p v (its bit width; 0 for 0). */
    static size_t bucketOf(uint64_t v);

    /** Smallest value mapping to bucket @p b. */
    static uint64_t bucketLow(size_t b);

    /** Largest value mapping to bucket @p b. */
    static uint64_t bucketHigh(size_t b);

    /**
     * Estimate the @p q quantile (q in [0, 1]) of the samples described
     * by @p buckets (bucketOf-indexed counts). 0 when empty. Shared with
     * the telemetry registry, whose merged snapshots are plain bucket
     * arrays.
     */
    static double quantileFromBuckets(std::span<const uint64_t> buckets,
                                      double q);

    /** Fold one sample in. */
    void add(uint64_t v);

    size_t count() const { return count_; }
    uint64_t sum() const { return sum_; }
    uint64_t min() const { return count_ ? min_ : 0; }
    uint64_t max() const { return count_ ? max_ : 0; }
    double mean() const
    {
        return count_ ? static_cast<double>(sum_) / count_ : 0.0;
    }

    /** Quantile estimate over this histogram's own buckets. */
    double quantile(double q) const
    {
        return quantileFromBuckets(buckets_, q);
    }
    double p50() const { return quantile(0.50); }
    double p95() const { return quantile(0.95); }
    double p99() const { return quantile(0.99); }

    const std::array<uint64_t, kBuckets> &buckets() const
    {
        return buckets_;
    }

    /** Fold another histogram's samples into this one. */
    void merge(const Histogram &other);

  private:
    std::array<uint64_t, kBuckets> buckets_{};
    size_t count_ = 0;
    uint64_t sum_ = 0;
    uint64_t min_ = 0;
    uint64_t max_ = 0;
};

} // namespace sparseap

#endif // SPARSEAP_COMMON_STATS_H
