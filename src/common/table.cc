#include "common/table.h"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "common/logging.h"

namespace sparseap {

Table::Table(std::vector<std::string> header_cols)
    : header(std::move(header_cols))
{
    SPARSEAP_ASSERT(!header.empty(), "table needs at least one column");
}

void
Table::addRow(std::vector<std::string> row)
{
    SPARSEAP_ASSERT(row.size() == header.size(),
                    "row arity ", row.size(), " != header arity ",
                    header.size());
    rows.push_back(std::move(row));
}

void
Table::print(std::ostream &os) const
{
    std::vector<size_t> width(header.size());
    for (size_t c = 0; c < header.size(); ++c)
        width[c] = header[c].size();
    for (const auto &row : rows)
        for (size_t c = 0; c < row.size(); ++c)
            width[c] = std::max(width[c], row[c].size());

    auto emit = [&](const std::vector<std::string> &cells) {
        for (size_t c = 0; c < cells.size(); ++c) {
            os << std::left << std::setw(static_cast<int>(width[c]))
               << cells[c];
            if (c + 1 < cells.size())
                os << "  ";
        }
        os << '\n';
    };

    emit(header);
    size_t total = 0;
    for (size_t c = 0; c < width.size(); ++c)
        total += width[c] + (c + 1 < width.size() ? 2 : 0);
    os << std::string(total, '-') << '\n';
    for (const auto &row : rows)
        emit(row);
}

void
Table::printCsv(std::ostream &os) const
{
    auto emit = [&](const std::vector<std::string> &cells) {
        for (size_t c = 0; c < cells.size(); ++c) {
            os << cells[c];
            if (c + 1 < cells.size())
                os << ',';
        }
        os << '\n';
    };
    emit(header);
    for (const auto &row : rows)
        emit(row);
}

std::string
Table::fmt(double v, int precision)
{
    std::ostringstream os;
    os << std::fixed << std::setprecision(precision) << v;
    return os.str();
}

std::string
Table::pct(double fraction, int precision)
{
    return fmt(fraction * 100.0, precision) + "%";
}

} // namespace sparseap
