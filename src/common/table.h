/**
 * @file
 * A column-aligned ASCII table writer used by the benchmark harness to
 * print paper tables and figure series. Also emits CSV when asked, so the
 * output can be piped into plotting scripts.
 */

#ifndef SPARSEAP_COMMON_TABLE_H
#define SPARSEAP_COMMON_TABLE_H

#include <iosfwd>
#include <string>
#include <vector>

namespace sparseap {

/** Formats rows of strings under a header, padding columns to align. */
class Table
{
  public:
    /** @param header column names, defining the column count. */
    explicit Table(std::vector<std::string> header);

    /** Append one row; must have the same arity as the header. */
    void addRow(std::vector<std::string> row);

    /** Render as aligned ASCII with a separator under the header. */
    void print(std::ostream &os) const;

    /** Render as CSV (no alignment padding). */
    void printCsv(std::ostream &os) const;

    size_t rowCount() const { return rows.size(); }

    /** Column names, for machine-readable serialization. */
    const std::vector<std::string> &columns() const { return header; }

    /** Row cells, for machine-readable serialization. */
    const std::vector<std::vector<std::string>> &
    rowData() const
    {
        return rows;
    }

    /** Format a double with @p precision digits after the point. */
    static std::string fmt(double v, int precision = 2);

    /** Format a double as a percentage string like "59.3%". */
    static std::string pct(double fraction, int precision = 1);

  private:
    std::vector<std::string> header;
    std::vector<std::vector<std::string>> rows;
};

} // namespace sparseap

#endif // SPARSEAP_COMMON_TABLE_H
