#include "common/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <exception>
#include <memory>

namespace sparseap {

namespace {

/** Set by global() once the static pool exists; see globalIfCreated. */
std::atomic<const ThreadPool *> g_global_pool{nullptr};

uint64_t
steadyMicros()
{
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

} // namespace

ThreadPool::ThreadPool(size_t worker_count)
{
    workers_.reserve(worker_count);
    for (size_t i = 0; i < worker_count; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stopping_ = true;
        queue_.clear();
    }
    cv_.notify_all();
    for (std::thread &t : workers_)
        t.join();
}

void
ThreadPool::submit(std::function<void()> task)
{
    const uint64_t now = steadyMicros();
    size_t depth;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        queue_.push_back({std::move(task), now});
        depth = queue_.size();
    }
    cv_.notify_one();
    {
        std::lock_guard<std::mutex> lock(stats_mutex_);
        stats_.queueHighWater =
            std::max<uint64_t>(stats_.queueHighWater, depth);
    }
}

void
ThreadPool::workerLoop()
{
    for (;;) {
        QueuedTask task;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            cv_.wait(lock,
                     [this] { return stopping_ || !queue_.empty(); });
            if (stopping_)
                return;
            task = std::move(queue_.front());
            queue_.pop_front();
        }
        task.fn();
        recordCompletion(steadyMicros() - task.submit_us);
    }
}

void
ThreadPool::recordCompletion(uint64_t latency_us)
{
    std::lock_guard<std::mutex> lock(stats_mutex_);
    ++stats_.tasksExecuted;
    stats_.taskMicros.add(latency_us);
}

ThreadPool::Stats
ThreadPool::stats() const
{
    std::lock_guard<std::mutex> lock(stats_mutex_);
    return stats_;
}

ThreadPool &
ThreadPool::global()
{
    static ThreadPool pool([] {
        const unsigned hw = std::thread::hardware_concurrency();
        return hw > 1 ? static_cast<size_t>(hw - 1) : size_t{0};
    }());
    g_global_pool.store(&pool, std::memory_order_release);
    return pool;
}

const ThreadPool *
ThreadPool::globalIfCreated()
{
    return g_global_pool.load(std::memory_order_acquire);
}

namespace {

/** Shared state of one parallelFor call. */
struct ParallelRange
{
    std::atomic<size_t> next{0};
    std::atomic<size_t> finished{0};
    size_t total = 0;
    const std::function<void(size_t)> *fn = nullptr;

    std::mutex mutex;
    std::condition_variable done_cv;
    std::exception_ptr error;

    /** Grab-and-run loop shared by the caller and the pool workers. */
    void
    pump()
    {
        for (;;) {
            const size_t i = next.fetch_add(1, std::memory_order_relaxed);
            if (i >= total)
                return;
            try {
                (*fn)(i);
            } catch (...) {
                std::lock_guard<std::mutex> lock(mutex);
                if (!error)
                    error = std::current_exception();
            }
            if (finished.fetch_add(1, std::memory_order_acq_rel) + 1 ==
                total) {
                std::lock_guard<std::mutex> lock(mutex);
                done_cv.notify_all();
            }
        }
    }
};

} // namespace

void
parallelFor(size_t jobs, size_t n, const std::function<void(size_t)> &fn)
{
    if (n == 0)
        return;
    if (jobs <= 1 || n == 1) {
        for (size_t i = 0; i < n; ++i)
            fn(i);
        return;
    }

    auto range = std::make_shared<ParallelRange>();
    range->total = n;
    range->fn = &fn;

    // The caller is one lane; add up to jobs-1 pool lanes (bounded by the
    // range size: extra lanes would find the cursor exhausted anyway).
    ThreadPool &pool = ThreadPool::global();
    const size_t extra =
        std::min({jobs - 1, n - 1, pool.workerCount()});
    for (size_t i = 0; i < extra; ++i)
        pool.submit([range] { range->pump(); });

    range->pump();

    // The caller ran out of indices, but pool lanes may still be running
    // their last iteration; wait for every index to finish.
    {
        std::unique_lock<std::mutex> lock(range->mutex);
        range->done_cv.wait(lock, [&] {
            return range->finished.load(std::memory_order_acquire) ==
                   range->total;
        });
        if (range->error)
            std::rethrow_exception(range->error);
    }
}

} // namespace sparseap
