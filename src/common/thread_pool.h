/**
 * @file
 * A small fixed-size thread pool and a parallel-for helper for
 * batch-level parallelism.
 *
 * AP batches are independent by construction — every batch re-consumes
 * the whole input and cycle accounting is summed per batch — so the
 * executors fan batches out over worker threads. There is no work
 * stealing and no task dependency graph: callers submit an index range,
 * workers grab indices from a shared atomic cursor, and the caller
 * thread participates until the range drains. Results must be written to
 * per-index slots so the merge order (and thus all output) is
 * independent of the thread count.
 */

#ifndef SPARSEAP_COMMON_THREAD_POOL_H
#define SPARSEAP_COMMON_THREAD_POOL_H

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "common/stats.h"

namespace sparseap {

/** Fixed-size pool of worker threads consuming a FIFO task queue. */
class ThreadPool
{
  public:
    /**
     * Self-maintained pool statistics, polled by the telemetry layer
     * (which sits above common/ and therefore cannot be linked from
     * here). All values are scheduling-dependent — they are reported
     * as `pool.*` metrics and excluded from determinism checks.
     */
    struct Stats
    {
        uint64_t tasksExecuted = 0;  ///< tasks run to completion
        uint64_t queueHighWater = 0; ///< max queue depth seen at submit
        Histogram taskMicros;        ///< submit-to-completion latency
    };

    /** Spawn @p worker_count workers (0 is legal: tasks never run). */
    explicit ThreadPool(size_t worker_count);

    /** Drains nothing: pending tasks are discarded, running ones joined. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Enqueue @p task for execution on some worker. */
    void submit(std::function<void()> task);

    size_t workerCount() const { return workers_.size(); }

    /** Copy of the pool's counters/latency histogram (thread-safe). */
    Stats stats() const;

    /**
     * Process-wide pool shared by all executors, sized to
     * hardware_concurrency - 1 workers (the caller thread is the +1).
     * Created on first use; cheap to call afterwards.
     */
    static ThreadPool &global();

    /**
     * The global pool if some caller already forced its creation,
     * nullptr otherwise. Never instantiates — telemetry snapshots use
     * this so that reading metrics does not spawn worker threads.
     */
    static const ThreadPool *globalIfCreated();

  private:
    /** A queued task plus its enqueue timestamp (for latency stats). */
    struct QueuedTask
    {
        std::function<void()> fn;
        uint64_t submit_us;
    };

    void workerLoop();
    void recordCompletion(uint64_t latency_us);

    std::mutex mutex_;
    std::condition_variable cv_;
    std::deque<QueuedTask> queue_;
    bool stopping_ = false;
    std::vector<std::thread> workers_;

    mutable std::mutex stats_mutex_;
    Stats stats_;
};

/**
 * Run @p fn(i) for every i in [0, n) using up to @p jobs threads (the
 * caller plus jobs-1 pool workers). jobs <= 1 runs everything inline on
 * the caller thread with no synchronization. Iteration order within a
 * thread is increasing, but cross-thread interleaving is arbitrary —
 * callers must write results into per-index slots and merge afterwards
 * for deterministic output. The first exception thrown by any iteration
 * is rethrown on the caller thread after the range drains.
 */
void parallelFor(size_t jobs, size_t n,
                 const std::function<void(size_t)> &fn);

} // namespace sparseap

#endif // SPARSEAP_COMMON_THREAD_POOL_H
