#include "common/vec.h"

#include <atomic>
#include <cstring>
#include <mutex>

#include "common/logging.h"
#include "common/options.h"

#if defined(__x86_64__) || defined(__i386__)
#define SPARSEAP_VEC_X86 1
#include <immintrin.h>
#else
#define SPARSEAP_VEC_X86 0
#endif

namespace sparseap {
namespace simd {

namespace {

// ------------------------------------------------------------- scalar --

void
bitAndScalar(uint64_t *dst, const uint64_t *a, const uint64_t *b,
             size_t n)
{
    for (size_t i = 0; i < n; ++i)
        dst[i] = a[i] & b[i];
}

void
orIntoScalar(uint64_t *dst, const uint64_t *src, size_t n)
{
    for (size_t i = 0; i < n; ++i)
        dst[i] |= src[i];
}

void
clearScalar(uint64_t *dst, size_t n)
{
    std::memset(dst, 0, n * sizeof(uint64_t));
}

void
andNotIntoScalar(uint64_t *dst, const uint64_t *src, size_t n)
{
    for (size_t i = 0; i < n; ++i)
        dst[i] &= ~src[i];
}

void
shiftOrIntoScalar(uint64_t *dst, const uint64_t *src, size_t n)
{
    uint64_t carry = 0;
    for (size_t i = 0; i < n; ++i) {
        const uint64_t s = src[i];
        dst[i] |= (s << 1) | carry;
        carry = s >> 63;
    }
}

void
nonzeroWordsScalar(uint64_t *dst, const uint64_t *src, size_t n)
{
    size_t i = 0;
    size_t j = 0;
    while (i < n) {
        const size_t lim = n - i < 64 ? n - i : 64;
        uint64_t bits = 0;
        for (size_t k = 0; k < lim; ++k)
            bits |= static_cast<uint64_t>(src[i + k] != 0) << k;
        dst[j++] = bits;
        i += lim;
    }
}

uint64_t
popcountScalar(const uint64_t *src, size_t n)
{
    uint64_t sum = 0;
    for (size_t i = 0; i < n; ++i)
        sum += static_cast<uint64_t>(__builtin_popcountll(src[i]));
    return sum;
}

size_t
scanForByteMaskScalar(const uint8_t *data, size_t n,
                      const ScanMask &mask)
{
    for (size_t i = 0; i < n; ++i)
        if (mask.test(data[i]))
            return i;
    return n;
}

#if SPARSEAP_VEC_X86

// Every vector body uses unaligned loads/stores: they are exactly as
// fast as aligned ones when the address is aligned (which it is, see
// vec.h), and they keep the kernels safe on arbitrary tails and spans.

// --------------------------------------------------------------- sse2 --

__attribute__((target("sse2"))) void
bitAndSse2(uint64_t *dst, const uint64_t *a, const uint64_t *b, size_t n)
{
    size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        const __m128i a0 = _mm_loadu_si128(
            reinterpret_cast<const __m128i *>(a + i));
        const __m128i a1 = _mm_loadu_si128(
            reinterpret_cast<const __m128i *>(a + i + 2));
        const __m128i b0 = _mm_loadu_si128(
            reinterpret_cast<const __m128i *>(b + i));
        const __m128i b1 = _mm_loadu_si128(
            reinterpret_cast<const __m128i *>(b + i + 2));
        _mm_storeu_si128(reinterpret_cast<__m128i *>(dst + i),
                         _mm_and_si128(a0, b0));
        _mm_storeu_si128(reinterpret_cast<__m128i *>(dst + i + 2),
                         _mm_and_si128(a1, b1));
    }
    for (; i < n; ++i)
        dst[i] = a[i] & b[i];
}

__attribute__((target("sse2"))) void
orIntoSse2(uint64_t *dst, const uint64_t *src, size_t n)
{
    size_t i = 0;
    for (; i + 2 <= n; i += 2) {
        const __m128i d = _mm_loadu_si128(
            reinterpret_cast<const __m128i *>(dst + i));
        const __m128i s = _mm_loadu_si128(
            reinterpret_cast<const __m128i *>(src + i));
        _mm_storeu_si128(reinterpret_cast<__m128i *>(dst + i),
                         _mm_or_si128(d, s));
    }
    for (; i < n; ++i)
        dst[i] |= src[i];
}

__attribute__((target("sse2"))) void
clearSse2(uint64_t *dst, size_t n)
{
    const __m128i z = _mm_setzero_si128();
    size_t i = 0;
    for (; i + 2 <= n; i += 2)
        _mm_storeu_si128(reinterpret_cast<__m128i *>(dst + i), z);
    for (; i < n; ++i)
        dst[i] = 0;
}

// --------------------------------------------------------------- avx2 --

__attribute__((target("avx2"))) void
bitAndAvx2(uint64_t *dst, const uint64_t *a, const uint64_t *b, size_t n)
{
    size_t i = 0;
    for (; i + 8 <= n; i += 8) {
        const __m256i a0 = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(a + i));
        const __m256i a1 = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(a + i + 4));
        const __m256i b0 = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(b + i));
        const __m256i b1 = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(b + i + 4));
        _mm256_storeu_si256(reinterpret_cast<__m256i *>(dst + i),
                            _mm256_and_si256(a0, b0));
        _mm256_storeu_si256(reinterpret_cast<__m256i *>(dst + i + 4),
                            _mm256_and_si256(a1, b1));
    }
    for (; i + 4 <= n; i += 4) {
        const __m256i a0 = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(a + i));
        const __m256i b0 = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(b + i));
        _mm256_storeu_si256(reinterpret_cast<__m256i *>(dst + i),
                            _mm256_and_si256(a0, b0));
    }
    for (; i < n; ++i)
        dst[i] = a[i] & b[i];
}

__attribute__((target("avx2"))) void
orIntoAvx2(uint64_t *dst, const uint64_t *src, size_t n)
{
    size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        const __m256i d = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(dst + i));
        const __m256i s = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(src + i));
        _mm256_storeu_si256(reinterpret_cast<__m256i *>(dst + i),
                            _mm256_or_si256(d, s));
    }
    for (; i < n; ++i)
        dst[i] |= src[i];
}

__attribute__((target("avx2"))) void
clearAvx2(uint64_t *dst, size_t n)
{
    const __m256i z = _mm256_setzero_si256();
    size_t i = 0;
    for (; i + 4 <= n; i += 4)
        _mm256_storeu_si256(reinterpret_cast<__m256i *>(dst + i), z);
    for (; i < n; ++i)
        dst[i] = 0;
}

__attribute__((target("avx2"))) void
andNotIntoAvx2(uint64_t *dst, const uint64_t *src, size_t n)
{
    size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        const __m256i d = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(dst + i));
        const __m256i s = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(src + i));
        // andnot computes ~a & b, so src goes in the first operand.
        _mm256_storeu_si256(reinterpret_cast<__m256i *>(dst + i),
                            _mm256_andnot_si256(s, d));
    }
    for (; i < n; ++i)
        dst[i] &= ~src[i];
}

__attribute__((target("avx2"))) void
shiftOrIntoAvx2(uint64_t *dst, const uint64_t *src, size_t n)
{
    if (n == 0)
        return;
    dst[0] |= src[0] << 1;
    size_t i = 1;
    // The cross-word carry is an unaligned reload of src one element
    // back — cheaper than lane-shuffling the previous vector.
    for (; i + 4 <= n; i += 4) {
        const __m256i cur = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(src + i));
        const __m256i prev = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(src + i - 1));
        const __m256i v = _mm256_or_si256(_mm256_slli_epi64(cur, 1),
                                          _mm256_srli_epi64(prev, 63));
        const __m256i d = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(dst + i));
        _mm256_storeu_si256(reinterpret_cast<__m256i *>(dst + i),
                            _mm256_or_si256(d, v));
    }
    for (; i < n; ++i)
        dst[i] |= (src[i] << 1) | (src[i - 1] >> 63);
}

__attribute__((target("avx2"))) void
nonzeroWordsAvx2(uint64_t *dst, const uint64_t *src, size_t n)
{
    const __m256i z = _mm256_setzero_si256();
    size_t i = 0;
    size_t j = 0;
    while (i + 64 <= n) {
        uint64_t bits = 0;
        for (size_t k = 0; k < 64; k += 4) {
            const __m256i v = _mm256_loadu_si256(
                reinterpret_cast<const __m256i *>(src + i + k));
            const unsigned zero = static_cast<unsigned>(
                _mm256_movemask_pd(_mm256_castsi256_pd(
                    _mm256_cmpeq_epi64(v, z))));
            bits |= static_cast<uint64_t>(~zero & 0xfu) << k;
        }
        dst[j++] = bits;
        i += 64;
    }
    while (i < n) {
        const size_t lim = n - i < 64 ? n - i : 64;
        uint64_t bits = 0;
        for (size_t k = 0; k < lim; ++k)
            bits |= static_cast<uint64_t>(src[i + k] != 0) << k;
        dst[j++] = bits;
        i += lim;
    }
}

// ------------------------------------------------------------- avx512 --

__attribute__((target("avx512f,avx512bw"))) void
bitAndAvx512(uint64_t *dst, const uint64_t *a, const uint64_t *b,
             size_t n)
{
    size_t i = 0;
    for (; i + 8 <= n; i += 8) {
        const __m512i va = _mm512_loadu_si512(a + i);
        const __m512i vb = _mm512_loadu_si512(b + i);
        _mm512_storeu_si512(dst + i, _mm512_and_si512(va, vb));
    }
    if (i < n) {
        // Masked tail: one predicated op instead of a scalar loop.
        const __mmask8 m =
            static_cast<__mmask8>((1u << (n - i)) - 1u);
        const __m512i va = _mm512_maskz_loadu_epi64(m, a + i);
        const __m512i vb = _mm512_maskz_loadu_epi64(m, b + i);
        _mm512_mask_storeu_epi64(dst + i, m, _mm512_and_si512(va, vb));
    }
}

__attribute__((target("avx512f,avx512bw"))) void
orIntoAvx512(uint64_t *dst, const uint64_t *src, size_t n)
{
    size_t i = 0;
    for (; i + 8 <= n; i += 8) {
        const __m512i d = _mm512_loadu_si512(dst + i);
        const __m512i s = _mm512_loadu_si512(src + i);
        _mm512_storeu_si512(dst + i, _mm512_or_si512(d, s));
    }
    if (i < n) {
        const __mmask8 m =
            static_cast<__mmask8>((1u << (n - i)) - 1u);
        const __m512i d = _mm512_maskz_loadu_epi64(m, dst + i);
        const __m512i s = _mm512_maskz_loadu_epi64(m, src + i);
        _mm512_mask_storeu_epi64(dst + i, m, _mm512_or_si512(d, s));
    }
}

__attribute__((target("avx512f,avx512bw"))) void
clearAvx512(uint64_t *dst, size_t n)
{
    const __m512i z = _mm512_setzero_si512();
    size_t i = 0;
    for (; i + 8 <= n; i += 8)
        _mm512_storeu_si512(dst + i, z);
    if (i < n) {
        const __mmask8 m =
            static_cast<__mmask8>((1u << (n - i)) - 1u);
        _mm512_mask_storeu_epi64(dst + i, m, z);
    }
}

__attribute__((target("avx512f,avx512bw"))) void
andNotIntoAvx512(uint64_t *dst, const uint64_t *src, size_t n)
{
    size_t i = 0;
    for (; i + 8 <= n; i += 8) {
        const __m512i d = _mm512_loadu_si512(dst + i);
        const __m512i s = _mm512_loadu_si512(src + i);
        _mm512_storeu_si512(dst + i, _mm512_andnot_si512(s, d));
    }
    if (i < n) {
        const __mmask8 m =
            static_cast<__mmask8>((1u << (n - i)) - 1u);
        const __m512i d = _mm512_maskz_loadu_epi64(m, dst + i);
        const __m512i s = _mm512_maskz_loadu_epi64(m, src + i);
        _mm512_mask_storeu_epi64(dst + i, m,
                                 _mm512_andnot_si512(s, d));
    }
}

__attribute__((target("avx512f,avx512bw"))) void
shiftOrIntoAvx512(uint64_t *dst, const uint64_t *src, size_t n)
{
    if (n == 0)
        return;
    dst[0] |= src[0] << 1;
    size_t i = 1;
    for (; i + 8 <= n; i += 8) {
        const __m512i cur = _mm512_loadu_si512(src + i);
        const __m512i prev = _mm512_loadu_si512(src + i - 1);
        const __m512i v = _mm512_or_si512(_mm512_slli_epi64(cur, 1),
                                          _mm512_srli_epi64(prev, 63));
        const __m512i d = _mm512_loadu_si512(dst + i);
        _mm512_storeu_si512(dst + i, _mm512_or_si512(d, v));
    }
    if (i < n) {
        const __mmask8 m =
            static_cast<__mmask8>((1u << (n - i)) - 1u);
        const __m512i cur = _mm512_maskz_loadu_epi64(m, src + i);
        const __m512i prev = _mm512_maskz_loadu_epi64(m, src + i - 1);
        const __m512i v = _mm512_or_si512(_mm512_slli_epi64(cur, 1),
                                          _mm512_srli_epi64(prev, 63));
        const __m512i d = _mm512_maskz_loadu_epi64(m, dst + i);
        _mm512_mask_storeu_epi64(dst + i, m, _mm512_or_si512(d, v));
    }
}

__attribute__((target("avx512f,avx512bw"))) void
nonzeroWordsAvx512(uint64_t *dst, const uint64_t *src, size_t n)
{
    size_t i = 0;
    size_t j = 0;
    while (i + 64 <= n) {
        uint64_t bits = 0;
        for (size_t k = 0; k < 64; k += 8) {
            const __m512i v = _mm512_loadu_si512(src + i + k);
            bits |= static_cast<uint64_t>(
                        _mm512_test_epi64_mask(v, v))
                    << k;
        }
        dst[j++] = bits;
        i += 64;
    }
    if (i < n) {
        const size_t rem = n - i;
        uint64_t bits = 0;
        size_t k = 0;
        for (; k + 8 <= rem; k += 8) {
            const __m512i v = _mm512_loadu_si512(src + i + k);
            bits |= static_cast<uint64_t>(
                        _mm512_test_epi64_mask(v, v))
                    << k;
        }
        if (k < rem) {
            const __mmask8 m =
                static_cast<__mmask8>((1u << (rem - k)) - 1u);
            const __m512i v =
                _mm512_maskz_loadu_epi64(m, src + i + k);
            bits |= static_cast<uint64_t>(
                        _mm512_test_epi64_mask(v, v))
                    << k;
        }
        dst[j] = bits;
    }
}

// The shuffle-based byte classifier ("truffle" in Hyperscan): for byte
// b = (hi<<4)|lo, pshufb looks membership bits up by lo in two nibble
// tables split on hi<8 vs hi>=8 (pshufb zeroes lanes whose index byte
// has bit 7 set, which performs the split for free: v selects the
// hi<8 half directly, v^0x80 selects the other). A third pshufb maps
// the hi nibble (bits 4-6 of the shifted index are ignored by pshufb)
// to the single-bit mask 1<<(hi&7); a byte is in the set iff the
// looked-up membership bits intersect that mask.

__attribute__((target("avx2"))) size_t
scanForByteMaskAvx2(const uint8_t *data, size_t n, const ScanMask &mask)
{
    const __m256i lo_clear = _mm256_broadcastsi128_si256(_mm_load_si128(
        reinterpret_cast<const __m128i *>(mask.loClear)));
    const __m256i lo_set = _mm256_broadcastsi128_si256(_mm_load_si128(
        reinterpret_cast<const __m128i *>(mask.loSet)));
    const __m256i hi_bit = _mm256_set1_epi8(static_cast<char>(0x80));
    const __m256i power = _mm256_set1_epi64x(
        static_cast<long long>(0x8040201008040201ull));
    size_t i = 0;
    for (; i + 32 <= n; i += 32) {
        const __m256i v = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(data + i));
        const __m256i shuf1 = _mm256_shuffle_epi8(lo_clear, v);
        const __m256i shuf2 = _mm256_shuffle_epi8(
            lo_set, _mm256_xor_si256(v, hi_bit));
        const __m256i hi = _mm256_andnot_si256(
            hi_bit, _mm256_srli_epi64(v, 4));
        const __m256i shuf3 = _mm256_shuffle_epi8(power, hi);
        const __m256i hit = _mm256_and_si256(
            _mm256_or_si256(shuf1, shuf2), shuf3);
        const unsigned miss = static_cast<unsigned>(_mm256_movemask_epi8(
            _mm256_cmpeq_epi8(hit, _mm256_setzero_si256())));
        const unsigned found = ~miss;
        if (found != 0)
            return i + static_cast<size_t>(__builtin_ctz(found));
    }
    for (; i < n; ++i)
        if (mask.test(data[i]))
            return i;
    return n;
}

__attribute__((target("avx512f,avx512bw"))) size_t
scanForByteMaskAvx512(const uint8_t *data, size_t n,
                      const ScanMask &mask)
{
    const __m512i lo_clear = _mm512_broadcast_i32x4(_mm_load_si128(
        reinterpret_cast<const __m128i *>(mask.loClear)));
    const __m512i lo_set = _mm512_broadcast_i32x4(_mm_load_si128(
        reinterpret_cast<const __m128i *>(mask.loSet)));
    const __m512i hi_bit = _mm512_set1_epi8(static_cast<char>(0x80));
    const __m512i power = _mm512_set1_epi64(
        static_cast<long long>(0x8040201008040201ull));
    size_t i = 0;
    for (; i + 64 <= n; i += 64) {
        const __m512i v = _mm512_loadu_si512(data + i);
        const __m512i shuf1 = _mm512_shuffle_epi8(lo_clear, v);
        const __m512i shuf2 = _mm512_shuffle_epi8(
            lo_set, _mm512_xor_si512(v, hi_bit));
        const __m512i hi = _mm512_andnot_si512(
            hi_bit, _mm512_srli_epi64(v, 4));
        const __m512i shuf3 = _mm512_shuffle_epi8(power, hi);
        const __m512i hit = _mm512_and_si512(
            _mm512_or_si512(shuf1, shuf2), shuf3);
        const __mmask64 found = _mm512_test_epi8_mask(hit, hit);
        if (found != 0)
            return i + static_cast<size_t>(__builtin_ctzll(
                           static_cast<unsigned long long>(found)));
    }
    for (; i < n; ++i)
        if (mask.test(data[i]))
            return i;
    return n;
}

__attribute__((target("avx512f,avx512vpopcntdq"))) uint64_t
popcountAvx512(const uint64_t *src, size_t n)
{
    __m512i acc = _mm512_setzero_si512();
    size_t i = 0;
    for (; i + 8 <= n; i += 8)
        acc = _mm512_add_epi64(
            acc, _mm512_popcnt_epi64(_mm512_loadu_si512(src + i)));
    uint64_t sum = static_cast<uint64_t>(_mm512_reduce_add_epi64(acc));
    for (; i < n; ++i)
        sum += static_cast<uint64_t>(__builtin_popcountll(src[i]));
    return sum;
}

#endif // SPARSEAP_VEC_X86

// ----------------------------------------------------------- dispatch --

constexpr Ops kScalarOps{bitAndScalar,       orIntoScalar,
                         clearScalar,        andNotIntoScalar,
                         shiftOrIntoScalar,  nonzeroWordsScalar,
                         popcountScalar,     scanForByteMaskScalar,
                         Isa::Scalar};

#if SPARSEAP_VEC_X86
// The SSE2 tier keeps the scalar bodies for the shift/summary/scan ops:
// the scalar loops already compile to baseline SSE2 (and the shuffle
// classifier needs SSSE3's pshufb anyway) — the tier exists as a
// correctness reference, not a speed target.
constexpr Ops kSse2Ops{bitAndSse2,         orIntoSse2,
                       clearSse2,          andNotIntoScalar,
                       shiftOrIntoScalar,  nonzeroWordsScalar,
                       popcountScalar,     scanForByteMaskScalar,
                       Isa::Sse2};
constexpr Ops kAvx2Ops{bitAndAvx2,       orIntoAvx2,
                       clearAvx2,        andNotIntoAvx2,
                       shiftOrIntoAvx2,  nonzeroWordsAvx2,
                       popcountScalar,   scanForByteMaskAvx2,
                       Isa::Avx2};
// Two AVX-512 tables: VPOPCNTDQ is a separate feature bit from BW.
constexpr Ops kAvx512Ops{bitAndAvx512,       orIntoAvx512,
                         clearAvx512,        andNotIntoAvx512,
                         shiftOrIntoAvx512,  nonzeroWordsAvx512,
                         popcountScalar,     scanForByteMaskAvx512,
                         Isa::Avx512};
constexpr Ops kAvx512PopcntOps{bitAndAvx512,       orIntoAvx512,
                               clearAvx512,        andNotIntoAvx512,
                               shiftOrIntoAvx512,  nonzeroWordsAvx512,
                               popcountAvx512,     scanForByteMaskAvx512,
                               Isa::Avx512};
#endif

const Ops *
tableFor(Isa isa)
{
    switch (isa) {
    case Isa::Scalar:
        return &kScalarOps;
#if SPARSEAP_VEC_X86
    case Isa::Sse2:
        return &kSse2Ops;
    case Isa::Avx2:
        return &kAvx2Ops;
    case Isa::Avx512:
        return __builtin_cpu_supports("avx512vpopcntdq")
                   ? &kAvx512PopcntOps
                   : &kAvx512Ops;
#else
    case Isa::Sse2:
    case Isa::Avx2:
    case Isa::Avx512:
        return &kScalarOps;
#endif
    }
    return &kScalarOps;
}

std::atomic<const Ops *> g_active{nullptr};
std::once_flag g_resolve_once;

/** Map the SPARSEAP_SIMD string (see common/options.h) to a request. */
bool
parseSimd(const std::string &s, Isa *isa)
{
    if (s == "off" || s == "scalar") {
        *isa = Isa::Scalar;
        return true;
    }
    if (s == "sse2") {
        *isa = Isa::Sse2;
        return true;
    }
    if (s == "avx2") {
        *isa = Isa::Avx2;
        return true;
    }
    if (s == "avx512") {
        *isa = Isa::Avx512;
        return true;
    }
    return false;
}

void
resolve()
{
    const std::string &req = globalOptions().simd;
    Isa isa = bestIsa();
    if (req != "auto") {
        if (!parseSimd(req, &isa))
            fatal("SPARSEAP_SIMD must be auto, off, scalar, sse2, avx2 "
                  "or avx512, got '",
                  req, "'");
        if (!isaSupported(isa))
            fatal("SPARSEAP_SIMD=", req,
                  " requests an ISA this CPU does not support");
    }
    g_active.store(tableFor(isa), std::memory_order_release);
}

} // namespace

ScanMask
ScanMask::fromBits(const uint64_t raw[4])
{
    ScanMask m{};
    for (int i = 0; i < 4; ++i)
        m.bits[i] = raw[i];
    for (unsigned b = 0; b < 256; ++b) {
        if (!((raw[b >> 6] >> (b & 63)) & 1))
            continue;
        const unsigned lo = b & 0xf;
        const unsigned hi = b >> 4;
        if (hi < 8)
            m.loClear[lo] |= static_cast<uint8_t>(1u << hi);
        else
            m.loSet[lo] |= static_cast<uint8_t>(1u << (hi - 8));
    }
    return m;
}

unsigned
ScanMask::population() const
{
    unsigned sum = 0;
    for (uint64_t w : bits)
        sum += static_cast<unsigned>(__builtin_popcountll(w));
    return sum;
}

const char *
isaName(Isa isa)
{
    switch (isa) {
    case Isa::Scalar:
        return "scalar";
    case Isa::Sse2:
        return "sse2";
    case Isa::Avx2:
        return "avx2";
    case Isa::Avx512:
        return "avx512";
    }
    return "scalar";
}

bool
isaSupported(Isa isa)
{
    switch (isa) {
    case Isa::Scalar:
        return true;
#if SPARSEAP_VEC_X86
    case Isa::Sse2:
        return __builtin_cpu_supports("sse2");
    case Isa::Avx2:
        return __builtin_cpu_supports("avx2");
    case Isa::Avx512:
        return __builtin_cpu_supports("avx512f") &&
               __builtin_cpu_supports("avx512bw");
#else
    case Isa::Sse2:
    case Isa::Avx2:
    case Isa::Avx512:
        return false;
#endif
    }
    return false;
}

Isa
bestIsa()
{
    if (isaSupported(Isa::Avx512))
        return Isa::Avx512;
    if (isaSupported(Isa::Avx2))
        return Isa::Avx2;
    if (isaSupported(Isa::Sse2))
        return Isa::Sse2;
    return Isa::Scalar;
}

const Ops &
ops()
{
    const Ops *p = g_active.load(std::memory_order_acquire);
    if (p == nullptr) {
        std::call_once(g_resolve_once, resolve);
        p = g_active.load(std::memory_order_acquire);
    }
    return *p;
}

Isa
activeIsa()
{
    return ops().isa;
}

bool
setIsa(Isa isa)
{
    if (!isaSupported(isa))
        return false;
    (void)ops(); // make sure the once-resolution has happened
    g_active.store(tableFor(isa), std::memory_order_release);
    return true;
}

} // namespace simd
} // namespace sparseap
