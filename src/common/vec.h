/**
 * @file
 * Width-abstracted SIMD kernels for the 64-bit word sweeps of the dense
 * execution core (and any other consumer of WordVector-shaped data).
 *
 * The dense kernel's hot loops — accept-row AND, successor-OR
 * accumulation, next-vector wipes, live-word popcounts — are straight
 * element-wise passes over cache-line-aligned uint64_t arrays, i.e.
 * exactly the shape vector ISAs were built for. This layer exposes them
 * as a small op table so the stepping code is written once against the
 * abstract width:
 *
 *   simd::ops().bitAnd(act, enabled, accept, words);
 *
 * Four implementations are compiled into every binary via function-level
 * target attributes (no special -m flags needed): portable scalar,
 * SSE2 (128-bit), AVX2 (256-bit) and AVX-512BW (512-bit). The table is
 * resolved ONCE at first use from CPUID — the hot loops pay one cached
 * pointer load, never a per-element branch — and can be overridden:
 *
 *   SPARSEAP_SIMD=auto|off|scalar|sse2|avx2|avx512   (process-wide)
 *   simd::setIsa(Isa)                                 (tests/benches)
 *
 * "off" and "scalar" are synonyms. Requesting an ISA the CPU lacks is a
 * fatal configuration error for the env var and a false return for
 * setIsa(). Consumers that cache the table (DenseCore grabs it at
 * construction) must be constructed after any setIsa() override.
 *
 * All kernels tolerate arbitrary lengths and unaligned pointers (the
 * vector bodies use unaligned loads, which cost the same as aligned ones
 * on every AVX2/AVX-512 part when the address is in fact aligned). The
 * word buffers they sweep are 64-byte aligned by construction —
 * WordVector's allocator and the store's section alignment — and the
 * dense accept table pads its row stride to a multiple of 8 words, so in
 * practice no load ever splits a cache line.
 */

#ifndef SPARSEAP_COMMON_VEC_H
#define SPARSEAP_COMMON_VEC_H

#include <cstddef>
#include <cstdint>

namespace sparseap {
namespace simd {

/** Instruction-set tiers, in strictly increasing width/capability. */
enum class Isa : uint8_t {
    Scalar = 0, ///< portable uint64_t loops (auto-vectorizable)
    Sse2,       ///< 128-bit integer SSE2 (baseline on x86-64)
    Avx2,       ///< 256-bit integer AVX2
    Avx512,     ///< 512-bit AVX-512BW
};

/** @return "scalar", "sse2", "avx2" or "avx512". */
const char *isaName(Isa isa);

/**
 * A set of byte values prepared for vectorized membership scans
 * (scanForByteMask). bits is the plain 256-bit set; loClear/loSet are
 * the Hyperscan-style "truffle" nibble tables the shuffle-based
 * classifier indexes by the low nibble of each input byte: loClear[lo]
 * holds, as bit hi, membership of byte (hi<<4)|lo for hi < 8, and
 * loSet[lo] holds bit (hi-8) for hi >= 8 (pshufb zeroes lanes whose
 * index byte has the top bit set, which is what splits the two halves).
 * Build with ScanMask::fromBits so the tables always agree with bits.
 */
struct ScanMask
{
    alignas(16) uint8_t loClear[16];
    alignas(16) uint8_t loSet[16];
    uint64_t bits[4];

    /** Derive the nibble tables from a raw 256-bit set. */
    static ScanMask fromBits(const uint64_t raw[4]);

    /** True iff byte @p b is in the set. */
    bool test(uint8_t b) const
    {
        return (bits[b >> 6] >> (b & 63)) & 1;
    }

    /** Number of bytes in the set. */
    unsigned population() const;
};

/**
 * Element-wise kernels over uint64_t arrays. All lengths are in words;
 * dst may equal a or b (in-place) but must not otherwise overlap.
 */
struct Ops
{
    /** dst[i] = a[i] & b[i]. */
    void (*bitAnd)(uint64_t *dst, const uint64_t *a, const uint64_t *b,
                   size_t n);
    /** dst[i] |= src[i]. */
    void (*orInto)(uint64_t *dst, const uint64_t *src, size_t n);
    /** dst[i] = 0. */
    void (*clear)(uint64_t *dst, size_t n);
    /** dst[i] &= ~src[i]. */
    void (*andNotInto)(uint64_t *dst, const uint64_t *src, size_t n);
    /**
     * dst[i] |= (src[i] << 1) | (src[i-1] >> 63), with src[-1] = 0:
     * OR in src shifted left by one *bit position* across word
     * boundaries — the cross-word bit-parallel successor step for
     * chain states (see DenseView::chain). The carry out of src[n-1]
     * is dropped; dst must not overlap src.
     */
    void (*shiftOrInto)(uint64_t *dst, const uint64_t *src, size_t n);
    /**
     * Summary build: bit i of dst set iff src[i] != 0, for i in
     * [0, n). Writes all ceil(n/64) words of dst — an overwrite with
     * zero tail bits, not an accumulate. dst must not overlap src.
     */
    void (*nonzeroWords)(uint64_t *dst, const uint64_t *src, size_t n);
    /** Sum of per-word popcounts. */
    uint64_t (*popcount)(const uint64_t *src, size_t n);
    /**
     * Input scan: index of the first byte of data[0..n) that is a
     * member of @p mask, or n when none is. The quiescence skip
     * (DenseCore/HotDfa) uses this to jump the input cursor to the next
     * byte that can change the configuration.
     */
    size_t (*scanForByteMask)(const uint8_t *data, size_t n,
                              const ScanMask &mask);
    Isa isa;
};

/**
 * The active op table, resolved on first call from CPUID and the
 * SPARSEAP_SIMD override (see file comment). Thread-safe; the returned
 * reference is valid for the process lifetime.
 */
const Ops &ops();

/** ISA of the active op table. */
Isa activeIsa();

/** Highest tier this CPU supports. */
Isa bestIsa();

/** True iff the CPU can execute @p isa. */
bool isaSupported(Isa isa);

/**
 * Force the active table to @p isa (tests and per-ISA benchmarks).
 * @return false (and leave the table unchanged) when the CPU lacks it.
 */
bool setIsa(Isa isa);

} // namespace simd
} // namespace sparseap

#endif // SPARSEAP_COMMON_VEC_H
