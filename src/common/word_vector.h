/**
 * @file
 * Cache-line-aligned 64-bit word vectors and set-bit iteration, the
 * building blocks of the bit-parallel dense execution core.
 *
 * A word vector of ceil(N/64) words represents a set over [0, N): bit
 * (w*64 + b) of word w is element w*64+b. The dense engine sweeps such
 * vectors with word-wide AND/OR, so the storage is aligned to 64 bytes
 * to keep each sweep on full cache lines.
 */

#ifndef SPARSEAP_COMMON_WORD_VECTOR_H
#define SPARSEAP_COMMON_WORD_VECTOR_H

#include <cstddef>
#include <cstdint>
#include <new>
#include <span>
#include <vector>

namespace sparseap {

/** Minimal 64-byte-aligned allocator for word storage. */
template <typename T> struct AlignedWordAllocator
{
    using value_type = T;
    static constexpr std::align_val_t kAlign{64};

    AlignedWordAllocator() = default;
    template <typename U>
    AlignedWordAllocator(const AlignedWordAllocator<U> &)
    {
    }

    T *
    allocate(size_t n)
    {
        return static_cast<T *>(
            ::operator new(n * sizeof(T), kAlign));
    }

    void
    deallocate(T *p, size_t) noexcept
    {
        ::operator delete(p, kAlign);
    }

    template <typename U>
    bool
    operator==(const AlignedWordAllocator<U> &) const
    {
        return true;
    }
};

/** 64-byte-aligned vector of 64-bit words. */
using WordVector = std::vector<uint64_t, AlignedWordAllocator<uint64_t>>;

/** Number of 64-bit words needed to hold @p bits bits. */
constexpr size_t
wordsForBits(size_t bits)
{
    return (bits + 63) / 64;
}

/** Set bit @p i of @p words. */
inline void
setWordBit(uint64_t *words, size_t i)
{
    words[i >> 6] |= 1ull << (i & 63);
}

/** @return bit @p i of @p words. */
inline bool
testWordBit(const uint64_t *words, size_t i)
{
    return (words[i >> 6] >> (i & 63)) & 1;
}

/**
 * Invoke @p fn(index) for every set bit of @p words, in increasing index
 * order, using ctz to skip zero runs.
 */
template <typename Fn>
inline void
forEachSetBit(std::span<const uint64_t> words, Fn &&fn)
{
    for (size_t w = 0; w < words.size(); ++w) {
        uint64_t bits = words[w];
        while (bits != 0) {
            const unsigned b =
                static_cast<unsigned>(__builtin_ctzll(bits));
            fn(w * 64 + b);
            bits &= bits - 1;
        }
    }
}

} // namespace sparseap

#endif // SPARSEAP_COMMON_WORD_VECTOR_H
