#include "core/experiment.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <iostream>

#include "common/logging.h"
#include "common/rng.h"
#include "workloads/inputs.h"

namespace sparseap {

namespace {

/** Minimal JSON string escaping (quotes, backslashes, control chars). */
std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 2);
    for (char c : s) {
        switch (c) {
        case '"':
            out += "\\\"";
            break;
        case '\\':
            out += "\\\\";
            break;
        case '\n':
            out += "\\n";
            break;
        case '\t':
            out += "\\t";
            break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

} // namespace

const AppTopology &
LoadedApp::topology() const
{
    if (!topo_)
        topo_ = std::make_unique<AppTopology>(workload.app);
    return *topo_;
}

ExperimentRunner::ExperimentRunner()
    : opts_(globalOptions()), start_(std::chrono::steady_clock::now())
{
}

const LoadedApp &
ExperimentRunner::load(const std::string &abbr)
{
    auto it = cache_.find(abbr);
    if (it != cache_.end())
        return it->second;

    LoadedApp loaded;
    loaded.entry = findApp(abbr);
    loaded.workload =
        generateWorkload(abbr, opts_.seed, opts_.scalePercent);
    Rng input_rng(opts_.seed ^ 0x9e3779b97f4a7c15ull ^
                  std::hash<std::string>{}(abbr));
    size_t bytes = opts_.inputBytes;
    if (loaded.workload.inputBytesCap > 0)
        bytes = std::min(bytes, loaded.workload.inputBytesCap);
    loaded.input =
        synthesizeInput(loaded.workload.input, bytes, input_rng);
    inform("generated ", abbr, ": ", loaded.workload.app.totalStates(),
           " states, ", loaded.workload.app.nfaCount(), " NFAs");
    return cache_.emplace(abbr, std::move(loaded)).first->second;
}

void
ExperimentRunner::unload(const std::string &abbr)
{
    cache_.erase(abbr);
}

std::vector<std::string>
ExperimentRunner::selectApps(const std::string &groups) const
{
    std::vector<std::string> out;
    for (const auto &entry : appCatalog()) {
        if (groups.find(entry.group) == std::string::npos)
            continue;
        if (!opts_.apps.empty() &&
            std::find(opts_.apps.begin(), opts_.apps.end(), entry.abbr) ==
                opts_.apps.end()) {
            continue;
        }
        out.push_back(entry.abbr);
    }
    return out;
}

void
ExperimentRunner::printTable(const Table &table) const
{
    if (opts_.csv)
        table.printCsv(std::cout);
    else
        table.print(std::cout);
    std::cout.flush();
    if (!opts_.jsonPath.empty())
        appendJson(table);
    ++tables_printed_;
}

void
ExperimentRunner::appendJson(const Table &table) const
{
    std::ofstream out(opts_.jsonPath, std::ios::app);
    if (!out) {
        warn("SPARSEAP_JSON: cannot open '", opts_.jsonPath,
             "' for append");
        return;
    }
    const double wall =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start_)
            .count();

    // One self-contained JSON object per line (JSON Lines), so a shell
    // loop over bench binaries can share one trajectory file.
    out << "{\"table_index\":" << tables_printed_
        << ",\"engine_mode\":\"" << engineModeName(opts_.engineMode)
        << "\",\"jobs\":" << opts_.jobs << ",\"seed\":" << opts_.seed
        << ",\"input_bytes\":" << opts_.inputBytes
        << ",\"scale_percent\":" << opts_.scalePercent
        << ",\"wall_seconds\":" << wall << ",\"columns\":[";
    const auto &cols = table.columns();
    for (size_t c = 0; c < cols.size(); ++c) {
        out << (c ? "," : "") << '"' << jsonEscape(cols[c]) << '"';
    }
    out << "],\"rows\":[";
    const auto &rows = table.rowData();
    for (size_t r = 0; r < rows.size(); ++r) {
        out << (r ? ",{" : "{");
        for (size_t c = 0; c < rows[r].size(); ++c) {
            out << (c ? "," : "") << '"' << jsonEscape(cols[c])
                << "\":\"" << jsonEscape(rows[r][c]) << '"';
        }
        out << '}';
    }
    out << "]}\n";
}

void
printSection(const std::string &title)
{
    std::cout << "\n### " << title << "\n\n";
}

SpapRunStats
runAppConfig(const LoadedApp &app, double profile_fraction,
             size_t capacity, const PartitionOptions &partition,
             bool fill_optimization)
{
    ExecutionOptions opts = app.execOptions(profile_fraction, capacity);
    opts.partition = partition;
    opts.fillOptimization = fill_optimization;
    return runBaseApSpap(app.topology(), opts, app.input);
}

HotColdProfile
oracleProfile(const LoadedApp &app)
{
    const FlatAutomaton fa(app.workload.app);
    return profileApplication(fa, app.input);
}

} // namespace sparseap
