#include "core/experiment.h"

#include <algorithm>
#include <cstdio>
#include <iostream>

#include "common/logging.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "store/artifact.h"
#include "store/cache.h"
#include "telemetry/metrics.h"
#include "telemetry/trace.h"
#include "workloads/inputs.h"

namespace sparseap {

namespace {

// ---------------------------------------------------- artifact keys --
// Every compiled artifact is content-addressed by a DigestBuilder fold
// of the app's cacheKey (workload identity + structural fingerprint +
// input hash, see LoadedApp) and the parameters that shape the artifact.
// The store format version is folded in by DigestBuilder itself, so a
// layout change misses the cache instead of misreading old blobs.

uint64_t
flatArtifactKey(const LoadedApp &app)
{
    return store::DigestBuilder()
        .add("flat")
        .add(app.cacheKey)
        .add(static_cast<uint64_t>(
            FlatAutomaton::DenseCompression::Classes))
        .digest();
}

uint64_t
profileArtifactKey(const LoadedApp &app, size_t prefix_len)
{
    // Engine mode is deliberately absent: all stepping cores produce
    // bit-identical profiles (property-tested in test_profiler).
    return store::DigestBuilder()
        .add("profile")
        .add(app.cacheKey)
        .add(prefix_len)
        .digest();
}

uint64_t
partitionArtifactKey(const LoadedApp &app, const ExecutionOptions &opts,
                     size_t prefix_len)
{
    return store::DigestBuilder()
        .add("partition")
        .add(app.cacheKey)
        .add(prefix_len)
        .add(opts.ap.capacity)
        .add(opts.fillOptimization ? 1 : 0)
        .add(opts.partition.dedupeIntermediates ? 1 : 0)
        .digest();
}

/** Minimal JSON string escaping (quotes, backslashes, control chars). */
std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 2);
    for (char c : s) {
        switch (c) {
        case '"':
            out += "\\\"";
            break;
        case '\\':
            out += "\\\\";
            break;
        case '\n':
            out += "\\n";
            break;
        case '\t':
            out += "\\t";
            break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

} // namespace

const AppTopology &
LoadedApp::topology() const
{
    if (!topo_)
        topo_ = std::make_unique<AppTopology>(workload.app);
    return *topo_;
}

const FlatAutomaton &
LoadedApp::flat() const
{
    if (flat_)
        return *flat_;
    const store::ArtifactCache &cache = store::ArtifactCache::global();
    const bool cached = cache.enabled() && cacheKey != 0;
    if (cached) {
        const uint64_t key = flatArtifactKey(*this);
        if (auto blob =
                cache.load(store::ArtifactKind::FlatAutomaton, key)) {
            std::string error;
            if (auto fa = store::decodeFlatAutomaton(*blob, 0, &error)) {
                flat_ = std::move(fa);
                return *flat_;
            }
            warn("artifact cache: ", error, " (recomputing)");
        }
        flat_ = std::make_unique<FlatAutomaton>(workload.app);
        store::BlobWriter w(store::ArtifactKind::FlatAutomaton, key);
        store::encodeFlatAutomaton(*flat_, w);
        cache.store(w);
        return *flat_;
    }
    flat_ = std::make_unique<FlatAutomaton>(workload.app);
    return *flat_;
}

const HotColdProfile &
LoadedApp::profile(size_t prefix_len) const
{
    auto it = profiles_.find(prefix_len);
    if (it != profiles_.end())
        return it->second;

    const store::ArtifactCache &cache = store::ArtifactCache::global();
    if (cache.enabled() && cacheKey != 0) {
        const uint64_t key = profileArtifactKey(*this, prefix_len);
        if (auto blob = cache.load(store::ArtifactKind::Profile, key)) {
            HotColdProfile prof;
            size_t stored_len = 0;
            std::string error;
            if (store::decodeProfile(*blob, &prof, &stored_len, &error) &&
                stored_len == prefix_len &&
                prof.hot.size() == workload.app.totalStates()) {
                return profiles_.emplace(prefix_len, std::move(prof))
                    .first->second;
            }
            warn("artifact cache: unusable profile blob (recomputing)");
        }
        HotColdProfile prof = profileApplication(
            flat(), std::span<const uint8_t>(input.data(), prefix_len));
        store::BlobWriter w(store::ArtifactKind::Profile, key);
        store::encodeProfile(prof, prefix_len, w);
        cache.store(w);
        return profiles_.emplace(prefix_len, std::move(prof))
            .first->second;
    }

    return profiles_
        .emplace(prefix_len,
                 profileApplication(flat(),
                                    std::span<const uint8_t>(
                                        input.data(), prefix_len)))
        .first->second;
}

void
LoadedApp::prewarmProfiles(std::span<const double> fractions) const
{
    std::vector<size_t> lens;
    lens.reserve(fractions.size());
    for (double f : fractions) {
        const size_t len =
            profilePrefixLength(execOptions(f, 1), input.size());
        if (!profiles_.count(len))
            lens.push_back(len);
    }
    std::sort(lens.begin(), lens.end());
    lens.erase(std::unique(lens.begin(), lens.end()), lens.end());

    // Serve what the artifact cache already holds; only the remaining
    // lengths need the (single, checkpointed) profiling pass.
    const store::ArtifactCache &cache = store::ArtifactCache::global();
    const bool cached = cache.enabled() && cacheKey != 0;
    if (cached) {
        std::vector<size_t> todo;
        for (size_t len : lens) {
            const uint64_t key = profileArtifactKey(*this, len);
            auto blob = cache.load(store::ArtifactKind::Profile, key);
            HotColdProfile prof;
            size_t stored_len = 0;
            std::string error;
            if (blob &&
                store::decodeProfile(*blob, &prof, &stored_len, &error) &&
                stored_len == len &&
                prof.hot.size() == workload.app.totalStates()) {
                profiles_.emplace(len, std::move(prof));
            } else {
                todo.push_back(len);
            }
        }
        lens = std::move(todo);
    }
    if (lens.empty())
        return;
    std::vector<HotColdProfile> profs =
        profileApplication(flat(), input, lens);
    for (size_t i = 0; i < lens.size(); ++i) {
        if (cached) {
            store::BlobWriter w(store::ArtifactKind::Profile,
                                profileArtifactKey(*this, lens[i]));
            store::encodeProfile(profs[i], lens[i], w);
            cache.store(w);
        }
        profiles_.emplace(lens[i], std::move(profs[i]));
    }
}

const ReportList &
LoadedApp::referenceReports() const
{
    if (!reference_reports_) {
        Engine engine(flat());
        reference_reports_ =
            std::make_unique<ReportList>(engine.run(input).reports);
    }
    return *reference_reports_;
}

ExperimentRunner::ExperimentRunner()
    : opts_(globalOptions()), start_(std::chrono::steady_clock::now())
{
}

LoadedApp
ExperimentRunner::generate(const std::string &abbr) const
{
    LoadedApp loaded;
    loaded.entry = findApp(abbr);
    loaded.workload =
        generateWorkload(abbr, opts_.seed, opts_.scalePercent);
    Rng input_rng(opts_.seed ^ 0x9e3779b97f4a7c15ull ^
                  std::hash<std::string>{}(abbr));
    size_t bytes = opts_.inputBytes;
    if (loaded.workload.inputBytesCap > 0)
        bytes = std::min(bytes, loaded.workload.inputBytesCap);
    loaded.input =
        synthesizeInput(loaded.workload.input, bytes, input_rng);
    loaded.cacheKey =
        store::DigestBuilder()
            .add("workload")
            .add(abbr)
            .add(opts_.seed)
            .add(opts_.scalePercent)
            .add(loaded.workload.app.totalStates())
            .add(loaded.workload.app.nfaCount())
            .add(store::hash64(loaded.input.data(), loaded.input.size()))
            .digest();
    inform("generated ", abbr, ": ", loaded.workload.app.totalStates(),
           " states, ", loaded.workload.app.nfaCount(), " NFAs");
    return loaded;
}

const LoadedApp &
ExperimentRunner::load(const std::string &abbr)
{
    auto it = cache_.find(abbr);
    if (it != cache_.end())
        return it->second;
    return cache_.emplace(abbr, generate(abbr)).first->second;
}

void
ExperimentRunner::unload(const std::string &abbr)
{
    cache_.erase(abbr);
}

std::vector<std::string>
ExperimentRunner::selectApps(const std::string &groups) const
{
    std::vector<std::string> out;
    for (const auto &entry : appCatalog()) {
        if (groups.find(entry.group) == std::string::npos)
            continue;
        if (!opts_.apps.empty() &&
            std::find(opts_.apps.begin(), opts_.apps.end(), entry.abbr) ==
                opts_.apps.end()) {
            continue;
        }
        out.push_back(entry.abbr);
    }
    return out;
}

void
ExperimentRunner::forEachApp(
    const std::string &groups,
    const std::function<void(const LoadedApp &, size_t)> &fn,
    unsigned jobs)
{
    const std::vector<std::string> apps = selectApps(groups);
    if (apps.empty())
        return;
    const unsigned lanes = std::max(1u, jobs == 0 ? opts_.jobs : jobs);

    // Every app gets a private LoadedApp (so the per-app caches need no
    // locks) and a private log buffer; fn writes results into per-index
    // slots, and the buffered logs are replayed in catalog order below —
    // the lane count is invisible in all output.
    //
    // Telemetry attribution: counter deltas are exact per app only when
    // the sweep is serial, so one lane emits one record per app and a
    // parallel sweep emits one cumulative record for the whole sweep
    // (tagged "*"). Either way the telemetry goes to SPARSEAP_JSON,
    // never to stdout/stderr, so sweep output stays byte-identical at
    // any lane count.
    const bool want_telemetry = !opts_.jsonPath.empty();
    telemetry::Snapshot sweep_before;
    if (want_telemetry)
        sweep_before = telemetry::snapshot();

    std::vector<std::string> logs(apps.size());
    parallelFor(lanes, apps.size(), [&](size_t i) {
        ScopedLogCapture capture(&logs[i]);
        SPARSEAP_SPAN("app", "abbr", apps[i]);
        telemetry::Snapshot app_before;
        const bool per_app = want_telemetry && lanes == 1;
        if (per_app)
            app_before = telemetry::snapshot();
        const LoadedApp app = generate(apps[i]);
        fn(app, i);
        if (per_app)
            appendTelemetry(apps[i],
                            app_before.deltaTo(telemetry::snapshot()));
    });
    for (const std::string &log : logs)
        std::cerr << log;

    if (want_telemetry && lanes > 1)
        appendTelemetry("*",
                        sweep_before.deltaTo(telemetry::snapshot()));
}

void
ExperimentRunner::printTable(const Table &table) const
{
    if (opts_.csv)
        table.printCsv(std::cout);
    else
        table.print(std::cout);
    std::cout.flush();
    if (!opts_.jsonPath.empty())
        appendJson(table);
    ++tables_printed_;
}

std::ofstream *
ExperimentRunner::jsonStream() const
{
    if (!json_out_) {
        if (json_failed_ || opts_.jsonPath.empty())
            return nullptr;
        json_out_ = std::make_unique<std::ofstream>(opts_.jsonPath,
                                                    std::ios::app);
        if (!*json_out_) {
            warn("SPARSEAP_JSON: cannot open '", opts_.jsonPath,
                 "' for append");
            json_out_.reset();
            json_failed_ = true; // warn once, not once per table
            return nullptr;
        }
    }
    return json_out_.get();
}

void
ExperimentRunner::appendTelemetry(const std::string &tag,
                                  const telemetry::Snapshot &snap) const
{
    std::ofstream *out = jsonStream();
    if (!out || snap.empty())
        return;
    telemetry::writeSnapshotJson(*out, snap, jsonEscape(tag));
    out->flush();
}

void
ExperimentRunner::appendJson(const Table &table) const
{
    std::ofstream *out_ptr = jsonStream();
    if (!out_ptr)
        return;
    std::ofstream &out = *out_ptr;
    const double wall =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start_)
            .count();

    // One self-contained JSON object per line (JSON Lines), so a shell
    // loop over bench binaries can share one trajectory file.
    out << "{\"table_index\":" << tables_printed_
        << ",\"engine_mode\":\"" << engineModeName(opts_.engineMode)
        << "\",\"jobs\":" << opts_.jobs << ",\"seed\":" << opts_.seed
        << ",\"input_bytes\":" << opts_.inputBytes
        << ",\"scale_percent\":" << opts_.scalePercent
        << ",\"wall_seconds\":" << wall << ",\"columns\":[";
    const auto &cols = table.columns();
    for (size_t c = 0; c < cols.size(); ++c) {
        out << (c ? "," : "") << '"' << jsonEscape(cols[c]) << '"';
    }
    out << "],\"rows\":[";
    const auto &rows = table.rowData();
    for (size_t r = 0; r < rows.size(); ++r) {
        out << (r ? ",{" : "{");
        for (size_t c = 0; c < rows[r].size(); ++c) {
            out << (c ? "," : "") << '"' << jsonEscape(cols[c])
                << "\":\"" << jsonEscape(rows[r][c]) << '"';
        }
        out << '}';
    }
    out << "]}\n";
    out.flush();
}

void
printSection(const std::string &title)
{
    std::cout << "\n### " << title << "\n\n";
}

PreparedPartition
preparePartition(const LoadedApp &app, const ExecutionOptions &opts)
{
    const size_t profile_len =
        profilePrefixLength(opts, app.input.size());
    const store::ArtifactCache &cache = store::ArtifactCache::global();
    if (!cache.enabled() || app.cacheKey == 0) {
        return preparePartition(app.topology(), opts, app.input,
                                app.profile(profile_len));
    }

    const std::span<const uint8_t> full_input(app.input.data(),
                                              app.input.size());
    const uint64_t key = partitionArtifactKey(app, opts, profile_len);
    if (auto blob = cache.load(store::ArtifactKind::Partition, key)) {
        PreparedPartition prep;
        std::string error;
        if (store::decodePreparedPartition(*blob, &prep, &error)) {
            // The stored blob holds everything derived from the input
            // *content*; the two input views are positions in the
            // caller's stream and are re-derived here.
            prep.profileInput = full_input.subspan(0, profile_len);
            prep.testInput = opts.fullInputAsTest
                                 ? full_input
                                 : full_input.subspan(profile_len);
            return prep;
        }
        warn("artifact cache: ", error, " (recomputing)");
    }
    PreparedPartition prep = preparePartition(
        app.topology(), opts, app.input, app.profile(profile_len));
    store::BlobWriter w(store::ArtifactKind::Partition, key);
    store::encodePreparedPartition(prep, opts.ap.capacity, w);
    cache.store(w);
    return prep;
}

SpapRunStats
runAppConfig(const LoadedApp &app, double profile_fraction,
             size_t capacity, const PartitionOptions &partition,
             bool fill_optimization)
{
    ExecutionOptions opts = app.execOptions(profile_fraction, capacity);
    opts.partition = partition;
    opts.fillOptimization = fill_optimization;
    const PreparedPartition prep = preparePartition(app, opts);
    return runBaseApSpap(app.topology(), opts, prep);
}

const HotColdProfile &
oracleProfile(const LoadedApp &app)
{
    return app.profile(app.input.size());
}

} // namespace sparseap
