#include "core/experiment.h"

#include <algorithm>
#include <iostream>

#include "common/logging.h"
#include "common/rng.h"
#include "workloads/inputs.h"

namespace sparseap {

const AppTopology &
LoadedApp::topology() const
{
    if (!topo_)
        topo_ = std::make_unique<AppTopology>(workload.app);
    return *topo_;
}

ExperimentRunner::ExperimentRunner() : opts_(globalOptions()) {}

const LoadedApp &
ExperimentRunner::load(const std::string &abbr)
{
    auto it = cache_.find(abbr);
    if (it != cache_.end())
        return it->second;

    LoadedApp loaded;
    loaded.entry = findApp(abbr);
    loaded.workload =
        generateWorkload(abbr, opts_.seed, opts_.scalePercent);
    Rng input_rng(opts_.seed ^ 0x9e3779b97f4a7c15ull ^
                  std::hash<std::string>{}(abbr));
    size_t bytes = opts_.inputBytes;
    if (loaded.workload.inputBytesCap > 0)
        bytes = std::min(bytes, loaded.workload.inputBytesCap);
    loaded.input =
        synthesizeInput(loaded.workload.input, bytes, input_rng);
    inform("generated ", abbr, ": ", loaded.workload.app.totalStates(),
           " states, ", loaded.workload.app.nfaCount(), " NFAs");
    return cache_.emplace(abbr, std::move(loaded)).first->second;
}

void
ExperimentRunner::unload(const std::string &abbr)
{
    cache_.erase(abbr);
}

std::vector<std::string>
ExperimentRunner::selectApps(const std::string &groups) const
{
    std::vector<std::string> out;
    for (const auto &entry : appCatalog()) {
        if (groups.find(entry.group) == std::string::npos)
            continue;
        if (!opts_.apps.empty() &&
            std::find(opts_.apps.begin(), opts_.apps.end(), entry.abbr) ==
                opts_.apps.end()) {
            continue;
        }
        out.push_back(entry.abbr);
    }
    return out;
}

void
ExperimentRunner::printTable(const Table &table) const
{
    if (opts_.csv)
        table.printCsv(std::cout);
    else
        table.print(std::cout);
    std::cout.flush();
}

void
printSection(const std::string &title)
{
    std::cout << "\n### " << title << "\n\n";
}

SpapRunStats
runAppConfig(const LoadedApp &app, double profile_fraction,
             size_t capacity, const PartitionOptions &partition,
             bool fill_optimization)
{
    ExecutionOptions opts = app.execOptions(profile_fraction, capacity);
    opts.partition = partition;
    opts.fillOptimization = fill_optimization;
    return runBaseApSpap(app.topology(), opts, app.input);
}

HotColdProfile
oracleProfile(const LoadedApp &app)
{
    const FlatAutomaton fa(app.workload.app);
    return profileApplication(fa, app.input);
}

} // namespace sparseap
