/**
 * @file
 * Shared experiment driver for the benchmark harness.
 *
 * Loads (generates) the 26 applications on demand, synthesizes their
 * inputs, caches topologies, and provides the group filters and printing
 * conveniences every paper-figure bench uses. All knobs come from the
 * environment (see common/options.h).
 */

#ifndef SPARSEAP_CORE_EXPERIMENT_H
#define SPARSEAP_CORE_EXPERIMENT_H

#include <chrono>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/options.h"
#include "common/table.h"
#include "partition/app_topology.h"
#include "spap/executor.h"
#include "workloads/registry.h"

namespace sparseap {

/** One generated application with its input and (lazy) topology. */
struct LoadedApp
{
    CatalogEntry entry;
    Workload workload;
    std::vector<uint8_t> input;

    /** Topology (computed on first use, cached). */
    const AppTopology &topology() const;

    /** Default ExecutionOptions for this app at @p profile_fraction. */
    ExecutionOptions
    execOptions(double profile_fraction, size_t capacity) const
    {
        ExecutionOptions o;
        o.ap.capacity = capacity;
        o.profileFraction = profile_fraction;
        o.fullInputAsTest = workload.fullInputAsTest;
        return o;
    }

  private:
    mutable std::unique_ptr<AppTopology> topo_;
};

/** Caching loader/driver shared by bench binaries. */
class ExperimentRunner
{
  public:
    /** Uses globalOptions() for seed, scale, input size and app filter. */
    ExperimentRunner();

    /** Generate (or fetch cached) one application. */
    const LoadedApp &load(const std::string &abbr);

    /** Drop a cached application to bound memory use. */
    void unload(const std::string &abbr);

    /**
     * Abbreviations to run: the catalog order filtered to @p groups
     * (subset of "HML") and, if SPARSEAP_APPS is set, to that list.
     */
    std::vector<std::string> selectApps(const std::string &groups) const;

    /**
     * Print @p table as ASCII or CSV per SPARSEAP_CSV. When
     * SPARSEAP_JSON=<path> is set, also append the table as one JSON
     * line (columns, per-app rows, engine mode, jobs, wall time) to that
     * file, so perf trajectories are machine-trackable across runs.
     */
    void printTable(const Table &table) const;

    const Options &options() const { return opts_; }

  private:
    void appendJson(const Table &table) const;

    Options opts_;
    std::map<std::string, LoadedApp> cache_;
    std::chrono::steady_clock::time_point start_;
    mutable size_t tables_printed_ = 0;
};

/** Print a "### <title>" section header for bench output. */
void printSection(const std::string &title);

/**
 * Run one BaseAP/SpAP configuration of a loaded app: profile fraction,
 * capacity, fill/dedupe options from @p opts overrides.
 */
SpapRunStats runAppConfig(const LoadedApp &app, double profile_fraction,
                          size_t capacity,
                          const PartitionOptions &partition = {},
                          bool fill_optimization = true);

/**
 * Oracle hot/cold profile of the whole input (used by Figs. 1, 5, 8).
 */
HotColdProfile oracleProfile(const LoadedApp &app);

} // namespace sparseap

#endif // SPARSEAP_CORE_EXPERIMENT_H
