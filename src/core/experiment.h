/**
 * @file
 * Shared experiment driver for the benchmark harness.
 *
 * Loads (generates) the 26 applications on demand, synthesizes their
 * inputs, caches per-app derived artifacts (topology, flat automaton,
 * hot/cold profiles, reference reports), and provides the group filters,
 * the parallel per-app sweep driver and the printing conveniences every
 * paper-figure bench uses. All knobs come from the environment (see
 * common/options.h).
 */

#ifndef SPARSEAP_CORE_EXPERIMENT_H
#define SPARSEAP_CORE_EXPERIMENT_H

#include <chrono>
#include <fstream>
#include <functional>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/options.h"
#include "common/table.h"
#include "partition/app_topology.h"
#include "spap/executor.h"
#include "workloads/registry.h"

namespace sparseap {

namespace telemetry {
struct Snapshot;
}

/**
 * One generated application with its input and lazily-computed, cached
 * derived artifacts. Every cache is per-instance: a sweep gives each app
 * (or each worker) its own LoadedApp, so no locking is needed.
 */
struct LoadedApp
{
    CatalogEntry entry;
    Workload workload;
    std::vector<uint8_t> input;

    /**
     * Content-address base of this app's compiled artifacts in the
     * store cache: a digest of the workload identity (abbr, seed,
     * scale), a structural fingerprint of the generated automaton and a
     * hash of the synthesized input, so generator or input changes miss
     * the cache instead of loading stale artifacts. 0 disables caching
     * for this instance (e.g. hand-built LoadedApps in tests).
     */
    uint64_t cacheKey = 0;

    /** Topology (computed on first use, cached). */
    const AppTopology &topology() const;

    /** Flat automaton of the whole application (cached). The bench
     *  pipeline previously re-flattened the app on every profiling,
     *  baseline and partition call — 4+ times per app per table. When
     *  the artifact cache is enabled the automaton is loaded zero-copy
     *  from the store (and stored on first computation). */
    const FlatAutomaton &flat() const;

    /**
     * Hot/cold profile of the first @p prefix_len input bytes (cached
     * per length). Sweeping several profile fractions over one app hits
     * one profiling run per distinct prefix length instead of one per
     * (fraction, capacity) configuration.
     */
    const HotColdProfile &profile(size_t prefix_len) const;

    /**
     * Precompute the profiles several profile fractions imply, in ONE
     * checkpointed engine pass (hot sets are monotone in the prefix).
     * Subsequent profile() / preparePartition() calls hit the cache.
     */
    void prewarmProfiles(std::span<const double> fractions) const;

    /**
     * Reports of functionally executing the whole input on the full
     * application (cached) — the reference stream equivalence checks and
     * report-collecting baselines compare against, simulated once.
     */
    const ReportList &referenceReports() const;

    /** Default ExecutionOptions for this app at @p profile_fraction. */
    ExecutionOptions
    execOptions(double profile_fraction, size_t capacity) const
    {
        ExecutionOptions o;
        o.ap.capacity = capacity;
        o.profileFraction = profile_fraction;
        o.fullInputAsTest = workload.fullInputAsTest;
        return o;
    }

  private:
    mutable std::unique_ptr<AppTopology> topo_;
    mutable std::unique_ptr<FlatAutomaton> flat_;
    mutable std::map<size_t, HotColdProfile> profiles_;
    mutable std::unique_ptr<ReportList> reference_reports_;
};

/** Caching loader/driver shared by bench binaries. */
class ExperimentRunner
{
  public:
    /** Uses globalOptions() for seed, scale, input size and app filter. */
    ExperimentRunner();

    /** Generate (or fetch cached) one application. */
    const LoadedApp &load(const std::string &abbr);

    /** Drop a cached application to bound memory use. */
    void unload(const std::string &abbr);

    /**
     * Abbreviations to run: the catalog order filtered to @p groups
     * (subset of "HML") and, if SPARSEAP_APPS is set, to that list.
     */
    std::vector<std::string> selectApps(const std::string &groups) const;

    /**
     * Parallel per-app sweep driver: runs @p fn(app, index) for every
     * app of selectApps(groups), fanned out over the thread pool
     * (SPARSEAP_JOBS lanes; @p jobs overrides when nonzero). Each lane
     * generates its own private LoadedApp (the shared cache is
     * untouched), @p fn must write its results into the per-@p index
     * slot of caller-owned vectors, and per-app warn()/inform() output
     * is buffered and replayed in catalog order afterwards — so every
     * byte of output is identical at any thread count.
     */
    void forEachApp(
        const std::string &groups,
        const std::function<void(const LoadedApp &, size_t)> &fn,
        unsigned jobs = 0);

    /**
     * Print @p table as ASCII or CSV per SPARSEAP_CSV. When
     * SPARSEAP_JSON=<path> is set, also append the table as one JSON
     * line (columns, per-app rows, engine mode, jobs, wall time) to that
     * file, so perf trajectories are machine-trackable across runs.
     */
    void printTable(const Table &table) const;

    const Options &options() const { return opts_; }

    /**
     * Append one telemetry record to the SPARSEAP_JSON stream (no-op
     * when unset): @p tag names the scope (app abbreviation, or "*" for
     * a cumulative record) and @p snap holds the counter deltas.
     * forEachApp calls this automatically — per app when the sweep runs
     * on one lane (deltas are exact), one cumulative record otherwise.
     */
    void appendTelemetry(const std::string &tag,
                         const telemetry::Snapshot &snap) const;

  private:
    LoadedApp generate(const std::string &abbr) const;
    void appendJson(const Table &table) const;
    /** @return the SPARSEAP_JSON stream, opening it on first use. */
    std::ofstream *jsonStream() const;

    Options opts_;
    std::map<std::string, LoadedApp> cache_;
    std::chrono::steady_clock::time_point start_;
    mutable size_t tables_printed_ = 0;
    /** JSON Lines stream, opened once on first table (not per table). */
    mutable std::unique_ptr<std::ofstream> json_out_;
    mutable bool json_failed_ = false;
};

/** Print a "### <title>" section header for bench output. */
void printSection(const std::string &title);

/**
 * Run one BaseAP/SpAP configuration of a loaded app: profile fraction,
 * capacity, fill/dedupe options from @p opts overrides. Uses the app's
 * cached profile for the implied prefix length.
 */
SpapRunStats runAppConfig(const LoadedApp &app, double profile_fraction,
                          size_t capacity,
                          const PartitionOptions &partition = {},
                          bool fill_optimization = true);

/**
 * Build the partition for @p app under @p opts, reusing the app's cached
 * flat automaton and profile (profiling runs only on the first call for
 * a given prefix length).
 */
PreparedPartition preparePartition(const LoadedApp &app,
                                   const ExecutionOptions &opts);

/**
 * Oracle hot/cold profile of the whole input (used by Figs. 1, 5, 8);
 * cached inside @p app.
 */
const HotColdProfile &oracleProfile(const LoadedApp &app);

} // namespace sparseap

#endif // SPARSEAP_CORE_EXPERIMENT_H
