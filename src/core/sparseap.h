/**
 * @file
 * Umbrella header: the SparseAP library public API.
 *
 * Typical use (see examples/quickstart.cpp):
 *
 *   #include "core/sparseap.h"
 *
 *   sparseap::Application app = ...;            // build or load NFAs
 *   sparseap::AppTopology topo(app);            // SCC + layering
 *   sparseap::ExecutionOptions opts;            // capacity, profiling
 *   auto stats = sparseap::runBaseApSpap(topo, opts, input);
 *   // stats.speedup, stats.reports, ...
 */

#ifndef SPARSEAP_CORE_SPARSEAP_H
#define SPARSEAP_CORE_SPARSEAP_H

#include "ap/batching.h"
#include "ap/config.h"
#include "ap/timing.h"
#include "common/bitset256.h"
#include "common/logging.h"
#include "common/options.h"
#include "common/rng.h"
#include "common/stats.h"
#include "common/table.h"
#include "core/experiment.h"
#include "graph/scc.h"
#include "graph/topology.h"
#include "nfa/application.h"
#include "nfa/nfa.h"
#include "nfa/optimize.h"
#include "nfa/serialize.h"
#include "nfa/symbol_set.h"
#include "partition/app_topology.h"
#include "partition/fill.h"
#include "partition/hotcold.h"
#include "partition/metrics.h"
#include "partition/partitioner.h"
#include "regex/glushkov.h"
#include "regex/parser.h"
#include "sim/engine.h"
#include "sim/flat_automaton.h"
#include "sim/profiler.h"
#include "sim/report.h"
#include "spap/ap_cpu.h"
#include "spap/executor.h"
#include "spap/spap_engine.h"
#include "store/artifact.h"
#include "store/blob.h"
#include "store/cache.h"
#include "store/format.h"
#include "store/mapped_file.h"
#include "workloads/becchi.h"
#include "workloads/brill.h"
#include "workloads/clamav.h"
#include "workloads/entity_resolution.h"
#include "workloads/fermi.h"
#include "workloads/hamming.h"
#include "workloads/inputs.h"
#include "workloads/levenshtein.h"
#include "workloads/poweren.h"
#include "workloads/protomata.h"
#include "workloads/random_forest.h"
#include "workloads/registry.h"
#include "workloads/snort.h"
#include "workloads/spm.h"
#include "workloads/workload.h"

#endif // SPARSEAP_CORE_SPARSEAP_H
