#include "graph/scc.h"

#include <algorithm>

#include "common/logging.h"

namespace sparseap {

size_t
SccResult::largestSize() const
{
    size_t best = 0;
    for (const auto &m : members)
        best = std::max(best, m.size());
    return best;
}

SccResult
findSccs(const Nfa &nfa)
{
    const size_t n = nfa.size();
    constexpr uint32_t kUnvisited = ~0u;

    SccResult result;
    result.component.assign(n, kUnvisited);

    std::vector<uint32_t> index(n, kUnvisited);
    std::vector<uint32_t> lowlink(n, 0);
    std::vector<bool> on_stack(n, false);
    std::vector<StateId> stack;
    uint32_t next_index = 0;

    // Explicit DFS frame: (state, position in its successor list).
    struct Frame
    {
        StateId v;
        size_t child;
    };
    std::vector<Frame> dfs;

    for (StateId root = 0; root < n; ++root) {
        if (index[root] != kUnvisited)
            continue;
        dfs.push_back({root, 0});
        index[root] = lowlink[root] = next_index++;
        stack.push_back(root);
        on_stack[root] = true;

        while (!dfs.empty()) {
            Frame &fr = dfs.back();
            const auto &succ = nfa.state(fr.v).successors;
            if (fr.child < succ.size()) {
                StateId w = succ[fr.child++];
                if (index[w] == kUnvisited) {
                    index[w] = lowlink[w] = next_index++;
                    stack.push_back(w);
                    on_stack[w] = true;
                    dfs.push_back({w, 0});
                } else if (on_stack[w]) {
                    lowlink[fr.v] = std::min(lowlink[fr.v], index[w]);
                }
                continue;
            }
            // All children done: maybe emit an SCC, then propagate lowlink.
            if (lowlink[fr.v] == index[fr.v]) {
                std::vector<StateId> members;
                while (true) {
                    StateId w = stack.back();
                    stack.pop_back();
                    on_stack[w] = false;
                    result.component[w] = result.count;
                    members.push_back(w);
                    if (w == fr.v)
                        break;
                }
                std::sort(members.begin(), members.end());
                result.members.push_back(std::move(members));
                ++result.count;
            }
            StateId v = fr.v;
            dfs.pop_back();
            if (!dfs.empty()) {
                lowlink[dfs.back().v] =
                    std::min(lowlink[dfs.back().v], lowlink[v]);
            }
        }
    }
    return result;
}

Condensation
condense(const Nfa &nfa, const SccResult &scc)
{
    Condensation c;
    c.adj.resize(scc.count);
    for (StateId u = 0; u < nfa.size(); ++u) {
        uint32_t cu = scc.component[u];
        for (StateId v : nfa.state(u).successors) {
            uint32_t cv = scc.component[v];
            if (cu != cv)
                c.adj[cu].push_back(cv);
        }
    }
    for (auto &a : c.adj) {
        std::sort(a.begin(), a.end());
        a.erase(std::unique(a.begin(), a.end()), a.end());
    }
    return c;
}

} // namespace sparseap
