/**
 * @file
 * Strongly connected components of an NFA's transition graph.
 *
 * NFAs are not always DAGs (self-loops, back edges). Section III-A of the
 * paper condenses each SCC to a single node so a topological order exists;
 * every state in an SCC then shares one topological layer, which is what
 * guarantees that a layer cut never separates an SCC (invariant 3 in
 * DESIGN.md).
 */

#ifndef SPARSEAP_GRAPH_SCC_H
#define SPARSEAP_GRAPH_SCC_H

#include <cstdint>
#include <vector>

#include "nfa/nfa.h"

namespace sparseap {

/** Result of SCC identification over one NFA. */
struct SccResult
{
    /** component[s] = SCC id of state s, in [0, count). */
    std::vector<uint32_t> component;
    /** members[c] = states in SCC c. */
    std::vector<std::vector<StateId>> members;
    /** Number of SCCs. */
    uint32_t count = 0;

    /** Size of the largest SCC (1 for a DAG without self-cycles). */
    size_t largestSize() const;
};

/**
 * Find SCCs with an iterative Tarjan traversal (no recursion, safe for the
 * multi-thousand-layer automata in ClamAV/Snort workloads).
 */
SccResult findSccs(const Nfa &nfa);

/** Condensation DAG: one node per SCC, deduplicated edges. */
struct Condensation
{
    /** adj[c] = sorted unique successor SCCs of SCC c (no self-edges). */
    std::vector<std::vector<uint32_t>> adj;
};

/** Build the condensation DAG from an NFA and its SCC labelling. */
Condensation condense(const Nfa &nfa, const SccResult &scc);

} // namespace sparseap

#endif // SPARSEAP_GRAPH_SCC_H
