#include "graph/topology.h"

#include <algorithm>

#include "common/logging.h"

namespace sparseap {

Topology
analyzeTopology(const Nfa &nfa)
{
    SPARSEAP_ASSERT(nfa.finalized(), "analyzeTopology needs finalized NFA");
    Topology topo;
    topo.scc = findSccs(nfa);
    const Condensation cond = condense(nfa, topo.scc);
    const uint32_t nc = topo.scc.count;

    // Longest-path layering over the condensation DAG via Kahn order.
    std::vector<uint32_t> indegree(nc, 0);
    for (uint32_t c = 0; c < nc; ++c)
        for (uint32_t d : cond.adj[c])
            ++indegree[d];

    std::vector<uint32_t> layer(nc, 1);
    std::vector<uint32_t> ready;
    ready.reserve(nc);
    for (uint32_t c = 0; c < nc; ++c)
        if (indegree[c] == 0)
            ready.push_back(c);

    size_t processed = 0;
    while (processed < ready.size()) {
        uint32_t c = ready[processed++];
        for (uint32_t d : cond.adj[c]) {
            layer[d] = std::max(layer[d], layer[c] + 1);
            if (--indegree[d] == 0)
                ready.push_back(d);
        }
    }
    SPARSEAP_ASSERT(processed == nc,
                    "condensation is not a DAG: processed ", processed,
                    " of ", nc, " components");

    topo.order.resize(nfa.size());
    topo.maxOrder = 1;
    for (StateId s = 0; s < nfa.size(); ++s) {
        topo.order[s] = layer[topo.scc.component[s]];
        topo.maxOrder = std::max(topo.maxOrder, topo.order[s]);
    }
    return topo;
}

DepthBucket
depthBucket(double normalized_depth)
{
    if (normalized_depth < 0.3)
        return DepthBucket::Shallow;
    if (normalized_depth < 0.6)
        return DepthBucket::Medium;
    return DepthBucket::Deep;
}

const char *
depthBucketName(DepthBucket b)
{
    switch (b) {
      case DepthBucket::Shallow:
        return "shallow";
      case DepthBucket::Medium:
        return "medium";
      case DepthBucket::Deep:
        return "deep";
    }
    return "?";
}

} // namespace sparseap
