/**
 * @file
 * Topological layering and normalized depth (Section III-A of the paper).
 *
 * The topological order of a state is the maximum number of matching steps
 * from a starting state to it: starting states (and any SCC with no
 * predecessors) sit in layer 1, a state reachable only through d matches
 * sits in layer d+1. All states of one SCC share a layer. Normalized depth
 * is layer / max-layer within the NFA, in (0, 1].
 */

#ifndef SPARSEAP_GRAPH_TOPOLOGY_H
#define SPARSEAP_GRAPH_TOPOLOGY_H

#include <cstdint>
#include <vector>

#include "graph/scc.h"
#include "nfa/nfa.h"

namespace sparseap {

/** Per-NFA topological analysis. */
struct Topology
{
    /** SCC labelling the layering was computed on. */
    SccResult scc;
    /** order[s] = 1-based topological layer of state s. */
    std::vector<uint32_t> order;
    /** Maximum layer in this NFA (>= 1). */
    uint32_t maxOrder = 0;

    /** normalized depth of state s = order[s] / maxOrder. */
    double
    normalizedDepth(StateId s) const
    {
        return static_cast<double>(order[s]) /
               static_cast<double>(maxOrder);
    }
};

/**
 * Compute SCCs, condensation and longest-path layers for one NFA.
 *
 * The NFA must be finalized. Runs in O(V + E).
 */
Topology analyzeTopology(const Nfa &nfa);

/**
 * Depth buckets used for presentation in Fig. 5: shallow [0, 0.3),
 * medium [0.3, 0.6), deep [0.6, 1].
 */
enum class DepthBucket : uint8_t { Shallow, Medium, Deep };

/** Classify a normalized depth into its Fig. 5 bucket. */
DepthBucket depthBucket(double normalized_depth);

/** @return "shallow", "medium" or "deep". */
const char *depthBucketName(DepthBucket b);

} // namespace sparseap

#endif // SPARSEAP_GRAPH_TOPOLOGY_H
