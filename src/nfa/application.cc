#include "nfa/application.h"

#include <algorithm>

#include "common/logging.h"

namespace sparseap {

const char *
resourceGroupName(ResourceGroup g)
{
    switch (g) {
      case ResourceGroup::High:
        return "H";
      case ResourceGroup::Medium:
        return "M";
      case ResourceGroup::Low:
        return "L";
    }
    return "?";
}

uint32_t
Application::addNfa(Nfa nfa)
{
    SPARSEAP_ASSERT(nfa.finalized(),
                    "addNfa requires a finalized NFA (app '", name_, "')");
    nfas_.push_back(std::move(nfa));
    offsets_.push_back(static_cast<GlobalStateId>(total_states_));
    total_states_ += nfas_.back().size();
    return static_cast<uint32_t>(nfas_.size() - 1);
}

void
Application::reindex()
{
    offsets_.clear();
    total_states_ = 0;
    for (const auto &n : nfas_) {
        offsets_.push_back(static_cast<GlobalStateId>(total_states_));
        total_states_ += n.size();
    }
}

size_t
Application::reportingStates() const
{
    size_t n = 0;
    for (const auto &nfa : nfas_)
        n += nfa.reportingCount();
    return n;
}

GlobalStateRef
Application::resolve(GlobalStateId id) const
{
    SPARSEAP_ASSERT(id < total_states_, "global id ", id, " out of range ",
                    total_states_);
    // offsets_ is sorted; find the last offset <= id.
    auto it = std::upper_bound(offsets_.begin(), offsets_.end(), id);
    uint32_t nfa_idx = static_cast<uint32_t>(it - offsets_.begin()) - 1;
    return {nfa_idx, id - offsets_[nfa_idx]};
}

void
Application::setNames(std::string name, std::string abbr)
{
    name_ = std::move(name);
    abbr_ = std::move(abbr);
}

void
Application::classifyGroup(size_t half_core_capacity, size_t chip_capacity)
{
    if (total_states_ > chip_capacity)
        group_ = ResourceGroup::High;
    else if (total_states_ > half_core_capacity)
        group_ = ResourceGroup::Medium;
    else
        group_ = ResourceGroup::Low;
}

bool
Application::startOfDataOnly() const
{
    bool any = false;
    for (const auto &nfa : nfas_) {
        for (StateId s : nfa.startStates()) {
            any = true;
            if (nfa.state(s).start != StartKind::StartOfData)
                return false;
        }
    }
    return any;
}

} // namespace sparseap
