/**
 * @file
 * An application is a collection of NFAs (one per pattern/rule) executed
 * against the same input stream — the unit the Automata Processor is
 * configured with (Table II of the paper lists 26 such applications).
 */

#ifndef SPARSEAP_NFA_APPLICATION_H
#define SPARSEAP_NFA_APPLICATION_H

#include <cstdint>
#include <string>
#include <vector>

#include "nfa/nfa.h"

namespace sparseap {

/** Application-wide dense state id across all NFAs. */
using GlobalStateId = uint32_t;

/** Locates one state: which NFA, which state within it. */
struct GlobalStateRef
{
    uint32_t nfa;
    StateId state;

    bool
    operator==(const GlobalStateRef &o) const
    {
        return nfa == o.nfa && state == o.state;
    }
};

/** Resource-requirement group from the paper's Table II. */
enum class ResourceGroup : uint8_t {
    High,   ///< more states than a full AP chip (49K)
    Medium, ///< more states than an AP half-core (24K)
    Low,    ///< fits in a half-core
};

/** @return "H", "M" or "L". */
const char *resourceGroupName(ResourceGroup g);

/** A named collection of NFAs plus global state numbering. */
class Application
{
  public:
    Application() = default;
    Application(std::string name, std::string abbr)
        : name_(std::move(name)), abbr_(std::move(abbr)) {}

    /** Append a finalized NFA; @return its index. */
    uint32_t addNfa(Nfa nfa);

    /** Recompute global-id offsets; called automatically by addNfa. */
    void reindex();

    const std::vector<Nfa> &nfas() const { return nfas_; }
    std::vector<Nfa> &nfas() { return nfas_; }
    const Nfa &nfa(uint32_t i) const { return nfas_[i]; }

    size_t nfaCount() const { return nfas_.size(); }

    /** Total states across all NFAs. */
    size_t totalStates() const { return total_states_; }

    /** Total reporting states across all NFAs. */
    size_t reportingStates() const;

    /** Map (nfa, state) to the application-wide dense id. */
    GlobalStateId
    globalId(uint32_t nfa_idx, StateId state) const
    {
        return offsets_[nfa_idx] + state;
    }

    /** Map an application-wide dense id back to (nfa, state). */
    GlobalStateRef resolve(GlobalStateId id) const;

    /** First global id of NFA @p nfa_idx. */
    GlobalStateId nfaOffset(uint32_t nfa_idx) const
    {
        return offsets_[nfa_idx];
    }

    const std::string &name() const { return name_; }
    const std::string &abbr() const { return abbr_; }
    void setNames(std::string name, std::string abbr);

    ResourceGroup group() const { return group_; }
    void setGroup(ResourceGroup g) { group_ = g; }

    /**
     * Classify into H/M/L from the state count, matching Table II
     * (H > 49K states, M > 24K, else L).
     */
    void classifyGroup(size_t half_core_capacity, size_t chip_capacity);

    /**
     * True iff every start state is StartOfData (Fermi, SPM): profiling on
     * an input prefix is then representative only of position 0, so the
     * paper runs the whole input for these.
     */
    bool startOfDataOnly() const;

  private:
    std::string name_;
    std::string abbr_;
    std::vector<Nfa> nfas_;
    std::vector<GlobalStateId> offsets_;
    size_t total_states_ = 0;
    ResourceGroup group_ = ResourceGroup::Low;
};

} // namespace sparseap

#endif // SPARSEAP_NFA_APPLICATION_H
