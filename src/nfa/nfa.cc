#include "nfa/nfa.h"

#include <algorithm>

#include "common/logging.h"

namespace sparseap {

StateId
Nfa::addState(SymbolSet symbols, StartKind start, bool reporting)
{
    SPARSEAP_ASSERT(!finalized_, "addState on finalized NFA '", name_, "'");
    State s;
    s.symbols = symbols;
    s.start = start;
    s.reporting = reporting;
    states_.push_back(std::move(s));
    return static_cast<StateId>(states_.size() - 1);
}

void
Nfa::addEdge(StateId from, StateId to)
{
    SPARSEAP_ASSERT(!finalized_, "addEdge on finalized NFA '", name_, "'");
    SPARSEAP_ASSERT(from < states_.size() && to < states_.size(),
                    "edge (", from, ", ", to, ") out of range in '", name_,
                    "' of size ", states_.size());
    states_[from].successors.push_back(to);
}

void
Nfa::finalize(bool require_start)
{
    SPARSEAP_ASSERT(!states_.empty(), "finalize on empty NFA '", name_, "'");
    starts_.clear();
    for (StateId id = 0; id < states_.size(); ++id) {
        auto &succ = states_[id].successors;
        std::sort(succ.begin(), succ.end());
        succ.erase(std::unique(succ.begin(), succ.end()), succ.end());
        if (states_[id].start != StartKind::None)
            starts_.push_back(id);
        if (states_[id].symbols.empty()) {
            warn("NFA '", name_, "' state ", id,
                 " has an empty symbol-set; it can never activate");
        }
    }
    if (require_start && starts_.empty())
        fatal("NFA '", name_, "' has no start state");
    finalized_ = true;
}

size_t
Nfa::reportingCount() const
{
    size_t n = 0;
    for (const auto &s : states_)
        n += s.reporting ? 1 : 0;
    return n;
}

std::vector<std::vector<StateId>>
Nfa::predecessors() const
{
    std::vector<std::vector<StateId>> pred(states_.size());
    for (StateId u = 0; u < states_.size(); ++u)
        for (StateId v : states_[u].successors)
            pred[v].push_back(u);
    return pred;
}

} // namespace sparseap
