/**
 * @file
 * Homogeneous NFA model.
 *
 * In a homogeneous NFA every incoming transition to a state accepts the same
 * symbol-set, so the symbol-set lives on the state, not the edge — exactly
 * the STE model of the Automata Processor. A state is:
 *
 *  - a *start* state (enabled always, or only at input position 0), and/or
 *  - a *reporting* state (emits a report when activated),
 *
 * and carries a set of successor states that become enabled in the cycle
 * after it activates.
 */

#ifndef SPARSEAP_NFA_NFA_H
#define SPARSEAP_NFA_NFA_H

#include <cstdint>
#include <string>
#include <vector>

#include "nfa/symbol_set.h"

namespace sparseap {

/** Index of a state within one Nfa. */
using StateId = uint32_t;

/** Sentinel for "no state". */
constexpr StateId kInvalidState = ~0u;

/** How a state starts: never, on every position, or at position 0 only. */
enum class StartKind : uint8_t {
    None,        ///< enabled only by a predecessor's activation
    AllInput,    ///< always enabled (Kleene-star entry; ANML "all-input")
    StartOfData, ///< enabled only before the first symbol (ANML %s anchors)
};

/** One homogeneous NFA state (the software mirror of one STE). */
struct State
{
    /** Bytes this state accepts. */
    SymbolSet symbols;
    /** Successor state ids, sorted and unique. */
    std::vector<StateId> successors;
    /** Start behaviour. */
    StartKind start = StartKind::None;
    /** True iff activation of this state emits a report. */
    bool reporting = false;
};

/**
 * A single homogeneous NFA: a bag of states plus edges.
 *
 * Build with addState()/addEdge(), then call finalize() which sorts and
 * dedups adjacency and checks invariants. Most library passes require a
 * finalized NFA.
 */
class Nfa
{
  public:
    Nfa() = default;
    explicit Nfa(std::string nfa_name) : name_(std::move(nfa_name)) {}

    /**
     * Append a state.
     * @return its id (dense, starting at 0)
     */
    StateId addState(SymbolSet symbols, StartKind start = StartKind::None,
                     bool reporting = false);

    /** Add the edge @p from -> @p to. Duplicate edges are merged. */
    void addEdge(StateId from, StateId to);

    /**
     * Sort/dedup adjacency and validate; must be called before analysis.
     *
     * @param require_start when true (the default) an NFA without a start
     * state is a fatal error. Predicted-cold fragments legitimately have
     * no start states — they are driven purely by SpAP enable events — and
     * pass false.
     */
    void finalize(bool require_start = true);

    /** @return true once finalize() has run. */
    bool finalized() const { return finalized_; }

    /** Number of states. */
    size_t size() const { return states_.size(); }

    const State &state(StateId id) const { return states_[id]; }
    State &state(StateId id) { return states_[id]; }

    const std::vector<State> &states() const { return states_; }

    const std::string &name() const { return name_; }
    void setName(std::string n) { name_ = std::move(n); }

    /** Ids of start states (either kind); valid after finalize(). */
    const std::vector<StateId> &startStates() const { return starts_; }

    /** Count of reporting states. */
    size_t reportingCount() const;

    /**
     * Build the predecessor lists (reverse adjacency).
     * @return pred[v] = sorted list of u with edge u -> v
     */
    std::vector<std::vector<StateId>> predecessors() const;

  private:
    std::string name_;
    std::vector<State> states_;
    std::vector<StateId> starts_;
    bool finalized_ = false;
};

} // namespace sparseap

#endif // SPARSEAP_NFA_NFA_H
