#include "nfa/optimize.h"

#include <algorithm>
#include <map>
#include <tuple>

#include "common/logging.h"

namespace sparseap {
namespace {

/**
 * One merging round: group non-reporting states by (symbol-set, start
 * kind, predecessor set) and collapse each group to its lowest-id
 * member. @return true if anything merged; @p state_map is updated so
 * old ids always point at current ids.
 */
bool
mergeRound(Nfa &nfa, std::vector<StateId> &state_map)
{
    const auto preds = nfa.predecessors();

    // Group key: hash-free exact comparison via an ordered map.
    using Key = std::tuple<std::array<uint64_t, 4>, StartKind,
                           std::vector<StateId>>;
    std::map<Key, StateId> representative;
    std::vector<StateId> merge_into(nfa.size(), kInvalidState);
    bool merged_any = false;

    static const std::vector<StateId> kNoPreds;
    for (StateId s = 0; s < nfa.size(); ++s) {
        const State &st = nfa.state(s);
        if (st.reporting)
            continue; // reporting identity must be preserved
        // Always-enabled starts are enabled regardless of predecessors,
        // so their predecessor sets are irrelevant to the merge.
        const std::vector<StateId> &pred_key =
            st.start == StartKind::AllInput ? kNoPreds : preds[s];
        Key key{st.symbols.words, st.start, pred_key};
        auto [it, inserted] = representative.try_emplace(key, s);
        if (!inserted) {
            merge_into[s] = it->second;
            merged_any = true;
        }
    }
    if (!merged_any)
        return false;

    // Rebuild with merged states dropped and edges redirected.
    std::vector<StateId> new_id(nfa.size(), kInvalidState);
    Nfa rebuilt(nfa.name());
    for (StateId s = 0; s < nfa.size(); ++s) {
        if (merge_into[s] != kInvalidState)
            continue;
        const State &st = nfa.state(s);
        new_id[s] = rebuilt.addState(st.symbols, st.start, st.reporting);
    }
    for (StateId s = 0; s < nfa.size(); ++s)
        if (merge_into[s] != kInvalidState)
            new_id[s] = new_id[merge_into[s]];

    // Every edge is redirected through the id map — including the
    // outgoing edges of merged-away states, which now originate from
    // their representative (finalize dedups the duplicates).
    for (StateId s = 0; s < nfa.size(); ++s) {
        for (StateId t : nfa.state(s).successors)
            rebuilt.addEdge(new_id[s], new_id[t]);
    }
    rebuilt.finalize(/*require_start=*/!nfa.startStates().empty());

    for (StateId old = 0; old < state_map.size(); ++old)
        state_map[old] = new_id[state_map[old]];
    nfa = std::move(rebuilt);
    return true;
}

} // namespace

OptimizeStats
mergeCommonPrefixes(Nfa &nfa, std::vector<StateId> *remap)
{
    SPARSEAP_ASSERT(nfa.finalized(),
                    "mergeCommonPrefixes needs a finalized NFA");
    OptimizeStats stats;
    stats.statesBefore = nfa.size();

    std::vector<StateId> state_map(nfa.size());
    for (StateId s = 0; s < nfa.size(); ++s)
        state_map[s] = s;

    // Merging changes predecessor sets, enabling further merges: iterate
    // to a fixpoint (bounded by the state count).
    while (mergeRound(nfa, state_map)) {
    }

    stats.statesAfter = nfa.size();
    if (remap)
        *remap = std::move(state_map);
    return stats;
}

Nfa
flattenApplication(const Application &app)
{
    Nfa flat(app.name() + "_flat");
    for (uint32_t u = 0; u < app.nfaCount(); ++u) {
        const Nfa &nfa = app.nfa(u);
        for (StateId s = 0; s < nfa.size(); ++s) {
            const State &st = nfa.state(s);
            flat.addState(st.symbols, st.start, st.reporting);
        }
    }
    for (uint32_t u = 0; u < app.nfaCount(); ++u) {
        const Nfa &nfa = app.nfa(u);
        const GlobalStateId base = app.nfaOffset(u);
        for (StateId s = 0; s < nfa.size(); ++s)
            for (StateId t : nfa.state(s).successors)
                flat.addEdge(base + s, base + t);
    }
    flat.finalize();
    return flat;
}

OptimizeStats
measurePrefixMerging(const Application &app)
{
    Nfa flat = flattenApplication(app);
    return mergeCommonPrefixes(flat);
}

} // namespace sparseap
