/**
 * @file
 * Automata optimization passes.
 *
 * Common-prefix merging (as in VASim's optimizer): two states are
 * indistinguishable — and can share one STE — when they have the same
 * symbol-set, start kind and predecessor set, because they are then
 * enabled on exactly the same cycles. Rule sets compiled pattern-by-
 * pattern are full of such duplicates (every rule starting with "GET "
 * repeats those four STEs). Reporting states are never merged: distinct
 * reporting states signal distinct rules.
 *
 * The pass preserves the report stream exactly (positions and reporting
 * state identity, modulo the returned id remapping).
 */

#ifndef SPARSEAP_NFA_OPTIMIZE_H
#define SPARSEAP_NFA_OPTIMIZE_H

#include <vector>

#include "nfa/application.h"

namespace sparseap {

/** Result of one optimization run. */
struct OptimizeStats
{
    size_t statesBefore = 0;
    size_t statesAfter = 0;

    double
    reduction() const
    {
        return statesBefore == 0
                   ? 0.0
                   : 1.0 - static_cast<double>(statesAfter) /
                               static_cast<double>(statesBefore);
    }
};

/**
 * Merge common prefixes within one NFA, in place, to a fixpoint.
 *
 * @param nfa a finalized NFA; it is rebuilt (and re-finalized)
 * @param remap optional out-parameter: old state id -> new state id
 */
OptimizeStats mergeCommonPrefixes(Nfa &nfa,
                                  std::vector<StateId> *remap = nullptr);

/**
 * Flatten an application into one NFA (states and edges concatenated,
 * start/reporting flags preserved). Execution semantics are unchanged;
 * this exposes the cross-rule prefix sharing that per-rule compilation
 * hides from mergeCommonPrefixes.
 */
Nfa flattenApplication(const Application &app);

/**
 * Measure the achievable cross-rule state reduction for an application:
 * flatten, merge, report. The application itself is not modified.
 */
OptimizeStats measurePrefixMerging(const Application &app);

} // namespace sparseap

#endif // SPARSEAP_NFA_OPTIMIZE_H
