#include "nfa/serialize.h"

#include <istream>
#include <ostream>
#include <sstream>

#include "common/logging.h"

namespace sparseap {
namespace {

const char *
startKindName(StartKind k)
{
    switch (k) {
      case StartKind::None:
        return "none";
      case StartKind::AllInput:
        return "all";
      case StartKind::StartOfData:
        return "sod";
    }
    return "?";
}

StartKind
parseStartKind(const std::string &s)
{
    if (s == "none")
        return StartKind::None;
    if (s == "all")
        return StartKind::AllInput;
    if (s == "sod")
        return StartKind::StartOfData;
    fatal("unknown start kind '", s, "'");
}

} // namespace

void
writeNfa(std::ostream &os, const Nfa &nfa)
{
    os << "nfa " << (nfa.name().empty() ? "unnamed" : nfa.name()) << '\n';
    for (StateId id = 0; id < nfa.size(); ++id) {
        const State &s = nfa.state(id);
        os << "state " << id << ' ' << startKindName(s.start) << ' '
           << (s.reporting ? 1 : 0) << ' ' << formatSymbolSet(s.symbols)
           << '\n';
    }
    for (StateId id = 0; id < nfa.size(); ++id)
        for (StateId to : nfa.state(id).successors)
            os << "edge " << id << ' ' << to << '\n';
    os << "end\n";
}

void
writeApplication(std::ostream &os, const Application &app)
{
    os << "app " << (app.name().empty() ? "unnamed" : app.name()) << ' '
       << (app.abbr().empty() ? "NA" : app.abbr()) << '\n';
    for (const auto &nfa : app.nfas())
        writeNfa(os, nfa);
}

Nfa
readNfa(std::istream &is)
{
    std::string line;
    Nfa nfa;
    bool have_header = false;
    size_t declared = 0;
    while (std::getline(is, line)) {
        if (line.empty() || line[0] == '#')
            continue;
        std::istringstream ls(line);
        std::string kw;
        ls >> kw;
        if (kw == "nfa") {
            if (have_header)
                fatal("nested 'nfa' line: ", line);
            std::string name;
            ls >> name;
            nfa.setName(name);
            have_header = true;
        } else if (kw == "state") {
            if (!have_header)
                fatal("'state' before 'nfa' header");
            size_t id;
            std::string start_s;
            int report;
            std::string sym;
            ls >> id >> start_s >> report;
            // The symbol-set expression is the rest of the line (it may
            // contain spaces inside a bracket class).
            std::getline(ls, sym);
            size_t first = sym.find_first_not_of(' ');
            if (first == std::string::npos)
                fatal("missing symbol-set in line: ", line);
            sym = sym.substr(first);
            if (id != declared)
                fatal("non-dense state id ", id, ", expected ", declared);
            nfa.addState(parseSymbolSet(sym), parseStartKind(start_s),
                         report != 0);
            ++declared;
        } else if (kw == "edge") {
            StateId from, to;
            ls >> from >> to;
            nfa.addEdge(from, to);
        } else if (kw == "end") {
            nfa.finalize();
            return nfa;
        } else {
            fatal("unknown keyword '", kw, "' in NFA description");
        }
    }
    fatal("unexpected end of stream inside NFA description");
}

Application
readApplication(std::istream &is)
{
    std::string line;
    Application app;
    bool have_header = false;
    while (true) {
        std::streampos pos = is.tellg();
        if (!std::getline(is, line))
            break;
        if (line.empty() || line[0] == '#')
            continue;
        std::istringstream ls(line);
        std::string kw;
        ls >> kw;
        if (kw == "app") {
            if (have_header)
                fatal("multiple 'app' headers in one stream");
            std::string name, abbr;
            ls >> name >> abbr;
            app.setNames(name, abbr);
            have_header = true;
        } else if (kw == "nfa") {
            // Rewind so readNfa sees the header line.
            is.seekg(pos);
            app.addNfa(readNfa(is));
        } else {
            fatal("unknown keyword '", kw, "' in application description");
        }
    }
    if (!have_header)
        fatal("missing 'app' header");
    return app;
}

std::string
toString(const Application &app)
{
    std::ostringstream os;
    writeApplication(os, app);
    return os.str();
}

Application
applicationFromString(const std::string &text)
{
    std::istringstream is(text);
    return readApplication(is);
}

} // namespace sparseap
