/**
 * @file
 * Text serialization for NFAs and applications.
 *
 * The format is a line-oriented ANML-like description, chosen so automata
 * can be diffed, versioned and hand-edited:
 *
 *   app <name> <abbr>
 *   nfa <name>
 *   state <id> <none|all|sod> <report:0|1> <symbol-set expr>
 *   edge <from> <to>
 *   end
 *   ...
 *
 * States must be declared before edges referencing them; ids are dense and
 * in declaration order.
 */

#ifndef SPARSEAP_NFA_SERIALIZE_H
#define SPARSEAP_NFA_SERIALIZE_H

#include <iosfwd>
#include <string>

#include "nfa/application.h"

namespace sparseap {

/** Write one NFA in the text format (without an `app` header). */
void writeNfa(std::ostream &os, const Nfa &nfa);

/** Write a whole application. */
void writeApplication(std::ostream &os, const Application &app);

/**
 * Parse one NFA from the stream; expects the cursor at a `nfa` line.
 * Calls fatal() on malformed input.
 */
Nfa readNfa(std::istream &is);

/** Parse a whole application (an `app` header and its NFAs). */
Application readApplication(std::istream &is);

/** Round-trip convenience: serialize to a string. */
std::string toString(const Application &app);

/** Round-trip convenience: parse from a string. */
Application applicationFromString(const std::string &text);

} // namespace sparseap

#endif // SPARSEAP_NFA_SERIALIZE_H
