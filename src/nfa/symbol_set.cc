#include "nfa/symbol_set.h"

#include <cctype>

#include "common/logging.h"

namespace sparseap {
namespace {

/** Decode one hex digit or die. */
int
hexDigit(char c, const std::string &expr)
{
    if (c >= '0' && c <= '9')
        return c - '0';
    if (c >= 'a' && c <= 'f')
        return c - 'a' + 10;
    if (c >= 'A' && c <= 'F')
        return c - 'A' + 10;
    fatal("bad hex digit '", c, "' in symbol-set '", expr, "'");
}

/**
 * Consume one (possibly escaped) character starting at expr[i]; advances i
 * past it. @return the decoded byte.
 */
uint8_t
consumeChar(const std::string &expr, size_t &i)
{
    SPARSEAP_ASSERT(i < expr.size(), "consumeChar past end of '", expr, "'");
    char c = expr[i++];
    if (c != '\\')
        return static_cast<uint8_t>(c);
    if (i >= expr.size())
        fatal("dangling escape in symbol-set '", expr, "'");
    char e = expr[i++];
    switch (e) {
      case 'n':
        return '\n';
      case 't':
        return '\t';
      case 'r':
        return '\r';
      case '0':
        return '\0';
      case 'x': {
        if (i + 1 >= expr.size())
            fatal("truncated \\x escape in symbol-set '", expr, "'");
        int hi = hexDigit(expr[i], expr);
        int lo = hexDigit(expr[i + 1], expr);
        i += 2;
        return static_cast<uint8_t>((hi << 4) | lo);
      }
      default:
        // Any other escaped character stands for itself ("\\[", "\\]"...).
        return static_cast<uint8_t>(e);
    }
}

} // namespace

SymbolSet
parseSymbolSet(const std::string &expr)
{
    if (expr.empty())
        fatal("empty symbol-set expression");

    if (expr == ".")
        return SymbolSet::all();

    if (expr[0] != '[') {
        size_t i = 0;
        uint8_t b = consumeChar(expr, i);
        if (i != expr.size())
            fatal("trailing characters in symbol-set '", expr, "'");
        return SymbolSet::single(b);
    }

    if (expr.back() != ']')
        fatal("unterminated bracket class '", expr, "'");

    SymbolSet set;
    size_t i = 1;
    const size_t end = expr.size() - 1;
    bool negate = false;
    if (i < end && expr[i] == '^') {
        negate = true;
        ++i;
    }
    if (i >= end)
        fatal("empty bracket class '", expr, "'");
    while (i < end) {
        uint8_t lo = consumeChar(expr, i);
        if (i + 1 < end && expr[i] == '-') {
            size_t j = i + 1;
            uint8_t hi = consumeChar(expr, j);
            if (hi < lo)
                fatal("inverted range in symbol-set '", expr, "'");
            set |= SymbolSet::range(lo, hi);
            i = j;
        } else {
            set.set(lo);
        }
    }
    return negate ? ~set : set;
}

namespace {

/** Render one byte for inclusion inside a bracket class. */
std::string
renderByte(uint8_t b)
{
    if (b == '\\' || b == ']' || b == '[' || b == '-' || b == '^')
        return std::string("\\") + static_cast<char>(b);
    if (std::isprint(b))
        return std::string(1, static_cast<char>(b));
    static const char *hex = "0123456789abcdef";
    std::string s = "\\x";
    s += hex[b >> 4];
    s += hex[b & 15];
    return s;
}

} // namespace

std::string
formatSymbolSet(const SymbolSet &set)
{
    if (set == SymbolSet::all())
        return ".";
    const int n = set.count();
    if (n == 1) {
        for (unsigned b = 0; b < 256; ++b) {
            if (set.test(static_cast<uint8_t>(b))) {
                uint8_t byte = static_cast<uint8_t>(b);
                // ' ' must not be emitted bare: the serializer's line
                // format would swallow it.
                if (std::isprint(byte) && byte != '[' && byte != ']' &&
                    byte != '\\' && byte != '.' && byte != ' ') {
                    return std::string(1, static_cast<char>(byte));
                }
                return "[" + renderByte(byte) + "]";
            }
        }
    }

    std::string out = "[";
    unsigned b = 0;
    while (b < 256) {
        if (!set.test(static_cast<uint8_t>(b))) {
            ++b;
            continue;
        }
        unsigned start = b;
        while (b + 1 < 256 && set.test(static_cast<uint8_t>(b + 1)))
            ++b;
        out += renderByte(static_cast<uint8_t>(start));
        if (b > start + 1)
            out += "-";
        if (b > start)
            out += renderByte(static_cast<uint8_t>(b));
        ++b;
    }
    out += "]";
    return out;
}

} // namespace sparseap
