/**
 * @file
 * Symbol-set construction helpers on top of Bitset256.
 *
 * A homogeneous NFA state carries one symbol-set: the set of input bytes it
 * accepts (the contents of its STE column on the AP). This header provides
 * the character-class notation used by the regex compiler and workload
 * generators: "a", "[a-z0-9]", "[^\\x00]", ".", etc.
 */

#ifndef SPARSEAP_NFA_SYMBOL_SET_H
#define SPARSEAP_NFA_SYMBOL_SET_H

#include <string>

#include "common/bitset256.h"

namespace sparseap {

/** Alias: a symbol-set is a 256-bit set over the byte alphabet. */
using SymbolSet = Bitset256;

/**
 * Parse a character-class expression into a symbol-set.
 *
 * Accepted forms:
 *  - a single literal character: "a"
 *  - an escape: "\\n", "\\t", "\\r", "\\\\", "\\xHH"
 *  - "." meaning every byte
 *  - a bracket class: "[abc]", "[a-z]", "[^0-9]", with escapes inside
 *
 * @param expr the class expression
 * @return the parsed set
 *
 * Calls fatal() on malformed input.
 */
SymbolSet parseSymbolSet(const std::string &expr);

/**
 * Render a symbol-set back to a canonical bracket expression (or a single
 * character / "." when that is shorter). Inverse of parseSymbolSet up to
 * canonicalization.
 */
std::string formatSymbolSet(const SymbolSet &set);

} // namespace sparseap

#endif // SPARSEAP_NFA_SYMBOL_SET_H
