#include "partition/app_topology.h"

#include <algorithm>

namespace sparseap {

AppTopology::AppTopology(const Application &app) : app_(&app)
{
    per_nfa_.reserve(app.nfaCount());
    for (const auto &nfa : app.nfas()) {
        per_nfa_.push_back(analyzeTopology(nfa));
        max_order_ = std::max(max_order_, per_nfa_.back().maxOrder);
        largest_scc_ =
            std::max(largest_scc_, per_nfa_.back().scc.largestSize());
    }
}

} // namespace sparseap
