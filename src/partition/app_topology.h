/**
 * @file
 * Application-wide topological analysis: the per-NFA Topology results plus
 * global-id helpers (Section III-A applied to a whole application).
 */

#ifndef SPARSEAP_PARTITION_APP_TOPOLOGY_H
#define SPARSEAP_PARTITION_APP_TOPOLOGY_H

#include <vector>

#include "graph/topology.h"
#include "nfa/application.h"

namespace sparseap {

/** Topology of every NFA in an application. */
class AppTopology
{
  public:
    explicit AppTopology(const Application &app);

    const Topology &nfa(uint32_t nfa_idx) const { return per_nfa_[nfa_idx]; }

    /** Topological layer of a state addressed by global id. */
    uint32_t
    order(GlobalStateId gid) const
    {
        const GlobalStateRef r = app_->resolve(gid);
        return per_nfa_[r.nfa].order[r.state];
    }

    /** Normalized depth of a state addressed by global id. */
    double
    normalizedDepth(GlobalStateId gid) const
    {
        const GlobalStateRef r = app_->resolve(gid);
        return per_nfa_[r.nfa].normalizedDepth(r.state);
    }

    /** Maximum topological order across all NFAs (Table II "MaxTopo"). */
    uint32_t maxOrder() const { return max_order_; }

    /** Size of the largest SCC across all NFAs. */
    size_t largestScc() const { return largest_scc_; }

    const Application &app() const { return *app_; }

  private:
    const Application *app_;
    std::vector<Topology> per_nfa_;
    uint32_t max_order_ = 0;
    size_t largest_scc_ = 0;
};

} // namespace sparseap

#endif // SPARSEAP_PARTITION_APP_TOPOLOGY_H
