#include "partition/fill.h"

#include <algorithm>

#include "ap/batching.h"
#include "common/logging.h"

namespace sparseap {

LayerSizeTable
computeLayerSizes(const Nfa &nfa, const Topology &topo,
                  bool dedupe_intermediates)
{
    LayerSizeTable table;
    table.maxOrder = topo.maxOrder;
    table.statesUpTo.assign(topo.maxOrder, 0);
    table.cutAt.assign(topo.maxOrder, 0);

    // States per layer -> prefix sums.
    for (StateId s = 0; s < nfa.size(); ++s)
        ++table.statesUpTo[topo.order[s] - 1];
    for (uint32_t k = 1; k < topo.maxOrder; ++k)
        table.statesUpTo[k] += table.statesUpTo[k - 1];

    // Intermediate counts via a difference array over cut layers: cutting
    // at k creates an intermediate for target v iff some predecessor sits
    // at or above k (order <= k) and v below (order > k).
    std::vector<long> diff(topo.maxOrder + 1, 0);
    if (dedupe_intermediates) {
        // One intermediate per distinct target v, alive for cut layers
        // [min-pred-order, order(v) - 1].
        std::vector<uint32_t> min_pred(nfa.size(), ~0u);
        for (StateId u = 0; u < nfa.size(); ++u) {
            for (StateId v : nfa.state(u).successors) {
                if (topo.order[u] < topo.order[v])
                    min_pred[v] = std::min(min_pred[v], topo.order[u]);
            }
        }
        for (StateId v = 0; v < nfa.size(); ++v) {
            if (min_pred[v] == ~0u)
                continue;
            diff[min_pred[v] - 1] += 1;
            diff[topo.order[v] - 1] -= 1;
        }
    } else {
        // One intermediate per cut edge (u, v), alive for cut layers
        // [order(u), order(v) - 1].
        for (StateId u = 0; u < nfa.size(); ++u) {
            for (StateId v : nfa.state(u).successors) {
                if (topo.order[u] < topo.order[v]) {
                    diff[topo.order[u] - 1] += 1;
                    diff[topo.order[v] - 1] -= 1;
                }
            }
        }
    }
    long running = 0;
    for (uint32_t k = 0; k < topo.maxOrder; ++k) {
        running += diff[k];
        SPARSEAP_ASSERT(running >= 0, "negative cut count at layer ", k + 1);
        table.cutAt[k] = static_cast<size_t>(running);
    }
    // Cutting at maxOrder leaves nothing below: no intermediates.
    SPARSEAP_ASSERT(table.cutAt[topo.maxOrder - 1] == 0,
                    "cut at bottom layer must be empty");
    return table;
}

PartitionLayers
fillToCapacity(const AppTopology &topo, PartitionLayers layers,
               size_t capacity, const PartitionOptions &opts)
{
    const Application &app = topo.app();
    const size_t n = app.nfaCount();
    SPARSEAP_ASSERT(layers.k.size() == n, "layer/NFA count mismatch");

    std::vector<LayerSizeTable> tables;
    tables.reserve(n);
    for (uint32_t u = 0; u < n; ++u) {
        tables.push_back(computeLayerSizes(app.nfa(u), topo.nfa(u),
                                           opts.dedupeIntermediates));
    }

    std::vector<size_t> sizes(n);
    size_t total = 0;
    for (uint32_t u = 0; u < n; ++u) {
        sizes[u] = tables[u].fragmentSize(layers.k[u]);
        total += sizes[u];
    }

    const size_t batches0 = packSizes(sizes, capacity).batchCount();
    const size_t budget = batches0 * capacity;

    // Round-robin layer raises while the analytic budget holds.
    std::vector<uint32_t> raised; // increment log, for revert
    bool changed = true;
    while (changed) {
        changed = false;
        for (uint32_t u = 0; u < n; ++u) {
            if (layers.k[u] >= tables[u].maxOrder)
                continue;
            const size_t next = tables[u].fragmentSize(layers.k[u] + 1);
            // A raise can shrink the fragment when the dropped
            // intermediates outnumber the absorbed layer; always take
            // those.
            const bool take = next <= sizes[u] ||
                              total - sizes[u] + next <= budget;
            if (take) {
                total = total - sizes[u] + next;
                sizes[u] = next;
                ++layers.k[u];
                raised.push_back(u);
                changed = true;
            }
        }
    }

    // The analytic budget ignores whole-NFA packing fragmentation; revert
    // raises (most recent first) until the real batch count is preserved.
    while (packSizes(sizes, capacity).batchCount() > batches0 &&
           !raised.empty()) {
        uint32_t u = raised.back();
        raised.pop_back();
        --layers.k[u];
        const size_t prev = tables[u].fragmentSize(layers.k[u]);
        total = total - sizes[u] + prev;
        sizes[u] = prev;
    }
    return layers;
}

} // namespace sparseap
