/**
 * @file
 * Batch-fill optimization (Section IV-B "Optimization").
 *
 * After choosing partition layers, the predicted hot set rarely fills the
 * last BaseAP batch exactly. Since those STEs are paid for anyway, the
 * optimizer raises k_U for NFAs round-robin — absorbing the next cold
 * layer (and shrinking its intermediate states) — as long as the batch
 * count does not grow. This converts would-be mis-predictions into free
 * hot coverage; the paper notes it can equalize resource savings across
 * profiling sizes while speedups still differ.
 */

#ifndef SPARSEAP_PARTITION_FILL_H
#define SPARSEAP_PARTITION_FILL_H

#include <vector>

#include "partition/hotcold.h"
#include "partition/partitioner.h"

namespace sparseap {

/**
 * Per-NFA fragment-size tables: how many STEs the hot fragment occupies
 * for every candidate partition layer k, including the intermediate
 * reporting states that cut at k would create.
 */
struct LayerSizeTable
{
    /** statesUpTo[k-1] = #states with topo order <= k (k in 1..maxOrder) */
    std::vector<size_t> statesUpTo;
    /** cutAt[k-1] = #intermediate states created by cutting at k. */
    std::vector<size_t> cutAt;
    uint32_t maxOrder = 0;

    /** Hot fragment size (states + intermediates) when cutting at k. */
    size_t
    fragmentSize(uint32_t k) const
    {
        return statesUpTo[k - 1] + cutAt[k - 1];
    }
};

/** Compute the table for one NFA. */
LayerSizeTable computeLayerSizes(const Nfa &nfa, const Topology &topo,
                                 bool dedupe_intermediates);

/**
 * Raise partition layers to fill the BaseAP batches (without increasing
 * the batch count implied by the input layers).
 *
 * @param topo application topology
 * @param layers the profiling-derived layers (taken by value; returned
 *               raised)
 * @param capacity AP capacity in STEs
 * @param opts must match the options later passed to partitionApplication
 */
PartitionLayers fillToCapacity(const AppTopology &topo,
                               PartitionLayers layers, size_t capacity,
                               const PartitionOptions &opts = {});

} // namespace sparseap

#endif // SPARSEAP_PARTITION_FILL_H
