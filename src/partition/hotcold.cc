#include "partition/hotcold.h"

#include <algorithm>

#include "common/logging.h"
#include "common/vec.h"
#include "common/word_vector.h"
#include "sim/dense_core.h"
#include "sim/exec_core.h"
#include "telemetry/trace.h"

namespace sparseap {

size_t
HotColdProfile::hotCount() const
{
    return static_cast<size_t>(std::count(hot.begin(), hot.end(), true));
}

HotColdProfile
profileApplication(const FlatAutomaton &fa, std::span<const uint8_t> input)
{
    const size_t len = input.size();
    return std::move(
        profileApplication(fa, input, std::span<const size_t>(&len, 1))
            .front());
}

std::vector<HotColdProfile>
profileApplication(const FlatAutomaton &fa, std::span<const uint8_t> input,
                   std::span<const size_t> checkpoints)
{
    return profileApplication(fa, input, checkpoints,
                              globalOptions().engineMode);
}

std::vector<HotColdProfile>
profileApplication(const FlatAutomaton &fa, std::span<const uint8_t> input,
                   std::span<const size_t> checkpoints, EngineMode mode)
{
    SPARSEAP_PHASE("profile");
    std::vector<HotColdProfile> profiles;
    profiles.reserve(checkpoints.size());
    if (checkpoints.empty())
        return profiles;
    for (size_t c = 0; c < checkpoints.size(); ++c) {
        SPARSEAP_ASSERT(checkpoints[c] <= input.size(),
                        "profiling checkpoint ", checkpoints[c],
                        " exceeds the input length ", input.size());
        SPARSEAP_ASSERT(c == 0 || checkpoints[c - 1] <= checkpoints[c],
                        "profiling checkpoints must be sorted ascending");
    }
    const size_t longest = checkpoints.back();

    // Profiling starts on the sparse core: its per-state enable hooks
    // feed the profiler. The universality alphabet covers the whole
    // profiled prefix; for earlier checkpoints it is a superset of the
    // bytes actually consumed, which only makes the latching optimization
    // more conservative — the enabled-set trace, and hence every
    // snapshot, is unchanged.
    HotStateProfiler profiler(fa.size());
    profiler.markStarts(fa);
    ExecCore core(fa);
    core.reset(ExecCore::distinctBytes(input.subspan(0, longest)),
               &profiler, /*install_starts=*/true);

    size_t next = 0;
    auto snapshotSparse = [&](size_t i) {
        while (next < checkpoints.size() && checkpoints[next] == i) {
            HotColdProfile p;
            p.hot = profiler.hotSet();
            profiles.push_back(std::move(p));
            ++next;
        }
    };

    // Decide the core exactly like Engine::run: dense when forced, or
    // when the sparse core's measured probe work exceeds a word sweep.
    size_t i = 0;
    bool go_dense = mode == EngineMode::Dense;
    if (mode == EngineMode::Auto && fa.size() >= Engine::kMinDenseStates &&
        longest > Engine::kProbeCycles) {
        uint64_t work_acc = 0;
        for (; i < Engine::kProbeCycles; ++i) {
            snapshotSparse(i);
            core.step(input[i], i, nullptr);
            work_acc += core.lastStepWork();
        }
        const uint64_t threshold =
            static_cast<uint64_t>(Engine::kProbeCycles) *
            Engine::kDenseWorkPerWord * wordsForBits(fa.size());
        go_dense = work_acc >= threshold;
    }

    if (go_dense) {
        // Hand the in-flight enabled set over to the dense core. States
        // hot so far stay recorded in the profiler; from here on, hotness
        // is accumulated by ORing the enabled bit vector after each step
        // — the same "enabled at least once" set, one word sweep per
        // cycle instead of per-state hooks (this is what lets dense-heavy
        // automata profile at dense-core speed).
        std::vector<GlobalStateId> live;
        core.snapshotEnabled(&live);
        DenseCore dense(fa);
        dense.reset(/*install_starts=*/false);
        dense.seed(live);

        const size_t words = wordsForBits(fa.size());
        WordVector hot(words, 0);
        auto snapshotDense = [&](size_t j) {
            if (next < checkpoints.size() && checkpoints[next] == j) {
                // Latched states leave the dynamic enabled vector, but
                // each was enabled on the cycle it latched; the
                // permanent set is monotone, so folding it in at
                // checkpoint time reconstructs "enabled at least once".
                const std::span<const uint64_t> perm =
                    dense.permanentWords();
                simd::ops().orInto(hot.data(), perm.data(), words);
            }
            while (next < checkpoints.size() && checkpoints[next] == j) {
                HotColdProfile p;
                p.hot = profiler.hotSet();
                for (size_t w = 0; w < words; ++w) {
                    uint64_t bits = hot[w];
                    while (bits != 0) {
                        const unsigned b = static_cast<unsigned>(
                            __builtin_ctzll(bits));
                        p.hot[w * 64 + b] = true;
                        bits &= bits - 1;
                    }
                }
                profiles.push_back(std::move(p));
                ++next;
            }
        };
        for (; i < longest; ++i) {
            snapshotDense(i);
            dense.step(input[i], i, nullptr);
            // Accumulate with the same live-fraction crossover as
            // step(): a sparse enabled set ORs only the words its
            // summary names, a dense one takes the full-width vector
            // sweep — so the per-cycle profiling cost tracks the live
            // region like the core itself.
            const std::span<const uint64_t> enabled = dense.enabledWords();
            const std::span<const uint64_t> sum = dense.enabledSummary();
            const simd::Ops &ops = simd::ops();
            const size_t live_words = static_cast<size_t>(
                ops.popcount(sum.data(), sum.size()));
            if (live_words * dense.skipDivisor() < words) {
                forEachSetBit(sum,
                              [&](size_t w) { hot[w] |= enabled[w]; });
            } else {
                ops.orInto(hot.data(), enabled.data(), words);
            }
        }
        snapshotDense(longest);
        return profiles;
    }

    for (; i < longest; ++i) {
        snapshotSparse(i);
        core.step(input[i], i, nullptr);
    }
    snapshotSparse(longest);
    return profiles;
}

PartitionLayers
chooseLayers(const AppTopology &topo, const HotColdProfile &profile)
{
    const Application &app = topo.app();
    SPARSEAP_ASSERT(profile.hot.size() == app.totalStates(),
                    "profile size ", profile.hot.size(),
                    " != total states ", app.totalStates());
    PartitionLayers layers;
    layers.k.assign(app.nfaCount(), 1);
    for (uint32_t u = 0; u < app.nfaCount(); ++u) {
        const Topology &t = topo.nfa(u);
        const GlobalStateId base = app.nfaOffset(u);
        uint32_t k = 1;
        for (StateId s = 0; s < app.nfa(u).size(); ++s) {
            if (profile.hot[base + s])
                k = std::max(k, t.order[s]);
        }
        layers.k[u] = k;
    }
    return layers;
}

size_t
predictedHotCount(const AppTopology &topo, const PartitionLayers &layers)
{
    const Application &app = topo.app();
    size_t n = 0;
    for (uint32_t u = 0; u < app.nfaCount(); ++u) {
        const Topology &t = topo.nfa(u);
        for (StateId s = 0; s < app.nfa(u).size(); ++s)
            n += t.order[s] <= layers.k[u] ? 1 : 0;
    }
    return n;
}

std::vector<bool>
layersToPredictedHot(const AppTopology &topo, const PartitionLayers &layers)
{
    const Application &app = topo.app();
    std::vector<bool> hot(app.totalStates(), false);
    for (uint32_t u = 0; u < app.nfaCount(); ++u) {
        const Topology &t = topo.nfa(u);
        const GlobalStateId base = app.nfaOffset(u);
        for (StateId s = 0; s < app.nfa(u).size(); ++s)
            hot[base + s] = t.order[s] <= layers.k[u];
    }
    return hot;
}

} // namespace sparseap
