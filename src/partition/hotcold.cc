#include "partition/hotcold.h"

#include <algorithm>

#include "common/logging.h"

namespace sparseap {

size_t
HotColdProfile::hotCount() const
{
    return static_cast<size_t>(std::count(hot.begin(), hot.end(), true));
}

HotColdProfile
profileApplication(const FlatAutomaton &fa, std::span<const uint8_t> input)
{
    HotStateProfiler profiler(fa.size());
    Engine engine(fa);
    engine.run(input, &profiler);
    HotColdProfile profile;
    profile.hot = profiler.hotSet();
    return profile;
}

PartitionLayers
chooseLayers(const AppTopology &topo, const HotColdProfile &profile)
{
    const Application &app = topo.app();
    SPARSEAP_ASSERT(profile.hot.size() == app.totalStates(),
                    "profile size ", profile.hot.size(),
                    " != total states ", app.totalStates());
    PartitionLayers layers;
    layers.k.assign(app.nfaCount(), 1);
    for (uint32_t u = 0; u < app.nfaCount(); ++u) {
        const Topology &t = topo.nfa(u);
        const GlobalStateId base = app.nfaOffset(u);
        uint32_t k = 1;
        for (StateId s = 0; s < app.nfa(u).size(); ++s) {
            if (profile.hot[base + s])
                k = std::max(k, t.order[s]);
        }
        layers.k[u] = k;
    }
    return layers;
}

size_t
predictedHotCount(const AppTopology &topo, const PartitionLayers &layers)
{
    const Application &app = topo.app();
    size_t n = 0;
    for (uint32_t u = 0; u < app.nfaCount(); ++u) {
        const Topology &t = topo.nfa(u);
        for (StateId s = 0; s < app.nfa(u).size(); ++s)
            n += t.order[s] <= layers.k[u] ? 1 : 0;
    }
    return n;
}

std::vector<bool>
layersToPredictedHot(const AppTopology &topo, const PartitionLayers &layers)
{
    const Application &app = topo.app();
    std::vector<bool> hot(app.totalStates(), false);
    for (uint32_t u = 0; u < app.nfaCount(); ++u) {
        const Topology &t = topo.nfa(u);
        const GlobalStateId base = app.nfaOffset(u);
        for (StateId s = 0; s < app.nfa(u).size(); ++s)
            hot[base + s] = t.order[s] <= layers.k[u];
    }
    return hot;
}

} // namespace sparseap
