/**
 * @file
 * Profiling-based hot/cold prediction (Section IV-A / IV-B).
 *
 * A state is *hot* under an input iff it is enabled at least once while
 * executing that input; otherwise it is *cold*. The predictor runs a small
 * profiling prefix of the input and assumes the observed hot set holds for
 * the rest. The per-NFA partition layer k_U is the deepest topological
 * layer containing a profiled-hot state; everything at or above k_U is the
 * *predicted hot set*, everything below is the *predicted cold set*.
 */

#ifndef SPARSEAP_PARTITION_HOTCOLD_H
#define SPARSEAP_PARTITION_HOTCOLD_H

#include <span>
#include <vector>

#include "partition/app_topology.h"
#include "sim/engine.h"
#include "sim/profiler.h"

namespace sparseap {

/** Observed hot set of one run, indexed by global state id. */
struct HotColdProfile
{
    /** hot[gid] == true iff state gid was enabled at least once. */
    std::vector<bool> hot;

    size_t hotCount() const;

    double
    hotFraction() const
    {
        return hot.empty()
                   ? 0.0
                   : static_cast<double>(hotCount()) /
                         static_cast<double>(hot.size());
    }
};

/**
 * Execute @p input on the whole application and record which states were
 * enabled. @p fa must be the FlatAutomaton of the same application.
 */
HotColdProfile profileApplication(const FlatAutomaton &fa,
                                  std::span<const uint8_t> input);

/**
 * Checkpointed profiling: one engine pass over the longest prefix,
 * snapshotting the hot set at every requested prefix length. Because a
 * state once enabled stays hot, the hot set after n symbols equals the
 * profile of the n-byte prefix — so profiling k prefixes of the same
 * input (Table I's 0.1/1/10/50% sweep) costs one run instead of k.
 *
 * @param checkpoints prefix lengths in bytes, sorted ascending, each
 *        <= input.size() (duplicates allowed)
 * @return one profile per checkpoint, in order; profiles[i] is
 *         bit-identical to profileApplication(fa, input[0:checkpoints[i]])
 */
std::vector<HotColdProfile>
profileApplication(const FlatAutomaton &fa, std::span<const uint8_t> input,
                   std::span<const size_t> checkpoints);

/**
 * Variant with an explicit stepping-core selection instead of the
 * SPARSEAP_ENGINE global. All modes produce bit-identical profiles
 * (property-tested): Sparse uses the per-state enable hooks; Dense
 * accumulates the enabled bit vector after every step; Auto probes on
 * the sparse core and hands over mid-run exactly like Engine::run.
 */
std::vector<HotColdProfile>
profileApplication(const FlatAutomaton &fa, std::span<const uint8_t> input,
                   std::span<const size_t> checkpoints, EngineMode mode);

/** Per-NFA partition layers k_U. */
struct PartitionLayers
{
    /** k[u] = partition layer of NFA u (>= 1). */
    std::vector<uint32_t> k;
};

/**
 * Choose k_U = max topological order over profiled-hot states of NFA U.
 * Start states are always hot, so k_U >= 1.
 */
PartitionLayers chooseLayers(const AppTopology &topo,
                             const HotColdProfile &profile);

/** Number of states with topo order <= k_U, summed over NFAs. */
size_t predictedHotCount(const AppTopology &topo,
                         const PartitionLayers &layers);

/**
 * Expand the layers to the predicted-hot membership bitvector
 * (hot[gid] = topo(gid) <= k_U).
 */
std::vector<bool> layersToPredictedHot(const AppTopology &topo,
                                       const PartitionLayers &layers);

} // namespace sparseap

#endif // SPARSEAP_PARTITION_HOTCOLD_H
