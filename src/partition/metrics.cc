#include "partition/metrics.h"

#include "common/logging.h"
#include "common/stats.h"

namespace sparseap {

PredictionMetrics
comparePrediction(const std::vector<bool> &predicted_hot,
                  const std::vector<bool> &reference_hot)
{
    SPARSEAP_ASSERT(predicted_hot.size() == reference_hot.size(),
                    "prediction size mismatch: ", predicted_hot.size(),
                    " vs ", reference_hot.size());
    PredictionMetrics m;
    for (size_t i = 0; i < predicted_hot.size(); ++i) {
        if (predicted_hot[i]) {
            if (reference_hot[i])
                ++m.tp;
            else
                ++m.fp;
        } else {
            if (reference_hot[i])
                ++m.fn;
            else
                ++m.tn;
        }
    }
    return m;
}

ConstrainedStats
constrainedStates(const AppTopology &topo, const HotColdProfile &oracle)
{
    ConstrainedStats s;
    s.total = topo.app().totalStates();
    s.oracleHot = oracle.hotCount();
    const PartitionLayers layers = chooseLayers(topo, oracle);
    s.topoConfigured = predictedHotCount(topo, layers);
    SPARSEAP_ASSERT(s.topoConfigured >= s.oracleHot,
                    "topo partition configured fewer states (",
                    s.topoConfigured, ") than the hot set (", s.oracleHot,
                    ")");
    return s;
}

DepthDistribution
depthDistribution(const AppTopology &topo, const HotColdProfile &profile)
{
    const Application &app = topo.app();
    SPARSEAP_ASSERT(profile.hot.size() == app.totalStates(),
                    "profile/application size mismatch");
    DepthDistribution d;
    size_t hot_by_bucket[3] = {0, 0, 0};
    size_t cold_by_bucket[3] = {0, 0, 0};
    std::vector<double> depths;
    std::vector<double> hotness;
    depths.reserve(app.totalStates());
    hotness.reserve(app.totalStates());

    for (uint32_t u = 0; u < app.nfaCount(); ++u) {
        const Topology &t = topo.nfa(u);
        const GlobalStateId base = app.nfaOffset(u);
        for (StateId s = 0; s < app.nfa(u).size(); ++s) {
            const double nd = t.normalizedDepth(s);
            const int bucket = static_cast<int>(depthBucket(nd));
            const bool is_hot = profile.hot[base + s];
            if (is_hot)
                ++hot_by_bucket[bucket];
            else
                ++cold_by_bucket[bucket];
            depths.push_back(nd);
            hotness.push_back(is_hot ? 1.0 : 0.0);
        }
    }

    d.hotCount = hot_by_bucket[0] + hot_by_bucket[1] + hot_by_bucket[2];
    d.coldCount = cold_by_bucket[0] + cold_by_bucket[1] + cold_by_bucket[2];
    for (int b = 0; b < 3; ++b) {
        d.hot[b] = d.hotCount ? static_cast<double>(hot_by_bucket[b]) /
                                    static_cast<double>(d.hotCount)
                              : 0.0;
        d.cold[b] = d.coldCount ? static_cast<double>(cold_by_bucket[b]) /
                                      static_cast<double>(d.coldCount)
                                : 0.0;
    }
    d.depthHotCorrelation = pearson(depths, hotness);
    return d;
}

} // namespace sparseap
