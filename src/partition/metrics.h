/**
 * @file
 * Evaluation metrics for the prediction and partitioning schemes:
 * Table I (accuracy / recall / precision of profiling) and Fig. 8
 * (constrained states of topological-order partitioning).
 */

#ifndef SPARSEAP_PARTITION_METRICS_H
#define SPARSEAP_PARTITION_METRICS_H

#include <cstddef>
#include <vector>

#include "partition/app_topology.h"
#include "partition/hotcold.h"

namespace sparseap {

/**
 * Confusion-matrix metrics treating hot as positive (Section IV-A):
 * TP = hot in both prediction and reference, FP = predicted hot but
 * actually cold, etc.
 */
struct PredictionMetrics
{
    size_t tp = 0;
    size_t fp = 0;
    size_t tn = 0;
    size_t fn = 0;

    size_t total() const { return tp + fp + tn + fn; }

    double
    accuracy() const
    {
        return total() ? static_cast<double>(tp + tn) /
                             static_cast<double>(total())
                       : 0.0;
    }

    double
    recall() const
    {
        return (tp + fn) ? static_cast<double>(tp) /
                               static_cast<double>(tp + fn)
                         : 1.0;
    }

    double
    precision() const
    {
        return (tp + fp) ? static_cast<double>(tp) /
                               static_cast<double>(tp + fp)
                         : 1.0;
    }
};

/** Compare a predicted hot bitvector against a reference hot bitvector. */
PredictionMetrics comparePrediction(const std::vector<bool> &predicted_hot,
                                    const std::vector<bool> &reference_hot);

/** Fig. 8: cost of the topological-order constraint under oracle hotness. */
struct ConstrainedStats
{
    /** States a topo-layer perfect partition must configure. */
    size_t topoConfigured = 0;
    /** States an arbitrary-edge perfect partition configures (= |hot|). */
    size_t oracleHot = 0;
    /** Total states. */
    size_t total = 0;

    /** Extra (cold but configured) fraction caused by the constraint. */
    double
    constrainedFraction() const
    {
        return total ? static_cast<double>(topoConfigured - oracleHot) /
                           static_cast<double>(total)
                     : 0.0;
    }
};

/**
 * Evaluate the constraint cost: the topo-layer partition chosen under the
 * oracle profile vs the oracle hot set itself.
 */
ConstrainedStats constrainedStates(const AppTopology &topo,
                                   const HotColdProfile &oracle);

/**
 * Per-bucket normalized-depth histogram of hot and cold states (Fig. 5).
 * hot[b] / cold[b] are *fractions within the hot (resp. cold) set*,
 * indexed by DepthBucket.
 */
struct DepthDistribution
{
    double hot[3] = {0, 0, 0};
    double cold[3] = {0, 0, 0};
    size_t hotCount = 0;
    size_t coldCount = 0;
    /** Pearson correlation between normalized depth and hotness. */
    double depthHotCorrelation = 0.0;
};

/** Compute the Fig. 5 distribution for one application. */
DepthDistribution depthDistribution(const AppTopology &topo,
                                    const HotColdProfile &profile);

} // namespace sparseap

#endif // SPARSEAP_PARTITION_METRICS_H
