#include "partition/partitioner.h"

#include <algorithm>

#include "common/logging.h"

namespace sparseap {

PartitionedApp
partitionApplication(const AppTopology &topo, const PartitionLayers &layers,
                     const PartitionOptions &opts)
{
    const Application &app = topo.app();
    SPARSEAP_ASSERT(layers.k.size() == app.nfaCount(),
                    "layer count ", layers.k.size(), " != NFA count ",
                    app.nfaCount());

    PartitionedApp out;
    out.hot.setNames(app.name() + "_hot", app.abbr());
    out.cold.setNames(app.name() + "_cold", app.abbr());
    out.originalToCold.assign(app.totalStates(), kInvalidGlobal);

    for (uint32_t u = 0; u < app.nfaCount(); ++u) {
        const Nfa &nfa = app.nfa(u);
        const Topology &t = topo.nfa(u);
        const uint32_t k = layers.k[u];
        const GlobalStateId base = app.nfaOffset(u);

        // Local state id remapping for both fragments.
        std::vector<StateId> to_hot(nfa.size(), kInvalidState);
        std::vector<StateId> to_cold(nfa.size(), kInvalidState);

        Nfa hot_frag(nfa.name() + "_hot");
        Nfa cold_frag(nfa.name() + "_cold");
        std::vector<GlobalStateId> hot_frag_original; // per hot-local state
        std::vector<GlobalStateId> hot_frag_target;   // per hot-local state
        std::vector<GlobalStateId> cold_frag_original;

        for (StateId s = 0; s < nfa.size(); ++s) {
            const State &st = nfa.state(s);
            if (t.order[s] <= k) {
                to_hot[s] = hot_frag.addState(st.symbols, st.start,
                                              st.reporting);
                hot_frag_original.push_back(base + s);
                hot_frag_target.push_back(kInvalidGlobal);
                if (st.reporting)
                    ++out.hotOriginalReporting;
            } else {
                SPARSEAP_ASSERT(st.start == StartKind::None,
                                "start state below partition layer in '",
                                nfa.name(), "'");
                to_cold[s] = cold_frag.addState(st.symbols, StartKind::None,
                                                st.reporting);
                cold_frag_original.push_back(base + s);
                if (st.reporting)
                    ++out.coldReporting;
            }
        }

        // Edges within fragments, plus intermediate states for cut edges.
        // In dedupe mode, one intermediate per distinct cold target.
        std::vector<StateId> target_intermediate(nfa.size(), kInvalidState);
        for (StateId s = 0; s < nfa.size(); ++s) {
            const bool s_hot = to_hot[s] != kInvalidState;
            for (StateId d : nfa.state(s).successors) {
                const bool d_hot = to_hot[d] != kInvalidState;
                if (s_hot && d_hot) {
                    hot_frag.addEdge(to_hot[s], to_hot[d]);
                } else if (!s_hot && !d_hot) {
                    cold_frag.addEdge(to_cold[s], to_cold[d]);
                } else if (s_hot && !d_hot) {
                    // Cut edge (s, d): route through an intermediate
                    // reporting state that clones d's symbol-set.
                    StateId inter = kInvalidState;
                    if (opts.dedupeIntermediates &&
                        target_intermediate[d] != kInvalidState) {
                        inter = target_intermediate[d];
                    } else {
                        inter = hot_frag.addState(nfa.state(d).symbols,
                                                  StartKind::None, true);
                        hot_frag_original.push_back(kInvalidGlobal);
                        hot_frag_target.push_back(base + d);
                        target_intermediate[d] = inter;
                        ++out.intermediateCount;
                    }
                    hot_frag.addEdge(to_hot[s], inter);
                } else {
                    SPARSEAP_PANIC("cold-to-hot edge (", s, " -> ", d,
                                   ") in NFA '", nfa.name(),
                                   "': layering violated");
                }
            }
        }

        hot_frag.finalize();
        out.hot.addNfa(std::move(hot_frag));
        out.hotToOriginal.insert(out.hotToOriginal.end(),
                                 hot_frag_original.begin(),
                                 hot_frag_original.end());
        out.intermediateTarget.insert(out.intermediateTarget.end(),
                                      hot_frag_target.begin(),
                                      hot_frag_target.end());

        if (cold_frag.size() > 0) {
            cold_frag.finalize(/*require_start=*/false);
            const GlobalStateId cold_base =
                static_cast<GlobalStateId>(out.cold.totalStates());
            out.cold.addNfa(std::move(cold_frag));
            out.coldNfaToOriginal.push_back(u);
            for (size_t i = 0; i < cold_frag_original.size(); ++i) {
                out.coldToOriginal.push_back(cold_frag_original[i]);
                out.originalToCold[cold_frag_original[i]] =
                    cold_base + static_cast<GlobalStateId>(i);
            }
        }
    }
    return out;
}

} // namespace sparseap
