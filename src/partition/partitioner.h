/**
 * @file
 * NFA partitioning at a topological layer (Section IV-C, Fig. 7).
 *
 * Given per-NFA partition layers k_U, every NFA is split into:
 *
 *  - a *hot fragment*: states with topo order <= k_U, all edges among
 *    them, plus one *intermediate reporting state* v' per cut edge
 *    (u, v) — v' clones v's symbol-set, is a reporting state, has no
 *    successors, and carries a translation entry v' -> v;
 *  - a *cold fragment*: states with topo order > k_U and the edges among
 *    them. Cold fragments have no start states; they are driven by SpAP
 *    enable events.
 *
 * Because longest-path layering makes every cross-SCC edge go strictly
 * deeper, no edge crosses from cold back to hot: execution transitions
 * out of the hot fabric exactly once per matching thread.
 */

#ifndef SPARSEAP_PARTITION_PARTITIONER_H
#define SPARSEAP_PARTITION_PARTITIONER_H

#include <vector>

#include "partition/app_topology.h"
#include "partition/hotcold.h"

namespace sparseap {

/** Sentinel for "no such global state". */
constexpr GlobalStateId kInvalidGlobal = ~0u;

/** Options controlling partition construction. */
struct PartitionOptions
{
    /**
     * When false (the paper's scheme), one intermediate state is created
     * per cut *edge*; when true, cut edges sharing a target share one
     * intermediate state (a strictly smaller hot fragment — evaluated as
     * an ablation).
     */
    bool dedupeIntermediates = false;
};

/** The two fragment applications plus the id translation tables. */
struct PartitionedApp
{
    /** Hot fragments; NFA u here corresponds to original NFA u. */
    Application hot;
    /** Cold fragments; only NFAs with a nonempty cold part appear. */
    Application cold;

    /** hot gid -> original gid; kInvalidGlobal for intermediate states. */
    std::vector<GlobalStateId> hotToOriginal;
    /**
     * hot gid -> original gid of the predicted-cold state this
     * intermediate state enables; kInvalidGlobal for ordinary states.
     * This is the translation table of Fig. 7 (3).
     */
    std::vector<GlobalStateId> intermediateTarget;

    /** cold gid -> original gid. */
    std::vector<GlobalStateId> coldToOriginal;
    /** original gid -> cold gid, or kInvalidGlobal if the state is hot. */
    std::vector<GlobalStateId> originalToCold;
    /** cold NFA index -> original NFA index. */
    std::vector<uint32_t> coldNfaToOriginal;

    /** Number of intermediate reporting states added. */
    size_t intermediateCount = 0;
    /** Original reporting states on the hot side (Fig. 12 "True"). */
    size_t hotOriginalReporting = 0;
    /** Original reporting states on the cold side. */
    size_t coldReporting = 0;

    /** States configured in BaseAP mode (hot originals + intermediates). */
    size_t
    baseApStates() const
    {
        return hot.totalStates();
    }

    /**
     * Resource savings p (Fig. 10(b)): fraction of original states not
     * configured in BaseAP mode.
     */
    double
    resourceSavings(size_t original_total) const
    {
        const size_t hot_originals = hot.totalStates() - intermediateCount;
        return 1.0 - static_cast<double>(hot_originals) /
                         static_cast<double>(original_total);
    }
};

/** Split every NFA of the application at its partition layer. */
PartitionedApp partitionApplication(const AppTopology &topo,
                                    const PartitionLayers &layers,
                                    const PartitionOptions &opts = {});

} // namespace sparseap

#endif // SPARSEAP_PARTITION_PARTITIONER_H
