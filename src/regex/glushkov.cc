#include "regex/glushkov.h"

#include <algorithm>

#include "common/logging.h"

namespace sparseap {
namespace {

/** Per-node Glushkov attributes, computed bottom-up. */
struct Attrs
{
    bool nullable = false;
    std::vector<uint32_t> first;
    std::vector<uint32_t> last;
};

/** Accumulates positions and follow sets during the AST walk. */
struct Builder
{
    std::vector<SymbolSet> position_symbols;
    std::vector<std::vector<uint32_t>> follow;

    uint32_t
    newPosition(const SymbolSet &set)
    {
        position_symbols.push_back(set);
        follow.emplace_back();
        return static_cast<uint32_t>(position_symbols.size() - 1);
    }

    void
    addFollow(const std::vector<uint32_t> &from,
              const std::vector<uint32_t> &to)
    {
        for (uint32_t f : from) {
            follow[f].insert(follow[f].end(), to.begin(), to.end());
        }
    }

    Attrs
    walk(const RegexNode &node)
    {
        Attrs a;
        switch (node.op) {
          case RegexOp::Epsilon:
            a.nullable = true;
            break;
          case RegexOp::Sym: {
            uint32_t p = newPosition(node.symbols);
            a.first = {p};
            a.last = {p};
            break;
          }
          case RegexOp::Cat: {
            a.nullable = true;
            bool prefix_nullable = true;
            std::vector<uint32_t> carry_last;
            for (const auto &child : node.children) {
                Attrs c = walk(*child);
                addFollow(carry_last, c.first);
                if (prefix_nullable) {
                    a.first.insert(a.first.end(), c.first.begin(),
                                   c.first.end());
                }
                if (c.nullable) {
                    carry_last.insert(carry_last.end(), c.last.begin(),
                                      c.last.end());
                } else {
                    carry_last = c.last;
                }
                prefix_nullable = prefix_nullable && c.nullable;
                a.nullable = a.nullable && c.nullable;
            }
            a.last = std::move(carry_last);
            break;
          }
          case RegexOp::Alt: {
            for (const auto &child : node.children) {
                Attrs c = walk(*child);
                a.nullable = a.nullable || c.nullable;
                a.first.insert(a.first.end(), c.first.begin(),
                               c.first.end());
                a.last.insert(a.last.end(), c.last.begin(), c.last.end());
            }
            break;
          }
          case RegexOp::Star:
          case RegexOp::Plus:
          case RegexOp::Opt: {
            Attrs c = walk(*node.children[0]);
            if (node.op != RegexOp::Opt)
                addFollow(c.last, c.first);
            a.nullable = node.op == RegexOp::Plus ? c.nullable : true;
            a.first = std::move(c.first);
            a.last = std::move(c.last);
            break;
          }
        }
        return a;
    }
};

} // namespace

Nfa
compileRegex(const ParsedRegex &parsed, const std::string &name)
{
    SPARSEAP_ASSERT(parsed.root != nullptr, "compileRegex on empty AST");
    Builder b;
    Attrs root = b.walk(*parsed.root);

    if (root.nullable) {
        warn("pattern '", name,
             "' accepts the empty string; the empty match is dropped");
    }
    if (b.position_symbols.empty())
        fatal("pattern '", name, "' has no symbol positions");

    const StartKind start_kind =
        parsed.anchored ? StartKind::StartOfData : StartKind::AllInput;

    Nfa nfa(name);
    std::vector<bool> is_first(b.position_symbols.size(), false);
    for (uint32_t p : root.first)
        is_first[p] = true;
    std::vector<bool> is_last(b.position_symbols.size(), false);
    for (uint32_t p : root.last)
        is_last[p] = true;

    for (uint32_t p = 0; p < b.position_symbols.size(); ++p) {
        nfa.addState(b.position_symbols[p],
                     is_first[p] ? start_kind : StartKind::None,
                     is_last[p]);
    }
    for (uint32_t p = 0; p < b.follow.size(); ++p) {
        auto &f = b.follow[p];
        std::sort(f.begin(), f.end());
        f.erase(std::unique(f.begin(), f.end()), f.end());
        for (uint32_t q : f)
            nfa.addEdge(p, q);
    }
    nfa.finalize();
    return nfa;
}

Nfa
compileRegex(const std::string &pattern, const std::string &name)
{
    return compileRegex(parseRegex(pattern), name);
}

} // namespace sparseap
