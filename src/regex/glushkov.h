/**
 * @file
 * Glushkov construction: regex AST -> homogeneous NFA.
 *
 * The Glushkov (position) automaton has one state per symbol occurrence in
 * the pattern and no epsilon transitions; every incoming edge to a position
 * accepts that position's symbol-set. That is exactly the homogeneous NFA
 * form the Automata Processor executes (one STE per position).
 *
 * Anchoring: an anchored pattern's first-positions become start-of-data
 * states (enabled only at input position 0); an unanchored pattern's
 * first-positions become all-input states (enabled every cycle), which is
 * the AP's way of matching at every offset.
 */

#ifndef SPARSEAP_REGEX_GLUSHKOV_H
#define SPARSEAP_REGEX_GLUSHKOV_H

#include <string>

#include "nfa/nfa.h"
#include "regex/parser.h"

namespace sparseap {

/**
 * Compile a parsed regex into a homogeneous NFA.
 *
 * @param parsed the AST plus anchor flag
 * @param name name to give the NFA
 * @return a finalized NFA whose last-positions are reporting states
 *
 * A pattern that accepts the empty string triggers a warn(): the empty
 * match is dropped (it would report at every position).
 */
Nfa compileRegex(const ParsedRegex &parsed, const std::string &name);

/** Parse and compile in one step. */
Nfa compileRegex(const std::string &pattern, const std::string &name);

} // namespace sparseap

#endif // SPARSEAP_REGEX_GLUSHKOV_H
