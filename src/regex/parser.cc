#include "regex/parser.h"

#include <cctype>

#include "common/logging.h"

namespace sparseap {

std::unique_ptr<RegexNode>
RegexNode::clone() const
{
    auto n = std::make_unique<RegexNode>(op);
    n->symbols = symbols;
    n->children.reserve(children.size());
    for (const auto &c : children)
        n->children.push_back(c->clone());
    return n;
}

size_t
countPositions(const RegexNode &node)
{
    if (node.op == RegexOp::Sym)
        return 1;
    size_t n = 0;
    for (const auto &c : node.children)
        n += countPositions(*c);
    return n;
}

namespace {

/** Upper bound on Glushkov positions after count desugaring. */
constexpr size_t kMaxPositions = 1u << 20;

std::unique_ptr<RegexNode>
makeNode(RegexOp op)
{
    return std::make_unique<RegexNode>(op);
}

std::unique_ptr<RegexNode>
makeSym(SymbolSet set)
{
    auto n = makeNode(RegexOp::Sym);
    n->symbols = set;
    return n;
}

/** Recursive-descent parser over a pattern string. */
class Parser
{
  public:
    explicit Parser(const std::string &pattern) : pat(pattern) {}

    ParsedRegex
    parse()
    {
        ParsedRegex out;
        if (peek() == '^') {
            out.anchored = true;
            ++pos;
        }
        out.root = parseAlt();
        if (pos != pat.size())
            syntaxError("unexpected character");
        if (countPositions(*out.root) > kMaxPositions)
            fatal("regex '", pat, "' expands to too many positions");
        return out;
    }

  private:
    const std::string &pat;
    size_t pos = 0;

    [[noreturn]] void
    syntaxError(const std::string &what)
    {
        fatal("regex syntax error at offset ", pos, " in '", pat, "': ",
              what);
    }

    char
    peek() const
    {
        return pos < pat.size() ? pat[pos] : '\0';
    }

    bool
    atEnd() const
    {
        return pos >= pat.size();
    }

    std::unique_ptr<RegexNode>
    parseAlt()
    {
        auto first = parseCat();
        if (peek() != '|')
            return first;
        auto alt = makeNode(RegexOp::Alt);
        alt->children.push_back(std::move(first));
        while (peek() == '|') {
            ++pos;
            alt->children.push_back(parseCat());
        }
        return alt;
    }

    std::unique_ptr<RegexNode>
    parseCat()
    {
        auto cat = makeNode(RegexOp::Cat);
        while (!atEnd() && peek() != '|' && peek() != ')')
            cat->children.push_back(parseQuantified());
        if (cat->children.empty())
            return makeNode(RegexOp::Epsilon);
        if (cat->children.size() == 1)
            return std::move(cat->children[0]);
        return cat;
    }

    std::unique_ptr<RegexNode>
    parseQuantified()
    {
        auto atom = parseAtom();
        while (!atEnd()) {
            char c = peek();
            if (c == '*') {
                ++pos;
                auto n = makeNode(RegexOp::Star);
                n->children.push_back(std::move(atom));
                atom = std::move(n);
            } else if (c == '+') {
                ++pos;
                auto n = makeNode(RegexOp::Plus);
                n->children.push_back(std::move(atom));
                atom = std::move(n);
            } else if (c == '?') {
                ++pos;
                auto n = makeNode(RegexOp::Opt);
                n->children.push_back(std::move(atom));
                atom = std::move(n);
            } else if (c == '{') {
                atom = parseCount(std::move(atom));
            } else {
                break;
            }
        }
        return atom;
    }

    /** Desugar atom{m}, atom{m,}, atom{m,n} by copying the atom. */
    std::unique_ptr<RegexNode>
    parseCount(std::unique_ptr<RegexNode> atom)
    {
        ++pos; // consume '{'
        long lo = parseInt();
        long hi = lo;
        bool unbounded = false;
        if (peek() == ',') {
            ++pos;
            if (peek() == '}') {
                unbounded = true;
            } else {
                hi = parseInt();
            }
        }
        if (peek() != '}')
            syntaxError("expected '}' after count");
        ++pos;
        if (!unbounded && hi < lo)
            syntaxError("count upper bound below lower bound");
        constexpr long kMaxCount = 8192;
        if (lo > kMaxCount || (!unbounded && hi > kMaxCount))
            syntaxError("count exceeds supported maximum");

        auto cat = makeNode(RegexOp::Cat);
        for (long i = 0; i < lo; ++i)
            cat->children.push_back(atom->clone());
        if (unbounded) {
            auto star = makeNode(RegexOp::Star);
            star->children.push_back(atom->clone());
            cat->children.push_back(std::move(star));
        } else {
            for (long i = lo; i < hi; ++i) {
                auto opt = makeNode(RegexOp::Opt);
                opt->children.push_back(atom->clone());
                cat->children.push_back(std::move(opt));
            }
        }
        if (cat->children.empty())
            return makeNode(RegexOp::Epsilon);
        if (cat->children.size() == 1)
            return std::move(cat->children[0]);
        return cat;
    }

    long
    parseInt()
    {
        if (!std::isdigit(static_cast<unsigned char>(peek())))
            syntaxError("expected digit");
        long v = 0;
        while (std::isdigit(static_cast<unsigned char>(peek()))) {
            v = v * 10 + (pat[pos] - '0');
            if (v > 1'000'000)
                syntaxError("count too large");
            ++pos;
        }
        return v;
    }

    std::unique_ptr<RegexNode>
    parseAtom()
    {
        char c = peek();
        switch (c) {
          case '(': {
            ++pos;
            if (peek() == '?') {
                // Allow PCRE non-capturing group syntax (?:...); reject
                // lookaround and other extensions.
                if (pos + 1 < pat.size() && pat[pos + 1] == ':') {
                    pos += 2;
                } else {
                    syntaxError("unsupported (?...) group");
                }
            }
            auto inner = parseAlt();
            if (peek() != ')')
                syntaxError("missing ')'");
            ++pos;
            return inner;
          }
          case ')':
          case '|':
            syntaxError("unexpected metacharacter");
          case '*':
          case '+':
          case '?':
            syntaxError("quantifier with nothing to repeat");
          case '[':
            return makeSym(parseClass());
          case '.':
            ++pos;
            return makeSym(SymbolSet::all());
          case '$':
            syntaxError("'$' end anchor is not supported");
          case '^':
            syntaxError("'^' is only valid at the start of the pattern");
          case '\\':
            return makeSym(parseEscape());
          case '\0':
            syntaxError("unexpected end of pattern");
          default:
            ++pos;
            return makeSym(SymbolSet::single(static_cast<uint8_t>(c)));
        }
    }

    int
    hexDigit(char c)
    {
        if (c >= '0' && c <= '9')
            return c - '0';
        if (c >= 'a' && c <= 'f')
            return c - 'a' + 10;
        if (c >= 'A' && c <= 'F')
            return c - 'A' + 10;
        syntaxError("bad hex digit");
    }

    /** Parse an escape starting at '\\'; consumes it. */
    SymbolSet
    parseEscape()
    {
        ++pos; // consume backslash
        if (atEnd())
            syntaxError("dangling escape");
        char e = pat[pos++];
        switch (e) {
          case 'n':
            return SymbolSet::single('\n');
          case 't':
            return SymbolSet::single('\t');
          case 'r':
            return SymbolSet::single('\r');
          case '0':
            return SymbolSet::single('\0');
          case 'x': {
            if (pos + 2 > pat.size())
                syntaxError("truncated \\x escape");
            int hi = hexDigit(pat[pos]);
            int lo = hexDigit(pat[pos + 1]);
            pos += 2;
            return SymbolSet::single(static_cast<uint8_t>((hi << 4) | lo));
          }
          case 'd':
            return SymbolSet::range('0', '9');
          case 'D':
            return ~SymbolSet::range('0', '9');
          case 'w':
            return wordClass();
          case 'W':
            return ~wordClass();
          case 's':
            return spaceClass();
          case 'S':
            return ~spaceClass();
          default:
            return SymbolSet::single(static_cast<uint8_t>(e));
        }
    }

    static SymbolSet
    wordClass()
    {
        SymbolSet s = SymbolSet::range('a', 'z');
        s |= SymbolSet::range('A', 'Z');
        s |= SymbolSet::range('0', '9');
        s.set('_');
        return s;
    }

    static SymbolSet
    spaceClass()
    {
        SymbolSet s;
        s.set(' ');
        s.set('\t');
        s.set('\n');
        s.set('\r');
        s.set('\f');
        s.set('\v');
        return s;
    }

    /** Parse a bracket class starting at '['; consumes through ']'. */
    SymbolSet
    parseClass()
    {
        ++pos; // consume '['
        bool negate = false;
        if (peek() == '^') {
            negate = true;
            ++pos;
        }
        SymbolSet set;
        bool first = true;
        while (true) {
            if (atEnd())
                syntaxError("unterminated character class");
            char c = peek();
            if (c == ']' && !first) {
                ++pos;
                break;
            }
            first = false;
            SymbolSet item;
            uint8_t lo_byte = 0;
            bool single = true;
            if (c == '\\') {
                item = parseEscape();
                if (item.count() == 1) {
                    for (unsigned b = 0; b < 256; ++b) {
                        if (item.test(static_cast<uint8_t>(b))) {
                            lo_byte = static_cast<uint8_t>(b);
                            break;
                        }
                    }
                } else {
                    single = false;
                }
            } else {
                ++pos;
                lo_byte = static_cast<uint8_t>(c);
                item = SymbolSet::single(lo_byte);
            }
            // Range: only when the left side was a single byte.
            if (single && peek() == '-' && pos + 1 < pat.size() &&
                pat[pos + 1] != ']') {
                ++pos; // consume '-'
                uint8_t hi_byte;
                if (peek() == '\\') {
                    SymbolSet hi_set = parseEscape();
                    if (hi_set.count() != 1)
                        syntaxError("class range bound must be one byte");
                    hi_byte = 0;
                    for (unsigned b = 0; b < 256; ++b) {
                        if (hi_set.test(static_cast<uint8_t>(b))) {
                            hi_byte = static_cast<uint8_t>(b);
                            break;
                        }
                    }
                } else {
                    hi_byte = static_cast<uint8_t>(peek());
                    ++pos;
                }
                if (hi_byte < lo_byte)
                    syntaxError("inverted class range");
                set |= SymbolSet::range(lo_byte, hi_byte);
            } else {
                set |= item;
            }
        }
        return negate ? ~set : set;
    }
};

} // namespace

ParsedRegex
parseRegex(const std::string &pattern)
{
    return Parser(pattern).parse();
}

} // namespace sparseap
