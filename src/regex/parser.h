/**
 * @file
 * Regular-expression parser.
 *
 * Grammar subset (the dialect used by Snort/ClamAV-style signatures):
 *
 *   alternation:  a|b
 *   concatenation
 *   quantifiers:  * + ? {m} {m,} {m,n}   (greedy; counts desugared by copy)
 *   groups:       ( ... )               (non-capturing; no backrefs)
 *   classes:      [abc], [a-z], [^...]  and '.' (any byte)
 *   escapes:      \n \t \r \0 \xHH \d \D \w \W \s \S and \<punct>
 *   anchor:       leading ^ anchors to start of data; otherwise the
 *                 pattern matches at every input offset (AP semantics)
 *
 * '$' is rejected: end anchoring needs an end-of-data symbol the AP model
 * does not carry. Backreferences and lookaround are rejected.
 */

#ifndef SPARSEAP_REGEX_PARSER_H
#define SPARSEAP_REGEX_PARSER_H

#include <memory>
#include <string>
#include <vector>

#include "nfa/symbol_set.h"

namespace sparseap {

/** Regex AST node kinds after desugaring counts. */
enum class RegexOp : uint8_t {
    Epsilon, ///< empty string
    Sym,     ///< one symbol-set occurrence
    Cat,     ///< concatenation of children
    Alt,     ///< alternation of children
    Star,    ///< zero or more of child
    Plus,    ///< one or more of child
    Opt,     ///< zero or one of child
};

/** AST node; children owned by unique_ptr. */
struct RegexNode
{
    RegexOp op;
    SymbolSet symbols; // valid when op == Sym
    std::vector<std::unique_ptr<RegexNode>> children;

    explicit RegexNode(RegexOp o) : op(o) {}

    /** Deep copy (used to desugar {m,n} counts). */
    std::unique_ptr<RegexNode> clone() const;
};

/** A parsed pattern: AST plus anchoring flag. */
struct ParsedRegex
{
    std::unique_ptr<RegexNode> root;
    /** True iff the pattern began with '^'. */
    bool anchored = false;
};

/**
 * Parse @p pattern; calls fatal() with a position-annotated message on
 * syntax errors.
 */
ParsedRegex parseRegex(const std::string &pattern);

/** Count of Sym occurrences in the AST (the Glushkov position count). */
size_t countPositions(const RegexNode &node);

} // namespace sparseap

#endif // SPARSEAP_REGEX_PARSER_H
