#include "serve/admission.h"

#include <chrono>

#include "telemetry/metrics.h"

namespace sparseap {
namespace serve {

namespace {

uint64_t
steadyMicros()
{
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

telemetry::Counter &
requestsCounter()
{
    static telemetry::Counter c("serve.requests");
    return c;
}

telemetry::Counter &
overloadCounter()
{
    static telemetry::Counter c("serve.overload");
    return c;
}

telemetry::Counter &
retryCounter()
{
    static telemetry::Counter c("serve.retry");
    return c;
}

telemetry::Counter &
shedCounter()
{
    static telemetry::Counter c("serve.shed");
    return c;
}

} // namespace

AdmissionQueue::AdmissionQueue(AdmissionConfig config,
                               std::function<uint64_t()> clock)
    : config_(config), clock_(clock ? std::move(clock) : steadyMicros)
{
}

AdmitResult
AdmissionQueue::tryEnqueue(const std::string &tenant,
                           std::shared_ptr<void> work)
{
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.requests;
    requestsCounter().add(1);
    if (closed_ || queue_.size() >= config_.queueDepth) {
        ++stats_.overloaded;
        ++stats_.shed;
        overloadCounter().add(1);
        shedCounter().add(1);
        return AdmitResult::Overloaded;
    }
    if (config_.perTenantInFlight > 0 &&
        in_flight_[tenant] >= config_.perTenantInFlight) {
        ++stats_.retried;
        ++stats_.shed;
        retryCounter().add(1);
        shedCounter().add(1);
        return AdmitResult::TenantBusy;
    }
    ++in_flight_[tenant];
    ++stats_.admitted;
    queue_.push_back(Item{tenant, clock_(), std::move(work)});
    ready_cv_.notify_one();
    return AdmitResult::Admitted;
}

bool
AdmissionQueue::pop(Item *out, std::vector<Item> *shed)
{
    std::unique_lock<std::mutex> lock(mutex_);
    for (;;) {
        while (queue_.empty() && !closed_)
            ready_cv_.wait(lock);
        if (queue_.empty())
            return false; // closed and drained

        Item item = std::move(queue_.front());
        queue_.pop_front();
        const bool stale =
            config_.deadlineMicros > 0 &&
            clock_() - item.enqueuedMicros > config_.deadlineMicros;
        if (stale) {
            // Release the slot here; the caller only answers the shed
            // item, it never calls finish() for it.
            auto it = in_flight_.find(item.tenant);
            if (it != in_flight_.end() && it->second > 0)
                --it->second;
            ++stats_.shed;
            shedCounter().add(1);
            if (shed)
                shed->push_back(std::move(item));
            continue;
        }
        *out = std::move(item);
        return true;
    }
}

void
AdmissionQueue::finish(const std::string &tenant)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = in_flight_.find(tenant);
    if (it != in_flight_.end() && it->second > 0)
        --it->second;
}

void
AdmissionQueue::close()
{
    std::lock_guard<std::mutex> lock(mutex_);
    closed_ = true;
    ready_cv_.notify_all();
}

size_t
AdmissionQueue::depth() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return queue_.size();
}

size_t
AdmissionQueue::inFlight(const std::string &tenant) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = in_flight_.find(tenant);
    return it == in_flight_.end() ? 0 : it->second;
}

AdmissionStats
AdmissionQueue::stats() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return stats_;
}

} // namespace serve
} // namespace sparseap
