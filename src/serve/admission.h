/**
 * @file
 * Bounded admission queue with per-tenant caps and deadline shedding.
 *
 * The daemon's backpressure story lives here, transport-free so the
 * overload behavior is deterministic and unit-testable: requests enter
 * through tryEnqueue(), which rejects *immediately* — Overloaded when
 * the queue is at depth, TenantBusy when the tenant already has its cap
 * of admitted-but-unfinished requests — and workers drain through
 * pop(), which sheds items that waited past the deadline instead of
 * executing work whose client has long since timed out. Rejecting at
 * enqueue keeps the failure cheap (the I/O thread answers OVERLOAD /
 * RETRY without touching a worker); shedding at dequeue bounds the
 * staleness of work that *was* admitted.
 *
 * The clock is injected so deadline tests don't sleep. Counters:
 * serve.requests (every tryEnqueue), serve.overload (queue-full
 * rejections), serve.retry (tenant-cap rejections), serve.shed
 * (deadline sheds; rejections also count here — every request that was
 * refused service lands in serve.shed exactly once).
 *
 * See docs/SERVING.md §Overload; tested by tests/test_serve_server.cc.
 */

#ifndef SPARSEAP_SERVE_ADMISSION_H
#define SPARSEAP_SERVE_ADMISSION_H

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

namespace sparseap {
namespace serve {

/** Outcome of tryEnqueue(). */
enum class AdmitResult {
    Admitted,   ///< queued; finish(tenant) must follow execution
    Overloaded, ///< queue at depth — answer Overload
    TenantBusy, ///< tenant at its in-flight cap — answer Retry
};

struct AdmissionConfig
{
    /** Queued (admitted, not yet popped) request bound. */
    size_t queueDepth = 256;
    /** Admitted-but-unfinished bound per tenant (0 = unlimited). */
    size_t perTenantInFlight = 64;
    /**
     * Queue-wait budget in microseconds; items older than this at
     * pop() time are shed, not executed (0 = never shed).
     */
    uint64_t deadlineMicros = 0;
};

/** Snapshot of the queue's counters. */
struct AdmissionStats
{
    uint64_t requests = 0; ///< tryEnqueue calls
    uint64_t admitted = 0;
    uint64_t overloaded = 0; ///< queue-full rejections
    uint64_t retried = 0;    ///< tenant-cap rejections
    uint64_t shed = 0;       ///< rejections + deadline sheds
};

/** Bounded MPMC work queue (see file comment). */
class AdmissionQueue
{
  public:
    /** One admitted request. */
    struct Item
    {
        std::string tenant;
        uint64_t enqueuedMicros = 0;
        /** Caller-owned work record, opaque to the queue. */
        std::shared_ptr<void> work;
    };

    /** @p clock returns microseconds; injectable for deadline tests. */
    explicit AdmissionQueue(AdmissionConfig config,
                            std::function<uint64_t()> clock = {});

    /**
     * Admit or reject @p work for @p tenant. On Admitted the item is
     * queued and the tenant's in-flight count is held until finish().
     */
    AdmitResult tryEnqueue(const std::string &tenant,
                           std::shared_ptr<void> work);

    /**
     * Block for the next live item. Items that overstayed the deadline
     * are appended to @p shed (their tenant slots already released —
     * the caller only answers them) until a live item or closure.
     * @return false when the queue is closed and drained; @p shed can
     *         still be non-empty then.
     */
    bool pop(Item *out, std::vector<Item> *shed);

    /** Release @p tenant's in-flight slot after executing its item. */
    void finish(const std::string &tenant);

    /** Wake every pop() blocked; subsequent pops drain then fail. */
    void close();

    size_t depth() const;
    size_t inFlight(const std::string &tenant) const;
    AdmissionStats stats() const;

  private:
    const AdmissionConfig config_;
    const std::function<uint64_t()> clock_;

    mutable std::mutex mutex_;
    std::condition_variable ready_cv_;
    std::deque<Item> queue_;
    std::unordered_map<std::string, size_t> in_flight_;
    bool closed_ = false;
    AdmissionStats stats_;
};

} // namespace serve
} // namespace sparseap

#endif // SPARSEAP_SERVE_ADMISSION_H
