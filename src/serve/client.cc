#include "serve/client.h"

#include <cerrno>
#include <cstring>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

namespace sparseap {
namespace serve {

ServeClient::~ServeClient() { disconnect(); }

bool
ServeClient::connect(const std::string &socket_path, std::string *error)
{
    disconnect();
    fd_ = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (fd_ < 0) {
        if (error)
            *error = std::string("socket: ") + std::strerror(errno);
        return false;
    }
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (socket_path.size() >= sizeof(addr.sun_path)) {
        if (error)
            *error = "socket path too long: " + socket_path;
        disconnect();
        return false;
    }
    std::strncpy(addr.sun_path, socket_path.c_str(),
                 sizeof(addr.sun_path) - 1);
    if (::connect(fd_, reinterpret_cast<sockaddr *>(&addr),
                  sizeof(addr)) != 0) {
        if (error)
            *error = std::string("connect ") + socket_path + ": " +
                     std::strerror(errno);
        disconnect();
        return false;
    }
    const Result hello = call(MsgType::Hello, {}, nullptr, nullptr);
    if (hello.status != Status::Ok) {
        if (error)
            *error = "handshake failed";
        disconnect();
        return false;
    }
    return true;
}

void
ServeClient::disconnect()
{
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
    reader_ = FrameReader();
}

ServeClient::Result
ServeClient::ping()
{
    return call(MsgType::Ping, {}, nullptr, nullptr);
}

ServeClient::Result
ServeClient::open(const std::string &tenant, uint64_t stream_id)
{
    std::vector<uint8_t> payload;
    WireWriter w(&payload);
    encodeStreamRequest(&w, StreamRequest{tenant, stream_id});
    return call(MsgType::Open, payload, nullptr, nullptr);
}

ServeClient::Result
ServeClient::feed(const std::string &tenant, uint64_t stream_id,
                  std::span<const uint8_t> chunk, ReportGroup *out)
{
    const FeedEntry entry{stream_id, chunk};
    std::vector<ReportGroup> groups;
    const Result r = feedMany(tenant, {&entry, 1}, &groups);
    if (out != nullptr) {
        *out = ReportGroup{};
        out->streamId = stream_id;
        // kFlagMore splitting can slice one stream across groups.
        for (ReportGroup &g : groups) {
            out->streamOffset = g.streamOffset;
            out->reports.insert(out->reports.end(), g.reports.begin(),
                                g.reports.end());
        }
    }
    return r;
}

ServeClient::Result
ServeClient::feedMany(const std::string &tenant,
                      std::span<const FeedEntry> entries,
                      std::vector<ReportGroup> *out)
{
    std::vector<uint8_t> payload;
    WireWriter w(&payload);
    FeedRequest req;
    req.tenant = tenant;
    req.entries.assign(entries.begin(), entries.end());
    encodeFeedRequest(&w, req);
    if (out)
        out->clear();
    return call(MsgType::Feed, payload, out, nullptr);
}

ServeClient::Result
ServeClient::closeStream(const std::string &tenant, uint64_t stream_id,
                         ReportGroup *out)
{
    std::vector<uint8_t> payload;
    WireWriter w(&payload);
    encodeStreamRequest(&w, StreamRequest{tenant, stream_id});
    std::vector<ReportGroup> groups;
    const Result r = call(MsgType::Close, payload, &groups, nullptr);
    if (out != nullptr) {
        *out = ReportGroup{};
        out->streamId = stream_id;
        for (ReportGroup &g : groups) {
            out->streamOffset = g.streamOffset;
            out->reports.insert(out->reports.end(), g.reports.begin(),
                                g.reports.end());
        }
    }
    return r;
}

ServeClient::Result
ServeClient::match(const std::string &tenant,
                   std::span<const uint8_t> input, ReportGroup *out)
{
    std::vector<uint8_t> payload;
    WireWriter w(&payload);
    encodeMatchRequest(&w, MatchRequest{tenant, input});
    std::vector<ReportGroup> groups;
    const Result r = call(MsgType::Match, payload, &groups, nullptr);
    if (out != nullptr) {
        *out = ReportGroup{};
        for (ReportGroup &g : groups) {
            out->streamOffset = g.streamOffset;
            out->reports.insert(out->reports.end(), g.reports.begin(),
                                g.reports.end());
        }
    }
    return r;
}

ServeClient::Result
ServeClient::stats(StatsReply *out)
{
    return call(MsgType::Stats, {}, nullptr, out);
}

bool
ServeClient::sendRaw(std::span<const uint8_t> bytes)
{
    size_t off = 0;
    while (off < bytes.size()) {
        const ssize_t n = ::send(fd_, bytes.data() + off,
                                 bytes.size() - off, MSG_NOSIGNAL);
        if (n <= 0) {
            if (n < 0 && errno == EINTR)
                continue;
            return false;
        }
        off += static_cast<size_t>(n);
    }
    return true;
}

bool
ServeClient::readFrame(Frame *out)
{
    for (;;) {
        std::string error;
        const FrameReader::Status st = reader_.next(out, &error);
        if (st == FrameReader::Status::Ready)
            return true;
        if (st == FrameReader::Status::Corrupt)
            return false;
        uint8_t buf[65536];
        const ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
        if (n <= 0) {
            if (n < 0 && errno == EINTR)
                continue;
            return false; // orderly close or hard error
        }
        reader_.append({buf, static_cast<size_t>(n)});
    }
}

ServeClient::Result
ServeClient::call(MsgType type, std::span<const uint8_t> payload,
                  std::vector<ReportGroup> *groups, StatsReply *stats_out)
{
    Result result;
    if (fd_ < 0)
        return result; // Transport
    const uint64_t request_id = next_request_id_++;
    std::vector<uint8_t> out;
    appendFrame(&out, type, 0, request_id, payload);
    if (!sendRaw(out))
        return result;

    for (;;) {
        Frame frame;
        if (!readFrame(&frame))
            return result; // Transport
        if (frame.requestId != request_id)
            continue; // stale frame from an aborted exchange

        WireReader r(frame.payload);
        switch (static_cast<MsgType>(frame.type)) {
        case MsgType::Ok:
            result.status = Status::Ok;
            return result;
        case MsgType::Reports: {
            std::vector<ReportGroup> batch;
            if (!decodeReportGroups(&r, &batch))
                return result; // undecodable reply: treat as transport
            if (groups != nullptr)
                for (ReportGroup &g : batch)
                    groups->push_back(std::move(g));
            if (frame.flags & kFlagMore)
                continue;
            result.status = Status::Ok;
            return result;
        }
        case MsgType::StatsReply:
            if (stats_out == nullptr ||
                !decodeStatsReply(&r, stats_out))
                return result;
            result.status = Status::Ok;
            return result;
        case MsgType::Error:
            result.status = Status::Error;
            decodeError(&r, &result.error);
            return result;
        case MsgType::Overload:
            result.status = Status::Overload;
            return result;
        case MsgType::Retry:
            result.status = Status::Retry;
            return result;
        default:
            return result; // protocol violation
        }
    }
}

} // namespace serve
} // namespace sparseap
