/**
 * @file
 * Synchronous client for the apserved framing protocol.
 *
 * ServeClient speaks the length-prefixed protocol (serve/protocol.h)
 * over a Unix-domain socket: one blocking request/response exchange at
 * a time, reassembling kFlagMore-chained Reports frames into a single
 * result. Overload and Retry are first-class outcomes (Status values),
 * not errors — callers under load are expected to see them and back
 * off; the bench client counts them.
 *
 * The apclient CLI and the serve tests/bench are the consumers; the
 * class is deliberately minimal (no pipelining, no reconnect) so its
 * behavior under protocol fault injection is easy to reason about.
 */

#ifndef SPARSEAP_SERVE_CLIENT_H
#define SPARSEAP_SERVE_CLIENT_H

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "serve/protocol.h"

namespace sparseap {
namespace serve {

/** Blocking single-connection protocol client (see file comment). */
class ServeClient
{
  public:
    enum class Status {
        Ok,
        Overload,  ///< shed by admission (queue full / deadline)
        Retry,     ///< per-tenant cap; back off and resend
        Error,     ///< server Error frame (see Result::error)
        Transport, ///< socket failure / connection lost
    };

    struct Result
    {
        Status status = Status::Transport;
        ErrorReply error; ///< valid when status == Error
    };

    ServeClient() = default;
    ~ServeClient();

    ServeClient(const ServeClient &) = delete;
    ServeClient &operator=(const ServeClient &) = delete;

    /** Connect and run the Hello version handshake. */
    bool connect(const std::string &socket_path, std::string *error);

    void disconnect();

    bool connected() const { return fd_ >= 0; }

    Result ping();

    Result open(const std::string &tenant, uint64_t stream_id);

    /** Feed one stream; reports drained by the server land in @p out. */
    Result feed(const std::string &tenant, uint64_t stream_id,
                std::span<const uint8_t> chunk, ReportGroup *out);

    /** Feed several streams of one tenant in one request. */
    Result feedMany(const std::string &tenant,
                    std::span<const FeedEntry> entries,
                    std::vector<ReportGroup> *out);

    /** Close a stream; @p out gets the final offset + residual reports. */
    Result closeStream(const std::string &tenant, uint64_t stream_id,
                       ReportGroup *out);

    /** One-shot whole-input match. */
    Result match(const std::string &tenant,
                 std::span<const uint8_t> input, ReportGroup *out);

    Result stats(StatsReply *out);

    /** Push raw bytes down the socket (protocol fault injection). */
    bool sendRaw(std::span<const uint8_t> bytes);

  private:
    /**
     * One exchange: send `type`+`payload`, then read response frames
     * for the request id until the reply completes. Reports frames
     * accumulate into @p groups (when non-null); a StatsReply decodes
     * into @p stats_out.
     */
    Result call(MsgType type, std::span<const uint8_t> payload,
                std::vector<ReportGroup> *groups, StatsReply *stats_out);

    bool readFrame(Frame *out);

    int fd_ = -1;
    uint64_t next_request_id_ = 1;
    FrameReader reader_;
};

} // namespace serve
} // namespace sparseap

#endif // SPARSEAP_SERVE_CLIENT_H
