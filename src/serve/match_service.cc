#include "serve/match_service.h"

#include <algorithm>
#include <chrono>
#include <thread>

#include "common/logging.h"
#include "sim/stream_batch.h"
#include "telemetry/labels.h"
#include "telemetry/metrics.h"
#include "telemetry/request_trace.h"

namespace sparseap {
namespace serve {

namespace {

telemetry::Counter &
feedsCounter()
{
    static telemetry::Counter c("serve.feeds");
    return c;
}

telemetry::Counter &
fedBytesCounter()
{
    static telemetry::Counter c("serve.fed_bytes");
    return c;
}

telemetry::Counter &
parksCounter()
{
    static telemetry::Counter c("serve.parks");
    return c;
}

telemetry::Counter &
resumesCounter()
{
    static telemetry::Counter c("serve.resumes");
    return c;
}

telemetry::Gauge &
activeStreamsGauge()
{
    static telemetry::Gauge g("serve.active_streams");
    return g;
}

telemetry::Gauge &
residentGauge()
{
    static telemetry::Gauge g("serve.resident_sessions");
    return g;
}

telemetry::Gauge &
parkedGauge()
{
    static telemetry::Gauge g("serve.parked_sessions");
    return g;
}

telemetry::Gauge &
parkedBytesGauge()
{
    static telemetry::Gauge g("serve.parked_bytes");
    return g;
}

// Per-tenant attribution families (bounded cardinality; leaked
// singletons so series survive service teardown like registry cells).
telemetry::LabeledCounter &
feedsByTenant()
{
    static auto &c = *new telemetry::LabeledCounter("serve.feeds");
    return c;
}

telemetry::LabeledCounter &
fedBytesByTenant()
{
    static auto &c = *new telemetry::LabeledCounter("serve.fed_bytes");
    return c;
}

telemetry::LabeledCounter &
dfaCyclesByTenant()
{
    static auto &c = *new telemetry::LabeledCounter("serve.dfa_cycles");
    return c;
}

telemetry::LabeledCounter &
denseCyclesByTenant()
{
    static auto &c =
        *new telemetry::LabeledCounter("serve.dense_cycles");
    return c;
}

telemetry::LabeledCounter &
sparseCyclesByTenant()
{
    static auto &c =
        *new telemetry::LabeledCounter("serve.sparse_cycles");
    return c;
}

telemetry::LabeledCounter &
skipSymbolsByTenant()
{
    static auto &c =
        *new telemetry::LabeledCounter("serve.skip_symbols");
    return c;
}

telemetry::LabeledCounter &
skipJumpsByTenant()
{
    static auto &c = *new telemetry::LabeledCounter("serve.skip_jumps");
    return c;
}

telemetry::LabeledGauge &
parkedBytesByTenant()
{
    static auto &g =
        *new telemetry::LabeledGauge("serve.parked_bytes");
    return g;
}

/** One feed call's per-tenant attribution, folded once at checkin
 *  (never per symbol — see the kernel instrumentation rules). */
struct TenantFold
{
    uint64_t feeds = 0;
    uint64_t bytes = 0;
    uint64_t dfaCycles = 0;
    uint64_t denseCycles = 0;
    uint64_t sparseCycles = 0;
    uint64_t skipSymbols = 0;
    uint64_t skipJumps = 0;

    /** Attribute one session's stats delta. The whole delta lands on
     *  the phase the session ended the feed in — a feed spanning a
     *  hot-set handover splits at feed, not cycle, granularity. */
    void
    addDelta(const SessionStats &before, const SessionStats &after,
             const EngineSession &session)
    {
        const uint64_t cycles = after.cycles - before.cycles;
        if (session.dfaPhase())
            dfaCycles += cycles;
        else if (session.resolvedMode() == EngineMode::Dense)
            denseCycles += cycles;
        else
            sparseCycles += cycles;
        skipSymbols += after.skippedSymbols - before.skippedSymbols;
        skipJumps += after.skipJumps - before.skipJumps;
    }

    /** Like addDelta for a from-scratch run (one-shot batch lanes),
     *  classified by the stats flags instead of a live session. */
    void
    addRun(const SessionStats &run)
    {
        if (run.usedDfa)
            dfaCycles += run.cycles;
        else if (run.usedDenseCore)
            denseCycles += run.cycles;
        else
            sparseCycles += run.cycles;
        skipSymbols += run.skippedSymbols;
        skipJumps += run.skipJumps;
    }

    void
    publish(const std::string &tenant) const
    {
        feedsByTenant().add(tenant, feeds);
        if (bytes)
            fedBytesByTenant().add(tenant, bytes);
        if (dfaCycles)
            dfaCyclesByTenant().add(tenant, dfaCycles);
        if (denseCycles)
            denseCyclesByTenant().add(tenant, denseCycles);
        if (sparseCycles)
            sparseCyclesByTenant().add(tenant, sparseCycles);
        if (skipSymbols)
            skipSymbolsByTenant().add(tenant, skipSymbols);
        if (skipJumps)
            skipJumpsByTenant().add(tenant, skipJumps);
    }
};

} // namespace

const char *
opStatusName(OpStatus s)
{
    switch (s) {
    case OpStatus::Ok:
        return "ok";
    case OpStatus::UnknownTenant:
        return "unknown-tenant";
    case OpStatus::UnknownStream:
        return "unknown-stream";
    case OpStatus::StreamExists:
        return "stream-exists";
    case OpStatus::TooManyStreams:
        return "too-many-streams";
    }
    return "?";
}

/**
 * One stream of one tenant. Exactly one of {resident, parked, fresh}
 * holds: a resident stream has a live session attached; a parked one
 * carries its state in `snapshot`; a fresh one has consumed nothing
 * and materializes via restart() on first checkout. Streams are held
 * by shared_ptr so a caller blocked on `busy` can revalidate against
 * the table after waking instead of dereferencing a freed entry.
 */
struct MatchService::Stream
{
    uint64_t id = 0;      ///< table key (checkin re-finds the entry)
    bool fresh = true;    ///< never checked out; no snapshot yet
    bool resident = false;
    bool busy = false;    ///< checked out by some caller
    bool doomed = false;  ///< owner released while busy; destroy at checkin
    std::unique_ptr<EngineSession> session; ///< when resident
    EngineSession::Snapshot snapshot;       ///< when parked
    uint64_t snapshotBytes = 0;
    uint64_t offset = 0; ///< mirror of the session offset while parked
    uint64_t lru = 0;    ///< last-checkout tick (park order)
    uint64_t owner = 0;  ///< connection tag for releaseOwner()
};

struct MatchService::Tenant
{
    std::string name;
    std::shared_ptr<const FlatAutomaton> fa;
    SessionConfig session;
    std::unordered_map<uint64_t, std::shared_ptr<Stream>> streams;
    /** Idle sessions kept for reuse (allocation recycling). */
    std::vector<std::unique_ptr<EngineSession>> pool;
};

MatchService::MatchService(MatchServiceConfig config) : config_(config) {}

MatchService::~MatchService() = default;

void
MatchService::addTenant(const std::string &name,
                        std::shared_ptr<const FlatAutomaton> fa,
                        SessionConfig session)
{
    SPARSEAP_ASSERT(fa != nullptr, "tenant automaton must be non-null");
    std::lock_guard<std::mutex> lock(mutex_);
    auto t = std::make_unique<Tenant>();
    t->name = name;
    t->fa = std::move(fa);
    t->session = session;
    tenants_[name] = std::move(t);
}

bool
MatchService::hasTenant(const std::string &name) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return tenants_.count(name) != 0;
}

std::vector<TenantInfo>
MatchService::tenants() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<TenantInfo> out;
    out.reserve(tenants_.size());
    for (const auto &[name, t] : tenants_)
        out.push_back({name, t->fa->size(), t->streams.size()});
    return out;
}

MatchService::Tenant *
MatchService::findTenant(const std::string &name)
{
    auto it = tenants_.find(name);
    return it == tenants_.end() ? nullptr : it->second.get();
}

const MatchService::Tenant *
MatchService::findTenant(const std::string &name) const
{
    auto it = tenants_.find(name);
    return it == tenants_.end() ? nullptr : it->second.get();
}

std::unique_ptr<EngineSession>
MatchService::takeSessionLocked(Tenant *tenant)
{
    if (!tenant->pool.empty()) {
        std::unique_ptr<EngineSession> s =
            std::move(tenant->pool.back());
        tenant->pool.pop_back();
        return s;
    }
    return std::make_unique<EngineSession>(*tenant->fa,
                                           tenant->session);
}

void
MatchService::recycleSessionLocked(Tenant *tenant,
                                   std::unique_ptr<EngineSession> session)
{
    if (tenant->pool.size() < config_.sessionPoolSize)
        tenant->pool.push_back(std::move(session));
    // else: dropped; the pool bounds idle engine memory per tenant.
}

void
MatchService::publishGaugesLocked()
{
    size_t open = 0;
    for (const auto &[name, t] : tenants_) {
        open += t->streams.size();
        if (config_.tenantMetrics) {
            uint64_t parked = 0;
            for (const auto &[id, s] : t->streams)
                parked += s->snapshotBytes;
            parkedBytesByTenant().set(name, parked);
        }
    }
    activeStreamsGauge().set(static_cast<int64_t>(open));
    residentGauge().set(static_cast<int64_t>(resident_count_));
    parkedGauge().set(
        static_cast<int64_t>(open >= resident_count_
                                 ? open - resident_count_
                                 : 0));
    parkedBytesGauge().set(static_cast<int64_t>(parked_bytes_));
}

OpStatus
MatchService::open(const std::string &tenant_name, uint64_t stream_id,
                   uint64_t owner)
{
    std::lock_guard<std::mutex> lock(mutex_);
    Tenant *t = findTenant(tenant_name);
    if (t == nullptr)
        return OpStatus::UnknownTenant;
    if (t->streams.count(stream_id))
        return OpStatus::StreamExists;
    if (t->streams.size() >= config_.maxStreamsPerTenant)
        return OpStatus::TooManyStreams;
    auto stream = std::make_shared<Stream>();
    stream->id = stream_id;
    stream->owner = owner;
    t->streams.emplace(stream_id, std::move(stream));
    ++stats_.streamsOpened;
    publishGaugesLocked();
    return OpStatus::Ok;
}

void
MatchService::checkoutLocked(std::unique_lock<std::mutex> *lock,
                             Tenant *tenant, Stream *stream)
{
    while (stream->busy)
        busy_cv_.wait(*lock);

    if (!stream->resident) {
        std::unique_ptr<EngineSession> session =
            takeSessionLocked(tenant);
        if (stream->fresh) {
            session->restart();
            stream->fresh = false;
        } else {
            session->resume(stream->snapshot);
            stream->snapshot = EngineSession::Snapshot{};
            parked_bytes_ -= stream->snapshotBytes;
            stream->snapshotBytes = 0;
            ++stats_.resumes;
            resumesCounter().add(1);
        }
        stream->session = std::move(session);
        stream->resident = true;
        ++resident_count_;
    }
    stream->busy = true;
    stream->lru = ++lru_clock_;
}

void
MatchService::parkLocked(Tenant *tenant, Stream *stream)
{
    stream->snapshot = stream->session->suspend();
    stream->snapshotBytes = stream->snapshot.byteSize();
    stream->offset = stream->session->offset();
    parked_bytes_ += stream->snapshotBytes;
    recycleSessionLocked(tenant, std::move(stream->session));
    stream->resident = false;
    --resident_count_;
    ++stats_.parks;
    parksCounter().add(1);
}

void
MatchService::enforceBudgetLocked()
{
    // Linear LRU scan over the session table: parking happens at most
    // once per feed past the budget, and the table is small relative
    // to the work a feed does; a heap would only matter at stream
    // counts where the snapshots themselves dominate memory.
    while (resident_count_ > config_.residentSessions) {
        Tenant *victim_tenant = nullptr;
        Stream *victim = nullptr;
        for (const auto &[name, t] : tenants_) {
            for (const auto &[id, s] : t->streams) {
                if (!s->resident || s->busy)
                    continue;
                if (victim == nullptr || s->lru < victim->lru) {
                    victim = s.get();
                    victim_tenant = t.get();
                }
            }
        }
        if (victim == nullptr)
            break; // everything resident is busy; retry next checkin
        parkLocked(victim_tenant, victim);
    }
}

void
MatchService::destroyStreamLocked(Tenant *tenant, uint64_t stream_id,
                                  Stream *stream)
{
    if (stream->resident) {
        recycleSessionLocked(tenant, std::move(stream->session));
        stream->resident = false;
        --resident_count_;
    } else if (!stream->fresh) {
        parked_bytes_ -= stream->snapshotBytes;
    }
    tenant->streams.erase(stream_id);
    ++stats_.streamsClosed;
}

void
MatchService::checkinLocked(Tenant *tenant, Stream *stream)
{
    stream->busy = false;
    if (stream->resident)
        stream->offset = stream->session->offset();

    // A close() or releaseOwner() can win the busy-wait race and erase
    // the table entry between this caller's checkout wait and its wake;
    // the shared_ptr keeps the Stream alive, but the resident session
    // must be detached here or the budget leaks a ghost forever.
    auto it = tenant->streams.find(stream->id);
    const bool in_table =
        it != tenant->streams.end() && it->second.get() == stream;
    if (!in_table) {
        if (stream->resident) {
            recycleSessionLocked(tenant, std::move(stream->session));
            stream->resident = false;
            --resident_count_;
        }
    } else if (stream->doomed) {
        // Owner disconnected while the feed ran; destroy at checkin.
        destroyStreamLocked(tenant, stream->id, stream);
    }
    enforceBudgetLocked();
    publishGaugesLocked();
    busy_cv_.notify_all();
}

OpStatus
MatchService::feed(const std::string &tenant_name, uint64_t stream_id,
                   std::span<const uint8_t> chunk, ReportGroup *out)
{
    std::shared_ptr<Stream> stream;
    Tenant *t = nullptr;
    {
        telemetry::RequestSpanScope checkout_span("service.checkout");
        std::unique_lock<std::mutex> lock(mutex_);
        t = findTenant(tenant_name);
        if (t == nullptr)
            return OpStatus::UnknownTenant;
        auto it = t->streams.find(stream_id);
        if (it == t->streams.end())
            return OpStatus::UnknownStream;
        stream = it->second;
        checkoutLocked(&lock, t, stream.get());
        // Revalidate: the stream may have been closed or swept while
        // this caller waited on the busy flag.
        auto again = t->streams.find(stream_id);
        if (again == t->streams.end() || again->second != stream) {
            checkinLocked(t, stream.get());
            return OpStatus::UnknownStream;
        }
    }

    if (config_.debugFeedDelayMicros != 0)
        std::this_thread::sleep_for(
            std::chrono::microseconds(config_.debugFeedDelayMicros));

    const SessionStats before = stream->session->stats();
    {
        telemetry::RequestSpanScope feed_span("session.feed");
        stream->session->feed(chunk);
    }
    out->streamId = stream_id;
    out->streamOffset = stream->session->offset();
    out->reports = stream->session->takeReports();
    if (config_.tenantMetrics) {
        TenantFold fold;
        fold.feeds = 1;
        fold.bytes = chunk.size();
        fold.addDelta(before, stream->session->stats(),
                      *stream->session);
        fold.publish(tenant_name);
    }

    {
        std::lock_guard<std::mutex> lock(mutex_);
        ++stats_.feeds;
        stats_.fedBytes += chunk.size();
        feedsCounter().add(1);
        fedBytesCounter().add(chunk.size());
        checkinLocked(t, stream.get());
    }
    return OpStatus::Ok;
}

OpStatus
MatchService::feedMany(const std::string &tenant_name,
                       std::span<const FeedEntry> entries,
                       std::vector<ReportGroup> *out)
{
    out->clear();
    if (entries.empty())
        return OpStatus::Ok;

    // Duplicate stream ids degrade to ordered single feeds (the fused
    // path advances each participating stream exactly once).
    std::vector<uint64_t> ids;
    ids.reserve(entries.size());
    for (const FeedEntry &e : entries)
        ids.push_back(e.streamId);
    std::sort(ids.begin(), ids.end());
    const bool has_dup =
        std::adjacent_find(ids.begin(), ids.end()) != ids.end();
    if (has_dup) {
        out->resize(entries.size());
        for (size_t i = 0; i < entries.size(); ++i) {
            const OpStatus st = feed(tenant_name, entries[i].streamId,
                                     entries[i].chunk, &(*out)[i]);
            if (st != OpStatus::Ok)
                return st;
        }
        return OpStatus::Ok;
    }

    Tenant *t = nullptr;
    std::vector<std::shared_ptr<Stream>> streams(entries.size());
    {
        std::unique_lock<std::mutex> lock(mutex_);
        t = findTenant(tenant_name);
        if (t == nullptr)
            return OpStatus::UnknownTenant;
        for (const FeedEntry &e : entries)
            if (!t->streams.count(e.streamId))
                return OpStatus::UnknownStream;
        // Checkout in ascending id order: concurrent feedMany calls
        // acquiring overlapping stream sets can't deadlock on each
        // other's busy flags.
        for (uint64_t id : ids) {
            const size_t slot =
                static_cast<size_t>(std::find_if(
                                        entries.begin(), entries.end(),
                                        [&](const FeedEntry &e) {
                                            return e.streamId == id;
                                        }) -
                                    entries.begin());
            auto it = t->streams.find(id);
            bool gone = it == t->streams.end();
            if (!gone) {
                streams[slot] = it->second;
                checkoutLocked(&lock, t, streams[slot].get());
                auto again = t->streams.find(id);
                gone = again == t->streams.end() ||
                       again->second != streams[slot];
            }
            if (gone) {
                // Swept while a checkout waited: release everything
                // this call holds (a non-null slot is one it checked
                // out, so its busy flag is ours) and fail.
                for (size_t k = 0; k < entries.size(); ++k)
                    if (streams[k])
                        checkinLocked(t, streams[k].get());
                return OpStatus::UnknownStream;
            }
        }
    }

    if (config_.debugFeedDelayMicros != 0)
        std::this_thread::sleep_for(
            std::chrono::microseconds(config_.debugFeedDelayMicros));

    std::vector<SessionStats> before;
    if (config_.tenantMetrics) {
        before.reserve(entries.size());
        for (const std::shared_ptr<Stream> &s : streams)
            before.push_back(s->session->stats());
    }

    // Partition into the fused DFA cohort and individual feeds. The
    // cohort shares one interleaved table walk (EngineSession::
    // feedFused); everyone else advances through the ordinary path.
    telemetry::RequestSpanScope feed_span("service.feed_many");
    std::vector<EngineSession *> fused_sessions;
    std::vector<std::span<const uint8_t>> fused_chunks;
    std::vector<size_t> fused_slots;
    for (size_t i = 0; i < entries.size(); ++i) {
        if (streams[i]->session->dfaPhase()) {
            fused_sessions.push_back(streams[i]->session.get());
            fused_chunks.push_back(entries[i].chunk);
            fused_slots.push_back(i);
        }
    }
    if (fused_sessions.size() >= 2) {
        EngineSession::feedFused(
            std::span<EngineSession *const>(fused_sessions),
            std::span<const std::span<const uint8_t>>(fused_chunks));
    } else {
        fused_slots.clear();
    }
    for (size_t i = 0; i < entries.size(); ++i) {
        const bool in_fused =
            std::find(fused_slots.begin(), fused_slots.end(), i) !=
            fused_slots.end();
        if (!in_fused)
            streams[i]->session->feed(entries[i].chunk);
    }

    out->resize(entries.size());
    uint64_t bytes = 0;
    for (size_t i = 0; i < entries.size(); ++i) {
        ReportGroup &g = (*out)[i];
        g.streamId = entries[i].streamId;
        g.streamOffset = streams[i]->session->offset();
        g.reports = streams[i]->session->takeReports();
        bytes += entries[i].chunk.size();
    }

    if (config_.tenantMetrics) {
        TenantFold fold;
        fold.feeds = entries.size();
        fold.bytes = bytes;
        for (size_t i = 0; i < entries.size(); ++i)
            fold.addDelta(before[i], streams[i]->session->stats(),
                          *streams[i]->session);
        fold.publish(tenant_name);
    }

    {
        std::lock_guard<std::mutex> lock(mutex_);
        stats_.feeds += entries.size();
        stats_.fedBytes += bytes;
        if (!fused_slots.empty())
            ++stats_.fusedFeeds;
        feedsCounter().add(entries.size());
        fedBytesCounter().add(bytes);
        for (size_t i = 0; i < entries.size(); ++i)
            checkinLocked(t, streams[i].get());
    }
    return OpStatus::Ok;
}

OpStatus
MatchService::close(const std::string &tenant_name, uint64_t stream_id,
                    ReportGroup *out)
{
    std::unique_lock<std::mutex> lock(mutex_);
    Tenant *t = findTenant(tenant_name);
    if (t == nullptr)
        return OpStatus::UnknownTenant;
    auto it = t->streams.find(stream_id);
    if (it == t->streams.end())
        return OpStatus::UnknownStream;
    std::shared_ptr<Stream> stream = it->second;

    while (stream->busy)
        busy_cv_.wait(lock);
    auto again = t->streams.find(stream_id);
    if (again == t->streams.end() || again->second != stream)
        return OpStatus::UnknownStream;

    out->streamId = stream_id;
    if (stream->resident) {
        out->streamOffset = stream->session->offset();
        out->reports = stream->session->takeReports();
    } else {
        // Parked (or fresh) streams have no undrained reports — every
        // feed drains before a suspend.
        out->streamOffset = stream->offset;
        out->reports.clear();
    }
    destroyStreamLocked(t, stream_id, stream.get());
    publishGaugesLocked();
    busy_cv_.notify_all();
    return OpStatus::Ok;
}

OpStatus
MatchService::matchOneShot(const std::string &tenant_name,
                           std::span<const uint8_t> input,
                           ReportGroup *out)
{
    Tenant *t = nullptr;
    std::unique_ptr<EngineSession> session;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        t = findTenant(tenant_name);
        if (t == nullptr)
            return OpStatus::UnknownTenant;
        session = takeSessionLocked(t);
    }

    session->restart();
    {
        telemetry::RequestSpanScope feed_span("session.match");
        session->feed(input);
    }
    out->streamId = 0;
    out->streamOffset = session->offset();
    out->reports = session->takeReports();
    if (config_.tenantMetrics) {
        TenantFold fold;
        fold.feeds = 1;
        fold.bytes = input.size();
        // restart() zeroed the stats, so the run *is* the delta.
        fold.addDelta(SessionStats{}, session->stats(), *session);
        fold.publish(tenant_name);
    }

    {
        std::lock_guard<std::mutex> lock(mutex_);
        ++stats_.feeds;
        stats_.fedBytes += input.size();
        feedsCounter().add(1);
        fedBytesCounter().add(input.size());
        recycleSessionLocked(t, std::move(session));
    }
    return OpStatus::Ok;
}

OpStatus
MatchService::matchBatch(const std::string &tenant_name,
                         std::span<const std::span<const uint8_t>> inputs,
                         std::vector<ReportGroup> *out)
{
    const FlatAutomaton *fa = nullptr;
    SessionConfig config;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        const Tenant *t = findTenant(tenant_name);
        if (t == nullptr)
            return OpStatus::UnknownTenant;
        fa = t->fa.get();
        config = t->session;
    }

    StreamBatchRunner runner(*fa, config);
    std::vector<StreamResult> results;
    {
        telemetry::RequestSpanScope batch_span("session.match_batch");
        results = runner.run(inputs);
    }

    out->clear();
    out->resize(results.size());
    uint64_t bytes = 0;
    TenantFold fold;
    for (size_t i = 0; i < results.size(); ++i) {
        (*out)[i].streamId = i;
        (*out)[i].streamOffset = results[i].stats.cycles;
        (*out)[i].reports = std::move(results[i].reports);
        bytes += inputs[i].size();
        fold.addRun(results[i].stats);
    }
    if (config_.tenantMetrics) {
        fold.feeds = results.size();
        fold.bytes = bytes;
        fold.publish(tenant_name);
    }

    {
        std::lock_guard<std::mutex> lock(mutex_);
        stats_.feeds += results.size();
        stats_.fedBytes += bytes;
        feedsCounter().add(results.size());
        fedBytesCounter().add(bytes);
    }
    return OpStatus::Ok;
}

size_t
MatchService::releaseOwner(uint64_t owner)
{
    std::lock_guard<std::mutex> lock(mutex_);
    size_t dropped = 0;
    for (const auto &[name, t] : tenants_) {
        for (auto it = t->streams.begin(); it != t->streams.end();) {
            Stream *s = it->second.get();
            if (s->owner != owner) {
                ++it;
                continue;
            }
            if (s->busy) {
                // A worker is mid-feed; it destroys the stream at
                // checkin (the doomed flag) so the session can't leak.
                s->doomed = true;
                ++it;
                ++dropped;
                continue;
            }
            const uint64_t id = it->first;
            ++it; // destroyStreamLocked erases `id`
            destroyStreamLocked(t.get(), id, s);
            ++dropped;
        }
    }
    publishGaugesLocked();
    busy_cv_.notify_all();
    return dropped;
}

size_t
MatchService::openStreamCount() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    size_t open = 0;
    for (const auto &[name, t] : tenants_)
        open += t->streams.size();
    return open;
}

ServiceStats
MatchService::stats() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    ServiceStats s = stats_;
    size_t open = 0;
    for (const auto &[name, t] : tenants_)
        open += t->streams.size();
    s.activeStreams = open;
    s.residentSessions = resident_count_;
    s.parkedSessions =
        open >= resident_count_ ? open - resident_count_ : 0;
    s.parkedBytes = parked_bytes_;
    return s;
}

} // namespace serve
} // namespace sparseap
