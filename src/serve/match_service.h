/**
 * @file
 * Multi-tenant streaming match service core.
 *
 * MatchService is the transport-free heart of the apserved daemon (and
 * directly usable in process): it owns a tenant→automaton registry and
 * a session table of streams keyed by (tenant, stream id), where each
 * stream is a suspendable EngineSession mid-flight through its input.
 *
 * The scaling premise mirrors the paper's context-switch concern: the
 * number of concurrent streams must not be limited by live engine
 * memory. A live EngineSession owns scratch state sized to the
 * automaton (dense word vectors, sparse lists); a *parked* stream is
 * just an EngineSession::Snapshot — a few hundred bytes of live-set
 * state. The service keeps at most `residentSessions` live sessions
 * (LRU across all tenants) and suspend()s the rest into snapshots,
 * resuming byte-identically on the next feed. Eviction accounting uses
 * Snapshot::byteSize(), so `serve.parked_bytes` is exact.
 *
 * Feeds for one stream are serialized (concurrent callers queue on the
 * stream's busy flag); feeds for different streams run concurrently —
 * the service mutex covers only table bookkeeping, never execution.
 * feedMany() additionally routes same-phase DFA streams of one tenant
 * through EngineSession::feedFused, the lane trick StreamBatchRunner
 * uses, so a batched request over N streams pays one interleaved table
 * walk instead of N dependent-load chains. matchBatch() (one-shot
 * inputs, no session table) rides StreamBatchRunner itself.
 *
 * Every operation returns reports drained from the session — a parked
 * stream never carries undelivered reports, which is what makes the
 * snapshot small and the suspend/resume cycle invisible to clients.
 *
 * See docs/SERVING.md; tested by tests/test_match_service.cc.
 */

#ifndef SPARSEAP_SERVE_MATCH_SERVICE_H
#define SPARSEAP_SERVE_MATCH_SERVICE_H

#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "serve/protocol.h"
#include "sim/session.h"

namespace sparseap {
namespace serve {

/** Outcome of a table operation (mapped to protocol ErrorCode). */
enum class OpStatus {
    Ok,
    UnknownTenant,
    UnknownStream,
    StreamExists,
    TooManyStreams,
};

/** @return a human-readable name ("ok", "unknown-tenant", ...). */
const char *opStatusName(OpStatus s);

struct MatchServiceConfig
{
    /**
     * Live-EngineSession budget across all tenants; least-recently-fed
     * streams beyond it are parked to snapshots. Streams busy in a
     * feed are never parked, so the live count can transiently exceed
     * the budget under high concurrency.
     */
    size_t residentSessions = 64;
    /** Open-stream cap per tenant (admission-independent hard cap). */
    size_t maxStreamsPerTenant = 4096;
    /** Reusable idle sessions kept per tenant (allocation recycling). */
    size_t sessionPoolSize = 8;
    /**
     * Fold per-tenant serve.* attribution (feeds, bytes, engine-phase
     * cycles, input-skip) into bounded labeled series at feed checkin.
     * Off = the service touches only the unlabeled counters.
     */
    bool tenantMetrics = true;
    /**
     * Test hook: stall every feed()/feedMany() by this long before
     * executing, so slow-request capture is testable without a giant
     * input. 0 in any real configuration.
     */
    uint64_t debugFeedDelayMicros = 0;
};

/** Registry row returned by tenants(). */
struct TenantInfo
{
    std::string name;
    size_t states = 0;        ///< automaton size
    size_t activeStreams = 0; ///< open streams right now
};

/** Point-in-time service counters (all monotonically derived). */
struct ServiceStats
{
    uint64_t activeStreams = 0;
    uint64_t residentSessions = 0;
    uint64_t parkedSessions = 0;
    uint64_t parkedBytes = 0;
    uint64_t streamsOpened = 0;
    uint64_t streamsClosed = 0;
    uint64_t feeds = 0;
    uint64_t fedBytes = 0;
    uint64_t parks = 0;
    uint64_t resumes = 0;
    uint64_t fusedFeeds = 0;
};

/** Multi-tenant session table over shared automata (see file comment). */
class MatchService
{
  public:
    explicit MatchService(MatchServiceConfig config = {});
    ~MatchService();

    MatchService(const MatchService &) = delete;
    MatchService &operator=(const MatchService &) = delete;

    /**
     * Register @p name over @p fa. The automaton is shared by every
     * stream of the tenant (and typically mmap-backed by the artifact
     * store). @p session carries the per-stream engine configuration;
     * the default (auto core, all-bytes alphabet) is correct for
     * streams whose byte distribution is unknown up front.
     */
    void addTenant(const std::string &name,
                   std::shared_ptr<const FlatAutomaton> fa,
                   SessionConfig session = {});

    bool hasTenant(const std::string &name) const;

    std::vector<TenantInfo> tenants() const;

    /**
     * Create stream @p streamId for @p tenant, parked at offset 0.
     * @p owner tags the stream (the daemon passes the connection id)
     * so releaseOwner() can sweep a disconnected client's streams.
     */
    OpStatus open(const std::string &tenant, uint64_t streamId,
                  uint64_t owner = 0);

    /**
     * Advance one stream by @p chunk; @p out receives the drained
     * reports (positions are global stream offsets) and the stream's
     * new offset. Feeds for one stream serialize in caller order;
     * feeds for different streams run concurrently.
     */
    OpStatus feed(const std::string &tenant, uint64_t streamId,
                  std::span<const uint8_t> chunk, ReportGroup *out);

    /**
     * Advance several streams of one tenant in one call. Streams in
     * the DFA phase advance together through the fused interleave;
     * the rest feed individually. @p out gets one group per entry, in
     * entry order. Entries naming the same stream twice are fed in
     * order. Any entry with an unknown stream id fails the whole call
     * before any bytes are consumed.
     */
    OpStatus feedMany(const std::string &tenant,
                      std::span<const FeedEntry> entries,
                      std::vector<ReportGroup> *out);

    /**
     * Destroy a stream, returning any reports not yet drained (none
     * unless the last feed's output was lost) and the final offset.
     */
    OpStatus close(const std::string &tenant, uint64_t streamId,
                   ReportGroup *out);

    /** One-shot whole-input match through a pooled session. */
    OpStatus matchOneShot(const std::string &tenant,
                          std::span<const uint8_t> input,
                          ReportGroup *out);

    /**
     * One-shot batch over StreamBatchRunner (lane rotation + fused DFA
     * interleave); out[i] belongs to inputs[i], streamId = i.
     */
    OpStatus matchBatch(const std::string &tenant,
                        std::span<const std::span<const uint8_t>> inputs,
                        std::vector<ReportGroup> *out);

    /**
     * Drop every stream opened under @p owner (client disconnect).
     * Streams busy in a feed are swept as soon as the feed finishes.
     * @return streams dropped
     */
    size_t releaseOwner(uint64_t owner);

    /** Open streams across all tenants. */
    size_t openStreamCount() const;

    ServiceStats stats() const;

    const MatchServiceConfig &config() const { return config_; }

  private:
    struct Stream;
    struct Tenant;

    Tenant *findTenant(const std::string &name);
    const Tenant *findTenant(const std::string &name) const;

    /**
     * Make @p stream resident and mark it busy, resuming its snapshot
     * into a (pooled or fresh) session. Blocks while another caller
     * has it busy. Caller holds the lock; the lock is released and
     * reacquired across the wait.
     */
    void checkoutLocked(std::unique_lock<std::mutex> *lock,
                        Tenant *tenant, Stream *stream);

    /** Return a busy stream to the table and enforce the budget. */
    void checkinLocked(Tenant *tenant, Stream *stream);

    /** Park LRU idle residents until the budget holds. */
    void enforceBudgetLocked();

    /** Park one stream (resident, idle): suspend + pool the session. */
    void parkLocked(Tenant *tenant, Stream *stream);

    void destroyStreamLocked(Tenant *tenant, uint64_t stream_id,
                             Stream *stream);

    std::unique_ptr<EngineSession> takeSessionLocked(Tenant *tenant);
    void recycleSessionLocked(Tenant *tenant,
                              std::unique_ptr<EngineSession> session);

    void publishGaugesLocked();

    MatchServiceConfig config_;

    mutable std::mutex mutex_;
    std::condition_variable busy_cv_;
    /** Ordered map: tenants() and stats listings are deterministic. */
    std::map<std::string, std::unique_ptr<Tenant>> tenants_;
    uint64_t lru_clock_ = 0;
    size_t resident_count_ = 0;
    uint64_t parked_bytes_ = 0;

    ServiceStats stats_;
};

} // namespace serve
} // namespace sparseap

#endif // SPARSEAP_SERVE_MATCH_SERVICE_H
