#include "serve/protocol.h"

#include <cstring>

namespace sparseap {
namespace serve {

bool
isRequestType(uint8_t type)
{
    switch (static_cast<MsgType>(type)) {
    case MsgType::Hello:
    case MsgType::Open:
    case MsgType::Feed:
    case MsgType::Close:
    case MsgType::Match:
    case MsgType::Stats:
    case MsgType::Ping:
        return true;
    default:
        return false;
    }
}

const char *
msgTypeName(uint8_t type)
{
    switch (static_cast<MsgType>(type)) {
    case MsgType::Hello:
        return "Hello";
    case MsgType::Open:
        return "Open";
    case MsgType::Feed:
        return "Feed";
    case MsgType::Close:
        return "Close";
    case MsgType::Match:
        return "Match";
    case MsgType::Stats:
        return "Stats";
    case MsgType::Ping:
        return "Ping";
    case MsgType::Ok:
        return "Ok";
    case MsgType::Reports:
        return "Reports";
    case MsgType::StatsReply:
        return "StatsReply";
    case MsgType::Error:
        return "Error";
    case MsgType::Overload:
        return "Overload";
    case MsgType::Retry:
        return "Retry";
    }
    return "?";
}

// ------------------------------------------------------------ writing --

void
WireWriter::u16(uint16_t v)
{
    out_->push_back(static_cast<uint8_t>(v));
    out_->push_back(static_cast<uint8_t>(v >> 8));
}

void
WireWriter::u32(uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        out_->push_back(static_cast<uint8_t>(v >> (8 * i)));
}

void
WireWriter::u64(uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        out_->push_back(static_cast<uint8_t>(v >> (8 * i)));
}

void
WireWriter::str(const std::string &s)
{
    const size_t n = std::min<size_t>(s.size(), 0xffff);
    u16(static_cast<uint16_t>(n));
    out_->insert(out_->end(), s.begin(), s.begin() + n);
}

void
WireWriter::bytes(std::span<const uint8_t> b)
{
    out_->insert(out_->end(), b.begin(), b.end());
}

void
appendFrame(std::vector<uint8_t> *out, MsgType type, uint16_t flags,
            uint64_t request_id, std::span<const uint8_t> payload)
{
    const uint32_t len =
        kFrameHeaderBytes + static_cast<uint32_t>(payload.size());
    WireWriter w(out);
    w.u32(len);
    w.u8(kProtocolVersion);
    w.u8(static_cast<uint8_t>(type));
    w.u16(flags);
    w.u64(request_id);
    w.bytes(payload);
}

// ------------------------------------------------------------ reading --

uint8_t
WireReader::u8()
{
    if (!ok_ || data_.size() - pos_ < 1) {
        ok_ = false;
        return 0;
    }
    return data_[pos_++];
}

uint16_t
WireReader::u16()
{
    if (!ok_ || data_.size() - pos_ < 2) {
        ok_ = false;
        return 0;
    }
    const uint16_t v = static_cast<uint16_t>(
        data_[pos_] | (static_cast<uint16_t>(data_[pos_ + 1]) << 8));
    pos_ += 2;
    return v;
}

uint32_t
WireReader::u32()
{
    if (!ok_ || data_.size() - pos_ < 4) {
        ok_ = false;
        return 0;
    }
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
        v |= static_cast<uint32_t>(data_[pos_ + i]) << (8 * i);
    pos_ += 4;
    return v;
}

uint64_t
WireReader::u64()
{
    if (!ok_ || data_.size() - pos_ < 8) {
        ok_ = false;
        return 0;
    }
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
        v |= static_cast<uint64_t>(data_[pos_ + i]) << (8 * i);
    pos_ += 8;
    return v;
}

std::string
WireReader::str()
{
    const uint16_t n = u16();
    if (!ok_ || data_.size() - pos_ < n) {
        ok_ = false;
        return {};
    }
    std::string s(reinterpret_cast<const char *>(data_.data() + pos_), n);
    pos_ += n;
    return s;
}

std::span<const uint8_t>
WireReader::bytes(size_t n)
{
    if (!ok_ || data_.size() - pos_ < n) {
        ok_ = false;
        return {};
    }
    const std::span<const uint8_t> b = data_.subspan(pos_, n);
    pos_ += n;
    return b;
}

void
FrameReader::append(std::span<const uint8_t> data)
{
    if (corrupt_)
        return; // the stream is dead; don't buffer more
    buf_.insert(buf_.end(), data.begin(), data.end());
}

void
FrameReader::compact()
{
    // Reclaim consumed bytes once they dominate the buffer, keeping
    // append() amortized O(1) without unbounded growth.
    if (pos_ > 4096 && pos_ > buf_.size() / 2) {
        buf_.erase(buf_.begin(),
                   buf_.begin() + static_cast<ptrdiff_t>(pos_));
        pos_ = 0;
    }
}

FrameReader::Status
FrameReader::next(Frame *out, std::string *error)
{
    if (corrupt_) {
        if (error)
            *error = corrupt_reason_;
        return Status::Corrupt;
    }
    const size_t avail = buf_.size() - pos_;
    if (avail < 4)
        return Status::NeedMore;

    uint32_t len = 0;
    std::memcpy(&len, buf_.data() + pos_, 4);
    if (len < kFrameHeaderBytes || len > kMaxFrameBytes) {
        corrupt_ = true;
        corrupt_reason_ = "bad frame length " + std::to_string(len);
        if (error)
            *error = corrupt_reason_;
        return Status::Corrupt;
    }
    if (avail < 4u + len)
        return Status::NeedMore;

    WireReader r({buf_.data() + pos_ + 4, len});
    out->version = r.u8();
    out->type = r.u8();
    out->flags = r.u16();
    out->requestId = r.u64();
    const std::span<const uint8_t> payload =
        r.bytes(len - kFrameHeaderBytes);
    out->payload.assign(payload.begin(), payload.end());
    pos_ += 4u + len;
    compact();
    return Status::Ready;
}

// ----------------------------------------------------- typed payloads --

void
encodeStreamRequest(WireWriter *w, const StreamRequest &r)
{
    w->str(r.tenant);
    w->u64(r.streamId);
}

bool
decodeStreamRequest(WireReader *r, StreamRequest *out)
{
    out->tenant = r->str();
    out->streamId = r->u64();
    return r->done();
}

void
encodeFeedRequest(WireWriter *w, const FeedRequest &r)
{
    w->str(r.tenant);
    w->u32(static_cast<uint32_t>(r.entries.size()));
    for (const FeedEntry &e : r.entries) {
        w->u64(e.streamId);
        w->u32(static_cast<uint32_t>(e.chunk.size()));
        w->bytes(e.chunk);
    }
}

bool
decodeFeedRequest(WireReader *r, FeedRequest *out)
{
    out->tenant = r->str();
    const uint32_t n = r->u32();
    // Every entry costs at least 12 payload bytes, so a hostile count
    // can't drive a large reserve before the bounds checks trip.
    if (!r->ok() || static_cast<uint64_t>(n) * 12 > r->remaining())
        return false;
    out->entries.clear();
    out->entries.reserve(n);
    for (uint32_t i = 0; i < n; ++i) {
        FeedEntry e;
        e.streamId = r->u64();
        const uint32_t len = r->u32();
        e.chunk = r->bytes(len);
        if (!r->ok())
            return false;
        out->entries.push_back(e);
    }
    return r->done();
}

void
encodeMatchRequest(WireWriter *w, const MatchRequest &r)
{
    w->str(r.tenant);
    w->u32(static_cast<uint32_t>(r.input.size()));
    w->bytes(r.input);
}

bool
decodeMatchRequest(WireReader *r, MatchRequest *out)
{
    out->tenant = r->str();
    const uint32_t len = r->u32();
    out->input = r->bytes(len);
    return r->done();
}

void
encodeReportGroups(WireWriter *w, std::span<const ReportGroup> groups)
{
    w->u32(static_cast<uint32_t>(groups.size()));
    for (const ReportGroup &g : groups) {
        w->u64(g.streamId);
        w->u64(g.streamOffset);
        w->u32(static_cast<uint32_t>(g.reports.size()));
        for (const Report &rep : g.reports) {
            w->u64(rep.position);
            w->u32(rep.state);
        }
    }
}

bool
decodeReportGroups(WireReader *r, std::vector<ReportGroup> *out)
{
    const uint32_t n = r->u32();
    if (!r->ok() || static_cast<uint64_t>(n) * 20 > r->remaining())
        return false;
    out->clear();
    out->reserve(n);
    for (uint32_t i = 0; i < n; ++i) {
        ReportGroup g;
        g.streamId = r->u64();
        g.streamOffset = r->u64();
        const uint32_t count = r->u32();
        if (!r->ok() ||
            static_cast<uint64_t>(count) * 12 > r->remaining())
            return false;
        g.reports.reserve(count);
        for (uint32_t k = 0; k < count; ++k) {
            Report rep;
            rep.position = r->u64();
            rep.state = r->u32();
            g.reports.push_back(rep);
        }
        if (!r->ok())
            return false;
        out->push_back(std::move(g));
    }
    return r->done();
}

void
encodeError(WireWriter *w, const ErrorReply &e)
{
    w->u16(static_cast<uint16_t>(e.code));
    w->str(e.message);
}

bool
decodeError(WireReader *r, ErrorReply *out)
{
    out->code = static_cast<ErrorCode>(r->u16());
    out->message = r->str();
    return r->done();
}

void
encodeStatsReply(WireWriter *w, const StatsReply &s)
{
    w->u32(static_cast<uint32_t>(s.counters.size()));
    for (const auto &[key, value] : s.counters) {
        w->str(key);
        w->u64(value);
    }
    for (size_t h = 0; h < kStatsHorizons; ++h)
        w->u64(s.windowSpanMicros[h]);
    w->u32(static_cast<uint32_t>(s.windows.size()));
    for (const StatsWindowRow &row : s.windows) {
        w->str(row.name);
        for (size_t h = 0; h < kStatsHorizons; ++h)
            w->u64(row.milli[h]);
    }
}

bool
decodeStatsReply(WireReader *r, StatsReply *out)
{
    const uint32_t n = r->u32();
    if (!r->ok() || static_cast<uint64_t>(n) * 10 > r->remaining())
        return false;
    out->counters.clear();
    out->counters.reserve(n);
    for (uint32_t i = 0; i < n; ++i) {
        std::string key = r->str();
        const uint64_t value = r->u64();
        if (!r->ok())
            return false;
        out->counters.emplace_back(std::move(key), value);
    }
    out->windows.clear();
    for (size_t h = 0; h < kStatsHorizons; ++h)
        out->windowSpanMicros[h] = 0;
    // Pre-window encoders stop here; that is still a complete reply.
    if (r->remaining() == 0)
        return r->done();
    for (size_t h = 0; h < kStatsHorizons; ++h)
        out->windowSpanMicros[h] = r->u64();
    const uint32_t rows = r->u32();
    // Each row is at least a 2-byte string header + 3 u64 values.
    if (!r->ok() || rows > kMaxStatsWindowRows ||
        static_cast<uint64_t>(rows) * 26 > r->remaining())
        return false;
    out->windows.reserve(rows);
    for (uint32_t i = 0; i < rows; ++i) {
        StatsWindowRow row;
        row.name = r->str();
        for (size_t h = 0; h < kStatsHorizons; ++h)
            row.milli[h] = r->u64();
        if (!r->ok())
            return false;
        out->windows.push_back(std::move(row));
    }
    return r->done();
}

} // namespace serve
} // namespace sparseap
