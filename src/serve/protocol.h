/**
 * @file
 * Wire protocol of the streaming match service (apserved/apclient).
 *
 * Frames are length-prefixed binary records over a byte stream (a
 * Unix-domain socket in practice, any ordered transport in principle):
 *
 *   +---------+----------------------------------------------+
 *   | u32 len | u8 ver | u8 type | u16 flags | u64 requestId |
 *   +---------+----------------------------------------------+
 *   | payload (len - 12 bytes)                               |
 *   +--------------------------------------------------------+
 *
 * All integers are little-endian. `len` counts every byte after the
 * length field itself and is bounded by kMaxFrameBytes — an oversized
 * prefix is a protocol error and closes the connection (it is
 * indistinguishable from garbage; resynchronization inside a corrupt
 * byte stream is not attempted). `requestId` is chosen by the client
 * and echoed on every response frame, so responses can be streamed and
 * interleaved per connection; a response with the kFlagMore flag says
 * more frames for the same request follow (large report sets are
 * batched instead of building one giant frame).
 *
 * The codec layer here is transport-free and allocation-explicit:
 * encoders append to caller-owned buffers, FrameReader consumes raw
 * bytes incrementally and yields complete frames, and every decoder is
 * bounds-checked and total — malformed payloads return false, never
 * read out of range, and never abort. The protocol fuzz suite
 * (tests/test_serve_protocol.cc) drives truncations, oversized
 * prefixes, and random mutations through exactly this API.
 *
 * See docs/SERVING.md for the full message catalog and the overload
 * semantics (Overload vs Retry).
 */

#ifndef SPARSEAP_SERVE_PROTOCOL_H
#define SPARSEAP_SERVE_PROTOCOL_H

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "sim/report.h"

namespace sparseap {
namespace serve {

/** Protocol version; bumped on any frame-layout change. */
constexpr uint8_t kProtocolVersion = 1;

/** Frame header bytes after the length prefix. */
constexpr uint32_t kFrameHeaderBytes = 12;

/** Upper bound on `len` (header + payload). Chunks are capped well
 *  below this by servers; the reader rejects anything larger before
 *  buffering it. */
constexpr uint32_t kMaxFrameBytes = 16u << 20;

/** Report records per Reports frame before splitting with kFlagMore. */
constexpr size_t kMaxReportsPerFrame = 65536;

/** Message types. Requests are < 128, responses >= 128. */
enum class MsgType : uint8_t {
    // Requests.
    Hello = 1, ///< version handshake; empty payload
    Open = 2,  ///< tenant, streamId: create a parked stream
    Feed = 3,  ///< tenant, [streamId, chunk]...: advance streams
    Close = 4, ///< tenant, streamId: drain + destroy a stream
    Match = 5, ///< tenant, bytes: one-shot whole-input match
    Stats = 6, ///< empty: service + server counters
    Ping = 7,  ///< empty: liveness
    // Responses.
    Ok = 128,         ///< request succeeded, payload per request type
    Reports = 129,    ///< report groups (Feed/Close/Match results)
    StatsReply = 130, ///< key/value counter pairs
    Error = 131,      ///< ErrorCode + message
    Overload = 132,   ///< shed: admission queue full or deadline passed
    Retry = 133,      ///< shed: per-tenant in-flight cap reached
};

/** @return true for request-type values a server accepts. */
bool isRequestType(uint8_t type);

/** Response flags. */
constexpr uint16_t kFlagMore = 1; ///< more frames for this request

/** Error payload codes. */
enum class ErrorCode : uint16_t {
    BadFrame = 1,       ///< undecodable payload
    UnknownType = 2,    ///< request type the server does not speak
    BadVersion = 3,     ///< frame version != kProtocolVersion
    UnknownTenant = 4,  ///< no such tenant loaded
    UnknownStream = 5,  ///< stream id not open for this tenant
    StreamExists = 6,   ///< Open on an already-open stream id
    TooManyStreams = 7, ///< per-tenant or global open-stream cap
    Internal = 8,       ///< server-side failure
};

/** One parsed frame (header + owned payload copy). */
struct Frame
{
    uint8_t version = 0;
    uint8_t type = 0;
    uint16_t flags = 0;
    uint64_t requestId = 0;
    std::vector<uint8_t> payload;
};

// ------------------------------------------------------------ writing --

/**
 * Append one complete frame (length prefix included) to @p out.
 * @p payload may be empty.
 */
void appendFrame(std::vector<uint8_t> *out, MsgType type, uint16_t flags,
                 uint64_t request_id, std::span<const uint8_t> payload);

/** Payload builder: bounds-free little-endian appends. */
class WireWriter
{
  public:
    explicit WireWriter(std::vector<uint8_t> *out) : out_(out) {}

    void u8(uint8_t v) { out_->push_back(v); }
    void u16(uint16_t v);
    void u32(uint32_t v);
    void u64(uint64_t v);
    /** u16 length + raw bytes (strings are capped at 64 KiB - 1). */
    void str(const std::string &s);
    void bytes(std::span<const uint8_t> b);

  private:
    std::vector<uint8_t> *out_;
};

// ------------------------------------------------------------ reading --

/** Bounds-checked payload cursor; all reads are total. */
class WireReader
{
  public:
    explicit WireReader(std::span<const uint8_t> data) : data_(data) {}

    bool ok() const { return ok_; }
    /** True when every byte was consumed and no read failed. */
    bool done() const { return ok_ && pos_ == data_.size(); }
    size_t remaining() const { return ok_ ? data_.size() - pos_ : 0; }

    uint8_t u8();
    uint16_t u16();
    uint32_t u32();
    uint64_t u64();
    std::string str();
    /** @p n raw bytes as a view into the payload (empty on underrun). */
    std::span<const uint8_t> bytes(size_t n);

  private:
    std::span<const uint8_t> data_;
    size_t pos_ = 0;
    bool ok_ = true;
};

/**
 * Incremental frame parser: append() raw transport bytes, next() pulls
 * complete frames out. A structural error (oversized or undersized
 * length prefix) is sticky — the byte stream is unrecoverable and the
 * connection must be closed.
 */
class FrameReader
{
  public:
    enum class Status {
        NeedMore, ///< no complete frame buffered yet
        Ready,    ///< *out holds the next frame
        Corrupt,  ///< unrecoverable framing error; close the transport
    };

    void append(std::span<const uint8_t> data);

    Status next(Frame *out, std::string *error);

    /** Bytes buffered but not yet consumed as frames. */
    size_t buffered() const { return buf_.size() - pos_; }

  private:
    void compact();

    std::vector<uint8_t> buf_;
    size_t pos_ = 0;
    bool corrupt_ = false;
    std::string corrupt_reason_;
};

// ----------------------------------------------------- typed payloads --

/** Open / Close payload. */
struct StreamRequest
{
    std::string tenant;
    uint64_t streamId = 0;
};

/** One stream's chunk inside a Feed payload. */
struct FeedEntry
{
    uint64_t streamId = 0;
    /** View into the decoded frame's payload; valid while it lives. */
    std::span<const uint8_t> chunk;
};

/** Feed payload: one tenant, one or more streams. */
struct FeedRequest
{
    std::string tenant;
    std::vector<FeedEntry> entries;
};

/** Match payload. */
struct MatchRequest
{
    std::string tenant;
    std::span<const uint8_t> input;
};

/** One stream's slice of a Reports frame. */
struct ReportGroup
{
    uint64_t streamId = 0;
    /** Stream offset after the operation (total bytes consumed). */
    uint64_t streamOffset = 0;
    ReportList reports;
};

/** Error payload. */
struct ErrorReply
{
    ErrorCode code = ErrorCode::Internal;
    std::string message;
};

/** Rolling-window horizons reported by StatsReply (10s / 1m / 5m). */
constexpr size_t kStatsHorizons = 3;

/** Decoder guard: windowed rows per StatsReply. */
constexpr uint32_t kMaxStatsWindowRows = 4096;

/**
 * One windowed row of a StatsReply. Values are fixed-point (x1000),
 * one per horizon: per-second rates for counter rows (`serve.feeds`
 * => milli-feeds/s) and plain milli-units for derived rows
 * (`serve.request_p99_us` => milli-microseconds).
 */
struct StatsWindowRow
{
    std::string name;
    uint64_t milli[kStatsHorizons] = {0, 0, 0};
};

/**
 * StatsReply payload: flat counter map, then (optionally — old
 * encoders stop after the counters and decoders accept that) the
 * rolling-window section: per-horizon covered spans in micros (0 =
 * horizon has no data yet) and the windowed rows.
 */
struct StatsReply
{
    std::vector<std::pair<std::string, uint64_t>> counters;
    uint64_t windowSpanMicros[kStatsHorizons] = {0, 0, 0};
    std::vector<StatsWindowRow> windows;
};

void encodeStreamRequest(WireWriter *w, const StreamRequest &r);
bool decodeStreamRequest(WireReader *r, StreamRequest *out);

void encodeFeedRequest(WireWriter *w, const FeedRequest &r);
bool decodeFeedRequest(WireReader *r, FeedRequest *out);

void encodeMatchRequest(WireWriter *w, const MatchRequest &r);
bool decodeMatchRequest(WireReader *r, MatchRequest *out);

void encodeReportGroups(WireWriter *w,
                        std::span<const ReportGroup> groups);
bool decodeReportGroups(WireReader *r, std::vector<ReportGroup> *out);

void encodeError(WireWriter *w, const ErrorReply &e);
bool decodeError(WireReader *r, ErrorReply *out);

void encodeStatsReply(WireWriter *w, const StatsReply &s);
bool decodeStatsReply(WireReader *r, StatsReply *out);

/** @return "Open", "Reports", ... for logs and error messages. */
const char *msgTypeName(uint8_t type);

} // namespace serve
} // namespace sparseap

#endif // SPARSEAP_SERVE_PROTOCOL_H
