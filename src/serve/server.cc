#include "serve/server.h"

#include <cerrno>
#include <chrono>
#include <cstring>

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cmath>

#include "common/logging.h"
#include "telemetry/event_log.h"
#include "telemetry/exposition.h"
#include "telemetry/labels.h"
#include "telemetry/metrics.h"
#include "telemetry/request_trace.h"
#include "telemetry/trace.h"

namespace sparseap {
namespace serve {

namespace {

/** The trace timebase (telemetry::nowMicros), so request spans, log
 *  lines and latency math all share one clock. */
uint64_t
nowMicros()
{
    return telemetry::nowMicros();
}

telemetry::HistogramMetric &
latencyMetric()
{
    static telemetry::HistogramMetric h("serve.request_micros");
    return h;
}

// Per-tenant series on the serve.* family (bounded cardinality; see
// telemetry/labels.h). Leaked function-local singletons, same idiom as
// the registry cells they intern.
telemetry::LabeledCounter &
requestsByTenant()
{
    static auto &c = *new telemetry::LabeledCounter("serve.requests");
    return c;
}

telemetry::LabeledCounter &
shedsByTenant()
{
    static auto &c = *new telemetry::LabeledCounter("serve.sheds");
    return c;
}

telemetry::LabeledHistogram &
requestMicrosByTenant()
{
    static auto &h =
        *new telemetry::LabeledHistogram("serve.request_micros");
    return h;
}

telemetry::Counter &
watchdogTicks()
{
    static telemetry::Counter c("serve.watchdog.ticks");
    return c;
}

telemetry::Gauge &
watchdogStuckWorkers()
{
    static telemetry::Gauge g("serve.watchdog.stuck_workers");
    return g;
}

telemetry::Counter &
watchdogQueueStalls()
{
    static telemetry::Counter c("serve.watchdog.queue_stalls");
    return c;
}

bool
setNonBlocking(int fd)
{
    const int flags = ::fcntl(fd, F_GETFL, 0);
    return flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

/** Every request payload leads with the tenant string. */
std::string
peekTenant(std::span<const uint8_t> payload)
{
    WireReader r(payload);
    std::string tenant = r.str();
    return r.ok() ? tenant : std::string();
}

ErrorCode
toErrorCode(OpStatus s)
{
    switch (s) {
    case OpStatus::UnknownTenant:
        return ErrorCode::UnknownTenant;
    case OpStatus::UnknownStream:
        return ErrorCode::UnknownStream;
    case OpStatus::StreamExists:
        return ErrorCode::StreamExists;
    case OpStatus::TooManyStreams:
        return ErrorCode::TooManyStreams;
    case OpStatus::Ok:
        break;
    }
    return ErrorCode::Internal;
}

} // namespace

/** One accepted connection. Owned by the I/O thread's map; workers
 *  hold it via shared_ptr, so the fd closes with the last reference. */
struct Server::Conn
{
    int fd = -1;
    uint64_t id = 0;
    FrameReader reader;

    /** Guards backlog / inflight (I/O thread and workers both touch). */
    std::mutex mu;
    std::deque<Frame> backlog;
    bool inflight = false; ///< one admitted request is being executed
    bool dead = false;

    /** Serializes response writes (inline and worker paths). */
    std::mutex writeMu;

    ~Conn()
    {
        if (fd >= 0)
            ::close(fd);
    }
};

/** One admitted request riding the admission queue. */
struct Server::Work
{
    std::shared_ptr<Conn> conn;
    Frame frame;
    std::string tenant;
    uint64_t startMicros = 0; ///< frame receipt (latency origin)
    uint64_t serial = 0;      ///< server-side request id (tracing/logs)
};

Server::Server(MatchService *service, ServerConfig config)
    : service_(service), config_(std::move(config)),
      queue_(config_.admission)
{
}

Server::~Server() { stop(); }

bool
Server::start(std::string *error)
{
    SPARSEAP_ASSERT(!running_.load(), "server already started");

    listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (listen_fd_ < 0) {
        if (error)
            *error = std::string("socket: ") + std::strerror(errno);
        return false;
    }

    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (config_.socketPath.size() >= sizeof(addr.sun_path)) {
        if (error)
            *error = "socket path too long: " + config_.socketPath;
        ::close(listen_fd_);
        listen_fd_ = -1;
        return false;
    }
    std::strncpy(addr.sun_path, config_.socketPath.c_str(),
                 sizeof(addr.sun_path) - 1);
    ::unlink(config_.socketPath.c_str());
    if (::bind(listen_fd_, reinterpret_cast<sockaddr *>(&addr),
               sizeof(addr)) != 0 ||
        ::listen(listen_fd_, 64) != 0 || !setNonBlocking(listen_fd_)) {
        if (error)
            *error = std::string("bind/listen ") + config_.socketPath +
                     ": " + std::strerror(errno);
        ::close(listen_fd_);
        listen_fd_ = -1;
        return false;
    }

    if (::pipe2(wake_fds_, O_CLOEXEC | O_NONBLOCK) != 0) {
        if (error)
            *error = std::string("pipe: ") + std::strerror(errno);
        ::close(listen_fd_);
        listen_fd_ = -1;
        return false;
    }

    running_.store(true);
    io_thread_ = std::thread([this] { ioLoop(); });
    const unsigned n = config_.workers == 0 ? 1 : config_.workers;
    worker_count_ = n;
    worker_busy_since_.reset(new std::atomic<uint64_t>[n]);
    for (unsigned i = 0; i < n; ++i)
        worker_busy_since_[i].store(0, std::memory_order_relaxed);
    worker_stuck_.assign(n, false);
    queue_stalled_ = false;
    workers_.reserve(n);
    for (unsigned i = 0; i < n; ++i)
        workers_.emplace_back([this, i] { workerLoop(i); });
    if (config_.observability.enabled &&
        config_.observability.samplePeriodMillis > 0) {
        observer_stop_ = false;
        observer_ = std::thread([this] { observerLoop(); });
    }
    inform("apserved listening on ", config_.socketPath, " (", n,
           " workers)");
    telemetry::LogEvent(telemetry::LogLevel::Info, "serve.start")
        .str("socket", config_.socketPath)
        .num("workers", n);
    return true;
}

void
Server::stop()
{
    if (!running_.exchange(false)) {
        if (io_thread_.joinable())
            io_thread_.join();
        return;
    }
    {
        std::lock_guard<std::mutex> lock(observer_mutex_);
        observer_stop_ = true;
    }
    observer_cv_.notify_all();
    if (observer_.joinable())
        observer_.join();
    // Wake the poll loop; it drains, sweeps every connection's streams,
    // and exits. Then release the workers.
    const uint8_t one = 1;
    (void)!::write(wake_fds_[1], &one, 1);
    if (io_thread_.joinable())
        io_thread_.join();
    queue_.close();
    for (std::thread &w : workers_)
        w.join();
    workers_.clear();
    telemetry::LogEvent(telemetry::LogLevel::Info, "serve.stop")
        .str("socket", config_.socketPath);

    if (listen_fd_ >= 0) {
        ::close(listen_fd_);
        listen_fd_ = -1;
    }
    ::unlink(config_.socketPath.c_str());
    for (int &fd : wake_fds_) {
        if (fd >= 0) {
            ::close(fd);
            fd = -1;
        }
    }
}

void
Server::ioLoop()
{
    std::vector<pollfd> fds;
    std::vector<std::shared_ptr<Conn>> polled;
    while (running_.load()) {
        fds.clear();
        polled.clear();
        fds.push_back({wake_fds_[0], POLLIN, 0});
        fds.push_back({listen_fd_, POLLIN, 0});
        for (const auto &[fd, conn] : conns_) {
            fds.push_back({fd, POLLIN, 0});
            polled.push_back(conn);
        }

        const int rc = ::poll(fds.data(), fds.size(), -1);
        if (rc < 0) {
            if (errno == EINTR)
                continue;
            // Error level: falls back to the human log when no
            // structured sink is configured, so this is never silent.
            telemetry::LogEvent(telemetry::LogLevel::Error,
                                "serve.poll_error")
                .str("error", std::strerror(errno));
            break;
        }
        if (fds[0].revents != 0) {
            uint8_t buf[64];
            while (::read(wake_fds_[0], buf, sizeof(buf)) > 0) {
            }
        }
        if (!running_.load())
            break;
        if (fds[1].revents != 0)
            acceptOne();
        for (size_t i = 2; i < fds.size(); ++i) {
            if (fds[i].revents == 0)
                continue;
            readConn(polled[i - 2]);
        }
    }

    // Shutdown: sweep every connection's streams so nothing leaks.
    for (auto &[fd, conn] : conns_) {
        {
            std::lock_guard<std::mutex> lock(conn->mu);
            conn->dead = true;
            conn->backlog.clear();
        }
        service_->releaseOwner(conn->id);
    }
    conns_.clear();
}

void
Server::acceptOne()
{
    for (;;) {
        const int fd =
            ::accept4(listen_fd_, nullptr, nullptr,
                      SOCK_CLOEXEC | SOCK_NONBLOCK);
        if (fd < 0)
            return; // EAGAIN or transient error; poll retries
        if (conns_.size() >= config_.maxConnections) {
            ::close(fd);
            continue;
        }
        auto conn = std::make_shared<Conn>();
        conn->fd = fd;
        conn->id = next_conn_id_++;
        telemetry::LogEvent(telemetry::LogLevel::Debug,
                            "serve.conn_open")
            .num("conn", conn->id);
        conns_.emplace(fd, std::move(conn));
        std::lock_guard<std::mutex> lock(stats_mutex_);
        ++stats_.accepted;
    }
}

void
Server::readConn(const std::shared_ptr<Conn> &conn)
{
    uint8_t buf[65536];
    for (;;) {
        const ssize_t n = ::recv(conn->fd, buf, sizeof(buf), 0);
        if (n > 0) {
            conn->reader.append({buf, static_cast<size_t>(n)});
            continue;
        }
        if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK))
            break;
        closeConn(conn); // orderly close or hard error
        return;
    }

    for (;;) {
        Frame frame;
        std::string error;
        const FrameReader::Status st =
            conn->reader.next(&frame, &error);
        if (st == FrameReader::Status::NeedMore)
            break;
        if (st == FrameReader::Status::Corrupt) {
            // The byte stream is unrecoverable; drop the client.
            // Info level: hostile clients are routine, not incidents.
            telemetry::LogEvent(telemetry::LogLevel::Info,
                                "serve.conn_corrupt")
                .num("conn", conn->id)
                .str("error", error);
            {
                std::lock_guard<std::mutex> lock(stats_mutex_);
                ++stats_.badFrames;
            }
            closeConn(conn);
            return;
        }
        dispatchFrame(conn, std::move(frame));
    }
}

void
Server::dispatchFrame(const std::shared_ptr<Conn> &conn, Frame frame)
{
    {
        std::lock_guard<std::mutex> lock(stats_mutex_);
        ++stats_.frames;
    }
    if (frame.version != kProtocolVersion) {
        {
            std::lock_guard<std::mutex> lock(stats_mutex_);
            ++stats_.badFrames;
        }
        sendError(conn, frame.requestId, ErrorCode::BadVersion,
                  "protocol version mismatch");
        return;
    }
    if (!isRequestType(frame.type)) {
        {
            std::lock_guard<std::mutex> lock(stats_mutex_);
            ++stats_.badFrames;
        }
        sendError(conn, frame.requestId, ErrorCode::UnknownType,
                  std::string("unknown request type ") +
                      msgTypeName(frame.type));
        return;
    }

    switch (static_cast<MsgType>(frame.type)) {
    case MsgType::Hello:
    case MsgType::Ping:
        sendSimple(conn, MsgType::Ok, frame.requestId);
        return;
    case MsgType::Stats:
        sendStats(conn, frame.requestId);
        return;
    default:
        break; // stateful: through admission + workers
    }

    const uint64_t request_id = frame.requestId;
    bool backlogged = false;
    {
        std::lock_guard<std::mutex> lock(conn->mu);
        // A pipelining client outrunning its own backlog is overload
        // local to this connection; answer like queue pressure.
        if (conn->backlog.size() < config_.admission.queueDepth) {
            conn->backlog.push_back(std::move(frame));
            backlogged = true;
        }
    }
    if (!backlogged) {
        sendSimple(conn, MsgType::Overload, request_id);
        return;
    }
    pumpConn(conn);
}

void
Server::pumpConn(const std::shared_ptr<Conn> &conn)
{
    for (;;) {
        Frame frame;
        {
            std::lock_guard<std::mutex> lock(conn->mu);
            if (conn->inflight || conn->dead || conn->backlog.empty())
                return;
            frame = std::move(conn->backlog.front());
            conn->backlog.pop_front();
            conn->inflight = true;
        }

        auto work = std::make_shared<Work>();
        work->conn = conn;
        work->tenant = peekTenant(frame.payload);
        work->startMicros = nowMicros();
        work->serial =
            next_request_serial_.fetch_add(1, std::memory_order_relaxed) +
            1;
        const uint64_t request_id = frame.requestId;
        work->frame = std::move(frame);

        const bool obs = config_.observability.enabled;
        if (obs && !work->tenant.empty())
            requestsByTenant().add(work->tenant, 1);

        const AdmitResult admit =
            queue_.tryEnqueue(work->tenant, work);
        if (admit == AdmitResult::Admitted)
            return; // the executing worker un-sets inflight + re-pumps

        if (obs && !work->tenant.empty())
            shedsByTenant().add(work->tenant, 1);
        telemetry::LogEvent(telemetry::LogLevel::Debug, "serve.reject")
            .num("request_id", work->serial)
            .str("tenant", work->tenant)
            .str("kind", admit == AdmitResult::TenantBusy ? "retry"
                                                          : "overload");
        {
            std::lock_guard<std::mutex> lock(conn->mu);
            conn->inflight = false;
        }
        sendSimple(conn,
                   admit == AdmitResult::TenantBusy ? MsgType::Retry
                                                    : MsgType::Overload,
                   request_id);
        // Fall through: the next backlog frame may still be admissible.
    }
}

void
Server::workerLoop(size_t worker_index)
{
    const bool obs = config_.observability.enabled;
    AdmissionQueue::Item item;
    std::vector<AdmissionQueue::Item> shed;
    while (queue_.pop(&item, &shed)) {
        const uint64_t pop_us = nowMicros();
        last_pop_micros_.store(pop_us, std::memory_order_relaxed);
        for (AdmissionQueue::Item &s : shed) {
            auto work = std::static_pointer_cast<Work>(s.work);
            if (obs && !work->tenant.empty())
                shedsByTenant().add(work->tenant, 1);
            telemetry::LogEvent(telemetry::LogLevel::Debug,
                                "serve.shed")
                .num("request_id", work->serial)
                .str("tenant", work->tenant)
                .num("waited_us", pop_us - work->startMicros);
            {
                std::lock_guard<std::mutex> lock(work->conn->mu);
                work->conn->inflight = false;
            }
            sendSimple(work->conn, MsgType::Overload,
                       work->frame.requestId);
            pumpConn(work->conn);
        }
        shed.clear();
        worker_busy_since_[worker_index].store(
            pop_us == 0 ? 1 : pop_us, std::memory_order_relaxed);
        execute(std::static_pointer_cast<Work>(item.work));
        worker_busy_since_[worker_index].store(
            0, std::memory_order_relaxed);
    }
    // Closed: answer whatever was shed during the drain.
    for (AdmissionQueue::Item &s : shed) {
        auto work = std::static_pointer_cast<Work>(s.work);
        sendSimple(work->conn, MsgType::Overload, work->frame.requestId);
    }
}

void
Server::execute(const std::shared_ptr<Work> &work)
{
    const std::shared_ptr<Conn> &conn = work->conn;
    uint64_t micros;
    if (config_.observability.enabled) {
        const uint64_t pop_us = nowMicros();
        telemetry::RequestTrace trace(
            work->serial, work->tenant,
            msgTypeName(work->frame.type));
        trace.addSpan("serve.admission", work->startMicros,
                      pop_us - work->startMicros);
        {
            telemetry::RequestSpanScope scope("serve.execute");
            executeRequest(work);
        }
        queue_.finish(work->tenant);
        micros = trace.finish(work->startMicros,
                              config_.observability.slowRequestMicros);
        if (!work->tenant.empty())
            requestMicrosByTenant().add(work->tenant, micros);
    } else {
        executeRequest(work);
        queue_.finish(work->tenant);
        micros = nowMicros() - work->startMicros;
    }
    latencyMetric().add(micros);
    {
        std::lock_guard<std::mutex> lock(stats_mutex_);
        stats_.latencyMicros.add(micros);
    }
    {
        std::lock_guard<std::mutex> lock(conn->mu);
        conn->inflight = false;
    }
    pumpConn(conn);
}

void
Server::executeRequest(const std::shared_ptr<Work> &work)
{
    const std::shared_ptr<Conn> &conn = work->conn;
    const Frame &frame = work->frame;
    const uint64_t request_id = frame.requestId;
    WireReader reader(frame.payload);
    bool decoded = true;

    switch (static_cast<MsgType>(frame.type)) {
    case MsgType::Open: {
        StreamRequest req;
        decoded = decodeStreamRequest(&reader, &req);
        if (decoded) {
            const OpStatus st =
                service_->open(req.tenant, req.streamId, conn->id);
            if (st == OpStatus::Ok)
                sendSimple(conn, MsgType::Ok, request_id);
            else
                sendError(conn, request_id, toErrorCode(st),
                          opStatusName(st));
        }
        break;
    }
    case MsgType::Close: {
        StreamRequest req;
        decoded = decodeStreamRequest(&reader, &req);
        if (decoded) {
            ReportGroup group;
            const OpStatus st =
                service_->close(req.tenant, req.streamId, &group);
            if (st == OpStatus::Ok)
                sendReports(conn, request_id, {&group, 1});
            else
                sendError(conn, request_id, toErrorCode(st),
                          opStatusName(st));
        }
        break;
    }
    case MsgType::Feed: {
        FeedRequest req;
        decoded = decodeFeedRequest(&reader, &req);
        if (decoded) {
            std::vector<ReportGroup> groups;
            const OpStatus st =
                service_->feedMany(req.tenant, req.entries, &groups);
            if (st == OpStatus::Ok)
                sendReports(conn, request_id, groups);
            else
                sendError(conn, request_id, toErrorCode(st),
                          opStatusName(st));
        }
        break;
    }
    case MsgType::Match: {
        MatchRequest req;
        decoded = decodeMatchRequest(&reader, &req);
        if (decoded) {
            ReportGroup group;
            const OpStatus st =
                service_->matchOneShot(req.tenant, req.input, &group);
            if (st == OpStatus::Ok)
                sendReports(conn, request_id, {&group, 1});
            else
                sendError(conn, request_id, toErrorCode(st),
                          opStatusName(st));
        }
        break;
    }
    default:
        decoded = false;
        break;
    }

    if (!decoded) {
        {
            std::lock_guard<std::mutex> lock(stats_mutex_);
            ++stats_.badFrames;
        }
        sendError(conn, request_id, ErrorCode::BadFrame,
                  std::string("undecodable ") +
                      msgTypeName(frame.type) + " payload");
    }
}

void
Server::closeConn(const std::shared_ptr<Conn> &conn)
{
    {
        std::lock_guard<std::mutex> lock(conn->mu);
        if (conn->dead)
            return;
        conn->dead = true;
        conn->backlog.clear();
    }
    ::shutdown(conn->fd, SHUT_RDWR);
    conns_.erase(conn->fd);
    // Sweep the client's streams; a stream busy in a worker's feed is
    // destroyed at checkin (MatchService doom semantics), so the
    // session table converges to empty even on mid-feed disconnect.
    service_->releaseOwner(conn->id);
    telemetry::LogEvent(telemetry::LogLevel::Debug, "serve.conn_close")
        .num("conn", conn->id);
    std::lock_guard<std::mutex> lock(stats_mutex_);
    ++stats_.disconnected;
}

bool
Server::sendAll(const std::shared_ptr<Conn> &conn,
                std::span<const uint8_t> bytes)
{
    std::lock_guard<std::mutex> lock(conn->writeMu);
    size_t off = 0;
    const uint64_t deadline =
        nowMicros() +
        static_cast<uint64_t>(config_.sendTimeoutMillis) * 1000;
    while (off < bytes.size()) {
        const ssize_t n = ::send(conn->fd, bytes.data() + off,
                                 bytes.size() - off, MSG_NOSIGNAL);
        if (n > 0) {
            off += static_cast<size_t>(n);
            continue;
        }
        if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
            const uint64_t now = nowMicros();
            if (now >= deadline)
                break; // stuck client
            pollfd pfd{conn->fd, POLLOUT, 0};
            ::poll(&pfd, 1,
                   static_cast<int>((deadline - now) / 1000) + 1);
            continue;
        }
        if (n < 0 && errno == EINTR)
            continue;
        break; // hard error (EPIPE after disconnect, ...)
    }
    if (off == bytes.size())
        return true;
    // Give up on this client; the poll loop reaps the fd as HUP.
    ::shutdown(conn->fd, SHUT_RDWR);
    return false;
}

void
Server::sendSimple(const std::shared_ptr<Conn> &conn, MsgType type,
                   uint64_t request_id)
{
    std::vector<uint8_t> out;
    appendFrame(&out, type, 0, request_id, {});
    sendAll(conn, out);
}

void
Server::sendError(const std::shared_ptr<Conn> &conn, uint64_t request_id,
                  ErrorCode code, const std::string &message)
{
    std::vector<uint8_t> payload;
    WireWriter w(&payload);
    encodeError(&w, ErrorReply{code, message});
    std::vector<uint8_t> out;
    appendFrame(&out, MsgType::Error, 0, request_id, payload);
    sendAll(conn, out);
}

void
Server::sendReports(const std::shared_ptr<Conn> &conn,
                    uint64_t request_id,
                    std::span<const ReportGroup> groups)
{
    // Split the reply so no frame carries more than kMaxReportsPerFrame
    // report records; all but the last frame carry kFlagMore. Oversized
    // single groups are split into slices sharing the stream id.
    std::vector<std::vector<ReportGroup>> batches(1);
    size_t in_batch = 0;
    for (const ReportGroup &g : groups) {
        size_t off = 0;
        do {
            const size_t room = kMaxReportsPerFrame - in_batch;
            const size_t take =
                std::min(room, g.reports.size() - off);
            if (take == 0 && !g.reports.empty()) {
                batches.emplace_back();
                in_batch = 0;
                continue;
            }
            ReportGroup slice;
            slice.streamId = g.streamId;
            slice.streamOffset = g.streamOffset;
            slice.reports.assign(g.reports.begin() +
                                     static_cast<ptrdiff_t>(off),
                                 g.reports.begin() +
                                     static_cast<ptrdiff_t>(off + take));
            batches.back().push_back(std::move(slice));
            in_batch += take;
            off += take;
        } while (off < g.reports.size());
    }

    std::vector<uint8_t> out;
    for (size_t b = 0; b < batches.size(); ++b) {
        std::vector<uint8_t> payload;
        WireWriter w(&payload);
        encodeReportGroups(&w, batches[b]);
        out.clear();
        const uint16_t flags =
            b + 1 < batches.size() ? kFlagMore : uint16_t{0};
        appendFrame(&out, MsgType::Reports, flags, request_id, payload);
        if (!sendAll(conn, out))
            return;
    }
}

void
Server::sendStats(const std::shared_ptr<Conn> &conn, uint64_t request_id)
{
    const StatsReply reply = statsReply();
    std::vector<uint8_t> payload;
    WireWriter w(&payload);
    encodeStatsReply(&w, reply);
    std::vector<uint8_t> out;
    appendFrame(&out, MsgType::StatsReply, 0, request_id, payload);
    sendAll(conn, out);
}

ServerStats
Server::stats() const
{
    std::lock_guard<std::mutex> lock(stats_mutex_);
    return stats_;
}

StatsReply
Server::statsReply() const
{
    StatsReply reply;
    const ServiceStats svc = service_->stats();
    reply.counters = {
        {"serve.active_streams", svc.activeStreams},
        {"serve.resident_sessions", svc.residentSessions},
        {"serve.parked_sessions", svc.parkedSessions},
        {"serve.parked_bytes", svc.parkedBytes},
        {"serve.streams_opened", svc.streamsOpened},
        {"serve.streams_closed", svc.streamsClosed},
        {"serve.feeds", svc.feeds},
        {"serve.fed_bytes", svc.fedBytes},
        {"serve.parks", svc.parks},
        {"serve.resumes", svc.resumes},
        {"serve.fused_feeds", svc.fusedFeeds},
    };
    const AdmissionStats adm = queue_.stats();
    reply.counters.emplace_back("serve.requests", adm.requests);
    reply.counters.emplace_back("serve.admitted", adm.admitted);
    reply.counters.emplace_back("serve.overload", adm.overloaded);
    reply.counters.emplace_back("serve.retry", adm.retried);
    reply.counters.emplace_back("serve.shed", adm.shed);
    {
        std::lock_guard<std::mutex> lock(stats_mutex_);
        reply.counters.emplace_back("serve.accepted", stats_.accepted);
        reply.counters.emplace_back("serve.disconnected",
                                    stats_.disconnected);
        reply.counters.emplace_back("serve.frames", stats_.frames);
        reply.counters.emplace_back("serve.bad_frames",
                                    stats_.badFrames);
        reply.counters.emplace_back(
            "serve.latency_count",
            static_cast<uint64_t>(stats_.latencyMicros.count()));
        reply.counters.emplace_back(
            "serve.latency_p50_us",
            static_cast<uint64_t>(stats_.latencyMicros.p50()));
        reply.counters.emplace_back(
            "serve.latency_p95_us",
            static_cast<uint64_t>(stats_.latencyMicros.p95()));
        reply.counters.emplace_back(
            "serve.latency_p99_us",
            static_cast<uint64_t>(stats_.latencyMicros.p99()));
    }
    if (!config_.observability.enabled)
        return reply;

    // Per-tenant totals: every labeled serve.* series in the registry,
    // plus the watchdog family and the slow-capture count.
    const telemetry::Snapshot snap = telemetry::snapshot();
    for (const auto &[name, value] : snap.counters) {
        const bool labeled =
            telemetry::splitLabeledName(name, nullptr, nullptr);
        if ((labeled && name.rfind("serve.", 0) == 0) ||
            name.rfind("serve.watchdog.", 0) == 0)
            reply.counters.emplace_back(name, value);
    }
    for (const auto &[name, value] : snap.gauges) {
        const bool labeled =
            telemetry::splitLabeledName(name, nullptr, nullptr);
        if ((labeled && name.rfind("serve.", 0) == 0) ||
            name.rfind("serve.watchdog.", 0) == 0)
            reply.counters.emplace_back(
                name, value < 0 ? 0 : static_cast<uint64_t>(value));
    }
    reply.counters.emplace_back(
        "serve.slow_captured",
        telemetry::SlowRequestRing::instance().totalCaptured());

    // Rolling windows: per-second milli-rates for every serve.* counter
    // (labeled series included — aptop's per-tenant columns), plus
    // windowed latency percentiles derived from the histogram deltas.
    const telemetry::WindowView views[kStatsHorizons] = {
        windows_.over(telemetry::kWindow10s),
        windows_.over(telemetry::kWindow1m),
        windows_.over(telemetry::kWindow5m)};
    for (size_t h = 0; h < kStatsHorizons; ++h)
        reply.windowSpanMicros[h] = views[h].spanMicros;
    const telemetry::WindowView *named = nullptr;
    for (const telemetry::WindowView &v : views) {
        if (v.valid()) {
            named = &v;
            break;
        }
    }
    if (named == nullptr)
        return reply;
    for (const auto &[name, value] : named->delta.counters) {
        if (name.rfind("serve.", 0) != 0)
            continue;
        StatsWindowRow row;
        row.name = name;
        bool any = false;
        for (size_t h = 0; h < kStatsHorizons; ++h) {
            row.milli[h] = static_cast<uint64_t>(
                std::llround(views[h].rate(name) * 1000.0));
            any = any || row.milli[h] != 0;
        }
        if (any && reply.windows.size() < kMaxStatsWindowRows)
            reply.windows.push_back(std::move(row));
    }
    static constexpr struct
    {
        const char *name;
        double q;
    } kWindowQuantiles[] = {{"serve.request_p50_us", 0.50},
                            {"serve.request_p95_us", 0.95},
                            {"serve.request_p99_us", 0.99}};
    for (const auto &wq : kWindowQuantiles) {
        StatsWindowRow row;
        row.name = wq.name;
        bool any = false;
        for (size_t h = 0; h < kStatsHorizons; ++h) {
            row.milli[h] = static_cast<uint64_t>(std::llround(
                views[h].histQuantile("serve.request_micros", wq.q) *
                1000.0));
            any = any || row.milli[h] != 0;
        }
        if (any && reply.windows.size() < kMaxStatsWindowRows)
            reply.windows.push_back(std::move(row));
    }
    return reply;
}

void
Server::sampleNow()
{
    const uint64_t now = nowMicros();
    windows_.push(now, telemetry::snapshot());
    watchdogTick(now);
    if (!config_.observability.metricsPath.empty()) {
        if (!telemetry::writePrometheusFile(
                config_.observability.metricsPath,
                telemetry::snapshot()))
            telemetry::LogEvent(telemetry::LogLevel::Warn,
                                "serve.metrics_file_error")
                .str("path", config_.observability.metricsPath);
    }
}

void
Server::observerLoop()
{
    std::unique_lock<std::mutex> lock(observer_mutex_);
    const auto period = std::chrono::milliseconds(
        config_.observability.samplePeriodMillis);
    while (!observer_stop_) {
        observer_cv_.wait_for(lock, period,
                              [this] { return observer_stop_; });
        if (observer_stop_)
            break;
        lock.unlock();
        sampleNow();
        lock.lock();
    }
}

void
Server::watchdogTick(uint64_t now_us)
{
    watchdogTicks().add(1);

    // A worker pinned on one request for stuckMicros is stuck: gauge
    // the current count, log each worker once per stuck episode.
    const uint64_t limit = config_.observability.stuckMicros;
    size_t stuck = 0;
    for (size_t i = 0; i < worker_count_; ++i) {
        const uint64_t busy =
            worker_busy_since_[i].load(std::memory_order_relaxed);
        const bool is_stuck =
            busy != 0 && now_us > busy && now_us - busy >= limit;
        if (is_stuck) {
            ++stuck;
            if (!worker_stuck_[i])
                telemetry::LogEvent(telemetry::LogLevel::Warn,
                                    "serve.watchdog.stuck_worker")
                    .num("worker", i)
                    .num("busy_us", now_us - busy);
        }
        worker_stuck_[i] = is_stuck;
    }
    watchdogStuckWorkers().set(static_cast<int64_t>(stuck));

    // A non-empty admission queue with no pop for stuckMicros means
    // the worker pool has stopped draining: count stalled ticks, log
    // the transition.
    const uint64_t last_pop =
        last_pop_micros_.load(std::memory_order_relaxed);
    const size_t depth = queue_.depth();
    const bool stalled = depth > 0 && last_pop != 0 &&
                         now_us > last_pop &&
                         now_us - last_pop >= limit;
    if (stalled) {
        watchdogQueueStalls().add(1);
        if (!queue_stalled_)
            telemetry::LogEvent(telemetry::LogLevel::Warn,
                                "serve.watchdog.queue_stall")
                .num("depth", depth)
                .num("since_pop_us", now_us - last_pop);
    }
    queue_stalled_ = stalled;
}

} // namespace serve
} // namespace sparseap
