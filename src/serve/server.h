/**
 * @file
 * apserved's daemon core: the framing protocol over a Unix-domain
 * socket, bridged onto a MatchService.
 *
 * One I/O thread polls the listening socket and every connection,
 * assembling frames with FrameReader. Cheap requests (Hello, Ping,
 * Stats) are answered inline; stateful ones (Open, Feed, Close, Match)
 * flow through the AdmissionQueue to a worker pool. Two invariants
 * shape the dispatch:
 *
 *  - *Per-connection FIFO.* At most one admitted request per connection
 *    is in flight at a time; the rest wait in the connection's backlog.
 *    Since a client feeds its own streams over its own connection, this
 *    serializes each stream's feeds in arrival order without any
 *    per-stream queue — and an Open queued behind a Feed can never
 *    overtake it.
 *
 *  - *Reject early, shed late.* The I/O thread answers Overload (queue
 *    full) and Retry (tenant cap) straight from tryEnqueue without
 *    waking a worker; workers shed admitted items whose queue wait
 *    exceeded the deadline. Both are explicit responses — an overloaded
 *    server degrades loudly, it never silently hangs a request.
 *
 * Disconnects sweep the client's streams via MatchService::releaseOwner
 * (mid-feed streams die at checkin), so an interrupted client never
 * leaks sessions. Responses are written by whichever thread produced
 * them under a per-connection write lock; large report sets are split
 * into Reports frames chained with kFlagMore.
 *
 * See docs/SERVING.md; tested by tests/test_serve_server.cc.
 */

#ifndef SPARSEAP_SERVE_SERVER_H
#define SPARSEAP_SERVE_SERVER_H

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/stats.h"
#include "serve/admission.h"
#include "serve/match_service.h"
#include "serve/protocol.h"

namespace sparseap {
namespace serve {

struct ServerConfig
{
    /** Filesystem path of the Unix-domain listening socket. */
    std::string socketPath;
    /** Worker threads executing admitted requests. */
    unsigned workers = 4;
    AdmissionConfig admission;
    /** Accepted-connection bound; excess accepts are closed at once. */
    size_t maxConnections = 256;
    /** Per-send budget before a stuck client is disconnected. */
    int sendTimeoutMillis = 5000;
};

/** Latency + traffic counters (admission stats live on the queue). */
struct ServerStats
{
    uint64_t accepted = 0;
    uint64_t disconnected = 0;
    uint64_t frames = 0;    ///< well-formed request frames
    uint64_t badFrames = 0; ///< Error-answered frames + corrupt streams
    /** Request latency (admission + execution), microseconds. */
    Histogram latencyMicros;
};

/** The daemon core (see file comment). */
class Server
{
  public:
    Server(MatchService *service, ServerConfig config);
    ~Server();

    Server(const Server &) = delete;
    Server &operator=(const Server &) = delete;

    /**
     * Bind the socket and start the I/O and worker threads.
     * @return false with @p error set on bind/listen failure.
     */
    bool start(std::string *error);

    /** Stop threads, close every connection, sweep their streams. */
    void stop();

    bool running() const { return running_.load(); }

    ServerStats stats() const;

    const AdmissionQueue &admission() const { return queue_; }

    /** Rows for the in-protocol Stats reply (serve.* keys). */
    StatsReply statsReply() const;

  private:
    struct Conn;
    struct Work;

    void ioLoop();
    void workerLoop();

    void acceptOne();
    /** Drain readable bytes; parse and dispatch complete frames. */
    void readConn(const std::shared_ptr<Conn> &conn);
    void dispatchFrame(const std::shared_ptr<Conn> &conn, Frame frame);
    /** Move backlog work into the admission queue (FIFO, one at a time). */
    void pumpConn(const std::shared_ptr<Conn> &conn);
    void execute(const std::shared_ptr<Work> &work);
    void closeConn(const std::shared_ptr<Conn> &conn);

    bool sendAll(const std::shared_ptr<Conn> &conn,
                 std::span<const uint8_t> bytes);
    void sendSimple(const std::shared_ptr<Conn> &conn, MsgType type,
                    uint64_t request_id);
    void sendError(const std::shared_ptr<Conn> &conn, uint64_t request_id,
                   ErrorCode code, const std::string &message);
    void sendReports(const std::shared_ptr<Conn> &conn,
                     uint64_t request_id,
                     std::span<const ReportGroup> groups);
    void sendStats(const std::shared_ptr<Conn> &conn, uint64_t request_id);

    MatchService *service_;
    ServerConfig config_;
    AdmissionQueue queue_;

    std::atomic<bool> running_{false};
    int listen_fd_ = -1;
    int wake_fds_[2] = {-1, -1}; ///< self-pipe: stop() wakes poll()

    std::thread io_thread_;
    std::vector<std::thread> workers_;

    /** I/O-thread-owned; workers reach conns via shared_ptr in Work. */
    std::unordered_map<int, std::shared_ptr<Conn>> conns_;
    uint64_t next_conn_id_ = 1;

    mutable std::mutex stats_mutex_;
    ServerStats stats_;
};

} // namespace serve
} // namespace sparseap

#endif // SPARSEAP_SERVE_SERVER_H
