/**
 * @file
 * apserved's daemon core: the framing protocol over a Unix-domain
 * socket, bridged onto a MatchService.
 *
 * One I/O thread polls the listening socket and every connection,
 * assembling frames with FrameReader. Cheap requests (Hello, Ping,
 * Stats) are answered inline; stateful ones (Open, Feed, Close, Match)
 * flow through the AdmissionQueue to a worker pool. Two invariants
 * shape the dispatch:
 *
 *  - *Per-connection FIFO.* At most one admitted request per connection
 *    is in flight at a time; the rest wait in the connection's backlog.
 *    Since a client feeds its own streams over its own connection, this
 *    serializes each stream's feeds in arrival order without any
 *    per-stream queue — and an Open queued behind a Feed can never
 *    overtake it.
 *
 *  - *Reject early, shed late.* The I/O thread answers Overload (queue
 *    full) and Retry (tenant cap) straight from tryEnqueue without
 *    waking a worker; workers shed admitted items whose queue wait
 *    exceeded the deadline. Both are explicit responses — an overloaded
 *    server degrades loudly, it never silently hangs a request.
 *
 * Disconnects sweep the client's streams via MatchService::releaseOwner
 * (mid-feed streams die at checkin), so an interrupted client never
 * leaks sessions. Responses are written by whichever thread produced
 * them under a per-connection write lock; large report sets are split
 * into Reports frames chained with kFlagMore.
 *
 * See docs/SERVING.md; tested by tests/test_serve_server.cc.
 */

#ifndef SPARSEAP_SERVE_SERVER_H
#define SPARSEAP_SERVE_SERVER_H

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/stats.h"
#include "serve/admission.h"
#include "serve/match_service.h"
#include "serve/protocol.h"
#include "telemetry/window.h"

namespace sparseap {
namespace serve {

/** Serving-plane observability knobs (see docs/OBSERVABILITY.md). */
struct ObservabilityConfig
{
    /** Master switch: request tracing, per-tenant labels, rolling
     *  windows, watchdog. Off = the pre-observability hot path. */
    bool enabled = true;
    /** Observer thread sample period (windows + watchdog + metrics
     *  file). 0 disables the observer thread. */
    uint64_t samplePeriodMillis = 1000;
    /** Requests at or above this latency are captured into the
     *  SlowRequestRing and logged. 0 disables slow capture. */
    uint64_t slowRequestMicros = 250000;
    /** Watchdog: a worker busy on one request this long is stuck; a
     *  non-empty queue unpopped this long is stalled. */
    uint64_t stuckMicros = 10ull * 1000 * 1000;
    /** Prometheus text exposition rewritten every sample ("" = off). */
    std::string metricsPath;
};

struct ServerConfig
{
    /** Filesystem path of the Unix-domain listening socket. */
    std::string socketPath;
    /** Worker threads executing admitted requests. */
    unsigned workers = 4;
    AdmissionConfig admission;
    /** Accepted-connection bound; excess accepts are closed at once. */
    size_t maxConnections = 256;
    /** Per-send budget before a stuck client is disconnected. */
    int sendTimeoutMillis = 5000;
    ObservabilityConfig observability;
};

/** Latency + traffic counters (admission stats live on the queue). */
struct ServerStats
{
    uint64_t accepted = 0;
    uint64_t disconnected = 0;
    uint64_t frames = 0;    ///< well-formed request frames
    uint64_t badFrames = 0; ///< Error-answered frames + corrupt streams
    /** Request latency (admission + execution), microseconds. */
    Histogram latencyMicros;
};

/** The daemon core (see file comment). */
class Server
{
  public:
    Server(MatchService *service, ServerConfig config);
    ~Server();

    Server(const Server &) = delete;
    Server &operator=(const Server &) = delete;

    /**
     * Bind the socket and start the I/O and worker threads.
     * @return false with @p error set on bind/listen failure.
     */
    bool start(std::string *error);

    /** Stop threads, close every connection, sweep their streams. */
    void stop();

    bool running() const { return running_.load(); }

    ServerStats stats() const;

    const AdmissionQueue &admission() const { return queue_; }

    /** Rows for the in-protocol Stats reply (serve.* keys), plus —
     *  with observability on — windowed rows and per-tenant series. */
    StatsReply statsReply() const;

    /** Take one observer sample now (window push + watchdog tick +
     *  metrics-file rewrite). The observer thread calls this every
     *  period; tests call it to advance windows deterministically. */
    void sampleNow();

  private:
    struct Conn;
    struct Work;

    void ioLoop();
    void workerLoop(size_t worker_index);
    void observerLoop();
    void watchdogTick(uint64_t now_us);

    void acceptOne();
    /** Drain readable bytes; parse and dispatch complete frames. */
    void readConn(const std::shared_ptr<Conn> &conn);
    void dispatchFrame(const std::shared_ptr<Conn> &conn, Frame frame);
    /** Move backlog work into the admission queue (FIFO, one at a time). */
    void pumpConn(const std::shared_ptr<Conn> &conn);
    void execute(const std::shared_ptr<Work> &work);
    /** The decode + dispatch + respond body (called by execute()). */
    void executeRequest(const std::shared_ptr<Work> &work);
    void closeConn(const std::shared_ptr<Conn> &conn);

    bool sendAll(const std::shared_ptr<Conn> &conn,
                 std::span<const uint8_t> bytes);
    void sendSimple(const std::shared_ptr<Conn> &conn, MsgType type,
                    uint64_t request_id);
    void sendError(const std::shared_ptr<Conn> &conn, uint64_t request_id,
                   ErrorCode code, const std::string &message);
    void sendReports(const std::shared_ptr<Conn> &conn,
                     uint64_t request_id,
                     std::span<const ReportGroup> groups);
    void sendStats(const std::shared_ptr<Conn> &conn, uint64_t request_id);

    MatchService *service_;
    ServerConfig config_;
    AdmissionQueue queue_;

    std::atomic<bool> running_{false};
    int listen_fd_ = -1;
    int wake_fds_[2] = {-1, -1}; ///< self-pipe: stop() wakes poll()

    std::thread io_thread_;
    std::vector<std::thread> workers_;

    /** I/O-thread-owned; workers reach conns via shared_ptr in Work. */
    std::unordered_map<int, std::shared_ptr<Conn>> conns_;
    uint64_t next_conn_id_ = 1;

    mutable std::mutex stats_mutex_;
    ServerStats stats_;

    // --- observability (all inert when !config_.observability.enabled)

    /** Server-side request serial, minted at admission. */
    std::atomic<uint64_t> next_request_serial_{0};

    telemetry::WindowRing windows_;

    std::thread observer_;
    std::mutex observer_mutex_;
    std::condition_variable observer_cv_;
    bool observer_stop_ = false;

    /** Per-worker busy-since timestamp (0 = idle); watchdog input. */
    std::unique_ptr<std::atomic<uint64_t>[]> worker_busy_since_;
    size_t worker_count_ = 0;
    /** Timestamp of the last successful queue pop (stall detection). */
    std::atomic<uint64_t> last_pop_micros_{0};

    /** Observer-thread-private edge detection state. */
    std::vector<bool> worker_stuck_;
    bool queue_stalled_ = false;
};

} // namespace serve
} // namespace sparseap

#endif // SPARSEAP_SERVE_SERVER_H
