#include "sim/dense_core.h"

#include <algorithm>

namespace sparseap {

DenseCore::DenseCore(const FlatAutomaton &fa)
    : fa_(fa), dv_(fa.denseView()), words_(dv_.words),
      enabled_(words_, 0), active_(words_, 0), next_(words_, 0)
{
}

void
DenseCore::reset(bool install_starts)
{
    std::fill(enabled_.begin(), enabled_.end(), 0);
    if (!install_starts)
        return;
    for (size_t w = 0; w < words_; ++w)
        enabled_[w] = dv_.allInputStarts[w] | dv_.sodStarts[w];
}

void
DenseCore::seed(std::span<const GlobalStateId> states)
{
    for (GlobalStateId s : states)
        setWordBit(enabled_.data(), s);
}

bool
DenseCore::idle() const
{
    for (uint64_t w : enabled_)
        if (w != 0)
            return false;
    return true;
}

void
DenseCore::step(uint8_t symbol, uint32_t position, ReportList *reports)
{
    const uint64_t *accept = dv_.acceptRow(symbol);
    for (size_t w = 0; w < words_; ++w)
        active_[w] = enabled_[w] & accept[w];

    if (reports) {
        for (size_t w = 0; w < words_; ++w) {
            uint64_t hits = active_[w] & dv_.reporting[w];
            while (hits != 0) {
                const unsigned b =
                    static_cast<unsigned>(__builtin_ctzll(hits));
                reports->push_back(
                    {position, static_cast<GlobalStateId>(w * 64 + b)});
                hits &= hits - 1;
            }
        }
    }

    // Successor propagation: iterate set bits of the active vector and
    // OR their word-grouped successor masks into the next-enabled
    // vector.
    std::fill(next_.begin(), next_.end(), 0);
    const uint32_t *begin = dv_.succBegin.data();
    const uint32_t *idx = dv_.succWordIdx.data();
    const uint64_t *mask = dv_.succWordMask.data();
    for (size_t w = 0; w < words_; ++w) {
        uint64_t bits = active_[w];
        while (bits != 0) {
            const unsigned b =
                static_cast<unsigned>(__builtin_ctzll(bits));
            const auto s = static_cast<GlobalStateId>(w * 64 + b);
            for (uint32_t k = begin[s]; k < begin[s + 1]; ++k)
                next_[idx[k]] |= mask[k];
            bits &= bits - 1;
        }
    }
    // Always-enabled starts are enabled on every cycle by definition.
    for (size_t w = 0; w < words_; ++w)
        next_[w] |= dv_.allInputStarts[w];

    enabled_.swap(next_);
}

} // namespace sparseap
