#include "sim/dense_core.h"

#include <algorithm>
#include <array>

#include "common/options.h"

namespace sparseap {

namespace {

inline void
markWord(uint64_t *sum, uint64_t *sum2, size_t w)
{
    sum[w >> 6] |= 1ull << (w & 63);
    sum2[w >> 12] |= 1ull << ((w >> 6) & 63);
}

} // namespace

DenseCore::DenseCore(const FlatAutomaton &fa)
    : fa_(fa), dv_(fa.denseView()), ops_(&simd::ops()),
      skip_divisor_(globalOptions().skipDivisor), words_(dv_.words),
      sum_words_(wordsForBits(words_)),
      sum2_words_(wordsForBits(sum_words_)),
      has_starts_(!fa.allInputStarts().empty()),
      has_latchable_(std::any_of(dv_.latchable.begin(),
                                 dv_.latchable.end(),
                                 [](uint64_t w) { return w != 0; })),
      has_chain_(std::any_of(dv_.chain.begin(), dv_.chain.end(),
                             [](uint64_t w) { return w != 0; })),
      enabled_(words_, 0), enabled_sum_(sum_words_, 0),
      enabled_sum2_(sum2_words_, 0), next_(words_, 0),
      next_sum_(sum_words_, 0), next_sum2_(sum2_words_, 0),
      active_(words_, 0), scratch_(words_, 0), perm_(words_, 0),
      perm_next_(words_, 0), perm_next_sum_(sum_words_, 0)
{
    if (globalOptions().inputSkip) {
        static_scan_ = simd::ScanMask::fromBits(dv_.staticScan.data());
        static_scan_ok_ =
            static_scan_.population() <= kMaxScanPopulation;
    }
}

void
DenseCore::reset(bool install_starts)
{
    ops_->clear(enabled_.data(), words_);
    ops_->clear(enabled_sum_.data(), sum_words_);
    ops_->clear(enabled_sum2_.data(), sum2_words_);
    ops_->clear(next_.data(), words_);
    ops_->clear(next_sum_.data(), sum_words_);
    ops_->clear(next_sum2_.data(), sum2_words_);
    if (has_perm_) {
        ops_->clear(perm_.data(), words_);
        ops_->clear(perm_next_.data(), words_);
        ops_->clear(perm_next_sum_.data(), sum_words_);
        has_perm_ = false;
        ++perm_gen_; // any cached dynamic scan mask is stale now
    }
    stats_ = StepStats{};
    if (!install_starts)
        return;
    // Only start-of-data starts enter the dynamic vector; always-enabled
    // starts are served from the per-class dispatch on every cycle (they
    // are a property of the automaton, not of the reset: a mid-run
    // handover resets without reinstalling position-0 starts but still
    // needs the dispatch live).
    for (size_t w = 0; w < words_; ++w) {
        const uint64_t v = dv_.sodStarts[w];
        if (v != 0) {
            enabled_[w] = v;
            markWord(enabled_sum_.data(), enabled_sum2_.data(), w);
        }
    }
}

void
DenseCore::seed(std::span<const GlobalStateId> states)
{
    for (GlobalStateId s : states) {
        if (has_starts_ && testWordBit(dv_.allInputStarts.data(), s))
            continue; // implicitly enabled via the start dispatch
        setWordBit(enabled_.data(), s);
        markWord(enabled_sum_.data(), enabled_sum2_.data(), s >> 6);
    }
}

void
DenseCore::snapshotEnabled(std::vector<GlobalStateId> *out) const
{
    for (size_t w = 0; w < words_; ++w) {
        uint64_t bits = enabled_[w] | (has_perm_ ? perm_[w] : 0);
        while (bits != 0) {
            out->push_back(static_cast<GlobalStateId>(
                w * 64 + static_cast<unsigned>(__builtin_ctzll(bits))));
            bits &= bits - 1;
        }
    }
}

bool
DenseCore::idle() const
{
    if (has_starts_ || has_perm_)
        return false; // starts and latched states always activate
    for (uint64_t w : enabled_sum2_)
        if (w != 0)
            return false;
    return true;
}

/**
 * True iff the configuration is quiescent: the dynamic enabled set is
 * exactly the latched states' pooled successor contribution, so (until
 * an interesting byte arrives, see trySkip) every step reproduces it.
 * Both vectors are walked through the union of their summaries —
 * enabled_sum_ is exact, perm_next_sum_ a superset, and comparing the
 * actual words handles both. With nothing latched this reduces to "the
 * dynamic set is empty".
 */
bool
DenseCore::quiescent() const
{
    for (size_t sw = 0; sw < sum_words_; ++sw) {
        uint64_t bits = enabled_sum_[sw] | perm_next_sum_[sw];
        while (bits != 0) {
            const size_t w =
                sw * 64 + static_cast<unsigned>(__builtin_ctzll(bits));
            bits &= bits - 1;
            if (enabled_[w] != perm_next_[w])
                return false;
        }
    }
    return true;
}

/**
 * Rebuild the dynamic scan mask for the current latch set. From a
 * quiescent configuration, a byte of class c is boring — stepping on
 * it emits nothing and leaves the configuration bit-identical — iff
 *  (a) no currently-enabled (latched-successor) state accepts c, so
 *      there are no activations, reports, or CSR propagation;
 *  (b) c dispatches no reporting start; and
 *  (c) c's pooled start-successor contribution is covered by
 *      perm_ ∪ perm_next_ (latch maintenance strips the perm_ bits —
 *      permanent states are latchable by construction — and the rest
 *      is already enabled).
 * Everything else is interesting. Folded through the byte→class map
 * into a 256-bit mask and cached until the next latch or reset.
 */
void
DenseCore::buildDynamicScanMask()
{
    dyn_scan_gen_ = perm_gen_;
    std::array<uint8_t, 256> interesting{};
    for (size_t c = 0; c < dv_.classes; ++c) {
        bool hot = dv_.startBegin[c + 1] > dv_.startBegin[c];
        if (!hot) {
            const uint64_t *row = dv_.accept.data() + c * dv_.stride;
            for (size_t sw = 0; sw < sum_words_ && !hot; ++sw) {
                uint64_t bits = perm_next_sum_[sw];
                while (bits != 0) {
                    const size_t w =
                        sw * 64 +
                        static_cast<unsigned>(__builtin_ctzll(bits));
                    bits &= bits - 1;
                    if ((perm_next_[w] & row[w]) != 0) {
                        hot = true;
                        break;
                    }
                }
            }
        }
        if (!hot) {
            for (uint32_t k = dv_.startSuccBegin[c];
                 k < dv_.startSuccBegin[c + 1]; ++k) {
                const uint32_t w = dv_.startSuccWordIdx[k];
                if ((dv_.startSuccWordMask[k] &
                     ~(perm_[w] | perm_next_[w])) != 0) {
                    hot = true;
                    break;
                }
            }
        }
        interesting[c] = hot ? 1 : 0;
    }
    uint64_t bits[4] = {0, 0, 0, 0};
    for (unsigned b = 0; b < 256; ++b)
        if (interesting[dv_.classOf[b]])
            bits[b >> 6] |= 1ull << (b & 63);
    dyn_scan_ = simd::ScanMask::fromBits(bits);
    dyn_scan_ok_ = dyn_scan_.population() <= kMaxScanPopulation;
}

size_t
DenseCore::trySkip(const uint8_t *data, size_t n)
{
    // Cheapest checks first: mask availability, then the current byte
    // (interesting almost always in high-activity regimes), then the
    // configuration walk, and only then the vector scan.
    const simd::ScanMask *m;
    if (!has_perm_) {
        if (!static_scan_ok_)
            return 0;
        m = &static_scan_;
    } else {
        if (!static_scan_ok_)
            return 0; // latching only widens the mask; don't rebuild
        if (dyn_scan_gen_ != perm_gen_)
            buildDynamicScanMask();
        if (!dyn_scan_ok_)
            return 0;
        m = &dyn_scan_;
    }
    if (n == 0 || m->test(data[0]))
        return 0;
    if (!quiescent())
        return 0;
    const size_t skipped = ops_->scanForByteMask(data, n, *m);
    stats_.skippedSymbols += skipped;
    if (skipped != 0)
        ++stats_.jumps;
    return skipped;
}

/** OR the pooled successor contribution of all latched states into
 *  next_, visiting only its (superset-summarized) nonzero words. */
void
DenseCore::orPermanentsIntoNext(bool mark)
{
    uint64_t *next = next_.data();
    const uint64_t *pn = perm_next_.data();
    for (size_t sw = 0; sw < sum_words_; ++sw) {
        uint64_t bits = perm_next_sum_[sw];
        while (bits != 0) {
            const size_t w =
                sw * 64 + static_cast<unsigned>(__builtin_ctzll(bits));
            bits &= bits - 1;
            const uint64_t v = pn[w];
            if (v != 0) {
                next[w] |= v;
                if (mark)
                    markWord(next_sum_.data(), next_sum2_.data(), w);
            }
        }
    }
}

/**
 * Latch-maintain one word of next_: latch fresh latchable bits and
 * return the word with every latchable bit (now all permanent) removed
 * from the dynamic vector.
 */
uint64_t
DenseCore::latchWord(size_t w, uint64_t v)
{
    const uint64_t lat = v & dv_.latchable[w];
    if (lat == 0)
        return v;
    const uint64_t fresh = lat & ~perm_[w];
    if (fresh != 0)
        latch(w, fresh);
    return v & ~lat;
}

/** Move the @p fresh states of word @p w into the permanent set and
 *  pool their successor masks into perm_next_ (disjoint from perm_). */
void
DenseCore::latch(size_t w, uint64_t fresh)
{
    has_perm_ = true;
    ++perm_gen_;
    perm_[w] |= fresh;
    const uint32_t *begin = dv_.succBegin.data();
    const uint32_t *idx = dv_.succWordIdx.data();
    const uint64_t *mask = dv_.succWordMask.data();
    uint64_t bits = fresh;
    while (bits != 0) {
        const unsigned b = static_cast<unsigned>(__builtin_ctzll(bits));
        const auto s = static_cast<GlobalStateId>(w * 64 + b);
        for (uint32_t k = begin[s]; k < begin[s + 1]; ++k) {
            const uint32_t tw = idx[k];
            const uint64_t m = mask[k] & ~perm_[tw];
            if (m != 0) {
                perm_next_[tw] |= m;
                setWordBit(perm_next_sum_.data(), tw);
            }
        }
        bits &= bits - 1;
    }
    // The states themselves are permanent now: no contribution may
    // re-enter them into the dynamic vector.
    perm_next_[w] &= ~fresh;
}

void
DenseCore::clearNext()
{
    // next_ holds the *previous* cycle's enabled set (swapped out at the
    // end of step); its summaries name exactly the dirty words, so the
    // wipe costs O(previously live words), not O(N/64).
    for (size_t sw2 = 0; sw2 < sum2_words_; ++sw2) {
        uint64_t b2 = next_sum2_[sw2];
        next_sum2_[sw2] = 0;
        while (b2 != 0) {
            const size_t sw =
                sw2 * 64 +
                static_cast<unsigned>(__builtin_ctzll(b2));
            b2 &= b2 - 1;
            uint64_t b1 = next_sum_[sw];
            next_sum_[sw] = 0;
            while (b1 != 0) {
                next_[sw * 64 +
                      static_cast<unsigned>(__builtin_ctzll(b1))] = 0;
                b1 &= b1 - 1;
            }
        }
    }
}

void
DenseCore::step(uint8_t symbol, uint64_t position, ReportList *reports)
{
    const uint64_t *accept = dv_.acceptRow(symbol);

    const uint8_t cls = dv_.classOf[symbol];
    uint32_t sk = 0;
    uint32_t s_end = 0;
    uint32_t ssk = 0;
    uint32_t ss_end = 0;
    if (has_starts_) {
        sk = dv_.startBegin[cls];
        s_end = dv_.startBegin[cls + 1];
        ssk = dv_.startSuccBegin[cls];
        ss_end = dv_.startSuccBegin[cls + 1];
    }

    // Pick the path per cycle: count live words (dynamic, via a popcount
    // of the level-1 summary, plus the symbol's start-dispatch entries)
    // and skip only while they are a small fraction of the vector.
    size_t live = (s_end - sk) + (ss_end - ssk);
    live += static_cast<size_t>(
        ops_->popcount(enabled_sum_.data(), sum_words_));

    ++stats_.cycles;
    stats_.liveWords += live;

    if (live * skip_divisor_ < words_) {
        ++stats_.skipCycles;
        stepSkip(accept, sk, s_end, ssk, ss_end, position, reports);
    } else {
        stepFlat(accept, cls, sk, s_end, ssk, ss_end, position, reports);
    }

    enabled_.swap(next_);
    enabled_sum_.swap(next_sum_);
    enabled_sum2_.swap(next_sum2_);
}

void
DenseCore::stepSkip(const uint64_t *accept, uint32_t sk, uint32_t s_end,
                    uint32_t ssk, uint32_t ss_end, uint64_t position,
                    ReportList *reports)
{
    const uint32_t *begin = dv_.succBegin.data();
    const uint32_t *idx = dv_.succWordIdx.data();
    const uint64_t *mask = dv_.succWordMask.data();
    const uint32_t *s_idx = dv_.startWordIdx.data();
    const uint64_t *s_mask = dv_.startWordMask.data();

    clearNext();

    uint64_t *next = next_.data();
    uint64_t *next_sum = next_sum_.data();
    uint64_t *next_sum2 = next_sum2_.data();

    // Matching non-reporting starts enable their successors wholesale
    // from the per-class pooled contribution — no per-bit propagation.
    for (uint32_t k = ssk; k < ss_end; ++k) {
        const uint32_t w = dv_.startSuccWordIdx[k];
        next[w] |= dv_.startSuccWordMask[k];
        markWord(next_sum, next_sum2, w);
    }

    // Process one live word's activations: report, then propagate.
    auto sweepWord = [&](size_t w, uint64_t act) {
        if (reports) {
            uint64_t hits = act & dv_.reporting[w];
            while (hits != 0) {
                const unsigned b =
                    static_cast<unsigned>(__builtin_ctzll(hits));
                reports->push_back(
                    {position, static_cast<GlobalStateId>(w * 64 + b)});
                hits &= hits - 1;
            }
        }
        // Chain states (successor exactly {s+1}) propagate with one
        // word-local shift; bit 63 carries into w+1, which is in range
        // whenever it is a chain bit (see DenseView::chain).
        const uint64_t ch = act & dv_.chain[w];
        if (ch != 0) {
            const uint64_t lo = ch << 1;
            if (lo != 0) {
                next[w] |= lo;
                markWord(next_sum, next_sum2, w);
            }
            if (ch >> 63) {
                next[w + 1] |= 1;
                markWord(next_sum, next_sum2, w + 1);
            }
            act &= ~ch;
        }
        while (act != 0) {
            const unsigned b =
                static_cast<unsigned>(__builtin_ctzll(act));
            const auto s = static_cast<GlobalStateId>(w * 64 + b);
            for (uint32_t k = begin[s]; k < begin[s + 1]; ++k) {
                const uint32_t tw = idx[k];
                next[tw] |= mask[k];
                markWord(next_sum, next_sum2, tw);
            }
            act &= act - 1;
        }
    };

    // Start-dispatch entries strictly below word @p w (they are stored
    // in ascending word order per class, disjoint from the dynamic
    // vector, and already intersected with the accept row).
    auto flushStartsBelow = [&](size_t w) {
        while (sk < s_end && s_idx[sk] < w) {
            sweepWord(s_idx[sk], s_mask[sk]);
            ++sk;
        }
    };

    // Hierarchical sweep in ascending word order: level-2 bits name live
    // summary words, summary bits name live enabled words, and the
    // symbol's start-dispatch list is merged in so reports still come
    // out in exact state order. Dead regions cost one word test per
    // 4096 states.
    for (size_t sw2 = 0; sw2 < sum2_words_; ++sw2) {
        uint64_t b2 = enabled_sum2_[sw2];
        while (b2 != 0) {
            const size_t sw =
                sw2 * 64 +
                static_cast<unsigned>(__builtin_ctzll(b2));
            b2 &= b2 - 1;
            const uint64_t b1 = enabled_sum_[sw];
            const size_t base = sw * 64;
            if (b1 == ~0ull && base + 64 <= words_) {
                // Fully live block: one vector AND sweep, then scan the
                // nonzero activations.
                flushStartsBelow(base);
                alignas(64) uint64_t act[64];
                ops_->bitAnd(act, enabled_.data() + base, accept + base,
                             64);
                while (sk < s_end && s_idx[sk] < base + 64) {
                    act[s_idx[sk] - base] |= s_mask[sk];
                    ++sk;
                }
                for (size_t j = 0; j < 64; ++j) {
                    if (act[j] != 0)
                        sweepWord(base + j, act[j]);
                }
            } else {
                uint64_t bits = b1;
                while (bits != 0) {
                    const size_t w =
                        base +
                        static_cast<unsigned>(__builtin_ctzll(bits));
                    bits &= bits - 1;
                    flushStartsBelow(w);
                    uint64_t act = enabled_[w] & accept[w];
                    if (sk < s_end && s_idx[sk] == w) {
                        act |= s_mask[sk];
                        ++sk;
                    }
                    if (act != 0)
                        sweepWord(w, act);
                }
            }
        }
    }
    flushStartsBelow(words_);

    // Latched states activate on every symbol: OR their pooled successor
    // contribution, then latch any freshly enabled universal self-loop
    // states out of the dynamic vector (the next summary names a
    // superset of the live words).
    if (has_perm_)
        orPermanentsIntoNext(/*mark=*/true);
    if (has_latchable_) {
        for (size_t sw2 = 0; sw2 < sum2_words_; ++sw2) {
            uint64_t b2 = next_sum2_[sw2];
            while (b2 != 0) {
                const size_t sw =
                    sw2 * 64 +
                    static_cast<unsigned>(__builtin_ctzll(b2));
                b2 &= b2 - 1;
                uint64_t b1 = next_sum_[sw];
                while (b1 != 0) {
                    const size_t w =
                        sw * 64 +
                        static_cast<unsigned>(__builtin_ctzll(b1));
                    b1 &= b1 - 1;
                    const uint64_t v = next[w];
                    if (v != 0)
                        next[w] = latchWord(w, v);
                }
            }
        }
    }
}

void
DenseCore::stepFlat(const uint64_t *accept, uint8_t cls, uint32_t sk,
                    uint32_t s_end, uint32_t ssk, uint32_t ss_end,
                    uint64_t position, ReportList *reports)
{
    const uint32_t *begin = dv_.succBegin.data();
    const uint32_t *idx = dv_.succWordIdx.data();
    const uint64_t *mask = dv_.succWordMask.data();
    const uint32_t *s_idx = dv_.startWordIdx.data();
    const uint64_t *s_mask = dv_.startWordMask.data();
    const uint64_t *chain = dv_.chain.data();

    uint64_t *next = next_.data();
    ops_->clear(next, words_);

    uint64_t *act = active_.data();
    ops_->bitAnd(act, enabled_.data(), accept, words_);
    // Reporting starts join the activation vector (per-bit handling for
    // state-ordered reports); non-reporting starts contribute their
    // pooled successors directly.
    for (uint32_t k = sk; k < s_end; ++k)
        act[s_idx[k]] |= s_mask[k];

    // Chain states — the ~90% whose successor is exactly {s+1} — all
    // propagate at once: one cross-word shift-and-OR of the chain slice
    // of the activation vector. Only the fan-out remainder walks the
    // CSR per bit below.
    if (has_chain_) {
        uint64_t *ch = scratch_.data();
        ops_->bitAnd(ch, act, chain, words_);
        ops_->shiftOrInto(next, ch, words_);
    }

    // Matching non-reporting starts: a vector OR of the materialized
    // row when this class's pooled contribution is dense, the sparse
    // entry list otherwise.
    if (ss_end > ssk) {
        const uint32_t row =
            dv_.startNextRow.empty() ? 0 : dv_.startNextRow[cls];
        if (row != 0)
            ops_->orInto(next,
                         dv_.startNextRows.data() +
                             static_cast<size_t>(row - 1) * dv_.stride,
                         words_);
        else
            for (uint32_t k = ssk; k < ss_end; ++k)
                next[dv_.startSuccWordIdx[k]] |=
                    dv_.startSuccWordMask[k];
    }

    for (size_t w = 0; w < words_; ++w) {
        uint64_t a = act[w];
        if (a == 0)
            continue;
        if (reports) {
            uint64_t hits = a & dv_.reporting[w];
            while (hits != 0) {
                const unsigned b =
                    static_cast<unsigned>(__builtin_ctzll(hits));
                reports->push_back(
                    {position, static_cast<GlobalStateId>(w * 64 + b)});
                hits &= hits - 1;
            }
        }
        a &= ~chain[w];
        while (a != 0) {
            const unsigned b =
                static_cast<unsigned>(__builtin_ctzll(a));
            const auto s = static_cast<GlobalStateId>(w * 64 + b);
            for (uint32_t k = begin[s]; k < begin[s + 1]; ++k)
                next[idx[k]] |= mask[k];
            a &= a - 1;
        }
    }

    // OR the latched states' pooled contribution — wholesale when it is
    // dense (the usual flat-regime case), via its summary walk when a
    // few latched words would be drowned by a full sweep.
    if (has_perm_) {
        const uint64_t live =
            ops_->popcount(perm_next_sum_.data(), sum_words_);
        if (live * skip_divisor_ >= words_)
            ops_->orInto(next, perm_next_.data(), words_);
        else
            orPermanentsIntoNext(/*mark=*/false);
    }

    // Latch maintenance, vectorized: fresh = next & latchable & ~perm
    // names the universal self-loop states enabled for the first time
    // this run; after pooling their successors every latchable bit of
    // next is permanent, and perm ⊆ latchable, so one AND-NOT with the
    // permanent set evicts them all from the dynamic vector.
    if (has_latchable_) {
        uint64_t *fresh = scratch_.data();
        ops_->bitAnd(fresh, next, dv_.latchable.data(), words_);
        ops_->andNotInto(fresh, perm_.data(), words_);
        for (size_t w = 0; w < words_; ++w)
            if (fresh[w] != 0)
                latch(w, fresh[w]);
        if (has_perm_)
            ops_->andNotInto(next, perm_.data(), words_);
    }

    // Exact summary rebuild as two vector sweeps, so a later cycle can
    // return to the skip path (and its clearNext) with precise
    // bookkeeping.
    ops_->nonzeroWords(next_sum_.data(), next, words_);
    ops_->nonzeroWords(next_sum2_.data(), next_sum_.data(), sum_words_);
}

} // namespace sparseap
