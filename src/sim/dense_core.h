/**
 * @file
 * Bit-parallel dense stepping core.
 *
 * Where ExecCore walks a dynamic enabled list and probes one 256-bit
 * symbol set per live state per cycle, this core keeps the enabled set
 * as a ⌈N/64⌉-word bit vector and consumes one symbol with word sweeps:
 *
 *   active  = enabled & acceptRow(symbol)  |  starts matching symbol
 *   reports = active & reportingMask             (emit set bits)
 *   next    = OR of successor rows of active     (ctz over set bits,
 *             CSR word-at-a-time)
 *
 * Three structures keep those sweeps on the live part of the automaton:
 *
 *  - the accept row is selected through the flattener's byte→class map,
 *    so the table is #classes rows instead of 256 and the hot rows fit
 *    in cache even at 10⁵ states;
 *  - always-enabled start states never enter the dynamic enabled vector
 *    (their bits are pre-cleared from the successor CSR): the ones that
 *    match the current symbol activate straight from the flattener's
 *    per-class start dispatch list. Rule sets scatter thousands of
 *    start states across the id space — kept in the enabled vector they
 *    make every word permanently live;
 *  - the enabled set carries a two-level summary — bit w of the first
 *    level set iff enabled word w is nonzero, bit v of the second level
 *    set iff summary word v is nonzero — so the sweep visits only live
 *    words via ctz and a dead 4096-state block costs one word test.
 *
 * When the live fraction is high (grid automata: Hamming, Levenshtein,
 * Fermi), summary maintenance costs more than it skips, so step()
 * falls back to a flat SIMD-friendly linear sweep chosen per cycle from
 * a popcount of the summary — O(N/64) but with no per-word bookkeeping.
 *
 * Like the sparse core, the dense core latches universal self-loop
 * states: once enabled they activate forever, so rule-set `.*` gaps
 * would otherwise accumulate thousands of permanently-live scattered
 * bits and defeat the skip. Latched states move to a permanent set
 * whose pooled successor contribution is ORed into next wholesale (see
 * perm_next_ below). Both cores are property-tested to emit identical
 * report multisets.
 */

#ifndef SPARSEAP_SIM_DENSE_CORE_H
#define SPARSEAP_SIM_DENSE_CORE_H

#include <cstdint>
#include <span>
#include <vector>

#include "common/vec.h"
#include "common/word_vector.h"
#include "sim/flat_automaton.h"
#include "sim/report.h"

namespace sparseap {

/** Reusable bit-parallel stepping core bound to one FlatAutomaton. */
class DenseCore
{
  public:
    explicit DenseCore(const FlatAutomaton &fa);

    /**
     * Prepare for a run. When @p install_starts, start-of-data starts
     * are enabled for the first cycle and always-enabled starts are
     * served from the per-class dispatch on every cycle; otherwise the
     * core starts empty (SpAP-style external driving via seed()).
     */
    void reset(bool install_starts);

    /**
     * Enable @p states for the next step() call — used to hand over an
     * in-flight run from the sparse core (see Engine's auto mode).
     * Always-enabled start states are skipped: they are implicitly
     * enabled through the start dispatch and must stay out of the
     * dynamic vector. Permanently-enabled sparse states need no special
     * treatment: once seeded, a universal self-loop state keeps itself
     * enabled through its own transitions.
     */
    void seed(std::span<const GlobalStateId> states);

    /** Enable one state for the next step() (an SpAP enable). */
    void
    seed(GlobalStateId state)
    {
        seed(std::span<const GlobalStateId>(&state, 1));
    }

    /** Consume one input symbol (see file comment for the sweep). */
    void step(uint8_t symbol, uint64_t position, ReportList *reports);

    /**
     * Append every live state — dynamically enabled plus latched
     * (permanent) — to @p out in ascending id order. Re-seeding a fresh
     * core (reset(false) + seed()) with this list reproduces a
     * byte-identical continuation: latched states are non-reporting by
     * construction and re-latch through their own transitions on the
     * first step, exactly like a sparse→dense handover seed. This is
     * the suspend path of sim/session.h.
     */
    void snapshotEnabled(std::vector<GlobalStateId> *out) const;

    /**
     * Input-dimension skip — the software form of the paper's SpAP jump
     * operation. When the configuration is *quiescent* (the dynamic
     * enabled set is exactly the latched states' pooled successor
     * contribution, i.e. stepping reproduces it until something new
     * fires), every input byte whose class cannot fire a reporting
     * start, activate a latched successor, or enable a state outside
     * the permanent machinery is a no-op: it emits nothing and leaves
     * the configuration bit-identical. This scans data[0..n) for the
     * first byte that can matter (simd::Ops::scanForByteMask over a
     * 256-bit mask — the automaton's static quiescent mask when nothing
     * is latched, a per-latch-generation widened mask otherwise) and
     * @return the number of leading bytes the caller may consume
     * without stepping (0 when not quiescent, the next byte is
     * interesting, or the mask is too dense to pay off). Skipped bytes
     * are accounted in StepStats::skippedSymbols/jumps, mirroring the
     * SpAP executor's counters.
     */
    size_t trySkip(const uint8_t *data, size_t n);

    /** True iff no state can activate on the next step. */
    bool idle() const;

    /**
     * Word view of the dynamically enabled set (always-enabled starts
     * excluded — consumers that need them covered mark them once up
     * front, they are enabled on every cycle by definition). The dense
     * profiling path ORs this into a hot accumulator after every step.
     */
    std::span<const uint64_t>
    enabledWords() const
    {
        return {enabled_.data(), words_};
    }

    /**
     * First-level summary of enabledWords(): bit w set iff word w is
     * nonzero. Lets consumers (the dense profiling OR-sweep) visit only
     * live words instead of sweeping all ⌈N/64⌉.
     */
    std::span<const uint64_t>
    enabledSummary() const
    {
        return {enabled_sum_.data(), sum_words_};
    }

    /**
     * Word view of the permanently-enabled (latched) set, monotone
     * within a run. Latched states leave the dynamic vector, so
     * consumers reconstructing "enabled at least once" (the dense
     * profiling path) must union this in.
     */
    std::span<const uint64_t>
    permanentWords() const
    {
        return {perm_.data(), words_};
    }

    /**
     * Flat-sweep crossover: the hierarchical skip path runs only while
     * live words (dynamic + start dispatch) are under 1/kSkipDivisor of
     * the vector; above that the per-word bookkeeping outweighs the
     * skipped work and a linear SIMD sweep wins. Compiled default;
     * overridable per process via SPARSEAP_SKIP_DIVISOR (the divisor in
     * effect is read from globalOptions() at construction).
     */
    static constexpr size_t kSkipDivisor = 4;

    /** Skip/sweep divisor this core runs with (see kSkipDivisor). */
    size_t skipDivisor() const { return skip_divisor_; }

    /** SIMD tier the word sweeps run at (resolved at construction). */
    simd::Isa isa() const { return ops_->isa; }

    /**
     * Per-run step accounting, zeroed by reset(). Three integer adds
     * per cycle on numbers step() computes anyway — the engine folds
     * them into telemetry once per run, so the hot loop never touches
     * the metrics registry.
     */
    struct StepStats
    {
        uint64_t cycles = 0;     ///< step() calls since reset
        uint64_t skipCycles = 0; ///< cycles served by the skip path
        uint64_t liveWords = 0;  ///< sum of per-cycle live word counts
        /** Input bytes consumed without stepping (trySkip). Named like
         *  the SpAP executor's counters: cycles + skippedSymbols equals
         *  the input length when the driver skips. */
        uint64_t skippedSymbols = 0;
        uint64_t jumps = 0; ///< trySkip calls that skipped >= 1 byte
    };

    const StepStats &stepStats() const { return stats_; }

  private:
    /**
     * Scan masks with more interesting bytes than this are not worth
     * scanning with: the expected jump distance (256/(256-pop)) stays
     * under ~8 bytes, below the fixed cost of the quiescence check.
     */
    static constexpr unsigned kMaxScanPopulation = 224;

    bool quiescent() const;
    void buildDynamicScanMask();
    void clearNext();
    void stepSkip(const uint64_t *accept, uint32_t sk, uint32_t s_end,
                  uint32_t ssk, uint32_t ss_end, uint64_t position,
                  ReportList *reports);
    void stepFlat(const uint64_t *accept, uint8_t cls, uint32_t sk,
                  uint32_t s_end, uint32_t ssk, uint32_t ss_end,
                  uint64_t position, ReportList *reports);
    void orPermanentsIntoNext(bool mark);
    uint64_t latchWord(size_t w, uint64_t v);
    void latch(size_t w, uint64_t fresh);

    const FlatAutomaton &fa_;
    const FlatAutomaton::DenseView &dv_;
    const simd::Ops *ops_; ///< active SIMD kernel table (common/vec.h)
    size_t skip_divisor_;  ///< skip/sweep crossover (kSkipDivisor)
    size_t words_;      ///< enabled-set words: ceil(N / 64)
    size_t sum_words_;  ///< level-1 summary words: ceil(words_ / 64)
    size_t sum2_words_; ///< level-2 summary words: ceil(sum_words_ / 64)
    bool has_starts_;   ///< automaton has always-enabled starts
    bool has_latchable_; ///< automaton has latchable states (see DenseView)
    bool has_chain_;     ///< automaton has chain states (see DenseView)
    bool has_perm_ = false; ///< some state has been latched this run
    StepStats stats_;

    WordVector enabled_; ///< enabled for the upcoming step
    WordVector enabled_sum_;
    WordVector enabled_sum2_;
    WordVector next_; ///< scratch: enabled for the following step
    WordVector next_sum_;
    WordVector next_sum2_;
    WordVector active_; ///< flat-path scratch: activations per word
    WordVector scratch_; ///< flat-path scratch: chain slice / fresh latches

    /**
     * The dense analogue of the sparse core's latched/permanent
     * machinery. States latched so far this run (perm_) stay out of the
     * dynamic vector; since they activate on every symbol, the union of
     * their successor masks (perm_next_, kept disjoint from perm_) is
     * ORed into next_ wholesale each cycle — one vectorizable sweep of
     * its nonzero words (named, as a superset, by perm_next_sum_)
     * instead of per-bit CSR propagation from thousands of states.
     */
    WordVector perm_;
    WordVector perm_next_;
    WordVector perm_next_sum_;

    /**
     * Quiescent-scan machinery (see trySkip). The static mask is the
     * automaton's P=∅ scan set (DenseView::staticScan), prepared once
     * at construction. Latching widens the set of boring-byte
     * conditions, so the dynamic mask is rebuilt lazily whenever the
     * permanent generation counter (bumped by every latch and reset)
     * moves past the generation it was built for. The _ok_ flags gate
     * on kMaxScanPopulation.
     */
    simd::ScanMask static_scan_{};
    bool static_scan_ok_ = false;
    simd::ScanMask dyn_scan_{};
    bool dyn_scan_ok_ = false;
    uint64_t perm_gen_ = 0;
    uint64_t dyn_scan_gen_ = ~0ull;
};

} // namespace sparseap

#endif // SPARSEAP_SIM_DENSE_CORE_H
