/**
 * @file
 * Bit-parallel dense stepping core.
 *
 * Where ExecCore walks a dynamic enabled list and probes one 256-bit
 * symbol set per live state per cycle, this core keeps the enabled set
 * as a ⌈N/64⌉-word bit vector and consumes one symbol with three word
 * sweeps:
 *
 *   active  = enabled & acceptRow(symbol)        (who matches this byte)
 *   reports = active & reportingMask             (emit set bits)
 *   next    = OR of successor rows of active     (ctz over set bits,
 *             CSR word-at-a-time)  |  always-enabled starts
 *
 * Cost per cycle is O(N/64 + matches) independent of how many states are
 * live, so it wins exactly where the sparse core loses: dense live sets
 * (Hamming / Levenshtein grids, Fermi). It implements the *plain* AP
 * semantics with no latched/permanent machinery — a universal self-loop
 * state simply re-enables itself through its own transition every cycle,
 * which costs nothing extra here. Both cores are property-tested to emit
 * identical report multisets.
 */

#ifndef SPARSEAP_SIM_DENSE_CORE_H
#define SPARSEAP_SIM_DENSE_CORE_H

#include <cstdint>
#include <span>

#include "common/word_vector.h"
#include "sim/flat_automaton.h"
#include "sim/report.h"

namespace sparseap {

/** Reusable bit-parallel stepping core bound to one FlatAutomaton. */
class DenseCore
{
  public:
    explicit DenseCore(const FlatAutomaton &fa);

    /**
     * Prepare for a run. When @p install_starts, start-of-data and
     * always-enabled starts are enabled for the first cycle; otherwise
     * the core starts empty (SpAP-style external driving via seed()).
     */
    void reset(bool install_starts);

    /**
     * Enable @p states for the next step() call — used to hand over an
     * in-flight run from the sparse core (see Engine's auto mode).
     * Permanently-enabled sparse states need no special treatment: once
     * seeded, a universal self-loop state keeps itself enabled through
     * its own transitions.
     */
    void seed(std::span<const GlobalStateId> states);

    /** Consume one input symbol (see file comment for the sweep). */
    void step(uint8_t symbol, uint32_t position, ReportList *reports);

    /** True iff no state is enabled for the next step. */
    bool idle() const;

    /**
     * Word view of the enabled-for-next-step set. The dense profiling
     * path ORs this into a hot accumulator after every step — the
     * word-sweep analogue of the sparse core's per-state enable hooks.
     */
    std::span<const uint64_t>
    enabledWords() const
    {
        return {enabled_.data(), words_};
    }

  private:
    const FlatAutomaton &fa_;
    const FlatAutomaton::DenseView &dv_;
    size_t words_;

    WordVector enabled_; ///< enabled for the upcoming step
    WordVector active_;  ///< scratch: activated this step
    WordVector next_;    ///< scratch: enabled for the following step
};

} // namespace sparseap

#endif // SPARSEAP_SIM_DENSE_CORE_H
