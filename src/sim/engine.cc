#include "sim/engine.h"

#include <algorithm>

#include "common/logging.h"
#include "common/vec.h"
#include "sim/dense_core.h"
#include "sim/exec_core.h"
#include "sim/hot_dfa.h"
#include "sim/profiler.h"
#include "sim/session.h"
#include "telemetry/metrics.h"

namespace sparseap {

namespace {

/**
 * Fold one finished run into the engine.* counters. Called once per
 * run (never per symbol), so the stepping loops stay free of registry
 * traffic; dense-path internals come from the core's per-run StepStats.
 */
void
recordRun(const SimResult &result, size_t cycles,
          const DenseCore *dense, bool handover)
{
    static telemetry::Counter runs("engine.runs");
    static telemetry::Counter cycle_count("engine.cycles");
    static telemetry::Counter reports("engine.reports");
    static telemetry::Counter dense_runs("engine.dense_runs");
    static telemetry::Counter handovers("engine.dense_handovers");
    static telemetry::Counter dense_cycles("engine.dense_cycles");
    static telemetry::Counter skip_cycles("engine.dense_skip_cycles");
    static telemetry::Counter live_words("engine.dense_live_words");
    static telemetry::Counter dfa_runs("engine.dfa_runs");
    static telemetry::Counter dfa_cycles("engine.dfa_cycles");
    static telemetry::Counter skip_symbols("engine.input_skip_symbols");
    static telemetry::Counter skip_jumps("engine.input_skip_jumps");
    static telemetry::Gauge simd_isa("engine.simd_isa");

    runs.add(1);
    cycle_count.add(cycles);
    reports.add(result.reports.size());
    simd_isa.set(static_cast<int64_t>(simd::activeIsa()));
    if (result.skippedSymbols != 0) {
        skip_symbols.add(result.skippedSymbols);
        skip_jumps.add(result.skipJumps);
    }
    if (result.usedDfa) {
        dfa_runs.add(1);
        dfa_cycles.add(cycles);
    }
    if (result.usedDenseCore && dense) {
        dense_runs.add(1);
        if (handover)
            handovers.add(1);
        const DenseCore::StepStats &ds = dense->stepStats();
        dense_cycles.add(ds.cycles);
        skip_cycles.add(ds.skipCycles);
        live_words.add(ds.liveWords);
    }
}

} // namespace

Engine::Engine(const FlatAutomaton &fa)
    : Engine(fa, globalOptions().engineMode)
{
}

Engine::Engine(const FlatAutomaton &fa, EngineMode mode)
    : fa_(fa), mode_(mode), skip_enabled_(globalOptions().inputSkip)
{
    SessionConfig config;
    config.mode = mode;
    session_ = std::make_unique<EngineSession>(fa, config);
}

Engine::~Engine() = default;

EngineMode
Engine::resolvedMode() const
{
    return session_->resolvedMode();
}

SimResult
Engine::run(std::span<const uint8_t> input, HotStateProfiler *profiler)
{
    const size_t n = input.size();

    // One whole-input stream through the session. The alphabet is the
    // input's exact distinct-byte set — the sparse core's universality
    // (and so its latching and within-position report order) is
    // relative to it, and a whole-input run knows it up front.
    session_->setInputSkip(skip_enabled_);
    session_->setAlphabet(ExecCore::distinctBytes(input));
    session_->restart(profiler);
    session_->feed(input);

    const SessionStats &st = session_->stats();
    SimResult result;
    result.cycles = n;
    result.skippedSymbols = st.skippedSymbols;
    result.skipJumps = st.skipJumps;
    result.usedDenseCore = st.usedDenseCore;
    result.usedDfa = st.usedDfa;
    result.reports = session_->takeReports();
    recordRun(result, n,
              st.usedDenseCore ? session_->denseCore() : nullptr,
              st.handedOver);
    return result;
}

} // namespace sparseap
