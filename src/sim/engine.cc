#include "sim/engine.h"

#include <algorithm>

#include "common/logging.h"
#include "common/vec.h"
#include "sim/dense_core.h"
#include "sim/exec_core.h"
#include "sim/hot_dfa.h"
#include "sim/profiler.h"
#include "telemetry/metrics.h"

namespace sparseap {

namespace {

/**
 * Fold one finished run into the engine.* counters. Called once per
 * run (never per symbol), so the stepping loops stay free of registry
 * traffic; dense-path internals come from the core's per-run StepStats.
 */
void
recordRun(const SimResult &result, size_t cycles,
          const DenseCore *dense, bool handover)
{
    static telemetry::Counter runs("engine.runs");
    static telemetry::Counter cycle_count("engine.cycles");
    static telemetry::Counter reports("engine.reports");
    static telemetry::Counter dense_runs("engine.dense_runs");
    static telemetry::Counter handovers("engine.dense_handovers");
    static telemetry::Counter dense_cycles("engine.dense_cycles");
    static telemetry::Counter skip_cycles("engine.dense_skip_cycles");
    static telemetry::Counter live_words("engine.dense_live_words");
    static telemetry::Counter dfa_runs("engine.dfa_runs");
    static telemetry::Counter dfa_cycles("engine.dfa_cycles");
    static telemetry::Counter skip_symbols("engine.input_skip_symbols");
    static telemetry::Counter skip_jumps("engine.input_skip_jumps");
    static telemetry::Gauge simd_isa("engine.simd_isa");

    runs.add(1);
    cycle_count.add(cycles);
    reports.add(result.reports.size());
    simd_isa.set(static_cast<int64_t>(simd::activeIsa()));
    if (result.skippedSymbols != 0) {
        skip_symbols.add(result.skippedSymbols);
        skip_jumps.add(result.skipJumps);
    }
    if (result.usedDfa) {
        dfa_runs.add(1);
        dfa_cycles.add(cycles);
    }
    if (result.usedDenseCore && dense) {
        dense_runs.add(1);
        if (handover)
            handovers.add(1);
        const DenseCore::StepStats &ds = dense->stepStats();
        dense_cycles.add(ds.cycles);
        skip_cycles.add(ds.skipCycles);
        live_words.add(ds.liveWords);
    }
}

} // namespace

Engine::Engine(const FlatAutomaton &fa)
    : Engine(fa, globalOptions().engineMode)
{
}

Engine::Engine(const FlatAutomaton &fa, EngineMode mode)
    : fa_(fa), mode_(mode), core_(std::make_unique<ExecCore>(fa)),
      skip_enabled_(globalOptions().inputSkip)
{
}

namespace {

/**
 * Drive the dense core over input[i..n): quiescence-skip interleaved
 * with stepping when @p skip, a plain step loop otherwise. Both engine
 * dense paths (pinned and auto handover) share it.
 */
void
runDense(DenseCore &dense, std::span<const uint8_t> input, size_t i,
         bool skip, SimResult *result)
{
    const size_t n = input.size();
    if (skip) {
        while (i < n) {
            i += dense.trySkip(input.data() + i, n - i);
            if (i >= n)
                break;
            dense.step(input[i], static_cast<uint32_t>(i),
                       &result->reports);
            ++i;
        }
        const DenseCore::StepStats &ds = dense.stepStats();
        result->skippedSymbols = ds.skippedSymbols;
        result->skipJumps = ds.jumps;
    } else {
        for (; i < n; ++i)
            dense.step(input[i], static_cast<uint32_t>(i),
                       &result->reports);
    }
    result->usedDenseCore = true;
}

} // namespace

Engine::~Engine() = default;

SimResult
Engine::run(std::span<const uint8_t> input, HotStateProfiler *profiler)
{
    SimResult result;
    result.reports.reserve(report_capacity_);
    result.cycles = input.size();
    const size_t n = input.size();

    if (profiler)
        profiler->markStarts(fa_);

    // Profiling needs the per-state enable hooks only the sparse core
    // has; profile prefixes are short, so this costs nothing measurable.
    const EngineMode mode =
        profiler != nullptr ? EngineMode::Sparse : mode_;

    if (mode == EngineMode::Dfa && !dfa_checked_) {
        dfa_checked_ = true;
        dfa_ = fa_.ensureHotDfa();
        if (!dfa_)
            debugLog("dfa mode: budget bailout on ", fa_.size(),
                     "-state automaton, using the dense core");
    }
    if (dfa_ && (mode == EngineMode::Dfa || mode == EngineMode::Auto))
        return runDfa(input);

    if (mode == EngineMode::Dense ||
        (mode == EngineMode::Dfa && !dfa_)) {
        if (!dense_)
            dense_ = std::make_unique<DenseCore>(fa_);
        dense_->reset(/*install_starts=*/true);
        runDense(*dense_, input, 0, skip_enabled_, &result);
        report_capacity_ = std::max(report_capacity_,
                                    result.reports.size());
        recordRun(result, n, dense_.get(), /*handover=*/false);
        return result;
    }

    core_->reset(ExecCore::distinctBytes(input), profiler,
                 /*install_starts=*/true);

    size_t i = 0;
    if (mode == EngineMode::Auto && fa_.size() >= kMinDenseStates &&
        n > kProbeCycles) {
        // Probe: run the sparse core for a prefix while accumulating the
        // per-cycle work it actually pays.
        uint64_t work_acc = 0;
        for (; i < kProbeCycles; ++i) {
            core_->step(input[i], static_cast<uint32_t>(i),
                        &result.reports);
            work_acc += core_->lastStepWork();
        }
        const uint64_t threshold =
            static_cast<uint64_t>(kProbeCycles) * kDenseWorkPerWord *
            wordsForBits(fa_.size());
        if (work_acc >= threshold) {
            // Dense from here on: hand the in-flight enabled set over.
            // The dense core runs on the class-compressed accept table
            // with the hierarchical live-word skip, so past this point
            // per-cycle cost tracks the live region, not N.
            std::vector<GlobalStateId> live;
            core_->snapshotEnabled(&live);
            if (!dense_)
                dense_ = std::make_unique<DenseCore>(fa_);
            dense_->reset(/*install_starts=*/false);
            dense_->seed(live);
            runDense(*dense_, input, i, skip_enabled_, &result);
            report_capacity_ = std::max(report_capacity_,
                                        result.reports.size());
            recordRun(result, n, dense_.get(), /*handover=*/true);
            // The measured step work that selected the dense core also
            // nominates the automaton for determinization: small ones
            // (hot partitions) get one capped attempt, and later runs
            // execute on the DFA table from cycle 0.
            if (!dfa_checked_ && fa_.size() <= kMaxAutoDfaStates) {
                dfa_checked_ = true;
                dfa_ = fa_.ensureHotDfa();
            }
            return result;
        }
    }

    for (; i < n; ++i) {
        core_->step(input[i], static_cast<uint32_t>(i), &result.reports);
    }
    report_capacity_ = std::max(report_capacity_, result.reports.size());
    recordRun(result, n, nullptr, /*handover=*/false);
    return result;
}

SimResult
Engine::runDfa(std::span<const uint8_t> input)
{
    SimResult result;
    result.reports.reserve(report_capacity_);
    result.cycles = input.size();

    // One table lookup per symbol; reports are a precomputed property
    // of the successor state, listed in ascending NFA state id — the
    // same order the dense core's word sweep emits them.
    const HotDfa &dfa = *dfa_;
    const size_t n = input.size();
    uint32_t state = 0;
    if (skip_enabled_ && dfa.anySkippable()) {
        // Quiescence-skip loop: while the DFA sits in a skippable state
        // (no reports, wide self-loop), scan for the next byte whose
        // transition leaves it instead of looking every byte up.
        // A DFA step is one table load, so skipping only pays when the
        // quiescent runs are long enough to amortize the per-byte mask
        // check and the scan call. That depends on the input, not the
        // automaton, so the gate is adaptive: reassess the average jump
        // length every kAdaptJumps jumps and fall back to the plain
        // step loop for the rest of the run when it sits below
        // break-even. Reports are identical either way — this only
        // moves work between the scan and the table.
        constexpr uint64_t kAdaptJumps = 64;
        constexpr uint64_t kMinBytesPerJump = 4;
        const simd::Ops &ops = simd::ops();
        bool scanning = true;
        size_t i = 0;
        while (i < n) {
            const simd::ScanMask *m =
                scanning ? dfa.skipMask(state) : nullptr;
            if (m != nullptr && !m->test(input[i])) {
                // Current byte self-loops: the scan skips >= 1.
                const size_t skipped =
                    ops.scanForByteMask(input.data() + i, n - i, *m);
                result.skippedSymbols += skipped;
                ++result.skipJumps;
                i += skipped;
                if (i >= n)
                    break;
                if (result.skipJumps % kAdaptJumps == 0 &&
                    result.skippedSymbols <
                        result.skipJumps * kMinBytesPerJump)
                    scanning = false;
            }
            state = dfa.next(state, input[i]);
            for (GlobalStateId id : dfa.reportsOf(state))
                result.reports.push_back({static_cast<uint32_t>(i), id});
            ++i;
        }
    } else {
        for (size_t i = 0; i < n; ++i) {
            state = dfa.next(state, input[i]);
            for (GlobalStateId id : dfa.reportsOf(state))
                result.reports.push_back({static_cast<uint32_t>(i), id});
        }
    }

    result.usedDfa = true;
    report_capacity_ = std::max(report_capacity_, result.reports.size());
    recordRun(result, n, nullptr, /*handover=*/false);
    return result;
}

} // namespace sparseap
