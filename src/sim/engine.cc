#include "sim/engine.h"

#include "common/logging.h"
#include "sim/exec_core.h"
#include "sim/profiler.h"

namespace sparseap {

Engine::Engine(const FlatAutomaton &fa)
    : fa_(fa), core_(std::make_unique<ExecCore>(fa))
{
}

Engine::~Engine() = default;

SimResult
Engine::run(std::span<const uint8_t> input, HotStateProfiler *profiler)
{
    SimResult result;
    result.cycles = input.size();

    if (profiler)
        profiler->markStarts(fa_);

    core_->reset(ExecCore::distinctBytes(input), profiler,
                 /*install_starts=*/true);
    for (size_t i = 0; i < input.size(); ++i) {
        core_->step(input[i], static_cast<uint32_t>(i), &result.reports);
    }
    return result;
}

} // namespace sparseap
