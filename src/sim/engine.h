/**
 * @file
 * Functional homogeneous-NFA engine (the VASim-equivalent substrate).
 *
 * Executes an automaton over a byte stream with the AP semantics: each
 * cycle, every enabled state whose symbol-set contains the input byte
 * *activates*; activation of a reporting state emits a report; successors
 * of activated states are *enabled* for the next cycle.
 *
 * Three interchangeable stepping cores implement these semantics
 * (property tests prove they emit identical report multisets):
 *
 *  - **sparse** (ExecCore): dynamic enabled list with the latched/
 *    permanent optimization — cost proportional to the live set. Wins
 *    when few states are live (Snort, ClamAV, Dotstar).
 *  - **dense** (DenseCore): bit-parallel word vectors — cost O(N/64)
 *    per cycle regardless of live-set size. Wins when the live set is a
 *    sizable fraction of the automaton (Hamming / Levenshtein grids).
 *  - **dfa** (HotDfa): capped subset-construction table — one lookup
 *    per symbol, independent of the live set. Wins when the automaton
 *    is small enough to determinize (the profiler's hot partitions);
 *    falls back to the dense core when the budget is exceeded.
 *
 * The default *auto* mode probes the live-set density over the first
 * cycles on the sparse core and hands the in-flight run over to the
 * dense core when the automaton runs dense (see docs/PERFORMANCE.md).
 * After a run that crossed over, small automata (<= kMaxAutoDfaStates)
 * are determinized once and later runs execute on the DFA table from
 * cycle 0 — the same measured-work signal driving one more handover.
 * SPARSEAP_ENGINE=sparse|dense|dfa|auto overrides.
 */

#ifndef SPARSEAP_SIM_ENGINE_H
#define SPARSEAP_SIM_ENGINE_H

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "common/options.h"
#include "sim/flat_automaton.h"
#include "sim/report.h"

namespace sparseap {

class DenseCore;
class EngineSession;
class ExecCore;
class HotDfa;
class HotStateProfiler;

/** Result of a functional run. */
struct SimResult
{
    /** Reports in nondecreasing position order. */
    ReportList reports;
    /** Symbols consumed (== input length for a plain run). */
    uint64_t cycles = 0;
    /**
     * Symbols consumed without stepping by the quiescence input skip
     * (SPARSEAP_INPUT_SKIP, see DenseCore::trySkip / HotDfa::skipMask);
     * stepped cycles are cycles - skippedSymbols. 0 when the skip is
     * off or never fired — reports are byte-identical either way.
     */
    uint64_t skippedSymbols = 0;
    /** Skip scans that advanced the cursor (SpAP's "jumps"). */
    uint64_t skipJumps = 0;
    /** True when (part of) the run executed on the dense core. */
    bool usedDenseCore = false;
    /** True when the run executed on the hot-DFA table. */
    bool usedDfa = false;
};

/**
 * Reusable engine over one FlatAutomaton. The engine owns scratch state
 * sized to the automaton, so reuse across runs avoids reallocation.
 */
class Engine
{
  public:
    /** Core selection from globalOptions().engineMode. */
    explicit Engine(const FlatAutomaton &fa);

    /** Core selection pinned to @p mode. */
    Engine(const FlatAutomaton &fa, EngineMode mode);

    ~Engine();

    /**
     * Run the whole input.
     * @param input the symbol stream
     * @param profiler optional hot-state recorder; profiling runs always
     *        use the sparse core, whose enable hooks feed the profiler
     */
    SimResult run(std::span<const uint8_t> input,
                  HotStateProfiler *profiler = nullptr);

    const FlatAutomaton &automaton() const { return fa_; }

    EngineMode mode() const { return mode_; }

    /**
     * The core the most recent run actually executed on — the
     * configured mode with auto/bailout resolution applied (Sparse
     * when the auto probe declined or never decided, Dense after a
     * handover or DFA budget bailout, Dfa on the table). Before the
     * first run this is the configured mode's default resolution.
     * SimResult's usedDenseCore/usedDfa flags carry the same
     * information per result; this accessor reads it off the engine
     * without threading the result around.
     */
    EngineMode resolvedMode() const;

    /**
     * Toggle the quiescence input skip for this engine (defaults to
     * globalOptions().inputSkip, i.e. SPARSEAP_INPUT_SKIP). Reports are
     * byte-identical in both settings; benches flip it to measure the
     * skip's contribution.
     */
    void setInputSkip(bool on) { skip_enabled_ = on; }

    /** True iff this engine's runs may use the input skip. */
    bool inputSkip() const { return skip_enabled_; }

    /** Auto-mode heuristic constants (documented in PERFORMANCE.md). */
    /** Cycles sampled on the sparse core before deciding. */
    static constexpr size_t kProbeCycles = 128;
    /**
     * Hand over when the sparse core's measured per-cycle work (dynamic
     * enabled states + dispatch-table matches) exceeds this many units
     * per 64-state word — the point where the dense core's fixed sweep
     * is cheaper than the sparse core's pointer chasing.
     */
    static constexpr size_t kDenseWorkPerWord = 2;
    /** Never hand over below this size: one word sweep covers it. */
    static constexpr size_t kMinDenseStates = 256;
    /**
     * Auto mode attempts determinization only for automata at most
     * this large (and only after a dense handover proved the live set
     * dense): hot partitions qualify, full rule-set automata — whose
     * subset construction would blow the budget anyway — skip the
     * attempt entirely.
     */
    static constexpr size_t kMaxAutoDfaStates = 4096;

  private:
    const FlatAutomaton &fa_;
    EngineMode mode_;
    /**
     * The engine is a thin shell over a suspendable session
     * (sim/session.h): run() = restart + one whole-input feed. Cross-
     * run state — the one-shot DFA selection, the dense core, report-
     * capacity reuse — lives in the session, so the chunked and
     * whole-input paths are one implementation.
     */
    std::unique_ptr<EngineSession> session_;
    bool skip_enabled_; ///< quiescence input skip (see setInputSkip)
};

} // namespace sparseap

#endif // SPARSEAP_SIM_ENGINE_H
