/**
 * @file
 * Functional homogeneous-NFA engine (the VASim-equivalent substrate).
 *
 * Executes an automaton over a byte stream with the AP semantics: each
 * cycle, every enabled state whose symbol-set contains the input byte
 * *activates*; activation of a reporting state emits a report; successors
 * of activated states are *enabled* for the next cycle. Always-enabled
 * start states are dispatched through a 256-entry table instead of living
 * in the dynamic enabled set, so per-cycle cost is proportional to the
 * number of matching states, not the number of NFAs.
 */

#ifndef SPARSEAP_SIM_ENGINE_H
#define SPARSEAP_SIM_ENGINE_H

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "sim/flat_automaton.h"
#include "sim/report.h"

namespace sparseap {

class ExecCore;
class HotStateProfiler;

/** Result of a functional run. */
struct SimResult
{
    /** Reports in nondecreasing position order. */
    ReportList reports;
    /** Symbols consumed (== input length for a plain run). */
    uint64_t cycles = 0;
};

/**
 * Reusable engine over one FlatAutomaton. The engine owns scratch state
 * sized to the automaton, so reuse across runs avoids reallocation.
 */
class Engine
{
  public:
    explicit Engine(const FlatAutomaton &fa);
    ~Engine();

    /**
     * Run the whole input.
     * @param input the symbol stream
     * @param profiler optional hot-state recorder
     */
    SimResult run(std::span<const uint8_t> input,
                  HotStateProfiler *profiler = nullptr);

    const FlatAutomaton &automaton() const { return fa_; }

  private:
    const FlatAutomaton &fa_;
    std::unique_ptr<ExecCore> core_;
};

} // namespace sparseap

#endif // SPARSEAP_SIM_ENGINE_H
