#include "sim/exec_core.h"

#include "common/logging.h"
#include "common/word_vector.h"
#include "sim/profiler.h"

namespace sparseap {

ExecCore::ExecCore(const FlatAutomaton &fa)
    : fa_(fa), self_loop_(fa.size(), 0), status_(fa.size(), Status::Normal),
      mark_(fa.size(), 0)
{
    for (GlobalStateId s = 0; s < fa.size(); ++s) {
        for (GlobalStateId t : fa.successors(s)) {
            if (t == s) {
                self_loop_[s] = 1;
                break;
            }
        }
    }
}

Bitset256
ExecCore::distinctBytes(std::span<const uint8_t> input)
{
    Bitset256 set;
    for (uint8_t b : input)
        set.set(b);
    return set;
}

bool
ExecCore::universal(GlobalStateId s) const
{
    // symbols(s) covers every byte of the stream: alphabet & ~symbols
    // must be empty.
    return (input_alphabet_ & ~fa_.symbols(s)).empty();
}

void
ExecCore::reset(const Bitset256 &input_alphabet,
                HotStateProfiler *profiler, bool install_starts)
{
    input_alphabet_ = input_alphabet;
    profiler_ = profiler;

    std::fill(status_.begin(), status_.end(), Status::Normal);
    std::fill(mark_.begin(), mark_.end(), 0u);
    epoch_ = 1;
    enabled_.clear();
    next_enabled_.clear();
    for (auto &bucket : perm_table_)
        bucket.clear();
    permanent_count_ = 0;
    permanent_states_.clear();
    latched_pending_.clear();
    latched_reporting_.clear();
    pending_permanent_.clear();

    if (!install_starts)
        return;

    // Always-enabled starts are permanent by definition.
    for (GlobalStateId s : fa_.allInputStarts()) {
        if (profiler_)
            profiler_->markEnabled(s);
        if (status_[s] == Status::Normal)
            makePermanent(s);
    }
    // Start-of-data starts are enabled for the first cycle only.
    for (GlobalStateId s : fa_.startOfDataStarts()) {
        if (profiler_)
            profiler_->markEnabled(s);
        enableState(s);
    }
}

void
ExecCore::makePermanent(GlobalStateId s)
{
    SPARSEAP_ASSERT(status_[s] == Status::Normal,
                    "makePermanent on non-normal state ", s);
    if (profiler_)
        profiler_->markEnabled(s);
    ++permanent_count_;
    permanent_states_.push_back(s);
    if (universal(s)) {
        status_[s] = Status::Latched;
        latched_pending_.push_back(s);
    } else {
        status_[s] = Status::Permanent;
        const Bitset256 accepted = input_alphabet_ & fa_.symbols(s);
        forEachSetBit(std::span<const uint64_t>(accepted.words),
                      [&](size_t b) { perm_table_[b].push_back(s); });
    }
}

void
ExecCore::snapshotEnabled(std::vector<GlobalStateId> *out) const
{
    for (GlobalStateId s : enabled_) {
        if (status_[s] == Status::Normal && mark_[s] == epoch_)
            out->push_back(s);
    }
    out->insert(out->end(), permanent_states_.begin(),
                permanent_states_.end());
}

void
ExecCore::saveState(Snapshot *out) const
{
    out->dynamic.clear();
    out->permanent.clear();
    for (GlobalStateId s : enabled_) {
        if (status_[s] == Status::Normal && mark_[s] == epoch_)
            out->dynamic.push_back(s);
    }
    out->permanent.assign(permanent_states_.begin(),
                          permanent_states_.end());
}

void
ExecCore::restoreState(const Bitset256 &input_alphabet,
                       const Snapshot &snap)
{
    reset(input_alphabet, nullptr, /*install_starts=*/false);
    // Replaying the promotions in promotion order rebuilds the
    // per-symbol dispatch buckets in the original order; latched states
    // re-enter latched_pending_ and are (re-)expanded at the next
    // step(), which appends latched_reporting_ in the same promotion
    // order the original run accumulated — so the per-cycle report
    // prefix is unchanged. Successor promotions triggered by that
    // expansion find their targets already non-Normal and are no-ops.
    for (GlobalStateId s : snap.permanent)
        makePermanent(s);
    // Dynamic states in list order. None of them is universal with a
    // self-loop (those are promoted the moment they are enabled), so
    // enableState appends without promoting.
    for (GlobalStateId s : snap.dynamic)
        enableState(s);
}

void
ExecCore::enableState(GlobalStateId s)
{
    if (status_[s] != Status::Normal)
        return; // already permanently enabled
    if (profiler_)
        profiler_->markEnabled(s);
    if (universal(s) && hasSelfLoop(s)) {
        // Enabled now, activates on every symbol, re-enables itself:
        // permanently enabled from this cycle on.
        makePermanent(s);
        return;
    }
    if (mark_[s] != epoch_) {
        mark_[s] = epoch_;
        enabled_.push_back(s);
    }
}

void
ExecCore::enableForNext(GlobalStateId t)
{
    if (status_[t] != Status::Normal)
        return;
    const uint32_t next_epoch = epoch_ + 1;
    if (mark_[t] != next_epoch) {
        mark_[t] = next_epoch;
        next_enabled_.push_back(t);
        if (profiler_)
            profiler_->markEnabled(t);
        if (universal(t) && hasSelfLoop(t)) {
            // Will latch at the start of the next cycle.
            pending_permanent_.push_back(t);
        }
    }
}

void
ExecCore::activate(GlobalStateId s, uint64_t position,
                   ReportList *reports)
{
    if (fa_.reporting(s) && reports)
        reports->push_back({position, s});
    for (GlobalStateId t : fa_.successors(s))
        enableForNext(t);
}

void
ExecCore::expandLatched()
{
    for (GlobalStateId s : latched_pending_) {
        if (fa_.reporting(s))
            latched_reporting_.push_back(s);
        // A latched state activates on every remaining cycle, so its
        // successors are permanently enabled from the next cycle on.
        for (GlobalStateId t : fa_.successors(s)) {
            if (t != s && status_[t] == Status::Normal)
                pending_permanent_.push_back(t);
        }
    }
    latched_pending_.clear();
}

void
ExecCore::flushPending()
{
    for (GlobalStateId s : pending_permanent_) {
        if (status_[s] == Status::Normal)
            makePermanent(s);
    }
    pending_permanent_.clear();
}

void
ExecCore::step(uint8_t symbol, uint64_t position, ReportList *reports)
{
    expandLatched();

    // Latched reporting states match every actual input byte.
    if (reports) {
        for (GlobalStateId s : latched_reporting_)
            reports->push_back({position, s});
    }

    next_enabled_.clear();
    last_step_work_ = perm_table_[symbol].size() + enabled_.size();

    for (GlobalStateId s : perm_table_[symbol])
        activate(s, position, reports);

    for (GlobalStateId s : enabled_) {
        // A state may have become permanent while queued.
        if (status_[s] == Status::Normal && fa_.symbols(s).test(symbol))
            activate(s, position, reports);
    }

    enabled_.swap(next_enabled_);
    ++epoch_;
    flushPending();
}

} // namespace sparseap
