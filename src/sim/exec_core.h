/**
 * @file
 * Shared cycle-stepping core for the BaseAP functional engine and the
 * SpAP-mode engine.
 *
 * Semantics are the plain AP model (enabled -> activated -> successors
 * enabled), with one pure optimization for `.*`-heavy automata:
 *
 *  - A state is *universal* (w.r.t. one input stream) when its symbol-set
 *    contains every distinct byte of that stream: once enabled it
 *    activates on every remaining cycle.
 *  - A universal state that re-enables itself (self-loop) or that is an
 *    always-enabled start is therefore *latched*: permanently enabled and
 *    permanently activating. Its successors become *permanently enabled*
 *    and are served from a per-symbol dispatch table instead of being
 *    re-inserted into the dynamic enabled set every cycle.
 *
 * This collapses the per-cycle cost of self-loop gap states (SPM, Fermi,
 * Dotstar `.*` positions) from O(live gap states) to O(actual matches),
 * without changing a single report. Property tests pit this core against
 * an independent naive simulator.
 */

#ifndef SPARSEAP_SIM_EXEC_CORE_H
#define SPARSEAP_SIM_EXEC_CORE_H

#include <array>
#include <cstdint>
#include <vector>

#include "sim/flat_automaton.h"
#include "sim/report.h"

namespace sparseap {

class HotStateProfiler;

/** Reusable stepping core bound to one FlatAutomaton. */
class ExecCore
{
  public:
    explicit ExecCore(const FlatAutomaton &fa);

    /**
     * Prepare for a run over a stream whose distinct bytes are
     * @p input_alphabet. Clears all dynamic and permanent state, then
     * installs the always-enabled starts (all-input kind) as permanent
     * and the start-of-data starts as enabled for the first cycle.
     *
     * @param profiler optional hot-state recorder
     * @param install_starts when false, start states are NOT installed
     *        (SpAP mode: the cold fabric is driven by events only)
     */
    void reset(const Bitset256 &input_alphabet,
               HotStateProfiler *profiler, bool install_starts);

    /**
     * Enable @p s for the next step() call (an SpAP enable operation or
     * internal successor enabling). Idempotent; no-op when the state is
     * already permanently enabled.
     */
    void enableState(GlobalStateId s);

    /** True iff no state is enabled (dynamic or permanent). */
    bool
    idle() const
    {
        return enabled_.empty() && permanent_count_ == 0 &&
               latched_pending_.empty();
    }

    /**
     * Consume one input symbol.
     * @param symbol the byte at this position
     * @param position global stream position (for report records)
     * @param reports destination for reports emitted this cycle
     */
    void step(uint8_t symbol, uint64_t position, ReportList *reports);

    /** Compute the set of distinct bytes in @p input. */
    static Bitset256 distinctBytes(std::span<const uint8_t> input);

    /**
     * Work this core paid for the most recent step(): states dispatched
     * from the permanent symbol table plus dynamic enabled states
     * walked. Latched states cost nothing per cycle and are excluded —
     * this is the honest sparse-cost measure the engine's density
     * heuristic weighs against the dense core's fixed word-sweep cost.
     */
    size_t lastStepWork() const { return last_step_work_; }

    /**
     * Append every state enabled for the upcoming step to @p out:
     * the dynamic enabled set plus all permanently-enabled (latched or
     * dispatched) states. Together with the plain AP semantics this is
     * the complete execution state, so the dense core can take over an
     * in-flight run from this snapshot.
     */
    void snapshotEnabled(std::vector<GlobalStateId> *out) const;

    /**
     * Portable execution state between two step() calls, captured by
     * saveState() and replayed by restoreState() — the suspend/resume
     * backbone of sim/session.h. Unlike snapshotEnabled (a flat set for
     * the dense core, which is insensitive to order), the sparse core's
     * within-position report order depends on its internal list orders,
     * so the snapshot keeps the dynamic states in list order and the
     * permanently-enabled states in promotion order; replaying them in
     * those orders (against the same input alphabet) reproduces the
     * dispatch buckets, the latched-reporting order and therefore a
     * byte-identical continuation.
     */
    struct Snapshot
    {
        /** Dynamically enabled states for the upcoming step, in list
         *  order. Never contains permanently-enabled states. */
        std::vector<GlobalStateId> dynamic;
        /** Permanently-enabled (Permanent or Latched) states in the
         *  order they were promoted. */
        std::vector<GlobalStateId> permanent;
    };

    /** Capture the live state between steps into @p out (cleared). */
    void saveState(Snapshot *out) const;

    /**
     * Rebuild the state captured by saveState(): resets (without start
     * installation) and replays the promotions and dynamic enables in
     * snapshot order. @p input_alphabet must be the alphabet of the
     * original run — universality (and so the Permanent/Latched split)
     * is a function of it.
     */
    void restoreState(const Bitset256 &input_alphabet,
                      const Snapshot &snap);

  private:
    enum class Status : uint8_t {
        Normal,    ///< ordinary dynamic state
        Permanent, ///< permanently enabled, dispatched by symbol
        Latched,   ///< permanently enabled and universal
    };

    void activate(GlobalStateId s, uint64_t position,
                  ReportList *reports);
    void enableForNext(GlobalStateId t);
    void makePermanent(GlobalStateId s);
    bool universal(GlobalStateId s) const;

    bool
    hasSelfLoop(GlobalStateId s) const
    {
        return self_loop_[s] != 0;
    }

    void expandLatched();
    void flushPending();

    const FlatAutomaton &fa_;
    Bitset256 input_alphabet_;
    HotStateProfiler *profiler_ = nullptr;

    /** Per-state self-loop flag, precomputed so enableForNext of a
     *  universal state doesn't re-scan its CSR successor list. */
    std::vector<uint8_t> self_loop_;

    std::vector<Status> status_;
    std::vector<uint32_t> mark_;
    uint32_t epoch_ = 0; ///< epoch of the *upcoming* step
    std::vector<GlobalStateId> enabled_;      ///< dynamic, for next step
    std::vector<GlobalStateId> next_enabled_; ///< scratch

    /** Permanent non-universal states accepting each symbol. */
    std::array<std::vector<GlobalStateId>, 256> perm_table_;
    size_t permanent_count_ = 0;
    /** Every permanently-enabled state (Permanent or Latched), in the
     *  order it was promoted — so snapshotEnabled doesn't scan all N
     *  states for non-normal status on every handover. */
    std::vector<GlobalStateId> permanent_states_;

    /** Latched states whose successors still need permanence. */
    std::vector<GlobalStateId> latched_pending_;
    /** Latched reporting states: they report on every remaining cycle. */
    std::vector<GlobalStateId> latched_reporting_;

    /** States scheduled to become permanent after the current step. */
    std::vector<GlobalStateId> pending_permanent_;

    size_t last_step_work_ = 0;
};

} // namespace sparseap

#endif // SPARSEAP_SIM_EXEC_CORE_H
