#include "sim/flat_automaton.h"

#include "common/logging.h"

namespace sparseap {

FlatAutomaton::FlatAutomaton(const Application &app)
{
    const size_t n = app.totalStates();
    symbols_.reserve(n);
    reporting_.reserve(n);
    start_.reserve(n);
    succ_begin_.reserve(n + 1);

    size_t edge_count = 0;
    for (const auto &nfa : app.nfas())
        for (const auto &s : nfa.states())
            edge_count += s.successors.size();
    succ_.reserve(edge_count);

    for (uint32_t ni = 0; ni < app.nfaCount(); ++ni) {
        const Nfa &nfa = app.nfa(ni);
        SPARSEAP_ASSERT(nfa.finalized(), "FlatAutomaton needs finalized NFAs");
        const GlobalStateId base = app.nfaOffset(ni);
        for (StateId si = 0; si < nfa.size(); ++si) {
            const State &st = nfa.state(si);
            const GlobalStateId gid = base + si;
            symbols_.push_back(st.symbols);
            reporting_.push_back(st.reporting ? 1 : 0);
            start_.push_back(st.start);
            succ_begin_.push_back(static_cast<uint32_t>(succ_.size()));
            for (StateId t : st.successors)
                succ_.push_back(base + t);
            if (st.start == StartKind::AllInput) {
                all_input_starts_.push_back(gid);
                for (unsigned b = 0; b < 256; ++b) {
                    if (st.symbols.test(static_cast<uint8_t>(b)))
                        start_table_[b].push_back(gid);
                }
            } else if (st.start == StartKind::StartOfData) {
                sod_starts_.push_back(gid);
            }
        }
    }
    succ_begin_.push_back(static_cast<uint32_t>(succ_.size()));
}

} // namespace sparseap
