#include "sim/flat_automaton.h"

#include <algorithm>

#include "common/logging.h"

namespace sparseap {

FlatAutomaton::FlatAutomaton(const Application &app)
{
    const size_t n = app.totalStates();
    symbols_.reserve(n);
    reporting_.reserve(n);
    start_.reserve(n);
    succ_begin_.reserve(n + 1);

    size_t edge_count = 0;
    for (const auto &nfa : app.nfas())
        for (const auto &s : nfa.states())
            edge_count += s.successors.size();
    succ_.reserve(edge_count);

    for (uint32_t ni = 0; ni < app.nfaCount(); ++ni) {
        const Nfa &nfa = app.nfa(ni);
        SPARSEAP_ASSERT(nfa.finalized(), "FlatAutomaton needs finalized NFAs");
        const GlobalStateId base = app.nfaOffset(ni);
        for (StateId si = 0; si < nfa.size(); ++si) {
            const State &st = nfa.state(si);
            const GlobalStateId gid = base + si;
            symbols_.push_back(st.symbols);
            reporting_.push_back(st.reporting ? 1 : 0);
            start_.push_back(st.start);
            succ_begin_.push_back(static_cast<uint32_t>(succ_.size()));
            for (StateId t : st.successors)
                succ_.push_back(base + t);
            if (st.start == StartKind::AllInput) {
                all_input_starts_.push_back(gid);
                for (unsigned b = 0; b < 256; ++b) {
                    if (st.symbols.test(static_cast<uint8_t>(b)))
                        start_table_[b].push_back(gid);
                }
            } else if (st.start == StartKind::StartOfData) {
                sod_starts_.push_back(gid);
            }
        }
    }
    succ_begin_.push_back(static_cast<uint32_t>(succ_.size()));
}

const FlatAutomaton::DenseView &
FlatAutomaton::denseView() const
{
    std::call_once(dense_once_, [this] {
        auto dv = std::make_unique<DenseView>();
        const size_t n = size();
        dv->words = wordsForBits(n);
        dv->accept.assign(256 * dv->words, 0);
        dv->reporting.assign(dv->words, 0);
        dv->allInputStarts.assign(dv->words, 0);
        dv->sodStarts.assign(dv->words, 0);

        for (GlobalStateId s = 0; s < n; ++s) {
            // Transpose the 256-bit symbol set: for every accepted byte
            // b, set bit s of accept row b. Iterate set bits of the four
            // symbol-set words instead of probing all 256 symbols.
            const Bitset256 &sym = symbols_[s];
            forEachSetBit(std::span<const uint64_t>(sym.words), [&](size_t b) {
                setWordBit(dv->accept.data() + b * dv->words, s);
            });
            if (reporting_[s])
                setWordBit(dv->reporting.data(), s);
        }
        for (GlobalStateId s : all_input_starts_)
            setWordBit(dv->allInputStarts.data(), s);
        for (GlobalStateId s : sod_starts_)
            setWordBit(dv->sodStarts.data(), s);

        // Word-level successor CSR. Successor lists are built in NFA
        // state order, which is nondecreasing in target word per state
        // often enough that grouping is a single linear merge.
        dv->succBegin.reserve(n + 1);
        dv->succBegin.push_back(0);
        std::vector<GlobalStateId> sorted;
        for (GlobalStateId s = 0; s < n; ++s) {
            const auto succ = successors(s);
            sorted.assign(succ.begin(), succ.end());
            std::sort(sorted.begin(), sorted.end());
            for (size_t k = 0; k < sorted.size();) {
                const uint32_t word = sorted[k] >> 6;
                uint64_t mask = 0;
                for (; k < sorted.size() && (sorted[k] >> 6) == word; ++k)
                    mask |= 1ull << (sorted[k] & 63);
                dv->succWordIdx.push_back(word);
                dv->succWordMask.push_back(mask);
            }
            dv->succBegin.push_back(
                static_cast<uint32_t>(dv->succWordIdx.size()));
        }
        dense_ = std::move(dv);
    });
    return *dense_;
}

} // namespace sparseap
