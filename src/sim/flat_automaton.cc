#include "sim/flat_automaton.h"

#include <algorithm>
#include <unordered_map>

#include "common/logging.h"
#include "sim/hot_dfa.h"
#include "telemetry/trace.h"

namespace sparseap {

namespace {

/**
 * Compute the DenseView's derived execution accelerators — the chain
 * mask and the dense start-dispatch rows (see their field docs) — from
 * the already-installed CSR spans. Called by both construction paths
 * (flatten and store-decode); the results live in the view's owned
 * storage and are never serialized, so the store format is unaffected.
 */
void
computeDerivedArrays(FlatAutomaton::DenseView &dv)
{
    auto &own = dv.owned;
    const size_t n = dv.succBegin.size() - 1;

    own.chain.assign(dv.words, 0);
    for (GlobalStateId s = 0; s + 1 < n; ++s) {
        const uint32_t b = dv.succBegin[s];
        if (dv.succBegin[s + 1] != b + 1)
            continue;
        const GlobalStateId t = s + 1;
        if (dv.succWordIdx[b] == (t >> 6) &&
            dv.succWordMask[b] == (1ull << (t & 63)))
            setWordBit(own.chain.data(), s);
    }
    dv.chain = own.chain;

    own.startNextRow.assign(dv.classes, 0);
    uint32_t rows = 0;
    for (size_t c = 0; c < dv.classes; ++c) {
        const size_t entries =
            dv.startSuccBegin[c + 1] - dv.startSuccBegin[c];
        if (entries > 0 && entries * 8 >= dv.words)
            own.startNextRow[c] = ++rows;
    }
    own.startNextRows.assign(static_cast<size_t>(rows) * dv.stride, 0);
    for (size_t c = 0; c < dv.classes; ++c) {
        if (own.startNextRow[c] == 0)
            continue;
        uint64_t *row = own.startNextRows.data() +
                        static_cast<size_t>(own.startNextRow[c] - 1) *
                            dv.stride;
        for (uint32_t k = dv.startSuccBegin[c];
             k < dv.startSuccBegin[c + 1]; ++k)
            row[dv.startSuccWordIdx[k]] |= dv.startSuccWordMask[k];
    }
    dv.startNextRow = own.startNextRow;
    dv.startNextRows = own.startNextRows;

    // Quiescent scan set (see its field doc): a byte can wake the
    // all-idle configuration iff its class dispatches any reporting
    // start or contributes any pooled start successor.
    dv.staticScan.fill(0);
    for (unsigned b = 0; b < 256; ++b) {
        const uint8_t c = dv.classOf[b];
        if (dv.startBegin[c + 1] > dv.startBegin[c] ||
            dv.startSuccBegin[c + 1] > dv.startSuccBegin[c])
            dv.staticScan[b >> 6] |= 1ull << (b & 63);
    }
}

} // namespace

FlatAutomaton::FlatAutomaton(const Application &app,
                             DenseCompression compression)
    : compression_(compression)
{
    SPARSEAP_PHASE("flatten");
    const size_t n = app.totalStates();
    owned_.symbols.reserve(n);
    owned_.reporting.reserve(n);
    owned_.start.reserve(n);
    owned_.succ_begin.reserve(n + 1);

    size_t edge_count = 0;
    for (const auto &nfa : app.nfas())
        for (const auto &s : nfa.states())
            edge_count += s.successors.size();
    owned_.succ.reserve(edge_count);

    for (uint32_t ni = 0; ni < app.nfaCount(); ++ni) {
        const Nfa &nfa = app.nfa(ni);
        SPARSEAP_ASSERT(nfa.finalized(), "FlatAutomaton needs finalized NFAs");
        const GlobalStateId base = app.nfaOffset(ni);
        for (StateId si = 0; si < nfa.size(); ++si) {
            const State &st = nfa.state(si);
            const GlobalStateId gid = base + si;
            owned_.symbols.push_back(st.symbols);
            owned_.reporting.push_back(st.reporting ? 1 : 0);
            owned_.start.push_back(st.start);
            owned_.succ_begin.push_back(
                static_cast<uint32_t>(owned_.succ.size()));
            for (StateId t : st.successors)
                owned_.succ.push_back(base + t);
            if (st.start == StartKind::AllInput)
                owned_.all_input_starts.push_back(gid);
            else if (st.start == StartKind::StartOfData)
                owned_.sod_starts.push_back(gid);
        }
    }
    owned_.succ_begin.push_back(static_cast<uint32_t>(owned_.succ.size()));

    symbols_ = owned_.symbols;
    reporting_ = owned_.reporting;
    start_ = owned_.start;
    succ_begin_ = owned_.succ_begin;
    succ_ = owned_.succ;
    sod_starts_ = owned_.sod_starts;
    all_input_starts_ = owned_.all_input_starts;

    computeSymbolClasses();
    class_rep_ = owned_.class_rep;

    // One start-dispatch row per class instead of one per byte:
    // equivalent bytes select the same start states by definition, so
    // the 256 dispatch vectors of the old layout were #classes distinct
    // vectors stored up to 256 times. Stored as a CSR so a loaded
    // automaton can alias the same layout inside a file mapping.
    owned_.start_table_begin.reserve(class_count_ + 1);
    owned_.start_table_begin.push_back(0);
    for (size_t c = 0; c < class_count_; ++c) {
        for (GlobalStateId gid : owned_.all_input_starts) {
            if (owned_.symbols[gid].test(owned_.class_rep[c]))
                owned_.start_table.push_back(gid);
        }
        owned_.start_table_begin.push_back(
            static_cast<uint32_t>(owned_.start_table.size()));
    }
    start_table_begin_ = owned_.start_table_begin;
    start_table_ = owned_.start_table;
}

FlatAutomaton::FlatAutomaton(const Parts &parts)
    : backing_(parts.backing), symbols_(parts.symbols),
      reporting_(parts.reporting), start_(parts.start),
      succ_begin_(parts.succBegin), succ_(parts.succ),
      start_table_begin_(parts.startTableBegin),
      start_table_(parts.startTable), sod_starts_(parts.sodStarts),
      all_input_starts_(parts.allInputStarts), class_rep_(parts.classRep),
      compression_(parts.compression), class_count_(parts.classCount)
{
    SPARSEAP_ASSERT(parts.classOf.size() == 256 &&
                        parts.dense.classOf.size() == 256,
                    "malformed FlatAutomaton parts");
    std::copy(parts.classOf.begin(), parts.classOf.end(),
              class_of_.begin());

    // Install the dense view straight from the decoded sections — a
    // stored automaton always carries one, so nothing is ever rebuilt.
    std::call_once(dense_once_, [&] {
        auto dv = std::make_unique<DenseView>();
        const Parts::Dense &d = parts.dense;
        dv->words = d.words;
        dv->stride = DenseView::strideFor(d.words);
        dv->classes = d.classes;
        std::copy(d.classOf.begin(), d.classOf.end(),
                  dv->classOf.begin());
        dv->accept = d.accept;
        dv->reporting = d.reporting;
        dv->allInputStarts = d.allInputStarts;
        dv->sodStarts = d.sodStarts;
        dv->latchable = d.latchable;
        dv->succBegin = d.succBegin;
        dv->succWordIdx = d.succWordIdx;
        dv->succWordMask = d.succWordMask;
        dv->startBegin = d.startBegin;
        dv->startWordIdx = d.startWordIdx;
        dv->startWordMask = d.startWordMask;
        dv->startSuccBegin = d.startSuccBegin;
        dv->startSuccWordIdx = d.startSuccWordIdx;
        dv->startSuccWordMask = d.startSuccWordMask;
        computeDerivedArrays(*dv);
        if (d.scanMask.size() == dv->staticScan.size())
            std::copy(d.scanMask.begin(), d.scanMask.end(),
                      dv->staticScan.begin());
        dense_ = std::move(dv);
    });
}

FlatAutomaton::Parts
FlatAutomaton::parts() const
{
    const DenseView &dv = denseView();
    Parts p;
    p.compression = compression_;
    p.classCount = static_cast<uint32_t>(class_count_);
    p.classOf = {class_of_.data(), class_of_.size()};
    p.classRep = class_rep_;
    p.symbols = symbols_;
    p.reporting = reporting_;
    p.start = start_;
    p.succBegin = succ_begin_;
    p.succ = succ_;
    p.startTableBegin = start_table_begin_;
    p.startTable = start_table_;
    p.sodStarts = sod_starts_;
    p.allInputStarts = all_input_starts_;
    p.backing = backing_;

    Parts::Dense &d = p.dense;
    d.words = dv.words;
    d.classes = dv.classes;
    d.classOf = {dv.classOf.data(), dv.classOf.size()};
    d.accept = dv.accept;
    d.reporting = dv.reporting;
    d.allInputStarts = dv.allInputStarts;
    d.sodStarts = dv.sodStarts;
    d.latchable = dv.latchable;
    d.succBegin = dv.succBegin;
    d.succWordIdx = dv.succWordIdx;
    d.succWordMask = dv.succWordMask;
    d.startBegin = dv.startBegin;
    d.startWordIdx = dv.startWordIdx;
    d.startWordMask = dv.startWordMask;
    d.startSuccBegin = dv.startSuccBegin;
    d.startSuccWordIdx = dv.startSuccWordIdx;
    d.startSuccWordMask = dv.startSuccWordMask;
    d.scanMask = {dv.staticScan.data(), dv.staticScan.size()};
    return p;
}

std::shared_ptr<const HotDfa>
FlatAutomaton::ensureHotDfa() const
{
    std::call_once(dfa_once_, [this] {
        hot_dfa_ = HotDfa::build(*this, HotDfa::Limits::fromOptions());
        dfa_ready_.store(true, std::memory_order_release);
    });
    return hot_dfa_;
}

std::shared_ptr<const HotDfa>
FlatAutomaton::hotDfaIfBuilt() const
{
    if (!dfa_ready_.load(std::memory_order_acquire))
        return nullptr;
    return hot_dfa_;
}

void
FlatAutomaton::attachHotDfa(std::shared_ptr<const HotDfa> dfa) const
{
    std::call_once(dfa_once_, [this, &dfa] {
        hot_dfa_ = std::move(dfa);
        dfa_ready_.store(true, std::memory_order_release);
    });
}

void
FlatAutomaton::computeSymbolClasses()
{
    // Partition refinement over the byte alphabet: start with one class
    // and split it by every *distinct* symbol-set (duplicate sets refine
    // identically, and real automata draw their sets from a small pool).
    // New class ids are assigned in order of first byte occurrence, so
    // the map is deterministic and classes are sorted by their smallest
    // member byte.
    class_of_.fill(0);
    class_count_ = 1;

    std::unordered_map<uint64_t, std::vector<const SymbolSet *>> seen;
    seen.reserve(256);
    std::array<int16_t, 512> remap;
    std::array<uint8_t, 256> next_class;

    for (const SymbolSet &sym : symbols_) {
        if (class_count_ == 256)
            break; // fully split; no further refinement possible
        auto &bucket = seen[sym.hash()];
        const bool dup = std::any_of(
            bucket.begin(), bucket.end(),
            [&](const SymbolSet *p) { return *p == sym; });
        if (dup)
            continue;
        bucket.push_back(&sym);

        remap.fill(-1);
        uint16_t next = 0;
        for (unsigned b = 0; b < 256; ++b) {
            const unsigned key =
                class_of_[b] * 2u +
                (sym.test(static_cast<uint8_t>(b)) ? 1u : 0u);
            if (remap[key] < 0)
                remap[key] = static_cast<int16_t>(next++);
            next_class[b] = static_cast<uint8_t>(remap[key]);
        }
        class_of_ = next_class;
        class_count_ = next;
    }

    owned_.class_rep.assign(class_count_, 0);
    std::vector<uint8_t> have(class_count_, 0);
    for (unsigned b = 0; b < 256; ++b) {
        if (!have[class_of_[b]]) {
            have[class_of_[b]] = 1;
            owned_.class_rep[class_of_[b]] = static_cast<uint8_t>(b);
        }
    }
}

const FlatAutomaton::DenseView &
FlatAutomaton::denseView() const
{
    std::call_once(dense_once_, [this] {
        auto dv = std::make_unique<DenseView>();
        DenseView::Owned &own = dv->owned;
        const size_t n = size();
        dv->words = wordsForBits(n);
        dv->stride = DenseView::strideFor(dv->words);
        if (compression_ == DenseCompression::Raw) {
            dv->classes = 256;
            for (unsigned b = 0; b < 256; ++b)
                dv->classOf[b] = static_cast<uint8_t>(b);
        } else {
            dv->classes = class_count_;
            dv->classOf = class_of_;
        }
        own.accept.assign(dv->classes * dv->stride, 0);
        own.reporting.assign(dv->words, 0);
        own.allInputStarts.assign(dv->words, 0);
        own.sodStarts.assign(dv->words, 0);

        for (GlobalStateId s = 0; s < n; ++s) {
            const Bitset256 &sym = symbols_[s];
            if (dv->classes < 64) {
                // Few classes: probe one representative byte per row —
                // cheaper than walking every set bit of a wide set.
                for (size_t c = 0; c < class_count_; ++c) {
                    if (sym.test(class_rep_[c]))
                        setWordBit(own.accept.data() + c * dv->stride, s);
                }
            } else {
                // Transpose the 256-bit symbol set: for every accepted
                // byte b, set bit s of b's row (equivalent bytes simply
                // re-set the same bit). Iterate set bits of the four
                // symbol-set words instead of probing all 256 symbols.
                forEachSetBit(
                    std::span<const uint64_t>(sym.words), [&](size_t b) {
                        setWordBit(own.accept.data() +
                                       dv->classOf[b] * dv->stride,
                                   s);
                    });
            }
            if (reporting_[s])
                setWordBit(own.reporting.data(), s);
        }
        for (GlobalStateId s : all_input_starts_)
            setWordBit(own.allInputStarts.data(), s);
        for (GlobalStateId s : sod_starts_)
            setWordBit(own.sodStarts.data(), s);

        own.latchable.assign(dv->words, 0);
        for (GlobalStateId s = 0; s < n; ++s) {
            if (start_[s] != StartKind::None || reporting_[s])
                continue;
            uint64_t universal = ~0ull;
            for (uint64_t w : symbols_[s].words)
                universal &= w;
            if (universal != ~0ull)
                continue;
            const auto succ = successors(s);
            if (std::find(succ.begin(), succ.end(), s) != succ.end())
                setWordBit(own.latchable.data(), s);
        }

        // Word-level successor CSR. Successor lists are built in NFA
        // state order, which is nondecreasing in target word per state
        // often enough that grouping is a single linear merge. Bits of
        // always-enabled start states are dropped from the masks — the
        // start dispatch below keeps them active without ever putting
        // them in the dynamic enabled vector.
        own.succBegin.reserve(n + 1);
        own.succBegin.push_back(0);
        std::vector<GlobalStateId> sorted;
        for (GlobalStateId s = 0; s < n; ++s) {
            const auto succ = successors(s);
            sorted.assign(succ.begin(), succ.end());
            std::sort(sorted.begin(), sorted.end());
            for (size_t k = 0; k < sorted.size();) {
                const uint32_t word = sorted[k] >> 6;
                uint64_t mask = 0;
                for (; k < sorted.size() && (sorted[k] >> 6) == word; ++k)
                    mask |= 1ull << (sorted[k] & 63);
                mask &= ~own.allInputStarts[word];
                if (mask == 0)
                    continue;
                own.succWordIdx.push_back(word);
                own.succWordMask.push_back(mask);
            }
            own.succBegin.push_back(
                static_cast<uint32_t>(own.succWordIdx.size()));
        }

        // Per-class start dispatch (see the DenseView doc): reporting
        // starts as per-word activation masks in ascending word order
        // (the sweep merges them with the live dynamic words to emit
        // reports in state order), non-reporting starts as one pooled
        // successor-contribution list per class.
        own.startBegin.reserve(dv->classes + 1);
        own.startBegin.push_back(0);
        own.startSuccBegin.reserve(dv->classes + 1);
        own.startSuccBegin.push_back(0);
        WordVector contrib(dv->words, 0);
        for (size_t c = 0; c < dv->classes; ++c) {
            const uint64_t *row = own.accept.data() + c * dv->stride;
            for (size_t w = 0; w < dv->words; ++w) {
                const uint64_t m = row[w] & own.allInputStarts[w] &
                                   own.reporting[w];
                if (m != 0) {
                    own.startWordIdx.push_back(
                        static_cast<uint32_t>(w));
                    own.startWordMask.push_back(m);
                }
            }
            own.startBegin.push_back(
                static_cast<uint32_t>(own.startWordIdx.size()));

            const uint8_t rep =
                compression_ == DenseCompression::Raw
                    ? static_cast<uint8_t>(c)
                    : class_rep_[c];
            std::fill(contrib.begin(), contrib.end(), 0);
            for (GlobalStateId s : all_input_starts_) {
                if (reporting_[s] || !symbols_[s].test(rep))
                    continue;
                for (uint32_t k = own.succBegin[s];
                     k < own.succBegin[s + 1]; ++k)
                    contrib[own.succWordIdx[k]] |= own.succWordMask[k];
            }
            for (size_t w = 0; w < dv->words; ++w) {
                if (contrib[w] != 0) {
                    own.startSuccWordIdx.push_back(
                        static_cast<uint32_t>(w));
                    own.startSuccWordMask.push_back(contrib[w]);
                }
            }
            own.startSuccBegin.push_back(
                static_cast<uint32_t>(own.startSuccWordIdx.size()));
        }

        dv->accept = own.accept;
        dv->reporting = own.reporting;
        dv->allInputStarts = own.allInputStarts;
        dv->sodStarts = own.sodStarts;
        dv->latchable = own.latchable;
        dv->succBegin = own.succBegin;
        dv->succWordIdx = own.succWordIdx;
        dv->succWordMask = own.succWordMask;
        dv->startBegin = own.startBegin;
        dv->startWordIdx = own.startWordIdx;
        dv->startWordMask = own.startWordMask;
        dv->startSuccBegin = own.startSuccBegin;
        dv->startSuccWordIdx = own.startSuccWordIdx;
        dv->startSuccWordMask = own.startSuccWordMask;
        computeDerivedArrays(*dv);
        dense_ = std::move(dv);
    });
    return *dense_;
}

} // namespace sparseap
