#include "sim/flat_automaton.h"

#include <algorithm>
#include <unordered_map>

#include "common/logging.h"

namespace sparseap {

FlatAutomaton::FlatAutomaton(const Application &app,
                             DenseCompression compression)
    : compression_(compression)
{
    const size_t n = app.totalStates();
    symbols_.reserve(n);
    reporting_.reserve(n);
    start_.reserve(n);
    succ_begin_.reserve(n + 1);

    size_t edge_count = 0;
    for (const auto &nfa : app.nfas())
        for (const auto &s : nfa.states())
            edge_count += s.successors.size();
    succ_.reserve(edge_count);

    for (uint32_t ni = 0; ni < app.nfaCount(); ++ni) {
        const Nfa &nfa = app.nfa(ni);
        SPARSEAP_ASSERT(nfa.finalized(), "FlatAutomaton needs finalized NFAs");
        const GlobalStateId base = app.nfaOffset(ni);
        for (StateId si = 0; si < nfa.size(); ++si) {
            const State &st = nfa.state(si);
            const GlobalStateId gid = base + si;
            symbols_.push_back(st.symbols);
            reporting_.push_back(st.reporting ? 1 : 0);
            start_.push_back(st.start);
            succ_begin_.push_back(static_cast<uint32_t>(succ_.size()));
            for (StateId t : st.successors)
                succ_.push_back(base + t);
            if (st.start == StartKind::AllInput)
                all_input_starts_.push_back(gid);
            else if (st.start == StartKind::StartOfData)
                sod_starts_.push_back(gid);
        }
    }
    succ_begin_.push_back(static_cast<uint32_t>(succ_.size()));

    computeSymbolClasses();

    // One start vector per class instead of one per byte: equivalent
    // bytes select the same start states by definition, so the 256
    // dispatch vectors of the old layout were #classes distinct vectors
    // stored up to 256 times.
    start_table_.resize(class_count_);
    for (GlobalStateId gid : all_input_starts_) {
        const SymbolSet &sym = symbols_[gid];
        for (size_t c = 0; c < class_count_; ++c) {
            if (sym.test(class_rep_[c]))
                start_table_[c].push_back(gid);
        }
    }
}

void
FlatAutomaton::computeSymbolClasses()
{
    // Partition refinement over the byte alphabet: start with one class
    // and split it by every *distinct* symbol-set (duplicate sets refine
    // identically, and real automata draw their sets from a small pool).
    // New class ids are assigned in order of first byte occurrence, so
    // the map is deterministic and classes are sorted by their smallest
    // member byte.
    class_of_.fill(0);
    class_count_ = 1;

    std::unordered_map<uint64_t, std::vector<const SymbolSet *>> seen;
    seen.reserve(256);
    std::array<int16_t, 512> remap;
    std::array<uint8_t, 256> next_class;

    for (const SymbolSet &sym : symbols_) {
        if (class_count_ == 256)
            break; // fully split; no further refinement possible
        auto &bucket = seen[sym.hash()];
        const bool dup = std::any_of(
            bucket.begin(), bucket.end(),
            [&](const SymbolSet *p) { return *p == sym; });
        if (dup)
            continue;
        bucket.push_back(&sym);

        remap.fill(-1);
        uint16_t next = 0;
        for (unsigned b = 0; b < 256; ++b) {
            const unsigned key =
                class_of_[b] * 2u +
                (sym.test(static_cast<uint8_t>(b)) ? 1u : 0u);
            if (remap[key] < 0)
                remap[key] = static_cast<int16_t>(next++);
            next_class[b] = static_cast<uint8_t>(remap[key]);
        }
        class_of_ = next_class;
        class_count_ = next;
    }

    class_rep_.assign(class_count_, 0);
    std::vector<uint8_t> have(class_count_, 0);
    for (unsigned b = 0; b < 256; ++b) {
        if (!have[class_of_[b]]) {
            have[class_of_[b]] = 1;
            class_rep_[class_of_[b]] = static_cast<uint8_t>(b);
        }
    }
}

const FlatAutomaton::DenseView &
FlatAutomaton::denseView() const
{
    std::call_once(dense_once_, [this] {
        auto dv = std::make_unique<DenseView>();
        const size_t n = size();
        dv->words = wordsForBits(n);
        if (compression_ == DenseCompression::Raw) {
            dv->classes = 256;
            for (unsigned b = 0; b < 256; ++b)
                dv->classOf[b] = static_cast<uint8_t>(b);
        } else {
            dv->classes = class_count_;
            dv->classOf = class_of_;
        }
        dv->accept.assign(dv->classes * dv->words, 0);
        dv->reporting.assign(dv->words, 0);
        dv->allInputStarts.assign(dv->words, 0);
        dv->sodStarts.assign(dv->words, 0);

        for (GlobalStateId s = 0; s < n; ++s) {
            const Bitset256 &sym = symbols_[s];
            if (dv->classes < 64) {
                // Few classes: probe one representative byte per row —
                // cheaper than walking every set bit of a wide set.
                for (size_t c = 0; c < class_count_; ++c) {
                    if (sym.test(class_rep_[c]))
                        setWordBit(dv->accept.data() + c * dv->words, s);
                }
            } else {
                // Transpose the 256-bit symbol set: for every accepted
                // byte b, set bit s of b's row (equivalent bytes simply
                // re-set the same bit). Iterate set bits of the four
                // symbol-set words instead of probing all 256 symbols.
                forEachSetBit(
                    std::span<const uint64_t>(sym.words), [&](size_t b) {
                        setWordBit(dv->accept.data() +
                                       dv->classOf[b] * dv->words,
                                   s);
                    });
            }
            if (reporting_[s])
                setWordBit(dv->reporting.data(), s);
        }
        for (GlobalStateId s : all_input_starts_)
            setWordBit(dv->allInputStarts.data(), s);
        for (GlobalStateId s : sod_starts_)
            setWordBit(dv->sodStarts.data(), s);

        dv->latchable.assign(dv->words, 0);
        for (GlobalStateId s = 0; s < n; ++s) {
            if (start_[s] != StartKind::None || reporting_[s])
                continue;
            uint64_t universal = ~0ull;
            for (uint64_t w : symbols_[s].words)
                universal &= w;
            if (universal != ~0ull)
                continue;
            const auto succ = successors(s);
            if (std::find(succ.begin(), succ.end(), s) != succ.end())
                setWordBit(dv->latchable.data(), s);
        }

        // Word-level successor CSR. Successor lists are built in NFA
        // state order, which is nondecreasing in target word per state
        // often enough that grouping is a single linear merge. Bits of
        // always-enabled start states are dropped from the masks — the
        // start dispatch below keeps them active without ever putting
        // them in the dynamic enabled vector.
        dv->succBegin.reserve(n + 1);
        dv->succBegin.push_back(0);
        std::vector<GlobalStateId> sorted;
        for (GlobalStateId s = 0; s < n; ++s) {
            const auto succ = successors(s);
            sorted.assign(succ.begin(), succ.end());
            std::sort(sorted.begin(), sorted.end());
            for (size_t k = 0; k < sorted.size();) {
                const uint32_t word = sorted[k] >> 6;
                uint64_t mask = 0;
                for (; k < sorted.size() && (sorted[k] >> 6) == word; ++k)
                    mask |= 1ull << (sorted[k] & 63);
                mask &= ~dv->allInputStarts[word];
                if (mask == 0)
                    continue;
                dv->succWordIdx.push_back(word);
                dv->succWordMask.push_back(mask);
            }
            dv->succBegin.push_back(
                static_cast<uint32_t>(dv->succWordIdx.size()));
        }

        // Per-class start dispatch (see the DenseView doc): reporting
        // starts as per-word activation masks in ascending word order
        // (the sweep merges them with the live dynamic words to emit
        // reports in state order), non-reporting starts as one pooled
        // successor-contribution list per class.
        dv->startBegin.reserve(dv->classes + 1);
        dv->startBegin.push_back(0);
        dv->startSuccBegin.reserve(dv->classes + 1);
        dv->startSuccBegin.push_back(0);
        WordVector contrib(dv->words, 0);
        for (size_t c = 0; c < dv->classes; ++c) {
            const uint64_t *row = dv->accept.data() + c * dv->words;
            for (size_t w = 0; w < dv->words; ++w) {
                const uint64_t m = row[w] & dv->allInputStarts[w] &
                                   dv->reporting[w];
                if (m != 0) {
                    dv->startWordIdx.push_back(
                        static_cast<uint32_t>(w));
                    dv->startWordMask.push_back(m);
                }
            }
            dv->startBegin.push_back(
                static_cast<uint32_t>(dv->startWordIdx.size()));

            const uint8_t rep =
                compression_ == DenseCompression::Raw
                    ? static_cast<uint8_t>(c)
                    : class_rep_[c];
            std::fill(contrib.begin(), contrib.end(), 0);
            for (GlobalStateId s : all_input_starts_) {
                if (reporting_[s] || !symbols_[s].test(rep))
                    continue;
                for (uint32_t k = dv->succBegin[s];
                     k < dv->succBegin[s + 1]; ++k)
                    contrib[dv->succWordIdx[k]] |= dv->succWordMask[k];
            }
            for (size_t w = 0; w < dv->words; ++w) {
                if (contrib[w] != 0) {
                    dv->startSuccWordIdx.push_back(
                        static_cast<uint32_t>(w));
                    dv->startSuccWordMask.push_back(contrib[w]);
                }
            }
            dv->startSuccBegin.push_back(
                static_cast<uint32_t>(dv->startSuccWordIdx.size()));
        }
        dense_ = std::move(dv);
    });
    return *dense_;
}

} // namespace sparseap
