/**
 * @file
 * A flattened, simulation-friendly view of an Application.
 *
 * All NFAs are merged into one dense state space (GlobalStateId order) with
 * CSR adjacency and a per-symbol dispatch table for the always-enabled
 * start states — the software analogue of the AP feeding each input symbol
 * through the DRAM row decoder so all matching STEs activate in parallel.
 */

#ifndef SPARSEAP_SIM_FLAT_AUTOMATON_H
#define SPARSEAP_SIM_FLAT_AUTOMATON_H

#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "nfa/application.h"

namespace sparseap {

/** Immutable flattened automaton built from a (finalized) Application. */
class FlatAutomaton
{
  public:
    explicit FlatAutomaton(const Application &app);

    /** Number of states. */
    size_t size() const { return symbols_.size(); }

    const SymbolSet &symbols(GlobalStateId s) const { return symbols_[s]; }

    bool reporting(GlobalStateId s) const { return reporting_[s]; }

    StartKind start(GlobalStateId s) const { return start_[s]; }

    /** Successors of @p s as a contiguous span. */
    std::span<const GlobalStateId>
    successors(GlobalStateId s) const
    {
        return {succ_.data() + succ_begin_[s],
                succ_begin_[s + 1] - succ_begin_[s]};
    }

    /** Always-enabled start states that accept @p symbol. */
    const std::vector<GlobalStateId> &
    allInputStartsFor(uint8_t symbol) const
    {
        return start_table_[symbol];
    }

    /** Start-of-data start states (enabled only for position 0). */
    const std::vector<GlobalStateId> &
    startOfDataStarts() const
    {
        return sod_starts_;
    }

    /** All always-enabled start states. */
    const std::vector<GlobalStateId> &
    allInputStarts() const
    {
        return all_input_starts_;
    }

  private:
    std::vector<SymbolSet> symbols_;
    std::vector<uint8_t> reporting_; // bool, stored flat for cache locality
    std::vector<StartKind> start_;
    std::vector<uint32_t> succ_begin_; // size() + 1 entries (CSR)
    std::vector<GlobalStateId> succ_;
    std::array<std::vector<GlobalStateId>, 256> start_table_;
    std::vector<GlobalStateId> sod_starts_;
    std::vector<GlobalStateId> all_input_starts_;
};

} // namespace sparseap

#endif // SPARSEAP_SIM_FLAT_AUTOMATON_H
