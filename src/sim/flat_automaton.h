/**
 * @file
 * A flattened, simulation-friendly view of an Application.
 *
 * All NFAs are merged into one dense state space (GlobalStateId order) with
 * CSR adjacency and a per-symbol dispatch table for the always-enabled
 * start states — the software analogue of the AP feeding each input symbol
 * through the DRAM row decoder so all matching STEs activate in parallel.
 */

#ifndef SPARSEAP_SIM_FLAT_AUTOMATON_H
#define SPARSEAP_SIM_FLAT_AUTOMATON_H

#include <array>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "common/word_vector.h"
#include "nfa/application.h"

namespace sparseap {

/** Immutable flattened automaton built from a (finalized) Application. */
class FlatAutomaton
{
  public:
    explicit FlatAutomaton(const Application &app);

    /** Number of states. */
    size_t size() const { return symbols_.size(); }

    const SymbolSet &symbols(GlobalStateId s) const { return symbols_[s]; }

    bool reporting(GlobalStateId s) const { return reporting_[s]; }

    StartKind start(GlobalStateId s) const { return start_[s]; }

    /** Successors of @p s as a contiguous span. */
    std::span<const GlobalStateId>
    successors(GlobalStateId s) const
    {
        return {succ_.data() + succ_begin_[s],
                succ_begin_[s + 1] - succ_begin_[s]};
    }

    /** Always-enabled start states that accept @p symbol. */
    const std::vector<GlobalStateId> &
    allInputStartsFor(uint8_t symbol) const
    {
        return start_table_[symbol];
    }

    /** Start-of-data start states (enabled only for position 0). */
    const std::vector<GlobalStateId> &
    startOfDataStarts() const
    {
        return sod_starts_;
    }

    /** All always-enabled start states. */
    const std::vector<GlobalStateId> &
    allInputStarts() const
    {
        return all_input_starts_;
    }

    /**
     * Column-major bit-parallel view for the dense execution core. Where
     * the row-major symbols() array answers "which bytes does state s
     * accept", the accept table answers "which states accept byte b" as
     * one ⌈N/64⌉-word row per symbol — the word-AND analogue of the AP
     * row decoder driving all matching STE columns at once.
     */
    struct DenseView
    {
        /** Words per state-set row: ceil(size() / 64). */
        size_t words = 0;
        /** 256 rows x words: bit s of row b set iff s accepts byte b. */
        WordVector accept;
        /** Reporting states, one row. */
        WordVector reporting;
        /** Always-enabled (all-input) start states, one row. */
        WordVector allInputStarts;
        /** Start-of-data start states, one row. */
        WordVector sodStarts;

        /**
         * Word-level successor CSR: state s's successors, grouped by
         * target word, as (word index, bit mask) pairs in
         * [succBegin[s], succBegin[s+1]). Propagation ORs whole masks
         * instead of setting successor bits one at a time — grid
         * automata put most successors in one or two words.
         */
        std::vector<uint32_t> succBegin; ///< size()+1 entries
        std::vector<uint32_t> succWordIdx;
        WordVector succWordMask;

        const uint64_t *
        acceptRow(uint8_t symbol) const
        {
            return accept.data() + static_cast<size_t>(symbol) * words;
        }
    };

    /** Dense view, built on first use (thread-safe, then immutable). */
    const DenseView &denseView() const;

  private:
    std::vector<SymbolSet> symbols_;
    std::vector<uint8_t> reporting_; // bool, stored flat for cache locality
    std::vector<StartKind> start_;
    std::vector<uint32_t> succ_begin_; // size() + 1 entries (CSR)
    std::vector<GlobalStateId> succ_;
    std::array<std::vector<GlobalStateId>, 256> start_table_;
    std::vector<GlobalStateId> sod_starts_;
    std::vector<GlobalStateId> all_input_starts_;

    mutable std::once_flag dense_once_;
    mutable std::unique_ptr<DenseView> dense_;
};

} // namespace sparseap

#endif // SPARSEAP_SIM_FLAT_AUTOMATON_H
