/**
 * @file
 * A flattened, simulation-friendly view of an Application.
 *
 * All NFAs are merged into one dense state space (GlobalStateId order) with
 * CSR adjacency and a per-symbol dispatch table for the always-enabled
 * start states — the software analogue of the AP feeding each input symbol
 * through the DRAM row decoder so all matching STEs activate in parallel.
 *
 * Real automata use only a handful of *character classes*: two bytes are
 * equivalent when every state either accepts both or rejects both, so the
 * 256-column byte alphabet collapses to a few equivalence classes (CAMA
 * exploits the same symbol-set redundancy in hardware). The flattener
 * computes that byte→class map once and dedups everything keyed by symbol
 * through it: the start dispatch table stores one vector per class, and
 * the dense view stores one accept row per class — up to 256/#classes
 * smaller than the raw table.
 *
 * Storage is span-based: every array lives either in vectors owned by
 * this object (when flattened from an Application) or inside a read-only
 * file mapping owned by the artifact store (when loaded from a compiled
 * blob, see src/store/). The two are indistinguishable to the execution
 * cores — a loaded automaton runs zero-copy straight out of the mapping.
 */

#ifndef SPARSEAP_SIM_FLAT_AUTOMATON_H
#define SPARSEAP_SIM_FLAT_AUTOMATON_H

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "common/word_vector.h"
#include "nfa/application.h"

namespace sparseap {

class HotDfa;

/** Immutable flattened automaton built from a (finalized) Application. */
class FlatAutomaton
{
  public:
    /**
     * Accept-table layout of the dense view. Classes is the default;
     * Raw keeps the uncompressed 256-row table and exists so the
     * benchmarks can measure exactly what the compression buys.
     */
    enum class DenseCompression : uint8_t {
        Classes, ///< one accept row per byte-equivalence class
        Raw,     ///< one accept row per byte (reference layout)
    };

    explicit FlatAutomaton(
        const Application &app,
        DenseCompression compression = DenseCompression::Classes);

    /** Number of states. */
    size_t size() const { return symbols_.size(); }

    const SymbolSet &symbols(GlobalStateId s) const { return symbols_[s]; }

    bool reporting(GlobalStateId s) const { return reporting_[s]; }

    StartKind start(GlobalStateId s) const { return start_[s]; }

    /** Successors of @p s as a contiguous span. */
    std::span<const GlobalStateId>
    successors(GlobalStateId s) const
    {
        return {succ_.data() + succ_begin_[s],
                succ_begin_[s + 1] - succ_begin_[s]};
    }

    /** Always-enabled start states that accept @p symbol. */
    std::span<const GlobalStateId>
    allInputStartsFor(uint8_t symbol) const
    {
        const uint8_t c = class_of_[symbol];
        return {start_table_.data() + start_table_begin_[c],
                start_table_begin_[c + 1] - start_table_begin_[c]};
    }

    /** Start-of-data start states (enabled only for position 0). */
    std::span<const GlobalStateId>
    startOfDataStarts() const
    {
        return sod_starts_;
    }

    /** All always-enabled start states. */
    std::span<const GlobalStateId>
    allInputStarts() const
    {
        return all_input_starts_;
    }

    /**
     * Number of byte-equivalence classes (1..256). Two bytes share a
     * class iff every state's symbol-set treats them identically, so any
     * per-symbol structure collapses to one entry per class.
     */
    size_t symbolClassCount() const { return class_count_; }

    /** Equivalence class of @p symbol (in [0, symbolClassCount())). */
    uint8_t symbolClass(uint8_t symbol) const { return class_of_[symbol]; }

    /** The smallest byte of class @p cls (its representative). */
    uint8_t
    classRepresentative(size_t cls) const
    {
        return class_rep_[cls];
    }

    /** Accept-table layout this automaton was flattened with. */
    DenseCompression compression() const { return compression_; }

    /**
     * Column-major bit-parallel view for the dense execution core. Where
     * the row-major symbols() array answers "which bytes does state s
     * accept", the accept table answers "which states accept byte b" as
     * one ⌈N/64⌉-word row per symbol — the word-AND analogue of the AP
     * row decoder driving all matching STE columns at once. Equivalent
     * byte columns share one physical row (see classOf), so the table
     * holds symbolClassCount() rows instead of 256 unless the automaton
     * was flattened with DenseCompression::Raw.
     */
    struct DenseView
    {
        /** Words per state-set row: ceil(size() / 64). */
        size_t words = 0;
        /**
         * Accept-row stride in words: words rounded up to a multiple of
         * 8 (one cache line), so every row starts 64-byte aligned — the
         * base vector is 64-byte aligned by WordVector's allocator (or
         * the store's section alignment). Padding words are zero.
         */
        size_t stride = 0;
        /** Number of accept rows (#classes, or 256 for Raw). */
        size_t classes = 0;
        /** byte -> accept row translation (identity for Raw). */
        std::array<uint8_t, 256> classOf{};
        /** classes rows x words: bit s of row classOf[b] set iff s
         *  accepts byte b. */
        std::span<const uint64_t> accept;
        /** Reporting states, one row. */
        std::span<const uint64_t> reporting;
        /** Always-enabled (all-input) start states, one row. */
        std::span<const uint64_t> allInputStarts;
        /** Start-of-data start states, one row. */
        std::span<const uint64_t> sodStarts;
        /**
         * Latchable states, one row: non-start non-reporting states
         * with a universal self-loop. Once enabled such a state
         * activates on every later cycle, so the dense core latches it
         * out of the dynamic enabled vector into a permanent set whose
         * successor contribution is ORed in wholesale each cycle —
         * rule-set automata (`.*`-style gaps) otherwise accumulate
         * thousands of these and keep every word of the vector live.
         */
        std::span<const uint64_t> latchable;

        /**
         * Word-level successor CSR: state s's successors, grouped by
         * target word, as (word index, bit mask) pairs in
         * [succBegin[s], succBegin[s+1]). Propagation ORs whole masks
         * instead of setting successor bits one at a time — grid
         * automata put most successors in one or two words. Bits of
         * always-enabled start states are cleared from the masks: the
         * dense core serves those through the start dispatch below, so
         * they never enter the dynamic enabled vector.
         */
        std::span<const uint32_t> succBegin; ///< size()+1 entries
        std::span<const uint32_t> succWordIdx;
        std::span<const uint64_t> succWordMask;

        /**
         * Per-class start dispatch, the dense analogue of the sparse
         * core's per-symbol start table: always-enabled starts that
         * match the symbol activate straight from these lists, so they
         * don't occupy (and don't densify) the dynamic enabled vector —
         * on rule-set automata the thousands of scattered start states
         * would otherwise keep every word live and defeat the
         * hierarchical skip.
         *
         * Two lists per class. *Reporting* starts need exact per-state
         * handling (report emission in state order), so their
         * activations — the nonzero words of (allInputStarts & accept
         * row c & reporting) — are (word index, bit mask) pairs in
         * [startBegin[c], startBegin[c+1]), merged into the sweep. The
         * (overwhelmingly more common) non-reporting starts only exist
         * to enable their successors, and which ones activate is a pure
         * function of the class, so their *pooled successor
         * contribution* — the OR of their successor masks — is
         * precomputed per class in [startSuccBegin[c],
         * startSuccBegin[c+1]) and ORed into the next vector wholesale,
         * replacing per-bit CSR propagation from every matching start
         * on every cycle.
         */
        std::span<const uint32_t> startBegin; ///< classes+1 entries
        std::span<const uint32_t> startWordIdx;
        std::span<const uint64_t> startWordMask;
        std::span<const uint32_t> startSuccBegin; ///< classes+1 entries
        std::span<const uint32_t> startSuccWordIdx;
        std::span<const uint64_t> startSuccWordMask;

        /**
         * Chain states, one row (derived from the successor CSR at
         * view construction, never stored): bit s set iff state s's
         * successor contribution is exactly bit s+1. Glushkov position
         * automata built from literal-heavy rule sets are ~90% such
         * states, so the dense core propagates them all at once with a
         * single cross-word left-shift-and-OR of the activation vector
         * (simd::Ops::shiftOrInto) and walks the CSR only for the
         * remaining fan-out states. A chain state's bit 63 never sits
         * in the last word: s+1 would be out of range, so the state
         * could not have it as its successor.
         */
        std::span<const uint64_t> chain;

        /**
         * Dense start-dispatch rows (derived, never stored): classes
         * whose pooled successor contribution covers at least 1/8 of
         * the vector get their startSucc list materialized as one full
         * row, ORed in with a single vector sweep instead of hundreds
         * of scattered read-modify-writes. startNextRow[c] is the row
         * number + 1, or 0 when class c stays on the sparse list (the
         * gate keeps wide-alphabet automata from materializing big
         * tables of near-empty rows).
         */
        std::span<const uint32_t> startNextRow; ///< classes entries
        std::span<const uint64_t> startNextRows; ///< rows x stride

        /**
         * Quiescent-configuration scan set, 256 bits: byte b is
         * "interesting" iff its class has a nonempty reporting-start
         * dispatch list or a nonempty pooled start-successor
         * contribution — i.e. stepping on b from the all-idle
         * configuration (no dynamic state enabled, no permanents
         * latched) could change the configuration or emit a report.
         * The dense core scans the input for the next such byte
         * (simd::Ops::scanForByteMask) whenever it detects quiescence
         * and jumps the cursor — the software form of the paper's SpAP
         * jump operation, applied in the input dimension. Persisted as
         * a store v3 section; recomputed from the dispatch CSRs when
         * absent. Configurations with latched permanents need a wider
         * mask, which DenseCore derives at run time from this one.
         */
        std::array<uint64_t, 4> staticScan{};

        /** Row stride (words) that keeps rows cache-line aligned. */
        static size_t
        strideFor(size_t words)
        {
            return (words + 7) & ~static_cast<size_t>(7);
        }

        const uint64_t *
        acceptRow(uint8_t symbol) const
        {
            return accept.data() +
                   static_cast<size_t>(classOf[symbol]) * stride;
        }

        /** Accept-table bytes actually stored (rows + translation). */
        size_t
        acceptBytes() const
        {
            return classes * stride * sizeof(uint64_t) + sizeof(classOf);
        }

        /** Accept-table bytes of the uncompressed 256-row layout. */
        size_t
        rawAcceptBytes() const
        {
            return 256 * stride * sizeof(uint64_t);
        }

        /**
         * Backing storage when the view was built in-process; unused
         * (all spans alias the store mapping) for loaded automata.
         * Internal — consumers go through the spans above.
         */
        struct Owned
        {
            WordVector accept;
            WordVector reporting;
            WordVector allInputStarts;
            WordVector sodStarts;
            WordVector latchable;
            std::vector<uint32_t> succBegin;
            std::vector<uint32_t> succWordIdx;
            WordVector succWordMask;
            std::vector<uint32_t> startBegin;
            std::vector<uint32_t> startWordIdx;
            WordVector startWordMask;
            std::vector<uint32_t> startSuccBegin;
            std::vector<uint32_t> startSuccWordIdx;
            WordVector startSuccWordMask;
            /** Derived arrays (chain / startNext*) are owned in BOTH
             *  construction paths — they are computed from the CSR at
             *  view-install time, never read from a store mapping. */
            WordVector chain;
            std::vector<uint32_t> startNextRow;
            WordVector startNextRows;
        };
        Owned owned;
    };

    /** Dense view, built on first use (thread-safe, then immutable). */
    const DenseView &denseView() const;

    /**
     * Hot-set DFA (sim/hot_dfa.h), determinized on first call under the
     * SPARSEAP_DFA_STATES / SPARSEAP_DFA_TABLE_KB budgets. Exactly one
     * construction attempt per automaton: the result — including a null
     * from a budget bailout — is cached, so callers can retry cheaply.
     */
    std::shared_ptr<const HotDfa> ensureHotDfa() const;

    /** The hot DFA if already built/attached; null otherwise (never
     *  triggers construction — cheap enough for per-run probing). */
    std::shared_ptr<const HotDfa> hotDfaIfBuilt() const;

    /**
     * Install a DFA decoded from a store blob, claiming the one
     * construction slot so warm starts skip determinization entirely.
     * A no-op when a DFA was already built or attached.
     */
    void attachHotDfa(std::shared_ptr<const HotDfa> dfa) const;

    /**
     * Flat snapshot of every array of this automaton *and* its dense
     * view, for the artifact store codec (src/store/artifact.h). The
     * dense view is materialized as a side effect — a stored automaton
     * always carries it so loads never rebuild it.
     */
    struct Parts
    {
        DenseCompression compression = DenseCompression::Classes;
        uint32_t classCount = 1;
        std::span<const uint8_t> classOf; ///< 256 entries
        std::span<const uint8_t> classRep;
        std::span<const SymbolSet> symbols;
        std::span<const uint8_t> reporting;
        std::span<const StartKind> start;
        std::span<const uint32_t> succBegin;
        std::span<const GlobalStateId> succ;
        std::span<const uint32_t> startTableBegin;
        std::span<const GlobalStateId> startTable;
        std::span<const GlobalStateId> sodStarts;
        std::span<const GlobalStateId> allInputStarts;

        struct Dense
        {
            uint64_t words = 0;
            uint64_t classes = 0;
            std::span<const uint8_t> classOf; ///< 256 entries
            std::span<const uint64_t> accept;
            std::span<const uint64_t> reporting;
            std::span<const uint64_t> allInputStarts;
            std::span<const uint64_t> sodStarts;
            std::span<const uint64_t> latchable;
            std::span<const uint32_t> succBegin;
            std::span<const uint32_t> succWordIdx;
            std::span<const uint64_t> succWordMask;
            std::span<const uint32_t> startBegin;
            std::span<const uint32_t> startWordIdx;
            std::span<const uint64_t> startWordMask;
            std::span<const uint32_t> startSuccBegin;
            std::span<const uint32_t> startSuccWordIdx;
            std::span<const uint64_t> startSuccWordMask;
            /** Quiescent scan set (4 words); empty when decoded from a
             *  pre-v3 blob — the view recomputes it then. */
            std::span<const uint64_t> scanMask;
        } dense;

        /** Keeps the spans' storage alive (a store mapping). */
        std::shared_ptr<const void> backing;
    };

    /** Snapshot this automaton's arrays (see Parts). */
    Parts parts() const;

    /**
     * Zero-copy construction from decoded artifact parts: every span is
     * adopted as-is (typically aliasing a read-only store mapping kept
     * alive by parts.backing) and the dense view is installed
     * immediately. The store codec validates structural consistency
     * before calling this; blob checksums guarantee the bytes are
     * exactly what an in-process flattening wrote.
     */
    explicit FlatAutomaton(const Parts &parts);

  private:
    void computeSymbolClasses();

    /** Owned backing when built from an Application (see file comment). */
    struct Owned
    {
        std::vector<SymbolSet> symbols;
        std::vector<uint8_t> reporting;
        std::vector<StartKind> start;
        std::vector<uint32_t> succ_begin;
        std::vector<GlobalStateId> succ;
        std::vector<uint32_t> start_table_begin;
        std::vector<GlobalStateId> start_table;
        std::vector<GlobalStateId> sod_starts;
        std::vector<GlobalStateId> all_input_starts;
        std::vector<uint8_t> class_rep;
    };
    Owned owned_;
    /** Keeps a store mapping alive for span-backed instances. */
    std::shared_ptr<const void> backing_;

    std::span<const SymbolSet> symbols_;
    std::span<const uint8_t> reporting_; // bool, stored flat
    std::span<const StartKind> start_;
    std::span<const uint32_t> succ_begin_; // size() + 1 entries (CSR)
    std::span<const GlobalStateId> succ_;
    /** Start dispatch CSR: one [begin, end) row per byte class. */
    std::span<const uint32_t> start_table_begin_;
    std::span<const GlobalStateId> start_table_;
    std::span<const GlobalStateId> sod_starts_;
    std::span<const GlobalStateId> all_input_starts_;
    std::span<const uint8_t> class_rep_;

    DenseCompression compression_;
    std::array<uint8_t, 256> class_of_{};
    size_t class_count_ = 1;

    mutable std::once_flag dense_once_;
    mutable std::unique_ptr<DenseView> dense_;

    /** One-shot hot-DFA slot: dfa_ready_ (acquire/release) publishes
     *  hot_dfa_, which may be null after a budget bailout. */
    mutable std::once_flag dfa_once_;
    mutable std::shared_ptr<const HotDfa> hot_dfa_;
    mutable std::atomic<bool> dfa_ready_{false};
};

} // namespace sparseap

#endif // SPARSEAP_SIM_FLAT_AUTOMATON_H
