#include "sim/hot_dfa.h"

#include <cstring>
#include <string>
#include <unordered_map>

#include "common/logging.h"
#include "common/options.h"
#include "common/vec.h"
#include "common/word_vector.h"
#include "telemetry/metrics.h"
#include "telemetry/trace.h"

namespace sparseap {

HotDfa::Limits
HotDfa::Limits::fromOptions()
{
    Limits l;
    l.stateBudget = globalOptions().dfaStateBudget;
    l.tableBytes = globalOptions().dfaTableBytes;
    return l;
}

std::shared_ptr<const HotDfa>
HotDfa::build(const FlatAutomaton &fa, const Limits &limits)
{
    SPARSEAP_PHASE("determinize");
    static telemetry::Counter builds("dfa.builds");
    static telemetry::Counter bailouts("dfa.bailouts");
    builds.add(1);

    const FlatAutomaton::DenseView &dv = fa.denseView();
    const size_t words = dv.words;
    const size_t classes = dv.classes;
    if (words == 0 || classes == 0)
        return nullptr; // empty automaton: nothing to determinize
    const simd::Ops &ops = simd::ops();

    auto dfa = std::shared_ptr<HotDfa>(new HotDfa());
    dfa->classes_ = classes;
    dfa->class_of_ = dv.classOf;
    Owned &own = dfa->owned_;

    // Activated set of every discovered state, back to back. State 0's
    // slot stays all-zero: its enabled set is seeded below, not derived.
    std::vector<uint64_t> act_sets(words, 0);
    // Dedup on the exact activated-set bytes; state 0 excluded (its key
    // would collide with a genuinely empty activated set, which derives
    // different — post-input — successors only when sodStarts differ).
    std::unordered_map<std::string, uint32_t> dedup;
    dedup.reserve(limits.stateBudget);

    own.reportBegin.push_back(0);
    own.reportBegin.push_back(0); // state 0 emits nothing

    WordVector enabled(words, 0);
    WordVector scratch(words, 0);
    std::string key(words * sizeof(uint64_t), '\0');

    const uint32_t *succ_begin = dv.succBegin.data();
    const uint32_t *succ_idx = dv.succWordIdx.data();
    const uint64_t *succ_mask = dv.succWordMask.data();

    // BFS worklist: states are numbered in discovery order and processed
    // in id order; act_sets grows while iterating (one slot per state).
    for (uint32_t s = 0; static_cast<size_t>(s) * words < act_sets.size();
         ++s) {
        // Enabled set feeding state s's transitions: start-of-data
        // starts for the pre-input state, the activated set's successors
        // otherwise; always-enabled starts join either way. (The dense
        // view's successor masks have start-state bits cleared — the OR
        // of the full start row below restores exactly those.)
        if (s == 0) {
            std::memcpy(enabled.data(), dv.sodStarts.data(),
                        words * sizeof(uint64_t));
        } else {
            ops.clear(enabled.data(), words);
            const uint64_t *act = act_sets.data() +
                                  static_cast<size_t>(s) * words;
            for (size_t w = 0; w < words; ++w) {
                uint64_t bits = act[w];
                while (bits != 0) {
                    const unsigned b =
                        static_cast<unsigned>(__builtin_ctzll(bits));
                    const auto st =
                        static_cast<GlobalStateId>(w * 64 + b);
                    for (uint32_t k = succ_begin[st];
                         k < succ_begin[st + 1]; ++k)
                        enabled[succ_idx[k]] |= succ_mask[k];
                    bits &= bits - 1;
                }
            }
        }
        ops.orInto(enabled.data(), dv.allInputStarts.data(), words);

        if (own.table.size() < (static_cast<size_t>(s) + 1) * classes)
            own.table.resize((static_cast<size_t>(s) + 1) * classes, 0);

        for (size_t c = 0; c < classes; ++c) {
            const uint64_t *row = dv.accept.data() + c * dv.stride;
            ops.bitAnd(scratch.data(), enabled.data(), row, words);
            std::memcpy(key.data(), scratch.data(),
                        words * sizeof(uint64_t));

            uint32_t id;
            auto it = dedup.find(key);
            if (it != dedup.end()) {
                id = it->second;
            } else {
                const size_t next_states = act_sets.size() / words + 1;
                if (next_states > limits.stateBudget ||
                    next_states * classes * sizeof(uint32_t) >
                        limits.tableBytes) {
                    bailouts.add(1);
                    debugLog("hot-dfa bailout at ", next_states - 1,
                             " states (", fa.size(), " NFA states, ",
                             classes, " classes)");
                    return nullptr;
                }
                id = static_cast<uint32_t>(next_states - 1);
                dedup.emplace(key, id);
                act_sets.insert(act_sets.end(), scratch.begin(),
                                scratch.end());
                // Reports are a per-state property of the activated
                // set, materialized once at discovery (ascending id —
                // the dense core's emission order).
                forEachSetBit(
                    std::span<const uint64_t>(scratch.data(), words),
                    [&](size_t bit) {
                        if (testWordBit(dv.reporting.data(), bit))
                            own.reportIds.push_back(
                                static_cast<GlobalStateId>(bit));
                    });
                own.reportBegin.push_back(
                    static_cast<uint32_t>(own.reportIds.size()));
            }
            own.table[static_cast<size_t>(s) * classes + c] = id;
        }
    }

    dfa->states_ = act_sets.size() / words;
    dfa->table_ = own.table;
    dfa->report_begin_ = own.reportBegin;
    dfa->report_ids_ = own.reportIds;
    dfa->buildSkipTables();
    debugLog("hot-dfa built: ", dfa->states_, " states x ", classes,
             " classes (", dfa->tableBytes(), " table bytes, ",
             dfa->reportCount(), " report entries) over ", fa.size(),
             " NFA states");
    return dfa;
}

/**
 * Precompute per-state input-skip masks. A state qualifies when it
 * emits no reports (a self-looping reporter must emit at every skipped
 * position) and self-loops on at least kMinBoringBytes byte values
 * (below that the expected jump distance can't pay for the scan).
 * Interesting bytes — next(s, b) != s — go into the mask; the driver
 * scans for them while the DFA sits in s. One 256-probe pass per state,
 * O(states) extra bytes: most workloads have a handful of "gap" states
 * (e.g. scanning for a literal's first byte) that dominate run time.
 */
void
HotDfa::buildSkipTables()
{
    constexpr unsigned kMinBoringBytes = 32;
    owned_.skipIndex.assign(states_, 0);
    for (uint32_t s = 0; s < states_; ++s) {
        if (report_begin_[s + 1] != report_begin_[s])
            continue;
        uint64_t bits[4] = {0, 0, 0, 0};
        unsigned boring = 0;
        const uint32_t *row = table_.data() +
                              static_cast<size_t>(s) * classes_;
        for (unsigned b = 0; b < 256; ++b) {
            if (row[class_of_[b]] == s)
                ++boring;
            else
                bits[b >> 6] |= 1ull << (b & 63);
        }
        if (boring < kMinBoringBytes)
            continue;
        owned_.skipIndex[s] = static_cast<uint32_t>(
            owned_.skipBits.size() / 4 + 1);
        owned_.skipBits.insert(owned_.skipBits.end(), bits, bits + 4);
    }
    skip_index_ = owned_.skipIndex;
    skip_bits_ = owned_.skipBits;
    deriveSkipMasks();
}

void
HotDfa::deriveSkipMasks()
{
    skip_masks_.clear();
    skip_masks_.reserve(skip_bits_.size() / 4);
    for (size_t i = 0; i + 4 <= skip_bits_.size(); i += 4)
        skip_masks_.push_back(
            simd::ScanMask::fromBits(skip_bits_.data() + i));
}

HotDfa::Parts
HotDfa::parts() const
{
    Parts p;
    p.states = states_;
    p.classes = classes_;
    p.table = table_;
    p.reportBegin = report_begin_;
    p.reportIds = report_ids_;
    p.skipIndex = skip_index_;
    p.skipBits = skip_bits_;
    p.backing = backing_;
    return p;
}

std::shared_ptr<const HotDfa>
HotDfa::fromParts(const Parts &parts, const FlatAutomaton &fa)
{
    auto dfa = std::shared_ptr<HotDfa>(new HotDfa());
    dfa->states_ = parts.states;
    dfa->classes_ = parts.classes;
    dfa->class_of_ = fa.denseView().classOf;
    dfa->table_ = parts.table;
    dfa->report_begin_ = parts.reportBegin;
    dfa->report_ids_ = parts.reportIds;
    dfa->backing_ = parts.backing;
    if (parts.skipIndex.size() == parts.states) {
        // v3 blob: attach the persisted skip tables; only the shuffle
        // nibble tables are derived here.
        dfa->skip_index_ = parts.skipIndex;
        dfa->skip_bits_ = parts.skipBits;
        dfa->deriveSkipMasks();
    } else {
        dfa->buildSkipTables();
    }
    return dfa;
}

} // namespace sparseap
