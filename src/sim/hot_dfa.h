/**
 * @file
 * Capped subset-construction determinization of a (hot) FlatAutomaton.
 *
 * The dense core pays O(live words) per symbol; for the small,
 * frequently-enabled hot partition the profiler identifies, even that is
 * more work than a DFA's single table lookup. This pass determinizes the
 * automaton over its byte-equivalence classes: a DFA state is an
 * *activated* set — the NFA states that fired on the current symbol —
 * which makes both the transition and the reports a pure function of the
 * state:
 *
 *   D' = (succ(D) ∪ allInputStarts) ∩ acceptRow(class)
 *   reports(D) = D ∩ reporting        (emitted in ascending state id)
 *
 * State 0 is the pre-input configuration (enabled = start-of-data
 * starts; it emits nothing and is excluded from the dedup map since its
 * enabled set is seeded, not derived from an activated set). Latching
 * needs no special handling: a universal self-loop state that enters an
 * activated set re-enters it on every later symbol by construction.
 *
 * Construction is a plain BFS expanding classes in ascending order, so
 * state numbering — and therefore the encoded artifact — is
 * deterministic. The pass *bails out* (returns null) the moment the
 * state count or the transition-table bytes exceed the caps
 * (SPARSEAP_DFA_STATES / SPARSEAP_DFA_TABLE_KB): subset construction is
 * exponential in the worst case, and the NFA dense core is always a
 * correct fallback.
 *
 * Stepping is then:
 *
 *   state = table[state * classes + classOf[symbol]]
 *   for id in reports(state): emit (position, id)
 *
 * Like FlatAutomaton, storage is span-based: built in-process the arrays
 * live in owned vectors; decoded from a store blob they alias the
 * read-only file mapping (see src/store/artifact.h).
 */

#ifndef SPARSEAP_SIM_HOT_DFA_H
#define SPARSEAP_SIM_HOT_DFA_H

#include <array>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "common/vec.h"
#include "sim/flat_automaton.h"

namespace sparseap {

/** Immutable symbol-class-indexed DFA over one FlatAutomaton. */
class HotDfa
{
  public:
    /** Construction caps; build() bails out (returns null) beyond. */
    struct Limits
    {
        /** Maximum DFA states. */
        size_t stateBudget = 2048;
        /** Maximum transition-table bytes (states * classes * 4). */
        size_t tableBytes = 4096 * 1024;

        /** Caps from SPARSEAP_DFA_STATES / SPARSEAP_DFA_TABLE_KB. */
        static Limits fromOptions();
    };

    /**
     * Determinize @p fa under @p limits.
     * @return the DFA, or null when a budget was exceeded.
     */
    static std::shared_ptr<const HotDfa>
    build(const FlatAutomaton &fa, const Limits &limits);

    /** Number of DFA states (>= 1; state 0 is the start state). */
    size_t states() const { return states_; }

    /** Transition-table columns (the automaton's symbol classes). */
    size_t classes() const { return classes_; }

    /** Transition-table bytes (the budget-relevant footprint). */
    size_t
    tableBytes() const
    {
        return table_.size() * sizeof(uint32_t);
    }

    /** Total report-list entries across all states. */
    size_t reportCount() const { return report_ids_.size(); }

    /** Successor state on @p symbol. */
    uint32_t
    next(uint32_t state, uint8_t symbol) const
    {
        return table_[static_cast<size_t>(state) * classes_ +
                      class_of_[symbol]];
    }

    /** NFA reporting states active in @p state, ascending id. */
    std::span<const GlobalStateId>
    reportsOf(uint32_t state) const
    {
        return {report_ids_.data() + report_begin_[state],
                report_begin_[state + 1] - report_begin_[state]};
    }

    /**
     * Per-state input-skip mask, or null when @p state is not
     * skippable. A state is skippable when it emits no reports and
     * self-loops on at least 32 byte values; the mask then holds its
     * *interesting* bytes — those whose transition leaves the state —
     * so while the DFA sits in it, the driver may scan the input
     * (simd::Ops::scanForByteMask) and jump straight to the next byte
     * that moves the machine. Precomputed for every state from the
     * transition table (256 probes per state), persisted as store v3
     * sections, rebuilt when attaching a pre-v3 blob.
     */
    const simd::ScanMask *
    skipMask(uint32_t state) const
    {
        const uint32_t i = skip_index_[state];
        return i == 0 ? nullptr : &skip_masks_[i - 1];
    }

    /** True iff any state has a skip mask (hoist out of the loop). */
    bool anySkippable() const { return !skip_masks_.empty(); }

    /** Number of states with a skip mask. */
    size_t skippableStates() const { return skip_masks_.size(); }

    /**
     * Flat snapshot for the artifact store codec. The byte→class map is
     * not part of it — it is the automaton's own, already stored with
     * the FlatAutomaton sections.
     */
    struct Parts
    {
        uint64_t states = 0;
        uint64_t classes = 0;
        std::span<const uint32_t> table;       ///< states * classes
        std::span<const uint32_t> reportBegin; ///< states + 1
        std::span<const GlobalStateId> reportIds;
        /**
         * Input-skip sections (store v3): skipIndex has one entry per
         * state (0 = not skippable, else 1 + mask number) and skipBits
         * four words per mask (the raw 256-bit interesting-byte sets —
         * the shuffle nibble tables are derived at attach). Empty when
         * decoded from a pre-v3 blob; fromParts recomputes them then.
         */
        std::span<const uint32_t> skipIndex;
        std::span<const uint64_t> skipBits;
        /** Keeps the spans' storage alive (a store mapping). */
        std::shared_ptr<const void> backing;
    };

    Parts parts() const;

    /**
     * Zero-copy construction from decoded parts; the byte→class map is
     * taken from @p fa (the automaton the DFA was built from). The
     * store codec validates structural consistency before calling this.
     */
    static std::shared_ptr<const HotDfa> fromParts(const Parts &parts,
                                                   const FlatAutomaton &fa);

  private:
    HotDfa() = default;

    /** Fill owned_.skipIndex/skipBits from the transition table. */
    void buildSkipTables();
    /** Derive the prepared scan masks from the skip_bits_ span. */
    void deriveSkipMasks();

    size_t states_ = 0;
    size_t classes_ = 0;
    std::array<uint8_t, 256> class_of_{};

    std::span<const uint32_t> table_;
    std::span<const uint32_t> report_begin_;
    std::span<const GlobalStateId> report_ids_;
    std::span<const uint32_t> skip_index_; ///< states entries
    std::span<const uint64_t> skip_bits_;  ///< 4 words per mask
    /** Prepared scan masks (derived from skip_bits_, never stored). */
    std::vector<simd::ScanMask> skip_masks_;

    struct Owned
    {
        std::vector<uint32_t> table;
        std::vector<uint32_t> reportBegin;
        std::vector<GlobalStateId> reportIds;
        std::vector<uint32_t> skipIndex;
        std::vector<uint64_t> skipBits;
    };
    Owned owned_;
    std::shared_ptr<const void> backing_;
};

} // namespace sparseap

#endif // SPARSEAP_SIM_HOT_DFA_H
