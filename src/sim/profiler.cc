#include "sim/profiler.h"

#include <algorithm>

#include "sim/flat_automaton.h"

namespace sparseap {

HotStateProfiler::HotStateProfiler(size_t state_count)
    : enabled_ever_(state_count, false)
{
}

void
HotStateProfiler::markStarts(const FlatAutomaton &fa)
{
    for (GlobalStateId s : fa.allInputStarts())
        enabled_ever_[s] = true;
    for (GlobalStateId s : fa.startOfDataStarts())
        enabled_ever_[s] = true;
}

size_t
HotStateProfiler::hotCount() const
{
    return static_cast<size_t>(
        std::count(enabled_ever_.begin(), enabled_ever_.end(), true));
}

double
HotStateProfiler::hotFraction() const
{
    if (enabled_ever_.empty())
        return 0.0;
    return static_cast<double>(hotCount()) /
           static_cast<double>(enabled_ever_.size());
}

} // namespace sparseap
