/**
 * @file
 * Hot-state profiler (Section IV-A).
 *
 * Records which states were *enabled* at least once during a run. Hot =
 * enabled at least once; cold = never enabled. Start states count as hot
 * unconditionally: an all-input start is enabled every cycle, and a
 * start-of-data start is enabled before position 0.
 */

#ifndef SPARSEAP_SIM_PROFILER_H
#define SPARSEAP_SIM_PROFILER_H

#include <cstddef>
#include <vector>

#include "nfa/application.h"

namespace sparseap {

class FlatAutomaton;

/** Accumulates the set of states ever enabled across one or more runs. */
class HotStateProfiler
{
  public:
    /** @param state_count total states in the automaton being profiled. */
    explicit HotStateProfiler(size_t state_count);

    /** Mark the start states of @p fa as enabled. */
    void markStarts(const FlatAutomaton &fa);

    /** Record that state @p s became enabled. */
    void
    markEnabled(GlobalStateId s)
    {
        enabled_ever_[s] = true;
    }

    /** @return true iff state @p s was ever enabled. */
    bool hot(GlobalStateId s) const { return enabled_ever_[s]; }

    /** Bitvector of ever-enabled states. */
    const std::vector<bool> &hotSet() const { return enabled_ever_; }

    /** Number of hot states. */
    size_t hotCount() const;

    /** Fraction of hot states. */
    double hotFraction() const;

  private:
    std::vector<bool> enabled_ever_;
};

} // namespace sparseap

#endif // SPARSEAP_SIM_PROFILER_H
