/**
 * @file
 * Report records emitted by automata execution.
 *
 * A report (position, state) means the reporting state @c state activated
 * while consuming the input symbol at @c position. Intermediate reports
 * (Section IV-C) reuse the same record with the *translated* target state
 * (the predicted-cold state to enable in SpAP mode).
 */

#ifndef SPARSEAP_SIM_REPORT_H
#define SPARSEAP_SIM_REPORT_H

#include <cstdint>
#include <vector>

#include "nfa/application.h"

namespace sparseap {

/**
 * One report: reporting state @c state activated at input @c position.
 * The position is a 64-bit *global stream offset*: suspendable sessions
 * (sim/session.h) feed inputs chunk by chunk and a long-lived stream
 * overflows 32 bits after 4 GiB. Reports are never serialized by the
 * artifact store (only reporting-state masks are), so the width is an
 * in-memory property.
 */
struct Report
{
    uint64_t position;
    GlobalStateId state;

    bool
    operator==(const Report &o) const
    {
        return position == o.position && state == o.state;
    }

    bool
    operator<(const Report &o) const
    {
        return position != o.position ? position < o.position
                                      : state < o.state;
    }
};

/** Report stream in nondecreasing position order. */
using ReportList = std::vector<Report>;

} // namespace sparseap

#endif // SPARSEAP_SIM_REPORT_H
