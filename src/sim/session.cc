#include "sim/session.h"

#include <algorithm>

#include "common/logging.h"
#include "common/vec.h"
#include "common/word_vector.h"
#include "sim/dense_core.h"
#include "sim/engine.h"
#include "sim/hot_dfa.h"
#include "sim/profiler.h"
#include "telemetry/metrics.h"

namespace sparseap {

namespace {

/**
 * DFA skip-gate tuning, shared with the whole-input path (which is this
 * path — Engine delegates here). Scanning only pays when quiescent runs
 * are long enough to amortize the per-byte mask check, so the gate
 * reassesses the average jump length every kAdaptJumps jumps and stops
 * scanning below break-even. Chunk boundaries clip individual scans, so
 * a chunked stream's gate trajectory (and skip counters) can differ
 * from a whole-input run's — reports never do.
 */
constexpr uint64_t kAdaptJumps = 64;
constexpr uint64_t kMinBytesPerJump = 4;

void
countChunks(uint64_t n)
{
    static telemetry::Counter chunks("session.chunks");
    chunks.add(n);
}

} // namespace

EngineSession::EngineSession(const FlatAutomaton &fa)
    : EngineSession(fa, SessionConfig{})
{
}

EngineSession::EngineSession(const FlatAutomaton &fa, SessionConfig config)
    : fa_(fa), config_(config), core_(std::make_unique<ExecCore>(fa))
{
}

EngineSession::~EngineSession() = default;

const DenseCore *
EngineSession::denseCore() const
{
    return dense_.get();
}

void
EngineSession::ensureDense()
{
    if (!dense_)
        dense_ = std::make_unique<DenseCore>(fa_);
}

EngineMode
EngineSession::resolvedMode() const
{
    switch (phase_) {
    case Phase::Sparse:
    case Phase::Probe:
        return EngineMode::Sparse;
    case Phase::Dense:
        return EngineMode::Dense;
    case Phase::Dfa:
        return EngineMode::Dfa;
    }
    return EngineMode::Sparse; // unreachable
}

void
EngineSession::restart(HotStateProfiler *profiler)
{
    static telemetry::Counter streams("session.streams");
    streams.add(1);

    // A handed-over auto stream nominates determinization for the
    // *next* stream (Engine::run parity: the measured work that chose
    // the dense core also argues the automaton runs hot enough to
    // determinize). One capped attempt per session.
    if (pending_dfa_nomination_ && !dfa_checked_ &&
        fa_.size() <= Engine::kMaxAutoDfaStates) {
        dfa_checked_ = true;
        dfa_ = fa_.ensureHotDfa();
    }
    pending_dfa_nomination_ = false;

    offset_ = 0;
    report_capacity_ = std::max(report_capacity_, reports_.size());
    reports_.clear();
    reports_.reserve(report_capacity_);
    stats_ = SessionStats{};
    probe_work_ = 0;
    dfa_state_ = 0;
    dfa_scanning_ = true;
    skip_base_symbols_ = 0;
    skip_base_jumps_ = 0;

    if (profiler) {
        // Profiling needs the per-state enable hooks only the sparse
        // core has; profile prefixes are short.
        profiler->markStarts(fa_);
        phase_ = Phase::Sparse;
        core_->reset(config_.alphabet, profiler, /*install_starts=*/true);
        return;
    }

    switch (config_.mode) {
    case EngineMode::Sparse:
        phase_ = Phase::Sparse;
        core_->reset(config_.alphabet, nullptr, /*install_starts=*/true);
        break;
    case EngineMode::Dense:
        ensureDense();
        dense_->reset(/*install_starts=*/true);
        phase_ = Phase::Dense;
        break;
    case EngineMode::Dfa:
        if (!dfa_checked_) {
            dfa_checked_ = true;
            dfa_ = fa_.ensureHotDfa();
            if (!dfa_)
                debugLog("dfa mode: budget bailout on ", fa_.size(),
                         "-state automaton, using the dense core");
        }
        if (dfa_) {
            phase_ = Phase::Dfa;
        } else {
            ensureDense();
            dense_->reset(/*install_starts=*/true);
            phase_ = Phase::Dense;
        }
        break;
    case EngineMode::Auto:
        if (dfa_) {
            phase_ = Phase::Dfa;
            break;
        }
        core_->reset(config_.alphabet, nullptr, /*install_starts=*/true);
        // The probe needs more than kProbeCycles stream symbols to ever
        // decide; with fewer the stream just ran sparse — exactly the
        // n > kProbeCycles gate of a whole-input run, evaluated lazily.
        phase_ = fa_.size() >= Engine::kMinDenseStates ? Phase::Probe
                                                       : Phase::Sparse;
        break;
    }
}

void
EngineSession::decideHandover()
{
    const uint64_t threshold =
        static_cast<uint64_t>(Engine::kProbeCycles) *
        Engine::kDenseWorkPerWord * wordsForBits(fa_.size());
    if (probe_work_ >= threshold) {
        // Dense from here on, for the rest of the stream: hand the
        // in-flight enabled set over. The decision is made exactly once
        // per stream, at the same global cycle a whole-input run
        // decides — never re-probed on later chunks.
        std::vector<GlobalStateId> live;
        core_->snapshotEnabled(&live);
        ensureDense();
        dense_->reset(/*install_starts=*/false);
        dense_->seed(live);
        phase_ = Phase::Dense;
        stats_.handedOver = true;
        pending_dfa_nomination_ = true;
    } else {
        phase_ = Phase::Sparse; // committed: no further probing
    }
}

size_t
EngineSession::feedDense(std::span<const uint8_t> chunk, size_t i)
{
    const size_t n = chunk.size();
    if (config_.inputSkip) {
        while (i < n) {
            i += dense_->trySkip(chunk.data() + i, n - i);
            if (i >= n)
                break;
            dense_->step(chunk[i], offset_ + i, &reports_);
            ++i;
        }
    } else {
        for (; i < n; ++i)
            dense_->step(chunk[i], offset_ + i, &reports_);
    }
    const DenseCore::StepStats &ds = dense_->stepStats();
    stats_.skippedSymbols = skip_base_symbols_ + ds.skippedSymbols;
    stats_.skipJumps = skip_base_jumps_ + ds.jumps;
    stats_.usedDenseCore = true;
    return n;
}

size_t
EngineSession::feedDfa(std::span<const uint8_t> chunk, size_t i)
{
    const size_t n = chunk.size();
    const HotDfa &dfa = *dfa_;
    uint32_t state = dfa_state_;
    if (config_.inputSkip && dfa.anySkippable()) {
        // Quiescence-skip loop with the adaptive profitability gate;
        // the gate counters and the scanning flag persist across
        // chunks, so a long boring stream gives up scanning once, not
        // once per chunk.
        const simd::Ops &ops = simd::ops();
        while (i < n) {
            const simd::ScanMask *m =
                dfa_scanning_ ? dfa.skipMask(state) : nullptr;
            if (m != nullptr && !m->test(chunk[i])) {
                const size_t skipped =
                    ops.scanForByteMask(chunk.data() + i, n - i, *m);
                stats_.skippedSymbols += skipped;
                ++stats_.skipJumps;
                i += skipped;
                if (i >= n)
                    break;
                if (stats_.skipJumps % kAdaptJumps == 0 &&
                    stats_.skippedSymbols <
                        stats_.skipJumps * kMinBytesPerJump)
                    dfa_scanning_ = false;
            }
            state = dfa.next(state, chunk[i]);
            for (GlobalStateId id : dfa.reportsOf(state))
                reports_.push_back({offset_ + i, id});
            ++i;
        }
    } else {
        for (; i < n; ++i) {
            state = dfa.next(state, chunk[i]);
            for (GlobalStateId id : dfa.reportsOf(state))
                reports_.push_back({offset_ + i, id});
        }
    }
    dfa_state_ = state;
    stats_.usedDfa = true;
    return n;
}

void
EngineSession::feed(std::span<const uint8_t> chunk)
{
    ++stats_.chunks;
    countChunks(1);
    const size_t n = chunk.size();
    size_t i = 0;

    if (phase_ == Phase::Probe) {
        // The decision point is the arrival of stream symbol
        // kProbeCycles (0-based): the first kProbeCycles symbols ran
        // sparse and their work is in; a whole-input run would decide
        // here too. A stream that ends earlier just ran sparse.
        while (i < n && offset_ + i < Engine::kProbeCycles) {
            core_->step(chunk[i], offset_ + i, &reports_);
            probe_work_ += core_->lastStepWork();
            ++i;
        }
        if (phase_ == Phase::Probe &&
            offset_ + i >= Engine::kProbeCycles && i < n)
            decideHandover();
    }

    if (phase_ == Phase::Sparse || phase_ == Phase::Probe) {
        for (; i < n; ++i)
            core_->step(chunk[i], offset_ + i, &reports_);
    } else if (phase_ == Phase::Dense) {
        i = feedDense(chunk, i);
    } else if (phase_ == Phase::Dfa) {
        i = feedDfa(chunk, i);
    }

    offset_ += n;
    stats_.cycles = offset_;
}

ReportList
EngineSession::takeReports()
{
    report_capacity_ = std::max(report_capacity_, reports_.size());
    ReportList out = std::move(reports_);
    reports_ = ReportList();
    return out;
}

EngineSession::Snapshot
EngineSession::suspend() const
{
    static telemetry::Counter suspends("session.suspends");
    static telemetry::Counter snapshot_bytes("session.snapshot_bytes");
    suspends.add(1);

    Snapshot snap;
    snap.config = config_;
    snap.phase = static_cast<uint8_t>(phase_);
    snap.offset = offset_;
    snap.probeWork = probe_work_;
    snap.dfaState = dfa_state_;
    snap.dfaScanning = dfa_scanning_;
    snap.dfaChecked = dfa_checked_;
    snap.pendingDfaNomination = pending_dfa_nomination_;
    snap.stats = stats_;
    switch (phase_) {
    case Phase::Sparse:
    case Phase::Probe:
        core_->saveState(&snap.sparse);
        break;
    case Phase::Dense:
        dense_->snapshotEnabled(&snap.dense);
        break;
    case Phase::Dfa:
        break; // dfaState is the whole execution state
    }
    snapshot_bytes.add(snap.byteSize());
    return snap;
}

void
EngineSession::resume(const Snapshot &snap)
{
    config_ = snap.config;
    phase_ = static_cast<Phase>(snap.phase);
    offset_ = snap.offset;
    probe_work_ = snap.probeWork;
    dfa_state_ = snap.dfaState;
    dfa_scanning_ = snap.dfaScanning;
    dfa_checked_ = snap.dfaChecked;
    pending_dfa_nomination_ = snap.pendingDfaNomination;
    stats_ = snap.stats;
    reports_.clear();
    skip_base_symbols_ = 0;
    skip_base_jumps_ = 0;

    if (dfa_checked_ && !dfa_)
        dfa_ = fa_.ensureHotDfa(); // deterministic rebuild or cache hit

    switch (phase_) {
    case Phase::Sparse:
    case Phase::Probe:
        core_->restoreState(config_.alphabet, snap.sparse);
        break;
    case Phase::Dense:
        ensureDense();
        dense_->reset(/*install_starts=*/false);
        dense_->seed(snap.dense);
        // The re-seeded core's StepStats restart at zero; carry the
        // stream's skip totals forward so stats stay monotone.
        skip_base_symbols_ = snap.stats.skippedSymbols;
        skip_base_jumps_ = snap.stats.skipJumps;
        break;
    case Phase::Dfa:
        SPARSEAP_ASSERT(dfa_ != nullptr,
                        "resuming a DFA-phase stream requires the "
                        "automaton to determinize under the current "
                        "budgets");
        break;
    }
}

void
EngineSession::feedFused(std::span<EngineSession *const> sessions,
                         std::span<const std::span<const uint8_t>> chunks)
{
    SPARSEAP_ASSERT(sessions.size() == chunks.size(),
                    "feedFused: one chunk per session");
    const size_t b = sessions.size();
    if (b == 0)
        return;
    const HotDfa *dfa = sessions[0]->dfa_.get();
    for (size_t k = 0; k < b; ++k) {
        SPARSEAP_ASSERT(sessions[k]->phase_ == Phase::Dfa,
                        "feedFused: every session must be in the DFA "
                        "phase");
        SPARSEAP_ASSERT(sessions[k]->dfa_.get() == dfa,
                        "feedFused: every session must share one DFA");
    }
    countChunks(b);

    // Interleave in blocks of kMaxFused streams: per input symbol, one
    // table lookup per stream — kMaxFused independent dependency
    // chains in flight instead of one, with the table shared across
    // all of them. Report extraction stays per-stream and in-order, so
    // the output is byte-identical to per-session feeds.
    constexpr size_t kMaxFused = 64;
    uint32_t st[kMaxFused];
    const uint8_t *in[kMaxFused];
    for (size_t base = 0; base < b; base += kMaxFused) {
        const size_t m = std::min(kMaxFused, b - base);
        size_t fused_n = SIZE_MAX; // common prefix of this block
        for (size_t k = 0; k < m; ++k) {
            st[k] = sessions[base + k]->dfa_state_;
            in[k] = chunks[base + k].data();
            fused_n = std::min(fused_n, chunks[base + k].size());
        }
        for (size_t t = 0; t < fused_n; ++t) {
            for (size_t k = 0; k < m; ++k) {
                const uint32_t s = dfa->next(st[k], in[k][t]);
                st[k] = s;
                if (!dfa->reportsOf(s).empty()) {
                    EngineSession &sess = *sessions[base + k];
                    for (GlobalStateId id : dfa->reportsOf(s))
                        sess.reports_.push_back({sess.offset_ + t, id});
                }
            }
        }
        // Unequal chunk lengths (last round of a batch): finish each
        // stream's tail individually.
        for (size_t k = 0; k < m; ++k) {
            EngineSession &sess = *sessions[base + k];
            const std::span<const uint8_t> chunk = chunks[base + k];
            uint32_t s = st[k];
            for (size_t t = fused_n; t < chunk.size(); ++t) {
                s = dfa->next(s, chunk[t]);
                for (GlobalStateId id : dfa->reportsOf(s))
                    sess.reports_.push_back({sess.offset_ + t, id});
            }
            sess.dfa_state_ = s;
            sess.offset_ += chunk.size();
            ++sess.stats_.chunks;
            sess.stats_.cycles = sess.offset_;
            sess.stats_.usedDfa = true;
        }
    }
}

} // namespace sparseap
