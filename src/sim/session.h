/**
 * @file
 * Suspendable engine sessions: chunked execution over one stream.
 *
 * Engine::run consumes a whole input in one call; a streaming match
 * service receives the same bytes as chunks that arrive over time and
 * must interleave many streams on one automaton. EngineSession is the
 * chunked form of Engine::run with the invariant the whole subsystem is
 * tested against:
 *
 *   restart(); feed(c0); feed(c1); ... feed(ck)
 *
 * produces a report stream *byte-identical* (same records, same order)
 * to one Engine::run over the concatenation c0+c1+...+ck — for every
 * stepping core, every chunk partition (including 1-byte chunks), with
 * the quiescence input skip on or off. Report positions are 64-bit
 * global stream offsets (Report::position), so a long-lived stream
 * never wraps.
 *
 * The auto-mode probe is carried *across* chunks: the session
 * accumulates the sparse core's measured work over the first
 * Engine::kProbeCycles symbols of the stream no matter how they are
 * chunked, decides the sparse→dense handover exactly once at the same
 * global cycle a whole-input run would, and stays on the chosen core
 * for the rest of the stream instead of re-probing per chunk. The
 * post-handover DFA nomination happens at the next restart() — a
 * stream never switches to the DFA table mid-flight (there is no
 * NFA-set→DFA-state mapping for an in-flight configuration).
 *
 * suspend()/resume() capture the live execution state between chunks
 * into a portable Snapshot — the ordered sparse lists (ExecCore), the
 * dense live set (DenseCore), or the DFA state — so a stream can be
 * parked, migrated to another EngineSession (or another process: the
 * DFA's BFS numbering is deterministic) and continued byte-identically.
 *
 * Engine is itself implemented on top of EngineSession (one restart +
 * one feed per run), so the chunked and whole-input paths cannot
 * drift. See DESIGN.md §10.
 */

#ifndef SPARSEAP_SIM_SESSION_H
#define SPARSEAP_SIM_SESSION_H

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "common/bitset256.h"
#include "common/options.h"
#include "sim/exec_core.h"
#include "sim/flat_automaton.h"
#include "sim/report.h"

namespace sparseap {

class DenseCore;
class HotDfa;
class HotStateProfiler;

/**
 * Per-session execution configuration, fixed at restart() time (except
 * inputSkip, which feed() re-reads so benches can flip it).
 */
struct SessionConfig
{
    /** Stepping-core selection (defaults to SPARSEAP_ENGINE). */
    EngineMode mode = globalOptions().engineMode;
    /** Quiescence input skip (defaults to SPARSEAP_INPUT_SKIP). */
    bool inputSkip = globalOptions().inputSkip;
    /**
     * Declared stream alphabet: the sparse core's latched/permanent
     * optimization treats a state as universal when its symbol-set
     * covers every byte that can occur. A whole-input run knows the
     * exact distinct-byte set; a stream does not, so the default is the
     * safe superset (every byte). Any superset of the bytes actually
     * fed preserves report *content*; matching Engine::run's
     * within-position report order byte-for-byte additionally requires
     * declaring the same alphabet Engine resolved (its input's distinct
     * bytes). Engine does exactly that when delegating here.
     */
    Bitset256 alphabet = Bitset256::all();
};

/** Per-stream accounting, zeroed by restart(). */
struct SessionStats
{
    /** feed() calls since restart (chunks consumed). */
    uint64_t chunks = 0;
    /** Symbols consumed so far, including skipped ones (== offset). */
    uint64_t cycles = 0;
    /** Symbols consumed without stepping by the input skip. */
    uint64_t skippedSymbols = 0;
    /** Skip scans that advanced the cursor. */
    uint64_t skipJumps = 0;
    /** True when the auto probe handed this stream sparse→dense. */
    bool handedOver = false;
    /** True when (part of) the stream executed on the dense core. */
    bool usedDenseCore = false;
    /** True when the stream executed on the hot-DFA table. */
    bool usedDfa = false;
};

/** Suspendable chunked execution of one stream over one automaton. */
class EngineSession
{
  public:
    /** Configuration from globalOptions() (SPARSEAP_ENGINE etc.). */
    explicit EngineSession(const FlatAutomaton &fa);

    EngineSession(const FlatAutomaton &fa, SessionConfig config);

    ~EngineSession();

    const FlatAutomaton &automaton() const { return fa_; }

    const SessionConfig &config() const { return config_; }

    /** Toggle the input skip (reports are identical either way). */
    void setInputSkip(bool on) { config_.inputSkip = on; }

    /** Declare the stream alphabet for the *next* restart(). */
    void setAlphabet(const Bitset256 &alphabet)
    {
        config_.alphabet = alphabet;
    }

    /**
     * Begin a new stream, reusing this session's allocations. Clears
     * reports and stats, resolves the stepping core for the stream
     * (materializing a pending auto-mode DFA nomination first, so a
     * session behaves exactly like Engine across runs), and rewinds the
     * global offset to 0.
     *
     * @param profiler optional hot-state recorder; profiling streams
     *        are pinned to the sparse core (its enable hooks feed the
     *        profiler), like Engine::run.
     */
    void restart(HotStateProfiler *profiler = nullptr);

    /**
     * Consume the next chunk of the stream. Reports are appended to
     * reports() with positions offset by the bytes already consumed.
     */
    void feed(std::span<const uint8_t> chunk);

    /** Global stream offset: total bytes consumed since restart(). */
    uint64_t offset() const { return offset_; }

    /** Reports accumulated since restart()/takeReports(). */
    const ReportList &reports() const { return reports_; }

    /**
     * Move the accumulated reports out (drains the internal list).
     * Positions keep their global offsets; callers streaming chunk by
     * chunk take after every feed and concatenate.
     */
    ReportList takeReports();

    /**
     * The core this stream actually executes on: the configured mode
     * with auto/bailout resolution applied — Sparse while the auto
     * probe is still sampling (that is what is running), Dense after a
     * handover or a DFA budget bailout, Dfa on the table.
     */
    EngineMode resolvedMode() const;

    const SessionStats &stats() const { return stats_; }

    /**
     * The session's dense core, or null when the stream never touched
     * it. Engine reads its per-run StepStats for telemetry.
     */
    const DenseCore *denseCore() const;

    /**
     * Portable between-chunk execution state (see suspend()). Does not
     * carry accumulated reports — drain them with takeReports() before
     * parking the stream.
     */
    struct Snapshot
    {
        SessionConfig config;
        /** Resolved execution phase (internal Phase value). */
        uint8_t phase = 0;
        uint64_t offset = 0;
        /** Accumulated auto-probe work (probe phase only). */
        uint64_t probeWork = 0;
        /** Ordered sparse-core state (sparse/probe phases). */
        ExecCore::Snapshot sparse;
        /** Dense live set, ascending ids (dense phase). */
        std::vector<GlobalStateId> dense;
        /** Current DFA state (dfa phase). */
        uint32_t dfaState = 0;
        /** DFA skip-gate position: still scanning? */
        bool dfaScanning = true;
        /** One-shot determinization attempt already made? */
        bool dfaChecked = false;
        /** Auto handover nominated determinization for next stream? */
        bool pendingDfaNomination = false;
        SessionStats stats;

        /**
         * Bytes this snapshot occupies while parked: the fixed record
         * plus the heap behind the sparse lists and the dense live set.
         * The match service charges exactly this against its resident
         * budget (also counted as session.snapshot_bytes on suspend).
         */
        uint64_t byteSize() const
        {
            return sizeof(*this) +
                   (sparse.dynamic.capacity() +
                    sparse.permanent.capacity() + dense.capacity()) *
                       sizeof(GlobalStateId);
        }
    };

    /** Capture the live state between feeds (counts session.suspends). */
    Snapshot suspend() const;

    /**
     * Rebuild the state captured by suspend() — on this session or any
     * session over an equivalent automaton — and continue feeding
     * byte-identically. Accumulated reports are cleared.
     */
    void resume(const Snapshot &snap);

    /** True iff the stream is executing on the DFA table. */
    bool dfaPhase() const { return phase_ == Phase::Dfa; }

    /**
     * Advance B same-phase DFA streams together, one symbol per stream
     * per rotation, so their B independent table-lookup chains overlap
     * in the memory pipeline instead of serializing (the fat-runtime
     * trick: a lone DFA stream is latency-bound on its own dependent
     * loads). Every session must be in the DFA phase on the same
     * automaton. Equivalent to sessions[k]->feed(chunks[k]) for every k
     * except that the input skip is not consulted (reports are
     * byte-identical; only skip counters differ).
     */
    static void feedFused(std::span<EngineSession *const> sessions,
                          std::span<const std::span<const uint8_t>> chunks);

  private:
    enum class Phase : uint8_t {
        Sparse, ///< sparse core, committed (pinned or probe declined)
        Probe,  ///< sparse core, auto probe still accumulating work
        Dense,  ///< dense core (pinned, handover, or DFA bailout)
        Dfa,    ///< hot-DFA table
    };

    void ensureDense();
    void decideHandover();
    size_t feedDense(std::span<const uint8_t> chunk, size_t i);
    size_t feedDfa(std::span<const uint8_t> chunk, size_t i);

    const FlatAutomaton &fa_;
    SessionConfig config_;
    Phase phase_ = Phase::Sparse;
    uint64_t offset_ = 0;
    ReportList reports_;
    SessionStats stats_;

    std::unique_ptr<ExecCore> core_;
    std::unique_ptr<DenseCore> dense_; ///< created on first dense use
    std::shared_ptr<const HotDfa> dfa_; ///< set once selected
    bool dfa_checked_ = false; ///< one determinization attempt
    bool pending_dfa_nomination_ = false; ///< handover → next restart

    uint64_t probe_work_ = 0; ///< accumulated sparse probe work
    uint32_t dfa_state_ = 0;  ///< persistent DFA state across chunks
    bool dfa_scanning_ = true; ///< DFA skip gate not yet given up
    /** Skip totals carried over a resume (dense StepStats restart at
     *  zero when the core is re-seeded). */
    uint64_t skip_base_symbols_ = 0;
    uint64_t skip_base_jumps_ = 0;

    /** Largest report count seen: restart() reserves it up front. */
    size_t report_capacity_ = 0;
};

} // namespace sparseap

#endif // SPARSEAP_SIM_SESSION_H
