#include "sim/stream_batch.h"

#include <algorithm>
#include <memory>

#include "common/logging.h"
#include "common/options.h"
#include "common/thread_pool.h"
#include "telemetry/metrics.h"

namespace sparseap {

StreamBatchRunner::StreamBatchRunner(const FlatAutomaton &fa)
    : StreamBatchRunner(fa, SessionConfig{})
{
}

StreamBatchRunner::StreamBatchRunner(const FlatAutomaton &fa,
                                     SessionConfig config)
    : fa_(fa), config_(config)
{
}

void
StreamBatchRunner::setQuantum(size_t symbols)
{
    quantum_ = std::max<size_t>(1, symbols);
}

std::vector<StreamResult>
StreamBatchRunner::run(
    std::span<const std::span<const uint8_t>> inputs) const
{
    return run(inputs, globalOptions().jobs);
}

std::vector<StreamResult>
StreamBatchRunner::run(std::span<const std::span<const uint8_t>> inputs,
                       unsigned jobs) const
{
    static telemetry::Counter batch_runs("batch.runs");
    static telemetry::Counter batch_streams("batch.streams");
    static telemetry::Gauge lane_occupancy("batch.lane_occupancy");

    const size_t b = inputs.size();
    std::vector<StreamResult> results(b);
    if (b == 0)
        return results;

    const size_t lanes =
        std::min<size_t>(std::max<unsigned>(jobs, 1u), b);
    batch_runs.add(1);
    batch_streams.add(b);
    // Streams sharing the busiest lane — the amortization factor the
    // cache-blocked rotation actually achieves.
    lane_occupancy.set(static_cast<int64_t>((b + lanes - 1) / lanes));

    parallelFor(lanes, lanes, [&](size_t lane) {
        runLane(lane, lanes, inputs, &results);
    });
    return results;
}

void
StreamBatchRunner::runLane(
    size_t lane, size_t lanes,
    std::span<const std::span<const uint8_t>> inputs,
    std::vector<StreamResult> *results) const
{
    // Deterministic lane membership: stream i -> lane i mod lanes.
    std::vector<size_t> streams;
    for (size_t i = lane; i < inputs.size(); i += lanes)
        streams.push_back(i);
    if (streams.empty())
        return;

    const size_t m = streams.size();
    std::vector<std::unique_ptr<EngineSession>> sessions;
    sessions.reserve(m);
    for (size_t k = 0; k < m; ++k) {
        sessions.push_back(
            std::make_unique<EngineSession>(fa_, config_));
        sessions.back()->restart();
    }

    // One automaton + one config resolve every session of the batch to
    // the same initial phase, so the lane is homogeneous: either all
    // streams run the DFA table (fused symbol interleave) or none do
    // (quantum rotation). A fresh auto session never starts on the DFA
    // (the nomination is a cross-stream decision), so mid-stream phase
    // changes — auto handovers — happen per stream on the NFA side and
    // never enter the fused path.
    const bool fused = sessions[0]->dfaPhase();

    std::vector<size_t> cursor(m, 0);
    std::vector<EngineSession *> round_sessions;
    std::vector<std::span<const uint8_t>> round_chunks;
    std::vector<size_t> round_members;

    // Empty streams are finished before the first rotation (guard for
    // the degenerate all-empty batch: the loop below must not spin on
    // a round that consumes nothing). Their result slots still come
    // from a restarted session, so stats are zeroed, not stale.
    size_t live = m;
    for (size_t k = 0; k < m; ++k) {
        if (inputs[streams[k]].empty()) {
            cursor[k] = 1; // sentinel: counted done
            --live;
        }
    }
    while (live > 0) {
        if (fused) {
            // Collect this rotation's quantum for every unfinished
            // stream and step them together, one symbol per stream.
            round_sessions.clear();
            round_chunks.clear();
            round_members.clear();
            for (size_t k = 0; k < m; ++k) {
                const std::span<const uint8_t> in = inputs[streams[k]];
                if (cursor[k] >= in.size())
                    continue;
                const size_t take =
                    std::min(quantum_, in.size() - cursor[k]);
                round_sessions.push_back(sessions[k].get());
                round_chunks.push_back(in.subspan(cursor[k], take));
                round_members.push_back(k);
            }
            EngineSession::feedFused(
                std::span<EngineSession *const>(round_sessions),
                std::span<const std::span<const uint8_t>>(round_chunks));
            for (size_t j = 0; j < round_members.size(); ++j) {
                const size_t k = round_members[j];
                cursor[k] += round_chunks[j].size();
                if (cursor[k] >= inputs[streams[k]].size())
                    --live;
            }
        } else {
            for (size_t k = 0; k < m; ++k) {
                const std::span<const uint8_t> in = inputs[streams[k]];
                if (cursor[k] >= in.size())
                    continue;
                const size_t take =
                    std::min(quantum_, in.size() - cursor[k]);
                sessions[k]->feed(in.subspan(cursor[k], take));
                cursor[k] += take;
                if (cursor[k] >= in.size())
                    --live;
            }
        }
    }

    for (size_t k = 0; k < m; ++k) {
        StreamResult &slot = (*results)[streams[k]];
        slot.reports = sessions[k]->takeReports();
        slot.resolvedMode = sessions[k]->resolvedMode();
        slot.stats = sessions[k]->stats();
    }
}

} // namespace sparseap
