/**
 * @file
 * Lane-parallel multi-stream batch execution over one shared automaton.
 *
 * A multi-tenant match service runs B independent input streams against
 * one rule set. Executing them one after another re-streams the
 * automaton's tables (symbol-class accept rows, DFA transition table)
 * through the cache B times and — on the DFA path — leaves exactly one
 * dependent table lookup in flight per cycle. The batch runner instead:
 *
 *  - assigns stream i to lane i mod L (L = min(jobs, B)) and runs the
 *    lanes over the PR 1/2 thread pool;
 *  - inside a lane, advances every stream a *quantum* of T symbols
 *    before rotating to the next (cache blocking: the table lines a
 *    stream pulls in are reused by its lane-mates while still
 *    resident, amortizing the load cost over the lane instead of
 *    paying it per stream);
 *  - when the streams execute on the DFA table, interleaves them one
 *    symbol per stream per rotation (EngineSession::feedFused): B
 *    independent table-lookup dependency chains overlap in the memory
 *    pipeline, where a lone stream is latency-bound on its own
 *    dependent loads. This is the single-core speedup source measured
 *    by bench/multi_stream.
 *
 * Determinism: results land in per-stream slots, every stream's chunk
 * grid is the fixed quantum (independent of the lane count), and the
 * DFA path never consults the input skip — so the full result set,
 * reports and stats, is byte-identical at any SPARSEAP_JOBS.
 */

#ifndef SPARSEAP_SIM_STREAM_BATCH_H
#define SPARSEAP_SIM_STREAM_BATCH_H

#include <cstdint>
#include <span>
#include <vector>

#include "sim/flat_automaton.h"
#include "sim/session.h"

namespace sparseap {

/** Outcome of one stream of a batch run. */
struct StreamResult
{
    /** The stream's reports, positions = global stream offsets. */
    ReportList reports;
    /** The core the stream executed on (EngineSession resolution). */
    EngineMode resolvedMode = EngineMode::Sparse;
    /** The stream's session accounting. */
    SessionStats stats;
};

/** Executes batches of independent streams over one FlatAutomaton. */
class StreamBatchRunner
{
  public:
    /** Session configuration from globalOptions(). */
    explicit StreamBatchRunner(const FlatAutomaton &fa);

    StreamBatchRunner(const FlatAutomaton &fa, SessionConfig config);

    /** Round-robin quantum: symbols per stream per rotation. */
    static constexpr size_t kDefaultQuantum = 4096;

    /** Override the rotation quantum (clamped to >= 1). */
    void setQuantum(size_t symbols);

    size_t quantum() const { return quantum_; }

    /**
     * Run every stream of @p inputs to completion with
     * globalOptions().jobs lanes. results[i] belongs to inputs[i].
     */
    std::vector<StreamResult>
    run(std::span<const std::span<const uint8_t>> inputs) const;

    /** Run with an explicit lane budget (0 = 1; clamped to B). */
    std::vector<StreamResult>
    run(std::span<const std::span<const uint8_t>> inputs,
        unsigned jobs) const;

  private:
    void runLane(size_t lane, size_t lanes,
                 std::span<const std::span<const uint8_t>> inputs,
                 std::vector<StreamResult> *results) const;

    const FlatAutomaton &fa_;
    SessionConfig config_;
    size_t quantum_ = kDefaultQuantum;
};

} // namespace sparseap

#endif // SPARSEAP_SIM_STREAM_BATCH_H
