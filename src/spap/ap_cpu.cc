#include "spap/ap_cpu.h"

#include <algorithm>
#include <chrono>

#include "common/logging.h"

namespace sparseap {

ApCpuStats
runApCpu(const AppTopology &topo, const ExecutionOptions &opts,
         const PreparedPartition &prep, bool collect_reports)
{
    const Application &app = topo.app();
    const PartitionedApp &part = prep.part;
    const std::span<const uint8_t> test = prep.testInput;

    ApCpuStats stats;
    stats.baselineBatches =
        packWholeNfas(app, opts.ap.capacity).batchCount();
    stats.baselineSeconds = opts.ap.cyclesToSeconds(
        static_cast<double>(stats.baselineBatches) *
        static_cast<double>(test.size()));

    stats.baseApBatches =
        packWholeNfas(part.hot, opts.ap.capacity).batchCount();
    stats.baseApSeconds = opts.ap.cyclesToSeconds(
        static_cast<double>(stats.baseApBatches) *
        static_cast<double>(test.size()));

    // BaseAP mode (functional): collect events and final reports.
    const SimResult &hot_run = prep.hotRunResult();

    ReportList final_reports;
    std::vector<SpapEvent> events;
    for (const Report &r : hot_run.reports) {
        const GlobalStateId target = part.intermediateTarget[r.state];
        if (target != kInvalidGlobal) {
            GlobalStateId cold_id = part.originalToCold[target];
            SPARSEAP_ASSERT(cold_id != kInvalidGlobal,
                            "event targets a non-cold state");
            events.push_back({r.position, cold_id});
        } else if (collect_reports) {
            final_reports.push_back(
                {r.position, part.hotToOriginal[r.state]});
        }
    }
    stats.intermediateReports = events.size();

    // CPU handling of the cold set, measured in real time. The CPU holds
    // the whole cold set at once (no batching) and may skip idle spans —
    // software is free to do both.
    if (!events.empty() && part.cold.nfaCount() > 0) {
        const FlatAutomaton &cold_fa = prep.coldAutomaton();
        const auto t0 = std::chrono::steady_clock::now();
        const SpapResult r = runSpapMode(cold_fa, test, events);
        const auto t1 = std::chrono::steady_clock::now();
        stats.cpuSeconds =
            std::chrono::duration<double>(t1 - t0).count();
        if (collect_reports) {
            for (const Report &rep : r.reports) {
                final_reports.push_back(
                    {rep.position, part.coldToOriginal[rep.state]});
            }
        }
    }

    const double ours = stats.baseApSeconds + stats.cpuSeconds;
    stats.speedup = ours == 0.0 ? 1.0 : stats.baselineSeconds / ours;

    if (collect_reports) {
        std::sort(final_reports.begin(), final_reports.end());
        stats.reports = std::move(final_reports);
    }
    return stats;
}

ApCpuStats
runApCpu(const AppTopology &topo, const ExecutionOptions &opts,
         std::span<const uint8_t> full_input, bool collect_reports)
{
    const PreparedPartition prep =
        preparePartition(topo, opts, full_input);
    return runApCpu(topo, opts, prep, collect_reports);
}

} // namespace sparseap
