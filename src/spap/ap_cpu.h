/**
 * @file
 * AP-CPU execution: the predicted hot set runs in BaseAP mode, and the
 * mis-predicted (cold) work is handled on the host CPU with the
 * functional engine, timed with std::chrono — the paper's no-hardware-
 * change alternative to SpAP mode (Table III).
 */

#ifndef SPARSEAP_SPAP_AP_CPU_H
#define SPARSEAP_SPAP_AP_CPU_H

#include "spap/executor.h"

namespace sparseap {

/**
 * Run the AP-CPU pipeline.
 *
 * AP time is modelled (batches x input x 7.5 ns); the cold-set handling
 * is *measured* wall-clock time of the event-driven software simulation,
 * exactly the paper's methodology. Results therefore vary with the host
 * machine; the shape (CPU handling dwarfing AP cycles when many events
 * fire) is what matters.
 */
ApCpuStats runApCpu(const AppTopology &topo, const ExecutionOptions &opts,
                    const PreparedPartition &prep,
                    bool collect_reports = false);

/** Convenience overload building the partition internally. */
ApCpuStats runApCpu(const AppTopology &topo, const ExecutionOptions &opts,
                    std::span<const uint8_t> full_input,
                    bool collect_reports = false);

} // namespace sparseap

#endif // SPARSEAP_SPAP_AP_CPU_H
