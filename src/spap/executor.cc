#include "spap/executor.h"

#include <algorithm>

#include "common/logging.h"
#include "common/thread_pool.h"
#include "telemetry/metrics.h"
#include "telemetry/trace.h"

namespace sparseap {

namespace {

/** Fold one finished BaseAP/SpAP execution into the spap.* counters —
 *  per-execution sums of the already-merged batch outcomes, so the
 *  totals are identical at any thread count. */
void
recordSpapRun(const SpapRunStats &stats)
{
    static telemetry::Counter runs("spap.runs");
    static telemetry::Counter batches("spap.batches");
    static telemetry::Counter jumps("spap.jumps");
    static telemetry::Counter enables("spap.enables");
    static telemetry::Counter estalls("spap.estalls");
    static telemetry::Counter skipped("spap.skipped_symbols");
    static telemetry::Counter consumed("spap.consumed_cycles");
    static telemetry::Counter intermediate("spap.intermediate_reports");

    runs.add(1);
    batches.add(stats.spApBatches);
    jumps.add(stats.jumps);
    enables.add(stats.enables);
    estalls.add(stats.enableStalls);
    skipped.add(stats.skippedSymbols);
    consumed.add(stats.spApConsumedCycles);
    intermediate.add(stats.intermediateReports);
}

} // namespace

unsigned
ExecutionOptions::resolvedJobs() const
{
    const unsigned j = jobs == 0 ? globalOptions().jobs : jobs;
    return j == 0 ? 1 : j;
}

const FlatAutomaton &
PreparedPartition::hotAutomaton() const
{
    if (!hotFa)
        hotFa = std::make_shared<const FlatAutomaton>(part.hot);
    return *hotFa;
}

const FlatAutomaton &
PreparedPartition::coldAutomaton() const
{
    if (!coldFa)
        coldFa = std::make_shared<const FlatAutomaton>(part.cold);
    return *coldFa;
}

const SimResult &
PreparedPartition::hotRunResult() const
{
    if (!hotRun) {
        SPARSEAP_PHASE("hot_run");
        Engine engine(hotAutomaton());
        hotRun =
            std::make_shared<const SimResult>(engine.run(testInput));
    }
    return *hotRun;
}

BaselineResult
runBaseline(const Application &app, const ApConfig &config,
            std::span<const uint8_t> test_input, bool collect_reports,
            const FlatAutomaton *app_fa)
{
    BaselineResult r;
    r.batches = packWholeNfas(app, config.capacity).batchCount();
    r.cycles = static_cast<uint64_t>(r.batches) * test_input.size();
    if (collect_reports) {
        std::unique_ptr<FlatAutomaton> local;
        if (!app_fa) {
            local = std::make_unique<FlatAutomaton>(app);
            app_fa = local.get();
        }
        Engine engine(*app_fa);
        r.reports = engine.run(test_input).reports;
    }
    return r;
}

size_t
profilePrefixLength(const ExecutionOptions &opts, size_t input_size)
{
    SPARSEAP_ASSERT(opts.profileFraction > 0.0 &&
                        opts.profileFraction < 1.0,
                    "profileFraction must be in (0, 1), got ",
                    opts.profileFraction);
    const double reference =
        opts.profileReferenceBytes > 0
            ? static_cast<double>(opts.profileReferenceBytes)
            : static_cast<double>(input_size);
    size_t profile_len =
        static_cast<size_t>(reference * opts.profileFraction);
    profile_len = std::min(profile_len, input_size / 2);
    return std::max<size_t>(profile_len, 1);
}

PreparedPartition
preparePartition(const AppTopology &topo, const ExecutionOptions &opts,
                 std::span<const uint8_t> full_input)
{
    const size_t profile_len =
        profilePrefixLength(opts, full_input.size());
    const FlatAutomaton fa(topo.app());
    const HotColdProfile profile =
        profileApplication(fa, full_input.subspan(0, profile_len));
    return preparePartition(topo, opts, full_input, profile);
}

PreparedPartition
preparePartition(const AppTopology &topo, const ExecutionOptions &opts,
                 std::span<const uint8_t> full_input,
                 const HotColdProfile &profile)
{
    PreparedPartition prep;
    const size_t profile_len =
        profilePrefixLength(opts, full_input.size());
    prep.profileInput = full_input.subspan(0, profile_len);
    prep.testInput = opts.fullInputAsTest
                         ? full_input
                         : full_input.subspan(profile_len);

    prep.layers = chooseLayers(topo, profile);
    if (opts.fillOptimization) {
        SPARSEAP_PHASE("fill");
        prep.layers = fillToCapacity(topo, std::move(prep.layers),
                                     opts.ap.capacity, opts.partition);
    }
    {
        SPARSEAP_PHASE("partition");
        prep.part =
            partitionApplication(topo, prep.layers, opts.partition);
    }
    return prep;
}

namespace {

/**
 * Pack cold NFAs into SpAP batches at whole-NFA granularity. A cold
 * fragment larger than the capacity gets one over-full batch (splitting a
 * fragment would need another partitioning level), with a warning.
 */
std::vector<std::vector<uint32_t>>
packColdBatches(const Application &cold, size_t capacity,
                bool warn_overfull = true)
{
    std::vector<std::vector<uint32_t>> batches;
    std::vector<uint32_t> current;
    size_t used = 0;
    for (uint32_t i = 0; i < cold.nfaCount(); ++i) {
        const size_t sz = cold.nfa(i).size();
        if (sz > capacity && warn_overfull) {
            warn("cold fragment '", cold.nfa(i).name(), "' (", sz,
                 " states) exceeds the AP capacity (", capacity,
                 "); modelling it as one over-full SpAP batch");
        }
        if (used + sz > capacity && !current.empty()) {
            batches.push_back(std::move(current));
            current.clear();
            used = 0;
        }
        current.push_back(i);
        used += sz;
    }
    if (!current.empty())
        batches.push_back(std::move(current));
    return batches;
}

/**
 * Fetch (or build) the prep's cold execution plan for @p capacity:
 * batch composition plus the cold-NFA -> (batch, local-id base) index
 * that lets the event dispatch bucket events in one pass instead of
 * rescanning the full event list per batch.
 */
PreparedPartition::ColdPlan &
coldPlanFor(const PreparedPartition &prep, size_t capacity)
{
    if (prep.coldPlan && prep.coldPlan->capacity == capacity)
        return *prep.coldPlan;

    auto plan = std::make_shared<PreparedPartition::ColdPlan>();
    plan->capacity = capacity;
    plan->batches = packColdBatches(prep.part.cold, capacity);
    plan->nfaBatch.resize(prep.part.cold.nfaCount());
    plan->nfaLocalBase.resize(prep.part.cold.nfaCount());
    for (size_t bi = 0; bi < plan->batches.size(); ++bi) {
        GlobalStateId base = 0;
        for (uint32_t ci : plan->batches[bi]) {
            plan->nfaBatch[ci] = static_cast<uint32_t>(bi);
            plan->nfaLocalBase[ci] = base;
            base += static_cast<GlobalStateId>(
                prep.part.cold.nfa(ci).size());
        }
    }
    plan->batchApps.resize(plan->batches.size());
    plan->batchFas.resize(plan->batches.size());
    prep.coldPlan = std::move(plan);
    return *prep.coldPlan;
}

/** Build batch @p bi's fragment application and flat automaton once. */
const FlatAutomaton &
batchAutomaton(PreparedPartition::ColdPlan &plan, const Application &cold,
               size_t bi)
{
    if (!plan.batchFas[bi]) {
        auto app = std::make_unique<Application>();
        for (uint32_t ci : plan.batches[bi])
            app->addNfa(cold.nfa(ci));
        plan.batchFas[bi] = std::make_unique<FlatAutomaton>(*app);
        plan.batchApps[bi] = std::move(app);
    }
    return *plan.batchFas[bi];
}

} // namespace

std::vector<uint32_t>
coldBatchAssignment(const Application &cold, size_t capacity)
{
    const auto batches =
        packColdBatches(cold, capacity, /*warn_overfull=*/false);
    std::vector<uint32_t> assignment(cold.nfaCount());
    for (size_t bi = 0; bi < batches.size(); ++bi)
        for (uint32_t ci : batches[bi])
            assignment[ci] = static_cast<uint32_t>(bi);
    return assignment;
}

SpapRunStats
runBaseApSpap(const AppTopology &topo, const ExecutionOptions &opts,
              const PreparedPartition &prep, bool collect_reports)
{
    const Application &app = topo.app();
    const PartitionedApp &part = prep.part;
    const std::span<const uint8_t> test = prep.testInput;

    SpapRunStats stats;
    stats.testLength = test.size();
    stats.totalStates = app.totalStates();
    stats.baseApStates = part.hot.totalStates();
    stats.intermediateStates = part.intermediateCount;
    stats.hotOriginalReporting = part.hotOriginalReporting;
    stats.resourceSavings = part.resourceSavings(app.totalStates());

    // Baseline batch count (cycle model only; reports aren't needed here).
    stats.baselineBatches =
        packWholeNfas(app, opts.ap.capacity).batchCount();
    stats.baselineCycles =
        static_cast<uint64_t>(stats.baselineBatches) * test.size();

    // ----- BaseAP mode: execute the predicted hot set. -----
    stats.baseApBatches =
        packWholeNfas(part.hot, opts.ap.capacity).batchCount();
    stats.baseApCycles =
        static_cast<uint64_t>(stats.baseApBatches) * test.size();

    const SimResult &hot_run = prep.hotRunResult();

    // Split BaseAP reports into final reports and intermediate events.
    ReportList final_reports;
    std::vector<SpapEvent> events; // targets as original global ids
    events.reserve(hot_run.reports.size());
    if (collect_reports)
        final_reports.reserve(hot_run.reports.size());
    for (const Report &r : hot_run.reports) {
        const GlobalStateId target = part.intermediateTarget[r.state];
        if (target != kInvalidGlobal) {
            events.push_back({r.position, target});
        } else if (collect_reports) {
            final_reports.push_back(
                {r.position, part.hotToOriginal[r.state]});
        }
    }
    stats.intermediateReports = events.size();

    // ----- SpAP mode: execute the predicted cold set. -----
    if (part.cold.nfaCount() > 0) {
        PreparedPartition::ColdPlan &plan =
            coldPlanFor(prep, opts.ap.capacity);
        stats.spApConfiguredBatches = plan.batches.size();

        // One bucketing pass groups the events by target batch, already
        // translated to batch-local ids. The single position-ordered scan
        // keeps every bucket sorted by position (runSpapMode's
        // precondition), and a batch with no events never starts (its
        // SpAP run would jump straight past the end).
        std::vector<std::vector<SpapEvent>> batch_events(
            plan.batches.size());
        for (const SpapEvent &e : events) {
            const GlobalStateId cold_id = part.originalToCold[e.state];
            SPARSEAP_ASSERT(cold_id != kInvalidGlobal,
                            "intermediate event targets a non-cold state");
            const uint32_t ci = part.cold.resolve(cold_id).nfa;
            const GlobalStateId local =
                plan.nfaLocalBase[ci] +
                (cold_id - part.cold.nfaOffset(ci));
            batch_events[plan.nfaBatch[ci]].push_back({e.position, local});
        }

        std::vector<size_t> active_batches;
        for (size_t bi = 0; bi < plan.batches.size(); ++bi) {
            if (!batch_events[bi].empty())
                active_batches.push_back(bi);
        }
        stats.spApBatches = active_batches.size();

        // Cold batches execute with the process-wide core selection:
        // Auto lets a batch that runs hot hand itself over to the
        // class-compressed, live-word-skipping dense core mid-run, with
        // identical cycle statistics and report multiset on every core.
        const EngineMode cold_mode = globalOptions().engineMode;

        // Batches are independent — each replays the whole input against
        // its own cold fragment — so they fan out over the thread pool.
        // Per-batch results land in per-index slots and are merged below
        // in batch order, keeping all output (reports, summed cycle
        // stats) bit-identical at any thread count.
        struct BatchOutcome
        {
            uint64_t totalCycles = 0;
            uint64_t consumedCycles = 0;
            uint64_t enableStalls = 0;
            uint64_t jumps = 0;
            uint64_t enables = 0;
            uint64_t skippedSymbols = 0;
            ReportList reports; ///< translated to original global ids
        };
        std::vector<BatchOutcome> outcomes(active_batches.size());

        parallelFor(opts.resolvedJobs(), active_batches.size(),
                    [&](size_t k) {
            const size_t bi = active_batches[k];
            SPARSEAP_SPAN("spap.batch", "batch",
                          static_cast<uint64_t>(bi), "events",
                          static_cast<uint64_t>(batch_events[bi].size()));
            const FlatAutomaton &batch_fa =
                batchAutomaton(plan, part.cold, bi);
            const SpapResult r =
                runSpapMode(batch_fa, test, batch_events[bi], cold_mode);
            BatchOutcome &out = outcomes[k];
            out.totalCycles = r.totalCycles();
            out.consumedCycles = r.consumedCycles;
            out.enableStalls = r.enableStalls;
            out.jumps = r.jumps;
            out.enables = r.enables;
            out.skippedSymbols = r.skippedSymbols;
            if (collect_reports) {
                out.reports.reserve(r.reports.size());
                const Application &batch_app = *plan.batchApps[bi];
                for (const Report &rep : r.reports) {
                    // batch-local id -> cold gid -> original gid.
                    const GlobalStateRef ref = batch_app.resolve(rep.state);
                    const GlobalStateId cold_id =
                        part.cold.nfaOffset(plan.batches[bi][ref.nfa]) +
                        ref.state;
                    out.reports.push_back(
                        {rep.position, part.coldToOriginal[cold_id]});
                }
            }
        });

        for (const BatchOutcome &out : outcomes) {
            stats.spApCycles += out.totalCycles;
            stats.spApConsumedCycles += out.consumedCycles;
            stats.enableStalls += out.enableStalls;
            stats.jumps += out.jumps;
            stats.enables += out.enables;
            stats.skippedSymbols += out.skippedSymbols;
            final_reports.insert(final_reports.end(),
                                 out.reports.begin(), out.reports.end());
        }

        if (stats.spApBatches > 0 && test.size() > 0) {
            const double denom =
                static_cast<double>(stats.spApBatches) *
                static_cast<double>(test.size());
            stats.jumpRatio =
                1.0 -
                static_cast<double>(stats.spApConsumedCycles) / denom;
        }
    }

    const uint64_t ours = stats.baseApCycles + stats.spApCycles;
    stats.speedup = ours == 0 ? 1.0
                              : static_cast<double>(stats.baselineCycles) /
                                    static_cast<double>(ours);

    if (collect_reports) {
        std::sort(final_reports.begin(), final_reports.end());
        stats.reports = std::move(final_reports);
    }
    recordSpapRun(stats);
    return stats;
}

SpapRunStats
runBaseApSpap(const AppTopology &topo, const ExecutionOptions &opts,
              std::span<const uint8_t> full_input, bool collect_reports)
{
    const PreparedPartition prep =
        preparePartition(topo, opts, full_input);
    return runBaseApSpap(topo, opts, prep, collect_reports);
}

} // namespace sparseap
