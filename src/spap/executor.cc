#include "spap/executor.h"

#include <algorithm>

#include "common/logging.h"
#include "common/thread_pool.h"

namespace sparseap {

unsigned
ExecutionOptions::resolvedJobs() const
{
    const unsigned j = jobs == 0 ? globalOptions().jobs : jobs;
    return j == 0 ? 1 : j;
}

BaselineResult
runBaseline(const Application &app, const ApConfig &config,
            std::span<const uint8_t> test_input, bool collect_reports)
{
    BaselineResult r;
    r.batches = packWholeNfas(app, config.capacity).batchCount();
    r.cycles = static_cast<uint64_t>(r.batches) * test_input.size();
    if (collect_reports) {
        FlatAutomaton fa(app);
        Engine engine(fa);
        r.reports = engine.run(test_input).reports;
    }
    return r;
}

PreparedPartition
preparePartition(const AppTopology &topo, const ExecutionOptions &opts,
                 std::span<const uint8_t> full_input)
{
    SPARSEAP_ASSERT(opts.profileFraction > 0.0 &&
                        opts.profileFraction < 1.0,
                    "profileFraction must be in (0, 1), got ",
                    opts.profileFraction);
    PreparedPartition prep;

    const double reference =
        opts.profileReferenceBytes > 0
            ? static_cast<double>(opts.profileReferenceBytes)
            : static_cast<double>(full_input.size());
    size_t profile_len =
        static_cast<size_t>(reference * opts.profileFraction);
    profile_len = std::min(profile_len, full_input.size() / 2);
    profile_len = std::max<size_t>(profile_len, 1);
    prep.profileInput = full_input.subspan(0, profile_len);
    prep.testInput = opts.fullInputAsTest ? full_input
                                          : full_input.subspan(profile_len);

    const FlatAutomaton fa(topo.app());
    const HotColdProfile profile =
        profileApplication(fa, prep.profileInput);

    prep.layers = chooseLayers(topo, profile);
    if (opts.fillOptimization) {
        prep.layers = fillToCapacity(topo, std::move(prep.layers),
                                     opts.ap.capacity, opts.partition);
    }
    prep.part = partitionApplication(topo, prep.layers, opts.partition);
    return prep;
}

namespace {

/**
 * Pack cold NFAs into SpAP batches at whole-NFA granularity. A cold
 * fragment larger than the capacity gets one over-full batch (splitting a
 * fragment would need another partitioning level), with a warning.
 */
std::vector<std::vector<uint32_t>>
packColdBatches(const Application &cold, size_t capacity)
{
    std::vector<std::vector<uint32_t>> batches;
    std::vector<uint32_t> current;
    size_t used = 0;
    for (uint32_t i = 0; i < cold.nfaCount(); ++i) {
        const size_t sz = cold.nfa(i).size();
        if (sz > capacity) {
            warn("cold fragment '", cold.nfa(i).name(), "' (", sz,
                 " states) exceeds the AP capacity (", capacity,
                 "); modelling it as one over-full SpAP batch");
        }
        if (used + sz > capacity && !current.empty()) {
            batches.push_back(std::move(current));
            current.clear();
            used = 0;
        }
        current.push_back(i);
        used += sz;
    }
    if (!current.empty())
        batches.push_back(std::move(current));
    return batches;
}

} // namespace

SpapRunStats
runBaseApSpap(const AppTopology &topo, const ExecutionOptions &opts,
              const PreparedPartition &prep, bool collect_reports)
{
    const Application &app = topo.app();
    const PartitionedApp &part = prep.part;
    const std::span<const uint8_t> test = prep.testInput;

    SpapRunStats stats;
    stats.testLength = test.size();
    stats.totalStates = app.totalStates();
    stats.baseApStates = part.hot.totalStates();
    stats.intermediateStates = part.intermediateCount;
    stats.hotOriginalReporting = part.hotOriginalReporting;
    stats.resourceSavings = part.resourceSavings(app.totalStates());

    // Baseline batch count (cycle model only; reports aren't needed here).
    stats.baselineBatches =
        packWholeNfas(app, opts.ap.capacity).batchCount();
    stats.baselineCycles =
        static_cast<uint64_t>(stats.baselineBatches) * test.size();

    // ----- BaseAP mode: execute the predicted hot set. -----
    stats.baseApBatches =
        packWholeNfas(part.hot, opts.ap.capacity).batchCount();
    stats.baseApCycles =
        static_cast<uint64_t>(stats.baseApBatches) * test.size();

    const FlatAutomaton hot_fa(part.hot);
    Engine hot_engine(hot_fa);
    const SimResult hot_run = hot_engine.run(test);

    // Split BaseAP reports into final reports and intermediate events.
    ReportList final_reports;
    std::vector<SpapEvent> events; // targets as original global ids
    for (const Report &r : hot_run.reports) {
        const GlobalStateId target = part.intermediateTarget[r.state];
        if (target != kInvalidGlobal) {
            events.push_back({r.position, target});
        } else if (collect_reports) {
            final_reports.push_back(
                {r.position, part.hotToOriginal[r.state]});
        }
    }
    stats.intermediateReports = events.size();

    // ----- SpAP mode: execute the predicted cold set. -----
    if (part.cold.nfaCount() > 0) {
        const auto batches = packColdBatches(part.cold, opts.ap.capacity);
        stats.spApConfiguredBatches = batches.size();

        // Cold NFAs that actually receive events; a batch with none
        // never starts (its SpAP run would jump straight past the end).
        std::vector<bool> nfa_has_event(part.cold.nfaCount(), false);
        for (const SpapEvent &e : events) {
            const GlobalStateId cold_id = part.originalToCold[e.state];
            SPARSEAP_ASSERT(cold_id != kInvalidGlobal,
                            "intermediate event targets a non-cold state");
            nfa_has_event[part.cold.resolve(cold_id).nfa] = true;
        }

        std::vector<size_t> active_batches;
        for (size_t bi = 0; bi < batches.size(); ++bi) {
            bool active = false;
            for (uint32_t ci : batches[bi])
                active = active || nfa_has_event[ci];
            if (active)
                active_batches.push_back(bi);
        }
        stats.spApBatches = active_batches.size();

        // Batches are independent — each replays the whole input against
        // its own cold fragment — so they fan out over the thread pool.
        // Per-batch results land in per-index slots and are merged below
        // in batch order, keeping all output (reports, summed cycle
        // stats) bit-identical at any thread count.
        struct BatchOutcome
        {
            uint64_t totalCycles = 0;
            uint64_t consumedCycles = 0;
            uint64_t enableStalls = 0;
            ReportList reports; ///< translated to original global ids
        };
        std::vector<BatchOutcome> outcomes(active_batches.size());

        parallelFor(opts.resolvedJobs(), active_batches.size(),
                    [&](size_t k) {
            const std::vector<uint32_t> &batch =
                batches[active_batches[k]];
            // Build the batch application and its id maps.
            Application batch_app;
            std::vector<GlobalStateId> batch_to_cold;
            std::vector<GlobalStateId> cold_to_batch(
                part.cold.totalStates(), kInvalidGlobal);
            for (uint32_t ci : batch) {
                const GlobalStateId cold_base = part.cold.nfaOffset(ci);
                const size_t sz = part.cold.nfa(ci).size();
                const GlobalStateId batch_base =
                    static_cast<GlobalStateId>(batch_to_cold.size());
                batch_app.addNfa(part.cold.nfa(ci));
                for (size_t s = 0; s < sz; ++s) {
                    batch_to_cold.push_back(
                        cold_base + static_cast<GlobalStateId>(s));
                    cold_to_batch[cold_base + s] =
                        batch_base + static_cast<GlobalStateId>(s);
                }
            }

            // Events whose target lives in this batch, in batch-local ids.
            std::vector<SpapEvent> batch_events;
            for (const SpapEvent &e : events) {
                const GlobalStateId cold_id = part.originalToCold[e.state];
                SPARSEAP_ASSERT(cold_id != kInvalidGlobal,
                                "intermediate event targets a non-cold "
                                "state");
                const GlobalStateId local = cold_to_batch[cold_id];
                if (local != kInvalidGlobal)
                    batch_events.push_back({e.position, local});
            }

            const FlatAutomaton batch_fa(batch_app);
            const SpapResult r = runSpapMode(batch_fa, test, batch_events);
            BatchOutcome &out = outcomes[k];
            out.totalCycles = r.totalCycles();
            out.consumedCycles = r.consumedCycles;
            out.enableStalls = r.enableStalls;
            if (collect_reports) {
                out.reports.reserve(r.reports.size());
                for (const Report &rep : r.reports) {
                    out.reports.push_back(
                        {rep.position,
                         part.coldToOriginal[batch_to_cold[rep.state]]});
                }
            }
        });

        for (const BatchOutcome &out : outcomes) {
            stats.spApCycles += out.totalCycles;
            stats.spApConsumedCycles += out.consumedCycles;
            stats.enableStalls += out.enableStalls;
            final_reports.insert(final_reports.end(),
                                 out.reports.begin(), out.reports.end());
        }

        if (stats.spApBatches > 0 && test.size() > 0) {
            const double denom =
                static_cast<double>(stats.spApBatches) *
                static_cast<double>(test.size());
            stats.jumpRatio =
                1.0 -
                static_cast<double>(stats.spApConsumedCycles) / denom;
        }
    }

    const uint64_t ours = stats.baseApCycles + stats.spApCycles;
    stats.speedup = ours == 0 ? 1.0
                              : static_cast<double>(stats.baselineCycles) /
                                    static_cast<double>(ours);

    if (collect_reports) {
        std::sort(final_reports.begin(), final_reports.end());
        stats.reports = std::move(final_reports);
    }
    return stats;
}

SpapRunStats
runBaseApSpap(const AppTopology &topo, const ExecutionOptions &opts,
              std::span<const uint8_t> full_input, bool collect_reports)
{
    const PreparedPartition prep =
        preparePartition(topo, opts, full_input);
    return runBaseApSpap(topo, opts, prep, collect_reports);
}

} // namespace sparseap
