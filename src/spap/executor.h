/**
 * @file
 * End-to-end execution pipelines (Table III of the paper):
 *
 *  - AP          baseline: whole NFAs, batched, every batch re-consumes
 *                the input;
 *  - BaseAP/SpAP predicted hot set in BaseAP mode, predicted cold set in
 *                SpAP mode driven by intermediate reports;
 *  - AP-CPU      predicted hot set in BaseAP mode, cold handling on the
 *                CPU (timed with std::chrono, as in the paper).
 *
 * All pipelines share the profiling -> layer choice -> fill -> partition
 * front end and report the Table IV runtime statistics.
 */

#ifndef SPARSEAP_SPAP_EXECUTOR_H
#define SPARSEAP_SPAP_EXECUTOR_H

#include <memory>
#include <span>
#include <vector>

#include "ap/config.h"
#include "ap/timing.h"
#include "partition/fill.h"
#include "partition/partitioner.h"
#include "sim/engine.h"
#include "spap/spap_engine.h"

namespace sparseap {

/** Knobs for the partitioned pipelines. */
struct ExecutionOptions
{
    ApConfig ap;
    /** Profiling prefix as a fraction of the whole input (0.001 / 0.01). */
    double profileFraction = 0.01;
    /**
     * Reference stream length the profile fraction is taken of. The
     * paper profiles 0.1% / 1% of a 1 MiB input (~1 KiB / ~10 KiB); when
     * simulating shorter streams, taking the fraction of the *reference*
     * keeps the absolute profile sizes — and hence prediction quality —
     * faithful. 0 means take the fraction of the actual input. The
     * profile is always clamped to half the input.
     */
    size_t profileReferenceBytes = 1 << 20;
    /** Apply the Section IV-B batch-fill optimization. */
    bool fillOptimization = true;
    /** Intermediate-state construction options. */
    PartitionOptions partition;
    /**
     * Run the *whole* input as the test stream (paper behaviour for
     * Fermi/SPM whose start states fire only at position 0); otherwise
     * the test stream is the remainder after the profiling prefix.
     */
    bool fullInputAsTest = false;
    /**
     * Threads for batch-level parallelism (SpAP cold batches are
     * independent: each replays the whole input and is merged in batch
     * order, so results are identical at any thread count). 0 means use
     * the SPARSEAP_JOBS global; 1 disables parallelism.
     */
    unsigned jobs = 0;

    /** @return the thread count this option set resolves to (>= 1). */
    unsigned resolvedJobs() const;
};

/** Result of the plain baseline AP execution. */
struct BaselineResult
{
    size_t batches = 0;
    uint64_t cycles = 0;
    /** Reports (original global ids); filled only when requested. */
    ReportList reports;
};

/** Table IV row: runtime statistics of one BaseAP/SpAP execution. */
struct SpapRunStats
{
    // Execution counts.
    size_t baselineBatches = 0;
    size_t baseApBatches = 0;
    /**
     * SpAP-mode executions: cold batches that received at least one
     * intermediate report (batches with no events never start, matching
     * Table IV's "0 SpAP executions" for apps like CAV4k and DS).
     */
    size_t spApBatches = 0;
    /** Cold batches configured in total (incl. never-started ones). */
    size_t spApConfiguredBatches = 0;

    // Cycle accounting.
    uint64_t testLength = 0;
    uint64_t baselineCycles = 0;
    uint64_t baseApCycles = 0;
    uint64_t spApCycles = 0; ///< consumed + stalls, summed over batches
    uint64_t spApConsumedCycles = 0; ///< input symbols actually consumed
    uint64_t enableStalls = 0;
    uint64_t jumps = 0;          ///< jump operations, summed over batches
    uint64_t enables = 0;        ///< enable operations (events applied)
    uint64_t skippedSymbols = 0; ///< symbols jumped over, summed

    // Partition statistics.
    size_t totalStates = 0;
    size_t baseApStates = 0; ///< configured in BaseAP (incl. intermediates)
    size_t intermediateStates = 0;
    size_t hotOriginalReporting = 0;
    size_t intermediateReports = 0; ///< events recorded during BaseAP mode
    double resourceSavings = 0.0;

    /**
     * Fraction of SpAP-mode input cycles skipped by jump operations:
     * 1 - consumed / (spApBatches * testLength); -1 when no SpAP ran.
     */
    double jumpRatio = -1.0;

    /** baselineCycles / (baseApCycles + spApCycles). */
    double speedup = 1.0;

    /** Merged final reports (original ids); filled when requested. */
    ReportList reports;
};

/** AP-CPU execution result (real-time based, Section VI). */
struct ApCpuStats
{
    size_t baselineBatches = 0;
    size_t baseApBatches = 0;
    double baselineSeconds = 0.0;
    double baseApSeconds = 0.0;
    /** Wall-clock seconds the CPU spent handling intermediate reports. */
    double cpuSeconds = 0.0;
    size_t intermediateReports = 0;
    /** baselineSeconds / (baseApSeconds + cpuSeconds). */
    double speedup = 1.0;
    ReportList reports;
};

/**
 * Run the baseline AP execution.
 *
 * @param collect_reports when true, also functionally execute the
 * application to produce the report stream (one extra simulation)
 * @param app_fa optional pre-built FlatAutomaton of @p app, so callers
 * holding one (e.g. a LoadedApp cache) avoid re-flattening
 */
BaselineResult runBaseline(const Application &app, const ApConfig &config,
                           std::span<const uint8_t> test_input,
                           bool collect_reports,
                           const FlatAutomaton *app_fa = nullptr);

/**
 * Shared front end: profile, choose layers, fill, partition. Exposed so
 * benchmarks can inspect the partition without running the back end.
 */
struct PreparedPartition
{
    PartitionLayers layers;
    PartitionedApp part;
    /** Test stream (suffix of the input, or the whole input). */
    std::span<const uint8_t> testInput;
    /** Profile stream (prefix of the input). */
    std::span<const uint8_t> profileInput;

    /**
     * Lazily-built execution plan for the cold side at one capacity:
     * batch composition, the per-NFA batch/local-id index the event
     * dispatch uses, and the per-batch applications and flat automata —
     * so repeated executions of the same partition (parallel-determinism
     * tests, multi-jobs sweeps) reuse them instead of rebuilding. Built
     * by runBaseApSpap on first use; rebuilt only when the capacity
     * changes. A PreparedPartition must be executed by one thread at a
     * time (the batch workers only read the plan).
     */
    struct ColdPlan
    {
        size_t capacity = 0;
        /** Cold NFA indices of each batch. */
        std::vector<std::vector<uint32_t>> batches;
        /** cold NFA index -> containing batch. */
        std::vector<uint32_t> nfaBatch;
        /** cold NFA index -> first batch-local state id. */
        std::vector<GlobalStateId> nfaLocalBase;
        /** Per-batch fragment application (built when first active). */
        std::vector<std::unique_ptr<Application>> batchApps;
        /** Per-batch flat automaton (built when first active). */
        std::vector<std::unique_ptr<FlatAutomaton>> batchFas;
    };
    /** @see ColdPlan. Shared so copies of a prep reuse one plan. */
    mutable std::shared_ptr<ColdPlan> coldPlan;

    /** Flat automaton of part.hot, built on first execution and shared
     *  by every pipeline run over this partition. */
    mutable std::shared_ptr<const FlatAutomaton> hotFa;
    /** Flat automaton of part.cold (AP-CPU runs the whole cold set). */
    mutable std::shared_ptr<const FlatAutomaton> coldFa;
    /** BaseAP-mode functional run of the hot automaton over testInput —
     *  identical for every back end over this partition (BaseAP/SpAP and
     *  AP-CPU both start from it), so it is simulated once. */
    mutable std::shared_ptr<const SimResult> hotRun;

    /** @return hotFa, building it on first use. */
    const FlatAutomaton &hotAutomaton() const;
    /** @return coldFa, building it on first use. */
    const FlatAutomaton &coldAutomaton() const;
    /** @return hotRun, simulating on first use. */
    const SimResult &hotRunResult() const;
};

/**
 * Profiling prefix length (bytes) @p opts imply for an input of
 * @p input_size bytes — the fraction of the reference stream length,
 * clamped to [1, input_size / 2].
 */
size_t profilePrefixLength(const ExecutionOptions &opts, size_t input_size);

/**
 * Cold-NFA -> batch-index assignment the SpAP cold plan implies at
 * @p capacity (whole-NFA first-fit packing in NFA order). Exposed for
 * the artifact store, which records batch assignments alongside the
 * partition; unlike the execution path this emits no over-capacity
 * warnings.
 */
std::vector<uint32_t> coldBatchAssignment(const Application &cold,
                                          size_t capacity);

/** Build the partition for @p app under @p opts over @p full_input. */
PreparedPartition preparePartition(const AppTopology &topo,
                                   const ExecutionOptions &opts,
                                   std::span<const uint8_t> full_input);

/**
 * Variant taking a precomputed hot/cold @p profile of the profiling
 * prefix (profilePrefixLength bytes), skipping the profiling simulation —
 * the checkpointed profiler and the per-app profile cache feed this.
 */
PreparedPartition preparePartition(const AppTopology &topo,
                                   const ExecutionOptions &opts,
                                   std::span<const uint8_t> full_input,
                                   const HotColdProfile &profile);

/**
 * Run the full BaseAP/SpAP pipeline.
 *
 * @param topo topology of @p app (reused across configurations)
 * @param opts execution options
 * @param full_input the whole input stream (profile prefix + test)
 * @param collect_reports fill SpapRunStats::reports (needed for
 *        equivalence checking; adds report translation cost only)
 */
SpapRunStats runBaseApSpap(const AppTopology &topo,
                           const ExecutionOptions &opts,
                           std::span<const uint8_t> full_input,
                           bool collect_reports = false);

/** Variant reusing an existing PreparedPartition. */
SpapRunStats runBaseApSpap(const AppTopology &topo,
                           const ExecutionOptions &opts,
                           const PreparedPartition &prep,
                           bool collect_reports = false);

} // namespace sparseap

#endif // SPARSEAP_SPAP_EXECUTOR_H
