#include "spap/spap_engine.h"

#include "common/logging.h"
#include "sim/exec_core.h"

namespace sparseap {

SpapResult
runSpapMode(const FlatAutomaton &fa, std::span<const uint8_t> input,
            std::span<const SpapEvent> events)
{
    SPARSEAP_ASSERT(fa.allInputStarts().empty() &&
                        fa.startOfDataStarts().empty(),
                    "SpAP mode requires a start-free automaton: the jump "
                    "operation assumes no state is always enabled");
    for (size_t e = 1; e < events.size(); ++e) {
        SPARSEAP_ASSERT(events[e - 1].position <= events[e].position,
                        "SpAP events must be sorted by position");
    }

    SpapResult result;
    const size_t n = input.size();

    ExecCore core(fa);
    core.reset(ExecCore::distinctBytes(input), nullptr,
               /*install_starts=*/false);

    size_t i = 0; // input cursor
    size_t j = 0; // event cursor

    while (i < n) {
        if (core.idle()) {
            if (j < events.size()) {
                // Jump: nothing can activate until the next enable.
                if (events[j].position > i) {
                    i = events[j].position;
                    ++result.jumps;
                    if (i >= n)
                        break; // event beyond the input: nothing to do
                }
            } else {
                break;
            }
        }

        // Enable every event at this position; the first enable overlaps
        // input processing, each further simultaneous enable stalls one
        // cycle.
        uint64_t enables_here = 0;
        while (j < events.size() && events[j].position == i) {
            const GlobalStateId s = events[j].state;
            SPARSEAP_ASSERT(s < fa.size(), "event state ", s,
                            " out of range ", fa.size());
            core.enableState(s);
            ++enables_here;
            ++j;
        }
        if (enables_here > 1)
            result.enableStalls += enables_here - 1;

        core.step(input[i], static_cast<uint32_t>(i), &result.reports);
        ++result.consumedCycles;
        ++i;
    }
    return result;
}

} // namespace sparseap
