#include "spap/spap_engine.h"

#include <algorithm>
#include <memory>

#include "common/logging.h"
#include "sim/dense_core.h"
#include "sim/exec_core.h"

namespace sparseap {

SpapResult
runSpapMode(const FlatAutomaton &fa, std::span<const uint8_t> input,
            std::span<const SpapEvent> events)
{
    return runSpapMode(fa, input, events, globalOptions().engineMode);
}

SpapResult
runSpapMode(const FlatAutomaton &fa, std::span<const uint8_t> input,
            std::span<const SpapEvent> events, EngineMode mode)
{
    SPARSEAP_ASSERT(fa.allInputStarts().empty() &&
                        fa.startOfDataStarts().empty(),
                    "SpAP mode requires a start-free automaton: the jump "
                    "operation assumes no state is always enabled");
    for (size_t e = 1; e < events.size(); ++e) {
        SPARSEAP_ASSERT(events[e - 1].position <= events[e].position,
                        "SpAP events must be sorted by position");
    }

    SpapResult result;
    const size_t n = input.size();

    // Either core implements the semantics; the enabled-set traces (and
    // hence idle()/jump decisions, consumed cycles and stalls) coincide,
    // so every mode produces the same statistics and report multiset.
    std::unique_ptr<ExecCore> sparse;
    std::unique_ptr<DenseCore> dense;
    if (mode == EngineMode::Dense && fa.size() > 0) {
        dense = std::make_unique<DenseCore>(fa);
        dense->reset(/*install_starts=*/false);
    } else {
        sparse = std::make_unique<ExecCore>(fa);
        sparse->reset(ExecCore::distinctBytes(input), nullptr,
                      /*install_starts=*/false);
    }
    const bool may_probe =
        mode == EngineMode::Auto && fa.size() >= Engine::kMinDenseStates;
    uint64_t work_acc = 0;

    size_t i = 0; // input cursor
    size_t j = 0; // event cursor

    while (i < n) {
        if (dense ? dense->idle() : sparse->idle()) {
            if (j < events.size()) {
                // Jump: nothing can activate until the next enable.
                if (events[j].position > i) {
                    const size_t target =
                        std::min<size_t>(events[j].position, n);
                    result.skippedSymbols += target - i;
                    i = events[j].position;
                    ++result.jumps;
                    if (i >= n)
                        break; // event beyond the input: nothing to do
                }
            } else {
                break;
            }
        }

        // Enable every event at this position; the first enable overlaps
        // input processing, each further simultaneous enable stalls one
        // cycle.
        uint64_t enables_here = 0;
        while (j < events.size() && events[j].position == i) {
            const GlobalStateId s = events[j].state;
            SPARSEAP_ASSERT(s < fa.size(), "event state ", s,
                            " out of range ", fa.size());
            if (dense)
                dense->seed(s);
            else
                sparse->enableState(s);
            ++enables_here;
            ++j;
        }
        result.enables += enables_here;
        if (enables_here > 1)
            result.enableStalls += enables_here - 1;

        if (dense) {
            dense->step(input[i], i, &result.reports);
        } else {
            sparse->step(input[i], i, &result.reports);
            work_acc += sparse->lastStepWork();
        }
        ++result.consumedCycles;
        ++i;

        // Auto handover, with Engine::run's probe: after kProbeCycles
        // *consumed* cycles on the sparse core, hand the in-flight
        // enabled set to the dense core when the measured sparse work
        // exceeds a word sweep — an over-capacity cold batch that runs
        // hot then pays O(live words) per cycle instead of list chasing.
        if (sparse && may_probe &&
            result.consumedCycles == Engine::kProbeCycles) {
            const uint64_t threshold =
                static_cast<uint64_t>(Engine::kProbeCycles) *
                Engine::kDenseWorkPerWord * wordsForBits(fa.size());
            if (work_acc >= threshold) {
                std::vector<GlobalStateId> live;
                sparse->snapshotEnabled(&live);
                dense = std::make_unique<DenseCore>(fa);
                dense->reset(/*install_starts=*/false);
                dense->seed(live);
                sparse.reset();
            }
        }
    }
    return result;
}

} // namespace sparseap
