/**
 * @file
 * SparseAP (SpAP) execution mode — Algorithm 1 of the paper.
 *
 * The predicted-cold fabric is driven by the input stream *and* by the
 * intermediate reports recorded during BaseAP mode. Two operations make it
 * cheap:
 *
 *  - *jump*: when no state is enabled, skip the input cursor directly to
 *    the position of the next intermediate report (nothing can activate
 *    in between because no cold state is always-enabled);
 *  - *enable*: set the state bit of the report's target STE through the
 *    routing-matrix decoder hierarchy. One enable per cycle overlaps
 *    input processing for free; each additional simultaneous enable
 *    stalls the input pipeline one cycle ("EStalls").
 */

#ifndef SPARSEAP_SPAP_SPAP_ENGINE_H
#define SPARSEAP_SPAP_SPAP_ENGINE_H

#include <cstdint>
#include <span>
#include <vector>

#include "sim/engine.h"
#include "sim/flat_automaton.h"
#include "sim/report.h"

namespace sparseap {

/**
 * One intermediate report: enable state @c state (id local to the cold
 * automaton being run) before consuming input position @c position.
 */
struct SpapEvent
{
    /** Global stream offset, matching Report::position's width. */
    uint64_t position;
    GlobalStateId state;
};

/** Outcome of one SpAP-mode run over one cold batch. */
struct SpapResult
{
    /** Reports from original (cold) reporting states, local ids. */
    ReportList reports;
    /** Input symbols actually consumed (jumped-over symbols excluded). */
    uint64_t consumedCycles = 0;
    /** Stall cycles from simultaneous enables (m events -> m-1 stalls). */
    uint64_t enableStalls = 0;
    /** Number of jump operations performed. */
    uint64_t jumps = 0;
    /** Enable operations performed (events applied to the fabric). */
    uint64_t enables = 0;
    /** Input symbols jumped over (never consumed). */
    uint64_t skippedSymbols = 0;

    /** Total SpAP cycles charged: consumed symbols plus enable stalls. */
    uint64_t totalCycles() const { return consumedCycles + enableStalls; }
};

/**
 * Execute Algorithm 1.
 *
 * Like Engine, the run can execute on either stepping core: @p mode
 * pins it, and Auto starts sparse then hands the in-flight enabled set
 * to the bit-parallel dense core when the measured per-cycle work of
 * the sparse core exceeds a live-word sweep (same probe and threshold
 * as Engine::run). Jumps, enable stalls, consumed cycles and the
 * report multiset are identical on every core — only report order
 * within one position may differ (callers sort).
 *
 * @param fa the cold automaton (must contain no start states)
 * @param input the full test input stream
 * @param events intermediate reports sorted by position, targeting states
 *               of @p fa
 * @param mode stepping-core selection
 */
SpapResult runSpapMode(const FlatAutomaton &fa,
                       std::span<const uint8_t> input,
                       std::span<const SpapEvent> events, EngineMode mode);

/** runSpapMode with the process-wide SPARSEAP_ENGINE mode. */
SpapResult runSpapMode(const FlatAutomaton &fa,
                       std::span<const uint8_t> input,
                       std::span<const SpapEvent> events);

} // namespace sparseap

#endif // SPARSEAP_SPAP_SPAP_ENGINE_H
