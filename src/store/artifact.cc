#include "store/artifact.h"

#include <numeric>

#include "common/word_vector.h"
#include "sim/hot_dfa.h"
#include "telemetry/metrics.h"

namespace sparseap {
namespace store {
namespace {

template <typename T>
std::span<const T>
spanOf(const std::vector<T> &v)
{
    return {v.data(), v.size()};
}

/** Fetch a required typed section; fail with a named error otherwise. */
template <typename T>
bool
grab(const BlobView &blob, uint32_t id, std::span<const T> *out,
     std::string *error, const char *what)
{
    const SectionEntry *e = blob.findSection(id);
    if (e == nullptr) {
        *error = std::string("missing section: ") + what;
        return false;
    }
    *out = blob.sectionAs<T>(id);
    if (e->size != 0 && out->empty()) {
        *error = std::string("malformed section (element size): ") + what;
        return false;
    }
    return true;
}

/** Fetch a required one-element POD meta section. */
template <typename T>
bool
grabMeta(const BlobView &blob, uint32_t id, const T **out,
         std::string *error, const char *what)
{
    std::span<const T> s;
    if (!grab(blob, id, &s, error, what))
        return false;
    if (s.size() != 1) {
        *error = std::string("malformed meta section: ") + what;
        return false;
    }
    *out = s.data();
    return true;
}

bool
sizeIs(size_t got, size_t want, std::string *error, const char *what)
{
    if (got == want)
        return true;
    *error = std::string("inconsistent section size: ") + what + " has " +
             std::to_string(got) + " elements, expected " +
             std::to_string(want);
    return false;
}

} // namespace

// ------------------------------------------------------ FlatAutomaton --

void
encodeFlatAutomaton(const FlatAutomaton &fa, BlobWriter &w, uint32_t base)
{
    const FlatAutomaton::Parts p = fa.parts();

    FaMeta meta{};
    meta.states = p.symbols.size();
    meta.succCount = p.succ.size();
    meta.classCount = p.classCount;
    meta.compression = static_cast<uint8_t>(p.compression);
    meta.denseWords = p.dense.words;
    meta.denseClasses = p.dense.classes;
    w.addSection(base + kFaMeta, &meta, sizeof(meta),
                 static_cast<uint32_t>(sizeof(meta)));

    w.addSpan(base + kFaSymbols, p.symbols);
    w.addSpan(base + kFaReporting, p.reporting);
    w.addSpan(base + kFaStart, p.start);
    w.addSpan(base + kFaSuccBegin, p.succBegin);
    w.addSpan(base + kFaSucc, p.succ);
    w.addSpan(base + kFaStartTableBegin, p.startTableBegin);
    w.addSpan(base + kFaStartTable, p.startTable);
    w.addSpan(base + kFaSodStarts, p.sodStarts);
    w.addSpan(base + kFaAllInputStarts, p.allInputStarts);
    w.addSpan(base + kFaClassOf, p.classOf);
    w.addSpan(base + kFaClassRep, p.classRep);

    const FlatAutomaton::Parts::Dense &d = p.dense;
    w.addSpan(base + kFaDenseClassOf, d.classOf);
    w.addSpan(base + kFaDenseAccept, d.accept);
    w.addSpan(base + kFaDenseReporting, d.reporting);
    w.addSpan(base + kFaDenseAllInputStarts, d.allInputStarts);
    w.addSpan(base + kFaDenseSodStarts, d.sodStarts);
    w.addSpan(base + kFaDenseLatchable, d.latchable);
    w.addSpan(base + kFaDenseSuccBegin, d.succBegin);
    w.addSpan(base + kFaDenseSuccWordIdx, d.succWordIdx);
    w.addSpan(base + kFaDenseSuccWordMask, d.succWordMask);
    w.addSpan(base + kFaDenseStartBegin, d.startBegin);
    w.addSpan(base + kFaDenseStartWordIdx, d.startWordIdx);
    w.addSpan(base + kFaDenseStartWordMask, d.startWordMask);
    w.addSpan(base + kFaDenseStartSuccBegin, d.startSuccBegin);
    w.addSpan(base + kFaDenseStartSuccWordIdx, d.startSuccWordIdx);
    w.addSpan(base + kFaDenseStartSuccWordMask, d.startSuccWordMask);
    w.addSpan(base + kFaDenseScanMask, d.scanMask);

    // Persist the hot DFA when one had been determinized by encode time
    // (encodePreparedPartition forces the attempt for hot fragments).
    // Encoding never triggers subset construction itself: full-app
    // automata would blow the budget for nothing.
    if (const std::shared_ptr<const HotDfa> dfa = fa.hotDfaIfBuilt()) {
        const HotDfa::Parts dp = dfa->parts();
        DfaMeta dmeta{};
        dmeta.states = dp.states;
        dmeta.classes = dp.classes;
        dmeta.reportCount = dp.reportIds.size();
        w.addSection(base + kFaDfaMeta, &dmeta, sizeof(dmeta),
                     static_cast<uint32_t>(sizeof(dmeta)));
        w.addSpan(base + kFaDfaTable, dp.table);
        w.addSpan(base + kFaDfaReportBegin, dp.reportBegin);
        w.addSpan(base + kFaDfaReportIds, dp.reportIds);
        w.addSpan(base + kFaDfaSkipIndex, dp.skipIndex);
        w.addSpan(base + kFaDfaSkipBits, dp.skipBits);
    }
}

std::unique_ptr<FlatAutomaton>
decodeFlatAutomaton(const BlobView &blob, uint32_t base, std::string *error)
{
    const FaMeta *meta = nullptr;
    if (!grabMeta(blob, base + kFaMeta, &meta, error, "FaMeta"))
        return nullptr;
    if (meta->classCount < 1 || meta->classCount > 256 ||
        meta->compression >
            static_cast<uint8_t>(FlatAutomaton::DenseCompression::Raw)) {
        *error = "FaMeta holds out-of-range values";
        return nullptr;
    }
    const size_t n = meta->states;

    FlatAutomaton::Parts p;
    p.compression =
        static_cast<FlatAutomaton::DenseCompression>(meta->compression);
    p.classCount = meta->classCount;
    if (!grab(blob, base + kFaSymbols, &p.symbols, error, "symbols") ||
        !grab(blob, base + kFaReporting, &p.reporting, error,
              "reporting") ||
        !grab(blob, base + kFaStart, &p.start, error, "start") ||
        !grab(blob, base + kFaSuccBegin, &p.succBegin, error,
              "succBegin") ||
        !grab(blob, base + kFaSucc, &p.succ, error, "succ") ||
        !grab(blob, base + kFaStartTableBegin, &p.startTableBegin, error,
              "startTableBegin") ||
        !grab(blob, base + kFaStartTable, &p.startTable, error,
              "startTable") ||
        !grab(blob, base + kFaSodStarts, &p.sodStarts, error,
              "sodStarts") ||
        !grab(blob, base + kFaAllInputStarts, &p.allInputStarts, error,
              "allInputStarts") ||
        !grab(blob, base + kFaClassOf, &p.classOf, error, "classOf") ||
        !grab(blob, base + kFaClassRep, &p.classRep, error, "classRep")) {
        return nullptr;
    }
    if (!sizeIs(p.symbols.size(), n, error, "symbols") ||
        !sizeIs(p.reporting.size(), n, error, "reporting") ||
        !sizeIs(p.start.size(), n, error, "start") ||
        !sizeIs(p.succBegin.size(), n + 1, error, "succBegin") ||
        !sizeIs(p.succ.size(), meta->succCount, error, "succ") ||
        !sizeIs(p.classOf.size(), 256, error, "classOf") ||
        !sizeIs(p.classRep.size(), meta->classCount, error, "classRep") ||
        !sizeIs(p.startTableBegin.size(), meta->classCount + 1, error,
                "startTableBegin")) {
        return nullptr;
    }
    if (n != 0 &&
        (p.succBegin.back() != p.succ.size() ||
         p.startTableBegin.back() != p.startTable.size())) {
        *error = "CSR end offsets disagree with array sizes";
        return nullptr;
    }

    FlatAutomaton::Parts::Dense &d = p.dense;
    d.words = meta->denseWords;
    d.classes = meta->denseClasses;
    if (d.words != wordsForBits(n) ||
        (d.classes != meta->classCount && d.classes != 256)) {
        *error = "dense geometry disagrees with FaMeta";
        return nullptr;
    }
    if (!grab(blob, base + kFaDenseClassOf, &d.classOf, error,
              "dense classOf") ||
        !grab(blob, base + kFaDenseAccept, &d.accept, error,
              "dense accept") ||
        !grab(blob, base + kFaDenseReporting, &d.reporting, error,
              "dense reporting") ||
        !grab(blob, base + kFaDenseAllInputStarts, &d.allInputStarts,
              error, "dense allInputStarts") ||
        !grab(blob, base + kFaDenseSodStarts, &d.sodStarts, error,
              "dense sodStarts") ||
        !grab(blob, base + kFaDenseLatchable, &d.latchable, error,
              "dense latchable") ||
        !grab(blob, base + kFaDenseSuccBegin, &d.succBegin, error,
              "dense succBegin") ||
        !grab(blob, base + kFaDenseSuccWordIdx, &d.succWordIdx, error,
              "dense succWordIdx") ||
        !grab(blob, base + kFaDenseSuccWordMask, &d.succWordMask, error,
              "dense succWordMask") ||
        !grab(blob, base + kFaDenseStartBegin, &d.startBegin, error,
              "dense startBegin") ||
        !grab(blob, base + kFaDenseStartWordIdx, &d.startWordIdx, error,
              "dense startWordIdx") ||
        !grab(blob, base + kFaDenseStartWordMask, &d.startWordMask, error,
              "dense startWordMask") ||
        !grab(blob, base + kFaDenseStartSuccBegin, &d.startSuccBegin,
              error, "dense startSuccBegin") ||
        !grab(blob, base + kFaDenseStartSuccWordIdx, &d.startSuccWordIdx,
              error, "dense startSuccWordIdx") ||
        !grab(blob, base + kFaDenseStartSuccWordMask, &d.startSuccWordMask,
              error, "dense startSuccWordMask")) {
        return nullptr;
    }
    if (!sizeIs(d.classOf.size(), 256, error, "dense classOf") ||
        !sizeIs(d.accept.size(),
                d.classes * FlatAutomaton::DenseView::strideFor(d.words),
                error,
                "dense accept") ||
        !sizeIs(d.reporting.size(), d.words, error, "dense reporting") ||
        !sizeIs(d.allInputStarts.size(), d.words, error,
                "dense allInputStarts") ||
        !sizeIs(d.sodStarts.size(), d.words, error, "dense sodStarts") ||
        !sizeIs(d.latchable.size(), d.words, error, "dense latchable") ||
        !sizeIs(d.succBegin.size(), n + 1, error, "dense succBegin") ||
        !sizeIs(d.succWordMask.size(), d.succWordIdx.size(), error,
                "dense succWordMask") ||
        !sizeIs(d.startBegin.size(), d.classes + 1, error,
                "dense startBegin") ||
        !sizeIs(d.startWordMask.size(), d.startWordIdx.size(), error,
                "dense startWordMask") ||
        !sizeIs(d.startSuccBegin.size(), d.classes + 1, error,
                "dense startSuccBegin") ||
        !sizeIs(d.startSuccWordMask.size(), d.startSuccWordIdx.size(),
                error, "dense startSuccWordMask")) {
        return nullptr;
    }
    if ((n != 0 && d.succBegin.back() != d.succWordIdx.size()) ||
        d.startBegin.back() != d.startWordIdx.size() ||
        d.startSuccBegin.back() != d.startSuccWordIdx.size()) {
        *error = "dense CSR end offsets disagree with array sizes";
        return nullptr;
    }

    // v3 input-skip scan mask. Tolerated when absent (pre-v3 blob shape;
    // the dense view recomputes it), but malformed-when-present is a
    // structural error like any other section.
    if (blob.findSection(base + kFaDenseScanMask) != nullptr) {
        if (!grab(blob, base + kFaDenseScanMask, &d.scanMask, error,
                  "dense scanMask") ||
            !sizeIs(d.scanMask.size(), 4, error, "dense scanMask")) {
            return nullptr;
        }
    }

    p.backing = blob.backing();
    auto fa = std::make_unique<FlatAutomaton>(p);

    // Optional hot-DFA attachment: absent for automata that were never
    // determinized (or whose construction bailed out).
    if (blob.findSection(base + kFaDfaMeta) != nullptr) {
        const DfaMeta *dmeta = nullptr;
        if (!grabMeta(blob, base + kFaDfaMeta, &dmeta, error, "DfaMeta"))
            return nullptr;
        HotDfa::Parts dp;
        dp.states = dmeta->states;
        dp.classes = dmeta->classes;
        if (dp.states == 0 || dp.classes != d.classes) {
            *error = "DfaMeta disagrees with the dense geometry";
            return nullptr;
        }
        if (!grab(blob, base + kFaDfaTable, &dp.table, error,
                  "dfa table") ||
            !grab(blob, base + kFaDfaReportBegin, &dp.reportBegin, error,
                  "dfa reportBegin") ||
            !grab(blob, base + kFaDfaReportIds, &dp.reportIds, error,
                  "dfa reportIds")) {
            return nullptr;
        }
        if (!sizeIs(dp.table.size(), dp.states * dp.classes, error,
                    "dfa table") ||
            !sizeIs(dp.reportBegin.size(), dp.states + 1, error,
                    "dfa reportBegin") ||
            !sizeIs(dp.reportIds.size(), dmeta->reportCount, error,
                    "dfa reportIds")) {
            return nullptr;
        }
        if (dp.reportBegin.back() != dp.reportIds.size()) {
            *error = "dfa CSR end offset disagrees with reportIds";
            return nullptr;
        }
        for (uint32_t t : dp.table) {
            if (t >= dp.states) {
                *error = "dfa transition target out of range";
                return nullptr;
            }
        }
        // v3 skip tables: absent on pre-v3 blob shapes (fromParts then
        // rebuilds them from the transition table), validated when
        // present.
        if (blob.findSection(base + kFaDfaSkipIndex) != nullptr) {
            if (!grab(blob, base + kFaDfaSkipIndex, &dp.skipIndex, error,
                      "dfa skipIndex") ||
                !grab(blob, base + kFaDfaSkipBits, &dp.skipBits, error,
                      "dfa skipBits") ||
                !sizeIs(dp.skipIndex.size(), dp.states, error,
                        "dfa skipIndex")) {
                return nullptr;
            }
            if (dp.skipBits.size() % 4 != 0) {
                *error = "dfa skipBits is not a whole number of masks";
                return nullptr;
            }
            const uint32_t masks =
                static_cast<uint32_t>(dp.skipBits.size() / 4);
            for (uint32_t idx : dp.skipIndex) {
                if (idx > masks) {
                    *error = "dfa skip mask index out of range";
                    return nullptr;
                }
            }
        }
        dp.backing = blob.backing();
        fa->attachHotDfa(HotDfa::fromParts(dp, *fa));

        static telemetry::Counter dfa_warm("store.dfa_warm");
        dfa_warm.add(1);
    }
    return fa;
}

// -------------------------------------------------------- Application --

void
encodeApplication(const Application &app, BlobWriter &w, uint32_t base)
{
    AppMeta meta{};
    meta.nfaCount = app.nfaCount();
    meta.stateCount = app.totalStates();
    meta.group = static_cast<uint8_t>(app.group());

    std::string names;
    std::vector<uint32_t> name_begin;
    std::vector<uint32_t> state_begin;
    std::vector<SymbolSet> symbols;
    std::vector<uint8_t> start;
    std::vector<uint8_t> reporting;
    std::vector<uint32_t> succ_begin;
    std::vector<StateId> succ;
    name_begin.reserve(app.nfaCount() + 1);
    state_begin.reserve(app.nfaCount() + 1);
    symbols.reserve(app.totalStates());
    start.reserve(app.totalStates());
    reporting.reserve(app.totalStates());
    succ_begin.reserve(app.totalStates() + 1);

    name_begin.push_back(0);
    state_begin.push_back(0);
    for (const Nfa &nfa : app.nfas()) {
        names += nfa.name();
        name_begin.push_back(static_cast<uint32_t>(names.size()));
        state_begin.push_back(state_begin.back() +
                              static_cast<uint32_t>(nfa.size()));
        for (const State &st : nfa.states()) {
            symbols.push_back(st.symbols);
            start.push_back(static_cast<uint8_t>(st.start));
            reporting.push_back(st.reporting ? 1 : 0);
            succ_begin.push_back(static_cast<uint32_t>(succ.size()));
            succ.insert(succ.end(), st.successors.begin(),
                        st.successors.end());
        }
    }
    succ_begin.push_back(static_cast<uint32_t>(succ.size()));
    meta.succCount = succ.size();

    w.addSection(base + kAppMeta, &meta, sizeof(meta),
                 static_cast<uint32_t>(sizeof(meta)));
    w.addString(base + kAppName, app.name());
    w.addString(base + kAppAbbr, app.abbr());
    w.addSpan(base + kAppNfaNameBegin, spanOf(name_begin));
    w.addString(base + kAppNfaNames, names);
    w.addSpan(base + kAppNfaStateBegin, spanOf(state_begin));
    w.addSpan(base + kAppSymbols, spanOf(symbols));
    w.addSpan(base + kAppStart, spanOf(start));
    w.addSpan(base + kAppReporting, spanOf(reporting));
    w.addSpan(base + kAppSuccBegin, spanOf(succ_begin));
    w.addSpan(base + kAppSucc, spanOf(succ));
}

bool
decodeApplication(const BlobView &blob, uint32_t base, Application *out,
                  std::string *error)
{
    const AppMeta *meta = nullptr;
    if (!grabMeta(blob, base + kAppMeta, &meta, error, "AppMeta"))
        return false;
    if (meta->group > static_cast<uint8_t>(ResourceGroup::Low)) {
        *error = "AppMeta holds an out-of-range resource group";
        return false;
    }

    const std::span<const uint8_t> name_bytes =
        blob.sectionBytes(base + kAppName);
    const std::span<const uint8_t> abbr_bytes =
        blob.sectionBytes(base + kAppAbbr);
    const std::span<const uint8_t> names_bytes =
        blob.sectionBytes(base + kAppNfaNames);
    if (blob.findSection(base + kAppName) == nullptr ||
        blob.findSection(base + kAppAbbr) == nullptr ||
        blob.findSection(base + kAppNfaNames) == nullptr) {
        *error = "missing application name sections";
        return false;
    }

    std::span<const uint32_t> name_begin, state_begin, succ_begin;
    std::span<const SymbolSet> symbols;
    std::span<const uint8_t> start, reporting;
    std::span<const StateId> succ;
    if (!grab(blob, base + kAppNfaNameBegin, &name_begin, error,
              "nfaNameBegin") ||
        !grab(blob, base + kAppNfaStateBegin, &state_begin, error,
              "nfaStateBegin") ||
        !grab(blob, base + kAppSymbols, &symbols, error, "app symbols") ||
        !grab(blob, base + kAppStart, &start, error, "app start") ||
        !grab(blob, base + kAppReporting, &reporting, error,
              "app reporting") ||
        !grab(blob, base + kAppSuccBegin, &succ_begin, error,
              "app succBegin") ||
        !grab(blob, base + kAppSucc, &succ, error, "app succ")) {
        return false;
    }
    const size_t nfas = meta->nfaCount;
    const size_t n = meta->stateCount;
    if (!sizeIs(name_begin.size(), nfas + 1, error, "nfaNameBegin") ||
        !sizeIs(state_begin.size(), nfas + 1, error, "nfaStateBegin") ||
        !sizeIs(symbols.size(), n, error, "app symbols") ||
        !sizeIs(start.size(), n, error, "app start") ||
        !sizeIs(reporting.size(), n, error, "app reporting") ||
        !sizeIs(succ_begin.size(), n + 1, error, "app succBegin") ||
        !sizeIs(succ.size(), meta->succCount, error, "app succ")) {
        return false;
    }
    if (name_begin.back() != names_bytes.size() ||
        state_begin.back() != n || succ_begin.back() != succ.size()) {
        *error = "application CSR end offsets disagree with array sizes";
        return false;
    }

    Application app(
        std::string(reinterpret_cast<const char *>(name_bytes.data()),
                    name_bytes.size()),
        std::string(reinterpret_cast<const char *>(abbr_bytes.data()),
                    abbr_bytes.size()));
    app.setGroup(static_cast<ResourceGroup>(meta->group));
    const char *names = reinterpret_cast<const char *>(names_bytes.data());
    for (size_t ni = 0; ni < nfas; ++ni) {
        if (name_begin[ni] > name_begin[ni + 1] ||
            state_begin[ni] > state_begin[ni + 1]) {
            *error = "application CSR offsets are not monotone";
            return false;
        }
        Nfa nfa(std::string(names + name_begin[ni],
                            name_begin[ni + 1] - name_begin[ni]));
        const uint32_t lo = state_begin[ni];
        const uint32_t hi = state_begin[ni + 1];
        const StateId size = hi - lo;
        for (uint32_t g = lo; g < hi; ++g) {
            if (start[g] > static_cast<uint8_t>(StartKind::StartOfData)) {
                *error = "application state holds an invalid start kind";
                return false;
            }
            nfa.addState(symbols[g], static_cast<StartKind>(start[g]),
                         reporting[g] != 0);
        }
        for (uint32_t g = lo; g < hi; ++g) {
            if (succ_begin[g] > succ_begin[g + 1]) {
                *error = "application CSR offsets are not monotone";
                return false;
            }
            for (uint32_t k = succ_begin[g]; k < succ_begin[g + 1]; ++k) {
                if (succ[k] >= size) {
                    *error = "application successor id out of range";
                    return false;
                }
                nfa.addEdge(g - lo, succ[k]);
            }
        }
        // require_start = false: cold fragments legitimately have none.
        nfa.finalize(/*require_start=*/false);
        app.addNfa(std::move(nfa));
    }
    *out = std::move(app);
    return true;
}

// ------------------------------------------------------------ Profile --

void
encodeProfile(const HotColdProfile &profile, size_t prefix_len,
              BlobWriter &w)
{
    ProfileMeta meta{};
    meta.states = profile.hot.size();
    meta.prefixLen = prefix_len;
    meta.hotCount = profile.hotCount();
    w.addSection(kProfileMeta, &meta, sizeof(meta),
                 static_cast<uint32_t>(sizeof(meta)));

    WordVector words(wordsForBits(profile.hot.size()), 0);
    for (size_t s = 0; s < profile.hot.size(); ++s)
        if (profile.hot[s])
            setWordBit(words.data(), s);
    w.addSpan(kProfileHotWords,
              std::span<const uint64_t>(words.data(), words.size()));
}

bool
decodeProfile(const BlobView &blob, HotColdProfile *out,
              size_t *prefix_len, std::string *error)
{
    const ProfileMeta *meta = nullptr;
    if (!grabMeta(blob, kProfileMeta, &meta, error, "ProfileMeta"))
        return false;
    std::span<const uint64_t> words;
    if (!grab(blob, kProfileHotWords, &words, error, "hotWords"))
        return false;
    if (!sizeIs(words.size(), wordsForBits(meta->states), error,
                "hotWords"))
        return false;

    HotColdProfile profile;
    profile.hot.assign(meta->states, false);
    for (size_t s = 0; s < meta->states; ++s)
        profile.hot[s] = testWordBit(words.data(), s);
    if (profile.hotCount() != meta->hotCount) {
        *error = "profile hot count disagrees with the packed words";
        return false;
    }
    *out = std::move(profile);
    if (prefix_len != nullptr)
        *prefix_len = meta->prefixLen;
    return true;
}

// ---------------------------------------------------------- Partition --

void
encodePreparedPartition(const PreparedPartition &prep, size_t capacity,
                        BlobWriter &w)
{
    const PartitionedApp &part = prep.part;
    PartMeta meta{};
    meta.layerCount = prep.layers.k.size();
    meta.intermediateCount = part.intermediateCount;
    meta.hotOriginalReporting = part.hotOriginalReporting;
    meta.coldReporting = part.coldReporting;
    meta.batchCapacity = capacity;
    w.addSection(kPartMeta, &meta, sizeof(meta),
                 static_cast<uint32_t>(sizeof(meta)));

    w.addSpan(kPartLayers, spanOf(prep.layers.k));
    w.addSpan(kPartHotToOriginal, spanOf(part.hotToOriginal));
    w.addSpan(kPartIntermediateTarget, spanOf(part.intermediateTarget));
    w.addSpan(kPartColdToOriginal, spanOf(part.coldToOriginal));
    w.addSpan(kPartOriginalToCold, spanOf(part.originalToCold));
    w.addSpan(kPartColdNfaToOriginal, spanOf(part.coldNfaToOriginal));
    const std::vector<uint32_t> batches =
        coldBatchAssignment(part.cold, capacity);
    w.addSpan(kPartNfaBatch, spanOf(batches));

    encodeApplication(part.hot, w, kPartHotAppBase);
    encodeApplication(part.cold, w, kPartColdAppBase);
    // The hot fragment is exactly the compact, frequently-enabled
    // automaton determinization targets: force the (capped, one-shot)
    // attempt here so the DFA rides along in the blob and warm starts
    // skip subset construction.
    prep.hotAutomaton().ensureHotDfa();
    encodeFlatAutomaton(prep.hotAutomaton(), w, kPartHotFaBase);
}

bool
decodePreparedPartition(const BlobView &blob, PreparedPartition *out,
                        std::string *error)
{
    const PartMeta *meta = nullptr;
    if (!grabMeta(blob, kPartMeta, &meta, error, "PartMeta"))
        return false;

    PreparedPartition prep;
    std::span<const uint32_t> layers, cold_nfa_to_orig, nfa_batch;
    std::span<const GlobalStateId> hot_to_orig, inter_target,
        cold_to_orig, orig_to_cold;
    if (!grab(blob, kPartLayers, &layers, error, "layers") ||
        !grab(blob, kPartHotToOriginal, &hot_to_orig, error,
              "hotToOriginal") ||
        !grab(blob, kPartIntermediateTarget, &inter_target, error,
              "intermediateTarget") ||
        !grab(blob, kPartColdToOriginal, &cold_to_orig, error,
              "coldToOriginal") ||
        !grab(blob, kPartOriginalToCold, &orig_to_cold, error,
              "originalToCold") ||
        !grab(blob, kPartColdNfaToOriginal, &cold_nfa_to_orig, error,
              "coldNfaToOriginal") ||
        !grab(blob, kPartNfaBatch, &nfa_batch, error, "nfaBatch")) {
        return false;
    }
    if (!sizeIs(layers.size(), meta->layerCount, error, "layers"))
        return false;

    if (!decodeApplication(blob, kPartHotAppBase, &prep.part.hot, error) ||
        !decodeApplication(blob, kPartColdAppBase, &prep.part.cold,
                           error)) {
        return false;
    }
    if (!sizeIs(hot_to_orig.size(), prep.part.hot.totalStates(), error,
                "hotToOriginal") ||
        !sizeIs(inter_target.size(), prep.part.hot.totalStates(), error,
                "intermediateTarget") ||
        !sizeIs(cold_to_orig.size(), prep.part.cold.totalStates(), error,
                "coldToOriginal") ||
        !sizeIs(cold_nfa_to_orig.size(), prep.part.cold.nfaCount(), error,
                "coldNfaToOriginal") ||
        !sizeIs(nfa_batch.size(), prep.part.cold.nfaCount(), error,
                "nfaBatch")) {
        return false;
    }

    prep.layers.k.assign(layers.begin(), layers.end());
    prep.part.hotToOriginal.assign(hot_to_orig.begin(), hot_to_orig.end());
    prep.part.intermediateTarget.assign(inter_target.begin(),
                                        inter_target.end());
    prep.part.coldToOriginal.assign(cold_to_orig.begin(),
                                    cold_to_orig.end());
    prep.part.originalToCold.assign(orig_to_cold.begin(),
                                    orig_to_cold.end());
    prep.part.coldNfaToOriginal.assign(cold_nfa_to_orig.begin(),
                                       cold_nfa_to_orig.end());
    prep.part.intermediateCount = meta->intermediateCount;
    prep.part.hotOriginalReporting = meta->hotOriginalReporting;
    prep.part.coldReporting = meta->coldReporting;

    // The stored kPartNfaBatch assignment (validated above) is format
    // documentation: the runtime rebuilds its cold plan from the decoded
    // application so over-capacity warnings fire identically on the cold
    // and the warm path.
    std::unique_ptr<FlatAutomaton> hot_fa =
        decodeFlatAutomaton(blob, kPartHotFaBase, error);
    if (hot_fa == nullptr)
        return false;
    if (hot_fa->size() != prep.part.hot.totalStates()) {
        *error = "embedded hot automaton disagrees with the hot fragment";
        return false;
    }
    prep.hotFa = std::shared_ptr<const FlatAutomaton>(std::move(hot_fa));

    *out = std::move(prep);
    return true;
}

} // namespace store
} // namespace sparseap
