/**
 * @file
 * Typed artifact codecs over the blob container: what actually goes into
 * a store file for each compiled-pipeline product.
 *
 *  - FlatAutomaton — every array of the flattened automaton plus its
 *    fully-materialized dense view (accept table, start dispatch,
 *    latchable masks, word-level CSRs). Decoding is zero-copy: the
 *    returned automaton's spans alias the blob's mapping, which stays
 *    alive through the shared backing handle.
 *  - HotColdProfile — one bit-packed hot set per blob, keyed by the
 *    profiling prefix length.
 *  - Application — binary NFA bag (states, symbol sets, edge CSR);
 *    used to embed partition fragments. The text format in
 *    nfa/serialize.h remains the portable/human-editable interchange.
 *  - PreparedPartition — partition layers, translation tables, batch
 *    assignments, the hot and cold fragment applications, and the hot
 *    fragment's FlatAutomaton, all in one blob.
 *
 * Section ids are base-relative so one blob can embed several automata
 * or applications (the partition artifact embeds three). Decoders return
 * false/nullptr with an error string on any structural inconsistency —
 * blob checksums already reject corruption, so these checks only guard
 * against artifacts written by a different (buggy or future) encoder.
 */

#ifndef SPARSEAP_STORE_ARTIFACT_H
#define SPARSEAP_STORE_ARTIFACT_H

#include <memory>
#include <string>

#include "partition/hotcold.h"
#include "sim/flat_automaton.h"
#include "spap/executor.h"
#include "store/blob.h"

namespace sparseap {
namespace store {

// ---------------------------------------------------------------- ids --

/** FlatAutomaton section ids, relative to a base. */
enum FaSection : uint32_t {
    kFaMeta = 0,
    kFaSymbols,
    kFaReporting,
    kFaStart,
    kFaSuccBegin,
    kFaSucc,
    kFaStartTableBegin,
    kFaStartTable,
    kFaSodStarts,
    kFaAllInputStarts,
    kFaClassOf,
    kFaClassRep,
    kFaDenseMeta,
    kFaDenseClassOf,
    kFaDenseAccept,
    kFaDenseReporting,
    kFaDenseAllInputStarts,
    kFaDenseSodStarts,
    kFaDenseLatchable,
    kFaDenseSuccBegin,
    kFaDenseSuccWordIdx,
    kFaDenseSuccWordMask,
    kFaDenseStartBegin,
    kFaDenseStartWordIdx,
    kFaDenseStartWordMask,
    kFaDenseStartSuccBegin,
    kFaDenseStartSuccWordIdx,
    kFaDenseStartSuccWordMask,
    // Optional hot-DFA attachment (sim/hot_dfa.h): present only when
    // the automaton had been determinized at encode time. Warm loads
    // attach it so they skip subset construction entirely.
    kFaDfaMeta,
    kFaDfaTable,
    kFaDfaReportBegin,
    kFaDfaReportIds,
    // v3 input-skip scan tables: the automaton's 256-bit quiescent
    // scan mask (always present) and the DFA's per-state skip
    // index/mask sections (present with the DFA block). Decoders
    // tolerate their absence — the loaders recompute then — but within
    // one format version they are always written.
    kFaDenseScanMask,
    kFaDfaSkipIndex,
    kFaDfaSkipBits,
    kFaSectionCount, ///< ids per embedded automaton
};

/** Application section ids, relative to a base. */
enum AppSection : uint32_t {
    kAppMeta = 0,
    kAppName,
    kAppAbbr,
    kAppNfaNameBegin,
    kAppNfaNames,
    kAppNfaStateBegin,
    kAppSymbols,
    kAppStart,
    kAppReporting,
    kAppSuccBegin,
    kAppSucc,
    kAppSectionCount, ///< ids per embedded application
};

/** Profile section ids (profile blobs hold exactly one profile). */
enum ProfileSection : uint32_t {
    kProfileMeta = 1,
    kProfileHotWords,
};

/** Partition blob layout: tables at the root, three embedded objects. */
enum PartSection : uint32_t {
    kPartMeta = 1,
    kPartLayers,
    kPartHotToOriginal,
    kPartIntermediateTarget,
    kPartColdToOriginal,
    kPartOriginalToCold,
    kPartColdNfaToOriginal,
    kPartNfaBatch,
};
constexpr uint32_t kPartHotAppBase = 100;  ///< hot fragment Application
constexpr uint32_t kPartColdAppBase = 200; ///< cold fragment Application
constexpr uint32_t kPartHotFaBase = 300;   ///< hot FlatAutomaton

// -------------------------------------------------------------- metas --

/** kFaMeta payload. */
struct FaMeta
{
    uint64_t states;
    uint64_t succCount;
    uint32_t classCount;
    uint8_t compression; ///< FlatAutomaton::DenseCompression
    uint8_t pad[3];
    uint64_t denseWords;
    uint64_t denseClasses;
};

/** kFaDfaMeta payload. */
struct DfaMeta
{
    uint64_t states;
    uint64_t classes;
    uint64_t reportCount;
};

/** kAppMeta payload. */
struct AppMeta
{
    uint64_t nfaCount;
    uint64_t stateCount;
    uint64_t succCount;
    uint8_t group; ///< ResourceGroup
    uint8_t pad[7];
};

/** kProfileMeta payload. */
struct ProfileMeta
{
    uint64_t states;
    uint64_t prefixLen;
    uint64_t hotCount; ///< cross-check for the packed words
};

/** kPartMeta payload. */
struct PartMeta
{
    uint64_t layerCount; ///< NFAs of the original application
    uint64_t intermediateCount;
    uint64_t hotOriginalReporting;
    uint64_t coldReporting;
    /** Capacity the stored kPartNfaBatch assignment was packed for. */
    uint64_t batchCapacity;
};

// ------------------------------------------------------------- codecs --

/** Append @p fa (arrays + dense view) to @p w at section base @p base. */
void encodeFlatAutomaton(const FlatAutomaton &fa, BlobWriter &w,
                         uint32_t base = 0);

/**
 * Decode a FlatAutomaton embedded at @p base, zero-copy over the blob's
 * mapping. @return nullptr with @p *error set on structural mismatch.
 */
std::unique_ptr<FlatAutomaton>
decodeFlatAutomaton(const BlobView &blob, uint32_t base,
                    std::string *error);

/** Append @p app (binary NFA bag) to @p w at section base @p base. */
void encodeApplication(const Application &app, BlobWriter &w,
                       uint32_t base = 0);

/** Decode an Application embedded at @p base. */
bool decodeApplication(const BlobView &blob, uint32_t base,
                       Application *out, std::string *error);

/** Append the profile of a @p prefix_len-byte prefix to @p w. */
void encodeProfile(const HotColdProfile &profile, size_t prefix_len,
                   BlobWriter &w);

/** Decode a profile blob. */
bool decodeProfile(const BlobView &blob, HotColdProfile *out,
                   size_t *prefix_len, std::string *error);

/**
 * Append @p prep to @p w: layers, translation tables, the cold batch
 * assignment for @p capacity (as packColdBatches would compute it), the
 * hot/cold fragment applications, and the hot FlatAutomaton (with dense
 * view; materialized here if needed).
 */
void encodePreparedPartition(const PreparedPartition &prep,
                             size_t capacity, BlobWriter &w);

/**
 * Decode a partition blob into @p out. testInput/profileInput are left
 * empty — they are views into the caller's input stream and must be
 * re-derived from the execution options.
 */
bool decodePreparedPartition(const BlobView &blob, PreparedPartition *out,
                             std::string *error);

} // namespace store
} // namespace sparseap

#endif // SPARSEAP_STORE_ARTIFACT_H
