#include "store/blob.h"

#include <atomic>
#include <cerrno>
#include <cstring>

#include <fcntl.h>
#include <unistd.h>

#include "common/logging.h"

namespace sparseap {
namespace store {

const char *
artifactKindName(ArtifactKind kind)
{
    switch (kind) {
    case ArtifactKind::Raw:
        return "raw";
    case ArtifactKind::FlatAutomaton:
        return "flat";
    case ArtifactKind::Profile:
        return "profile";
    case ArtifactKind::Partition:
        return "partition";
    }
    return "unknown";
}

BlobWriter::BlobWriter(ArtifactKind kind, uint64_t digest)
    : kind_(kind), digest_(digest)
{
}

void
BlobWriter::addSection(uint32_t id, const void *data, size_t bytes,
                       uint32_t elem_size)
{
    for (const Pending &p : sections_)
        SPARSEAP_ASSERT(p.id != id, "duplicate blob section id ", id);
    Pending p;
    p.id = id;
    p.elemSize = elem_size;
    const uint8_t *src = static_cast<const uint8_t *>(data);
    if (bytes != 0)
        p.bytes.assign(src, src + bytes);
    sections_.push_back(std::move(p));
}

std::vector<uint8_t>
BlobWriter::finalize() const
{
    const uint64_t table_end =
        sizeof(FileHeader) + sections_.size() * sizeof(SectionEntry);
    uint64_t cursor = alignUp(table_end);

    std::vector<SectionEntry> table;
    table.reserve(sections_.size());
    for (const Pending &p : sections_) {
        SectionEntry e;
        e.id = p.id;
        e.elemSize = p.elemSize;
        e.offset = cursor;
        e.size = p.bytes.size();
        e.checksum = hash64(p.bytes.data(), p.bytes.size());
        table.push_back(e);
        cursor = alignUp(cursor + e.size);
    }

    std::vector<uint8_t> image(cursor, 0);
    for (size_t i = 0; i < sections_.size(); ++i) {
        if (table[i].size != 0) {
            std::memcpy(image.data() + table[i].offset,
                        sections_[i].bytes.data(), table[i].size);
        }
    }
    if (!table.empty()) {
        std::memcpy(image.data() + sizeof(FileHeader), table.data(),
                    table.size() * sizeof(SectionEntry));
    }

    FileHeader h{};
    std::memcpy(h.magic, kMagic, sizeof(kMagic));
    h.version = kFormatVersion;
    h.kind = static_cast<uint32_t>(kind_);
    h.fileSize = image.size();
    h.digest = digest_;
    h.sectionCount = static_cast<uint32_t>(sections_.size());
    h.checksum = hash64(image.data() + sizeof(FileHeader),
                        image.size() - sizeof(FileHeader));
    std::memcpy(image.data(), &h, sizeof(FileHeader));
    return image;
}

bool
BlobWriter::commit(const std::string &path, std::string *error) const
{
    const std::vector<uint8_t> image = finalize();
    return atomicWriteFile(path, image, error);
}

bool
atomicWriteFile(const std::string &path, std::span<const uint8_t> image,
                std::string *error)
{
    // Unique-enough temp name: concurrent writers of the same final path
    // never collide on the temp file, and the rename at the end is the
    // single atomic commit point.
    static std::atomic<uint64_t> counter{0};
    const std::string tmp = path + ".tmp." + std::to_string(::getpid()) +
                            "." + std::to_string(counter.fetch_add(1));
    const int fd =
        ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_EXCL | O_CLOEXEC, 0644);
    if (fd < 0) {
        if (error)
            *error = tmp + ": " + std::strerror(errno);
        return false;
    }
    size_t off = 0;
    while (off < image.size()) {
        const ssize_t n = ::write(fd, image.data() + off, image.size() - off);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            if (error)
                *error = tmp + ": write: " + std::strerror(errno);
            ::close(fd);
            ::unlink(tmp.c_str());
            return false;
        }
        off += static_cast<size_t>(n);
    }
    ::close(fd);
    if (::rename(tmp.c_str(), path.c_str()) != 0) {
        if (error)
            *error = path + ": rename: " + std::strerror(errno);
        ::unlink(tmp.c_str());
        return false;
    }
    return true;
}

const SectionEntry *
BlobView::findSection(uint32_t id) const
{
    for (const SectionEntry &e : sections_)
        if (e.id == id)
            return &e;
    return nullptr;
}

std::span<const uint8_t>
BlobView::sectionBytes(uint32_t id) const
{
    const SectionEntry *e = findSection(id);
    if (e == nullptr)
        return {};
    return {bytes_.data() + e->offset, static_cast<size_t>(e->size)};
}

std::shared_ptr<const BlobView>
BlobView::validate(std::shared_ptr<const void> keepalive,
                   std::span<const uint8_t> bytes, std::string *error)
{
    const auto fail = [&](const std::string &msg) {
        if (error)
            *error = msg;
        return nullptr;
    };

    if (bytes.size() < sizeof(FileHeader))
        return fail("blob truncated: " + std::to_string(bytes.size()) +
                    " bytes is smaller than the header");
    FileHeader h;
    std::memcpy(&h, bytes.data(), sizeof(h));
    if (std::memcmp(h.magic, kMagic, sizeof(kMagic)) != 0)
        return fail("bad magic: not a sparseap store blob");
    if (h.version != kFormatVersion)
        return fail("unsupported format version " +
                    std::to_string(h.version) + " (expected " +
                    std::to_string(kFormatVersion) + ")");
    if (h.fileSize != bytes.size())
        return fail("size mismatch: header declares " +
                    std::to_string(h.fileSize) + " bytes, file has " +
                    std::to_string(bytes.size()));
    const uint64_t table_bytes =
        static_cast<uint64_t>(h.sectionCount) * sizeof(SectionEntry);
    if (h.sectionCount > (1u << 20) ||
        sizeof(FileHeader) + table_bytes > bytes.size()) {
        return fail("section table out of bounds: " +
                    std::to_string(h.sectionCount) + " sections");
    }
    if (hash64(bytes.data() + sizeof(FileHeader),
               bytes.size() - sizeof(FileHeader)) != h.checksum)
        return fail("payload checksum mismatch (corrupt blob)");

    auto view = std::shared_ptr<BlobView>(new BlobView());
    view->keepalive_ = std::move(keepalive);
    view->bytes_ = bytes;
    view->sections_ = {reinterpret_cast<const SectionEntry *>(
                           bytes.data() + sizeof(FileHeader)),
                       h.sectionCount};

    for (size_t i = 0; i < view->sections_.size(); ++i) {
        const SectionEntry &e = view->sections_[i];
        if (e.offset % kSectionAlign != 0)
            return fail("section " + std::to_string(e.id) +
                        ": misaligned offset");
        if (e.size > bytes.size() || e.offset > bytes.size() - e.size)
            return fail("section " + std::to_string(e.id) +
                        ": payload out of bounds");
        if (hash64(bytes.data() + e.offset, e.size) != e.checksum)
            return fail("section " + std::to_string(e.id) +
                        ": checksum mismatch");
        for (size_t j = 0; j < i; ++j)
            if (view->sections_[j].id == e.id)
                return fail("duplicate section id " +
                            std::to_string(e.id));
    }
    return view;
}

std::shared_ptr<const BlobView>
BlobView::open(const std::string &path, std::string *error)
{
    std::shared_ptr<const MappedFile> mf = MappedFile::open(path, error);
    if (!mf)
        return nullptr;
    std::span<const uint8_t> bytes = mf->bytes();
    std::shared_ptr<const BlobView> v =
        validate(std::move(mf), bytes, error);
    if (!v && error)
        *error = path + ": " + *error;
    return v;
}

std::shared_ptr<const BlobView>
BlobView::fromBuffer(std::vector<uint8_t> image, std::string *error)
{
    auto owned =
        std::make_shared<const std::vector<uint8_t>>(std::move(image));
    return validate(owned, {owned->data(), owned->size()}, error);
}

} // namespace store
} // namespace sparseap
