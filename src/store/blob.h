/**
 * @file
 * Blob container: writing and validated reading of the store format
 * described in store/format.h.
 *
 * BlobWriter assembles sections append-only in memory and commits the
 * finished image with write-to-temp + atomic rename, so readers only
 * ever observe complete, checksummed files (single-writer/multi-reader;
 * concurrent writers of the same path race benignly — one rename wins
 * and every reader gets a valid blob either way).
 *
 * BlobView opens a blob read-only via mmap and validates *everything*
 * before handing out data: magic, version, declared vs actual size,
 * section-table bounds, per-section offsets/alignment, and both the
 * whole-payload and per-section checksums. A blob that fails any check
 * is reported as an error string — never a crash — so cache corruption
 * degrades to a cache miss.
 */

#ifndef SPARSEAP_STORE_BLOB_H
#define SPARSEAP_STORE_BLOB_H

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "store/format.h"
#include "store/mapped_file.h"

namespace sparseap {
namespace store {

/** Append-only section assembler for one artifact blob. */
class BlobWriter
{
  public:
    explicit BlobWriter(ArtifactKind kind, uint64_t digest);

    /**
     * Append one section. Ids must be unique within the blob;
     * @p elem_size records the element width of typed array sections
     * (BlobView::sectionAs enforces it), 0 for plain bytes.
     */
    void addSection(uint32_t id, const void *data, size_t bytes,
                    uint32_t elem_size);

    /** Append a typed array section. */
    template <typename T>
    void
    addSpan(uint32_t id, std::span<const T> v)
    {
        static_assert(std::is_trivially_copyable_v<T>);
        addSection(id, v.data(), v.size() * sizeof(T),
                   static_cast<uint32_t>(sizeof(T)));
    }

    /** Append a byte-string section. */
    void
    addString(uint32_t id, std::string_view s)
    {
        addSection(id, s.data(), s.size(), 0);
    }

    /** Assemble the complete file image (header + index + payload). */
    std::vector<uint8_t> finalize() const;

    /**
     * Assemble and commit to @p path via temp file + atomic rename.
     * @return false with @p *error set on I/O failure.
     */
    bool commit(const std::string &path, std::string *error) const;

    uint64_t digest() const { return digest_; }

  private:
    ArtifactKind kind_;
    uint64_t digest_;
    struct Pending
    {
        uint32_t id;
        uint32_t elemSize;
        std::vector<uint8_t> bytes;
    };
    std::vector<Pending> sections_;
};

/** Write @p image to @p path via temp file + atomic rename. */
bool atomicWriteFile(const std::string &path,
                     std::span<const uint8_t> image, std::string *error);

/** Validated read-only view of one blob (see file comment). */
class BlobView
{
  public:
    /**
     * Map and validate @p path.
     * @return the view, or nullptr with @p *error describing the first
     * failed check.
     */
    static std::shared_ptr<const BlobView>
    open(const std::string &path, std::string *error);

    /** Validate an in-memory image (tests; fault injection). */
    static std::shared_ptr<const BlobView>
    fromBuffer(std::vector<uint8_t> image, std::string *error);

    ArtifactKind kind() const { return static_cast<ArtifactKind>(header().kind); }
    uint64_t digest() const { return header().digest; }
    size_t fileSize() const { return bytes_.size(); }

    /** All section-table entries, in file order. */
    std::span<const SectionEntry>
    sections() const
    {
        return sections_;
    }

    /** @return the entry for @p id, or nullptr when absent. */
    const SectionEntry *findSection(uint32_t id) const;

    /** @return section payload bytes; empty span when absent. */
    std::span<const uint8_t> sectionBytes(uint32_t id) const;

    /**
     * Typed view of an array section. The element size recorded at
     * write time must match sizeof(T) and the payload must divide
     * evenly; mismatches return an empty span (decoders treat that as
     * a malformed artifact).
     */
    template <typename T>
    std::span<const T>
    sectionAs(uint32_t id) const
    {
        static_assert(std::is_trivially_copyable_v<T>);
        const SectionEntry *e = findSection(id);
        if (e == nullptr || e->elemSize != sizeof(T) ||
            e->size % sizeof(T) != 0) {
            return {};
        }
        const uint8_t *p = bytes_.data() + e->offset;
        if (reinterpret_cast<uintptr_t>(p) % alignof(T) != 0)
            return {};
        return {reinterpret_cast<const T *>(p), e->size / sizeof(T)};
    }

    /**
     * Keep-alive handle for structures whose spans point into this
     * view; aliases the mapping (or buffer) ownership.
     */
    std::shared_ptr<const void> backing() const { return keepalive_; }

  private:
    BlobView() = default;

    static std::shared_ptr<const BlobView>
    validate(std::shared_ptr<const void> keepalive,
             std::span<const uint8_t> bytes, std::string *error);

    const FileHeader &
    header() const
    {
        return *reinterpret_cast<const FileHeader *>(bytes_.data());
    }

    std::shared_ptr<const void> keepalive_;
    std::span<const uint8_t> bytes_;
    std::span<const SectionEntry> sections_;
};

} // namespace store
} // namespace sparseap

#endif // SPARSEAP_STORE_BLOB_H
