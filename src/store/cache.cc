#include "store/cache.h"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <mutex>

#include <fcntl.h>
#include <unistd.h>

#include "common/logging.h"
#include "common/options.h"
#include "telemetry/metrics.h"

namespace fs = std::filesystem;

namespace sparseap {
namespace store {

namespace {

// Process-wide cache.* counters, summed over every ArtifactCache
// instance (the global cache and scoped test overrides alike).
telemetry::Counter &
cacheHits()
{
    static telemetry::Counter c("cache.hits");
    return c;
}
telemetry::Counter &
cacheMisses()
{
    static telemetry::Counter c("cache.misses");
    return c;
}
telemetry::Counter &
cacheInvalid()
{
    static telemetry::Counter c("cache.invalid");
    return c;
}
telemetry::Counter &
cacheStores()
{
    static telemetry::Counter c("cache.stores");
    return c;
}
telemetry::Counter &
cacheBytesRead()
{
    static telemetry::Counter c("cache.bytes_read");
    return c;
}
telemetry::Counter &
cacheBytesWritten()
{
    static telemetry::Counter c("cache.bytes_written");
    return c;
}
telemetry::Counter &
cacheJournalLines()
{
    static telemetry::Counter c("cache.journal_lines");
    return c;
}

std::mutex g_override_mutex;
std::shared_ptr<const ArtifactCache> g_override; // NOLINT: guarded above

/** Append one line to @p path (O_APPEND: one atomic write per line). */
void
appendLine(const std::string &path, const std::string &line)
{
    const int fd = ::open(path.c_str(),
                          O_WRONLY | O_CREAT | O_APPEND | O_CLOEXEC, 0644);
    if (fd < 0)
        return;
    size_t off = 0;
    while (off < line.size()) {
        const ssize_t n =
            ::write(fd, line.data() + off, line.size() - off);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            break;
        }
        off += static_cast<size_t>(n);
    }
    ::close(fd);
}

} // namespace

std::string
digestHex(uint64_t digest)
{
    char buf[17];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(digest));
    return buf;
}

ArtifactCache::ArtifactCache(std::string dir) : dir_(std::move(dir)) {}

std::string
ArtifactCache::objectPath(uint64_t digest) const
{
    const std::string hex = digestHex(digest);
    return dir_ + "/objects/" + hex.substr(0, 2) + "/" + hex + ".apb";
}

std::string
ArtifactCache::journalPath() const
{
    return dir_ + "/journal.log";
}

std::shared_ptr<const BlobView>
ArtifactCache::load(ArtifactKind kind, uint64_t digest) const
{
    if (!enabled())
        return nullptr;
    const std::string path = objectPath(digest);
    std::error_code ec;
    if (!fs::exists(path, ec)) {
        misses_.fetch_add(1, std::memory_order_relaxed);
        cacheMisses().add(1);
        return nullptr;
    }
    std::string error;
    std::shared_ptr<const BlobView> blob = BlobView::open(path, &error);
    if (blob && (blob->kind() != kind || blob->digest() != digest)) {
        error = path + ": artifact kind/digest disagrees with its name";
        blob = nullptr;
    }
    if (!blob) {
        warn("artifact cache: ", error, " (recomputing)");
        invalid_.fetch_add(1, std::memory_order_relaxed);
        misses_.fetch_add(1, std::memory_order_relaxed);
        cacheInvalid().add(1);
        cacheMisses().add(1);
        return nullptr;
    }
    hits_.fetch_add(1, std::memory_order_relaxed);
    cacheHits().add(1);
    cacheBytesRead().add(blob->fileSize());
    return blob;
}

bool
ArtifactCache::store(const BlobWriter &w) const
{
    if (!enabled())
        return false;
    const std::string path = objectPath(w.digest());
    std::error_code ec;
    fs::create_directories(fs::path(path).parent_path(), ec);
    const std::vector<uint8_t> image = w.finalize();
    std::string error;
    if (!atomicWriteFile(path, image, &error)) {
        if (store_errors_.fetch_add(1, std::memory_order_relaxed) == 0)
            warn("artifact cache: ", error, " (caching disabled for it)");
        return false;
    }
    stores_.fetch_add(1, std::memory_order_relaxed);
    cacheStores().add(1);
    cacheBytesWritten().add(image.size());
    const FileHeader *h =
        reinterpret_cast<const FileHeader *>(image.data());
    appendLine(journalPath(),
               std::string("store ") +
                   artifactKindName(static_cast<ArtifactKind>(h->kind)) +
                   " " + digestHex(w.digest()) + " " +
                   std::to_string(image.size()) + "\n");
    cacheJournalLines().add(1);
    return true;
}

CacheStats
ArtifactCache::stats() const
{
    CacheStats s;
    s.hits = hits_.load(std::memory_order_relaxed);
    s.misses = misses_.load(std::memory_order_relaxed);
    s.invalid = invalid_.load(std::memory_order_relaxed);
    s.stores = stores_.load(std::memory_order_relaxed);
    s.storeErrors = store_errors_.load(std::memory_order_relaxed);
    return s;
}

void
ArtifactCache::resetStats() const
{
    hits_.store(0, std::memory_order_relaxed);
    misses_.store(0, std::memory_order_relaxed);
    invalid_.store(0, std::memory_order_relaxed);
    stores_.store(0, std::memory_order_relaxed);
    store_errors_.store(0, std::memory_order_relaxed);
}

std::vector<std::string>
ArtifactCache::listObjects() const
{
    std::vector<std::string> out;
    if (!enabled())
        return out;
    std::error_code ec;
    const fs::path root = fs::path(dir_) / "objects";
    if (!fs::is_directory(root, ec))
        return out;
    for (fs::recursive_directory_iterator
             it(root, fs::directory_options::skip_permission_denied, ec),
         end;
         !ec && it != end; it.increment(ec)) {
        if (it->is_regular_file(ec) && it->path().extension() == ".apb")
            out.push_back(it->path().string());
    }
    std::sort(out.begin(), out.end());
    return out;
}

ArtifactCache::SweepResult
ArtifactCache::gc(bool remove_all) const
{
    SweepResult r;
    if (!enabled())
        return r;
    std::error_code ec;
    const fs::path root = fs::path(dir_) / "objects";
    if (!fs::is_directory(root, ec))
        return r;

    std::vector<fs::path> victims;
    for (fs::recursive_directory_iterator
             it(root, fs::directory_options::skip_permission_denied, ec),
         end;
         !ec && it != end; it.increment(ec)) {
        if (!it->is_regular_file(ec))
            continue;
        const fs::path p = it->path();
        if (p.extension() != ".apb") {
            // Stale temp file from an interrupted writer: always drop.
            victims.push_back(p);
            continue;
        }
        ++r.scanned;
        bool drop = remove_all;
        if (!drop) {
            std::string error;
            if (!BlobView::open(p.string(), &error)) {
                ++r.invalid;
                drop = true;
            }
        }
        if (drop)
            victims.push_back(p);
    }
    for (const fs::path &p : victims) {
        std::error_code size_ec;
        const uint64_t bytes = fs::file_size(p, size_ec);
        std::error_code rm_ec;
        if (fs::remove(p, rm_ec)) {
            ++r.removed;
            if (!size_ec)
                r.bytesRemoved += bytes;
        }
    }
    return r;
}

const ArtifactCache &
ArtifactCache::global()
{
    {
        std::lock_guard<std::mutex> lock(g_override_mutex);
        if (g_override)
            return *g_override;
    }
    static const ArtifactCache def(globalOptions().cacheDir);
    return def;
}

ScopedCacheOverride::ScopedCacheOverride(std::string dir)
    : cache_(std::make_shared<const ArtifactCache>(std::move(dir)))
{
    std::lock_guard<std::mutex> lock(g_override_mutex);
    previous_ = g_override;
    g_override = cache_;
}

ScopedCacheOverride::~ScopedCacheOverride()
{
    std::lock_guard<std::mutex> lock(g_override_mutex);
    g_override = previous_;
}

} // namespace store
} // namespace sparseap
