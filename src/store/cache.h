/**
 * @file
 * Content-addressed artifact cache over blob files.
 *
 * Layout (loose objects, one blob per artifact):
 *
 *   <dir>/objects/<hh>/<16-hex-digest>.apb   blobs, hh = first digest byte
 *   <dir>/journal.log                        append-only store journal
 *
 * The digest is the cache key: a DigestBuilder fold of (workload
 * identity, generation options, profile/partition configuration, format
 * version), computed by the caller before looking anything up. Blobs
 * embed their digest and kind, so a renamed or cross-linked file is
 * rejected on load and counted as a miss — every failure mode of the
 * cache degrades to recomputation, never to wrong results.
 *
 * Concurrency follows sparkey's single-writer/multi-reader discipline
 * per object: writers assemble the complete image and commit with
 * write-to-temp + atomic rename, so readers only ever map complete,
 * checksummed files. Two processes (or threads) racing to fill the same
 * key both write valid images of identical content; one rename wins and
 * both end up reading a valid blob. The journal records one line per
 * committed store — the warm-cache CI job asserts it does not grow on a
 * second run.
 *
 * Controlled by SPARSEAP_CACHE_DIR / SPARSEAP_CACHE=off (see
 * common/options.h); an empty directory string disables the cache and
 * every call becomes a cheap no-op.
 */

#ifndef SPARSEAP_STORE_CACHE_H
#define SPARSEAP_STORE_CACHE_H

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "store/blob.h"

namespace sparseap {
namespace store {

/** Hit/miss/store counters of one cache instance. */
struct CacheStats
{
    uint64_t hits = 0;
    uint64_t misses = 0;   ///< lookups that found no usable blob
    uint64_t invalid = 0;  ///< subset of misses: file present but rejected
    uint64_t stores = 0;   ///< blobs committed
    uint64_t storeErrors = 0;
};

/** Content-addressed blob store (see file comment). */
class ArtifactCache
{
  public:
    /** @param dir cache root; empty disables the cache. */
    explicit ArtifactCache(std::string dir);

    bool enabled() const { return !dir_.empty(); }
    const std::string &dir() const { return dir_; }

    /** Object path for @p digest (valid even when disabled). */
    std::string objectPath(uint64_t digest) const;

    /** Journal path. */
    std::string journalPath() const;

    /**
     * Look up @p digest. @return a validated view whose kind and
     * embedded digest match, or nullptr (a miss). Never raises: damaged
     * or foreign files are counted invalid and treated as misses.
     */
    std::shared_ptr<const BlobView> load(ArtifactKind kind,
                                         uint64_t digest) const;

    /**
     * Commit @p w's image under its digest (temp file + atomic rename)
     * and append a journal line. I/O failures are counted and warned
     * once per process, not fatal — the cache is an accelerator.
     * @return true when the blob was committed
     */
    bool store(const BlobWriter &w) const;

    CacheStats stats() const;
    void resetStats() const;

    /** One gc/verify sweep result. */
    struct SweepResult
    {
        size_t scanned = 0;
        size_t removed = 0;
        size_t invalid = 0; ///< blobs failing validation
        uint64_t bytesRemoved = 0;
    };

    /**
     * Scan every object; drop stale temp files and blobs that fail
     * validation (or every object when @p remove_all).
     */
    SweepResult gc(bool remove_all = false) const;

    /** All object paths, sorted (for ls/verify). */
    std::vector<std::string> listObjects() const;

    /**
     * Process-wide cache configured from SPARSEAP_CACHE_DIR, unless a
     * ScopedCacheOverride is active.
     */
    static const ArtifactCache &global();

  private:
    std::string dir_;
    mutable std::atomic<uint64_t> hits_{0};
    mutable std::atomic<uint64_t> misses_{0};
    mutable std::atomic<uint64_t> invalid_{0};
    mutable std::atomic<uint64_t> stores_{0};
    mutable std::atomic<uint64_t> store_errors_{0};
};

/**
 * RAII replacement of ArtifactCache::global() for tests and benches
 * (e.g. pointing it at a fresh temp directory, or disabling it with an
 * empty dir). Nests; restores the previous cache on destruction.
 */
class ScopedCacheOverride
{
  public:
    explicit ScopedCacheOverride(std::string dir);
    ~ScopedCacheOverride();

    ScopedCacheOverride(const ScopedCacheOverride &) = delete;
    ScopedCacheOverride &operator=(const ScopedCacheOverride &) = delete;

    const ArtifactCache &cache() const { return *cache_; }

  private:
    std::shared_ptr<const ArtifactCache> cache_;
    std::shared_ptr<const ArtifactCache> previous_;
};

/** Hex string (16 digits) of a digest, used in file and journal names. */
std::string digestHex(uint64_t digest);

} // namespace store
} // namespace sparseap

#endif // SPARSEAP_STORE_CACHE_H
