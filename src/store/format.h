/**
 * @file
 * On-disk binary format for compiled automata artifacts.
 *
 * A store blob is a single file shaped like sparkey's data files: an
 * append-only payload of *sections* followed by a section table (the
 * index) and fronted by a fixed 64-byte header. Every section starts on
 * a 64-byte boundary, so a read-only mmap of the file hands the dense
 * execution core cache-line-aligned word vectors it can sweep in place —
 * no deserialization, no copies.
 *
 *   +--------------------+  offset 0
 *   | FileHeader (64 B)  |  magic, version, kind, digest, checksums
 *   +--------------------+  offset 64
 *   | SectionEntry[n]    |  id, element size, offset, size, checksum
 *   +--------------------+  aligned to 64
 *   | section payload    |  each section 64-byte aligned, zero padded
 *   | ...                |
 *   +--------------------+  fileSize
 *
 * Integrity: the header carries a checksum of everything after the
 * header (section table + payload), and every section additionally
 * carries its own checksum so `apstore verify` can localize damage. Any
 * bit flip or truncation therefore fails validation before a decoder
 * ever walks the data. The header also embeds the content-address digest
 * the cache filed the blob under, so a renamed or cross-linked file is
 * rejected on open.
 *
 * All integers are little-endian host order: blobs are a same-machine
 * cache format, not an interchange format (the text serializer in
 * nfa/serialize.h remains the portable, human-editable interchange
 * form). The format version is part of every cache key, so a layout
 * change simply misses the cache instead of misreading old files.
 */

#ifndef SPARSEAP_STORE_FORMAT_H
#define SPARSEAP_STORE_FORMAT_H

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <string_view>

namespace sparseap {
namespace store {

/** First 8 bytes of every store blob. */
constexpr char kMagic[8] = {'S', 'P', 'A', 'P', 'S', 'T', 'O', '1'};

/** Bumped on any layout change; part of every cache key.
 *  v2: cache-line-aligned accept-row stride + hot-DFA sections.
 *  v3: input-skip scan tables (dense quiescent scan mask + per-state
 *      DFA skip index/bits sections). */
constexpr uint32_t kFormatVersion = 3;

/** Section payload alignment (one cache line; see file comment). */
constexpr uint64_t kSectionAlign = 64;

/** What a blob contains (one artifact per blob). */
enum class ArtifactKind : uint32_t {
    Raw = 0,           ///< untyped sections (tests, future artifacts)
    FlatAutomaton = 1, ///< flattened automaton incl. dense view
    Profile = 2,       ///< hot/cold profile of one input prefix
    Partition = 3,     ///< prepared partition incl. fragment apps
};

/** @return "flat", "profile", ... for table output. */
const char *artifactKindName(ArtifactKind kind);

/** Fixed 64-byte file header. */
struct FileHeader
{
    char magic[8];         ///< kMagic
    uint32_t version;      ///< kFormatVersion
    uint32_t kind;         ///< ArtifactKind
    uint64_t fileSize;     ///< total file size in bytes
    uint64_t digest;       ///< content-address key of this artifact
    uint64_t checksum;     ///< hash64 of bytes [64, fileSize)
    uint32_t sectionCount; ///< entries in the section table
    uint8_t pad[20];       ///< zero
};
static_assert(sizeof(FileHeader) == 64, "header must stay 64 bytes");

/** One section-table entry (the blob's index). */
struct SectionEntry
{
    uint32_t id;       ///< artifact-defined section id (unique per blob)
    uint32_t elemSize; ///< element size for typed sections, 0 for bytes
    uint64_t offset;   ///< from file start; multiple of kSectionAlign
    uint64_t size;     ///< payload bytes (excluding alignment padding)
    uint64_t checksum; ///< hash64 of the payload bytes
};
static_assert(sizeof(SectionEntry) == 32, "entry must stay 32 bytes");

/** @return @p n rounded up to the section alignment. */
constexpr uint64_t
alignUp(uint64_t n)
{
    return (n + (kSectionAlign - 1)) & ~(kSectionAlign - 1);
}

/** Finalizing 64-bit mix (Murmur3). */
constexpr uint64_t
mix64(uint64_t x)
{
    x ^= x >> 33;
    x *= 0xff51afd7ed558ccdull;
    x ^= x >> 33;
    x *= 0xc4ceb9fe1a85ec53ull;
    x ^= x >> 33;
    return x;
}

/**
 * Checksum/digest hash over a byte range: 8 bytes per round through
 * mix64. Deterministic across processes (no wall clock, no ASLR), which
 * the content-addressed cache depends on.
 */
inline uint64_t
hash64(const void *data, size_t len, uint64_t seed = 0)
{
    const uint8_t *p = static_cast<const uint8_t *>(data);
    uint64_t h = seed ^ (0x9e3779b97f4a7c15ull * (len + 1));
    size_t i = 0;
    for (; i + 8 <= len; i += 8) {
        uint64_t w;
        std::memcpy(&w, p + i, 8);
        h = mix64(h ^ w) + 0x2545f4914f6cdd1dull;
    }
    if (i < len) {
        uint64_t w = 0;
        std::memcpy(&w, p + i, len - i);
        h = mix64(h ^ w) + 0x2545f4914f6cdd1dull;
    }
    return mix64(h);
}

/**
 * Incremental digest builder for cache keys. Every field is folded with
 * a type-tagged round so ("ab", "c") and ("a", "bc") digest differently.
 */
class DigestBuilder
{
  public:
    DigestBuilder() : h_(mix64(kFormatVersion + 0x5349u)) {}

    DigestBuilder &
    add(uint64_t v)
    {
        h_ = mix64(h_ ^ mix64(v + 1)) + 0x2545f4914f6cdd1dull;
        return *this;
    }

    DigestBuilder &
    add(std::string_view s)
    {
        h_ = mix64(h_ ^ hash64(s.data(), s.size(), 0x73u));
        return *this;
    }

    uint64_t digest() const { return mix64(h_); }

  private:
    uint64_t h_;
};

} // namespace store
} // namespace sparseap

#endif // SPARSEAP_STORE_FORMAT_H
