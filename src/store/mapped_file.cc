#include "store/mapped_file.h"

#include <cerrno>
#include <cstring>

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

namespace sparseap {
namespace store {

std::shared_ptr<const MappedFile>
MappedFile::open(const std::string &path, std::string *error)
{
    const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
    if (fd < 0) {
        if (error)
            *error = path + ": " + std::strerror(errno);
        return nullptr;
    }
    struct stat st;
    if (::fstat(fd, &st) != 0 || !S_ISREG(st.st_mode)) {
        if (error)
            *error = path + ": not a regular file";
        ::close(fd);
        return nullptr;
    }

    auto mf = std::shared_ptr<MappedFile>(new MappedFile());
    mf->size_ = static_cast<size_t>(st.st_size);
    if (mf->size_ > 0) {
        void *p = ::mmap(nullptr, mf->size_, PROT_READ, MAP_PRIVATE, fd, 0);
        if (p == MAP_FAILED) {
            if (error)
                *error = path + ": mmap: " + std::strerror(errno);
            ::close(fd);
            return nullptr;
        }
        mf->data_ = static_cast<const uint8_t *>(p);
    }
    // The mapping outlives the descriptor.
    ::close(fd);
    return mf;
}

MappedFile::~MappedFile()
{
    if (data_ != nullptr)
        ::munmap(const_cast<uint8_t *>(data_), size_);
}

} // namespace store
} // namespace sparseap
