/**
 * @file
 * Read-only memory-mapped file, the substrate of zero-copy artifact
 * loading: the mapping is opened once, validated once, and then shared
 * (via shared_ptr) by every structure whose spans point into it.
 */

#ifndef SPARSEAP_STORE_MAPPED_FILE_H
#define SPARSEAP_STORE_MAPPED_FILE_H

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <string>

namespace sparseap {
namespace store {

/** An open read-only mapping; unmapped on destruction. */
class MappedFile
{
  public:
    /**
     * Map @p path read-only.
     * @return the mapping, or nullptr with @p *error set. An empty file
     * maps successfully with size() == 0.
     */
    static std::shared_ptr<const MappedFile>
    open(const std::string &path, std::string *error);

    ~MappedFile();

    MappedFile(const MappedFile &) = delete;
    MappedFile &operator=(const MappedFile &) = delete;

    const uint8_t *data() const { return data_; }
    size_t size() const { return size_; }

    std::span<const uint8_t>
    bytes() const
    {
        return {data_, size_};
    }

  private:
    MappedFile() = default;

    const uint8_t *data_ = nullptr;
    size_t size_ = 0;
};

} // namespace store
} // namespace sparseap

#endif // SPARSEAP_STORE_MAPPED_FILE_H
