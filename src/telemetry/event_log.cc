#include "telemetry/event_log.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <mutex>

#include "common/logging.h"
#include "telemetry/trace.h"

namespace sparseap {
namespace telemetry {

namespace {

/** Level value meaning "no sink configured". */
constexpr int kNoSink = 4;

struct Sink
{
    std::mutex mutex;
    std::ofstream file; ///< open iff !toStderr
    bool toStderr = false;

    void
    write(const std::string &line)
    {
        std::lock_guard<std::mutex> lock(mutex);
        if (toStderr) {
            std::fputs(line.c_str(), stderr);
            std::fputc('\n', stderr);
        } else if (file) {
            file << line << '\n';
            file.flush();
        }
    }
};

std::atomic<int> g_min_level{kNoSink};
std::mutex g_sink_mutex;
std::shared_ptr<Sink> g_sink; // NOLINT: guarded above

std::shared_ptr<Sink>
currentSink()
{
    std::lock_guard<std::mutex> lock(g_sink_mutex);
    return g_sink;
}

void
initFromEnvironment()
{
    const char *path = std::getenv("SPARSEAP_LOG");
    if (!path || !*path)
        return;
    LogLevel level = LogLevel::Info;
    if (const char *lv = std::getenv("SPARSEAP_LOG_LEVEL")) {
        if (*lv && !parseLogLevel(lv, &level))
            warn("SPARSEAP_LOG_LEVEL: unknown level '", lv,
                 "', using info");
    }
    initEventLog(path, level);
}

std::once_flag g_env_once;

void
ensureEnvInit()
{
    std::call_once(g_env_once, initFromEnvironment);
}

void
appendJsonString(std::string *out, std::string_view v)
{
    *out += '"';
    for (char c : v) {
        const auto u = static_cast<unsigned char>(c);
        if (c == '"' || c == '\\') {
            *out += '\\';
            *out += c;
        } else if (u < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof(buf), "\\u%04x", u);
            *out += buf;
        } else {
            *out += c;
        }
    }
    *out += '"';
}

} // namespace

const char *
logLevelName(LogLevel level)
{
    switch (level) {
    case LogLevel::Debug:
        return "debug";
    case LogLevel::Info:
        return "info";
    case LogLevel::Warn:
        return "warn";
    case LogLevel::Error:
        return "error";
    }
    return "?";
}

bool
parseLogLevel(const std::string &name, LogLevel *out)
{
    if (name == "debug")
        *out = LogLevel::Debug;
    else if (name == "info")
        *out = LogLevel::Info;
    else if (name == "warn")
        *out = LogLevel::Warn;
    else if (name == "error")
        *out = LogLevel::Error;
    else
        return false;
    return true;
}

void
initEventLog(const std::string &path, LogLevel level)
{
    auto sink = std::make_shared<Sink>();
    if (path == "-" || path == "stderr") {
        sink->toStderr = true;
    } else {
        sink->file.open(path, std::ios::app);
        if (!sink->file) {
            warn("SPARSEAP_LOG: cannot open '", path, "' for append");
            return;
        }
    }
    {
        std::lock_guard<std::mutex> lock(g_sink_mutex);
        g_sink = std::move(sink);
    }
    g_min_level.store(static_cast<int>(level),
                      std::memory_order_release);
}

void
closeEventLog()
{
    g_min_level.store(kNoSink, std::memory_order_release);
    std::lock_guard<std::mutex> lock(g_sink_mutex);
    g_sink = nullptr;
}

bool
eventLogEnabled(LogLevel level)
{
    ensureEnvInit();
    const int min = g_min_level.load(std::memory_order_acquire);
    if (min == kNoSink) {
        // No sink: warn/error still reach the human log (see dtor).
        return level >= LogLevel::Warn;
    }
    return static_cast<int>(level) >= min;
}

LogEvent::LogEvent(LogLevel level, const char *event) : level_(level)
{
    if (!eventLogEnabled(level))
        return;
    live_ = true;
    line_ = "{\"ts_us\":";
    line_ += std::to_string(nowMicros());
    line_ += ",\"level\":\"";
    line_ += logLevelName(level);
    line_ += "\",\"event\":";
    appendJsonString(&line_, event);
}

LogEvent &
LogEvent::str(const char *key, std::string_view value)
{
    if (!live_)
        return *this;
    line_ += ",\"";
    line_ += key;
    line_ += "\":";
    appendJsonString(&line_, value);
    return *this;
}

LogEvent &
LogEvent::num(const char *key, uint64_t value)
{
    if (!live_)
        return *this;
    line_ += ",\"";
    line_ += key;
    line_ += "\":";
    line_ += std::to_string(value);
    return *this;
}

LogEvent::~LogEvent()
{
    if (!live_)
        return;
    line_ += '}';
    if (auto sink = currentSink()) {
        sink->write(line_);
        return;
    }
    // Sink-less fallback: keep serve-path incidents visible on stderr.
    if (level_ >= LogLevel::Warn)
        warn(line_);
}

} // namespace telemetry
} // namespace sparseap
