/**
 * @file
 * Leveled, structured JSON event log for the serving path.
 *
 * Where the human log (`common/logging.h` warn()/inform()) prints prose
 * for an operator's terminal, the event log appends one machine-
 * parseable JSON object per line for log pipelines:
 *
 *   {"ts_us":12345,"level":"warn","event":"serve.conn_corrupt",
 *    "conn":7,"reason":"oversized frame"}
 *
 * `ts_us` is telemetry::nowMicros() (monotonic since process start,
 * the trace timebase, so log lines and trace spans correlate).
 *
 * Enable with SPARSEAP_LOG=<file|-|stderr> and filter with
 * SPARSEAP_LOG_LEVEL=debug|info|warn|error (default info), or
 * programmatically via initEventLog()/closeEventLog() (tests, tools).
 * Disabled, an event costs one relaxed atomic load. When no sink is
 * configured, warn/error events still fall back to the human log so
 * serve-path incidents are never silent.
 *
 * Usage (the builder emits on destruction):
 *
 *   LogEvent(LogLevel::Warn, "serve.request.slow")
 *       .num("request_id", id).str("tenant", tenant);
 *
 * See docs/OBSERVABILITY.md §Event log; tested by
 * tests/test_observability.cc; schema-checked by tools/check_log.py.
 */

#ifndef SPARSEAP_TELEMETRY_EVENT_LOG_H
#define SPARSEAP_TELEMETRY_EVENT_LOG_H

#include <cstdint>
#include <string>
#include <string_view>

namespace sparseap {
namespace telemetry {

enum class LogLevel : uint8_t { Debug = 0, Info = 1, Warn = 2, Error = 3 };

/** "debug" / "info" / "warn" / "error". */
const char *logLevelName(LogLevel level);

/** Parse a level name; @return false (and leave @p out) on garbage. */
bool parseLogLevel(const std::string &name, LogLevel *out);

/**
 * Open @p path ("-"/"stderr" => stderr; otherwise append to the file)
 * as the event sink at @p level. Replaces any active sink, including
 * the SPARSEAP_LOG-driven one.
 */
void initEventLog(const std::string &path, LogLevel level);

/** Flush and drop the sink (tests); events fall back to warn() again. */
void closeEventLog();

/** @return true when an event at @p level would be written. */
bool eventLogEnabled(LogLevel level);

/** One structured event; renders and appends on destruction. */
class LogEvent
{
  public:
    LogEvent(LogLevel level, const char *event);
    ~LogEvent();

    LogEvent(const LogEvent &) = delete;
    LogEvent &operator=(const LogEvent &) = delete;

    LogEvent &str(const char *key, std::string_view value);
    LogEvent &num(const char *key, uint64_t value);

  private:
    bool live_ = false; ///< level passed the sink filter at construction
    LogLevel level_;
    std::string line_; ///< rendered JSON members so far
};

} // namespace telemetry
} // namespace sparseap

#endif // SPARSEAP_TELEMETRY_EVENT_LOG_H
