#include "telemetry/exposition.h"

#include <cctype>
#include <cstdio>
#include <fstream>
#include <map>
#include <ostream>
#include <sstream>
#include <vector>

#include "telemetry/labels.h"

namespace sparseap {
namespace telemetry {

namespace {

std::string
escapeLabelValue(const std::string &v)
{
    std::string out;
    out.reserve(v.size());
    for (char c : v) {
        if (c == '"' || c == '\\') {
            out += '\\';
            out += c;
        } else if (c == '\n') {
            out += "\\n";
        } else {
            out += c;
        }
    }
    return out;
}

/** Counters grouped by base name: unlabeled values and their labeled
 *  series print under one TYPE header. */
struct CounterGroup
{
    bool hasPlain = false;
    uint64_t plain = 0;
    std::vector<std::pair<std::string, uint64_t>> labeled;
};

} // namespace

std::string
prometheusName(const std::string &name)
{
    std::string out = "sparseap_";
    out.reserve(out.size() + name.size());
    for (char c : name) {
        const auto u = static_cast<unsigned char>(c);
        out += std::isalnum(u) ? c : '_';
    }
    return out;
}

void
writePrometheus(std::ostream &os, const Snapshot &s)
{
    std::map<std::string, CounterGroup> groups;
    for (const auto &[name, value] : s.counters) {
        std::string base, label;
        if (splitLabeledName(name, &base, &label)) {
            groups[base].labeled.emplace_back(label, value);
        } else {
            groups[name].hasPlain = true;
            groups[name].plain = value;
        }
    }

    for (const auto &[base, g] : groups) {
        const std::string pname = prometheusName(base);
        os << "# TYPE " << pname << " counter\n";
        if (g.hasPlain)
            os << pname << " " << g.plain << "\n";
        for (const auto &[label, value] : g.labeled) {
            os << pname << "{" << kLabelKey << "=\""
               << escapeLabelValue(label) << "\"} " << value << "\n";
        }
    }

    // Gauges and histogram summaries group the same way: one TYPE
    // header per base name, labeled series re-emitted with a proper
    // label set instead of mangled braces.
    std::map<std::string, std::vector<std::pair<std::string, int64_t>>>
        gaugeGroups;
    for (const auto &[name, value] : s.gauges) {
        std::string base, label;
        if (splitLabeledName(name, &base, &label))
            gaugeGroups[base].emplace_back(label, value);
        else
            gaugeGroups[name].emplace_back(std::string(), value);
    }
    for (const auto &[base, rows] : gaugeGroups) {
        const std::string pname = prometheusName(base);
        os << "# TYPE " << pname << " gauge\n";
        for (const auto &[label, value] : rows) {
            os << pname;
            if (!label.empty()) {
                os << "{" << kLabelKey << "=\""
                   << escapeLabelValue(label) << "\"}";
            }
            os << " " << value << "\n";
        }
    }

    std::map<std::string,
             std::vector<std::pair<std::string, const Snapshot::Hist *>>>
        histGroups;
    for (const auto &[name, h] : s.histograms) {
        std::string base, label;
        if (splitLabeledName(name, &base, &label))
            histGroups[base].emplace_back(label, &h);
        else
            histGroups[name].emplace_back(std::string(), &h);
    }
    for (const auto &[base, rows] : histGroups) {
        const std::string pname = prometheusName(base);
        os << "# TYPE " << pname << " summary\n";
        constexpr std::pair<const char *, double> kQuantiles[] = {
            {"0.5", 0.5}, {"0.95", 0.95}, {"0.99", 0.99}};
        for (const auto &[label, h] : rows) {
            const std::string tenantLabel =
                label.empty() ? std::string()
                              : std::string(kLabelKey) + "=\"" +
                                    escapeLabelValue(label) + "\"";
            for (const auto &[qs, q] : kQuantiles) {
                os << pname << "{";
                if (!tenantLabel.empty())
                    os << tenantLabel << ",";
                os << "quantile=\"" << qs << "\"} " << h->quantile(q)
                   << "\n";
            }
            const std::string suffix =
                tenantLabel.empty() ? std::string()
                                    : "{" + tenantLabel + "}";
            os << pname << "_sum" << suffix << " " << h->sum << "\n"
               << pname << "_count" << suffix << " " << h->count
               << "\n";
        }
    }
}

bool
writePrometheusFile(const std::string &path, const Snapshot &s)
{
    const std::string tmp = path + ".tmp";
    {
        std::ofstream out(tmp, std::ios::trunc);
        if (!out)
            return false;
        writePrometheus(out, s);
        out.flush();
        if (!out)
            return false;
    }
    return std::rename(tmp.c_str(), path.c_str()) == 0;
}

} // namespace telemetry
} // namespace sparseap
