/**
 * @file
 * Prometheus-style text exposition of a telemetry Snapshot.
 *
 * Metric names are mangled to the exposition charset: every character
 * outside [a-zA-Z0-9_] becomes '_' and the whole name is prefixed
 * "sparseap_" (so `serve.fed_bytes` => `sparseap_serve_fed_bytes`).
 * Labeled series produced by telemetry/labels.h (`base{tenant=X}`)
 * are re-emitted with a proper label set: `sparseap_base{tenant="X"}`.
 * Histograms come out as summaries: {quantile="0.5|0.95|0.99"} sample
 * lines plus _sum and _count.
 *
 * writePrometheusFile() renders atomically (temp + rename), which is
 * what `apserved --metrics-file` republishes every sample period — a
 * scraper (or `cat`) never sees a torn file.
 *
 * See docs/OBSERVABILITY.md §Exposition; tested by
 * tests/test_observability.cc.
 */

#ifndef SPARSEAP_TELEMETRY_EXPOSITION_H
#define SPARSEAP_TELEMETRY_EXPOSITION_H

#include <iosfwd>
#include <string>

#include "telemetry/metrics.h"

namespace sparseap {
namespace telemetry {

/** `sparseap_` + @p name with non-[a-zA-Z0-9_] mangled to '_'
 *  (label suffixes, if any, must be stripped by the caller). */
std::string prometheusName(const std::string &name);

/** Render @p s in Prometheus text exposition format. */
void writePrometheus(std::ostream &os, const Snapshot &s);

/** Atomically (temp + rename) write the exposition of @p s to
 *  @p path. @return false on any I/O failure. */
bool writePrometheusFile(const std::string &path, const Snapshot &s);

} // namespace telemetry
} // namespace sparseap

#endif // SPARSEAP_TELEMETRY_EXPOSITION_H
