#include "telemetry/labels.h"

namespace sparseap {
namespace telemetry {

std::string
labeledName(const std::string &base, const std::string &label)
{
    std::string out;
    out.reserve(base.size() + label.size() + 10);
    out += base;
    out += '{';
    out += kLabelKey;
    out += '=';
    out += label;
    out += '}';
    return out;
}

bool
splitLabeledName(const std::string &name, std::string *base,
                 std::string *label)
{
    const size_t open = name.find('{');
    if (open == std::string::npos || name.back() != '}')
        return false;
    const std::string key = std::string(kLabelKey) + "=";
    const size_t key_at = open + 1;
    if (name.compare(key_at, key.size(), key) != 0)
        return false;
    if (base)
        *base = name.substr(0, open);
    if (label) {
        const size_t value_at = key_at + key.size();
        *label = name.substr(value_at, name.size() - 1 - value_at);
    }
    return true;
}

} // namespace telemetry
} // namespace sparseap
