/**
 * @file
 * Bounded-cardinality labeled metric families.
 *
 * The registry interns one permanent cell block per metric name, so an
 * unbounded label set (e.g. one counter per tenant, fed by whatever
 * names clients send) would grow the registry — and every snapshot —
 * forever. A LabeledCounter/LabeledHistogram family fixes that with a
 * hard cap on distinct label series: the first `maxSeries` distinct
 * labels each get their own series named `base{tenant=label}`, every
 * label beyond the cap folds into the shared `base{tenant=other}`
 * bucket (and bumps `telemetry.label_overflow`). Within the cap a
 * last-use clock is kept so exports can rank series by recency, but a
 * series is never un-interned — the cap is what bounds the registry,
 * the recency order is for display.
 *
 * Series names round-trip: splitSeries("serve.feeds{tenant=EM}")
 * yields ("serve.feeds", "EM"), which is how the STATS exporter and
 * aptop recover the per-tenant table from a flat snapshot.
 *
 * See docs/OBSERVABILITY.md §Per-tenant labels; tested by
 * tests/test_observability.cc.
 */

#ifndef SPARSEAP_TELEMETRY_LABELS_H
#define SPARSEAP_TELEMETRY_LABELS_H

#include <algorithm>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "telemetry/metrics.h"

namespace sparseap {
namespace telemetry {

/** The label key used by every family (one axis is plenty here). */
constexpr const char *kLabelKey = "tenant";

/** Fallback label for series beyond a family's cap. */
constexpr const char *kOtherLabel = "other";

/** @return `base{tenant=label}`. */
std::string labeledName(const std::string &base,
                        const std::string &label);

/**
 * Parse `base{tenant=label}`; @return false for unlabeled names.
 * @p base / @p label may be null when only the test matters.
 */
bool splitLabeledName(const std::string &name, std::string *base,
                      std::string *label);

/**
 * One family of per-label series over metric handle type @p M
 * (Counter or HistogramMetric — anything with add(uint64_t)).
 */
template <typename M> class LabeledFamily
{
  public:
    static constexpr size_t kDefaultMaxSeries = 64;

    explicit LabeledFamily(std::string base,
                           size_t maxSeries = kDefaultMaxSeries)
        : base_(std::move(base)), cap_(maxSeries == 0 ? 1 : maxSeries),
          other_(labeledName(base_, kOtherLabel).c_str())
    {
    }

    LabeledFamily(const LabeledFamily &) = delete;
    LabeledFamily &operator=(const LabeledFamily &) = delete;

    /** Record @p v against @p label (or the `other` bucket past cap). */
    void
    add(const std::string &label, uint64_t v)
    {
        std::lock_guard<std::mutex> lock(mutex_);
        auto it = series_.find(label);
        if (it == series_.end()) {
            if (series_.size() >= cap_ || label == kOtherLabel) {
                overflowCounter().add(1);
                other_.add(v);
                return;
            }
            it = series_
                     .emplace(label,
                              Series{std::make_unique<M>(
                                         labeledName(base_, label)
                                             .c_str()),
                                     0})
                     .first;
        }
        it->second.lastUse = ++use_clock_;
        it->second.metric->add(v);
    }

    /** Distinct labels holding their own series (≤ cap). */
    size_t
    seriesCount() const
    {
        std::lock_guard<std::mutex> lock(mutex_);
        return series_.size();
    }

    /** Labels ordered most-recently-used first. */
    std::vector<std::string>
    labelsByRecency() const
    {
        std::lock_guard<std::mutex> lock(mutex_);
        std::vector<std::pair<uint64_t, std::string>> order;
        order.reserve(series_.size());
        for (const auto &[label, s] : series_)
            order.emplace_back(s.lastUse, label);
        std::sort(order.begin(), order.end(),
                  [](const auto &a, const auto &b) {
                      return a.first > b.first;
                  });
        std::vector<std::string> out;
        out.reserve(order.size());
        for (auto &[use, label] : order)
            out.push_back(std::move(label));
        return out;
    }

    const std::string &base() const { return base_; }

  private:
    struct Series
    {
        std::unique_ptr<M> metric;
        uint64_t lastUse = 0;
    };

    static Counter &
    overflowCounter()
    {
        static Counter c("telemetry.label_overflow");
        return c;
    }

    const std::string base_;
    const size_t cap_;
    M other_;

    mutable std::mutex mutex_;
    std::unordered_map<std::string, Series> series_;
    uint64_t use_clock_ = 0;
};

using LabeledCounter = LabeledFamily<Counter>;
using LabeledHistogram = LabeledFamily<HistogramMetric>;

/**
 * Per-label Gauge family (set semantics). Same cap/overflow policy as
 * LabeledFamily; labels beyond the cap last-write the shared
 * `base{tenant=other}` series, which is honest enough for a level
 * metric nobody should be over-cap on anyway.
 */
class LabeledGauge
{
  public:
    explicit LabeledGauge(std::string base,
                          size_t maxSeries =
                              LabeledCounter::kDefaultMaxSeries)
        : base_(std::move(base)), cap_(maxSeries == 0 ? 1 : maxSeries),
          other_(labeledName(base_, kOtherLabel).c_str())
    {
    }

    LabeledGauge(const LabeledGauge &) = delete;
    LabeledGauge &operator=(const LabeledGauge &) = delete;

    /** Set @p label's level to @p v (the `other` series past cap). */
    void
    set(const std::string &label, uint64_t v)
    {
        std::lock_guard<std::mutex> lock(mutex_);
        auto it = series_.find(label);
        if (it == series_.end()) {
            if (series_.size() >= cap_ || label == kOtherLabel) {
                other_.set(static_cast<int64_t>(v));
                return;
            }
            it = series_
                     .emplace(label, std::make_unique<Gauge>(
                                         labeledName(base_, label)
                                             .c_str()))
                     .first;
        }
        it->second->set(static_cast<int64_t>(v));
    }

    size_t
    seriesCount() const
    {
        std::lock_guard<std::mutex> lock(mutex_);
        return series_.size();
    }

    const std::string &base() const { return base_; }

  private:
    const std::string base_;
    const size_t cap_;
    Gauge other_;

    mutable std::mutex mutex_;
    std::unordered_map<std::string, std::unique_ptr<Gauge>> series_;
};

} // namespace telemetry
} // namespace sparseap

#endif // SPARSEAP_TELEMETRY_LABELS_H
