#include "telemetry/metrics.h"

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <fstream>
#include <iostream>
#include <memory>
#include <mutex>
#include <ostream>

#include "common/logging.h"
#include "common/table.h"
#include "common/thread_pool.h"

namespace sparseap {
namespace telemetry {

namespace {

/** Cells per allocation chunk; chunk addresses never move once handed
 *  out, so the owning thread's unlocked fast path stays valid across
 *  growth. */
constexpr size_t kChunkShift = 8;
constexpr size_t kChunkCells = 1ull << kChunkShift;

/** One thread's private cell block (see file comment of metrics.h). */
struct ThreadCells
{
    /** Stable-addressed chunks; the vector itself is guarded by the
     *  registry mutex for cross-thread (snapshot) access. */
    std::vector<std::unique_ptr<std::atomic<uint64_t>[]>> chunks;

    std::atomic<uint64_t> *
    tryCell(uint32_t id)
    {
        const size_t c = id >> kChunkShift;
        if (c >= chunks.size())
            return nullptr;
        return &chunks[c][id & (kChunkCells - 1)];
    }
};

struct CounterDesc
{
    std::string name;
    uint32_t cell;
};

struct HistDesc
{
    std::string name;
    uint32_t firstCell; ///< kBuckets bucket cells, then the sum cell
};

struct GaugeDesc
{
    std::string name;
};

/** Cells one histogram occupies: its buckets plus a value-sum cell. */
constexpr uint32_t kHistCells =
    static_cast<uint32_t>(Histogram::kBuckets) + 1;

class Registry
{
  public:
    static Registry &instance();

    uint32_t
    internCounter(const char *name)
    {
        std::lock_guard<std::mutex> lock(mutex_);
        for (const CounterDesc &c : counters_) {
            if (c.name == name)
                return c.cell;
        }
        const uint32_t cell = cell_count_++;
        counters_.push_back({name, cell});
        return cell;
    }

    uint32_t
    internHistogram(const char *name)
    {
        std::lock_guard<std::mutex> lock(mutex_);
        for (const HistDesc &h : hists_) {
            if (h.name == name)
                return h.firstCell;
        }
        const uint32_t first = cell_count_;
        cell_count_ += kHistCells;
        hists_.push_back({name, first});
        return first;
    }

    uint32_t
    internGauge(const char *name)
    {
        std::lock_guard<std::mutex> lock(mutex_);
        for (uint32_t i = 0; i < gauges_.size(); ++i) {
            if (gauges_[i].name == name)
                return i;
        }
        gauges_.push_back({name});
        gauge_values_.emplace_back(0);
        gauge_used_.push_back(false);
        return static_cast<uint32_t>(gauges_.size() - 1);
    }

    void
    gaugeSet(uint32_t id, int64_t v)
    {
        gauge_values_[id].store(v, std::memory_order_relaxed);
        gauge_used_[id] = true;
    }

    void
    gaugeMax(uint32_t id, int64_t v)
    {
        std::atomic<int64_t> &g = gauge_values_[id];
        int64_t cur = g.load(std::memory_order_relaxed);
        while (v > cur &&
               !g.compare_exchange_weak(cur, v,
                                        std::memory_order_relaxed)) {
        }
        gauge_used_[id] = true;
    }

    /** The calling thread's cell for @p id, growing its block (under
     *  the registry mutex, so concurrent snapshots stay safe). */
    std::atomic<uint64_t> &
    cell(uint32_t id)
    {
        ThreadCells &tc = threadCells();
        if (std::atomic<uint64_t> *c = tc.tryCell(id))
            return *c;
        std::lock_guard<std::mutex> lock(mutex_);
        while ((id >> kChunkShift) >= tc.chunks.size()) {
            auto chunk =
                std::make_unique<std::atomic<uint64_t>[]>(kChunkCells);
            for (size_t i = 0; i < kChunkCells; ++i)
                chunk[i].store(0, std::memory_order_relaxed);
            tc.chunks.push_back(std::move(chunk));
        }
        return *tc.tryCell(id);
    }

    Snapshot
    snapshot()
    {
        std::lock_guard<std::mutex> lock(mutex_);
        // Merge: sum each cell over every thread block. Addition
        // commutes, so the result is independent of thread count and
        // scheduling.
        auto sum_cell = [&](uint32_t id) {
            uint64_t total = 0;
            for (const auto &cells : all_cells_) {
                const size_t c = id >> kChunkShift;
                if (c < cells->chunks.size()) {
                    total += cells->chunks[c][id & (kChunkCells - 1)]
                                 .load(std::memory_order_relaxed);
                }
            }
            return total;
        };

        Snapshot s;
        for (const CounterDesc &c : counters_)
            s.counters[c.name] = sum_cell(c.cell);
        for (uint32_t i = 0; i < gauges_.size(); ++i) {
            if (gauge_used_[i]) {
                s.gauges[gauges_[i].name] =
                    gauge_values_[i].load(std::memory_order_relaxed);
            }
        }
        for (const HistDesc &h : hists_) {
            Snapshot::Hist out;
            for (size_t b = 0; b < Histogram::kBuckets; ++b) {
                out.buckets[b] =
                    sum_cell(h.firstCell + static_cast<uint32_t>(b));
                out.count += out.buckets[b];
            }
            out.sum = sum_cell(h.firstCell +
                               static_cast<uint32_t>(
                                   Histogram::kBuckets));
            s.histograms[h.name] = out;
        }

        // Fold in the thread pool's self-maintained statistics (the
        // pool lives in common/, below this library).
        if (const ThreadPool *pool = ThreadPool::globalIfCreated()) {
            const ThreadPool::Stats ps = pool->stats();
            s.counters["pool.tasks"] = ps.tasksExecuted;
            s.gauges["pool.queue_high_water"] =
                static_cast<int64_t>(ps.queueHighWater);
            Snapshot::Hist lat;
            lat.count = ps.taskMicros.count();
            lat.sum = ps.taskMicros.sum();
            lat.buckets = ps.taskMicros.buckets();
            s.histograms["pool.task_us"] = lat;
        }
        return s;
    }

  private:
    Registry();

    /** This thread's cell block, registered on first use. */
    ThreadCells &
    threadCells()
    {
        thread_local ThreadCells *cells = [this] {
            auto owned = std::make_shared<ThreadCells>();
            ThreadCells *raw = owned.get();
            std::lock_guard<std::mutex> lock(mutex_);
            // Blocks are retained after thread exit so retired threads'
            // contributions stay in every later snapshot.
            all_cells_.push_back(std::move(owned));
            return raw;
        }();
        return *cells;
    }

    std::mutex mutex_;
    uint32_t cell_count_ = 0;
    std::vector<CounterDesc> counters_;
    std::vector<HistDesc> hists_;
    std::vector<GaugeDesc> gauges_;
    std::deque<std::atomic<int64_t>> gauge_values_;
    std::deque<bool> gauge_used_;
    std::vector<std::shared_ptr<ThreadCells>> all_cells_;
};

/** SPARSEAP_STATS end-of-process summary (see initFromEnv). */
void
printExitSummary()
{
    const char *v = std::getenv("SPARSEAP_STATS");
    if (!v || !*v)
        return;
    const Snapshot s = telemetry::snapshot();
    if (s.empty())
        return;
    if (std::strcmp(v, "-") == 0 || std::strcmp(v, "1") == 0 ||
        std::strcmp(v, "stderr") == 0) {
        printSnapshot(std::cerr, s);
        return;
    }
    std::ofstream out(v, std::ios::app);
    if (!out) {
        warn("SPARSEAP_STATS: cannot open '", v, "' for append");
        return;
    }
    printSnapshot(out, s);
}

Registry::Registry()
{
    // Register the summary hook here so any binary that touches one
    // metric gets the SPARSEAP_STATS summary without extra wiring.
    std::atexit(printExitSummary);
}

Registry &
Registry::instance()
{
    // Leaked on purpose: worker threads and atexit handlers may touch
    // metrics during static destruction.
    static Registry *registry = new Registry();
    return *registry;
}

std::string
fmtCount(uint64_t v)
{
    return std::to_string(v);
}

} // namespace

Counter::Counter(const char *name)
    : id_(Registry::instance().internCounter(name))
{
}

void
Counter::add(uint64_t n)
{
    std::atomic<uint64_t> &cell = Registry::instance().cell(id_);
    cell.store(cell.load(std::memory_order_relaxed) + n,
               std::memory_order_relaxed);
}

Gauge::Gauge(const char *name)
    : id_(Registry::instance().internGauge(name))
{
}

void
Gauge::set(int64_t v)
{
    Registry::instance().gaugeSet(id_, v);
}

void
Gauge::max(int64_t v)
{
    Registry::instance().gaugeMax(id_, v);
}

HistogramMetric::HistogramMetric(const char *name)
    : first_cell_(Registry::instance().internHistogram(name))
{
}

void
HistogramMetric::add(uint64_t v)
{
    Registry &reg = Registry::instance();
    const uint32_t bucket =
        first_cell_ + static_cast<uint32_t>(Histogram::bucketOf(v));
    std::atomic<uint64_t> &bcell = reg.cell(bucket);
    bcell.store(bcell.load(std::memory_order_relaxed) + 1,
                std::memory_order_relaxed);
    std::atomic<uint64_t> &scell = reg.cell(
        first_cell_ + static_cast<uint32_t>(Histogram::kBuckets));
    scell.store(scell.load(std::memory_order_relaxed) + v,
                std::memory_order_relaxed);
}

std::map<std::string, uint64_t>
Snapshot::deterministicCounters() const
{
    std::map<std::string, uint64_t> out;
    for (const auto &[name, value] : counters) {
        if (name.rfind("pool.", 0) == 0)
            continue;
        out.emplace(name, value);
    }
    return out;
}

Snapshot
Snapshot::deltaTo(const Snapshot &after) const
{
    Snapshot d;
    for (const auto &[name, value] : after.counters) {
        auto it = counters.find(name);
        d.counters[name] =
            value - (it != counters.end() ? it->second : 0);
    }
    d.gauges = after.gauges; // levels, not rates: keep the later value
    for (const auto &[name, hist] : after.histograms) {
        Snapshot::Hist dh = hist;
        auto it = histograms.find(name);
        if (it != histograms.end()) {
            dh.count -= it->second.count;
            dh.sum -= it->second.sum;
            for (size_t b = 0; b < Histogram::kBuckets; ++b)
                dh.buckets[b] -= it->second.buckets[b];
        }
        d.histograms[name] = dh;
    }
    return d;
}

bool
Snapshot::empty() const
{
    for (const auto &[name, value] : counters) {
        if (value != 0)
            return false;
    }
    for (const auto &[name, hist] : histograms) {
        if (hist.count != 0)
            return false;
    }
    return gauges.empty();
}

Snapshot
snapshot()
{
    return Registry::instance().snapshot();
}

void
printSnapshot(std::ostream &os, const Snapshot &s)
{
    os << "### telemetry\n";
    if (!s.counters.empty()) {
        Table t({"Counter", "Value"});
        for (const auto &[name, value] : s.counters)
            t.addRow({name, fmtCount(value)});
        t.print(os);
        os << "\n";
    }
    if (!s.gauges.empty()) {
        Table t({"Gauge", "Value"});
        for (const auto &[name, value] : s.gauges)
            t.addRow({name, std::to_string(value)});
        t.print(os);
        os << "\n";
    }
    if (!s.histograms.empty()) {
        Table t({"Histogram", "Count", "Mean", "P50", "P95", "P99",
                 "Sum"});
        for (const auto &[name, h] : s.histograms) {
            t.addRow({name, fmtCount(h.count), Table::fmt(h.mean(), 1),
                      Table::fmt(h.quantile(0.50), 1),
                      Table::fmt(h.quantile(0.95), 1),
                      Table::fmt(h.quantile(0.99), 1),
                      fmtCount(h.sum)});
        }
        t.print(os);
    }
    os.flush();
}

void
writeSnapshotJson(std::ostream &os, const Snapshot &s,
                  const std::string &app)
{
    os << "{\"record\":\"telemetry\",\"app\":\"" << app
       << "\",\"counters\":{";
    bool first = true;
    for (const auto &[name, value] : s.counters) {
        os << (first ? "" : ",") << '"' << name << "\":" << value;
        first = false;
    }
    os << "},\"gauges\":{";
    first = true;
    for (const auto &[name, value] : s.gauges) {
        os << (first ? "" : ",") << '"' << name << "\":" << value;
        first = false;
    }
    os << "},\"histograms\":{";
    first = true;
    for (const auto &[name, h] : s.histograms) {
        os << (first ? "" : ",") << '"' << name
           << "\":{\"count\":" << h.count << ",\"sum\":" << h.sum
           << ",\"p50\":" << h.quantile(0.50)
           << ",\"p95\":" << h.quantile(0.95)
           << ",\"p99\":" << h.quantile(0.99) << ",\"buckets\":[";
        // Trailing zero buckets are elided; bucket index is positional.
        size_t last = 0;
        for (size_t b = 0; b < Histogram::kBuckets; ++b) {
            if (h.buckets[b] != 0)
                last = b + 1;
        }
        for (size_t b = 0; b < last; ++b)
            os << (b ? "," : "") << h.buckets[b];
        os << "]}";
        first = false;
    }
    os << "}}\n";
}

void
initFromEnv()
{
    Registry::instance();
}

} // namespace telemetry
} // namespace sparseap
