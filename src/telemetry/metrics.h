/**
 * @file
 * Process-wide metrics registry: named counters, gauges and log-bucketed
 * histograms, built for hot-loop use.
 *
 * Counter cells are *per thread*: `Counter::add` resolves the calling
 * thread's private cell block and performs one relaxed load + store —
 * no RMW, no shared cache line, no lock. Snapshots merge every thread's
 * cells with plain integer addition, which commutes, so the merged
 * totals are byte-identical whatever the thread count or interleaving
 * (SPARSEAP_JOBS=1 vs =8 produce the same sums for the same work).
 *
 * Histograms use the same cell machinery — each histogram owns one
 * counter cell per log bucket plus a value-sum cell — so they inherit
 * the single-store hot path and the deterministic merge. Quantiles
 * (p50/p95/p99) are estimated at snapshot time from the merged buckets
 * via common/stats' shared bucket math.
 *
 * Gauges are shared atomics with `set` (last write) and `max`
 * (high-water) semantics; they are meant for infrastructure levels
 * (queue depths), not per-event counts, and are not expected to be
 * deterministic across thread counts.
 *
 * Snapshots split metrics into a *deterministic* set (counters, minus
 * the documented infrastructure prefixes — see
 * Snapshot::deterministicCounters) and everything else (gauges and
 * histograms, which carry wall-clock durations and scheduling
 * artifacts). Tests pin the deterministic set across job counts; see
 * docs/OBSERVABILITY.md for the metric name catalog.
 */

#ifndef SPARSEAP_TELEMETRY_METRICS_H
#define SPARSEAP_TELEMETRY_METRICS_H

#include <array>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

#include "common/stats.h"

namespace sparseap {
namespace telemetry {

/**
 * Handle to one named process-wide counter. Construction interns the
 * name in the registry (one mutex acquisition); add() is the wait-free
 * hot path. Intended use is a function-local static:
 *
 *   static Counter c("engine.cycles");
 *   c.add(n);
 */
class Counter
{
  public:
    explicit Counter(const char *name);

    /** Fold @p n into the calling thread's private cell. */
    void add(uint64_t n = 1);

    uint32_t id() const { return id_; }

  private:
    uint32_t id_;
};

/** Handle to one named gauge (shared atomic int64). */
class Gauge
{
  public:
    explicit Gauge(const char *name);

    /** Set the gauge to @p v (last write wins). */
    void set(int64_t v);

    /** Raise the gauge to @p v if above the current value. */
    void max(int64_t v);

  private:
    uint32_t id_;
};

/**
 * Handle to one named log-bucketed histogram of uint64 samples
 * (microseconds, bytes, counts). Same per-thread cell hot path as
 * Counter.
 */
class HistogramMetric
{
  public:
    explicit HistogramMetric(const char *name);

    /** Record one sample. */
    void add(uint64_t v);

  private:
    uint32_t first_cell_; ///< base of kBuckets bucket cells + sum cell
};

/** Merged point-in-time view of every metric. */
struct Snapshot
{
    struct Hist
    {
        uint64_t count = 0;
        uint64_t sum = 0;
        std::array<uint64_t, Histogram::kBuckets> buckets{};

        double mean() const
        {
            return count ? static_cast<double>(sum) / count : 0.0;
        }
        double quantile(double q) const
        {
            return Histogram::quantileFromBuckets(
                {buckets.data(), buckets.size()}, q);
        }
    };

    std::map<std::string, uint64_t> counters;
    std::map<std::string, int64_t> gauges;
    std::map<std::string, Hist> histograms;

    /**
     * Counters whose values are a pure function of the work performed —
     * everything except the documented infrastructure prefixes
     * ("pool."), whose values depend on how the work was scheduled.
     * Byte-identical across SPARSEAP_JOBS settings for the same run.
     */
    std::map<std::string, uint64_t> deterministicCounters() const;

    /** Per-metric difference @p after - this (counters, histograms). */
    Snapshot deltaTo(const Snapshot &after) const;

    /** True when every count in the snapshot is zero. */
    bool empty() const;
};

/** @return a merged snapshot of every registered metric. */
Snapshot snapshot();

/**
 * Render @p s as aligned ASCII tables (counters; gauges; histograms
 * with count/mean/p50/p95/p99/max), the format shared by the
 * SPARSEAP_STATS end-of-process summary, `apstat` and `apstore stats`.
 */
void printSnapshot(std::ostream &os, const Snapshot &s);

/**
 * Append @p s as one self-contained JSON-Lines record:
 *   {"record":"telemetry","app":<app>,...,"counters":{...},
 *    "gauges":{...},"histograms":{"name":{"count":..,"sum":..,
 *    "p50":..,"p95":..,"p99":..,"buckets":[..]}}}
 * @p app tags the record ("*" for a cumulative whole-process record).
 */
void writeSnapshotJson(std::ostream &os, const Snapshot &s,
                       const std::string &app);

/**
 * Install the end-of-process summary sink selected by SPARSEAP_STATS
 * ("-"/"1"/"stderr" => stderr, anything else => that file). Called once
 * by the registry on first use; exposed for tools that want the summary
 * without touching a metric first.
 */
void initFromEnv();

} // namespace telemetry
} // namespace sparseap

#endif // SPARSEAP_TELEMETRY_METRICS_H
