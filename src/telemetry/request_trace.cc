#include "telemetry/request_trace.h"

#include <algorithm>
#include <ostream>
#include <utility>

#include "telemetry/event_log.h"
#include "telemetry/trace.h"

namespace sparseap {
namespace telemetry {

namespace {

thread_local RequestTrace *g_current = nullptr;

void
appendEscaped(std::ostream &os, const std::string &v)
{
    for (char c : v) {
        if (c == '"' || c == '\\')
            os << '\\';
        os << c;
    }
}

std::string
spanArgs(uint64_t request_id, const std::string &tenant)
{
    std::string args = "\"req\":" + std::to_string(request_id);
    if (!tenant.empty()) {
        args += ",\"tenant\":\"";
        for (char c : tenant) {
            if (c == '"' || c == '\\')
                args += '\\';
            args += c;
        }
        args += '"';
    }
    return args;
}

} // namespace

SlowRequestRing &
SlowRequestRing::instance()
{
    // Leaked on purpose, like the metrics registry: worker threads may
    // still capture during static destruction.
    static SlowRequestRing *ring = new SlowRequestRing();
    return *ring;
}

void
SlowRequestRing::capture(CapturedRequest req)
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (ring_.size() < kCapacity) {
        ring_.push_back(std::move(req));
    } else {
        ring_[head_] = std::move(req);
        head_ = (head_ + 1) % kCapacity;
    }
    ++total_;
}

std::vector<CapturedRequest>
SlowRequestRing::captured() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<CapturedRequest> out;
    out.reserve(ring_.size());
    for (size_t i = 0; i < ring_.size(); ++i)
        out.push_back(ring_[(head_ + i) % ring_.size()]);
    return out;
}

uint64_t
SlowRequestRing::totalCaptured() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return total_;
}

void
SlowRequestRing::clear()
{
    std::lock_guard<std::mutex> lock(mutex_);
    ring_.clear();
    head_ = 0;
    total_ = 0;
}

void
SlowRequestRing::writeJson(std::ostream &os) const
{
    const std::vector<CapturedRequest> reqs = captured();
    uint64_t total;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        total = total_;
    }
    os << "{\"record\":\"slow_requests\",\"captured_total\":" << total
       << ",\"requests\":[";
    for (size_t i = 0; i < reqs.size(); ++i) {
        const CapturedRequest &r = reqs[i];
        os << (i ? ",\n" : "\n") << "{\"request_id\":" << r.requestId
           << ",\"tenant\":\"";
        appendEscaped(os, r.tenant);
        os << "\",\"op\":\"";
        appendEscaped(os, r.op);
        os << "\",\"latency_us\":" << r.latencyMicros << ",\"spans\":[";
        for (size_t s = 0; s < r.spans.size(); ++s) {
            const RequestSpanRecord &span = r.spans[s];
            os << (s ? "," : "") << "{\"name\":\"" << span.name
               << "\",\"t0_us\":" << span.t0_us
               << ",\"dur_us\":" << span.dur_us
               << ",\"depth\":" << span.depth << "}";
        }
        os << "]}";
    }
    os << "\n]}\n";
}

RequestTrace::RequestTrace(uint64_t request_id, std::string tenant,
                           const char *op)
    : request_id_(request_id), tenant_(std::move(tenant)), op_(op)
{
    prev_ = g_current;
    g_current = this;
}

RequestTrace::~RequestTrace()
{
    g_current = prev_;
}

RequestTrace *
RequestTrace::current()
{
    return g_current;
}

void
RequestTrace::addSpan(const char *name, uint64_t t0_us, uint64_t dur_us)
{
    spans_.push_back({name, t0_us, dur_us, depth_});
}

uint64_t
RequestTrace::finish(uint64_t t0_us, uint64_t slow_threshold_micros)
{
    if (finished_)
        return 0;
    finished_ = true;

    const uint64_t t1 = nowMicros();
    const uint64_t latency = t1 > t0_us ? t1 - t0_us : 0;

    // Root first, children in recording (completion) order after it.
    std::vector<RequestSpanRecord> tree;
    tree.reserve(spans_.size() + 1);
    tree.push_back({"serve.request", t0_us, latency, 0});
    tree.insert(tree.end(), spans_.begin(), spans_.end());

    if (traceEnabled()) {
        for (const RequestSpanRecord &span : tree) {
            traceEmitComplete(span.name, span.t0_us, span.dur_us,
                              span.depth == 0
                                  ? spanArgs(request_id_, tenant_)
                                  : spanArgs(request_id_, ""));
        }
    }

    if (slow_threshold_micros != 0 && latency >= slow_threshold_micros) {
        CapturedRequest cap;
        cap.requestId = request_id_;
        cap.tenant = tenant_;
        cap.op = op_;
        cap.latencyMicros = latency;
        cap.spans = std::move(tree);
        const size_t span_count = cap.spans.size();
        SlowRequestRing::instance().capture(std::move(cap));
        LogEvent(LogLevel::Warn, "serve.request.slow")
            .num("request_id", request_id_)
            .str("tenant", tenant_)
            .str("op", op_)
            .num("latency_us", latency)
            .num("spans", span_count);
    }
    return latency;
}

RequestSpanScope::RequestSpanScope(const char *name)
{
    RequestTrace *t = RequestTrace::current();
    if (t == nullptr || t->finished_)
        return;
    trace_ = t;
    name_ = name;
    t0_us_ = nowMicros();
    depth_ = t->depth_;
    ++t->depth_;
}

RequestSpanScope::~RequestSpanScope()
{
    if (trace_ == nullptr)
        return;
    --trace_->depth_;
    const uint64_t t1 = nowMicros();
    trace_->spans_.push_back(
        {name_, t0_us_, t1 > t0_us_ ? t1 - t0_us_ : 0, depth_});
}

} // namespace telemetry
} // namespace sparseap
