/**
 * @file
 * Request-scoped tracing for the serving path: per-request span trees,
 * Chrome-trace emission, and an always-on slow-request capture ring.
 *
 * A RequestTrace is installed on the worker thread for the lifetime of
 * one request (thread_local current-trace pointer, so layers below the
 * server — MatchService, EngineSession wrappers — add spans with a
 * plain RequestSpanScope and no signature changes). Every span records
 * (name, t0, dur, depth) into the trace's private vector: no locks, no
 * allocation beyond the vector, nothing global until finish().
 *
 * finish() assembles the tree under a root `serve.request` span and
 *  - streams every span into the active Chrome trace session (when
 *    SPARSEAP_TRACE / TraceSession is live), tagged with the request
 *    id, so daemon traces show per-request swimlanes;
 *  - when the request's latency meets the slow threshold, deposits the
 *    whole tree into the process-wide SlowRequestRing (a bounded ring
 *    that is *always* on — the last N slow requests are retrievable
 *    from a live daemon without any tracing configured) and emits one
 *    `serve.request.slow` event-log line carrying the same request id.
 *
 * With no RequestTrace installed a RequestSpanScope is one thread_local
 * load and a branch — MatchService used as a library costs nothing.
 *
 * See docs/OBSERVABILITY.md §Request tracing; tested by
 * tests/test_observability.cc and tests/test_serve_observability.cc.
 */

#ifndef SPARSEAP_TELEMETRY_REQUEST_TRACE_H
#define SPARSEAP_TELEMETRY_REQUEST_TRACE_H

#include <cstdint>
#include <iosfwd>
#include <mutex>
#include <string>
#include <vector>

namespace sparseap {
namespace telemetry {

/** One finished span of a request tree. */
struct RequestSpanRecord
{
    const char *name = "";
    uint64_t t0_us = 0;
    uint64_t dur_us = 0;
    uint32_t depth = 0; ///< 0 = the serve.request root
};

/** One slow request's captured tree. */
struct CapturedRequest
{
    uint64_t requestId = 0;
    std::string tenant;
    std::string op; ///< request type name ("Feed", "Match", ...)
    uint64_t latencyMicros = 0;
    std::vector<RequestSpanRecord> spans; ///< spans[0] is the root
};

/** Process-wide bounded ring of recent slow requests (see file
 *  comment). Always on; capacity-bounded, oldest overwritten. */
class SlowRequestRing
{
  public:
    static constexpr size_t kCapacity = 32;

    static SlowRequestRing &instance();

    void capture(CapturedRequest req);

    /** Retained captures, oldest first. */
    std::vector<CapturedRequest> captured() const;

    /** Lifetime capture count (≥ captured().size()). */
    uint64_t totalCaptured() const;

    void clear();

    /** One JSON object: {"record":"slow_requests","requests":[...]}
     *  — the dump format tools/check_trace.py --slow-dump accepts. */
    void writeJson(std::ostream &os) const;

  private:
    SlowRequestRing() = default;

    mutable std::mutex mutex_;
    std::vector<CapturedRequest> ring_;
    size_t head_ = 0;
    uint64_t total_ = 0;
};

/** The per-request span collector (see file comment). Owned by the
 *  worker executing the request; all spans come from that thread. */
class RequestTrace
{
  public:
    RequestTrace(uint64_t request_id, std::string tenant,
                 const char *op);
    ~RequestTrace(); ///< uninstalls from the thread

    RequestTrace(const RequestTrace &) = delete;
    RequestTrace &operator=(const RequestTrace &) = delete;

    /** The trace installed on this thread, or null. */
    static RequestTrace *current();

    uint64_t requestId() const { return request_id_; }
    const std::string &tenant() const { return tenant_; }

    /** Record one pre-timed child span (e.g. the admission wait,
     *  measured between enqueue and pop on different threads). */
    void addSpan(const char *name, uint64_t t0_us, uint64_t dur_us);

    /**
     * Close the tree: root span [@p t0_us, now]. Emits to the Chrome
     * session when one is active; captures into SlowRequestRing and
     * logs `serve.request.slow` when the latency reaches
     * @p slow_threshold_micros (0 = never slow).
     * @return the request latency in microseconds.
     */
    uint64_t finish(uint64_t t0_us, uint64_t slow_threshold_micros);

  private:
    friend class RequestSpanScope;

    const uint64_t request_id_;
    const std::string tenant_;
    const char *op_;
    uint32_t depth_ = 1; ///< current nesting below the root
    std::vector<RequestSpanRecord> spans_;
    RequestTrace *prev_ = nullptr;
    bool finished_ = false;
};

/** RAII child span on the thread's current RequestTrace (no-op and
 *  near-free when none is installed). */
class RequestSpanScope
{
  public:
    explicit RequestSpanScope(const char *name);
    ~RequestSpanScope();

    RequestSpanScope(const RequestSpanScope &) = delete;
    RequestSpanScope &operator=(const RequestSpanScope &) = delete;

  private:
    RequestTrace *trace_ = nullptr;
    const char *name_ = nullptr;
    uint64_t t0_us_ = 0;
    uint32_t depth_ = 0;
};

} // namespace telemetry
} // namespace sparseap

#endif // SPARSEAP_TELEMETRY_REQUEST_TRACE_H
