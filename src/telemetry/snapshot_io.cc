#include "telemetry/snapshot_io.h"

#include <cctype>
#include <cmath>
#include <istream>
#include <map>
#include <memory>

namespace sparseap {
namespace telemetry {

namespace {

// ------------------------------------------------- minimal JSON -----
// Just enough of RFC 8259 to read back what this codebase writes:
// objects, arrays, strings with \" \\ \n \t \uXXXX escapes, numbers,
// true/false/null. Numbers are held as double (every counter this
// harness emits fits a double's 53-bit integer range).

struct JsonValue
{
    enum class Kind { Null, Bool, Number, String, Array, Object };
    Kind kind = Kind::Null;
    bool boolean = false;
    double number = 0.0;
    std::string str;
    std::vector<JsonValue> array;
    std::map<std::string, JsonValue> object;

    const JsonValue *
    get(const std::string &key) const
    {
        auto it = object.find(key);
        return it != object.end() ? &it->second : nullptr;
    }
};

class JsonParser
{
  public:
    JsonParser(const std::string &text, std::string *error)
        : s_(text), error_(error)
    {
    }

    bool
    parse(JsonValue *out)
    {
        skipWs();
        if (!parseValue(out))
            return false;
        skipWs();
        if (pos_ != s_.size())
            return fail("trailing characters after JSON value");
        return true;
    }

  private:
    bool
    fail(const std::string &msg)
    {
        if (error_ && error_->empty()) {
            *error_ = msg + " at offset " + std::to_string(pos_);
        }
        return false;
    }

    void
    skipWs()
    {
        while (pos_ < s_.size() &&
               std::isspace(static_cast<unsigned char>(s_[pos_])))
            ++pos_;
    }

    bool
    consume(char c)
    {
        if (pos_ < s_.size() && s_[pos_] == c) {
            ++pos_;
            return true;
        }
        return false;
    }

    bool
    parseValue(JsonValue *out)
    {
        if (pos_ >= s_.size())
            return fail("unexpected end of input");
        const char c = s_[pos_];
        if (c == '{')
            return parseObject(out);
        if (c == '[')
            return parseArray(out);
        if (c == '"') {
            out->kind = JsonValue::Kind::String;
            return parseString(&out->str);
        }
        if (c == 't' || c == 'f')
            return parseBool(out);
        if (c == 'n') {
            if (s_.compare(pos_, 4, "null") != 0)
                return fail("bad literal");
            pos_ += 4;
            out->kind = JsonValue::Kind::Null;
            return true;
        }
        return parseNumber(out);
    }

    bool
    parseBool(JsonValue *out)
    {
        out->kind = JsonValue::Kind::Bool;
        if (s_.compare(pos_, 4, "true") == 0) {
            out->boolean = true;
            pos_ += 4;
            return true;
        }
        if (s_.compare(pos_, 5, "false") == 0) {
            out->boolean = false;
            pos_ += 5;
            return true;
        }
        return fail("bad literal");
    }

    bool
    parseNumber(JsonValue *out)
    {
        const size_t start = pos_;
        while (pos_ < s_.size() &&
               (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
                s_[pos_] == '-' || s_[pos_] == '+' || s_[pos_] == '.' ||
                s_[pos_] == 'e' || s_[pos_] == 'E'))
            ++pos_;
        if (pos_ == start)
            return fail("expected a value");
        try {
            out->number = std::stod(s_.substr(start, pos_ - start));
        } catch (const std::exception &) {
            return fail("bad number");
        }
        out->kind = JsonValue::Kind::Number;
        return true;
    }

    bool
    parseString(std::string *out)
    {
        if (!consume('"'))
            return fail("expected '\"'");
        while (pos_ < s_.size()) {
            const char c = s_[pos_++];
            if (c == '"')
                return true;
            if (c != '\\') {
                out->push_back(c);
                continue;
            }
            if (pos_ >= s_.size())
                break;
            const char esc = s_[pos_++];
            switch (esc) {
            case '"':
            case '\\':
            case '/':
                out->push_back(esc);
                break;
            case 'n':
                out->push_back('\n');
                break;
            case 't':
                out->push_back('\t');
                break;
            case 'r':
                out->push_back('\r');
                break;
            case 'b':
                out->push_back('\b');
                break;
            case 'f':
                out->push_back('\f');
                break;
            case 'u': {
                if (pos_ + 4 > s_.size())
                    return fail("truncated \\u escape");
                unsigned code = 0;
                for (int i = 0; i < 4; ++i) {
                    const char h = s_[pos_++];
                    code <<= 4;
                    if (h >= '0' && h <= '9')
                        code |= static_cast<unsigned>(h - '0');
                    else if (h >= 'a' && h <= 'f')
                        code |= static_cast<unsigned>(h - 'a' + 10);
                    else if (h >= 'A' && h <= 'F')
                        code |= static_cast<unsigned>(h - 'A' + 10);
                    else
                        return fail("bad \\u escape");
                }
                // The harness only escapes control characters; emit
                // the low byte (sufficient for ASCII round-trips).
                out->push_back(static_cast<char>(code & 0xff));
                break;
            }
            default:
                return fail("bad escape");
            }
        }
        return fail("unterminated string");
    }

    bool
    parseArray(JsonValue *out)
    {
        out->kind = JsonValue::Kind::Array;
        consume('[');
        skipWs();
        if (consume(']'))
            return true;
        for (;;) {
            JsonValue v;
            skipWs();
            if (!parseValue(&v))
                return false;
            out->array.push_back(std::move(v));
            skipWs();
            if (consume(']'))
                return true;
            if (!consume(','))
                return fail("expected ',' or ']'");
        }
    }

    bool
    parseObject(JsonValue *out)
    {
        out->kind = JsonValue::Kind::Object;
        consume('{');
        skipWs();
        if (consume('}'))
            return true;
        for (;;) {
            skipWs();
            std::string key;
            if (!parseString(&key))
                return false;
            skipWs();
            if (!consume(':'))
                return fail("expected ':'");
            skipWs();
            JsonValue v;
            if (!parseValue(&v))
                return false;
            out->object.emplace(std::move(key), std::move(v));
            skipWs();
            if (consume('}'))
                return true;
            if (!consume(','))
                return fail("expected ',' or '}'");
        }
    }

    const std::string &s_;
    size_t pos_ = 0;
    std::string *error_;
};

uint64_t
asU64(const JsonValue &v)
{
    return v.kind == JsonValue::Kind::Number && v.number > 0
               ? static_cast<uint64_t>(std::llround(v.number))
               : 0;
}

bool
decodeRecord(const JsonValue &root, NamedSnapshot *out)
{
    const JsonValue *record = root.get("record");
    if (!record || record->str != "telemetry")
        return false;
    if (const JsonValue *app = root.get("app"))
        out->app = app->str;
    if (const JsonValue *counters = root.get("counters")) {
        for (const auto &[name, v] : counters->object)
            out->snap.counters[name] = asU64(v);
    }
    if (const JsonValue *gauges = root.get("gauges")) {
        for (const auto &[name, v] : gauges->object) {
            out->snap.gauges[name] =
                static_cast<int64_t>(std::llround(v.number));
        }
    }
    if (const JsonValue *hists = root.get("histograms")) {
        for (const auto &[name, v] : hists->object) {
            Snapshot::Hist h;
            if (const JsonValue *c = v.get("count"))
                h.count = asU64(*c);
            if (const JsonValue *sum = v.get("sum"))
                h.sum = asU64(*sum);
            if (const JsonValue *buckets = v.get("buckets")) {
                const size_t n = std::min(buckets->array.size(),
                                          h.buckets.size());
                for (size_t b = 0; b < n; ++b)
                    h.buckets[b] = asU64(buckets->array[b]);
            }
            out->snap.histograms[name] = h;
        }
    }
    return true;
}

} // namespace

std::vector<NamedSnapshot>
readTelemetryRecords(std::istream &in, std::string *error)
{
    std::vector<NamedSnapshot> out;
    std::string line;
    size_t lineno = 0;
    while (std::getline(in, line)) {
        ++lineno;
        if (line.find_first_not_of(" \t\r") == std::string::npos)
            continue;
        // Cheap pre-filter: only telemetry records carry this tag.
        if (line.find("\"record\":\"telemetry\"") == std::string::npos)
            continue;
        std::string parse_error;
        JsonValue root;
        if (!JsonParser(line, &parse_error).parse(&root)) {
            if (error && error->empty()) {
                *error = "line " + std::to_string(lineno) + ": " +
                         parse_error;
            }
            continue;
        }
        NamedSnapshot rec;
        if (decodeRecord(root, &rec))
            out.push_back(std::move(rec));
    }
    return out;
}

} // namespace telemetry
} // namespace sparseap
