/**
 * @file
 * Reading telemetry snapshots back from a SPARSEAP_JSON stream.
 *
 * The bench harness appends one JSON object per line (JSON Lines):
 * table records (written by ExperimentRunner::printTable) and telemetry
 * records (written by telemetry::writeSnapshotJson). This header
 * provides the inverse of writeSnapshotJson — a minimal JSON parser
 * plus record extraction — so `apstat` can pretty-print and diff runs
 * without external dependencies.
 */

#ifndef SPARSEAP_TELEMETRY_SNAPSHOT_IO_H
#define SPARSEAP_TELEMETRY_SNAPSHOT_IO_H

#include <iosfwd>
#include <string>
#include <vector>

#include "telemetry/metrics.h"

namespace sparseap {
namespace telemetry {

/** One telemetry record read back from a JSON-lines stream. */
struct NamedSnapshot
{
    std::string app; ///< record tag ("*" = cumulative whole process)
    Snapshot snap;
};

/**
 * Extract every telemetry record of a JSON-lines stream, in order.
 * Non-telemetry lines (table records, blanks) are skipped; a malformed
 * line is reported in @p error (if non-null) and skipped.
 */
std::vector<NamedSnapshot> readTelemetryRecords(std::istream &in,
                                                std::string *error);

} // namespace telemetry
} // namespace sparseap

#endif // SPARSEAP_TELEMETRY_SNAPSHOT_IO_H
