#include "telemetry/trace.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <mutex>
#include <utility>
#include <vector>

#include "common/logging.h"

namespace sparseap {
namespace telemetry {

namespace {

using Clock = std::chrono::steady_clock;

/** One finished span, ready for serialization. */
struct TraceEvent
{
    const char *name;
    uint64_t ts_us;
    uint64_t dur_us;
    uint32_t tid;
    std::string args;
};

/** Sequential id per thread (stable across sessions). */
uint32_t
threadTid()
{
    static std::atomic<uint32_t> next{0};
    thread_local const uint32_t tid =
        next.fetch_add(1, std::memory_order_relaxed);
    return tid;
}

/** Active session: a guarded event buffer and its output path. Spans
 *  are batch/phase grained, so one mutex sees negligible contention. */
struct Session
{
    std::string path;
    std::mutex mutex;
    std::vector<TraceEvent> events;
    bool flushed = false;

    void
    append(TraceEvent &&e)
    {
        std::lock_guard<std::mutex> lock(mutex);
        if (!flushed)
            events.push_back(std::move(e));
    }

    void
    flush()
    {
        std::lock_guard<std::mutex> lock(mutex);
        if (flushed)
            return;
        flushed = true;
        std::ofstream out(path);
        if (!out) {
            warn("SPARSEAP_TRACE: cannot open '", path, "' for write");
            return;
        }
        // Chrome's JSON importer doesn't require any ordering, but a
        // per-tid monotonic stream is easier for humans and checkable
        // by CI: sort by (tid, ts, outer-span-first).
        std::sort(events.begin(), events.end(),
                  [](const TraceEvent &a, const TraceEvent &b) {
                      if (a.tid != b.tid)
                          return a.tid < b.tid;
                      if (a.ts_us != b.ts_us)
                          return a.ts_us < b.ts_us;
                      return a.dur_us > b.dur_us;
                  });
        out << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
        for (size_t i = 0; i < events.size(); ++i) {
            const TraceEvent &e = events[i];
            out << (i ? ",\n" : "\n")
                << "{\"name\":\"" << e.name
                << "\",\"cat\":\"sparseap\",\"ph\":\"X\",\"pid\":1,"
                << "\"tid\":" << e.tid << ",\"ts\":" << e.ts_us
                << ",\"dur\":" << e.dur_us;
            if (!e.args.empty())
                out << ",\"args\":{" << e.args << "}";
            out << "}";
        }
        out << "\n]}\n";
    }
};

std::atomic<bool> g_enabled{false};
std::mutex g_session_mutex;
std::shared_ptr<Session> g_session; // NOLINT: guarded above

void
beginSession(std::string path)
{
    std::lock_guard<std::mutex> lock(g_session_mutex);
    auto s = std::make_shared<Session>();
    s->path = std::move(path);
    g_session = std::move(s);
    g_enabled.store(true, std::memory_order_release);
}

std::shared_ptr<Session>
endSession()
{
    std::lock_guard<std::mutex> lock(g_session_mutex);
    g_enabled.store(false, std::memory_order_release);
    return std::exchange(g_session, nullptr);
}

std::shared_ptr<Session>
currentSession()
{
    std::lock_guard<std::mutex> lock(g_session_mutex);
    return g_session;
}

void
flushEnvSession()
{
    if (auto s = endSession())
        s->flush();
}

/** Lazily start the SPARSEAP_TRACE-driven session, once. */
void
initFromEnvironment()
{
    const char *path = std::getenv("SPARSEAP_TRACE");
    if (!path || !*path)
        return;
    beginSession(path);
    std::atexit(flushEnvSession);
}

std::once_flag g_env_once;

} // namespace

bool
traceEnabled()
{
    std::call_once(g_env_once, initFromEnvironment);
    return g_enabled.load(std::memory_order_acquire);
}

uint64_t
nowMicros()
{
    static const Clock::time_point t0 = Clock::now();
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            Clock::now() - t0)
            .count());
}

void
traceEmitComplete(const char *name, uint64_t ts_us, uint64_t dur_us,
                  std::string args)
{
    if (!traceEnabled())
        return;
    if (auto s = currentSession())
        s->append({name, ts_us, dur_us, threadTid(), std::move(args)});
}

TraceSession::TraceSession(std::string path)
{
    beginSession(std::move(path));
}

void
TraceSession::finish()
{
    if (!active_)
        return;
    active_ = false;
    if (auto s = endSession())
        s->flush();
}

TraceSession::~TraceSession()
{
    finish();
}

void
ScopedSpan::begin(const char *name)
{
    name_ = name;
    t0_us_ = nowMicros();
}

void
ScopedSpan::end()
{
    const uint64_t t1 = nowMicros();
    if (auto s = currentSession()) {
        s->append({name_, t0_us_, t1 - t0_us_, threadTid(),
                   std::move(args_)});
    }
    name_ = nullptr;
}

void
ScopedSpan::arg(const char *key, uint64_t value)
{
    if (!name_)
        return;
    if (!args_.empty())
        args_ += ',';
    args_ += '"';
    args_ += key;
    args_ += "\":";
    args_ += std::to_string(value);
}

void
ScopedSpan::arg(const char *key, const std::string &value)
{
    if (!name_)
        return;
    if (!args_.empty())
        args_ += ',';
    args_ += '"';
    args_ += key;
    args_ += "\":\"";
    for (char c : value) {
        if (c == '"' || c == '\\')
            args_ += '\\';
        args_ += c;
    }
    args_ += '"';
}

ScopedPhase::ScopedPhase(HistogramMetric &hist, const char *span_name)
    : hist_(hist), t0_us_(nowMicros()), span_(span_name)
{
}

ScopedPhase::~ScopedPhase()
{
    hist_.add(nowMicros() - t0_us_);
}

} // namespace telemetry
} // namespace sparseap
