/**
 * @file
 * Scoped spans with Chrome trace-event export.
 *
 * A span covers one scope (`SPARSEAP_SPAN("partition.fill")`), records
 * begin/end timestamps plus optional key/value args, and is streamed out
 * as one complete ("ph":"X") Chrome trace event when a trace session is
 * active. Load the resulting file in Perfetto (ui.perfetto.dev) or
 * chrome://tracing.
 *
 * Sessions start in one of two ways:
 *  - `SPARSEAP_TRACE=<file>` in the environment: the session begins on
 *    first span use and flushes at process exit;
 *  - an explicit `TraceSession` object (tests, tools): flushes when the
 *    object dies.
 *
 * Cost model: with no active session a span is one relaxed atomic load
 * and a branch — no clock read, no allocation. The per-symbol step
 * loops carry no spans at all, so kernel throughput is unaffected
 * either way; spans sit at batch/phase/app granularity. Defining
 * SPARSEAP_NO_TRACING compiles every span macro away entirely.
 *
 * `SPARSEAP_PHASE("flatten")` is a span that additionally records its
 * duration into the `phase.flatten_us` histogram metric even when no
 * trace session is active, so pipeline phase timings always show up in
 * telemetry snapshots.
 */

#ifndef SPARSEAP_TELEMETRY_TRACE_H
#define SPARSEAP_TELEMETRY_TRACE_H

#include <cstdint>
#include <string>

#include "telemetry/metrics.h"

namespace sparseap {
namespace telemetry {

/** @return true iff a trace session is active (fast, lock-free). */
bool traceEnabled();

/** RAII trace session writing to @p path on destruction (or abandon()).
 *  Replaces any environment-driven session while alive. */
class TraceSession
{
  public:
    explicit TraceSession(std::string path);
    ~TraceSession();

    TraceSession(const TraceSession &) = delete;
    TraceSession &operator=(const TraceSession &) = delete;

    /** Flush now and end the session early. */
    void finish();

  private:
    bool active_ = true;
};

/** One scope = one complete trace event (see file comment). */
class ScopedSpan
{
  public:
    explicit ScopedSpan(const char *name)
    {
        if (traceEnabled())
            begin(name);
    }

    ScopedSpan(const char *name, const char *key, uint64_t value)
    {
        if (traceEnabled()) {
            begin(name);
            arg(key, value);
        }
    }

    ScopedSpan(const char *name, const char *key,
               const std::string &value)
    {
        if (traceEnabled()) {
            begin(name);
            arg(key, value);
        }
    }

    ScopedSpan(const char *name, const char *k1, uint64_t v1,
               const char *k2, uint64_t v2)
    {
        if (traceEnabled()) {
            begin(name);
            arg(k1, v1);
            arg(k2, v2);
        }
    }

    ~ScopedSpan()
    {
        if (name_)
            end();
    }

    ScopedSpan(const ScopedSpan &) = delete;
    ScopedSpan &operator=(const ScopedSpan &) = delete;

    /** Attach one numeric arg (no-op when no session is active). */
    void arg(const char *key, uint64_t value);

    /** Attach one string arg (no-op when no session is active). */
    void arg(const char *key, const std::string &value);

  private:
    void begin(const char *name);
    void end();

    const char *name_ = nullptr; ///< non-null iff recording
    uint64_t t0_us_ = 0;
    std::string args_; ///< pre-rendered JSON members ("\"k\":v,...")
};

/** Span + always-on duration histogram (see file comment). */
class ScopedPhase
{
  public:
    ScopedPhase(HistogramMetric &hist, const char *span_name);
    ~ScopedPhase();

    ScopedPhase(const ScopedPhase &) = delete;
    ScopedPhase &operator=(const ScopedPhase &) = delete;

  private:
    HistogramMetric &hist_;
    uint64_t t0_us_;
    ScopedSpan span_;
};

/** Monotonic microseconds since process start (trace timebase). */
uint64_t nowMicros();

/**
 * Append one pre-timed complete event to the active trace session
 * (no-op without one). For span sources that buffer their own timings
 * — request-scoped traces replay their span tree through this at
 * request end. @p args: pre-rendered JSON members ("\"k\":v,...") or
 * empty; timestamps on the nowMicros() timebase.
 */
void traceEmitComplete(const char *name, uint64_t ts_us,
                       uint64_t dur_us, std::string args);

#define SPARSEAP_TELEMETRY_CAT2(a, b) a##b
#define SPARSEAP_TELEMETRY_CAT(a, b) SPARSEAP_TELEMETRY_CAT2(a, b)

#ifdef SPARSEAP_NO_TRACING
#define SPARSEAP_SPAN(...)                                                   \
    [[maybe_unused]] const int SPARSEAP_TELEMETRY_CAT(sparseap_span_,        \
                                                      __LINE__) = 0
#define SPARSEAP_PHASE(name)                                                 \
    [[maybe_unused]] const int SPARSEAP_TELEMETRY_CAT(sparseap_phase_,       \
                                                      __LINE__) = 0
#else
/** Open a span covering the rest of the enclosing scope. */
#define SPARSEAP_SPAN(...)                                                   \
    ::sparseap::telemetry::ScopedSpan SPARSEAP_TELEMETRY_CAT(               \
        sparseap_span_, __LINE__)(__VA_ARGS__)

/** Span + `phase.<name>_us` histogram; @p name must be a literal. */
#define SPARSEAP_PHASE(name)                                                 \
    static ::sparseap::telemetry::HistogramMetric                            \
        SPARSEAP_TELEMETRY_CAT(sparseap_phase_hist_,                         \
                               __LINE__)("phase." name "_us");               \
    ::sparseap::telemetry::ScopedPhase SPARSEAP_TELEMETRY_CAT(              \
        sparseap_phase_, __LINE__)(                                          \
        SPARSEAP_TELEMETRY_CAT(sparseap_phase_hist_, __LINE__), name)
#endif

} // namespace telemetry
} // namespace sparseap

#endif // SPARSEAP_TELEMETRY_TRACE_H
