#include "telemetry/window.h"

#include <algorithm>
#include <utility>

#include "common/logging.h"

namespace sparseap {
namespace telemetry {

namespace {

/** after - before per metric, clamped at 0 (never wraps). */
Snapshot
clampedDelta(const Snapshot &before, const Snapshot &after)
{
    Snapshot d;
    for (const auto &[name, value] : after.counters) {
        auto it = before.counters.find(name);
        const uint64_t prev =
            it != before.counters.end() ? it->second : 0;
        d.counters[name] = value >= prev ? value - prev : 0;
    }
    d.gauges = after.gauges; // levels, not rates
    for (const auto &[name, hist] : after.histograms) {
        Snapshot::Hist dh = hist;
        auto it = before.histograms.find(name);
        if (it != before.histograms.end()) {
            const Snapshot::Hist &prev = it->second;
            dh.count = dh.count >= prev.count ? dh.count - prev.count : 0;
            dh.sum = dh.sum >= prev.sum ? dh.sum - prev.sum : 0;
            for (size_t b = 0; b < Histogram::kBuckets; ++b) {
                dh.buckets[b] = dh.buckets[b] >= prev.buckets[b]
                                    ? dh.buckets[b] - prev.buckets[b]
                                    : 0;
            }
        }
        d.histograms[name] = dh;
    }
    return d;
}

} // namespace

double
WindowView::rate(const std::string &name) const
{
    if (!valid())
        return 0.0;
    auto it = delta.counters.find(name);
    if (it == delta.counters.end())
        return 0.0;
    return static_cast<double>(it->second) /
           (static_cast<double>(spanMicros) / 1e6);
}

double
WindowView::histQuantile(const std::string &name, double q) const
{
    auto it = delta.histograms.find(name);
    if (it == delta.histograms.end())
        return 0.0;
    return it->second.quantile(q);
}

WindowRing::WindowRing(size_t capacity)
{
    SPARSEAP_ASSERT(capacity >= 2,
                    "WindowRing needs >= 2 samples, got ", capacity);
    ring_.resize(capacity);
}

void
WindowRing::push(uint64_t ts_us, Snapshot snap)
{
    std::lock_guard<std::mutex> lock(mutex_);
    ring_[head_] = {ts_us, std::move(snap)};
    head_ = (head_ + 1) % ring_.size();
    count_ = std::min(count_ + 1, ring_.size());
}

WindowView
WindowRing::over(uint64_t horizonMicros) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    WindowView view;
    if (count_ < 2)
        return view;
    // Newest is the slot just written; walk back to the oldest sample
    // still inside the horizon (ring order == push order).
    const size_t newest = (head_ + ring_.size() - 1) % ring_.size();
    const Sample &last = ring_[newest];
    const uint64_t floor_ts =
        last.ts_us >= horizonMicros ? last.ts_us - horizonMicros : 0;
    size_t oldest = newest;
    for (size_t i = 1; i < count_; ++i) {
        const size_t slot = (newest + ring_.size() - i) % ring_.size();
        if (ring_[slot].ts_us < floor_ts)
            break;
        oldest = slot;
    }
    if (oldest == newest)
        return view; // only the newest sample is inside the horizon
    const Sample &first = ring_[oldest];
    if (last.ts_us <= first.ts_us)
        return view; // zero span: rates undefined
    view.spanMicros = last.ts_us - first.ts_us;
    view.delta = clampedDelta(first.snap, last.snap);
    return view;
}

size_t
WindowRing::size() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return count_;
}

uint64_t
WindowRing::newestMicros() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (count_ == 0)
        return 0;
    return ring_[(head_ + ring_.size() - 1) % ring_.size()].ts_us;
}

void
WindowRing::clear()
{
    std::lock_guard<std::mutex> lock(mutex_);
    head_ = 0;
    count_ = 0;
}

} // namespace telemetry
} // namespace sparseap
