/**
 * @file
 * Rolling-window layer over the metrics registry: a bounded ring of
 * timestamped Snapshots and the delta/rate math to answer "what is the
 * process doing *now*" instead of "what has it done since boot".
 *
 * A sampler (the serving daemon's observer thread, or anything else
 * with a clock) pushes a full telemetry::snapshot() into a WindowRing
 * once per period. A WindowView over a horizon (last 10s / 1m / 5m) is
 * the counter delta between the newest sample and the oldest retained
 * sample inside the horizon, plus the wall-clock span those two samples
 * actually cover — rates are delta/span, windowed histogram percentiles
 * come from the bucket deltas via the shared log-bucket quantile math.
 *
 * The ring is bounded (kDefaultCapacity samples ≈ 5m + slack at a 1 s
 * period), so a 30-day daemon holds a few hundred snapshots, never an
 * unbounded history. Counter resets (which cannot happen with the
 * monotonic registry, but can with hand-built snapshots) clamp to 0
 * instead of wrapping — a window rate is never a huge bogus number.
 *
 * See docs/OBSERVABILITY.md §Rolling windows; tested by
 * tests/test_window.cc.
 */

#ifndef SPARSEAP_TELEMETRY_WINDOW_H
#define SPARSEAP_TELEMETRY_WINDOW_H

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "telemetry/metrics.h"

namespace sparseap {
namespace telemetry {

/** The dashboard horizons, microseconds. */
constexpr uint64_t kWindow10s = 10ull * 1000 * 1000;
constexpr uint64_t kWindow1m = 60ull * 1000 * 1000;
constexpr uint64_t kWindow5m = 300ull * 1000 * 1000;

/** One horizon's delta view (valid() == false with < 2 samples). */
struct WindowView
{
    /** Wall clock actually covered (oldest→newest sample), ≤ horizon. */
    uint64_t spanMicros = 0;
    /** Counter + histogram deltas over the span (gauges: latest). */
    Snapshot delta;

    bool valid() const { return spanMicros > 0; }

    /** @p name's per-second rate over the span (0 when absent). */
    double rate(const std::string &name) const;

    /** Windowed quantile of histogram @p name (0 when absent/empty). */
    double histQuantile(const std::string &name, double q) const;
};

/** Bounded ring of timestamped snapshots (see file comment). */
class WindowRing
{
  public:
    /** ≈ 5 minutes of 1 s samples plus slack. */
    static constexpr size_t kDefaultCapacity = 310;

    explicit WindowRing(size_t capacity = kDefaultCapacity);

    /** Append a sample; @p ts_us must be monotonically non-decreasing
     *  (same timebase as the views asked for later). */
    void push(uint64_t ts_us, Snapshot snap);

    /**
     * Delta view over the last @p horizonMicros, anchored at the newest
     * sample: newest minus the oldest retained sample within the
     * horizon. With fewer than two samples the view is invalid.
     */
    WindowView over(uint64_t horizonMicros) const;

    /** Samples currently retained. */
    size_t size() const;

    /** Timestamp of the newest sample (0 when empty). */
    uint64_t newestMicros() const;

    void clear();

  private:
    struct Sample
    {
        uint64_t ts_us = 0;
        Snapshot snap;
    };

    mutable std::mutex mutex_;
    std::vector<Sample> ring_; ///< capacity-bounded, oldest overwritten
    size_t head_ = 0;          ///< next write slot
    size_t count_ = 0;
};

} // namespace telemetry
} // namespace sparseap

#endif // SPARSEAP_TELEMETRY_WINDOW_H
