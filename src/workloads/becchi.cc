#include "workloads/becchi.h"

#include "common/logging.h"
#include "regex/glushkov.h"

namespace sparseap {
namespace {

/** Printable characters that need no regex escaping. */
const char kPlain[] =
    "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789"
    " /:-_=&%#@!<>,;'";

char
plainChar(Rng &rng)
{
    return kPlain[rng.index(sizeof(kPlain) - 1)];
}

} // namespace

Workload
makeBecchi(const BecchiParams &params, Rng &rng, const std::string &name,
           const std::string &abbr)
{
    Workload w;
    w.app.setNames(name, abbr);

    for (size_t n = 0; n < params.nfaCount; ++n) {
        const bool long_pattern =
            params.longPatternLength > 0 &&
            (n == 0 || rng.chance(params.longPatternProb));
        const unsigned len =
            long_pattern ? params.longPatternLength
                         : static_cast<unsigned>(rng.uniform(
                               params.minLength, params.maxLength));
        const bool has_dotstar = rng.chance(params.dotStarProb);
        unsigned dotstars =
            has_dotstar ? 1 + static_cast<unsigned>(
                                  rng.uniform(0, params.maxDotStars - 1))
                        : 0;

        // Pick the positions (in [4, len-4]) where `.*` gaps go.
        std::vector<unsigned> gap_at;
        for (unsigned g = 0; g < dotstars && len > 10; ++g)
            gap_at.push_back(
                4 + static_cast<unsigned>(rng.uniform(0, len - 9)));

        std::string pattern;
        std::string plant;
        for (unsigned i = 0; i < len; ++i) {
            for (unsigned g : gap_at) {
                if (g == i)
                    pattern += ".*";
            }
            if (rng.chance(params.rangeFraction)) {
                // A modest byte range like [a-e].
                const char lo =
                    static_cast<char>('a' + rng.uniform(0, 20));
                const char hi = static_cast<char>(
                    lo + static_cast<char>(rng.uniform(2, 5)));
                pattern += '[';
                pattern += lo;
                pattern += '-';
                pattern += hi;
                pattern += ']';
                if (i < 12)
                    plant += lo; // a byte inside the range
            } else {
                const char c = plainChar(rng);
                if (std::string("().[]{}|*+?^$\\").find(c) !=
                    std::string::npos) {
                    pattern += '\\';
                }
                pattern += c;
                if (i < 12)
                    plant += c;
            }
        }

        w.app.addNfa(
            compileRegex(pattern, abbr + "_" + std::to_string(n)));
        if (plant.size() >= 4)
            w.input.plants.push_back(plant);
    }

    w.input.base = InputSpec::Base::Alphabet;
    w.input.alphabet = kPlain;
    w.input.plantRate = params.plantRate;
    w.input.prefixKeepProb = params.prefixKeepProb;
    w.input.fullPlantProb = 0.01;
    return w;
}

} // namespace sparseap
