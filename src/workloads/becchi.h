/**
 * @file
 * The Becchi/Franklin/Crowley regex workload family ("A Workload for
 * Evaluating Deep Packet Inspection Architectures", IISWC'08): synthetic
 * rule sets graded by feature mix —
 *
 *   EM          exact-match ASCII literals
 *   Ranges05/1  literals where 50% / 100% of positions are byte ranges
 *   Dotstar03/06/09  rules containing `.*` with probability 0.3/0.6/0.9
 *   TCP         a mixed ruleset modelling TCP-stream signatures
 *   Bro217      217-rule Bro HTTP signature set (literal URIs)
 *
 * ANMLZoo's Dotstar (DS) application is the same generator scaled up.
 * All patterns go through the regex parser + Glushkov compiler.
 */

#ifndef SPARSEAP_WORKLOADS_BECCHI_H
#define SPARSEAP_WORKLOADS_BECCHI_H

#include "common/rng.h"
#include "workloads/workload.h"

namespace sparseap {

/** Parameters of a Becchi-style regex workload. */
struct BecchiParams
{
    size_t nfaCount = 297;
    /** Pattern length in positions (uniform in [min, max]). */
    unsigned minLength = 30;
    unsigned maxLength = 55;
    /** A few patterns are much longer (sets the suite's MaxTopo). */
    double longPatternProb = 0.0;
    unsigned longPatternLength = 0;
    /** Fraction of positions that are character ranges. */
    double rangeFraction = 0.0;
    /** Probability that a pattern contains `.*` gaps. */
    double dotStarProb = 0.0;
    /** Max number of `.*` gaps in a dotstar pattern. */
    unsigned maxDotStars = 2;
    /** Pattern prefixes planted into the input at this rate. */
    double plantRate = 0.002;
    /** Plant-prefix survival probability (controls hot depth). */
    double prefixKeepProb = 0.75;
};

/** Generate a Becchi-style workload. */
Workload makeBecchi(const BecchiParams &params, Rng &rng,
                    const std::string &name, const std::string &abbr);

} // namespace sparseap

#endif // SPARSEAP_WORKLOADS_BECCHI_H
