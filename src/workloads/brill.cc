#include "workloads/brill.h"

#include "common/logging.h"

namespace sparseap {
namespace {

const char *const kCommonTags[] = {"NN ", "VB ", "DT ", "JJ ", "IN ",
                                   "RB ", "TO ", "CC ", "MD ", "CD "};
constexpr size_t kCommonTagCount =
    sizeof(kCommonTags) / sizeof(kCommonTags[0]);

} // namespace

Workload
makeBrill(const BrillParams &params, Rng &rng, const std::string &name,
          const std::string &abbr)
{
    Workload w;
    w.app.setNames(name, abbr);

    static const char kTagChars[] = "ABCDEFGHIJKLMNOPQRSTUVWXYZ";

    for (size_t n = 0; n < params.nfaCount; ++n) {
        const unsigned tokens = static_cast<unsigned>(
            rng.uniform(params.minTokens, params.maxTokens));
        Nfa nfa(abbr + "_" + std::to_string(n));

        std::string window;
        for (unsigned t = 0; t < tokens; ++t) {
            // The opening bigram always comes from the common tags: many
            // rules share it, so a planted common sequence walks them to
            // their partition boundary *simultaneously* — the source of
            // Brill's enable stalls in Table IV.
            if (t < 2 || rng.chance(params.commonTagProb)) {
                window += kCommonTags[rng.index(kCommonTagCount)];
            } else {
                for (unsigned b = 0; b + 1 < params.tokenBytes; ++b)
                    window += kTagChars[rng.index(sizeof(kTagChars) - 1)];
                window += ' ';
            }
        }

        StateId prev = kInvalidState;
        for (size_t i = 0; i < window.size(); ++i) {
            const StateId s = nfa.addState(
                SymbolSet::single(static_cast<uint8_t>(window[i])),
                i == 0 ? StartKind::AllInput : StartKind::None,
                i + 1 == window.size());
            if (prev != kInvalidState)
                nfa.addEdge(prev, s);
            prev = s;
        }
        nfa.finalize();
        w.app.addNfa(std::move(nfa));
        w.input.plants.push_back(window);
    }

    // Tagged-text stream: tag mnemonics separated by spaces, with rule
    // windows planted (mostly as prefixes, sometimes fully).
    w.input.base = InputSpec::Base::Alphabet;
    w.input.alphabet = std::string(kTagChars) + "   ";
    for (size_t i = 0; i < kCommonTagCount; ++i)
        w.input.plants.push_back(kCommonTags[i]);
    w.input.plantRate = params.plantRate;
    w.input.prefixKeepProb = 0.85;
    w.input.fullPlantProb = 0.15;
    return w;
}

} // namespace sparseap
