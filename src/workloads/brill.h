/**
 * @file
 * Brill-tagging rule workloads (ANMLZoo Brill).
 *
 * Brill part-of-speech transformation rules match short windows of
 * word/tag tokens. Encoded here as chains over a token alphabet where a
 * few tags are extremely common — which is why Brill generates many
 * intermediate reports and enable stalls in Table IV.
 */

#ifndef SPARSEAP_WORKLOADS_BRILL_H
#define SPARSEAP_WORKLOADS_BRILL_H

#include "common/rng.h"
#include "workloads/workload.h"

namespace sparseap {

/** Parameters for Brill rule chains. */
struct BrillParams
{
    size_t nfaCount = 1962;
    /** Tokens per rule window. */
    unsigned minTokens = 4;
    unsigned maxTokens = 7;
    /** Bytes per token (tag mnemonics like "NN "). */
    unsigned tokenBytes = 3;
    /** Probability a token is one of the very common tags. */
    double commonTagProb = 0.55;
    /** How often tag text is planted into the input. */
    double plantRate = 0.015;
};

/** Generate a Brill workload. */
Workload makeBrill(const BrillParams &params, Rng &rng,
                   const std::string &name, const std::string &abbr);

} // namespace sparseap

#endif // SPARSEAP_WORKLOADS_BRILL_H
