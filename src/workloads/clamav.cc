#include "workloads/clamav.h"

#include <cmath>

#include "common/logging.h"

namespace sparseap {
namespace {

/** Draw lo + Exp(mean - lo), clipped to [lo, hi]. */
unsigned
drawLength(Rng &rng, unsigned lo, unsigned mean, unsigned hi)
{
    const double scale = static_cast<double>(mean > lo ? mean - lo : 1);
    const double v = static_cast<double>(lo) -
                     scale * std::log(1.0 - rng.real());
    unsigned len = static_cast<unsigned>(v);
    return len < lo ? lo : (len > hi ? hi : len);
}

} // namespace

Workload
makeClamAv(const ClamAvParams &params, Rng &rng, const std::string &name,
           const std::string &abbr)
{
    Workload w;
    w.app.setNames(name, abbr);

    for (size_t n = 0; n < params.nfaCount; ++n) {
        // The first signature is pinned to maxLength (Table II MaxTopo).
        const unsigned len =
            n == 0 ? params.maxLength
                   : drawLength(rng, params.minLength, params.meanLength,
                                params.maxLength);
        Nfa nfa(abbr + "_" + std::to_string(n));

        std::string literal; // the plantable byte rendering of the chain
        StateId prev = kInvalidState;
        for (unsigned i = 0; i < len; ++i) {
            SymbolSet set;
            uint8_t byte = rng.byte();
            if (rng.chance(params.wildcardRate)) {
                set = SymbolSet::all(); // "??" wildcard byte
            } else {
                set = SymbolSet::single(byte);
                literal += static_cast<char>(byte);
            }
            const StartKind start =
                i == 0 ? StartKind::AllInput : StartKind::None;
            const StateId s = nfa.addState(set, start, false);
            if (prev != kInvalidState) {
                nfa.addEdge(prev, s);
                // A bounded gap {0-k}: skip edges over 1..3 optional
                // wildcard states.
                if (rng.chance(params.gapRate) && i + 4 < len) {
                    // The next up-to-3 states become optional by adding a
                    // skip edge later; emulate simply with an extra "any"
                    // state reachable in parallel.
                    const StateId gap = nfa.addState(SymbolSet::all(),
                                                     StartKind::None, false);
                    nfa.addEdge(prev, gap);
                    nfa.addEdge(gap, s);
                }
            }
            prev = s;
        }
        // Reporting tail; a few signatures carry an alternation tail
        // (two reporting variants), giving Table II's RStates > #NFAs.
        nfa.state(prev).reporting = true;
        if (rng.chance(params.altTailProb)) {
            const StateId alt = nfa.addState(
                SymbolSet::single(rng.byte()), StartKind::None, true);
            nfa.addEdge(prev, alt);
        }
        nfa.finalize();
        w.app.addNfa(std::move(nfa));

        if (literal.size() >= 8)
            w.input.plants.push_back(literal.substr(0, 48));
    }

    // Benign binary input: uniform bytes with very rare short signature
    // prefixes. Deep signature states stay cold (Fig. 1: CAV4k 99% cold).
    w.input.base = InputSpec::Base::RandomBytes;
    w.input.plantRate = params.plantRate;
    w.input.prefixKeepProb = 0.6;
    w.input.fullPlantProb = 0.001;
    return w;
}

} // namespace sparseap
