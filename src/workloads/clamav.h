/**
 * @file
 * ClamAV-style virus-signature workloads (CAV from ANMLZoo; CAV4k scaled
 * to the first 4,000 patterns of the Q1-2018 database, per the paper).
 *
 * A signature is a long hex byte-string with occasional wildcard gaps
 * ("??"), short bounded gaps ("{n-m}") and two-way alternations — the
 * ClamAV body-signature grammar. Compiled to a deep chain NFA whose far
 * end is essentially unreachable on benign input: the source of the
 * paper's 99%-cold observation for CAV4k (Fig. 1).
 */

#ifndef SPARSEAP_WORKLOADS_CLAMAV_H
#define SPARSEAP_WORKLOADS_CLAMAV_H

#include "common/rng.h"
#include "workloads/workload.h"

namespace sparseap {

/** Parameters of a ClamAV-style workload. */
struct ClamAvParams
{
    size_t nfaCount = 515;
    /** Signature byte-lengths: minLength + Exp(meanLength - minLength),
     *  clipped to maxLength; one signature is forced to maxLength so the
     *  workload hits its Table II MaxTopo. */
    unsigned minLength = 24;
    unsigned meanLength = 96;
    unsigned maxLength = 542;
    /** Probability per position of a "??" wildcard byte. */
    double wildcardRate = 0.03;
    /** Probability per position of opening a short {n-m} gap. */
    double gapRate = 0.01;
    /** Probability that a signature ends with an alternation tail. */
    double altTailProb = 0.004;
    /** Rate at which signature prefixes are planted in the input. */
    double plantRate = 0.00005;
};

/** Generate a ClamAV-style workload (signatures + binary input). */
Workload makeClamAv(const ClamAvParams &params, Rng &rng,
                    const std::string &name, const std::string &abbr);

} // namespace sparseap

#endif // SPARSEAP_WORKLOADS_CLAMAV_H
