#include "workloads/entity_resolution.h"

#include "common/logging.h"

namespace sparseap {

Workload
makeEntityResolution(const EntityResolutionParams &params, Rng &rng,
                     const std::string &name, const std::string &abbr)
{
    Workload w;
    w.app.setNames(name, abbr);

    static const char kNameChars[] = "abcdefghijklmnopqrstuvwxyz. ";

    auto rand_char = [&]() {
        return static_cast<uint8_t>(
            kNameChars[rng.index(sizeof(kNameChars) - 1)]);
    };

    // Openers come from a small shared pool of common record tokens, so
    // even a short profiling prefix sees every opener: each NFA's loop is
    // entered during profiling, its (bottom-layer) SCC is profiled hot,
    // and the partition can prune almost nothing — the paper's ER
    // behaviour.
    std::vector<std::string> opener_pool;
    for (int i = 0; i < 12; ++i) {
        std::string tok;
        for (unsigned c = 0; c < params.entryLength; ++c)
            tok += static_cast<char>(rand_char());
        opener_pool.push_back(tok);
    }

    for (size_t n = 0; n < params.nfaCount; ++n) {
        Nfa nfa(abbr + "_" + std::to_string(n));

        // Entry chain: a record-opening token from the shared pool.
        const std::string &opener = opener_pool[n % opener_pool.size()];
        StateId prev = kInvalidState;
        for (unsigned i = 0; i < params.entryLength; ++i) {
            const uint8_t c = static_cast<uint8_t>(opener[i]);
            const StateId s = nfa.addState(
                SymbolSet::single(c),
                i == 0 ? StartKind::AllInput : StartKind::None, false);
            if (prev != kInvalidState)
                nfa.addEdge(prev, s);
            prev = s;
        }

        // Token loop: one giant ring SCC holding most of the NFA,
        // including the reporting state. Because SCC members share one
        // topological layer, a single hot member pins the partition
        // layer to the ring: nothing inside it can be pruned (Fig. 8's
        // outlier; Fig. 10's unchanged performance).
        std::vector<StateId> loop;
        std::vector<StateId> separators;
        for (unsigned i = 0; i < params.loopStates; ++i) {
            SymbolSet set;
            if (i % 5 == 0) {
                set.set(' ');
                set.set('.');
            } else {
                set = SymbolSet::single(rand_char());
            }
            const bool reporting = i == params.loopStates / 2;
            loop.push_back(nfa.addState(set, StartKind::None, reporting));
            if (i % 5 == 0)
                separators.push_back(loop.back());
        }
        nfa.addEdge(prev, loop.front());
        for (unsigned i = 0; i + 1 < params.loopStates; ++i)
            nfa.addEdge(loop[i], loop[i + 1]);
        nfa.addEdge(loop.back(), loop.front()); // the SCC-forming edge
        // Shortcut edges: separators can restart the loop early (token
        // reordering), thickening the SCC.
        for (size_t i = 1; i < separators.size(); ++i)
            nfa.addEdge(separators[i], loop.front());

        // Verification tail below the ring: rarely walked (cold), but
        // fed by several separators — each feed is a crossing edge that
        // partitioning must turn into an intermediate reporting state.
        if (params.exitLength > 0) {
            StateId head = kInvalidState;
            for (unsigned i = 0; i < params.exitLength; ++i) {
                const StateId s = nfa.addState(
                    SymbolSet::single(rand_char()), StartKind::None,
                    false);
                if (i == 0) {
                    head = s;
                } else {
                    nfa.addEdge(static_cast<StateId>(s - 1), s);
                }
            }
            const size_t fan =
                std::min<size_t>(params.exitFanIn, separators.size());
            for (size_t i = 0; i < fan; ++i)
                nfa.addEdge(separators[i], head);
        }

        nfa.finalize();
        w.app.addNfa(std::move(nfa));
    }

    w.input.base = InputSpec::Base::Alphabet;
    w.input.alphabet = kNameChars;
    for (const std::string &opener : opener_pool)
        w.input.plants.push_back(opener + " ");
    w.input.plantRate = params.plantRate;
    w.input.prefixKeepProb = 0.9;
    w.input.fullPlantProb = 0.5;
    return w;
}

} // namespace sparseap
