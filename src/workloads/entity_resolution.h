/**
 * @file
 * Entity Resolution workload (ANMLZoo ER, Bo et al.).
 *
 * ER automata match names with reordered/repeated tokens, which in the
 * ANML encoding yields a large token *loop*: one strongly connected
 * component spanning most of the NFA. The SCC pins a single topological
 * layer over dozens of states, so the layer cut cannot separate its cold
 * members — ER is the paper's worst case in Fig. 8, and its partition
 * configures (nearly) everything, leaving performance unchanged.
 */

#ifndef SPARSEAP_WORKLOADS_ENTITY_RESOLUTION_H
#define SPARSEAP_WORKLOADS_ENTITY_RESOLUTION_H

#include "common/rng.h"
#include "workloads/workload.h"

namespace sparseap {

/** Parameters for ER automata. */
struct EntityResolutionParams
{
    size_t nfaCount = 1000;
    /** Entry-chain length (token that opens a record). */
    unsigned entryLength = 4;
    /** States in the token loop (one big SCC, reporting inside). */
    unsigned loopStates = 85;
    /**
     * Short verification tail hanging off the loop. It is rarely walked
     * (predicted cold), and several loop separators feed its head — so
     * partitioning ER adds many per-edge intermediate reporting states
     * while saving almost nothing (Fig. 12's 3.6x outlier).
     */
    unsigned exitLength = 6;
    unsigned exitFanIn = 4;
    /** Rate of planting record openers in the stream. */
    double plantRate = 0.004;
};

/** Generate an ER workload. */
Workload makeEntityResolution(const EntityResolutionParams &params,
                              Rng &rng, const std::string &name,
                              const std::string &abbr);

} // namespace sparseap

#endif // SPARSEAP_WORKLOADS_ENTITY_RESOLUTION_H
