#include "workloads/fermi.h"

#include "common/logging.h"

namespace sparseap {

Workload
makeFermi(const FermiParams &params, Rng &rng, const std::string &name,
          const std::string &abbr)
{
    Workload w;
    w.app.setNames(name, abbr);
    w.fullInputAsTest = true;

    const std::string &ab = params.alphabet;
    SymbolSet any_hit;
    for (char c : ab)
        any_hit.set(static_cast<uint8_t>(c));

    for (size_t n = 0; n < params.nfaCount; ++n) {
        const unsigned steps = static_cast<unsigned>(
            rng.uniform(params.minSteps, params.maxSteps));
        Nfa nfa(abbr + "_" + std::to_string(n));

        std::vector<StateId> prevs = {
            nfa.addState(any_hit, StartKind::StartOfData, false)};
        for (unsigned t = 0; t < steps; ++t) {
            // Gap over unrelated detector hits.
            const StateId gap =
                nfa.addState(any_hit, StartKind::None, false);
            for (StateId p : prevs)
                nfa.addEdge(p, gap);
            nfa.addEdge(gap, gap);

            // Wide coordinate windows: a large alphabet slice, so the
            // path advances on most hits (everything stays hot). Half
            // the steps carry a parallel window (detector ambiguity).
            auto make_window = [&]() {
                const size_t lo = rng.index(ab.size());
                SymbolSet window;
                for (unsigned i = 0; i < params.classWidth; ++i)
                    window.set(static_cast<uint8_t>(
                        ab[(lo + i) % ab.size()]));
                return window;
            };
            const bool last = t + 1 == steps;
            std::vector<StateId> layer = {
                nfa.addState(make_window(), StartKind::None, last)};
            if (rng.chance(0.5)) {
                layer.push_back(nfa.addState(make_window(),
                                             StartKind::None, false));
            }
            for (StateId coord : layer) {
                nfa.addEdge(gap, coord);
                for (StateId p : prevs)
                    nfa.addEdge(p, coord);
            }
            prevs = std::move(layer);
        }
        nfa.finalize();
        w.app.addNfa(std::move(nfa));
    }

    w.input.base = InputSpec::Base::Alphabet;
    w.input.alphabet = ab;
    return w;
}

} // namespace sparseap
