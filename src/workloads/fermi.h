/**
 * @file
 * Fermi-style workload: particle-track path matching (ANMLZoo Fermi).
 *
 * Start-of-data anchored automata over a small hit-coordinate alphabet
 * with very common symbols: nearly every state is enabled during
 * execution, so the partitioner finds no savings and the paper reports
 * unchanged performance for Fermi (Table IV: 2 baseline batches, 2
 * BaseAP batches, 0 SpAP executions).
 */

#ifndef SPARSEAP_WORKLOADS_FERMI_H
#define SPARSEAP_WORKLOADS_FERMI_H

#include "common/rng.h"
#include "workloads/workload.h"

namespace sparseap {

/** Parameters for Fermi-style path automata. */
struct FermiParams
{
    size_t nfaCount = 2399;
    /** Path steps per automaton (each step: gap state + coordinate). */
    unsigned minSteps = 5;
    unsigned maxSteps = 6;
    /** Coordinate classes are this wide out of the alphabet. */
    unsigned classWidth = 10;
    /** Hit-coordinate alphabet. */
    std::string alphabet = "0123456789ABCDEFGHIJKLMNOP";
};

/** Generate a Fermi workload. */
Workload makeFermi(const FermiParams &params, Rng &rng,
                   const std::string &name, const std::string &abbr);

} // namespace sparseap

#endif // SPARSEAP_WORKLOADS_FERMI_H
