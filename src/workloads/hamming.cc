#include "workloads/hamming.h"

#include <algorithm>

#include "common/logging.h"

namespace sparseap {

Nfa
buildHammingNfa(const std::string &pattern, unsigned distance,
                const std::string &name)
{
    const unsigned len = static_cast<unsigned>(pattern.size());
    SPARSEAP_ASSERT(len >= 2, "Hamming pattern too short: ", len);
    SPARSEAP_ASSERT(distance >= 1 && distance < len,
                    "Hamming distance ", distance,
                    " out of range for length ", len);

    Nfa nfa(name);
    constexpr StateId kNone = kInvalidState;

    // match_state[i][e] / mis_state[i][e]: consumed i symbols (1-based)
    // with e mismatches; the i-th symbol matched (resp. mismatched).
    // Interior columns only (i < len); the last column is collapsed.
    auto sym_match = [&](unsigned i) {
        return SymbolSet::single(
            static_cast<uint8_t>(pattern[i - 1]));
    };
    auto sym_mismatch = [&](unsigned i) {
        return ~SymbolSet::single(
            static_cast<uint8_t>(pattern[i - 1]));
    };

    std::vector<std::vector<StateId>> match(len), mismatch(len);
    for (unsigned i = 1; i < len; ++i) {
        match[i - 1].assign(distance + 1, kNone);
        mismatch[i - 1].assign(distance + 1, kNone);
        const StartKind start =
            i == 1 ? StartKind::AllInput : StartKind::None;
        // Match at i keeps the error count: e in [0, min(i-1, d)].
        for (unsigned e = 0; e <= std::min(i - 1, distance); ++e)
            match[i - 1][e] = nfa.addState(sym_match(i), start, false);
        // Mismatch at i increments it: e in [1, min(i, d)].
        for (unsigned e = 1; e <= std::min(i, distance); ++e)
            mismatch[i - 1][e] = nfa.addState(sym_mismatch(i), start, false);
    }

    // Collapsed last column: one match and one mismatch reporting state.
    const StateId final_match =
        nfa.addState(sym_match(len), StartKind::None, true);
    const StateId final_mismatch =
        nfa.addState(sym_mismatch(len), StartKind::None, true);

    // Grid edges between interior columns.
    for (unsigned i = 1; i + 1 < len; ++i) {
        for (unsigned e = 0; e <= distance; ++e) {
            for (StateId from : {match[i - 1][e], mismatch[i - 1][e]}) {
                if (from == kNone)
                    continue;
                if (match[i][e] != kNone)
                    nfa.addEdge(from, match[i][e]);
                if (e + 1 <= distance && mismatch[i][e + 1] != kNone)
                    nfa.addEdge(from, mismatch[i][e + 1]);
            }
        }
    }

    // Edges into the collapsed final column: a match is always allowed; a
    // final mismatch needs e <= d-1 beforehand.
    for (unsigned e = 0; e <= distance; ++e) {
        for (StateId from :
             {match[len - 2][e], mismatch[len - 2][e]}) {
            if (from == kNone)
                continue;
            nfa.addEdge(from, final_match);
            if (e + 1 <= distance)
                nfa.addEdge(from, final_mismatch);
        }
    }

    nfa.finalize();
    return nfa;
}

Workload
makeHamming(const HammingParams &params, Rng &rng, const std::string &name,
            const std::string &abbr)
{
    SPARSEAP_ASSERT(params.lengths.size() == params.lengthWeights.size(),
                    "length/weight arity mismatch");
    Workload w;
    w.app.setNames(name, abbr);

    double weight_sum = 0.0;
    for (double x : params.lengthWeights)
        weight_sum += x;

    for (size_t n = 0; n < params.nfaCount; ++n) {
        // Weighted length pick.
        double roll = rng.real() * weight_sum;
        unsigned len = params.lengths.back();
        for (size_t i = 0; i < params.lengths.size(); ++i) {
            roll -= params.lengthWeights[i];
            if (roll <= 0.0) {
                len = params.lengths[i];
                break;
            }
        }
        const unsigned distance = std::max(
            2u, static_cast<unsigned>(static_cast<double>(len) *
                                      params.distanceFraction));

        std::string pattern;
        pattern.reserve(len);
        for (unsigned i = 0; i < len; ++i)
            pattern += params.alphabet[rng.index(params.alphabet.size())];

        w.app.addNfa(buildHammingNfa(
            pattern, std::min(distance, len - 1),
            abbr + "_" + std::to_string(n)));
    }

    // Random sequences over the same alphabet (ANMLZoo Hamming inputs are
    // random); mismatch states accept 3/4 of the alphabet, so windows walk
    // several layers deep before dying, as in the paper.
    w.input.base = InputSpec::Base::Alphabet;
    w.input.alphabet = params.alphabet;
    return w;
}

} // namespace sparseap
