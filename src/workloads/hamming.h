/**
 * @file
 * Hamming-distance automata in the BMIA (Bounded Mismatch Identification
 * Automaton) style of Roy and Aluru, as used by ANMLZoo's Hamming and the
 * paper's scaled HM500 / HM1000 / HM1500 workloads.
 *
 * For a pattern P of length L and distance d, the automaton is a grid of
 * (position, error-count) states with two flavours per cell: a *match*
 * state accepting P[i] and a *mismatch* state accepting ~P[i] (which
 * increments the error count). The final column is collapsed to one
 * match / one mismatch reporting state (errors no longer need tracking at
 * the last symbol), giving the two reporting states per NFA of Table II.
 */

#ifndef SPARSEAP_WORKLOADS_HAMMING_H
#define SPARSEAP_WORKLOADS_HAMMING_H

#include <string>

#include "common/rng.h"
#include "workloads/workload.h"

namespace sparseap {

/**
 * Build one BMIA automaton.
 *
 * @param pattern the expected pattern (bytes)
 * @param distance maximum mismatches accepted (>= 1, < pattern length)
 * @param name NFA name
 */
Nfa buildHammingNfa(const std::string &pattern, unsigned distance,
                    const std::string &name);

/** Parameters of a Hamming workload. */
struct HammingParams
{
    /** Number of automata to generate. */
    size_t nfaCount = 93;
    /** Pattern lengths to mix (picked per NFA with `lengthWeights`). */
    std::vector<unsigned> lengths = {20};
    /** Relative pick weights, same arity as `lengths`. */
    std::vector<double> lengthWeights = {1.0};
    /** Distance as a fraction of the length (paper: 2 to 20% of length). */
    double distanceFraction = 0.2;
    /** Pattern/input alphabet (DNA by default, as in motif finding). */
    std::string alphabet = "ACGT";
};

/** Generate a Hamming workload (automata + random-sequence input). */
Workload makeHamming(const HammingParams &params, Rng &rng,
                     const std::string &name, const std::string &abbr);

} // namespace sparseap

#endif // SPARSEAP_WORKLOADS_HAMMING_H
