#include "workloads/inputs.h"

#include "common/logging.h"

namespace sparseap {

std::vector<uint8_t>
synthesizeInput(const InputSpec &spec, size_t bytes, Rng &rng)
{
    if (spec.base == InputSpec::Base::Alphabet)
        SPARSEAP_ASSERT(!spec.alphabet.empty(),
                        "Alphabet input base needs a non-empty alphabet");

    std::vector<uint8_t> out;
    out.reserve(bytes);

    auto background = [&]() -> uint8_t {
        if (spec.base == InputSpec::Base::Alphabet) {
            return static_cast<uint8_t>(
                spec.alphabet[rng.index(spec.alphabet.size())]);
        }
        return rng.byte();
    };

    const size_t quiet_end =
        static_cast<size_t>(static_cast<double>(bytes) *
                            spec.quietFraction);

    while (out.size() < bytes) {
        // Late bytes: only after the quiet prefix has passed.
        if (spec.lateRate > 0.0 && out.size() >= quiet_end &&
            !spec.lateBytes.empty() && rng.chance(spec.lateRate)) {
            out.push_back(static_cast<uint8_t>(
                spec.lateBytes[rng.index(spec.lateBytes.size())]));
            continue;
        }
        if (!spec.plants.empty() && spec.plantRate > 0.0 &&
            rng.chance(spec.plantRate)) {
            const std::string &plant = rng.pick(spec.plants);
            if (rng.chance(spec.fullPlantProb)) {
                for (char c : plant) {
                    if (out.size() >= bytes)
                        break;
                    out.push_back(static_cast<uint8_t>(c));
                }
            } else {
                for (char c : plant) {
                    if (out.size() >= bytes)
                        break;
                    out.push_back(static_cast<uint8_t>(c));
                    if (!rng.chance(spec.prefixKeepProb))
                        break;
                }
            }
            continue;
        }
        out.push_back(background());
    }
    return out;
}

} // namespace sparseap
