/**
 * @file
 * Input-stream synthesis.
 *
 * Inputs control the hot/cold phenomenology: a pattern prefix *planted* in
 * the stream walks the corresponding NFA some layers deep before dying,
 * heating shallow states; rare full plants reach reporting states. The
 * planting rate and the geometric prefix-length decay are the two knobs
 * each workload tunes to land in its Fig. 1 hot-fraction band.
 */

#ifndef SPARSEAP_WORKLOADS_INPUTS_H
#define SPARSEAP_WORKLOADS_INPUTS_H

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"

namespace sparseap {

/** Declarative description of one application's input stream. */
struct InputSpec
{
    /** Background byte distribution. */
    enum class Base {
        RandomBytes, ///< uniform over [0, 255]
        Alphabet,    ///< uniform over the `alphabet` string
    };

    Base base = Base::RandomBytes;

    /** Background alphabet for Base::Alphabet. */
    std::string alphabet;

    /** Strings occasionally planted into the stream (pattern literals). */
    std::vector<std::string> plants;

    /** Probability per position of starting a plant. */
    double plantRate = 0.0;

    /**
     * Each planted string is truncated to a geometric prefix: after every
     * copied byte the plant continues with this probability.
     */
    double prefixKeepProb = 0.7;

    /** Probability that a plant is copied in full (a real match). */
    double fullPlantProb = 0.02;

    /**
     * Byte values that only appear after `quietFraction` of the stream
     * (used by PowerEN to make the profiling prefix unrepresentative).
     */
    std::string lateBytes;
    double lateRate = 0.0;
    double quietFraction = 0.02;
};

/** Synthesize @p bytes input bytes from @p spec, deterministically. */
std::vector<uint8_t> synthesizeInput(const InputSpec &spec, size_t bytes,
                                     Rng &rng);

} // namespace sparseap

#endif // SPARSEAP_WORKLOADS_INPUTS_H
