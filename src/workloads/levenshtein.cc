#include "workloads/levenshtein.h"

#include <algorithm>

#include "common/logging.h"

namespace sparseap {

Nfa
buildLevenshteinNfa(const std::string &pattern, unsigned distance,
                    const std::string &name)
{
    const unsigned len = static_cast<unsigned>(pattern.size());
    SPARSEAP_ASSERT(len >= 4, "Levenshtein pattern too short");
    SPARSEAP_ASSERT(distance >= 1 && distance < len,
                    "bad Levenshtein distance ", distance);

    Nfa nfa(name);
    constexpr StateId kNone = kInvalidState;

    // match[i][e]: consumed pattern position i (1-based) with e edits via
    // a match; edit[i][e]: via a substitution/insertion (any symbol).
    std::vector<std::vector<StateId>> match(len + 1), edit(len + 1);
    for (unsigned i = 1; i <= len; ++i) {
        match[i].assign(distance + 1, kNone);
        edit[i].assign(distance + 1, kNone);
        const StartKind start =
            i == 1 ? StartKind::AllInput : StartKind::None;
        const SymbolSet m =
            SymbolSet::single(static_cast<uint8_t>(pattern[i - 1]));
        for (unsigned e = 0; e <= distance; ++e) {
            if (e <= distance) {
                match[i][e] = nfa.addState(
                    m, start, i == len); // reporting on last column
            }
            if (e >= 1) {
                edit[i][e] = nfa.addState(SymbolSet::all(), start,
                                          i == len && e == distance);
            }
        }
    }

    auto link = [&](StateId from, StateId to) {
        if (from != kNone && to != kNone)
            nfa.addEdge(from, to);
    };

    for (unsigned i = 1; i <= len; ++i) {
        for (unsigned e = 0; e <= distance; ++e) {
            for (StateId from : {match[i][e], edit[i][e]}) {
                if (from == kNone)
                    continue;
                if (i < len) {
                    // Match advances without consuming an edit.
                    link(from, match[i + 1][e]);
                    // Substitution advances with one edit.
                    if (e + 1 <= distance)
                        link(from, edit[i + 1][e + 1]);
                    // Deletion skips a pattern symbol.
                    if (e + 1 <= distance && i + 2 <= len)
                        link(from, match[i + 2][e + 1]);
                }
                // Insertion stays at the same position with one edit.
                if (e + 1 <= distance)
                    link(from, edit[i][e + 1]);
            }
        }
    }

    // Resynchronization back edges (ANML encoding): deep states can
    // restart the middle of the grid, collapsing it into a large SCC.
    const unsigned resync_from = (len * 3) / 4;
    const unsigned resync_to = len / 4;
    for (unsigned e = 0; e <= distance; ++e) {
        link(match[resync_from][e], match[resync_to][0]);
        link(edit[resync_from][e], edit[resync_to][1]);
    }

    nfa.finalize();
    return nfa;
}

Workload
makeLevenshtein(const LevenshteinParams &params, Rng &rng,
                const std::string &name, const std::string &abbr)
{
    Workload w;
    w.app.setNames(name, abbr);

    for (size_t n = 0; n < params.nfaCount; ++n) {
        std::string pattern;
        for (unsigned i = 0; i < params.patternLength; ++i)
            pattern += params.alphabet[rng.index(params.alphabet.size())];
        w.app.addNfa(buildLevenshteinNfa(
            pattern, params.distance, abbr + "_" + std::to_string(n)));
    }

    w.input.base = InputSpec::Base::Alphabet;
    w.input.alphabet = params.alphabet;
    return w;
}

} // namespace sparseap
