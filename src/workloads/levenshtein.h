/**
 * @file
 * Levenshtein workload (ANMLZoo Levenshtein, Tracy et al.).
 *
 * Edit-distance automata over DNA: a (position, errors) grid where
 * substitutions and insertions consume any symbol. The ANML encoding adds
 * resynchronization back edges, so the grid's middle collapses into a
 * large SCC — like ER, Levenshtein resists topological partitioning
 * (Fig. 8), and its wildcard-heavy states keep nearly everything hot
 * (Fig. 1 puts LV among the hottest applications).
 */

#ifndef SPARSEAP_WORKLOADS_LEVENSHTEIN_H
#define SPARSEAP_WORKLOADS_LEVENSHTEIN_H

#include "common/rng.h"
#include "workloads/workload.h"

namespace sparseap {

/** Parameters for Levenshtein automata. */
struct LevenshteinParams
{
    size_t nfaCount = 24;
    /** Pattern length. */
    unsigned patternLength = 20;
    /** Edit distance bound. */
    unsigned distance = 3;
    /** Pattern/input alphabet. */
    std::string alphabet = "ACGT";
};

/** Build one Levenshtein automaton (with resync back edges). */
Nfa buildLevenshteinNfa(const std::string &pattern, unsigned distance,
                        const std::string &name);

/** Generate a Levenshtein workload. */
Workload makeLevenshtein(const LevenshteinParams &params, Rng &rng,
                         const std::string &name, const std::string &abbr);

} // namespace sparseap

#endif // SPARSEAP_WORKLOADS_LEVENSHTEIN_H
