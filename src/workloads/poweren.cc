#include "workloads/poweren.h"

#include "common/logging.h"

namespace sparseap {

Workload
makePowerEn(const PowerEnParams &params, Rng &rng, const std::string &name,
            const std::string &abbr)
{
    Workload w;
    w.app.setNames(name, abbr);

    static const char kLetters[] = "abcdefghijklmnopqrstuvwxyz ";
    const SymbolSet digits = SymbolSet::range('0', '9');

    // A class of roughly half the letter alphabet; tail classes also
    // admit a couple of digits (PowerEN rules mix alphanumerics), which
    // keeps the post-digit chain walkable once digits flood the stream.
    auto half_class = [&](bool with_digits) {
        SymbolSet s;
        const size_t lo = rng.index(26);
        for (unsigned i = 0; i < 13; ++i)
            s.set(static_cast<uint8_t>('a' + (lo + i) % 26));
        if (rng.chance(0.5))
            s.set(' ');
        if (with_digits) {
            for (int d = 0; d < 3; ++d)
                s.set(static_cast<uint8_t>('0' + rng.uniform(0, 9)));
        }
        return s;
    };

    for (size_t n = 0; n < params.nfaCount; ++n) {
        Nfa nfa(abbr + "_" + std::to_string(n));

        // Layers 1-2: common letter classes (hot under any input).
        const StateId l1 =
            nfa.addState(half_class(false), StartKind::AllInput, false);
        const StateId l2 = nfa.addState(half_class(false),
                                        StartKind::None, false);
        nfa.addEdge(l1, l2);

        // Layer 3: digits. The input stream is digit-quiet early on, so
        // during profiling this layer is enabled (hot) but never
        // activates — everything deeper is predicted cold. In the test
        // stream digits are frequent, so the chain below runs and the
        // partition-boundary clone fires simultaneously across all the
        // rules: the paper's intermediate-report storm.
        const StateId l3 = nfa.addState(digits, StartKind::None, false);
        nfa.addEdge(l2, l3);

        // A long tail of common classes: the batch-fill optimization can
        // absorb only part of it, leaving the boundary in the middle of
        // a frequently-matching region.
        StateId prev = l3;
        const unsigned tail = static_cast<unsigned>(
            rng.uniform(params.minTail, params.maxTail));
        for (unsigned t = 0; t < tail; ++t) {
            const bool last = t + 1 == tail;
            const StateId s =
                nfa.addState(half_class(true), StartKind::None, last);
            nfa.addEdge(prev, s);
            prev = s;
        }
        if (rng.chance(0.2)) {
            const StateId alt = nfa.addState(half_class(true),
                                             StartKind::None, true);
            nfa.addEdge(prev, alt);
        }
        nfa.finalize();
        w.app.addNfa(std::move(nfa));
    }

    // Letter stream with digits only after the quiet prefix.
    w.input.base = InputSpec::Base::Alphabet;
    w.input.alphabet = kLetters;
    w.input.lateBytes = "0123456789";
    w.input.lateRate = params.digitRate;
    w.input.quietFraction = params.quietFraction;
    return w;
}

} // namespace sparseap
