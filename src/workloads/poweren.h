/**
 * @file
 * PowerEN-style workload (ANMLZoo PowerEN: IBM PowerEN regex rules).
 *
 * This workload reproduces PowerEN's signature pathology in the paper:
 * a *simultaneous intermediate-report storm*. Rules share a very common
 * two-symbol prefix; the third position is a class (digits) that the
 * profiling prefix never contains (the input is digit-quiet early on),
 * so layer 4+ is predicted cold. During the test stream digits are
 * frequent, so thousands of rules cross the partition at the same input
 * positions — millions of intermediate reports, massive enable stalls,
 * and a BaseAP/SpAP slowdown (Table IV: 5.45M reports, 4.5M EStalls).
 */

#ifndef SPARSEAP_WORKLOADS_POWEREN_H
#define SPARSEAP_WORKLOADS_POWEREN_H

#include "common/rng.h"
#include "workloads/workload.h"

namespace sparseap {

/** Parameters for the PowerEN-style ruleset. */
struct PowerEnParams
{
    size_t nfaCount = 2857;
    /** Tail class-chain length after the storm (digit) layer. */
    unsigned minTail = 9;
    unsigned maxTail = 13;
    /** Fraction of the stream where digits start appearing. Must cover
     *  the largest profiling prefix (1% of the paper's 1 MiB reference =
     *  ~10.5 KiB) so the storm layer stays mispredicted. */
    double quietFraction = 0.25;
    /** Digit injection rate after the quiet prefix. */
    double digitRate = 0.35;
};

/** Generate a PowerEN workload. */
Workload makePowerEn(const PowerEnParams &params, Rng &rng,
                     const std::string &name, const std::string &abbr);

} // namespace sparseap

#endif // SPARSEAP_WORKLOADS_POWEREN_H
