#include "workloads/protomata.h"

#include "common/logging.h"

namespace sparseap {
namespace {

const char kAmino[] = "ACDEFGHIKLMNPQRSTVWY";
constexpr size_t kAminoCount = sizeof(kAmino) - 1;

} // namespace

Workload
makeProtomata(const ProtomataParams &params, Rng &rng,
              const std::string &name, const std::string &abbr)
{
    Workload w;
    w.app.setNames(name, abbr);

    for (size_t n = 0; n < params.nfaCount; ++n) {
        const bool long_motif = rng.chance(params.longMotifProb);
        const unsigned elements =
            long_motif ? params.longMotifElements
                       : static_cast<unsigned>(rng.uniform(
                             params.minElements, params.maxElements));
        Nfa nfa(abbr + "_" + std::to_string(n));

        std::string plant;
        bool prefix_intact = true; // plants must match from the motif start
        StateId prev = kInvalidState;
        auto append = [&](SymbolSet set, bool reporting) {
            const StateId s = nfa.addState(
                set,
                prev == kInvalidState ? StartKind::AllInput
                                      : StartKind::None,
                reporting);
            if (prev != kInvalidState)
                nfa.addEdge(prev, s);
            prev = s;
        };

        for (unsigned e = 0; e < elements; ++e) {
            const bool last = e + 1 == elements;
            const double roll = rng.real();
            if (roll < params.gapProb && !last && e > 0) {
                // x(n) wildcard gap over any residue.
                const unsigned gap_len =
                    static_cast<unsigned>(rng.uniform(1, 4));
                SymbolSet any;
                for (size_t a = 0; a < kAminoCount; ++a)
                    any.set(static_cast<uint8_t>(kAmino[a]));
                for (unsigned g = 0; g < gap_len; ++g)
                    append(any, false);
                prefix_intact = false; // prefix plants stop at a gap
            } else if (roll < params.gapProb + params.classProb) {
                // Residue class of 2..5 amino acids.
                const unsigned width =
                    static_cast<unsigned>(rng.uniform(2, 5));
                SymbolSet cls;
                char first = 0;
                for (unsigned i = 0; i < width; ++i) {
                    const char c = kAmino[rng.index(kAminoCount)];
                    if (i == 0)
                        first = c;
                    cls.set(static_cast<uint8_t>(c));
                }
                append(cls, last);
                if (prefix_intact)
                    plant += first;
            } else {
                const char c = kAmino[rng.index(kAminoCount)];
                append(SymbolSet::single(static_cast<uint8_t>(c)), last);
                if (prefix_intact)
                    plant += c;
            }
        }
        nfa.finalize();
        w.app.addNfa(std::move(nfa));
        if (plant.size() >= 4)
            w.input.plants.push_back(plant.substr(0, 16));
    }

    // Protein sequence stream with motif prefixes planted.
    w.input.base = InputSpec::Base::Alphabet;
    w.input.alphabet = kAmino;
    w.input.plantRate = params.plantRate;
    w.input.prefixKeepProb = 0.8;
    w.input.fullPlantProb = 0.03;
    return w;
}

} // namespace sparseap
