/**
 * @file
 * Protomata workloads (ANMLZoo Protomata): PROSITE-style protein motif
 * patterns over the 20-letter amino-acid alphabet — residue classes like
 * [ILVM], exact residues, and short x(n) wildcard gaps.
 */

#ifndef SPARSEAP_WORKLOADS_PROTOMATA_H
#define SPARSEAP_WORKLOADS_PROTOMATA_H

#include "common/rng.h"
#include "workloads/workload.h"

namespace sparseap {

/** Parameters for protein motif patterns. */
struct ProtomataParams
{
    size_t nfaCount = 2340;
    /** Motif element count (classes/residues/gaps). */
    unsigned minElements = 10;
    unsigned maxElements = 20;
    /** A few motifs are much longer (profile-HMM consensus chains). */
    double longMotifProb = 0.01;
    unsigned longMotifElements = 100;
    /** Probability an element is a residue class ([ILVM]-style). */
    double classProb = 0.35;
    /** Probability an element is an x(n) wildcard gap (n in 1..4). */
    double gapProb = 0.2;
    /** Rate of planting motif prefixes into the sequence stream. */
    double plantRate = 0.004;
};

/** Generate a Protomata workload. */
Workload makeProtomata(const ProtomataParams &params, Rng &rng,
                       const std::string &name, const std::string &abbr);

} // namespace sparseap

#endif // SPARSEAP_WORKLOADS_PROTOMATA_H
