#include "workloads/random_forest.h"

#include "common/logging.h"

namespace sparseap {

Workload
makeRandomForest(const RandomForestParams &params, Rng &rng,
                 const std::string &name, const std::string &abbr)
{
    Workload w;
    w.app.setNames(name, abbr);

    auto draw_range = [&](bool allow_dead) {
        // A feature-threshold window; dead ranges sit above valueRange
        // where the quantized input never goes.
        const unsigned width =
            static_cast<unsigned>(rng.uniform(4, 16));
        unsigned lo;
        if (allow_dead && rng.chance(params.deadRangeProb)) {
            lo = params.valueRange +
                 static_cast<unsigned>(
                     rng.uniform(0, 255 - params.valueRange - width));
        } else {
            lo = static_cast<unsigned>(
                rng.uniform(0, params.valueRange - 1));
        }
        const unsigned hi = std::min(255u, lo + width);
        return SymbolSet::range(static_cast<uint8_t>(lo),
                                static_cast<uint8_t>(hi));
    };

    for (size_t n = 0; n < params.nfaCount; ++n) {
        Nfa nfa(abbr + "_" + std::to_string(n));

        std::vector<StateId> level1, level2;
        for (unsigned i = 0; i < params.roots; ++i) {
            level1.push_back(nfa.addState(draw_range(false),
                                          StartKind::AllInput, false));
        }
        for (unsigned i = 0; i < params.midNodes; ++i) {
            const StateId s =
                nfa.addState(draw_range(true), StartKind::None, false);
            nfa.addEdge(level1[rng.index(level1.size())], s);
            level2.push_back(s);
        }
        for (unsigned i = 0; i < params.leafNodes; ++i) {
            // One reporting leaf per tree (the classification outcome),
            // matching Table II's #RStates == #NFAs for RF1/RF2.
            const StateId s = nfa.addState(draw_range(true),
                                           StartKind::None, i == 0);
            nfa.addEdge(level2[rng.index(level2.size())], s);
        }
        nfa.finalize();
        w.app.addNfa(std::move(nfa));
    }

    // Quantized feature stream.
    std::string values;
    for (unsigned v = 0; v < params.valueRange; ++v)
        values += static_cast<char>(v);
    w.input.base = InputSpec::Base::Alphabet;
    w.input.alphabet = values;
    return w;
}

} // namespace sparseap
