/**
 * @file
 * Random Forest workloads (RF1, RF2 — ANMLZoo RandomForest).
 *
 * Tracy et al. compile decision-tree ensembles to automata: each tree
 * becomes shallow chains of feature-threshold range tests (depth 3 in
 * Table II). Input symbols are quantized feature values; a range that
 * lies outside the quantized value distribution kills its subtree, which
 * is where the cold states come from.
 */

#ifndef SPARSEAP_WORKLOADS_RANDOM_FOREST_H
#define SPARSEAP_WORKLOADS_RANDOM_FOREST_H

#include "common/rng.h"
#include "workloads/workload.h"

namespace sparseap {

/** Parameters for Random Forest chains. */
struct RandomForestParams
{
    size_t nfaCount = 3767;
    /** Root range tests per tree (always-enabled starts). */
    unsigned roots = 6;
    /** Second/third level nodes per tree. */
    unsigned midNodes = 7;
    unsigned leafNodes = 7;
    /** Feature values are quantized to [0, valueRange). */
    unsigned valueRange = 64;
    /** Probability a node's range lies outside the value distribution. */
    double deadRangeProb = 0.35;
};

/** Generate a Random Forest workload. */
Workload makeRandomForest(const RandomForestParams &params, Rng &rng,
                          const std::string &name, const std::string &abbr);

} // namespace sparseap

#endif // SPARSEAP_WORKLOADS_RANDOM_FOREST_H
