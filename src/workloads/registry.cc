#include "workloads/registry.h"

#include <functional>

#include "ap/config.h"
#include "common/logging.h"
#include "workloads/becchi.h"
#include "workloads/brill.h"
#include "workloads/clamav.h"
#include "workloads/entity_resolution.h"
#include "workloads/fermi.h"
#include "workloads/hamming.h"
#include "workloads/levenshtein.h"
#include "workloads/poweren.h"
#include "workloads/protomata.h"
#include "workloads/random_forest.h"
#include "workloads/snort.h"
#include "workloads/spm.h"

namespace sparseap {
namespace {

/** Scale an NFA count, keeping at least one NFA. */
size_t
scaled(size_t count, unsigned scale_percent)
{
    const size_t n = count * scale_percent / 100;
    return n == 0 ? 1 : n;
}

/** Stable per-app seed derived from the master seed. */
uint64_t
appSeed(uint64_t seed, const std::string &abbr)
{
    uint64_t h = seed ^ 0x5851f42d4c957f2dull;
    for (char c : abbr)
        h = (h ^ static_cast<uint64_t>(c)) * 0x100000001b3ull;
    return h;
}

} // namespace

const std::vector<CatalogEntry> &
appCatalog()
{
    static const std::vector<CatalogEntry> catalog = {
        {"ClamAV4000", "CAV4k", 'H', 1124947, 4000, 2080, 4015},
        {"Hamming1500", "HM1500", 'H', 366000, 3000, 32, 6000},
        {"Hamming1000", "HM1000", 'H', 244000, 2000, 32, 4000},
        {"Snort_big", "Snort_L", 'H', 132171, 3126, 4509, 4043},
        {"Hamming500", "HM500", 'H', 122000, 1000, 32, 2000},
        {"SPM", "SPM", 'H', 100500, 5025, 16, 5025},
        {"Dotstar", "DS", 'H', 96438, 2837, 95, 2838},
        {"EntityResolution", "ER", 'H', 95136, 1000, 64, 1000},
        {"RandomForest1", "RF1", 'H', 75340, 3767, 3, 3767},
        {"Snort", "Snort", 'H', 69029, 2687, 133, 4166},
        {"ClamAV", "CAV", 'H', 49538, 515, 542, 515},
        {"Brill", "Brill", 'M', 42658, 1962, 38, 1962},
        {"Protomata", "Pro", 'M', 42009, 2340, 123, 2365},
        {"Fermi", "Fermi", 'M', 40783, 2399, 13, 2399},
        {"PowerEN", "PEN", 'M', 40513, 2857, 44, 3456},
        {"RandomForest2", "RF2", 'M', 33220, 1661, 3, 1661},
        {"TCP", "TCP", 'L', 19704, 738, 100, 767},
        {"Dotstar06", "DS06", 'L', 12640, 298, 104, 300},
        {"Ranges05", "Rg05", 'L', 12621, 299, 94, 299},
        {"Ranges1", "Rg1", 'L', 12464, 297, 96, 297},
        {"ExactMatch", "EM", 'L', 12439, 297, 87, 297},
        {"Dotstar09", "DS09", 'L', 12431, 297, 104, 300},
        {"Dotstar03", "DS03", 'L', 12144, 299, 92, 300},
        {"Hamming", "HM", 'L', 11346, 93, 20, 186},
        {"Levenshtein", "LV", 'L', 2784, 24, 23, 96},
        {"Bro217", "Bro217", 'L', 2312, 187, 84, 187},
    };
    return catalog;
}

const CatalogEntry &
findApp(const std::string &abbr)
{
    for (const auto &e : appCatalog()) {
        if (e.abbr == abbr)
            return e;
    }
    fatal("unknown application '", abbr, "'");
}

Workload
generateWorkload(const std::string &abbr, uint64_t seed,
                 unsigned scale_percent)
{
    const CatalogEntry &entry = findApp(abbr); // validates the abbr
    Rng rng(appSeed(seed, abbr));
    Workload w;

    if (abbr == "CAV4k") {
        ClamAvParams p;
        p.nfaCount = scaled(4000, scale_percent);
        p.minLength = 24;
        p.meanLength = 275;
        p.maxLength = 2080;
        p.wildcardRate = 0.03;
        p.gapRate = 0.005;
        p.altTailProb = 0.004;
        p.plantRate = 0.00002;
        w = makeClamAv(p, rng, entry.name, abbr);
    } else if (abbr == "CAV") {
        ClamAvParams p;
        p.nfaCount = scaled(515, scale_percent);
        p.minLength = 24;
        p.meanLength = 100;
        p.maxLength = 542;
        p.plantRate = 0.0001;
        w = makeClamAv(p, rng, entry.name, abbr);
    } else if (abbr == "HM1500" || abbr == "HM1000" || abbr == "HM500") {
        HammingParams p;
        p.nfaCount = scaled(abbr == "HM1500"   ? 3000
                            : abbr == "HM1000" ? 2000
                                               : 1000,
                            scale_percent);
        p.lengths = {8, 12, 20, 30};
        p.lengthWeights = {0.05, 0.05, 0.2, 0.7};
        // Distance 2 for every length (the low end of the paper's
        // "2 to 20% of the pattern length" recipe): keeps the live
        // window set, and hence simulation time, manageable.
        p.distanceFraction = 0.08;
        w = makeHamming(p, rng, entry.name, abbr);
        // Hamming mismatch states accept 3 of 4 bases, so the live set
        // is inherently dense; cap the stream to keep runs quick.
        w.inputBytesCap = 32 * 1024;
    } else if (abbr == "HM") {
        HammingParams p;
        p.nfaCount = scaled(93, scale_percent);
        p.lengths = {20};
        p.lengthWeights = {1.0};
        p.distanceFraction = 0.15; // d = 3 at length 20
        w = makeHamming(p, rng, entry.name, abbr);
    } else if (abbr == "Snort_L") {
        SnortParams p;
        p.nfaCount = scaled(3126, scale_percent);
        p.minTokens = 3;
        p.maxTokens = 7;
        p.dotStarProb = 0.35;
        p.altTailProb = 0.35;
        p.deepRuleCount = scale_percent >= 50 ? 2 : 1;
        p.deepRuleGap = 4480;
        p.plantRate = 0.02;
        w = makeSnort(p, rng, entry.name, abbr);
    } else if (abbr == "Snort") {
        SnortParams p;
        p.nfaCount = scaled(2687, scale_percent);
        p.minTokens = 2;
        p.maxTokens = 5;
        p.dotStarProb = 0.3;
        p.altTailProb = 0.5;
        p.longRuleCount = 3;
        p.longRuleTokens = 22; // ~130-layer rules (Table II MaxTopo 133)
        p.plantRate = 0.012;
        w = makeSnort(p, rng, entry.name, abbr);
    } else if (abbr == "SPM") {
        SpmParams p;
        p.nfaCount = scaled(5025, scale_percent);
        p.minItems = 8;
        p.maxItems = 8;
        p.altItemProb = 0.45;
        w = makeSpm(p, rng, entry.name, abbr);
    } else if (abbr == "DS") {
        BecchiParams p;
        p.nfaCount = scaled(2837, scale_percent);
        p.minLength = 26;
        p.maxLength = 40;
        p.rangeFraction = 0.1;
        p.dotStarProb = 1.0;
        p.maxDotStars = 2;
        p.longPatternProb = 0.003;
        p.longPatternLength = 92;
        p.plantRate = 0.002;
        w = makeBecchi(p, rng, entry.name, abbr);
    } else if (abbr == "ER") {
        EntityResolutionParams p;
        p.nfaCount = scaled(1000, scale_percent);
        p.entryLength = 4;
        p.loopStates = 85;
        p.exitLength = 6;
        p.exitFanIn = 4;
        p.plantRate = 0.05;
        w = makeEntityResolution(p, rng, entry.name, abbr);
    } else if (abbr == "RF1" || abbr == "RF2") {
        RandomForestParams p;
        p.nfaCount = scaled(abbr == "RF1" ? 3767 : 1661, scale_percent);
        w = makeRandomForest(p, rng, entry.name, abbr);
    } else if (abbr == "Brill") {
        BrillParams p;
        p.nfaCount = scaled(1962, scale_percent);
        p.minTokens = 5;
        p.maxTokens = 9;
        p.plantRate = 0.05;
        w = makeBrill(p, rng, entry.name, abbr);
    } else if (abbr == "Pro") {
        ProtomataParams p;
        p.nfaCount = scaled(2340, scale_percent);
        p.minElements = 8;
        p.maxElements = 17;
        p.longMotifProb = 0.01;
        p.longMotifElements = 95;
        p.plantRate = 0.004;
        w = makeProtomata(p, rng, entry.name, abbr);
    } else if (abbr == "Fermi") {
        FermiParams p;
        p.nfaCount = scaled(2399, scale_percent);
        p.minSteps = 6;
        p.maxSteps = 7;
        w = makeFermi(p, rng, entry.name, abbr);
        // Fermi keeps its whole fabric live (that is its point); cap the
        // stream so full-input runs stay quick.
        w.inputBytesCap = 32 * 1024;
    } else if (abbr == "PEN") {
        PowerEnParams p;
        p.nfaCount = scaled(2857, scale_percent);
        w = makePowerEn(p, rng, entry.name, abbr);
    } else if (abbr == "TCP") {
        BecchiParams p;
        p.nfaCount = scaled(738, scale_percent);
        p.minLength = 20;
        p.maxLength = 33;
        p.rangeFraction = 0.25;
        p.dotStarProb = 0.4;
        p.longPatternProb = 0.004;
        p.longPatternLength = 97;
        p.plantRate = 0.003;
        w = makeBecchi(p, rng, entry.name, abbr);
    } else if (abbr == "DS03" || abbr == "DS06" || abbr == "DS09") {
        BecchiParams p;
        p.nfaCount = scaled(298, scale_percent);
        p.minLength = 36;
        p.maxLength = 48;
        p.rangeFraction = 0.1;
        p.dotStarProb = abbr == "DS03" ? 0.3 : (abbr == "DS06" ? 0.6 : 0.9);
        p.longPatternProb = 0.004;
        p.longPatternLength = abbr == "DS03" ? 90 : 101;
        p.plantRate = 0.002;
        w = makeBecchi(p, rng, entry.name, abbr);
    } else if (abbr == "Rg05" || abbr == "Rg1") {
        BecchiParams p;
        p.nfaCount = scaled(298, scale_percent);
        p.minLength = 36;
        p.maxLength = 48;
        p.rangeFraction = abbr == "Rg05" ? 0.5 : 1.0;
        p.longPatternProb = 0.004;
        p.longPatternLength = abbr == "Rg05" ? 94 : 96;
        p.plantRate = 0.002;
        w = makeBecchi(p, rng, entry.name, abbr);
    } else if (abbr == "EM") {
        BecchiParams p;
        p.nfaCount = scaled(297, scale_percent);
        p.minLength = 36;
        p.maxLength = 48;
        p.longPatternProb = 0.004;
        p.longPatternLength = 87;
        p.plantRate = 0.002;
        w = makeBecchi(p, rng, entry.name, abbr);
    } else if (abbr == "LV") {
        LevenshteinParams p;
        p.nfaCount = scaled(24, scale_percent);
        p.patternLength = 23;
        p.distance = 2;
        w = makeLevenshtein(p, rng, entry.name, abbr);
    } else if (abbr == "Bro217") {
        BecchiParams p;
        p.nfaCount = scaled(187, scale_percent);
        p.minLength = 8;
        p.maxLength = 17;
        p.longPatternProb = 0.005;
        p.longPatternLength = 84;
        p.plantRate = 0.005;
        w = makeBecchi(p, rng, entry.name, abbr);
    } else {
        SPARSEAP_PANIC("catalog entry '", abbr, "' has no generator");
    }

    w.app.classifyGroup(ApConfig::kHalfCore, ApConfig::kFullChip);
    return w;
}

} // namespace sparseap
