/**
 * @file
 * The 26-application catalog (Table II of the paper).
 *
 * Each entry carries the paper's published statistics (#states, #NFAs,
 * MaxTopo, #RStates, resource group) for side-by-side comparison and a
 * generator that synthesizes the workload at a requested scale.
 */

#ifndef SPARSEAP_WORKLOADS_REGISTRY_H
#define SPARSEAP_WORKLOADS_REGISTRY_H

#include <string>
#include <vector>

#include "workloads/workload.h"

namespace sparseap {

/** Catalog entry: identity plus the paper's Table II reference row. */
struct CatalogEntry
{
    std::string name;
    std::string abbr;
    char group; ///< paper's group: 'H', 'M' or 'L'
    size_t paperStates;
    size_t paperNfas;
    size_t paperMaxTopo;
    size_t paperRStates;
};

/** All applications in Table II order (largest first). */
const std::vector<CatalogEntry> &appCatalog();

/** Find a catalog entry by abbreviation; fatal() if unknown. */
const CatalogEntry &findApp(const std::string &abbr);

/**
 * Generate the workload for @p abbr.
 *
 * @param seed RNG seed (combined with the abbreviation so different apps
 *             draw independent streams)
 * @param scale_percent scales NFA counts; 100 reproduces paper sizes
 */
Workload generateWorkload(const std::string &abbr, uint64_t seed,
                          unsigned scale_percent = 100);

} // namespace sparseap

#endif // SPARSEAP_WORKLOADS_REGISTRY_H
