#include "workloads/snort.h"

#include "common/logging.h"
#include "regex/glushkov.h"

namespace sparseap {
namespace {

const char *const kKeywords[] = {
    "GET ",  "POST ",   "HEAD ",  "HTTP/1.", "Host: ",  "User-Agent",
    "/cgi-", "/admin",  ".php",   ".asp",    "passwd",  "cmd.exe",
    "login", "SELECT ", "UNION ", "script>", "%00",     "\\x90\\x90",
    "root:", "/etc/",   "shell",  "exploit", "overflow", "..%2f",
};
constexpr size_t kKeywordCount = sizeof(kKeywords) / sizeof(kKeywords[0]);

/** A short random token of letters/digits. */
std::string
randomToken(Rng &rng, unsigned min_len, unsigned max_len)
{
    static const char charset[] =
        "abcdefghijklmnopqrstuvwxyz0123456789";
    const unsigned len =
        static_cast<unsigned>(rng.uniform(min_len, max_len));
    std::string s;
    for (unsigned i = 0; i < len; ++i)
        s += charset[rng.index(sizeof(charset) - 1)];
    return s;
}

} // namespace

Workload
makeSnort(const SnortParams &params, Rng &rng, const std::string &name,
          const std::string &abbr)
{
    Workload w;
    w.app.setNames(name, abbr);

    for (size_t n = 0; n < params.nfaCount; ++n) {
        const bool deep = n < params.deepRuleCount;
        const bool long_rule =
            !deep && n < params.deepRuleCount + params.longRuleCount;
        const unsigned tokens =
            long_rule ? params.longRuleTokens
                      : static_cast<unsigned>(rng.uniform(
                            params.minTokens, params.maxTokens));

        std::string pattern;
        std::string plant;
        for (unsigned t = 0; t < tokens; ++t) {
            std::string tok;
            if (!deep && (t == 0 || rng.chance(0.6))) {
                // First tokens always come from the common keyword set:
                // every rule's opening matcher (and its `.*` gap, if
                // any) is exercised by even a short profiling window, so
                // predicted-cold fragments contain no always-live star
                // states and SpAP mode can jump (Table IV: ~98% jump
                // ratio for Snort_L).
                tok = kKeywords[rng.index(kKeywordCount)];
            } else {
                // Deep rules use rare random tokens so their huge gap
                // chain stays cold on benign traffic.
                tok = randomToken(rng, deep ? 6 : 3, 8);
            }
            if (t == 0) {
                if (!deep)
                    plant = tok;
            } else if (deep && t == 1) {
                // Exact-count gap: a linear chain of wildcard states (an
                // {0,n} gap would create quadratic skip edges).
                pattern += ".{" + std::to_string(params.deepRuleGap) + "}";
            } else if (t == 1 && rng.chance(params.dotStarProb)) {
                // `.*` only as the first connector: its gap state is
                // enabled as soon as the (common) opening keyword hits,
                // so it is always profiled hot and never lands in the
                // cold set — predicted-cold fragments stay loop-free and
                // SpAP mode can jump over idle traffic.
                pattern += ".*";
            } else if (rng.chance(0.3)) {
                pattern += "[ -~]"; // one printable byte
            }
            // Escape regex metacharacters in the token.
            for (char c : tok) {
                if (c == '\\') {
                    pattern += "\\\\";
                } else if (std::string("().[]{}|*+?^$").find(c) !=
                           std::string::npos) {
                    pattern += '\\';
                    pattern += c;
                } else {
                    pattern += c;
                }
            }
        }
        if (rng.chance(params.altTailProb)) {
            pattern += "(" + randomToken(rng, 2, 4) + "|" +
                       randomToken(rng, 2, 4) + ")";
        }

        w.app.addNfa(
            compileRegex(pattern, abbr + "_" + std::to_string(n)));
        if (plant.size() >= 3)
            w.input.plants.push_back(plant);
    }

    // Synthetic traffic: printable ASCII with rule keywords planted
    // frequently (network traffic is keyword-dense, which is what drives
    // Snort_L's large intermediate-report counts in Table IV).
    w.input.base = InputSpec::Base::Alphabet;
    w.input.alphabet =
        "abcdefghijklmnopqrstuvwxyz"
        "ABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789 ./:-_%?&=\r\n";
    for (size_t k = 0; k < kKeywordCount; ++k)
        w.input.plants.push_back(kKeywords[k]);
    w.input.plantRate = params.plantRate;
    w.input.prefixKeepProb = 0.8;
    w.input.fullPlantProb = 0.35;
    return w;
}

} // namespace sparseap
