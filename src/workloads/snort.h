/**
 * @file
 * Snort-style network-intrusion rule workloads (ANMLZoo Snort and the
 * paper's Snort_L built from 3,126 community + registered rules).
 *
 * Rules are PCRE-flavoured: a protocol keyword, URI/header tokens, byte
 * classes, `.*` gaps and occasional large bounded counts (`.{n,m}`) —
 * the counts are what give Snort_L its 4,509-layer-deep NFA (Table II).
 * Compiled through the library's regex parser + Glushkov construction.
 */

#ifndef SPARSEAP_WORKLOADS_SNORT_H
#define SPARSEAP_WORKLOADS_SNORT_H

#include "common/rng.h"
#include "workloads/workload.h"

namespace sparseap {

/** Parameters of a Snort-style workload. */
struct SnortParams
{
    size_t nfaCount = 2687;
    /** Keyword-token count per rule (uniform in [min, max]). */
    unsigned minTokens = 2;
    unsigned maxTokens = 5;
    /** Probability a rule joins tokens with `.*` instead of adjacency. */
    double dotStarProb = 0.35;
    /** Probability a rule ends in a small alternation (extra reporters). */
    double altTailProb = 0.4;
    /** Count rules: a few rules carry a huge bounded gap. */
    size_t deepRuleCount = 0;
    unsigned deepRuleGap = 0;
    /** Long keyword rules (many tokens) setting the suite's MaxTopo. */
    size_t longRuleCount = 0;
    unsigned longRuleTokens = 0;
    /** How often rule keywords are planted into the traffic. */
    double plantRate = 0.004;
};

/** Generate a Snort-style workload (rules + synthetic traffic). */
Workload makeSnort(const SnortParams &params, Rng &rng,
                   const std::string &name, const std::string &abbr);

} // namespace sparseap

#endif // SPARSEAP_WORKLOADS_SNORT_H
