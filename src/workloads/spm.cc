#include "workloads/spm.h"

#include "common/logging.h"

namespace sparseap {

Workload
makeSpm(const SpmParams &params, Rng &rng, const std::string &name,
        const std::string &abbr)
{
    SPARSEAP_ASSERT(params.inputPoolSize <= params.alphabetSize,
                    "SPM input pool larger than the alphabet");
    Workload w;
    w.app.setNames(name, abbr);
    w.fullInputAsTest = true;

    auto item_byte = [&](unsigned idx) {
        return static_cast<uint8_t>(48 + idx);
    };

    // The whole item alphabet; gap states idle over any item.
    SymbolSet any_item;
    for (unsigned i = 0; i < params.alphabetSize; ++i)
        any_item.set(item_byte(i));

    for (size_t n = 0; n < params.nfaCount; ++n) {
        const unsigned items = static_cast<unsigned>(
            rng.uniform(params.minItems, params.maxItems));
        Nfa nfa(abbr + "_" + std::to_string(n));

        // Anchored broad start: any item opens the transaction stream.
        std::vector<StateId> prevs = {
            nfa.addState(any_item, StartKind::StartOfData, false)};

        for (unsigned t = 0; t < items; ++t) {
            // Gap: a self-loop state that idles over non-matching items.
            const StateId gap =
                nfa.addState(any_item, StartKind::None, false);
            for (StateId p : prevs)
                nfa.addEdge(p, gap);
            nfa.addEdge(gap, gap);

            // Item state(s): early items come from the frequent pool;
            // deep items from the full (mostly absent) alphabet.
            auto draw_item = [&]() {
                const unsigned pool = t < params.rareAfterItem
                                          ? params.inputPoolSize
                                          : params.alphabetSize;
                return item_byte(
                    static_cast<unsigned>(rng.index(pool)));
            };
            const bool last = t + 1 == items;
            std::vector<StateId> layer = {nfa.addState(
                SymbolSet::single(draw_item()), StartKind::None, last)};
            if (rng.chance(params.altItemProb) && !last) {
                layer.push_back(nfa.addState(
                    SymbolSet::single(draw_item()), StartKind::None,
                    false));
            }
            for (StateId item : layer) {
                nfa.addEdge(gap, item);
                for (StateId p : prevs)
                    nfa.addEdge(p, item); // adjacent items need no gap
            }
            prevs = std::move(layer);
        }
        nfa.finalize();
        w.app.addNfa(std::move(nfa));
    }

    // Transaction stream over the frequent-item pool only.
    w.input.base = InputSpec::Base::Alphabet;
    for (unsigned i = 0; i < params.inputPoolSize; ++i)
        w.input.alphabet += static_cast<char>(item_byte(i));
    return w;
}

} // namespace sparseap
