/**
 * @file
 * Sequential Pattern Mining (SPM) and Fermi-style workloads.
 *
 * Both are *start-of-data* applications: their start states are enabled
 * only at input position 0 (ANML start-of-data anchors), so the paper
 * excludes them from prefix profiling and runs the whole input as the
 * test stream. Their NFAs interleave item states with `.*`-style
 * self-loop gap states, which keep threads alive across the whole
 * stream — the reason SPM's SpAP mode skips almost nothing
 * (JumpRatio ~2% in Table IV).
 */

#ifndef SPARSEAP_WORKLOADS_SPM_H
#define SPARSEAP_WORKLOADS_SPM_H

#include "common/rng.h"
#include "workloads/workload.h"

namespace sparseap {

/** Parameters for SPM-style sequence automata. */
struct SpmParams
{
    size_t nfaCount = 5025;
    /** Items per sequence pattern. */
    unsigned minItems = 6;
    unsigned maxItems = 8;
    /** Probability an item position has a second (parallel) item state. */
    double altItemProb = 0.25;
    /**
     * Item alphabet size (mapped onto bytes 48..48+size). The *input*
     * stream only ever contains the first `inputPoolSize` items; later
     * pattern items are drawn from the whole alphabet, so most deep
     * items never occur — deep states stay cold (real sequence-mining
     * item sets have exactly this frequency skew).
     */
    unsigned alphabetSize = 160;
    unsigned inputPoolSize = 40;
    /** Items at position >= this index draw from the full alphabet. */
    unsigned rareAfterItem = 3;
};

/** Generate an SPM workload (anchored sequence patterns + item stream). */
Workload makeSpm(const SpmParams &params, Rng &rng, const std::string &name,
                 const std::string &abbr);

} // namespace sparseap

#endif // SPARSEAP_WORKLOADS_SPM_H
