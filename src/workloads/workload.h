/**
 * @file
 * Workload = an application plus the recipe for its input stream.
 *
 * The ANMLZoo / Becchi-suite benchmark files are not redistributable, so
 * each of the paper's 26 applications is *generated*: a seeded synthesizer
 * builds automata of the same structural class and an input model that
 * reproduces the hot/cold phenomenology (see DESIGN.md section 2).
 */

#ifndef SPARSEAP_WORKLOADS_WORKLOAD_H
#define SPARSEAP_WORKLOADS_WORKLOAD_H

#include <cstdint>
#include <string>
#include <vector>

#include "nfa/application.h"
#include "workloads/inputs.h"

namespace sparseap {

/** One generated benchmark application plus its input model. */
struct Workload
{
    Application app;
    InputSpec input;
    /**
     * True for start-of-data applications (Fermi, SPM): the whole input
     * is used as the test stream and the app is excluded from Table I.
     */
    bool fullInputAsTest = false;

    /**
     * Upper bound on the generated input stream, 0 = none. Set for
     * workloads whose enabled sets are inherently dense (Hamming grids,
     * Fermi paths), where simulation cost grows with stream length but
     * none of the reported ratios do.
     */
    size_t inputBytesCap = 0;
};

} // namespace sparseap

#endif // SPARSEAP_WORKLOADS_WORKLOAD_H
