#include "support/naive_sim.h"

#include <algorithm>
#include <set>

namespace sparseap::testing {
namespace {

/** Run one NFA; appends reports (with global ids offset by @p base). */
void
runOne(const Nfa &nfa, std::span<const uint8_t> input, GlobalStateId base,
       ReportList *reports, std::vector<bool> *hot)
{
    std::set<StateId> enabled;
    auto mark_hot = [&](StateId s) {
        if (hot)
            (*hot)[base + s] = true;
    };

    for (StateId s : nfa.startStates()) {
        mark_hot(s);
        if (nfa.state(s).start == StartKind::StartOfData)
            enabled.insert(s);
    }

    for (size_t i = 0; i < input.size(); ++i) {
        // Always-enabled states join the enabled set every cycle.
        std::set<StateId> current = enabled;
        for (StateId s : nfa.startStates()) {
            if (nfa.state(s).start == StartKind::AllInput)
                current.insert(s);
        }
        std::set<StateId> next;
        for (StateId s : current) {
            if (!nfa.state(s).symbols.test(input[i]))
                continue;
            if (nfa.state(s).reporting && reports) {
                reports->push_back(
                    {static_cast<uint32_t>(i), base + s});
            }
            for (StateId t : nfa.state(s).successors) {
                next.insert(t);
                mark_hot(t);
            }
        }
        enabled.swap(next);
    }
}

} // namespace

ReportList
naiveSimulate(const Application &app, std::span<const uint8_t> input)
{
    ReportList reports;
    for (uint32_t u = 0; u < app.nfaCount(); ++u)
        runOne(app.nfa(u), input, app.nfaOffset(u), &reports, nullptr);
    std::sort(reports.begin(), reports.end());
    return reports;
}

std::vector<bool>
naiveHotSet(const Application &app, std::span<const uint8_t> input)
{
    std::vector<bool> hot(app.totalStates(), false);
    for (uint32_t u = 0; u < app.nfaCount(); ++u)
        runOne(app.nfa(u), input, app.nfaOffset(u), nullptr, &hot);
    return hot;
}

} // namespace sparseap::testing
