/**
 * @file
 * An intentionally naive, independent NFA simulator used as the oracle in
 * property tests. It shares no code or data structures with the library
 * engine: per-NFA std::set enabled sets, no dispatch tables, no epochs.
 */

#ifndef SPARSEAP_TESTS_SUPPORT_NAIVE_SIM_H
#define SPARSEAP_TESTS_SUPPORT_NAIVE_SIM_H

#include <span>
#include <vector>

#include "nfa/application.h"
#include "sim/report.h"

namespace sparseap::testing {

/** Reports of a whole-application run, sorted. */
ReportList naiveSimulate(const Application &app,
                         std::span<const uint8_t> input);

/** The set of states (global ids) ever enabled during the run. */
std::vector<bool> naiveHotSet(const Application &app,
                              std::span<const uint8_t> input);

} // namespace sparseap::testing

#endif // SPARSEAP_TESTS_SUPPORT_NAIVE_SIM_H
