#include "support/random_nfa.h"

#include <algorithm>

namespace sparseap::testing {

Nfa
randomNfa(Rng &rng, const RandomNfaParams &params, const std::string &name)
{
    const size_t n = rng.uniform(params.minStates, params.maxStates);
    Nfa nfa(name);

    std::vector<bool> wants_self_loop(n, false);
    for (size_t i = 0; i < n; ++i) {
        SymbolSet set;
        if (rng.chance(params.universalProb)) {
            set = SymbolSet::all();
            wants_self_loop[i] = rng.chance(0.5);
        } else {
            const unsigned symbols = static_cast<unsigned>(
                rng.uniform(params.minSymbols, params.maxSymbols));
            for (unsigned s = 0; s < symbols; ++s)
                set.set(static_cast<uint8_t>(
                    rng.index(params.alphabetSize)));
        }
        StartKind start = StartKind::None;
        if (i == 0 || rng.chance(params.extraStartProb)) {
            start = rng.chance(params.sodProb) ? StartKind::StartOfData
                                               : StartKind::AllInput;
        }
        nfa.addState(set, start, rng.chance(params.reportProb));
    }
    for (size_t i = 0; i < n; ++i) {
        if (wants_self_loop[i])
            nfa.addEdge(static_cast<StateId>(i), static_cast<StateId>(i));
    }

    // Forward-ish edges to keep most of the graph reachable, plus random
    // back edges for cycles.
    for (StateId u = 0; u < n; ++u) {
        const unsigned out = static_cast<unsigned>(
            rng.geometric(1.0 / (params.avgOutDegree + 1.0)));
        for (unsigned e = 0; e < out; ++e) {
            StateId v = static_cast<StateId>(rng.index(n));
            nfa.addEdge(u, v);
        }
        if (u + 1 < n && rng.chance(0.8))
            nfa.addEdge(u, u + 1); // a forward spine
        if (params.backEdgeProb > 0 && u > 0 &&
            rng.chance(params.backEdgeProb)) {
            nfa.addEdge(u, static_cast<StateId>(rng.index(u)));
        }
    }
    nfa.finalize();
    return nfa;
}

Application
randomApplication(Rng &rng, size_t nfa_count, const RandomNfaParams &params)
{
    Application app("random_app", "RAND");
    for (size_t i = 0; i < nfa_count; ++i)
        app.addNfa(randomNfa(rng, params, "rand_" + std::to_string(i)));
    return app;
}

uint32_t
minPartitionLayer(const Nfa &nfa, const Topology &topo)
{
    uint32_t min_layer = 1;
    for (StateId s : nfa.startStates())
        min_layer = std::max(min_layer, topo.order[s]);
    return min_layer;
}

std::vector<uint8_t>
randomInput(Rng &rng, size_t len, unsigned alphabet_size)
{
    std::vector<uint8_t> input(len);
    for (auto &b : input)
        b = static_cast<uint8_t>(rng.index(alphabet_size));
    return input;
}

} // namespace sparseap::testing
