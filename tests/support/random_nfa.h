/**
 * @file
 * Random automata for property-based tests.
 */

#ifndef SPARSEAP_TESTS_SUPPORT_RANDOM_NFA_H
#define SPARSEAP_TESTS_SUPPORT_RANDOM_NFA_H

#include "common/rng.h"
#include "graph/topology.h"
#include "nfa/application.h"

namespace sparseap::testing {

/** Shape knobs for random NFA generation. */
struct RandomNfaParams
{
    size_t minStates = 3;
    size_t maxStates = 24;
    /** Average successors per state. */
    double avgOutDegree = 1.6;
    /** Probability of an extra back edge (creates cycles / SCCs). */
    double backEdgeProb = 0.15;
    /** Probability a state is reporting. */
    double reportProb = 0.2;
    /** Extra all-input start states beyond the first. */
    double extraStartProb = 0.2;
    /** Probability start states are start-of-data instead of all-input. */
    double sodProb = 0.0;
    /** Symbols per state's symbol-set (small sets keep runs sparse). */
    unsigned minSymbols = 1;
    unsigned maxSymbols = 24;
    /** Restrict symbols to [0, alphabetSize). */
    unsigned alphabetSize = 32;
    /**
     * Probability a state accepts every byte (a `.*`-style wildcard);
     * half of those get a self-loop — this exercises the engine's
     * latching fast path against the naive oracle.
     */
    double universalProb = 0.12;
};

/** Generate one finalized random NFA with at least one start state. */
Nfa randomNfa(Rng &rng, const RandomNfaParams &params,
              const std::string &name = "rand");

/** Generate an application of @p nfa_count random NFAs. */
Application randomApplication(Rng &rng, size_t nfa_count,
                              const RandomNfaParams &params = {});

/** Generate a random input over [0, alphabetSize). */
std::vector<uint8_t> randomInput(Rng &rng, size_t len,
                                 unsigned alphabet_size);

/**
 * The smallest legal partition layer for an NFA: start states are always
 * enabled (hence hot), so a cut may never place one in the cold set.
 */
uint32_t minPartitionLayer(const Nfa &nfa, const Topology &topo);

} // namespace sparseap::testing

#endif // SPARSEAP_TESTS_SUPPORT_RANDOM_NFA_H
