/** @file Tests for the AP-CPU execution pipeline. */

#include <gtest/gtest.h>

#include "common/rng.h"
#include "regex/glushkov.h"
#include "spap/ap_cpu.h"
#include "support/naive_sim.h"
#include "support/random_nfa.h"

namespace sparseap {
namespace {

TEST(ApCpu, NoEventsMeansNoCpuTime)
{
    Application app("a", "A");
    for (int i = 0; i < 4; ++i)
        app.addNfa(compileRegex("q0123456789", "p"));
    AppTopology topo(app);
    ExecutionOptions opts;
    opts.ap.capacity = app.totalStates() / 2 + 2;
    opts.profileFraction = 0.1;
    std::vector<uint8_t> input(1000, 'z');
    ApCpuStats stats = runApCpu(topo, opts, input);
    EXPECT_EQ(stats.intermediateReports, 0u);
    EXPECT_EQ(stats.cpuSeconds, 0.0);
    EXPECT_GE(stats.speedup, 1.0);
}

TEST(ApCpu, TimesAreConsistentWithModel)
{
    Application app("a", "A");
    for (int i = 0; i < 4; ++i)
        app.addNfa(compileRegex("abcdefgh", "p"));
    AppTopology topo(app);
    ExecutionOptions opts;
    opts.ap.capacity = 16; // two NFAs per batch
    opts.profileFraction = 0.1;
    opts.profileReferenceBytes = 0;
    std::vector<uint8_t> input(1000, 'z');
    ApCpuStats stats = runApCpu(topo, opts, input);
    const double cycle = opts.ap.cycleTimeNs * 1e-9;
    EXPECT_NEAR(stats.baselineSeconds,
                static_cast<double>(stats.baselineBatches) * 900 * cycle,
                1e-12);
    EXPECT_NEAR(stats.baseApSeconds,
                static_cast<double>(stats.baseApBatches) * 900 * cycle,
                1e-12);
}

/** Property: AP-CPU produces the same reports as the monolithic run. */
TEST(ApCpu, PropertyReportEquivalence)
{
    Rng rng(555);
    for (int trial = 0; trial < 30; ++trial) {
        testing::RandomNfaParams params;
        params.backEdgeProb = 0.3;
        params.reportProb = 0.3;
        Application app =
            testing::randomApplication(rng, 1 + rng.index(4), params);
        std::vector<uint8_t> input = testing::randomInput(rng, 250, 16);

        AppTopology topo(app);
        ExecutionOptions opts;
        opts.ap.capacity = 1 + rng.index(app.totalStates() + 10);
        opts.profileFraction = 0.1;
        PreparedPartition prep = preparePartition(topo, opts, input);
        ApCpuStats stats = runApCpu(topo, opts, prep, true);
        EXPECT_EQ(stats.reports,
                  testing::naiveSimulate(app, prep.testInput))
            << "trial " << trial;
    }
}

} // namespace
} // namespace sparseap
