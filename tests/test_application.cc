/** @file Tests for the Application container and global state ids. */

#include <gtest/gtest.h>

#include "ap/config.h"
#include "common/rng.h"
#include "nfa/application.h"
#include "support/random_nfa.h"

namespace sparseap {
namespace {

Nfa
chain(size_t states, bool sod = false)
{
    Nfa nfa("chain");
    for (size_t i = 0; i < states; ++i) {
        nfa.addState(SymbolSet::all(),
                     i == 0 ? (sod ? StartKind::StartOfData
                                   : StartKind::AllInput)
                            : StartKind::None,
                     i + 1 == states);
        if (i > 0)
            nfa.addEdge(static_cast<StateId>(i - 1),
                        static_cast<StateId>(i));
    }
    nfa.finalize();
    return nfa;
}

TEST(Application, GlobalIdsAreDenseAndOrdered)
{
    Application app("a", "A");
    app.addNfa(chain(3));
    app.addNfa(chain(5));
    app.addNfa(chain(2));
    EXPECT_EQ(app.totalStates(), 10u);
    EXPECT_EQ(app.nfaOffset(0), 0u);
    EXPECT_EQ(app.nfaOffset(1), 3u);
    EXPECT_EQ(app.nfaOffset(2), 8u);
    EXPECT_EQ(app.globalId(1, 4), 7u);
}

TEST(Application, ResolveRoundTrip)
{
    Rng rng(9);
    Application app = testing::randomApplication(rng, 6);
    for (uint32_t u = 0; u < app.nfaCount(); ++u) {
        for (StateId s = 0; s < app.nfa(u).size(); ++s) {
            GlobalStateRef ref = app.resolve(app.globalId(u, s));
            EXPECT_EQ(ref.nfa, u);
            EXPECT_EQ(ref.state, s);
        }
    }
}

TEST(Application, ReportingStatesSum)
{
    Application app("a", "A");
    app.addNfa(chain(3));
    app.addNfa(chain(4));
    EXPECT_EQ(app.reportingStates(), 2u);
}

TEST(Application, ClassifyGroups)
{
    Application low("l", "L");
    low.addNfa(chain(10));
    low.classifyGroup(ApConfig::kHalfCore, ApConfig::kFullChip);
    EXPECT_EQ(low.group(), ResourceGroup::Low);

    Application med("m", "M");
    for (int i = 0; i < 30; ++i)
        med.addNfa(chain(1000));
    med.classifyGroup(ApConfig::kHalfCore, ApConfig::kFullChip);
    EXPECT_EQ(med.group(), ResourceGroup::Medium);

    Application high("h", "H");
    for (int i = 0; i < 50; ++i)
        high.addNfa(chain(1000));
    high.classifyGroup(ApConfig::kHalfCore, ApConfig::kFullChip);
    EXPECT_EQ(high.group(), ResourceGroup::High);
}

TEST(Application, StartOfDataOnly)
{
    Application sod("s", "S");
    sod.addNfa(chain(3, /*sod=*/true));
    sod.addNfa(chain(4, /*sod=*/true));
    EXPECT_TRUE(sod.startOfDataOnly());

    Application mixed("m", "M");
    mixed.addNfa(chain(3, /*sod=*/true));
    mixed.addNfa(chain(4, /*sod=*/false));
    EXPECT_FALSE(mixed.startOfDataOnly());

    Application empty("e", "E");
    EXPECT_FALSE(empty.startOfDataOnly());
}

TEST(Application, GroupNames)
{
    EXPECT_STREQ(resourceGroupName(ResourceGroup::High), "H");
    EXPECT_STREQ(resourceGroupName(ResourceGroup::Medium), "M");
    EXPECT_STREQ(resourceGroupName(ResourceGroup::Low), "L");
}

} // namespace
} // namespace sparseap
