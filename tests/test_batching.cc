/** @file Tests for AP batch packing. */

#include <numeric>

#include <gtest/gtest.h>

#include "ap/batching.h"
#include "common/rng.h"

namespace sparseap {
namespace {

TEST(Batching, EverythingFitsInOneBatch)
{
    BatchPlan plan = packSizes({10, 20, 30}, 100);
    EXPECT_EQ(plan.batchCount(), 1u);
    EXPECT_EQ(plan.totalStates, 60u);
    EXPECT_EQ(plan.batches[0].states, 60u);
}

TEST(Batching, SplitsAtCapacity)
{
    BatchPlan plan = packSizes({60, 60, 60}, 100);
    EXPECT_EQ(plan.batchCount(), 3u);
}

TEST(Batching, GreedySequentialFill)
{
    BatchPlan plan = packSizes({50, 50, 50, 50}, 100);
    EXPECT_EQ(plan.batchCount(), 2u);
    EXPECT_EQ(plan.batches[0].items, (std::vector<uint32_t>{0, 1}));
    EXPECT_EQ(plan.batches[1].items, (std::vector<uint32_t>{2, 3}));
}

TEST(Batching, ExactCapacityFits)
{
    BatchPlan plan = packSizes({100}, 100);
    EXPECT_EQ(plan.batchCount(), 1u);
}

TEST(Batching, OversizedItemGetsExclusiveBatches)
{
    BatchPlan plan = packSizes({10, 250, 10}, 100);
    // 10 | 100+100+50 (item 1) | 10 — the oversized item never shares.
    EXPECT_EQ(plan.batchCount(), 5u);
    EXPECT_EQ(plan.batches[1].items, std::vector<uint32_t>{1});
    EXPECT_EQ(plan.batches[2].items, std::vector<uint32_t>{1});
    EXPECT_EQ(plan.batches[3].items, std::vector<uint32_t>{1});
    EXPECT_EQ(plan.batches[3].states, 50u);
}

TEST(Batching, ZeroSizedItemsSkipped)
{
    BatchPlan plan = packSizes({0, 10, 0}, 100);
    EXPECT_EQ(plan.batchCount(), 1u);
    EXPECT_EQ(plan.batches[0].items, std::vector<uint32_t>{1});
}

TEST(Batching, EmptyInput)
{
    BatchPlan plan = packSizes({}, 100);
    EXPECT_EQ(plan.batchCount(), 0u);
    EXPECT_EQ(plan.utilization(100), 0.0);
}

TEST(Batching, UtilizationComputation)
{
    BatchPlan plan = packSizes({50, 50, 40}, 100);
    // Batch 1: 100, batch 2: 40 -> 140 / 200.
    EXPECT_DOUBLE_EQ(plan.utilization(100), 0.7);
}

TEST(Batching, AnalyticCount)
{
    EXPECT_EQ(analyticBatchCount(0, 100), 0u);
    EXPECT_EQ(analyticBatchCount(1, 100), 1u);
    EXPECT_EQ(analyticBatchCount(100, 100), 1u);
    EXPECT_EQ(analyticBatchCount(101, 100), 2u);
    // CAV4k-style numbers: ~47 configurations at a 24K half-core.
    EXPECT_EQ(analyticBatchCount(1124947, 24576), 46u);
}

/** Property: packing preserves items, order, and capacity bounds. */
TEST(Batching, PropertyPackingInvariants)
{
    Rng rng(31);
    for (int trial = 0; trial < 50; ++trial) {
        const size_t capacity = rng.uniform(10, 200);
        std::vector<size_t> sizes;
        const size_t n = rng.uniform(1, 40);
        for (size_t i = 0; i < n; ++i)
            sizes.push_back(rng.uniform(0, capacity * 2));

        BatchPlan plan = packSizes(sizes, capacity);

        // Every batch respects the capacity unless it holds one oversized
        // item fragment.
        std::vector<uint32_t> flattened;
        for (const auto &b : plan.batches) {
            EXPECT_FALSE(b.items.empty());
            EXPECT_LE(b.states, capacity);
            for (uint32_t item : b.items)
                flattened.push_back(item);
        }
        // Items appear in order; each non-oversized item exactly once.
        for (size_t i = 1; i < flattened.size(); ++i)
            EXPECT_LE(flattened[i - 1], flattened[i]);

        // The batch count is at least the analytic lower bound.
        const size_t total =
            std::accumulate(sizes.begin(), sizes.end(), size_t{0});
        EXPECT_GE(plan.batchCount(), analyticBatchCount(total, capacity));
        EXPECT_EQ(plan.totalStates, total);

        // Greedy never uses more than twice the analytic bound plus one
        // (each batch except the last is more than half full in the
        // non-oversized case; oversized splits are exact).
        EXPECT_LE(plan.batchCount(),
                  2 * analyticBatchCount(total, capacity) + 1);
    }
}

TEST(Batching, PackWholeNfasUsesNfaSizes)
{
    Application app("a", "A");
    for (int i = 0; i < 3; ++i) {
        Nfa nfa("n");
        for (int s = 0; s < 40; ++s)
            nfa.addState(SymbolSet::all(),
                         s == 0 ? StartKind::AllInput : StartKind::None);
        nfa.finalize();
        app.addNfa(std::move(nfa));
    }
    BatchPlan plan = packWholeNfas(app, 100);
    EXPECT_EQ(plan.batchCount(), 2u); // 40+40 | 40
    EXPECT_EQ(plan.totalStates, 120u);
}

} // namespace
} // namespace sparseap
