/** @file Unit and property tests for Bitset256. */

#include <gtest/gtest.h>

#include "common/bitset256.h"
#include "common/rng.h"

namespace sparseap {
namespace {

TEST(Bitset256, DefaultIsEmpty)
{
    Bitset256 s;
    EXPECT_TRUE(s.empty());
    EXPECT_EQ(s.count(), 0);
    for (unsigned b = 0; b < 256; ++b)
        EXPECT_FALSE(s.test(static_cast<uint8_t>(b)));
}

TEST(Bitset256, AllContainsEverything)
{
    Bitset256 s = Bitset256::all();
    EXPECT_EQ(s.count(), 256);
    for (unsigned b = 0; b < 256; ++b)
        EXPECT_TRUE(s.test(static_cast<uint8_t>(b)));
}

TEST(Bitset256, SingleAndReset)
{
    Bitset256 s = Bitset256::single('x');
    EXPECT_EQ(s.count(), 1);
    EXPECT_TRUE(s.test('x'));
    EXPECT_FALSE(s.test('y'));
    s.reset('x');
    EXPECT_TRUE(s.empty());
}

TEST(Bitset256, RangeBounds)
{
    Bitset256 s = Bitset256::range(10, 20);
    EXPECT_EQ(s.count(), 11);
    EXPECT_FALSE(s.test(9));
    EXPECT_TRUE(s.test(10));
    EXPECT_TRUE(s.test(20));
    EXPECT_FALSE(s.test(21));
}

TEST(Bitset256, RangeSingleElement)
{
    Bitset256 s = Bitset256::range(0, 0);
    EXPECT_EQ(s.count(), 1);
    EXPECT_TRUE(s.test(0));
}

TEST(Bitset256, RangeFullAlphabet)
{
    EXPECT_EQ(Bitset256::range(0, 255), Bitset256::all());
}

TEST(Bitset256, WordBoundaries)
{
    // Bits 63/64 and 127/128 straddle word boundaries.
    for (unsigned b : {63u, 64u, 127u, 128u, 191u, 192u, 255u}) {
        Bitset256 s = Bitset256::single(static_cast<uint8_t>(b));
        EXPECT_EQ(s.count(), 1) << b;
        EXPECT_TRUE(s.test(static_cast<uint8_t>(b))) << b;
    }
}

TEST(Bitset256, UnionIntersection)
{
    Bitset256 a = Bitset256::range(0, 99);
    Bitset256 b = Bitset256::range(50, 149);
    EXPECT_EQ((a | b).count(), 150);
    EXPECT_EQ((a & b).count(), 50);
}

TEST(Bitset256, ComplementInvolution)
{
    Bitset256 s = Bitset256::range(17, 93);
    EXPECT_EQ(~~s, s);
    EXPECT_EQ((~s).count(), 256 - s.count());
}

TEST(Bitset256, EqualityAndHash)
{
    Bitset256 a = Bitset256::range(1, 7);
    Bitset256 b = Bitset256::range(1, 7);
    Bitset256 c = Bitset256::range(1, 8);
    EXPECT_EQ(a, b);
    EXPECT_NE(a, c);
    EXPECT_EQ(a.hash(), b.hash());
    EXPECT_NE(a.hash(), c.hash()); // overwhelmingly likely
}

/** Property: random membership matches a reference bool array. */
TEST(Bitset256, PropertyMatchesReferenceArray)
{
    Rng rng(42);
    for (int trial = 0; trial < 50; ++trial) {
        bool ref[256] = {};
        Bitset256 s;
        for (int ops = 0; ops < 100; ++ops) {
            uint8_t b = rng.byte();
            if (rng.chance(0.7)) {
                s.set(b);
                ref[b] = true;
            } else {
                s.reset(b);
                ref[b] = false;
            }
        }
        int count = 0;
        for (unsigned b = 0; b < 256; ++b) {
            EXPECT_EQ(s.test(static_cast<uint8_t>(b)), ref[b]);
            count += ref[b];
        }
        EXPECT_EQ(s.count(), count);
        EXPECT_EQ(s.empty(), count == 0);
    }
}

/** Property: De Morgan over random sets. */
TEST(Bitset256, PropertyDeMorgan)
{
    Rng rng(43);
    for (int trial = 0; trial < 50; ++trial) {
        Bitset256 a, b;
        for (int i = 0; i < 40; ++i) {
            a.set(rng.byte());
            b.set(rng.byte());
        }
        EXPECT_EQ(~(a | b), (~a) & (~b));
        EXPECT_EQ(~(a & b), (~a) | (~b));
    }
}

} // namespace
} // namespace sparseap
