/**
 * @file
 * Checkpointed profiling (the one-pass Table-I profiler): for every
 * registered workload, the profile snapshotted at each checkpoint must be
 * bit-identical to an independent profiling run over that prefix alone.
 * This is the correctness contract the per-app profile cache and the
 * prewarmProfiles() sweep rely on.
 */

#include <gtest/gtest.h>

#include "core/sparseap.h"

namespace sparseap {
namespace {

std::vector<size_t>
testCheckpoints(size_t n)
{
    std::vector<size_t> cps = {1, n / 100, n / 10, n / 2, n};
    for (size_t &c : cps)
        c = std::max<size_t>(1, std::min(c, n));
    std::sort(cps.begin(), cps.end());
    return cps;
}

TEST(CheckpointProfile, MatchesIndependentRunsOnAllWorkloads)
{
    for (const CatalogEntry &entry : appCatalog()) {
        SCOPED_TRACE(entry.abbr);
        const Workload w = generateWorkload(entry.abbr, 77, 3);
        Rng input_rng(4242);
        const std::vector<uint8_t> input =
            synthesizeInput(w.input, 8 * 1024, input_rng);
        const FlatAutomaton fa(w.app);

        const std::vector<size_t> cps = testCheckpoints(input.size());
        const std::vector<HotColdProfile> profs =
            profileApplication(fa, input, cps);
        ASSERT_EQ(profs.size(), cps.size());

        for (size_t i = 0; i < cps.size(); ++i) {
            const HotColdProfile solo = profileApplication(
                fa, std::span<const uint8_t>(input.data(), cps[i]));
            EXPECT_EQ(profs[i].hot, solo.hot)
                << "checkpoint " << cps[i] << " of " << input.size();
        }
    }
}

TEST(CheckpointProfile, DuplicateCheckpointsAllowed)
{
    const Workload w = generateWorkload("EM", 7, 3);
    Rng input_rng(7);
    const std::vector<uint8_t> input =
        synthesizeInput(w.input, 2 * 1024, input_rng);
    const FlatAutomaton fa(w.app);

    const size_t cps[] = {5, 5, 100, 100};
    const std::vector<HotColdProfile> profs = profileApplication(
        fa, input, std::span<const size_t>(cps, 4));
    ASSERT_EQ(profs.size(), 4u);
    EXPECT_EQ(profs[0].hot, profs[1].hot);
    EXPECT_EQ(profs[2].hot, profs[3].hot);
    EXPECT_EQ(profs[0].hot,
              profileApplication(
                  fa, std::span<const uint8_t>(input.data(), 5))
                  .hot);
}

TEST(CheckpointProfile, HotSetsAreMonotone)
{
    const Workload w = generateWorkload("Bro217", 3, 3);
    Rng input_rng(3);
    const std::vector<uint8_t> input =
        synthesizeInput(w.input, 4 * 1024, input_rng);
    const FlatAutomaton fa(w.app);

    const std::vector<size_t> cps = testCheckpoints(input.size());
    const std::vector<HotColdProfile> profs =
        profileApplication(fa, input, cps);
    for (size_t i = 1; i < profs.size(); ++i) {
        for (size_t g = 0; g < profs[i].hot.size(); ++g) {
            EXPECT_LE(profs[i - 1].hot[g], profs[i].hot[g])
                << "state " << g << " lost hotness between checkpoints "
                << cps[i - 1] << " and " << cps[i];
        }
    }
}

TEST(CheckpointProfile, AllCoreModesProduceIdenticalProfiles)
{
    // The dense profiling path (bit-OR accumulation, with or without a
    // mid-run handover) must produce the exact hot sets the sparse
    // enable hooks record — on every registered workload.
    for (const CatalogEntry &entry : appCatalog()) {
        SCOPED_TRACE(entry.abbr);
        const Workload w = generateWorkload(entry.abbr, 77, 3);
        Rng input_rng(99);
        const std::vector<uint8_t> input =
            synthesizeInput(w.input, 4 * 1024, input_rng);
        const FlatAutomaton fa(w.app);

        const std::vector<size_t> cps = testCheckpoints(input.size());
        const std::vector<HotColdProfile> sparse =
            profileApplication(fa, input, cps, EngineMode::Sparse);
        const std::vector<HotColdProfile> dense =
            profileApplication(fa, input, cps, EngineMode::Dense);
        const std::vector<HotColdProfile> automode =
            profileApplication(fa, input, cps, EngineMode::Auto);
        for (size_t i = 0; i < cps.size(); ++i) {
            EXPECT_EQ(sparse[i].hot, dense[i].hot)
                << "sparse vs dense at checkpoint " << cps[i];
            EXPECT_EQ(sparse[i].hot, automode[i].hot)
                << "sparse vs auto at checkpoint " << cps[i];
        }
    }
}

TEST(CheckpointProfile, PrewarmedProfilesMatchOnDemandProfiles)
{
    // LoadedApp::prewarmProfiles must populate exactly the entries that
    // on-demand profile() calls would compute.
    LoadedApp app;
    app.entry = findApp("Rg05");
    app.workload = generateWorkload("Rg05", 11, 3);
    Rng input_rng(11);
    app.input = synthesizeInput(app.workload.input, 8 * 1024, input_rng);

    LoadedApp fresh;
    fresh.entry = app.entry;
    fresh.workload = generateWorkload("Rg05", 11, 3);
    Rng input_rng2(11);
    fresh.input =
        synthesizeInput(fresh.workload.input, 8 * 1024, input_rng2);

    const double fracs[] = {0.001, 0.01};
    app.prewarmProfiles(fracs);
    for (double f : fracs) {
        const size_t len =
            profilePrefixLength(app.execOptions(f, 64), app.input.size());
        EXPECT_EQ(app.profile(len).hot, fresh.profile(len).hot)
            << "fraction " << f;
    }
}

} // namespace
} // namespace sparseap
