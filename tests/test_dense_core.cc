/**
 * @file
 * Property tests pitting the bit-parallel dense core against the sparse
 * core (and the naive oracle): both engine cores must emit identical
 * (position, state) report multisets on random automata and on every
 * registered workload, and the auto heuristic's mid-run handover must be
 * invisible in the output.
 */

#include <algorithm>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "regex/glushkov.h"
#include "sim/engine.h"
#include "support/naive_sim.h"
#include "support/random_nfa.h"
#include "workloads/registry.h"

namespace sparseap {
namespace {

ReportList
sortedReports(Engine &engine, std::span<const uint8_t> input)
{
    ReportList r = engine.run(input).reports;
    std::sort(r.begin(), r.end());
    return r;
}

/** Dense == sparse == naive oracle on random automata. */
TEST(DenseCore, PropertyMatchesSparseAndNaiveOnRandomAutomata)
{
    Rng rng(427);
    for (int trial = 0; trial < 60; ++trial) {
        testing::RandomNfaParams params;
        params.backEdgeProb = 0.3;
        params.reportProb = 0.3;
        params.sodProb = trial % 3 == 0 ? 0.5 : 0.0;
        params.universalProb = trial % 2 == 0 ? 0.3 : 0.12;
        Application app = testing::randomApplication(
            rng, 1 + rng.index(5), params);
        std::vector<uint8_t> input =
            testing::randomInput(rng, 250, params.alphabetSize);

        FlatAutomaton fa(app);
        Engine sparse(fa, EngineMode::Sparse);
        Engine dense(fa, EngineMode::Dense);
        const ReportList want_sparse = sortedReports(sparse, input);
        const ReportList got_dense = sortedReports(dense, input);
        EXPECT_EQ(got_dense, want_sparse) << "trial " << trial;
        EXPECT_EQ(got_dense, testing::naiveSimulate(app, input))
            << "trial " << trial;
    }
}

/** Auto mode (with possible mid-run handover) == sparse. */
TEST(DenseCore, PropertyAutoModeMatchesSparse)
{
    Rng rng(428);
    for (int trial = 0; trial < 20; ++trial) {
        testing::RandomNfaParams params;
        params.backEdgeProb = 0.3;
        params.reportProb = 0.3;
        params.universalProb = 0.3; // keep the live set dense
        params.extraStartProb = 0.5;
        // Enough NFAs to clear the auto heuristic's minimum size.
        Application app = testing::randomApplication(rng, 30, params);
        ASSERT_GE(app.totalStates(), Engine::kMinDenseStates);
        std::vector<uint8_t> input =
            testing::randomInput(rng, 400, params.alphabetSize);

        FlatAutomaton fa(app);
        Engine sparse(fa, EngineMode::Sparse);
        Engine aut(fa, EngineMode::Auto);
        EXPECT_EQ(sortedReports(aut, input), sortedReports(sparse, input))
            << "trial " << trial;
    }
}

/** The heuristic actually fires on a clearly dense automaton. */
TEST(DenseCore, AutoHandsOverOnDenseLiveSet)
{
    // Hundreds of always-enabled starts: the live set is half the
    // automaton from cycle 0, far above the handover threshold.
    Application app("dense", "D");
    for (int i = 0; i < 300; ++i)
        app.addNfa(compileRegex("ab", "p" + std::to_string(i)));
    FlatAutomaton fa(app);
    ASSERT_GE(fa.size(), Engine::kMinDenseStates);

    std::vector<uint8_t> input(1000, 'a');
    for (size_t i = 1; i < input.size(); i += 2)
        input[i] = 'b';

    Engine aut(fa, EngineMode::Auto);
    SimResult auto_run = aut.run(input);
    EXPECT_TRUE(auto_run.usedDenseCore);

    Engine sparse(fa, EngineMode::Sparse);
    SimResult sparse_run = sparse.run(input);
    EXPECT_FALSE(sparse_run.usedDenseCore);

    std::sort(auto_run.reports.begin(), auto_run.reports.end());
    std::sort(sparse_run.reports.begin(), sparse_run.reports.end());
    EXPECT_EQ(auto_run.reports, sparse_run.reports);
}

/** ...and stays sparse on a clearly sparse automaton. */
TEST(DenseCore, AutoStaysSparseOnSparseLiveSet)
{
    Application app("sparse", "S");
    for (int i = 0; i < 300; ++i) {
        app.addNfa(compileRegex("q" + std::to_string(i % 10) + "xyzw",
                                "p" + std::to_string(i)));
    }
    FlatAutomaton fa(app);
    std::vector<uint8_t> input(1000, 'z'); // nothing past the starts
    Engine aut(fa, EngineMode::Auto);
    EXPECT_FALSE(aut.run(input).usedDenseCore);
}

/** Dense == sparse on every registered workload (small scale/input). */
TEST(DenseCore, PropertyMatchesSparseOnAllRegisteredWorkloads)
{
    Rng input_rng(20180620);
    for (const auto &entry : appCatalog()) {
        // 5% scale keeps generation fast while covering every generator.
        Workload w = generateWorkload(entry.abbr, 7, 5);
        size_t bytes = 1536;
        if (w.inputBytesCap > 0)
            bytes = std::min(bytes, w.inputBytesCap);
        const std::vector<uint8_t> input =
            synthesizeInput(w.input, bytes, input_rng);

        FlatAutomaton fa(w.app);
        Engine sparse(fa, EngineMode::Sparse);
        Engine dense(fa, EngineMode::Dense);
        Engine aut(fa, EngineMode::Auto);
        const ReportList want = sortedReports(sparse, input);
        EXPECT_EQ(sortedReports(dense, input), want) << entry.abbr;
        EXPECT_EQ(sortedReports(aut, input), want) << entry.abbr;
    }
}

/** Dense handles empty input and empty automata without tripping. */
TEST(DenseCore, EdgeCases)
{
    Application app("a", "A");
    app.addNfa(compileRegex("ab", "p"));
    FlatAutomaton fa(app);
    Engine dense(fa, EngineMode::Dense);
    EXPECT_TRUE(dense.run({}).reports.empty());

    const std::string s = "abxab";
    const std::span<const uint8_t> input(
        reinterpret_cast<const uint8_t *>(s.data()), s.size());
    EXPECT_EQ(dense.run(input).reports.size(), 2u);
    // Reusable across runs, like the sparse engine.
    EXPECT_EQ(dense.run(input).reports.size(), 2u);
}

} // namespace
} // namespace sparseap
