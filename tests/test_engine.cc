/** @file Tests for the functional NFA engine (the VASim substrate). */

#include <algorithm>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "regex/glushkov.h"
#include "sim/engine.h"
#include "support/naive_sim.h"
#include "support/random_nfa.h"

namespace sparseap {
namespace {

std::span<const uint8_t>
bytes(const std::string &s)
{
    return {reinterpret_cast<const uint8_t *>(s.data()), s.size()};
}

Application
paperExample()
{
    // Figure 2 of the paper: a((bc)|(cd)+)f
    Application app("fig2", "F2");
    app.addNfa(compileRegex("a((bc)|(cd)+)f", "fig2"));
    return app;
}

TEST(Engine, PaperFigure2Example)
{
    Application app = paperExample();
    FlatAutomaton fa(app);
    Engine engine(fa);

    // "abcf" matches: report at the final 'f' (position 3).
    SimResult r = engine.run(bytes("abcf"));
    ASSERT_EQ(r.reports.size(), 1u);
    EXPECT_EQ(r.reports[0].position, 3u);

    // "abdf" does not match.
    EXPECT_TRUE(engine.run(bytes("abdf")).reports.empty());

    // "acdcdf" matches (two rounds of (cd)+).
    EXPECT_EQ(engine.run(bytes("acdcdf")).reports.size(), 1u);
}

TEST(Engine, EmptyInput)
{
    Application app = paperExample();
    FlatAutomaton fa(app);
    Engine engine(fa);
    SimResult r = engine.run({});
    EXPECT_TRUE(r.reports.empty());
    EXPECT_EQ(r.cycles, 0u);
}

TEST(Engine, UnanchoredMatchesEverywhere)
{
    Application app("a", "A");
    app.addNfa(compileRegex("ab", "ab"));
    FlatAutomaton fa(app);
    Engine engine(fa);
    SimResult r = engine.run(bytes("xabxxabab"));
    ASSERT_EQ(r.reports.size(), 3u);
    EXPECT_EQ(r.reports[0].position, 2u);
    EXPECT_EQ(r.reports[1].position, 6u);
    EXPECT_EQ(r.reports[2].position, 8u);
}

TEST(Engine, StartOfDataAnchoring)
{
    Application app("a", "A");
    app.addNfa(compileRegex("^ab", "anchored"));
    FlatAutomaton fa(app);
    Engine engine(fa);
    EXPECT_EQ(engine.run(bytes("abab")).reports.size(), 1u);
    EXPECT_TRUE(engine.run(bytes("xab")).reports.empty());
}

TEST(Engine, SelfLoopStaysEnabled)
{
    // a.*b reports on every 'b' after the first 'a'.
    Application app("a", "A");
    app.addNfa(compileRegex("a.*b", "gap"));
    FlatAutomaton fa(app);
    Engine engine(fa);
    SimResult r = engine.run(bytes("xaxxbxbxb"));
    EXPECT_EQ(r.reports.size(), 3u);
}

TEST(Engine, ReusableAcrossRuns)
{
    Application app = paperExample();
    FlatAutomaton fa(app);
    Engine engine(fa);
    for (int i = 0; i < 5; ++i) {
        EXPECT_EQ(engine.run(bytes("abcf")).reports.size(), 1u);
        EXPECT_TRUE(engine.run(bytes("zzzz")).reports.empty());
    }
}

TEST(Engine, MultiNfaGlobalIds)
{
    Application app("a", "A");
    app.addNfa(compileRegex("aa", "first"));
    app.addNfa(compileRegex("bb", "second"));
    FlatAutomaton fa(app);
    Engine engine(fa);
    SimResult r = engine.run(bytes("aabb"));
    ASSERT_EQ(r.reports.size(), 2u);
    EXPECT_EQ(app.resolve(r.reports[0].state).nfa, 0u);
    EXPECT_EQ(app.resolve(r.reports[1].state).nfa, 1u);
}

/**
 * Property: the engine matches the naive independent simulator on random
 * automata and random inputs — the core substrate-correctness check.
 */
TEST(Engine, PropertyMatchesNaiveSimulator)
{
    Rng rng(88);
    for (int trial = 0; trial < 60; ++trial) {
        testing::RandomNfaParams params;
        params.backEdgeProb = 0.3;
        params.sodProb = trial % 3 == 0 ? 0.5 : 0.0;
        Application app = testing::randomApplication(
            rng, 1 + rng.index(5), params);
        std::vector<uint8_t> input =
            testing::randomInput(rng, 200, params.alphabetSize);

        FlatAutomaton fa(app);
        Engine engine(fa);
        ReportList got = engine.run(input).reports;
        std::sort(got.begin(), got.end());
        ReportList want = testing::naiveSimulate(app, input);
        EXPECT_EQ(got, want) << "trial " << trial;
    }
}

/** Property: report positions are nondecreasing as emitted. */
TEST(Engine, PropertyReportsOrderedByPosition)
{
    Rng rng(89);
    for (int trial = 0; trial < 20; ++trial) {
        Application app = testing::randomApplication(rng, 3);
        std::vector<uint8_t> input = testing::randomInput(rng, 300, 32);
        FlatAutomaton fa(app);
        Engine engine(fa);
        ReportList got = engine.run(input).reports;
        for (size_t i = 1; i < got.size(); ++i)
            EXPECT_LE(got[i - 1].position, got[i].position);
    }
}

} // namespace
} // namespace sparseap
