/** @file Unit tests for the ExecCore latching fast path. */

#include <gtest/gtest.h>

#include "common/rng.h"
#include "regex/glushkov.h"
#include "sim/exec_core.h"
#include "sim/engine.h"
#include "sim/profiler.h"
#include "support/naive_sim.h"
#include "support/random_nfa.h"

namespace sparseap {
namespace {

std::span<const uint8_t>
bytes(const std::string &s)
{
    return {reinterpret_cast<const uint8_t *>(s.data()), s.size()};
}

TEST(ExecCore, DistinctBytes)
{
    Bitset256 set = ExecCore::distinctBytes(bytes("abca"));
    EXPECT_EQ(set.count(), 3);
    EXPECT_TRUE(set.test('a'));
    EXPECT_TRUE(set.test('c'));
    EXPECT_FALSE(set.test('d'));
    EXPECT_TRUE(ExecCore::distinctBytes({}).empty());
}

TEST(ExecCore, LatchedGapReportsEveryCycleOnceEnabled)
{
    // a.* with a reporting star: after 'a', the star reports on every
    // remaining symbol.
    Application app("t", "T");
    Nfa nfa("g");
    StateId a = nfa.addState(SymbolSet::single('a'), StartKind::AllInput);
    StateId star = nfa.addState(SymbolSet::all(), StartKind::None, true);
    nfa.addEdge(a, star);
    nfa.addEdge(star, star);
    nfa.finalize();
    app.addNfa(std::move(nfa));

    FlatAutomaton fa(app);
    Engine engine(fa);
    SimResult r = engine.run(bytes("xxaxxx"));
    // star enabled from position 3 on: reports at 3, 4, 5.
    ASSERT_EQ(r.reports.size(), 3u);
    EXPECT_EQ(r.reports[0].position, 3u);
    EXPECT_EQ(r.reports[2].position, 5u);
}

TEST(ExecCore, LatchedCascadePermanentlyEnablesSuccessors)
{
    // start(.)* -> b : the universal self-loop start latches; 'b' must
    // then fire at every 'b' from position 1 on.
    Application app("t", "T");
    Nfa nfa("g");
    StateId star = nfa.addState(SymbolSet::all(), StartKind::AllInput);
    StateId b = nfa.addState(SymbolSet::single('b'), StartKind::None,
                             true);
    nfa.addEdge(star, star);
    nfa.addEdge(star, b);
    nfa.finalize();
    app.addNfa(std::move(nfa));

    FlatAutomaton fa(app);
    Engine engine(fa);
    SimResult r = engine.run(bytes("bbxb"));
    // b is enabled from position 1 (star activates at 0): hits at 1, 3.
    ASSERT_EQ(r.reports.size(), 2u);
    EXPECT_EQ(r.reports[0].position, 1u);
    EXPECT_EQ(r.reports[1].position, 3u);
}

TEST(ExecCore, UniversalWithoutSelfLoopDoesNotLatch)
{
    // a -> any -> c: the wildcard has no self-loop; it is enabled for
    // exactly one cycle after each 'a'.
    Application app("t", "T");
    app.addNfa(compileRegex("a.c", "t"));
    FlatAutomaton fa(app);
    Engine engine(fa);
    EXPECT_EQ(engine.run(bytes("aXc")).reports.size(), 1u);
    EXPECT_EQ(engine.run(bytes("aXXc")).reports.size(), 0u);
}

TEST(ExecCore, UniversalityIsRelativeToTheInputAlphabet)
{
    // The gap accepts only [ab]; over an input containing just a/b it
    // is universal and latches; over an input with 'z' it is not.
    Application app("t", "T");
    Nfa nfa("g");
    StateId a = nfa.addState(SymbolSet::single('a'), StartKind::AllInput);
    StateId gap = nfa.addState(parseSymbolSet("[ab]"), StartKind::None);
    StateId b = nfa.addState(SymbolSet::single('b'), StartKind::None,
                             true);
    nfa.addEdge(a, gap);
    nfa.addEdge(gap, gap);
    nfa.addEdge(gap, b);
    nfa.finalize();
    app.addNfa(std::move(nfa));
    FlatAutomaton fa(app);
    Engine engine(fa);

    // Alphabet {a, b}: gap latches after the first 'a'; every later 'b'
    // reports.
    EXPECT_EQ(engine.run(bytes("aabbb")).reports.size(), 3u);
    // Alphabet {a, b, z}: 'z' kills the gap, so only the 'b' right after
    // the gap run reports; the final 'b' has no live thread.
    EXPECT_EQ(engine.run(bytes("aabzb")).reports.size(), 1u);
}

TEST(ExecCore, IdleTracksPermanence)
{
    Application app("t", "T");
    Nfa nfa("g");
    StateId s = nfa.addState(SymbolSet::all(), StartKind::None);
    nfa.addEdge(s, s);
    nfa.finalize(false);
    app.addNfa(std::move(nfa));
    FlatAutomaton fa(app);

    ExecCore core(fa);
    core.reset(ExecCore::distinctBytes(bytes("xx")), nullptr, false);
    EXPECT_TRUE(core.idle());
    core.enableState(0); // universal + self-loop: latches immediately
    EXPECT_FALSE(core.idle());
    ReportList reports;
    core.step('x', 0, &reports);
    EXPECT_FALSE(core.idle()); // latched forever
}

TEST(ExecCore, ProfilerSeesLatchedSuccessors)
{
    // start(.)* -> q where 'q' never occurs: q is still *enabled*
    // (hence hot) from cycle 1 on.
    Application app("t", "T");
    Nfa nfa("g");
    StateId star = nfa.addState(SymbolSet::all(), StartKind::AllInput);
    StateId q = nfa.addState(SymbolSet::single('q'), StartKind::None);
    nfa.addEdge(star, star);
    nfa.addEdge(star, q);
    nfa.finalize();
    app.addNfa(std::move(nfa));
    FlatAutomaton fa(app);
    Engine engine(fa);
    HotStateProfiler prof(fa.size());
    engine.run(bytes("xy"), &prof);
    EXPECT_TRUE(prof.hot(0));
    EXPECT_TRUE(prof.hot(1));
}

/** Property: heavy-wildcard random NFAs still match the naive oracle. */
TEST(ExecCore, PropertyWildcardHeavyMatchesNaive)
{
    Rng rng(31337);
    for (int trial = 0; trial < 40; ++trial) {
        testing::RandomNfaParams params;
        params.universalProb = 0.5; // stress latching hard
        params.backEdgeProb = 0.3;
        params.reportProb = 0.35;
        Application app =
            testing::randomApplication(rng, 1 + rng.index(4), params);
        std::vector<uint8_t> input = testing::randomInput(rng, 200, 8);

        FlatAutomaton fa(app);
        Engine engine(fa);
        ReportList got = engine.run(input).reports;
        std::sort(got.begin(), got.end());
        EXPECT_EQ(got, testing::naiveSimulate(app, input))
            << "trial " << trial;
    }
}

} // namespace
} // namespace sparseap
